/**
 * @file
 * Tests for the ASCII chart renderer.
 */

#include <gtest/gtest.h>

#include "plot/ascii_chart.hh"

namespace accelwall::plot
{
namespace
{

ChartConfig
smallConfig()
{
    ChartConfig cfg;
    cfg.width = 24;
    cfg.height = 8;
    return cfg;
}

TEST(AsciiChart, RendersMarkers)
{
    AsciiChart chart(smallConfig());
    chart.addSeries({"data", '*', {0.0, 1.0, 2.0}, {0.0, 1.0, 2.0}});
    std::string out = chart.str();
    // Three distinct cells on the rising diagonal (count the plot
    // area only; the legend also prints the marker).
    std::string area = out.substr(0, out.find("legend:"));
    EXPECT_EQ(std::count(area.begin(), area.end(), '*'), 3);
    EXPECT_NE(out.find("legend:"), std::string::npos);
    EXPECT_NE(out.find("* = data"), std::string::npos);
}

TEST(AsciiChart, EmptyChart)
{
    AsciiChart chart(smallConfig());
    chart.addSeries({"none", 'o', {}, {}});
    EXPECT_NE(chart.str().find("no plottable points"),
              std::string::npos);
}

TEST(AsciiChart, LogAxisSkipsNonPositive)
{
    ChartConfig cfg = smallConfig();
    cfg.x_scale = Scale::Log10;
    AsciiChart chart(cfg);
    chart.addSeries({"s", 'x', {-1.0, 1.0, 10.0}, {1.0, 2.0, 3.0}});
    std::string out = chart.str();
    std::string area = out.substr(0, out.find("legend:"));
    EXPECT_EQ(std::count(area.begin(), area.end(), 'x'), 2);
    EXPECT_NE(out.find("1 points outside the log domain"),
              std::string::npos);
}

TEST(AsciiChart, LogTicksShowDecades)
{
    ChartConfig cfg = smallConfig();
    cfg.y_scale = Scale::Log10;
    AsciiChart chart(cfg);
    chart.addSeries({"s", 'o', {0.0, 1.0}, {1.0, 1000.0}});
    std::string out = chart.str();
    // The top tick is the max y (1000 -> "1.0K").
    EXPECT_NE(out.find("1.0K"), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesInLegend)
{
    AsciiChart chart(smallConfig());
    chart.addSeries({"alpha", 'a', {0.0}, {0.0}});
    chart.addSeries({"beta", 'b', {1.0}, {1.0}});
    std::string out = chart.str();
    EXPECT_NE(out.find("a = alpha"), std::string::npos);
    EXPECT_NE(out.find("b = beta"), std::string::npos);
}

TEST(AsciiChart, DegeneratePointStillRenders)
{
    AsciiChart chart(smallConfig());
    chart.addSeries({"dot", '#', {5.0}, {7.0}});
    std::string out = chart.str();
    std::string area = out.substr(0, out.find("legend:"));
    EXPECT_EQ(std::count(area.begin(), area.end(), '#'), 1);
}

TEST(AsciiChart, MismatchedSeriesDies)
{
    AsciiChart chart(smallConfig());
    EXPECT_EXIT(chart.addSeries({"bad", 'o', {1.0, 2.0}, {1.0}}),
                ::testing::ExitedWithCode(1), "mismatched");
}

TEST(AsciiChart, TinyPlotAreaDies)
{
    ChartConfig cfg;
    cfg.width = 4;
    cfg.height = 2;
    EXPECT_EXIT(AsciiChart{cfg}, ::testing::ExitedWithCode(1),
                "at least");
}

TEST(AsciiChart, TitleAndLabelsAppear)
{
    ChartConfig cfg = smallConfig();
    cfg.title = "Figure 15a";
    cfg.x_label = "physical performance";
    cfg.y_label = "MPixels/s";
    AsciiChart chart(cfg);
    chart.addSeries({"chips", 'o', {1.0, 2.0}, {1.0, 2.0}});
    std::string out = chart.str();
    EXPECT_NE(out.find("Figure 15a"), std::string::npos);
    EXPECT_NE(out.find("physical performance"), std::string::npos);
    EXPECT_NE(out.find("MPixels/s"), std::string::npos);
}

} // namespace
} // namespace accelwall::plot
