/**
 * @file
 * Unit tests for the CSR metric (Eq. 1-2) and the architecture
 * relative-gain solver (Eq. 3-4).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "csr/arch_gains.hh"
#include "csr/csr.hh"

namespace accelwall::csr
{
namespace
{

using potential::ChipSpec;
using potential::kUncappedTdp;
using potential::PotentialModel;
using units::Gigahertz;
using units::Nanometers;
using units::SquareMillimeters;

/** Dimension a spec from plain magnitudes. */
ChipSpec
makeSpec(double node, double area, double freq_ghz)
{
    return ChipSpec{Nanometers{node}, SquareMillimeters{area},
                    Gigahertz{freq_ghz}, kUncappedTdp};
}

ChipGain
chip(const std::string &name, double node, double area, double freq_ghz,
     double gain, double year = 2010.0)
{
    return ChipGain{name, makeSpec(node, area, freq_ghz), gain, year};
}

TEST(Csr, BaselineRowIsAllOnes)
{
    PotentialModel m;
    auto series = csrSeries({chip("a", 45.0, 25.0, 1.0, 10.0),
                             chip("b", 28.0, 50.0, 1.2, 55.0)},
                            m, Metric::Throughput);
    ASSERT_EQ(series.size(), 2u);
    EXPECT_DOUBLE_EQ(series[0].rel_gain, 1.0);
    EXPECT_DOUBLE_EQ(series[0].rel_phy, 1.0);
    EXPECT_DOUBLE_EQ(series[0].csr, 1.0);
}

TEST(Csr, DecompositionIsExact)
{
    // Eq. 2: rel_gain == csr * rel_phy for every row, by construction.
    PotentialModel m;
    auto series = csrSeries({chip("a", 45.0, 25.0, 1.0, 10.0),
                             chip("b", 28.0, 50.0, 1.2, 55.0),
                             chip("c", 16.0, 100.0, 1.5, 300.0)},
                            m, Metric::Throughput);
    for (const auto &pt : series)
        EXPECT_NEAR(pt.rel_gain, pt.csr * pt.rel_phy, 1e-9 * pt.rel_gain);
}

TEST(Csr, PurePhysicalScalingHasUnitCsr)
{
    // A chip whose reported gain exactly tracks its physical potential
    // must have CSR == 1: all gain is CMOS-driven.
    PotentialModel m;
    ChipSpec a = makeSpec(45.0, 25.0, 1.0);
    ChipSpec b = makeSpec(16.0, 100.0, 1.4);
    double phy_ratio = m.throughput(b) / m.throughput(a);

    auto series = csrSeries(
        {ChipGain{"a", a, 100.0, 2008}, ChipGain{"b", b, 100.0 * phy_ratio,
                                                 2016}},
        m, Metric::Throughput);
    EXPECT_NEAR(series[1].csr, 1.0, 1e-9);
}

TEST(Csr, SpecializationShowsUpAsCsr)
{
    // Same physical chip, 3x the reported gain -> CSR == 3.
    PotentialModel m;
    ChipSpec spec = makeSpec(28.0, 100.0, 1.0);
    auto series =
        csrSeries({ChipGain{"v1", spec, 10.0, 2014},
                   ChipGain{"v2", spec, 30.0, 2016}},
                  m, Metric::EnergyEfficiency);
    EXPECT_NEAR(series[1].csr, 3.0, 1e-9);
    EXPECT_NEAR(series[1].rel_phy, 1.0, 1e-9);
}

TEST(Csr, NonDefaultBaseline)
{
    PotentialModel m;
    auto chips = std::vector<ChipGain>{chip("a", 45.0, 25.0, 1.0, 10.0),
                                       chip("b", 28.0, 50.0, 1.2, 55.0)};
    auto series = csrSeries(chips, m, Metric::Throughput, 1);
    EXPECT_DOUBLE_EQ(series[1].rel_gain, 1.0);
    EXPECT_DOUBLE_EQ(series[1].csr, 1.0);
    EXPECT_LT(series[0].rel_gain, 1.0);
}

TEST(Csr, CsrRatioConsistentWithSeries)
{
    PotentialModel m;
    auto a = chip("a", 45.0, 25.0, 1.0, 10.0);
    auto b = chip("b", 28.0, 50.0, 1.2, 55.0);
    auto series = csrSeries({a, b}, m, Metric::Throughput);
    EXPECT_NEAR(csrRatio(b, a, m, Metric::Throughput), series[1].csr,
                1e-12);
}

TEST(Csr, MetricNames)
{
    EXPECT_STREQ(metricName(Metric::Throughput), "throughput");
    EXPECT_STREQ(metricName(Metric::AreaThroughput), "throughput/area");
}

TEST(Csr, EmptySeriesDies)
{
    PotentialModel m;
    EXPECT_EXIT(csrSeries({}, m, Metric::Throughput),
                ::testing::ExitedWithCode(1), "empty");
}

TEST(Csr, AnnualGrowthFlatSeries)
{
    // Constant CSR: growth exactly 1.0/year.
    std::vector<CsrPoint> series;
    for (double year = 2012.0; year <= 2016.0; year += 0.5)
        series.push_back({"c", year, 2.0, 1.0, 2.0});
    EXPECT_NEAR(csrAnnualGrowth(series, 10.0), 1.0, 1e-9);
}

TEST(Csr, AnnualGrowthCompounding)
{
    // CSR doubling every year -> growth 2.0.
    std::vector<CsrPoint> series;
    for (int i = 0; i <= 4; ++i) {
        double year = 2012.0 + i;
        series.push_back({"c", year, 1.0, 1.0, std::pow(2.0, i)});
    }
    EXPECT_NEAR(csrAnnualGrowth(series, 10.0), 2.0, 1e-9);
}

TEST(Csr, AnnualGrowthWindowSelects)
{
    // Growth in the first years, flat in the last two: a 2-year
    // window reports flat.
    std::vector<CsrPoint> series = {
        {"a", 2012.0, 1.0, 1.0, 1.0}, {"b", 2013.0, 1.0, 1.0, 2.0},
        {"c", 2014.0, 1.0, 1.0, 4.0}, {"d", 2015.0, 1.0, 1.0, 4.0},
        {"e", 2016.0, 1.0, 1.0, 4.0},
    };
    EXPECT_NEAR(csrAnnualGrowth(series, 2.0), 1.0, 1e-9);
    EXPECT_GT(csrAnnualGrowth(series, 10.0), 1.3);
}

TEST(Csr, AnnualGrowthOnReconstructedSeries)
{
    // A realistic (Fig. 1-shaped) tail: the statistic stays finite and
    // in a sane band even across the 28nm -> 16nm CSR jump.
    std::vector<CsrPoint> series = {
        {"28a", 2014.9, 34.5, 86.5, 0.40}, {"28b", 2015.3, 39.3, 96.5, 0.41},
        {"28c", 2015.7, 42.9, 96.0, 0.45}, {"16a", 2016.1, 357.1, 286.9, 1.24},
        {"16b", 2016.5, 507.9, 304.5, 1.67},
    };
    double growth = csrAnnualGrowth(series, 2.0);
    EXPECT_GT(growth, 0.5);
    EXPECT_LT(growth, 3.0);
}

TEST(Csr, AnnualGrowthRejectsDegenerate)
{
    std::vector<CsrPoint> one = {{"a", 2012.0, 1.0, 1.0, 1.0}};
    EXPECT_EXIT(csrAnnualGrowth(one, 2.0),
                ::testing::ExitedWithCode(1), "fewer than two");
    EXPECT_EXIT(csrAnnualGrowth(one, -1.0),
                ::testing::ExitedWithCode(1), "positive");
}

TEST(ArchGains, DirectRelationGeomean)
{
    ArchGainSolver s(2);
    s.addObservation("X", "app1", 4.0);
    s.addObservation("X", "app2", 9.0);
    s.addObservation("Y", "app1", 1.0);
    s.addObservation("Y", "app2", 1.0);
    s.solve();
    ASSERT_TRUE(s.hasGain("X", "Y"));
    EXPECT_TRUE(s.isDirect("X", "Y"));
    EXPECT_NEAR(s.gain("X", "Y"), 6.0, 1e-12); // geomean(4, 9)
    EXPECT_NEAR(s.gain("Y", "X"), 1.0 / 6.0, 1e-12);
}

TEST(ArchGains, MinSharedAppsEnforced)
{
    ArchGainSolver s(5);
    for (int i = 0; i < 4; ++i) {
        s.addObservation("X", "app" + std::to_string(i), 2.0);
        s.addObservation("Y", "app" + std::to_string(i), 1.0);
    }
    s.solve();
    EXPECT_EQ(s.sharedApps("X", "Y"), 4);
    EXPECT_FALSE(s.hasGain("X", "Y"));
}

TEST(ArchGains, TransitiveCompletion)
{
    // X and Z share no apps, but both share >= 2 apps with Y:
    // Gain(X->Z) must come out as Gain(X->Y) * Gain(Y->Z).
    ArchGainSolver s(2);
    s.addObservation("X", "a", 8.0);
    s.addObservation("X", "b", 8.0);
    s.addObservation("Y", "a", 4.0);
    s.addObservation("Y", "b", 4.0);
    s.addObservation("Y", "c", 4.0);
    s.addObservation("Y", "d", 4.0);
    s.addObservation("Z", "c", 1.0);
    s.addObservation("Z", "d", 1.0);
    s.solve();
    ASSERT_TRUE(s.hasGain("X", "Z"));
    EXPECT_FALSE(s.isDirect("X", "Z"));
    EXPECT_NEAR(s.gain("X", "Z"), 8.0, 1e-12);
}

TEST(ArchGains, TwoHopChain)
{
    // A - B - C - D: completion must reach A->D (needs iteration).
    ArchGainSolver s(1);
    s.addObservation("A", "p", 8.0);
    s.addObservation("B", "p", 4.0);
    s.addObservation("B", "q", 4.0);
    s.addObservation("C", "q", 2.0);
    s.addObservation("C", "r", 2.0);
    s.addObservation("D", "r", 1.0);
    s.solve();
    ASSERT_TRUE(s.hasGain("A", "D"));
    EXPECT_NEAR(s.gain("A", "D"), 8.0, 1e-9);
}

TEST(ArchGains, DisconnectedStaysUnknown)
{
    ArchGainSolver s(1);
    s.addObservation("X", "a", 2.0);
    s.addObservation("Y", "b", 3.0);
    s.solve();
    EXPECT_FALSE(s.hasGain("X", "Y"));
    EXPECT_EXIT(s.gain("X", "Y"), ::testing::ExitedWithCode(1),
                "no relation");
}

TEST(ArchGains, DuplicateSamplesAveraged)
{
    // Two chips of the same architecture on one app: geomean(2, 8) = 4.
    ArchGainSolver s(1);
    s.addObservation("X", "a", 2.0);
    s.addObservation("X", "a", 8.0);
    s.addObservation("Y", "a", 1.0);
    s.solve();
    EXPECT_NEAR(s.gain("X", "Y"), 4.0, 1e-12);
}

TEST(ArchGains, SelfGainUnity)
{
    ArchGainSolver s(1);
    s.addObservation("X", "a", 2.0);
    s.solve();
    EXPECT_TRUE(s.hasGain("X", "X"));
    EXPECT_DOUBLE_EQ(s.gain("X", "X"), 1.0);
}

TEST(ArchGains, RejectsNonPositiveGain)
{
    ArchGainSolver s(1);
    EXPECT_EXIT(s.addObservation("X", "a", 0.0),
                ::testing::ExitedWithCode(1), "positive");
}

} // namespace
} // namespace accelwall::csr
