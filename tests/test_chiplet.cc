/**
 * @file
 * Tests for the chiplet subsystem: the negative-binomial yield model
 * pinned against closed forms, the cost layer's stable E-codes, the
 * K=1 partition reducing exactly to the monolith, the sweep's
 * jobs-independence, and the headline crossover — at least one
 * workload whose cost-per-dollar optimum is K>1 on an older node.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "chiplet/cost.hh"
#include "chiplet/partition.hh"
#include "chiplet/sweep.hh"
#include "potential/model.hh"

namespace accelwall::chiplet
{
namespace
{

using namespace units::literals;

// ---------------------------------------------------------------------
// Yield model: closed-form pins.
// ---------------------------------------------------------------------

TEST(Yield, MatchesNegativeBinomialClosedForm)
{
    // Y = (1 + A*D0/alpha)^(-alpha) for A=100mm2, D0=0.002/mm2, a=3.
    const double expect = std::pow(1.0 + 100.0 * 0.002 / 3.0, -3.0);
    EXPECT_NEAR(dieYield(100.0_mm2,
                         units::DefectsPerSquareMillimeter{0.002},
                         3.0),
                expect, 1e-12);
    // (1 + 0.2/3)^-3 = (16/15)^-3 = 3375/4096, exactly representable.
    EXPECT_NEAR(dieYield(100.0_mm2,
                         units::DefectsPerSquareMillimeter{0.002},
                         3.0),
                0.823974609375, 1e-12);
}

TEST(Yield, ZeroAreaIsPerfectAndLargeAreaDecays)
{
    const units::DefectsPerSquareMillimeter d0{0.002};
    EXPECT_DOUBLE_EQ(dieYield(0.0_mm2, d0, 3.0), 1.0);
    double prev = 1.0;
    for (double a : {25.0, 100.0, 400.0, 800.0}) {
        double y = dieYield(units::SquareMillimeters{a}, d0, 3.0);
        EXPECT_GT(y, 0.0);
        EXPECT_LT(y, prev);
        prev = y;
    }
}

TEST(Yield, LargeAlphaApproachesPoisson)
{
    // alpha -> inf degenerates to the Poisson model e^(-A*D0).
    const double poisson = std::exp(-100.0 * 0.002);
    EXPECT_NEAR(dieYield(100.0_mm2,
                         units::DefectsPerSquareMillimeter{0.002},
                         1e6),
                poisson, 1e-6);
}

TEST(Yield, DiesPerWaferMatchesEdgeLossFormula)
{
    // pi*(d/2)^2/A - pi*d/sqrt(2A) for A=100mm2 on a 300mm wafer.
    const double d = 300.0, a = 100.0;
    const double expect = M_PI * d * d / (4.0 * a) -
                          M_PI * d / std::sqrt(2.0 * a);
    EXPECT_NEAR(diesPerWafer(100.0_mm2, units::Millimeters{300.0}),
                expect, 1e-9);
    // A die bigger than the wafer yields zero, not a negative count.
    EXPECT_DOUBLE_EQ(
        diesPerWafer(units::SquareMillimeters{80000.0},
                     units::Millimeters{300.0}),
        0.0);
}

// ---------------------------------------------------------------------
// Cost layer: arithmetic and stable E-codes.
// ---------------------------------------------------------------------

TEST(Cost, CostPerGoodDieComposesYieldAndDiesPerWafer)
{
    const CostTable &table = shippedCostTable();
    const NodeCost *row = findNode(table, 7.0_nm);
    ASSERT_NE(row, nullptr);
    auto got = costPerGoodDie(table, 7.0_nm, 100.0_mm2);
    ASSERT_TRUE(got.ok());
    const double dies =
        diesPerWafer(100.0_mm2, table.wafer_diameter);
    const double yield =
        dieYield(100.0_mm2, row->defect_d0, table.alpha);
    EXPECT_NEAR(got.value().raw(),
                row->wafer_usd.raw() / (dies * yield), 1e-9);
}

TEST(Cost, UnknownNodeIsE4201)
{
    auto got = costPerGoodDie(shippedCostTable(), 6.0_nm, 100.0_mm2);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.error().code(), ErrorCode::ChipletUnknownNode);
}

TEST(Cost, DieTooLargeIsE4202)
{
    // 60000mm2 leaves less than one gross die on a 300mm wafer.
    auto got = costPerGoodDie(shippedCostTable(), 7.0_nm,
                              units::SquareMillimeters{60000.0});
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.error().code(), ErrorCode::ChipletDieTooLarge);
}

TEST(Cost, PackagedCostChargesPerDieAndPerPackage)
{
    const CostTable &table = shippedCostTable();
    auto good = costPerGoodDie(table, 14.0_nm, 100.0_mm2);
    ASSERT_TRUE(good.ok());
    auto packaged = packagedCost(table, 14.0_nm, 100.0_mm2, 4);
    ASSERT_TRUE(packaged.ok());
    const Packaging &pkg = table.packaging;
    const double expect =
        pkg.substrate_usd.raw() +
        4.0 * (good.value().raw() / pkg.test_yield +
               pkg.bond_usd_per_die.raw());
    EXPECT_NEAR(packaged.value().raw(), expect, 1e-9);
    // More dies of the same area can only cost more.
    auto more = packagedCost(table, 14.0_nm, 100.0_mm2, 8);
    ASSERT_TRUE(more.ok());
    EXPECT_GT(more.value().raw(), packaged.value().raw());
}

TEST(Cost, SplittingAFixedAreaBuysYield)
{
    // Four 175mm2 dies cost less silicon than one 700mm2 die: yield
    // falls super-linearly in area. (Packaging charges fight back;
    // compare bare good-die silicon here.)
    const CostTable &table = shippedCostTable();
    auto mono = costPerGoodDie(table, 7.0_nm, 700.0_mm2);
    auto quarter = costPerGoodDie(table, 7.0_nm, 175.0_mm2);
    ASSERT_TRUE(mono.ok());
    ASSERT_TRUE(quarter.ok());
    EXPECT_LT(4.0 * quarter.value().raw(), mono.value().raw());
}

// ---------------------------------------------------------------------
// Partitioning: K=1 is the monolith; links charge real power.
// ---------------------------------------------------------------------

TEST(Partition, SingleChipletReducesToMonolith)
{
    potential::PotentialModel model;
    const CostTable &table = shippedCostTable();
    PartitionPlan plan;
    plan.base =
        potential::ChipSpec{7.0_nm, 700.0_mm2, 1.0_ghz, 300.0_w};
    plan.chiplets = 1;
    plan.node_nm = 7.0_nm;
    auto got = evaluatePartition(model, table, plan);
    ASSERT_TRUE(got.ok());
    const PartitionResult &r = got.value();
    EXPECT_DOUBLE_EQ(r.link_power.raw(), 0.0);
    EXPECT_DOUBLE_EQ(r.latency_penalty, 1.0);
    EXPECT_DOUBLE_EQ(r.die_area.raw(), 700.0);
    // Same throughput the potential model gives the monolith directly.
    EXPECT_DOUBLE_EQ(r.throughput.raw(),
                     model.throughput(plan.base).raw());
    auto cost = packagedCost(table, 7.0_nm, 700.0_mm2, 1);
    ASSERT_TRUE(cost.ok());
    EXPECT_DOUBLE_EQ(r.cost.raw(), cost.value().raw());
}

TEST(Partition, LinksChargePowerAndLatency)
{
    potential::PotentialModel model;
    PartitionPlan plan;
    plan.base =
        potential::ChipSpec{7.0_nm, 700.0_mm2, 1.0_ghz, 300.0_w};
    plan.chiplets = 4;
    plan.node_nm = 7.0_nm;
    auto got = evaluatePartition(model, shippedCostTable(), plan);
    ASSERT_TRUE(got.ok());
    const PartitionResult &r = got.value();
    EXPECT_GT(r.link_power.raw(), 0.0);
    EXPECT_LT(r.latency_penalty, 1.0);
    EXPECT_GT(r.latency_penalty, 0.0);
    // The split die is a quarter of the monolith.
    EXPECT_DOUBLE_EQ(r.die_area.raw(), 175.0);
}

TEST(Partition, StrongerLinkEnergyLowersDeliveredThroughput)
{
    potential::PotentialModel model;
    PartitionPlan plan;
    plan.base =
        potential::ChipSpec{7.0_nm, 700.0_mm2, 1.0_ghz, 300.0_w};
    plan.chiplets = 8;
    plan.node_nm = 7.0_nm;
    LinkParams cheap;
    LinkParams dear;
    dear.pj_per_bit = units::Picojoules{50.0};
    auto a = evaluatePartition(model, shippedCostTable(), plan, cheap);
    auto b = evaluatePartition(model, shippedCostTable(), plan, dear);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_GT(b.value().link_power.raw(), a.value().link_power.raw());
    EXPECT_LT(b.value().throughput.raw(), a.value().throughput.raw());
}

TEST(Partition, UnknownNodePropagatesE4201)
{
    potential::PotentialModel model;
    PartitionPlan plan;
    plan.base =
        potential::ChipSpec{7.0_nm, 700.0_mm2, 1.0_ghz, 300.0_w};
    plan.chiplets = 2;
    plan.node_nm = 6.0_nm;
    auto got = evaluatePartition(model, shippedCostTable(), plan);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.error().code(), ErrorCode::ChipletUnknownNode);
}

// ---------------------------------------------------------------------
// The sweep: determinism, per-point errors, and the crossover.
// ---------------------------------------------------------------------

SweepConfig
crossoverConfig()
{
    SweepConfig cfg;
    cfg.base =
        potential::ChipSpec{7.0_nm, 700.0_mm2, 1.0_ghz, 300.0_w};
    cfg.chiplets = {1, 2, 4, 8};
    for (const NodeCost &node : shippedCostTable().nodes)
        cfg.nodes.push_back(node.node_nm);
    return cfg;
}

TEST(ChipletSweep, OutputIsIdenticalForEveryJobsValue)
{
    potential::PotentialModel model;
    SweepConfig cfg = crossoverConfig();
    cfg.jobs = 1;
    auto serial = runSweep(model, shippedCostTable(), cfg);
    cfg.jobs = 4;
    auto parallel = runSweep(model, shippedCostTable(), cfg);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    const auto &a = serial.value().points;
    const auto &b = parallel.value().points;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].chiplets, b[i].chiplets);
        EXPECT_EQ(a[i].node_nm.raw(), b[i].node_nm.raw());
        EXPECT_EQ(a[i].ok, b[i].ok);
        EXPECT_EQ(a[i].error, b[i].error);
        EXPECT_EQ(a[i].result.throughput.raw(),
                  b[i].result.throughput.raw());
        EXPECT_EQ(a[i].result.cost.raw(), b[i].result.cost.raw());
        EXPECT_EQ(a[i].gain_per_usd, b[i].gain_per_usd);
    }
}

TEST(ChipletSweep, GridIsRowMajorChipletsOuterNodesInner)
{
    potential::PotentialModel model;
    SweepConfig cfg = crossoverConfig();
    auto got = runSweep(model, shippedCostTable(), cfg);
    ASSERT_TRUE(got.ok());
    const auto &points = got.value().points;
    ASSERT_EQ(points.size(), cfg.chiplets.size() * cfg.nodes.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].chiplets,
                  cfg.chiplets[i / cfg.nodes.size()]);
        EXPECT_EQ(points[i].node_nm.raw(),
                  cfg.nodes[i % cfg.nodes.size()].raw());
    }
}

TEST(ChipletSweep, BaselineGainIsExactlyOne)
{
    potential::PotentialModel model;
    auto got =
        runSweep(model, shippedCostTable(), crossoverConfig());
    ASSERT_TRUE(got.ok());
    for (const SweepPoint &p : got.value().points) {
        if (p.chiplets == 1 && p.node_nm == 7.0_nm)
            EXPECT_DOUBLE_EQ(p.gain_per_usd, 1.0);
    }
}

TEST(ChipletSweep, CrossoverFavorsPartitioningOntoAnOlderNode)
{
    // The acceptance headline: for the pinned 7nm/700mm2/300W
    // monolith, the cost-per-dollar optimum is K>1 on an *older*
    // node than the monolith's.
    potential::PotentialModel model;
    auto got =
        runSweep(model, shippedCostTable(), crossoverConfig());
    ASSERT_TRUE(got.ok());
    const SweepPoint *best = nullptr;
    for (const SweepPoint &p : got.value().points)
        if (p.ok && (!best || p.gain_per_usd > best->gain_per_usd))
            best = &p;
    ASSERT_NE(best, nullptr);
    EXPECT_GT(best->chiplets, 1);
    EXPECT_GT(best->node_nm.raw(), 7.0);
    EXPECT_GT(best->gain_per_usd, 1.5);
}

TEST(ChipletSweep, UntabulatedNodeIsAPerPointError)
{
    potential::PotentialModel model;
    SweepConfig cfg = crossoverConfig();
    cfg.nodes.push_back(6.0_nm);
    auto got = runSweep(model, shippedCostTable(), cfg);
    ASSERT_TRUE(got.ok());
    bool saw_error = false;
    for (const SweepPoint &p : got.value().points) {
        if (p.node_nm == 6.0_nm) {
            EXPECT_FALSE(p.ok);
            EXPECT_EQ(p.error, ErrorCode::ChipletUnknownNode);
            saw_error = true;
        } else {
            EXPECT_TRUE(p.ok);
        }
    }
    EXPECT_TRUE(saw_error);
}

TEST(ChipletSweep, EmptyDimensionIsE4001)
{
    potential::PotentialModel model;
    SweepConfig cfg = crossoverConfig();
    cfg.chiplets.clear();
    auto got = runSweep(model, shippedCostTable(), cfg);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.error().code(), ErrorCode::SweepEmptyDimension);

    cfg = crossoverConfig();
    cfg.nodes.clear();
    got = runSweep(model, shippedCostTable(), cfg);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.error().code(), ErrorCode::SweepEmptyDimension);
}

TEST(ChipletSweep, UncostableBaselineFailsTheWholeSweep)
{
    // gain_per_usd is relative to the monolith on the base node; if
    // that cannot be costed the metric is undefined.
    potential::PotentialModel model;
    SweepConfig cfg = crossoverConfig();
    cfg.base.node_nm = 6.0_nm;
    auto got = runSweep(model, shippedCostTable(), cfg);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.error().code(), ErrorCode::ChipletUnknownNode);
}

} // namespace
} // namespace accelwall::chiplet
