/**
 * @file
 * Unit tests for the 16 kernel DFG generators (Table IV): structural
 * validity, expected shapes, and the properties the Section VI sweep
 * depends on.
 */

#include <gtest/gtest.h>

#include "dfg/analysis.hh"
#include "kernels/builder.hh"
#include "kernels/kernels.hh"

namespace accelwall::kernels
{
namespace
{

using dfg::Analysis;
using dfg::analyze;
using dfg::Graph;
using dfg::OpType;

TEST(Registry, TableHas16Kernels)
{
    const auto &table = kernelTable();
    ASSERT_EQ(table.size(), 16u);
    EXPECT_EQ(table.front().abbrev, "AES");
    EXPECT_EQ(table.back().abbrev, "TRD");
}

TEST(Registry, UnknownKernelDies)
{
    EXPECT_EXIT(makeKernel("NOPE"), ::testing::ExitedWithCode(1),
                "unknown kernel");
}

/**
 * Every kernel must produce a valid DAG with inputs, outputs, compute
 * work, and a sane analysis. Parameterized over all Table IV entries.
 */
class AllKernels : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AllKernels, BuildsValidDag)
{
    Graph g = makeKernel(GetParam());
    Analysis a = analyze(g); // fatal()s on a cycle
    EXPECT_GT(a.num_nodes, 50u) << GetParam();
    EXPECT_GT(a.num_edges, 50u) << GetParam();
    EXPECT_GT(a.num_inputs, 0u);
    EXPECT_GT(a.num_outputs, 0u);
    EXPECT_GE(a.depth, 3u);
    EXPECT_GE(a.max_working_set, 1u);
}

TEST_P(AllKernels, HasComputeWork)
{
    Graph g = makeKernel(GetParam());
    std::size_t compute = g.countIf(dfg::isCompute);
    std::size_t memory = g.countIf(dfg::isMemory);
    EXPECT_GT(compute, 0u) << GetParam();
    EXPECT_GT(memory, 0u) << GetParam();
}

TEST_P(AllKernels, Deterministic)
{
    Graph a = makeKernel(GetParam());
    Graph b = makeKernel(GetParam());
    ASSERT_EQ(a.numNodes(), b.numNodes());
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (dfg::NodeId id = 0; id < a.numNodes(); ++id) {
        EXPECT_EQ(a.op(id), b.op(id));
        EXPECT_EQ(a.preds(id), b.preds(id));
    }
}

INSTANTIATE_TEST_SUITE_P(
    TableIV, AllKernels,
    ::testing::Values("AES", "BFS", "FFT", "GMM", "MDY", "KNN", "NWN",
                      "RBM", "RED", "SAD", "SRT", "SMV", "SSP", "S2D",
                      "S3D", "TRD"));

TEST(Kernels, RedShape)
{
    // n loads, n-1 adds, 1 store.
    Graph g = makeRed(64);
    EXPECT_EQ(g.numNodes(), 64u + 63u + 1u);
    Analysis a = analyze(g);
    // loads (1) + 6 add levels + store = 8 vertices on the critical path.
    EXPECT_EQ(a.depth, 8u);
    EXPECT_EQ(a.max_working_set, 64u);
}

TEST(Kernels, TrdShape)
{
    Graph g = makeTrd(16);
    // 1 scalar + 32 loads + 16 FMul + 16 FAdd + 16 stores.
    EXPECT_EQ(g.numNodes(), 1u + 32u + 16u + 16u + 16u);
    Analysis a = analyze(g);
    EXPECT_EQ(a.depth, 4u);
}

TEST(Kernels, GmmOpMix)
{
    Graph g = makeGmm(6);
    std::size_t fmul = g.countIf(
        [](OpType op) { return op == OpType::FMul; });
    std::size_t fadd = g.countIf(
        [](OpType op) { return op == OpType::FAdd; });
    EXPECT_EQ(fmul, 6u * 6u * 6u);
    EXPECT_EQ(fadd, 6u * 6u * 5u);
}

TEST(Kernels, NwnIsDeepAndNarrow)
{
    // The wavefront kernel: depth scales with 2n, parallelism with the
    // anti-diagonal — the limited-parallelism end of the spectrum.
    Analysis a = analyze(makeNwn(16));
    Analysis red = analyze(makeRed(1024));
    EXPECT_GT(a.depth, 2u * 16u);
    EXPECT_LT(a.max_working_set, 300u);
    // RED is shallower yet far wider: the depth-to-width ratio tells
    // the two kernel classes apart.
    EXPECT_LT(red.depth, a.depth);
    EXPECT_GT(red.max_working_set, a.max_working_set);
    double nwn_ratio = static_cast<double>(a.depth) / a.max_working_set;
    double red_ratio =
        static_cast<double>(red.depth) / red.max_working_set;
    EXPECT_GT(nwn_ratio, 10.0 * red_ratio);
}

TEST(Kernels, FftDepthIsLogarithmic)
{
    Analysis a = analyze(makeFft(64));
    // 6 butterfly stages, each a handful of vertices deep.
    EXPECT_GE(a.depth, 6u);
    EXPECT_LE(a.depth, 40u);
    EXPECT_GE(a.max_working_set, 64u);
}

TEST(Kernels, SrtRejectsNonPowerOfTwo)
{
    EXPECT_EXIT(makeSrt(48), ::testing::ExitedWithCode(1),
                "power of two");
    EXPECT_EXIT(makeFft(10), ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(Kernels, SmvHasIndirectLoads)
{
    // CSR x[col] loads depend on index loads: some Load nodes must have
    // a Load predecessor.
    Graph g = makeSmv(8, 4);
    bool found = false;
    for (dfg::NodeId id = 0; id < g.numNodes(); ++id) {
        if (g.op(id) != OpType::Load)
            continue;
        for (dfg::NodeId p : g.preds(id)) {
            if (g.op(p) == OpType::Load)
                found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Kernels, RbmUsesTranscendentals)
{
    Graph g = makeRbm(8, 8);
    EXPECT_EQ(g.countIf([](OpType op) { return op == OpType::Exp; }),
              8u);
    EXPECT_EQ(g.countIf([](OpType op) { return op == OpType::FDiv; }),
              8u);
}

TEST(Kernels, AesUsesLutsAndXors)
{
    Graph g = makeAes(10);
    // SubBytes: 16 luts x 10 rounds.
    EXPECT_EQ(g.countIf([](OpType op) { return op == OpType::Lut; }),
              160u);
    EXPECT_GT(g.countIf([](OpType op) { return op == OpType::Xor; }),
              400u);
}

TEST(Kernels, S3dInteriorPointCount)
{
    Graph g = makeS3d(8, 8, 8);
    std::size_t stores = g.countIf(
        [](OpType op) { return op == OpType::Store; });
    EXPECT_EQ(stores, 6u * 6u * 6u);
}

TEST(VideoExt, IdctStructure)
{
    Graph g = makeKernel("IDCT");
    Analysis a = analyze(g);
    // 8 blocks x (64 loads + 16 1-D transforms + 64 stores).
    std::size_t loads = g.countIf(
        [](OpType op) { return op == OpType::Load; });
    EXPECT_EQ(loads, 8u * 64u);
    // The fast butterfly uses far fewer multiplies than the dense
    // matrix product (6 per 1-D transform vs 64).
    std::size_t muls = g.countIf(
        [](OpType op) { return op == OpType::Mul; });
    EXPECT_EQ(muls, 8u * 16u * 6u);
    // Blocks are independent: working set spans all of them.
    EXPECT_GE(a.max_working_set, 8u * 64u);
    EXPECT_LT(a.depth, 25u);
}

TEST(VideoExt, EntIsSerial)
{
    Graph g = makeKernel("ENT");
    Analysis a = analyze(g);
    // Each decoded symbol depends on the previous window shift: depth
    // grows linearly with the bit count.
    EXPECT_GT(a.depth, 256u * 3u);
    // Tiny working set: the serial extreme of the kernel spectrum.
    EXPECT_LT(a.max_working_set, 600u);
    double ratio = static_cast<double>(a.depth) / a.max_working_set;
    Analysis idct = analyze(makeKernel("IDCT"));
    double idct_ratio =
        static_cast<double>(idct.depth) / idct.max_working_set;
    EXPECT_GT(ratio, 50.0 * idct_ratio);
}

/**
 * Generator size sweep: every parameterized generator must stay a
 * valid DAG across its size range, with node counts growing
 * monotonically.
 */
class KernelSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(KernelSizes, GeneratorsScale)
{
    int s = GetParam();
    std::vector<Graph> graphs;
    graphs.push_back(makeGmm(2 + s));
    graphs.push_back(makeRed(2 << s));
    graphs.push_back(makeTrd(8 << s));
    graphs.push_back(makeNwn(4 + 2 * s));
    graphs.push_back(makeFft(8 << s));
    graphs.push_back(makeSrt(8 << s));
    graphs.push_back(makeKnn(8 + 4 * s, 2 + s));
    graphs.push_back(makeMdy(4 + 2 * s, 2 + s));
    graphs.push_back(makeRbm(4 + 2 * s, 4 + 2 * s));
    graphs.push_back(makeSad(2 + s, 2 + s));
    graphs.push_back(makeSmv(4 + 2 * s, 2 + s));
    graphs.push_back(makeSsp(8 + 4 * s, 16 + 8 * s, 1 + s));
    graphs.push_back(makeS2d(3 + s, 3 + s));
    graphs.push_back(makeS3d(3 + s, 3 + s, 3 + s));
    graphs.push_back(makeAes(1 + s));
    graphs.push_back(makeBfs(1 + s, 2, 2));
    graphs.push_back(makeDftNaive(4 << s));
    for (auto &g : graphs) {
        Analysis a = analyze(g); // validates acyclicity
        EXPECT_GT(a.num_nodes, 0u) << g.name();
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KernelSizes, ::testing::Range(0, 4));

TEST(KernelSizes, NodeCountsGrowWithSize)
{
    EXPECT_GT(makeGmm(8).numNodes(), makeGmm(4).numNodes());
    EXPECT_GT(makeFft(64).numNodes(), makeFft(16).numNodes());
    EXPECT_GT(makeNwn(24).numNodes(), makeNwn(12).numNodes());
    EXPECT_GT(makeAes(10).numNodes(), makeAes(5).numNodes());
}

TEST(KernelSizes, DegenerateSizesDie)
{
    EXPECT_EXIT(makeGmm(0), ::testing::ExitedWithCode(1), ">= 1");
    EXPECT_EXIT(makeRed(1), ::testing::ExitedWithCode(1), ">= 2");
    EXPECT_EXIT(makeNwn(1), ::testing::ExitedWithCode(1), ">= 2");
    EXPECT_EXIT(makeS2d(2, 5), ::testing::ExitedWithCode(1), "3x3");
    EXPECT_EXIT(makeS3d(8, 8, 2), ::testing::ExitedWithCode(1),
                "3x3x3");
}

TEST(Builder, ReduceTreeSingleValue)
{
    Graph g("t");
    auto v = loadArray(g, 1);
    EXPECT_EQ(reduceTree(g, v, OpType::Add), v[0]);
    EXPECT_EQ(g.numNodes(), 1u);
}

TEST(Builder, ReduceTreeOddCount)
{
    Graph g("t");
    auto v = loadArray(g, 5);
    reduceTree(g, v, OpType::Add);
    // 5 leaves need exactly 4 binary adds.
    EXPECT_EQ(g.numNodes(), 5u + 4u);
    analyze(g); // acyclic
}

TEST(Builder, ReduceTreeEmptyDies)
{
    Graph g("t");
    EXPECT_EXIT(reduceTree(g, {}, OpType::Add),
                ::testing::ExitedWithCode(1), "empty");
}

} // namespace
} // namespace accelwall::kernels
