/**
 * @file
 * Unit tests for the pre-RTL accelerator model: FU library, scheduler
 * semantics (partitioning, chaining, simplification, CMOS scaling),
 * sweep driver, and gain attribution.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "aladdin/attribution.hh"
#include "aladdin/fu_library.hh"
#include "aladdin/simulator.hh"
#include "aladdin/sweep.hh"
#include "kernels/builder.hh"
#include "kernels/kernels.hh"
#include "potential/model.hh"

namespace accelwall::aladdin
{
namespace
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;
using kernels::binary;
using kernels::loadArray;
using kernels::reduceTree;
using kernels::storeAll;

DesignPoint
dp45(int partition = 1, int simp = 1, bool chain = false)
{
    DesignPoint dp;
    dp.node_nm = 45.0;
    dp.partition = partition;
    dp.simplification = simp;
    dp.chaining = chain;
    return dp;
}

/** n independent Add ops between loads and stores. */
Graph
independentAdds(int n)
{
    Graph g("adds");
    for (int i = 0; i < n; ++i) {
        auto in = loadArray(g, 2);
        NodeId a = binary(g, OpType::Add, in[0], in[1]);
        storeAll(g, {a});
    }
    return g;
}

/** A serial chain of n dependent Adds. */
Graph
serialAdds(int n)
{
    Graph g("chain");
    NodeId prev = g.addNode(OpType::Load);
    for (int i = 0; i < n; ++i) {
        NodeId b = g.addNode(OpType::Load);
        prev = binary(g, OpType::Add, prev, b);
    }
    storeAll(g, {prev});
    return g;
}

TEST(FuLibrary, WidthSchedule)
{
    EXPECT_EQ(simplifiedWidth(1), 32);
    EXPECT_EQ(simplifiedWidth(2), 30);
    EXPECT_EQ(simplifiedWidth(13), 8);
    // Floor at 8 bits.
    EXPECT_EQ(simplifiedWidth(20), 8);
}

TEST(FuLibrary, QuadraticVsLinearScaling)
{
    // At degree 13 (8 of 32 bits): adders scale 4x down, multipliers
    // 16x down.
    EXPECT_NEAR(widthScale(OpType::Add, 13), 0.25, 1e-12);
    EXPECT_NEAR(widthScale(OpType::FMul, 13), 0.0625, 1e-12);
    EXPECT_NEAR(widthScale(OpType::Add, 1), 1.0, 1e-12);
}

TEST(FuLibrary, PseudoNodesAreFree)
{
    EXPECT_EQ(opParams(OpType::Input).energy_pj, 0.0);
    EXPECT_EQ(opParams(OpType::Output).area_um2, 0.0);
}

TEST(Simulator, CountsOps)
{
    Simulator sim(independentAdds(10));
    SimResult res = sim.run(dp45());
    // 20 loads + 10 adds + 10 stores.
    EXPECT_EQ(res.ops, 40u);
    EXPECT_EQ(res.fused_ops, 0u); // chaining off
}

TEST(Simulator, PartitioningSpeedsUpParallelWork)
{
    Simulator sim(independentAdds(64));
    double t1 = sim.run(dp45(1)).runtime_ns;
    double t4 = sim.run(dp45(4)).runtime_ns;
    double t64 = sim.run(dp45(64)).runtime_ns;
    EXPECT_GT(t1, 3.5 * t4 * 0.9); // ~4x fewer cycles
    EXPECT_GT(t4, t64);
}

TEST(Simulator, PartitioningPlateausAtMaxParallelism)
{
    Simulator sim(independentAdds(16));
    double t64 = sim.run(dp45(64)).runtime_ns;
    double t1024 = sim.run(dp45(1024)).runtime_ns;
    EXPECT_DOUBLE_EQ(t64, t1024);
}

TEST(Simulator, SerialChainDoesNotBenefitFromPartitioning)
{
    Simulator sim(serialAdds(50));
    double t1 = sim.run(dp45(1)).runtime_ns;
    double t32 = sim.run(dp45(32)).runtime_ns;
    // Loads parallelize, the add chain does not; improvement is small.
    EXPECT_LT(t32, t1);
    EXPECT_GT(t32, 0.5 * t1);
}

TEST(Simulator, ChainingFusesDependentOps)
{
    // 45nm Add = 0.6ns: one fused op per cycle pair (0.6+0.6 > 1ns), so
    // chaining helps only on faster nodes for this chain.
    Simulator sim(serialAdds(64));

    DesignPoint no_chain = dp45(4, 1, false);
    DesignPoint chain = dp45(4, 1, true);
    double t_plain = sim.run(no_chain).runtime_ns;
    double t_chain = sim.run(chain).runtime_ns;
    EXPECT_LE(t_chain, t_plain);

    // At 5nm (0.222ns adds) four adds fit one 1GHz cycle.
    DesignPoint fast = chain;
    fast.node_nm = 5.0;
    SimResult res5 = sim.run(fast);
    EXPECT_GT(res5.fused_ops, 30u);
    EXPECT_LT(res5.runtime_ns, 0.5 * t_plain);
}

TEST(Simulator, ChainingNeverHurtsRuntime)
{
    for (const char *abbrev : {"RED", "NWN", "FFT"}) {
        Simulator sim(kernels::makeKernel(abbrev));
        for (double node : {45.0, 14.0, 5.0}) {
            DesignPoint plain = dp45(8, 1, false);
            plain.node_nm = node;
            DesignPoint chained = plain;
            chained.chaining = true;
            EXPECT_LE(sim.run(chained).runtime_ns,
                      sim.run(plain).runtime_ns * (1.0 + 1e-9))
                << abbrev << " at " << node;
        }
    }
}

TEST(Simulator, NewerNodesFuseMore)
{
    Simulator sim(kernels::makeRed(512));
    DesignPoint dp = dp45(16, 1, true);
    std::uint64_t prev = 0;
    for (double node : {45.0, 22.0, 10.0, 5.0}) {
        dp.node_nm = node;
        std::uint64_t fused = sim.run(dp).fused_ops;
        EXPECT_GE(fused, prev) << "at " << node;
        prev = fused;
    }
    EXPECT_GT(prev, 0u);
}

TEST(Simulator, SimplificationCutsEnergyNotRuntime)
{
    // Paper: "simplification and CMOS power saving reduce energy and
    // not runtime" (below the deep-pipelining regime).
    Simulator sim(kernels::makeGmm(8));
    SimResult full = sim.run(dp45(8, 1, false));
    SimResult narrow = sim.run(dp45(8, 9, false));
    EXPECT_DOUBLE_EQ(narrow.runtime_ns, full.runtime_ns);
    EXPECT_LT(narrow.energy_pj, full.energy_pj);
    EXPECT_LT(narrow.area_um2, full.area_um2);
}

TEST(Simulator, DeepPipeliningAddsLatency)
{
    // Beyond the deep-pipeline degree, dependent work slows down.
    Simulator sim(serialAdds(64));
    double t9 = sim.run(dp45(1, 9, false)).runtime_ns;
    double t13 = sim.run(dp45(1, 13, false)).runtime_ns;
    EXPECT_GT(t13, t9);
}

TEST(Simulator, CmosSavingCutsEnergy)
{
    Simulator sim(kernels::makeFft(32));
    DesignPoint dp = dp45(8, 1, false);
    SimResult at45 = sim.run(dp);
    dp.node_nm = 5.0;
    SimResult at5 = sim.run(dp);
    EXPECT_LT(at5.dynamic_energy_pj, 0.1 * at45.dynamic_energy_pj);
    EXPECT_LT(at5.area_um2, at45.area_um2);
}

TEST(Simulator, NewerNodesSpeedUpMultiCycleOps)
{
    // FDiv at 45nm is 15ns = 15 cycles; at 5nm 5.55ns = 6 cycles. Even
    // without chaining the critical path shortens.
    Graph g("divchain");
    NodeId prev = g.addNode(OpType::Load);
    for (int i = 0; i < 8; ++i)
        prev = binary(g, OpType::FDiv, prev, g.addNode(OpType::Load));
    storeAll(g, {prev});
    Simulator sim(std::move(g));

    DesignPoint dp = dp45(1, 1, false);
    double t45 = sim.run(dp).runtime_ns;
    dp.node_nm = 5.0;
    double t5 = sim.run(dp).runtime_ns;
    EXPECT_LT(t5, 0.5 * t45);
}

TEST(Simulator, EnergyAccountingConsistent)
{
    Simulator sim(kernels::makeKnn(16, 4));
    SimResult res = sim.run(dp45(4, 3, true));
    // energy = dynamic + leakage * runtime (1 uW*ns = 1e-3 pJ).
    double expect = res.dynamic_energy_pj +
                    res.leakage_power_uw * res.runtime_ns * 1e-3;
    EXPECT_NEAR(res.energy_pj, expect, 1e-9 * expect);
    // power = energy / runtime (pJ/ns = mW).
    EXPECT_NEAR(res.power_mw, res.energy_pj / res.runtime_ns,
                1e-9 * res.power_mw);
    EXPECT_NEAR(res.throughput_ops,
                static_cast<double>(res.ops) / (res.runtime_ns * 1e-9),
                1.0);
}

TEST(Simulator, MemoryPortsLimitLoads)
{
    // 128 loads, 1 port -> >= 128 cycles; 16 ports -> ~8 cycles.
    Graph g("loads");
    auto in = loadArray(g, 128);
    auto sum = reduceTree(g, std::move(in), OpType::Add);
    storeAll(g, {sum});
    Simulator sim(std::move(g));

    SimResult one = sim.run(dp45(1));
    SimResult sixteen = sim.run(dp45(16));
    EXPECT_GE(one.cycles, 128u);
    EXPECT_LT(sixteen.cycles, 30u);
}

TEST(Simulator, RejectsBadDesignPoints)
{
    Simulator sim(independentAdds(4));
    DesignPoint bad = dp45();
    bad.partition = 0;
    EXPECT_EXIT(sim.run(bad), ::testing::ExitedWithCode(1), "partition");
    bad = dp45();
    bad.clock_ghz = 0.0;
    EXPECT_EXIT(sim.run(bad), ::testing::ExitedWithCode(1), "clock");
}

TEST(Sweep, CoversGrid)
{
    Simulator sim(kernels::makeTrd(64));
    SweepConfig cfg = SweepConfig::quick();
    auto points = runSweep(sim, cfg);
    EXPECT_EQ(points.size(), cfg.nodes.size() * cfg.partitions.size() *
                                 cfg.simplifications.size());
}

TEST(Sweep, PaperGridMatchesTable3)
{
    SweepConfig cfg = SweepConfig::paper();
    EXPECT_EQ(cfg.nodes.size(), 7u);
    EXPECT_EQ(cfg.partitions.front(), 1);
    EXPECT_EQ(cfg.partitions.back(), 524288);
    EXPECT_EQ(cfg.simplifications.size(), 13u);
}

TEST(Sweep, BestSelectors)
{
    Simulator sim(kernels::makeRed(256));
    auto points = runSweep(sim, SweepConfig::quick());
    std::size_t perf = bestPerformance(points);
    std::size_t eff = bestEfficiency(points);
    for (const auto &p : points) {
        EXPECT_LE(points[perf].res.runtime_ns, p.res.runtime_ns);
        EXPECT_GE(points[eff].res.efficiency_opj, p.res.efficiency_opj);
    }
}

TEST(Sweep, ParallelMatchesSerialBitExact)
{
    // The determinism guarantee: runSweep at any job count returns the
    // same bytes as the serial run. Partition factors extend far past
    // every kernel's available parallelism so the per-chain plateau
    // short-circuit triggers and must behave identically in parallel.
    SweepConfig cfg = SweepConfig::quick();
    cfg.partitions = {1, 4, 16, 64, 256, 1024, 4096, 16384};

    for (const char *abbrev : {"RED", "FFT", "SMV"}) {
        Simulator sim(kernels::makeKernel(abbrev));
        auto serial = runSweep(sim, cfg, 1);
        auto parallel = runSweep(sim, cfg, 8);

        ASSERT_EQ(serial.size(), parallel.size()) << abbrev;
        for (std::size_t i = 0; i < serial.size(); ++i) {
            const SweepPoint &s = serial[i];
            const SweepPoint &p = parallel[i];
            EXPECT_EQ(s.dp.str(), p.dp.str()) << abbrev << " #" << i;
            EXPECT_EQ(s.res.cycles, p.res.cycles) << abbrev;
            EXPECT_EQ(std::bit_cast<std::uint64_t>(s.res.runtime_ns),
                      std::bit_cast<std::uint64_t>(p.res.runtime_ns))
                << abbrev << " #" << i;
            EXPECT_EQ(std::bit_cast<std::uint64_t>(s.res.energy_pj),
                      std::bit_cast<std::uint64_t>(p.res.energy_pj))
                << abbrev << " #" << i;
            EXPECT_EQ(std::bit_cast<std::uint64_t>(s.res.power_mw),
                      std::bit_cast<std::uint64_t>(p.res.power_mw));
            EXPECT_EQ(std::bit_cast<std::uint64_t>(s.res.area_um2),
                      std::bit_cast<std::uint64_t>(p.res.area_um2));
            EXPECT_EQ(
                std::bit_cast<std::uint64_t>(s.res.efficiency_opj),
                std::bit_cast<std::uint64_t>(p.res.efficiency_opj));
            EXPECT_EQ(
                std::bit_cast<std::uint64_t>(s.res.lane_utilization),
                std::bit_cast<std::uint64_t>(p.res.lane_utilization));
            EXPECT_EQ(s.res.ops, p.res.ops);
            EXPECT_EQ(s.res.fused_ops, p.res.fused_ops);
            EXPECT_EQ(s.res.initiation_interval,
                      p.res.initiation_interval);
        }

        // The extended grid must actually exercise the plateau: the
        // last factors of some chain repeat the plateau result.
        const auto &tail = serial[serial.size() - 1].res;
        const auto &prev = serial[serial.size() - 2].res;
        EXPECT_DOUBLE_EQ(tail.runtime_ns, prev.runtime_ns) << abbrev;
    }
}

TEST(Sweep, RejectsEmptyDimensions)
{
    Simulator sim(kernels::makeRed(64));
    SweepConfig cfg = SweepConfig::quick();
    cfg.partitions.clear();
    EXPECT_EXIT(runSweep(sim, cfg), ::testing::ExitedWithCode(1),
                "empty sweep dimension");
}

TEST(Sweep, SelectorsDieOnEmptyInput)
{
    std::vector<SweepPoint> empty;
    EXPECT_EXIT(bestPerformance(empty), ::testing::ExitedWithCode(1),
                "empty");
    EXPECT_EXIT(bestEfficiency(empty), ::testing::ExitedWithCode(1),
                "empty");
    // The budget selectors report an empty set as "nothing fits".
    EXPECT_EXIT(bestPerformanceUnderArea(empty, 1e12),
                ::testing::ExitedWithCode(1), "budget");
    EXPECT_EXIT(bestEfficiencyUnderArea(empty, 1e12),
                ::testing::ExitedWithCode(1), "budget");
    EXPECT_EXIT(bestPerformanceUnderPower(empty, 1e12),
                ::testing::ExitedWithCode(1), "budget");
}

TEST(Sweep, BudgetSelectorsDieWhenNoPointFits)
{
    Simulator sim(kernels::makeRed(64));
    auto points = runSweep(sim, SweepConfig::quick(), 1);
    // Budgets below any achievable area/power leave nothing to pick.
    EXPECT_EXIT(bestPerformanceUnderArea(points, 1e-3),
                ::testing::ExitedWithCode(1),
                "bestPerformanceUnderArea.*budget");
    EXPECT_EXIT(bestEfficiencyUnderArea(points, 1e-3),
                ::testing::ExitedWithCode(1),
                "bestEfficiencyUnderArea.*budget");
    EXPECT_EXIT(bestPerformanceUnderPower(points, 1e-9),
                ::testing::ExitedWithCode(1),
                "bestPerformanceUnderPower.*budget");
}

TEST(Sweep, BudgetConstrainedSelectors)
{
    Simulator sim(kernels::makeRed(512));
    auto points = runSweep(sim, SweepConfig::quick());

    // A generous budget reproduces the unconstrained optimum.
    std::size_t free_perf = bestPerformance(points);
    EXPECT_EQ(bestPerformanceUnderArea(points, 1e12), free_perf);

    // A tight area budget forces a slower design.
    double small = points[free_perf].res.area_um2 * 0.2;
    std::size_t constrained = bestPerformanceUnderArea(points, small);
    EXPECT_LE(points[constrained].res.area_um2, small);
    EXPECT_GE(points[constrained].res.runtime_ns,
              points[free_perf].res.runtime_ns);

    // Efficiency under the same budget also fits it.
    std::size_t eff = bestEfficiencyUnderArea(points, small);
    EXPECT_LE(points[eff].res.area_um2, small);

    // Power budgets behave the same way.
    std::size_t pow_best = bestPerformanceUnderPower(points, 5.0);
    EXPECT_LE(points[pow_best].res.power_mw, 5.0);

    // Impossible budgets die.
    EXPECT_EXIT(bestPerformanceUnderArea(points, 1.0),
                ::testing::ExitedWithCode(1), "budget");
}

TEST(Potential2, OptimalFrequencyInterior)
{
    // Under a tight envelope the optimum clock is below the maximum
    // sweep frequency (extra clock only darkens silicon); uncapped,
    // the fastest clock wins.
    using namespace units::literals;
    potential::PotentialModel m;
    units::Gigahertz tight =
        m.optimalFrequency(7.0_nm, 600.0_mm2, 80.0_w);
    units::Gigahertz open =
        m.optimalFrequency(7.0_nm, 600.0_mm2, units::Watts{1e9});
    EXPECT_LT(tight, 2.0_ghz);
    EXPECT_GT(open, 4.5_ghz);

    // The optimum beats its neighbors.
    auto thr = [&](units::Gigahertz f) {
        return m.throughput(
            potential::ChipSpec{7.0_nm, 600.0_mm2, f, 80.0_w}).raw();
    };
    EXPECT_GE(thr(tight), thr(tight * 1.3) * 0.999);
    EXPECT_GE(thr(tight), thr(tight / 1.3) * 0.999);
}

TEST(Attribution, FractionsSumToOne)
{
    Simulator sim(kernels::makeS3d(6, 6, 6));
    for (Target t : {Target::Performance, Target::EnergyEfficiency}) {
        Attribution a = attribute(sim, SweepConfig::quick(), t);
        EXPECT_GT(a.total_gain, 1.0);
        double sum = a.frac_cmos + a.frac_heterogeneity +
                     a.frac_partitioning + a.frac_simplification;
        EXPECT_NEAR(sum, 1.0, 1e-9);
        EXPECT_GE(a.frac_cmos, 0.0);
        EXPECT_GE(a.frac_partitioning, 0.0);
        EXPECT_GE(a.csr, 1.0);
    }
}

TEST(Attribution, PartitioningDominatesParallelPerformance)
{
    // For an embarrassingly parallel kernel, performance gains come
    // overwhelmingly from partitioning (Fig. 14a's stacked bars).
    Simulator sim(kernels::makeRed(1024));
    Attribution a =
        attribute(sim, SweepConfig::quick(), Target::Performance);
    EXPECT_GT(a.frac_partitioning, 0.5);
}

TEST(Attribution, CmosSavingMattersForEfficiency)
{
    Simulator sim(kernels::makeGmm(8));
    Attribution a =
        attribute(sim, SweepConfig::quick(), Target::EnergyEfficiency);
    EXPECT_GT(a.frac_cmos, 0.2);
}

TEST(Attribution, CsrConsistentWithFractions)
{
    Simulator sim(kernels::makeFft(32));
    Attribution a =
        attribute(sim, SweepConfig::quick(), Target::EnergyEfficiency);
    // csr == total_gain^(frac_het + frac_simp) only holds when no step
    // was clamped; check the weaker invariant csr <= total_gain.
    EXPECT_LE(a.csr, a.total_gain * (1.0 + 1e-9));
}

/**
 * Scheduler invariants swept across kernels and design points.
 */
class SchedulerInvariants
    : public ::testing::TestWithParam<std::tuple<const char *, double,
                                                 int, int, bool>>
{
};

TEST_P(SchedulerInvariants, Hold)
{
    auto [abbrev, node, partition, simp, chain] = GetParam();
    Simulator sim(kernels::makeKernel(abbrev));
    DesignPoint dp;
    dp.node_nm = node;
    dp.partition = partition;
    dp.simplification = simp;
    dp.chaining = chain;
    SimResult res = sim.run(dp);

    const dfg::Graph &g = sim.graph();
    std::uint64_t real_ops =
        g.numNodes() - g.countIf(dfg::isVariable);

    // Work conservation: every non-pseudo node executes exactly once.
    EXPECT_EQ(res.ops, real_ops);

    // No fusion without chaining; fused ops are a subset of compute.
    if (!chain) {
        EXPECT_EQ(res.fused_ops, 0u);
    }
    EXPECT_LE(res.fused_ops, g.countIf(dfg::isCompute));

    // Issue-bandwidth lower bound: non-chained memory ops need slots.
    std::uint64_t mem_ops = g.countIf(dfg::isMemory);
    std::uint64_t min_cycles =
        (mem_ops + dp.partition - 1) / dp.partition;
    EXPECT_GE(res.cycles, min_cycles);

    // Energy identity and positivity.
    EXPECT_GT(res.runtime_ns, 0.0);
    EXPECT_GT(res.energy_pj, 0.0);
    EXPECT_GT(res.area_um2, 0.0);
    double expect = res.dynamic_energy_pj +
                    res.leakage_power_uw * res.runtime_ns * 1e-3;
    EXPECT_NEAR(res.energy_pj, expect, 1e-9 * expect);

    // Determinism.
    SimResult again = sim.run(dp);
    EXPECT_EQ(res.cycles, again.cycles);
    EXPECT_DOUBLE_EQ(res.runtime_ns, again.runtime_ns);
    EXPECT_DOUBLE_EQ(res.energy_pj, again.energy_pj);
}

INSTANTIATE_TEST_SUITE_P(
    KernelsByPoints, SchedulerInvariants,
    ::testing::Combine(::testing::Values("AES", "NWN", "RED", "SMV",
                                         "BTC"),
                       ::testing::Values(45.0, 5.0),
                       ::testing::Values(1, 16, 1024),
                       ::testing::Values(1, 13),
                       ::testing::Bool()));

TEST(Simulator, PartitioningMonotoneAcrossKernels)
{
    // Runtime must not increase when lanes double, for every kernel.
    for (const auto &info : kernels::kernelTable()) {
        Simulator sim(kernels::makeKernel(info.abbrev));
        double prev = 1e300;
        for (int p = 1; p <= 4096; p *= 2) {
            DesignPoint dp = dp45(p, 1, true);
            double rt = sim.run(dp).runtime_ns;
            EXPECT_LE(rt, prev * (1.0 + 1e-9))
                << info.abbrev << " at P=" << p;
            prev = rt;
        }
    }
}

// ---------------------------------------------------------------------
// Memory and communication specialization modes (Table I rows 1-6).
// ---------------------------------------------------------------------

TEST(Simulator, InitiationIntervalBounds)
{
    // Pipelined throughput is occupancy-bound: II >= ops/slots, and
    // streaming invocations beat the single-shot makespan whenever the
    // graph has any depth.
    Simulator sim(kernels::makeFft(32));
    SimResult res = sim.run(dp45(8, 1, true));
    std::uint64_t mem =
        sim.graph().countIf(dfg::isMemory);
    EXPECT_GE(res.initiation_interval, (mem + 7) / 8);
    EXPECT_LE(res.initiation_interval, res.cycles);
    EXPECT_GE(res.pipelined_throughput_ops, res.throughput_ops);
}

TEST(Simulator, SerialKernelGreatPipelinedThroughput)
{
    // ENT is latency-bound single-shot but streams beautifully: the
    // dependence chain spans invocations, not the resource occupancy.
    Simulator sim(kernels::makeKernel("ENT"));
    SimResult res = sim.run(dp45(16, 1, true));
    EXPECT_GT(res.pipelined_throughput_ops,
              20.0 * res.throughput_ops);
}

TEST(Simulator, BankedInitiationIntervalSeesHotBank)
{
    // All accesses in one bank: II collapses to the serial case.
    Graph g("hot");
    std::vector<NodeId> sums;
    for (int i = 0; i < 16; ++i) {
        // Node ids stride so every Load maps to bank id%P; craft by
        // padding with compute nodes to land loads on bank 0 (P=4).
        while (g.numNodes() % 4 != 0)
            g.addNode(OpType::Add);
        NodeId ld = g.addNode(OpType::Load);
        sums.push_back(ld);
    }
    NodeId total = reduceTree(g, std::move(sums), OpType::Add);
    storeAll(g, {total});
    Simulator sim(std::move(g));
    DesignPoint dp = dp45(4);
    dp.memory = MemoryMode::Banked;
    SimResult res = sim.run(dp);
    EXPECT_GE(res.initiation_interval, 16u); // all 16 loads on bank 0
}

TEST(Simulator, LaneUtilizationFallsPastParallelism)
{
    Simulator sim(kernels::makeRed(256));
    DesignPoint dp = dp45(4);
    double busy = sim.run(dp).lane_utilization;
    dp.partition = 4096;
    double idle = sim.run(dp).lane_utilization;
    EXPECT_GT(busy, 10.0 * idle);
    EXPECT_LE(busy, 1.0 + 1e-9);
    EXPECT_GT(idle, 0.0);
}

TEST(Simulator, FasterClockFusesLess)
{
    // At a shorter period fewer gate delays fit per cycle: chaining
    // fades, as the Section VI fChip=1GHz choice implies.
    Simulator sim(kernels::makeRed(512));
    DesignPoint dp = dp45(16, 1, true);
    dp.node_nm = 5.0;
    dp.clock_ghz = 1.0;
    std::uint64_t slow_fused = sim.run(dp).fused_ops;
    dp.clock_ghz = 3.0;
    std::uint64_t fast_fused = sim.run(dp).fused_ops;
    EXPECT_LT(fast_fused, slow_fused);
}

TEST(Simulator, DegenerateGraphs)
{
    // Only pseudo nodes: zero ops, runtime floors at one period.
    Graph pseudo("pseudo");
    NodeId in = pseudo.addNode(OpType::Input);
    NodeId out = pseudo.addNode(OpType::Output);
    pseudo.addEdge(in, out);
    Simulator sim(std::move(pseudo));
    SimResult res = sim.run(dp45());
    EXPECT_EQ(res.ops, 0u);
    EXPECT_DOUBLE_EQ(res.runtime_ns, 1.0);

    // Single load.
    Graph one("one");
    one.addNode(OpType::Load);
    Simulator sim1(std::move(one));
    SimResult r1 = sim1.run(dp45());
    EXPECT_EQ(r1.ops, 1u);
    EXPECT_GT(r1.energy_pj, 0.0);
}

TEST(Simulator, WideFanInNode)
{
    // A 4096-ary reduction into a single Add node (pathological fan-in)
    // must schedule and conserve work.
    Graph g("fanin");
    NodeId sink = g.addNode(OpType::Add);
    for (int i = 0; i < 4096; ++i) {
        NodeId ld = g.addNode(OpType::Load);
        g.addEdge(ld, sink);
    }
    storeAll(g, {sink});
    Simulator sim(std::move(g));
    SimResult res = sim.run(dp45(8));
    EXPECT_EQ(res.ops, 4096u + 1u + 1u);
    EXPECT_GE(res.cycles, 4096u / 8u);
}

TEST(MemoryModes, SimpleSerializesAccesses)
{
    // One port regardless of lanes: 128 loads take >= 128 cycles even
    // at high partitioning.
    Graph g("loads");
    auto in = loadArray(g, 128);
    auto sum = reduceTree(g, std::move(in), OpType::Add);
    storeAll(g, {sum});
    Simulator sim(std::move(g));

    DesignPoint dp = dp45(16);
    dp.memory = MemoryMode::Simple;
    SimResult simple = sim.run(dp);
    dp.memory = MemoryMode::Heterogeneous;
    SimResult het = sim.run(dp);

    EXPECT_GE(simple.cycles, 128u);
    EXPECT_LT(het.cycles, 30u);
    // But the simple hierarchy leaks less (no banks).
    EXPECT_LT(simple.leakage_power_uw, het.leakage_power_uw);
}

TEST(MemoryModes, BankConflictsHurtButNeverBelowSimple)
{
    // Striped banks fall between one port (worst) and the
    // problem-specific layout (best) for every kernel.
    for (const char *abbrev : {"SMV", "TRD", "S3D"}) {
        Simulator sim(kernels::makeKernel(abbrev));
        DesignPoint dp = dp45(16);
        dp.memory = MemoryMode::Simple;
        double t_simple = sim.run(dp).runtime_ns;
        dp.memory = MemoryMode::Banked;
        double t_banked = sim.run(dp).runtime_ns;
        dp.memory = MemoryMode::Heterogeneous;
        double t_het = sim.run(dp).runtime_ns;

        // Greedy list scheduling admits small anomalies (a conflict
        // can accidentally prioritize the critical path), so allow 5%.
        EXPECT_LE(t_het, t_banked * 1.05) << abbrev;
        EXPECT_LE(t_banked, t_simple * 1.05) << abbrev;
    }
}

TEST(MemoryModes, BankedConservesWork)
{
    Simulator sim(kernels::makeSmv(16, 8));
    DesignPoint dp = dp45(8);
    dp.memory = MemoryMode::Banked;
    SimResult res = sim.run(dp);
    EXPECT_EQ(res.ops, sim.graph().numNodes() -
                           sim.graph().countIf(dfg::isVariable));
}

TEST(CommModes, FifoAddsLatencyAndBlocksChaining)
{
    Simulator sim(serialAdds(32));
    DesignPoint dp = dp45(4, 1, true);
    dp.node_nm = 5.0;
    dp.comm = CommMode::Concurrent;
    SimResult fast = sim.run(dp);
    dp.comm = CommMode::Fifo;
    SimResult slow = sim.run(dp);

    EXPECT_GT(slow.runtime_ns, fast.runtime_ns);
    EXPECT_EQ(slow.fused_ops, 0u);
    EXPECT_GT(fast.fused_ops, 0u);
}

TEST(CommModes, DmaAcceleratesStreamingLoads)
{
    // TRD is load-dominated with all loads at the roots: DMA streaming
    // shortens it; the DFG with indirect loads (SMV) benefits less.
    Simulator trd(kernels::makeTrd(256));
    DesignPoint dp = dp45(8);
    dp.comm = CommMode::Concurrent;
    double base = trd.run(dp).runtime_ns;
    dp.comm = CommMode::Dma;
    SimResult with_dma = trd.run(dp);
    EXPECT_LT(with_dma.runtime_ns, base);
    // The engine costs area and leakage.
    dp.comm = CommMode::Concurrent;
    EXPECT_GT(with_dma.area_um2, trd.run(dp).area_um2);
}

TEST(CommModes, DefaultModesPreserveBaseline)
{
    // Heterogeneous memory + concurrent comm is the Table III default:
    // the extended design point must not change baseline results.
    Simulator sim(kernels::makeFft(32));
    DesignPoint dp = dp45(8, 3, true);
    SimResult a = sim.run(dp);
    dp.memory = MemoryMode::Heterogeneous;
    dp.comm = CommMode::Concurrent;
    SimResult b = sim.run(dp);
    EXPECT_DOUBLE_EQ(a.runtime_ns, b.runtime_ns);
    EXPECT_DOUBLE_EQ(a.energy_pj, b.energy_pj);
}

TEST(CommModes, ModeNamesAndStr)
{
    EXPECT_STREQ(memoryModeName(MemoryMode::Banked), "banked");
    EXPECT_STREQ(commModeName(CommMode::Dma), "dma");
    DesignPoint dp = dp45(2);
    dp.memory = MemoryMode::Simple;
    dp.comm = CommMode::Fifo;
    EXPECT_NE(dp.str().find("mem:simple"), std::string::npos);
    EXPECT_NE(dp.str().find("comm:fifo"), std::string::npos);
    DesignPoint plain = dp45(2);
    EXPECT_EQ(plain.str().find("mem:"), std::string::npos);
}

TEST(Attribution, TargetNames)
{
    EXPECT_STREQ(targetName(Target::Performance), "performance");
    EXPECT_STREQ(targetName(Target::EnergyEfficiency),
                 "energy efficiency");
}

} // namespace
} // namespace accelwall::aladdin
