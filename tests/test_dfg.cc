/**
 * @file
 * Unit tests for the DFG graph and structural analysis (Section V-B,
 * Figure 11).
 */

#include <gtest/gtest.h>

#include <functional>

#include "dfg/analysis.hh"
#include "dfg/dot.hh"
#include "dfg/graph.hh"
#include "dfg/op_type.hh"

namespace accelwall::dfg
{
namespace
{

TEST(OpType, Classification)
{
    EXPECT_TRUE(isVariable(OpType::Input));
    EXPECT_TRUE(isVariable(OpType::Output));
    EXPECT_TRUE(isMemory(OpType::Load));
    EXPECT_TRUE(isMemory(OpType::Store));
    EXPECT_TRUE(isCompute(OpType::FMul));
    EXPECT_TRUE(isCompute(OpType::Lut));
    EXPECT_FALSE(isCompute(OpType::Load));
    EXPECT_FALSE(isMemory(OpType::Add));
}

TEST(OpType, NamesAreUnique)
{
    std::set<std::string> names;
    for (int i = 0; i < kNumOpTypes; ++i)
        names.insert(opName(static_cast<OpType>(i)));
    EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumOpTypes));
}

TEST(Graph, BuildAndQuery)
{
    Graph g("t");
    NodeId a = g.addNode(OpType::Input);
    NodeId b = g.addNode(OpType::Add);
    NodeId c = g.addNode(OpType::Output);
    g.addEdge(a, b);
    g.addEdge(b, c);

    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.op(b), OpType::Add);
    ASSERT_EQ(g.preds(b).size(), 1u);
    EXPECT_EQ(g.preds(b)[0], a);
    ASSERT_EQ(g.succs(b).size(), 1u);
    EXPECT_EQ(g.succs(b)[0], c);
    EXPECT_EQ(g.sources(), std::vector<NodeId>{a});
    EXPECT_EQ(g.sinks(), std::vector<NodeId>{c});
}

TEST(Graph, SelfEdgeDies)
{
    Graph g("t");
    NodeId a = g.addNode(OpType::Add);
    EXPECT_EXIT(g.addEdge(a, a), ::testing::ExitedWithCode(1),
                "self edge");
}

TEST(Graph, OutOfRangeDies)
{
    Graph g("t");
    g.addNode(OpType::Add);
    EXPECT_EXIT(g.addEdge(0, 5), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(Graph, TopoOrderRespectsEdges)
{
    Graph g("t");
    NodeId a = g.addNode(OpType::Input);
    NodeId b = g.addNode(OpType::Add);
    NodeId c = g.addNode(OpType::Mul);
    NodeId d = g.addNode(OpType::Output);
    g.addEdge(a, b);
    g.addEdge(a, c);
    g.addEdge(b, d);
    g.addEdge(c, d);

    auto order = g.topoOrder();
    ASSERT_EQ(order.size(), 4u);
    std::vector<std::size_t> pos(4);
    for (std::size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = i;
    EXPECT_LT(pos[a], pos[b]);
    EXPECT_LT(pos[a], pos[c]);
    EXPECT_LT(pos[b], pos[d]);
    EXPECT_LT(pos[c], pos[d]);
}

TEST(Graph, CycleDetected)
{
    Graph g("t");
    NodeId a = g.addNode(OpType::Add);
    NodeId b = g.addNode(OpType::Add);
    NodeId c = g.addNode(OpType::Add);
    g.addEdge(a, b);
    g.addEdge(b, c);
    g.addEdge(c, a);
    EXPECT_EXIT(g.topoOrder(), ::testing::ExitedWithCode(1), "cycle");
}

TEST(Analysis, Figure11Example)
{
    // Paper Figure 11: 3 inputs, 2 computation stages, 2 outputs.
    Graph g = makeFigure11Example();
    Analysis a = analyze(g);

    EXPECT_EQ(a.num_nodes, 9u);
    EXPECT_EQ(a.num_edges, 10u);
    EXPECT_EQ(a.num_inputs, 3u);
    EXPECT_EQ(a.num_outputs, 2u);
    EXPECT_EQ(a.num_compute, 4u);

    // Longest computation path: in -> stage1 -> stage2 -> out.
    EXPECT_EQ(a.depth, 4u);

    // Stage working sets: 3 inputs, 2 stage-1 ops, 2 stage-2 ops, 2 outs.
    ASSERT_EQ(a.stage_sizes.size(), 4u);
    EXPECT_EQ(a.stage_sizes[0], 3u);
    EXPECT_EQ(a.stage_sizes[1], 2u);
    EXPECT_EQ(a.stage_sizes[2], 2u);
    EXPECT_EQ(a.stage_sizes[3], 2u);
    EXPECT_EQ(a.max_working_set, 3u);

    // Paths: in1 reaches both outs via add1 (2); in2 via add1 and div1
    // (4); in3 via div1 (2) -> 8 input-to-output routes.
    EXPECT_DOUBLE_EQ(a.num_paths, 8.0);
}

TEST(Analysis, ChainDepth)
{
    // A linear chain of n nodes has depth n, working set 1.
    Graph g("chain");
    NodeId prev = g.addNode(OpType::Input);
    for (int i = 0; i < 5; ++i) {
        NodeId next = g.addNode(OpType::Add);
        g.addEdge(prev, next);
        prev = next;
    }
    NodeId out = g.addNode(OpType::Output);
    g.addEdge(prev, out);

    Analysis a = analyze(g);
    EXPECT_EQ(a.depth, 7u);
    EXPECT_EQ(a.max_working_set, 1u);
    EXPECT_DOUBLE_EQ(a.num_paths, 1.0);
}

TEST(Analysis, WideParallelGraph)
{
    // n independent input->op->output triples: depth 3, WS max = n.
    Graph g("wide");
    const int n = 16;
    for (int i = 0; i < n; ++i) {
        NodeId in = g.addNode(OpType::Input);
        NodeId op = g.addNode(OpType::FMul);
        NodeId out = g.addNode(OpType::Output);
        g.addEdge(in, op);
        g.addEdge(op, out);
    }
    Analysis a = analyze(g);
    EXPECT_EQ(a.depth, 3u);
    EXPECT_EQ(a.max_working_set, static_cast<std::size_t>(n));
    EXPECT_DOUBLE_EQ(a.num_paths, static_cast<double>(n));
}

TEST(Analysis, ReductionTree)
{
    // Balanced binary reduction over 8 inputs: depth = 3 levels + in/out.
    Graph g("tree");
    std::vector<NodeId> level;
    for (int i = 0; i < 8; ++i)
        level.push_back(g.addNode(OpType::Input));
    while (level.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
            NodeId add = g.addNode(OpType::Add);
            g.addEdge(level[i], add);
            g.addEdge(level[i + 1], add);
            next.push_back(add);
        }
        level = next;
    }
    NodeId out = g.addNode(OpType::Output);
    g.addEdge(level[0], out);

    Analysis a = analyze(g);
    EXPECT_EQ(a.num_nodes, 8u + 7u + 1u);
    EXPECT_EQ(a.depth, 5u); // inputs, 3 add levels, output
    EXPECT_EQ(a.max_working_set, 8u);
    EXPECT_DOUBLE_EQ(a.num_paths, 8.0);
}

TEST(Analysis, EmptyGraphDies)
{
    Graph g("empty");
    EXPECT_EXIT(analyze(g), ::testing::ExitedWithCode(1), "empty");
}

TEST(Dot, RendersSmallGraph)
{
    Graph g = makeFigure11Example();
    std::string dot = toDot(g);
    EXPECT_NE(dot.find("digraph \"figure11\""), std::string::npos);
    // Every node and edge appears.
    EXPECT_NE(dot.find("n0 ["), std::string::npos);
    EXPECT_NE(dot.find("n8 ["), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    // Stage ranking emitted.
    EXPECT_NE(dot.find("rank=same"), std::string::npos);
    // Edge count: 10 "->" edge lines.
    std::size_t edges = 0, pos = 0;
    while ((pos = dot.find(" -> n", pos)) != std::string::npos) {
        ++edges;
        ++pos;
    }
    EXPECT_EQ(edges, 10u);
}

TEST(Dot, SummarizesLargeGraph)
{
    // Above max_nodes the export collapses to a stage summary.
    Graph g("big");
    std::vector<NodeId> prev;
    for (int i = 0; i < 600; ++i)
        prev.push_back(g.addNode(OpType::Load));
    for (NodeId id : prev) {
        NodeId add = g.addNode(OpType::Add);
        g.addEdge(id, add);
    }
    std::string dot = toDot(g);
    EXPECT_NE(dot.find("stage0"), std::string::npos);
    EXPECT_NE(dot.find("600 nodes"), std::string::npos);
    EXPECT_EQ(dot.find("n0 ["), std::string::npos);
}

TEST(Analysis, PathCountMatchesBruteForce)
{
    // Cross-check the DP path count against explicit enumeration on a
    // small random-ish layered DAG.
    Graph g("paths");
    std::vector<NodeId> prev = {g.addNode(OpType::Input),
                                g.addNode(OpType::Input)};
    for (int level = 0; level < 4; ++level) {
        std::vector<NodeId> cur;
        for (int i = 0; i < 3; ++i) {
            NodeId n = g.addNode(OpType::Add);
            g.addEdge(prev[i % prev.size()], n);
            g.addEdge(prev[(i + 1) % prev.size()], n);
            cur.push_back(n);
        }
        prev = cur;
    }
    for (NodeId n : prev) {
        NodeId out = g.addNode(OpType::Output);
        g.addEdge(n, out);
    }

    // Brute force: DFS counting source-to-sink routes.
    std::function<double(NodeId)> count = [&](NodeId id) -> double {
        if (g.succs(id).empty())
            return 1.0;
        double total = 0.0;
        for (NodeId s : g.succs(id))
            total += count(s);
        return total;
    };
    double brute = 0.0;
    for (NodeId src : g.sources())
        brute += count(src);

    Analysis a = analyze(g);
    EXPECT_DOUBLE_EQ(a.num_paths, brute);
}

TEST(Analysis, StageIsLongestPathPosition)
{
    // Diamond with one long side: stage of the join reflects the longer
    // path (ASAP by longest incoming path).
    Graph g("diamond");
    NodeId in = g.addNode(OpType::Input);
    NodeId short_op = g.addNode(OpType::Add);
    NodeId long1 = g.addNode(OpType::Mul);
    NodeId long2 = g.addNode(OpType::Mul);
    NodeId join = g.addNode(OpType::Add);
    NodeId out = g.addNode(OpType::Output);
    g.addEdge(in, short_op);
    g.addEdge(in, long1);
    g.addEdge(long1, long2);
    g.addEdge(short_op, join);
    g.addEdge(long2, join);
    g.addEdge(join, out);

    Analysis a = analyze(g);
    EXPECT_EQ(a.stage[join], 3u);
    EXPECT_EQ(a.depth, 5u);
}

} // namespace
} // namespace accelwall::dfg
