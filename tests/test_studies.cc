/**
 * @file
 * Tests for the four case studies (Section IV): dataset sanity and the
 * paper's headline shapes — who wins, by roughly what factor, and how
 * CSR behaves.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "csr/arch_gains.hh"
#include "csr/csr.hh"
#include "potential/model.hh"
#include "studies/bitcoin.hh"
#include "studies/fpga.hh"
#include "studies/gpu.hh"
#include "studies/video.hh"

namespace accelwall::studies
{
namespace
{

using csr::csrSeries;
using csr::Metric;
using potential::PotentialModel;

double
maxRelGain(const std::vector<csr::CsrPoint> &series)
{
    double best = 0.0;
    for (const auto &pt : series)
        best = std::max(best, pt.rel_gain);
    return best;
}

// ---------------------------------------------------------------------
// Video decoder ASICs (Figure 4).
// ---------------------------------------------------------------------

TEST(Video, DatasetShape)
{
    const auto &chips = videoDecoderChips();
    ASSERT_EQ(chips.size(), 12u);
    EXPECT_EQ(chips.front().label, "ISSCC2006");
    EXPECT_EQ(chips.back().label, "JSSC2017");
    for (const auto &c : chips) {
        EXPECT_GT(c.mpix_s, 0.0);
        EXPECT_GT(c.power_mw, 0.0);
        EXPECT_GT(c.kgates, 0.0);
    }
}

TEST(Video, TransistorEstimateMethod)
{
    // 4 transistors per NAND gate + 6 per SRAM bit.
    VideoChip chip;
    chip.kgates = 100.0;
    chip.sram_kb = 1.0;
    EXPECT_DOUBLE_EQ(videoTransistors(chip),
                     100e3 * 4.0 + 1024.0 * 8.0 * 6.0);
}

TEST(Video, TransistorSpreadMatchesPaper)
{
    // JSSC2017 has ~36x the transistors of ISSCC2006.
    const auto &chips = videoDecoderChips();
    double ratio = videoTransistors(chips.back()) /
                   videoTransistors(chips.front());
    EXPECT_GT(ratio, 25.0);
    EXPECT_LT(ratio, 50.0);
}

TEST(Video, PerformanceImproves64x)
{
    PotentialModel m;
    auto series = csrSeries(videoChipGains(false), m,
                            Metric::Throughput);
    EXPECT_NEAR(maxRelGain(series), 64.0, 6.0);
}

TEST(Video, EfficiencyImproves34x)
{
    PotentialModel m;
    auto series = csrSeries(videoChipGains(true), m,
                            Metric::EnergyEfficiency);
    EXPECT_NEAR(maxRelGain(series), 34.0, 8.0);
    // Figure 4c's CSR band: specialization return hovers near 1 and
    // never exceeds ~1.5 in this mature domain.
    for (const auto &pt : series) {
        EXPECT_GT(pt.csr, 0.5) << pt.name;
        EXPECT_LT(pt.csr, 1.6) << pt.name;
    }
}

TEST(Video, BestPerformerCsrBelowOne)
{
    // "for the best performing ASICs, chip specialization did not
    // improve, and even got worse since CSR was less than one."
    PotentialModel m;
    auto series = csrSeries(videoChipGains(false), m,
                            Metric::Throughput);
    const auto &best = *std::max_element(
        series.begin(), series.end(),
        [](const auto &a, const auto &b) {
            return a.rel_gain < b.rel_gain;
        });
    EXPECT_LT(best.csr, 1.0);
    // CSR across the study never strays far above 1.5x.
    for (const auto &pt : series)
        EXPECT_LT(pt.csr, 1.8);
}

// ---------------------------------------------------------------------
// GPU gaming (Figures 5-7).
// ---------------------------------------------------------------------

TEST(Gpu, DatasetShape)
{
    EXPECT_EQ(gpuArchs().size(), 10u);
    EXPECT_GE(gpuChips().size(), 25u);
    EXPECT_EQ(gameApps().size(), 24u);
    EXPECT_EQ(headlineApps().size(), 5u);
}

TEST(Gpu, BenchmarksDeterministic)
{
    const auto &a = gpuBenchmarks();
    const auto &b = gpuBenchmarks();
    EXPECT_EQ(&a, &b); // memoized
    ASSERT_FALSE(a.empty());
}

TEST(Gpu, EveryAppTestedOnManyGpus)
{
    // Paper: "Each of the presented applications was tested on over 20
    // different GPUs" — our eras give each headline app a broad set.
    for (const auto &app : headlineApps()) {
        auto series = gpuAppSeries(app, false);
        EXPECT_GE(series.size(), 10u) << app;
    }
}

TEST(Gpu, HeadlineAppGainsInPaperBand)
{
    // Frame-rate gains grow several-fold over each app's GPU span while
    // CSR stays within ~0.9-1.6 (Fig. 5's annotations: gains 4.2-5.9x,
    // CSR 0.95-1.47x). Our synthetic potential axis is stretched vs the
    // paper's, so we assert the CSR band tightly and the gain loosely.
    PotentialModel m;
    for (const auto &app : headlineApps()) {
        auto series = csrSeries(gpuAppSeries(app, false), m,
                                Metric::Throughput);
        EXPECT_GT(maxRelGain(series), 3.0) << app;
        for (const auto &pt : series) {
            EXPECT_GT(pt.csr, 0.7) << app << " " << pt.name;
            EXPECT_LT(pt.csr, 1.8) << app << " " << pt.name;
        }
    }
}

TEST(Gpu, FirstArchOnNewNodeUnderperforms)
{
    // Fermi was the first 40nm architecture and regressed vs the
    // mature 55nm Tesla 2; Pascal (first 16nm) sits below Maxwell 2.
    EXPECT_LT(archQuality("Fermi"), archQuality("Tesla 2"));
    EXPECT_LT(archQuality("Pascal"), archQuality("Maxwell 2"));
    // Within a node, quality matures: Fermi 2 > Fermi.
    EXPECT_GT(archQuality("Fermi 2"), archQuality("Fermi"));
}

TEST(Gpu, ArchSolverRecoversQualityRatios)
{
    // End-to-end Figures 6-7 machinery: relative arch gains over shared
    // apps, divided by relative physical potential, must recover the
    // embedded quality factors within noise.
    csr::ArchGainSolver solver(5);
    for (const auto &r : gpuBenchmarks())
        solver.addObservation(r.arch, r.app, r.fps);
    solver.solve();

    // Physical potential per arch: geomean over its chips.
    PotentialModel m;
    std::map<std::string, std::vector<double>> pots;
    for (const auto &gpu : gpuChips())
        pots[gpu.arch].push_back(m.throughput(gpuSpec(gpu)).raw());

    auto geo = [](const std::vector<double> &v) {
        double s = 0.0;
        for (double x : v)
            s += std::log(x);
        return std::exp(s / static_cast<double>(v.size()));
    };

    ASSERT_TRUE(solver.hasGain("Maxwell 2", "Tesla"));
    double gain = solver.gain("Maxwell 2", "Tesla");
    double phy = geo(pots["Maxwell 2"]) / geo(pots["Tesla"]);
    double csr = gain / phy;
    double truth = archQuality("Maxwell 2") / archQuality("Tesla");
    EXPECT_NEAR(csr, truth, 0.25 * truth);
}

TEST(Gpu, TransitivityEngages)
{
    // Tesla-era and Pascal-era games do not overlap directly: fewer
    // than 5 shared apps forces the Eq. 4 path.
    csr::ArchGainSolver solver(5);
    for (const auto &r : gpuBenchmarks())
        solver.addObservation(r.arch, r.app, r.fps);
    EXPECT_LT(solver.sharedApps("Tesla", "Pascal"), 5);
    solver.solve();
    EXPECT_TRUE(solver.hasGain("Tesla", "Pascal"));
    EXPECT_FALSE(solver.isDirect("Tesla", "Pascal"));
}

// ---------------------------------------------------------------------
// FPGA CNNs (Figure 8).
// ---------------------------------------------------------------------

TEST(Fpga, DatasetShape)
{
    EXPECT_EQ(fpgaDesignsFor("AlexNet").size(), 11u);
    EXPECT_EQ(fpgaDesignsFor("VGG-16").size(), 9u);
    for (const auto &d : fpgaCnnDesigns()) {
        EXPECT_TRUE(d.node_nm == 28.0 || d.node_nm == 20.0) << d.label;
        EXPECT_GT(d.gops, 0.0);
        EXPECT_LE(d.lut_pct, 100.0);
        EXPECT_LE(d.dsp_pct, 100.0);
        EXPECT_LE(d.bram_pct, 100.0);
    }
    EXPECT_EXIT(fpgaDesignsFor("LeNet"), ::testing::ExitedWithCode(1),
                "no designs");
}

TEST(Fpga, AlexNetGains)
{
    PotentialModel m;
    auto perf = csrSeries(
        fpgaChipGains(fpgaDesignsFor("AlexNet"), false), m,
        Metric::Throughput);
    EXPECT_NEAR(maxRelGain(perf), 24.0, 4.0);

    auto eff = csrSeries(fpgaChipGains(fpgaDesignsFor("AlexNet"), true),
                         m, Metric::EnergyEfficiency);
    EXPECT_NEAR(maxRelGain(eff), 14.0, 4.0);
}

TEST(Fpga, VggGainsSmallerThanAlexNet)
{
    // The 3x larger model stresses resources: VGG-16 improved ~9x
    // (perf) and ~7x (efficiency), both well below AlexNet.
    PotentialModel m;
    auto perf = csrSeries(fpgaChipGains(fpgaDesignsFor("VGG-16"), false),
                          m, Metric::Throughput);
    EXPECT_NEAR(maxRelGain(perf), 9.0, 2.0);
    auto eff = csrSeries(fpgaChipGains(fpgaDesignsFor("VGG-16"), true),
                         m, Metric::EnergyEfficiency);
    EXPECT_NEAR(maxRelGain(eff), 7.0, 2.0);
}

TEST(Fpga, CsrImprovesInEmergingDomain)
{
    // Unlike the mature domains, CNN CSR improved by up to ~6x.
    PotentialModel m;
    auto series = csrSeries(
        fpgaChipGains(fpgaDesignsFor("AlexNet"), false), m,
        Metric::Throughput);
    double best_csr = 0.0;
    for (const auto &pt : series)
        best_csr = std::max(best_csr, pt.csr);
    EXPECT_GT(best_csr, 3.0);
    EXPECT_LT(best_csr, 8.0);
}

// ---------------------------------------------------------------------
// Bitcoin mining (Figures 1 and 9).
// ---------------------------------------------------------------------

TEST(Bitcoin, DatasetShape)
{
    const auto &chips = miningChips();
    ASSERT_GE(chips.size(), 20u);
    std::set<chipdb::Platform> platforms;
    for (const auto &c : chips)
        platforms.insert(c.platform);
    EXPECT_EQ(platforms.size(), 4u); // CPU, GPU, FPGA, ASIC
    EXPECT_EQ(miningAsics().size(), 12u);
    // Dates span the Figure 1 axis (12-2012 .. 06-2016) for ASICs.
    EXPECT_NEAR(miningAsics().front().year, 2012.9, 0.2);
    EXPECT_NEAR(miningAsics().back().year, 2016.5, 0.2);
}

TEST(Bitcoin, Figure1Anchors)
{
    // ASIC per-area performance ~510x; physical potential ~307x; CSR
    // flat around ~1.7x.
    PotentialModel m;
    auto series = csrSeries(miningChipGains(miningAsics(), false), m,
                            Metric::AreaThroughput);
    const auto &last = series.back();
    EXPECT_NEAR(last.rel_gain, 510.0, 120.0);
    EXPECT_NEAR(last.rel_phy, 307.0, 90.0);
    EXPECT_NEAR(last.csr, 1.66, 0.5);
}

TEST(Bitcoin, AsicsBeatCpusBySixOrders)
{
    // Perf/area: best ASIC vs the CPU baseline ~600,000x.
    PotentialModel m;
    auto series = csrSeries(miningChipGains(miningChips(), false), m,
                            Metric::AreaThroughput);
    double best = maxRelGain(series);
    EXPECT_GT(best, 2e5);
    EXPECT_LT(best, 2e6);
}

TEST(Bitcoin, PlatformTransitionBoostsCsr)
{
    // "most CSR gains were obtained by the transition to a new
    // platform": the first ASIC's CSR dwarfs every pre-ASIC CSR.
    PotentialModel m;
    auto chips = miningChipGains(miningChips(), false);
    auto series = csrSeries(chips, m, Metric::AreaThroughput);
    double first_asic_csr = 0.0;
    double best_pre_asic = 0.0;
    for (std::size_t i = 0; i < series.size(); ++i) {
        bool is_asic = miningChips()[i].platform ==
                       chipdb::Platform::ASIC;
        if (is_asic && first_asic_csr == 0.0)
            first_asic_csr = series[i].csr;
        if (!is_asic)
            best_pre_asic = std::max(best_pre_asic, series[i].csr);
    }
    EXPECT_GT(first_asic_csr, 20.0 * best_pre_asic);
}

TEST(Bitcoin, EfficiencyCsrDipsAtNodeJump)
{
    // Fig. 9b regions: CSR improves within the early (130/110nm) ASICs,
    // dips across the abrupt 110nm -> 28nm transition, then improves
    // again in the modern (28/16nm) region.
    PotentialModel m;
    auto asics = miningAsics();
    auto series = csrSeries(miningChipGains(asics, true), m,
                            Metric::EnergyEfficiency);

    double best_early = 0.0, first_modern = 0.0, best_modern = 0.0;
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (asics[i].node_nm >= 110.0) {
            best_early = std::max(best_early, series[i].csr);
        } else if (asics[i].node_nm <= 28.0) {
            if (first_modern == 0.0)
                first_modern = series[i].csr;
            best_modern = std::max(best_modern, series[i].csr);
        }
    }
    EXPECT_LT(first_modern, best_early);   // the dip
    EXPECT_GT(best_modern, first_modern);  // region-2 recovery
}

} // namespace
} // namespace accelwall::studies
