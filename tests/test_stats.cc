/**
 * @file
 * Unit tests for the stats module: descriptive stats, curve fits, Pareto
 * frontier.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hh"
#include "stats/fits.hh"
#include "stats/pareto.hh"
#include "util/rng.hh"

namespace accelwall::stats
{
namespace
{

TEST(Descriptive, Mean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Descriptive, Geomean)
{
    EXPECT_NEAR(geomean({1.0, 100.0}), 10.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Descriptive, GeomeanRejectsNonPositive)
{
    EXPECT_EXIT(geomean({1.0, 0.0}), ::testing::ExitedWithCode(1),
                "positive");
}

TEST(Descriptive, Stddev)
{
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                2.13809, 1e-4);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(Descriptive, Median)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Descriptive, MinMax)
{
    EXPECT_DOUBLE_EQ(minOf({3.0, 1.0, 2.0}), 1.0);
    EXPECT_DOUBLE_EQ(maxOf({3.0, 1.0, 2.0}), 3.0);
}

TEST(Descriptive, Mse)
{
    EXPECT_DOUBLE_EQ(meanSquaredError({1.0, 2.0}, {1.0, 4.0}), 2.0);
}

TEST(Fits, LinearExact)
{
    LinearFit fit = fitLinear({0.0, 1.0, 2.0}, {1.0, 3.0, 5.0});
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
    EXPECT_NEAR(fit(10.0), 21.0, 1e-12);
}

TEST(Fits, LinearNoisy)
{
    Rng rng(3);
    std::vector<double> xs, ys;
    for (int i = 0; i < 500; ++i) {
        double x = rng.uniform(0.0, 10.0);
        xs.push_back(x);
        ys.push_back(3.0 * x - 2.0 + rng.normal(0.0, 0.1));
    }
    LinearFit fit = fitLinear(xs, ys);
    EXPECT_NEAR(fit.slope, 3.0, 0.02);
    EXPECT_NEAR(fit.intercept, -2.0, 0.05);
    EXPECT_GT(fit.r2, 0.99);
}

TEST(Fits, LinearDegenerateDies)
{
    EXPECT_EXIT(fitLinear({1.0, 1.0}, {1.0, 2.0}),
                ::testing::ExitedWithCode(1), "degenerate");
}

TEST(Fits, PowerLawRecoversPaperAreaModel)
{
    // Sample the paper's Fig. 3b law and recover its parameters.
    std::vector<double> d, tc;
    for (double x = 0.01; x < 100.0; x *= 1.5) {
        d.push_back(x);
        tc.push_back(4.99e9 * std::pow(x, 0.877));
    }
    PowerLawFit fit = fitPowerLaw(d, tc);
    EXPECT_NEAR(fit.exponent, 0.877, 1e-9);
    EXPECT_NEAR(fit.coeff / 4.99e9, 1.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Fits, PowerLawRejectsNonPositive)
{
    EXPECT_EXIT(fitPowerLaw({1.0, -2.0}, {1.0, 2.0}),
                ::testing::ExitedWithCode(1), "positive");
}

TEST(Fits, LogExact)
{
    std::vector<double> xs, ys;
    for (double x = 1.0; x < 1000.0; x *= 2.0) {
        xs.push_back(x);
        ys.push_back(4.0 * std::log(x) + 7.0);
    }
    LogFit fit = fitLog(xs, ys);
    EXPECT_NEAR(fit.a, 4.0, 1e-9);
    EXPECT_NEAR(fit.b, 7.0, 1e-9);
    EXPECT_NEAR(fit(std::exp(1.0)), 11.0, 1e-9);
}

TEST(Fits, QuadraticExact)
{
    std::vector<double> xs = {-2.0, -1.0, 0.0, 1.0, 2.0};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(2.0 * x * x - 3.0 * x + 5.0);
    QuadraticFit fit = fitQuadratic(xs, ys);
    EXPECT_NEAR(fit.a, 2.0, 1e-9);
    EXPECT_NEAR(fit.b, -3.0, 1e-9);
    EXPECT_NEAR(fit.c, 5.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(Fits, QuadraticWellConditionedForYearAbscissae)
{
    // Regression: raw calendar-year x values (~2e3) drove the normal
    // equations past double precision before centring was added.
    std::vector<double> xs, ys;
    for (double year = 2011.0; year <= 2017.0; year += 0.5) {
        xs.push_back(year);
        ys.push_back(0.2 * (year - 2011.0) * (year - 2011.0) + 1.0);
    }
    QuadraticFit fit = fitQuadratic(xs, ys);
    EXPECT_NEAR(fit(2017.0), 8.2, 1e-6);
    EXPECT_NEAR(fit(2011.0), 1.0, 1e-6);
    EXPECT_GT(fit.r2, 0.999);
}

TEST(Pareto, Dominance)
{
    // Smaller x (cost) and larger y (gain) dominates.
    EXPECT_TRUE(dominates({1.0, 5.0}, {2.0, 4.0}));
    EXPECT_TRUE(dominates({1.0, 5.0}, {1.0, 4.0}));
    EXPECT_FALSE(dominates({1.0, 5.0}, {1.0, 5.0}));
    EXPECT_FALSE(dominates({2.0, 6.0}, {1.0, 5.0}));
}

TEST(Pareto, ExtractsFrontier)
{
    std::vector<Point2> pts = {
        {1.0, 1.0}, {2.0, 3.0}, {2.0, 2.0}, {3.0, 2.5}, {4.0, 5.0},
    };
    auto front = paretoFrontier(pts);
    ASSERT_EQ(front.size(), 3u);
    EXPECT_DOUBLE_EQ(front[0].x, 1.0);
    EXPECT_DOUBLE_EQ(front[1].x, 2.0);
    EXPECT_DOUBLE_EQ(front[1].y, 3.0);
    EXPECT_DOUBLE_EQ(front[2].x, 4.0);
    EXPECT_DOUBLE_EQ(front[2].y, 5.0);
}

TEST(Pareto, FrontierIsMonotone)
{
    Rng rng(11);
    std::vector<Point2> pts;
    for (int i = 0; i < 500; ++i)
        pts.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
    auto front = paretoFrontier(pts);
    ASSERT_FALSE(front.empty());
    for (std::size_t i = 1; i < front.size(); ++i) {
        EXPECT_GT(front[i].x, front[i - 1].x);
        EXPECT_GT(front[i].y, front[i - 1].y);
    }
    // No frontier point may be dominated by any sample.
    for (const auto &f : front) {
        for (const auto &p : pts)
            EXPECT_FALSE(dominates(p, f));
    }
}

TEST(Pareto, EmptyInput)
{
    EXPECT_TRUE(paretoFrontier({}).empty());
}

} // namespace
} // namespace accelwall::stats
