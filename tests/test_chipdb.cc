/**
 * @file
 * Unit tests for the chipdb module: budget models (Fig. 3b/3c) and the
 * synthetic corpus generator, including end-to-end regression recovery.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "chipdb/budget.hh"
#include "chipdb/record.hh"
#include "chipdb/reference_chips.hh"
#include "chipdb/synth.hh"

namespace accelwall::chipdb
{
namespace
{

using namespace units::literals;
using units::Gigahertz;
using units::Nanometers;
using units::SquareMillimeters;
using units::TransistorCount;
using units::Watts;

TEST(Budget, DensityFactorMatchesPaperExamples)
{
    // 800mm² at 5nm -> D = 32 (the Fig. 3b "large 5nm chips, D <= 30"
    // region); 25mm² at 45nm -> D ~ 0.0123.
    EXPECT_DOUBLE_EQ(BudgetModel::densityFactor(800.0_mm2, 5.0_nm).raw(),
                     32.0);
    EXPECT_NEAR(BudgetModel::densityFactor(25.0_mm2, 45.0_nm).raw(),
                0.012346, 1e-5);
}

TEST(Budget, AreaLawAnchor)
{
    BudgetModel m;
    // TC(D=1) = 4.99e9 by construction.
    EXPECT_NEAR(m.areaTransistors(25.0_mm2, 5.0_nm).raw() / 4.99e9, 1.0,
                1e-12);
    // Large 5nm chips approach 1e11 transistors (paper text).
    double large = m.areaTransistors(800.0_mm2, 5.0_nm).raw();
    EXPECT_GT(large, 8e10);
    EXPECT_LT(large, 1.5e11);
}

TEST(Budget, AreaLawSubLinear)
{
    BudgetModel m;
    // Doubling area must less-than-double transistors (utilization).
    double one = m.areaTransistors(100.0_mm2, 16.0_nm).raw();
    double two = m.areaTransistors(200.0_mm2, 16.0_nm).raw();
    EXPECT_GT(two, one);
    EXPECT_LT(two, 2.0 * one);
}

TEST(Budget, AreaInversionRoundTrips)
{
    BudgetModel m;
    for (double area : {10.0, 50.0, 300.0, 800.0}) {
        TransistorCount tc =
            m.areaTransistors(SquareMillimeters{area}, 14.0_nm);
        EXPECT_NEAR(m.areaForTransistors(tc, 14.0_nm).raw(), area,
                    1e-6 * area);
    }
}

TEST(Budget, GroupLookup)
{
    BudgetModel m;
    EXPECT_EQ(m.groupFor(5.0_nm).label, "10nm-5nm");
    EXPECT_EQ(m.groupFor(7.0_nm).label, "10nm-5nm");
    EXPECT_EQ(m.groupFor(16.0_nm).label, "22nm-12nm");
    EXPECT_EQ(m.groupFor(28.0_nm).label, "32nm-28nm");
    EXPECT_EQ(m.groupFor(45.0_nm).label, "55nm-40nm");
    EXPECT_EQ(m.groupFor(90.0_nm).label, "250nm-65nm (extrapolated)");
    // Gap nodes resolve to the nearest group in log space.
    EXPECT_EQ(m.groupFor(25.0_nm).label, "32nm-28nm");
}

TEST(Budget, TdpLawMatchesPaperFigure3c)
{
    BudgetModel m;
    // Fig. 3d anchor: at 800W and 5nm, 2.15 * 800^0.402 ~ 31.6 B*GHz.
    double tghz = m.tdpTransistorGhz(800.0_w, 5.0_nm).raw();
    EXPECT_NEAR(tghz / 1e9, 31.6, 0.5);
    // At 1 GHz the whole product is transistors.
    EXPECT_NEAR(m.tdpTransistors(800.0_w, 5.0_nm, 1.0_ghz).raw(), tghz,
                1e-3);
    // At 2 GHz only half switch.
    EXPECT_NEAR(m.tdpTransistors(800.0_w, 5.0_nm, 2.0_ghz).raw(),
                tghz / 2.0, 1e-3);
}

TEST(Budget, NewerGroupsYieldMoreAtSameTdp)
{
    BudgetModel m;
    Watts w{150.0};
    EXPECT_GT(m.tdpTransistorGhz(w, 7.0_nm), m.tdpTransistorGhz(w, 16.0_nm));
    EXPECT_GT(m.tdpTransistorGhz(w, 16.0_nm),
              m.tdpTransistorGhz(w, 28.0_nm));
    EXPECT_GT(m.tdpTransistorGhz(w, 28.0_nm),
              m.tdpTransistorGhz(w, 45.0_nm));
    EXPECT_GT(m.tdpTransistorGhz(w, 45.0_nm),
              m.tdpTransistorGhz(w, 90.0_nm));
}

TEST(Budget, PlatformNames)
{
    EXPECT_STREQ(platformName(Platform::CPU), "CPU");
    EXPECT_STREQ(platformName(Platform::ASIC), "ASIC");
}

TEST(Synth, CorpusSizeMatchesPaper)
{
    auto corpus = makeSynthCorpus();
    EXPECT_EQ(corpus.size(), 1612u + 1001u);
    int cpus = 0, gpus = 0;
    for (const auto &rec : corpus) {
        if (rec.platform == Platform::CPU)
            ++cpus;
        else if (rec.platform == Platform::GPU)
            ++gpus;
    }
    EXPECT_EQ(cpus, 1612);
    EXPECT_EQ(gpus, 1001);
}

TEST(Synth, Deterministic)
{
    auto a = makeSynthCorpus();
    auto b = makeSynthCorpus();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_DOUBLE_EQ(a[i].transistors, b[i].transistors);
        EXPECT_DOUBLE_EQ(a[i].tdp_w, b[i].tdp_w);
    }
}

TEST(Synth, FieldsPlausible)
{
    for (const auto &rec : makeSynthCorpus()) {
        EXPECT_GT(rec.node_nm, 4.0);
        EXPECT_LT(rec.node_nm, 260.0);
        EXPECT_GT(rec.area_mm2, 10.0);
        EXPECT_LT(rec.area_mm2, 900.0);
        EXPECT_GE(rec.tdp_w, 5.0);
        EXPECT_LE(rec.tdp_w, 900.0);
        EXPECT_GT(rec.freq_mhz, 100.0);
        EXPECT_GE(rec.transistors, 0.0);
    }
}

TEST(Synth, SomeTransistorCountsUndisclosed)
{
    int undisclosed = 0;
    auto corpus = makeSynthCorpus();
    for (const auto &rec : corpus) {
        if (rec.transistors == 0.0)
            ++undisclosed;
    }
    double frac =
        static_cast<double>(undisclosed) / static_cast<double>(corpus.size());
    EXPECT_GT(frac, 0.05);
    EXPECT_LT(frac, 0.15);
}

/**
 * End-to-end: the regression machinery recovers the paper's published
 * area law from the noisy synthetic corpus (the Fig. 3b experiment).
 */
TEST(Synth, AreaFitRecoversPaperLaw)
{
    auto corpus = makeSynthCorpus();
    auto fit = fitAreaModel(corpus);
    EXPECT_NEAR(fit.exponent, 0.877, 0.02);
    EXPECT_NEAR(std::log10(fit.coeff), std::log10(4.99e9), 0.1);
    EXPECT_GT(fit.r2, 0.95);
}

/**
 * End-to-end: per-group TDP fits recover the Fig. 3c parameters.
 */
struct TdpCase
{
    double min_node, max_node, coeff, exponent;
};

class SynthTdpFit : public ::testing::TestWithParam<TdpCase>
{
};

TEST_P(SynthTdpFit, RecoversGroupLaw)
{
    const TdpCase &c = GetParam();
    auto corpus = makeSynthCorpus();
    auto fit = fitTdpModel(corpus, Nanometers{c.min_node},
                           Nanometers{c.max_node});
    EXPECT_NEAR(fit.exponent, c.exponent, 0.08);
    EXPECT_NEAR(std::log10(fit.coeff), std::log10(c.coeff), 0.18);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGroups, SynthTdpFit,
    ::testing::Values(TdpCase{5.0, 10.0, 2.15, 0.402},
                      TdpCase{12.0, 22.0, 0.49, 0.557},
                      TdpCase{28.0, 32.0, 0.11, 0.729},
                      TdpCase{40.0, 55.0, 0.02, 0.869}));

/**
 * Seed sweep: the regression recovery must be stable across corpus
 * seeds — the conclusions cannot depend on one lucky draw.
 */
class SynthSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SynthSeeds, AreaFitStableAcrossSeeds)
{
    SynthConfig config;
    config.seed = GetParam();
    auto corpus = makeSynthCorpus(config);
    auto fit = fitAreaModel(corpus);
    EXPECT_NEAR(fit.exponent, 0.877, 0.03);
    EXPECT_GT(fit.r2, 0.95);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthSeeds,
                         ::testing::Values(1ull, 7ull, 1234ull,
                                           0xDEADBEEFull));

TEST(Synth, NoiseKnobsWiden)
{
    // More transistor-count noise must lower the fit's R².
    SynthConfig tight;
    tight.tc_noise = 0.05;
    SynthConfig loose;
    loose.tc_noise = 0.5;
    double r2_tight = fitAreaModel(makeSynthCorpus(tight)).r2;
    double r2_loose = fitAreaModel(makeSynthCorpus(loose)).r2;
    EXPECT_GT(r2_tight, r2_loose);
}

/**
 * Validate the Fig. 3b law against real silicon: the canonical area
 * fit must predict every reference chip's published transistor count
 * within a factor of ~2.5 — remarkable given it spans 130nm..12nm and
 * two vendors' CPUs and GPUs.
 */
TEST(Reference, AreaLawPredictsRealChips)
{
    BudgetModel m;
    for (const auto &chip : referenceChips()) {
        double predicted =
            m.areaTransistors(chip.area(), chip.node()).raw();
        double ratio = predicted / chip.transistors;
        EXPECT_GT(ratio, 0.4) << chip.name;
        EXPECT_LT(ratio, 2.5) << chip.name;
    }
}

TEST(Reference, GeomeanPredictionNearUnity)
{
    // Systematic bias check: the geometric-mean prediction ratio over
    // the validation set stays within ~30% of 1.
    BudgetModel m;
    double log_sum = 0.0;
    int n = 0;
    for (const auto &chip : referenceChips()) {
        log_sum += std::log(
            m.areaTransistors(chip.area(), chip.node()).raw() /
            chip.transistors);
        ++n;
    }
    double geo = std::exp(log_sum / n);
    EXPECT_GT(geo, 0.7);
    EXPECT_LT(geo, 1.4);
}

TEST(Reference, DatasetSane)
{
    const auto &chips = referenceChips();
    EXPECT_GE(chips.size(), 20u);
    for (const auto &c : chips) {
        EXPECT_GT(c.transistors, 1e7) << c.name;
        EXPECT_GT(c.area_mm2, 50.0) << c.name;
        EXPECT_GT(c.tdp_w, 10.0) << c.name;
    }
}

TEST(Synth, FitTdpModelEmptyRangeDies)
{
    auto corpus = makeSynthCorpus();
    EXPECT_EXIT(fitTdpModel(corpus, 1.0_nm, 2.0_nm),
                ::testing::ExitedWithCode(1), "fewer than two records");
}

} // namespace
} // namespace accelwall::chipdb
