/**
 * @file
 * Differential harness locking the SoA sweep engine to the legacy
 * evaluator (ctest label: sweepdiff).
 *
 * The contract under test: ACCELWALL_SWEEP_ENGINE=legacy is the
 * oracle, and the data-oriented engine must reproduce it BIT FOR BIT —
 * every SimResult field compared through std::bit_cast, every CSV byte,
 * every error code — across:
 *
 *  - all Table IV kernels on the quick grid,
 *  - 240 generated (node, simplification) chains over seeded random
 *    DAGs (SplitMix64; reproducible across standard libraries),
 *  - every memory x comm x chaining x clock mode combination via
 *    direct evalPlanCell vs Simulator::run (the sweep grid itself
 *    never leaves the default modes, so the banked/FIFO/DMA paths are
 *    diffed cell by cell here),
 *  - fault-injected chains (ACCELWALL_FAULT=chain:N) under both
 *    OnError policies,
 *  - checkpoint/resume with the two engines on opposite sides of the
 *    crash (checkpoints are engine-portable by design).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "aladdin/simulator.hh"
#include "aladdin/soa_engine.hh"
#include "aladdin/sweep.hh"
#include "kernels/kernels.hh"
#include "util/csv.hh"
#include "util/error.hh"
#include "util/faultinject.hh"
#include "util/format.hh"
#include "util/rng.hh"

namespace accelwall
{
namespace
{

using aladdin::CommMode;
using aladdin::DesignPoint;
using aladdin::MemoryMode;
using aladdin::OnError;
using aladdin::runSweepChecked;
using aladdin::SimResult;
using aladdin::Simulator;
using aladdin::SweepConfig;
using aladdin::SweepEngine;
using aladdin::SweepOptions;
using aladdin::SweepOutcome;
using aladdin::SweepPoint;
using util::FaultPlan;

SweepOptions
engineOpts(SweepEngine engine)
{
    SweepOptions opts;
    opts.engine = engine;
    return opts;
}

/** Arms a fault plan for one test and disarms it on scope exit. */
class FaultGuard
{
  public:
    explicit FaultGuard(const std::string &spec)
    {
        auto r = FaultPlan::global().configure(spec);
        EXPECT_TRUE(r.ok()) << spec;
    }
    ~FaultGuard() { FaultPlan::global().clear(); }
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    out << content;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "accelwall_diff_" + name;
}

/** Keep the header plus the first @p k complete chain blocks. */
std::string
keepBlocks(const std::string &ckpt, std::size_t k)
{
    std::istringstream iss(ckpt);
    std::string line, out;
    std::size_t ends = 0;
    while (std::getline(iss, line)) {
        out += line + "\n";
        if (line.rfind("end ", 0) == 0 && ++ends == k)
            break;
    }
    return out;
}

/** Every field, through the bits — 0.0 vs -0.0 is a failure here. */
void
expectBitIdenticalResult(const SimResult &a, const SimResult &b)
{
    auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(bits(a.runtime_ns), bits(b.runtime_ns));
    EXPECT_EQ(bits(a.dynamic_energy_pj), bits(b.dynamic_energy_pj));
    EXPECT_EQ(bits(a.leakage_power_uw), bits(b.leakage_power_uw));
    EXPECT_EQ(bits(a.energy_pj), bits(b.energy_pj));
    EXPECT_EQ(bits(a.power_mw), bits(b.power_mw));
    EXPECT_EQ(bits(a.area_um2), bits(b.area_um2));
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.fused_ops, b.fused_ops);
    EXPECT_EQ(bits(a.throughput_ops), bits(b.throughput_ops));
    EXPECT_EQ(bits(a.efficiency_opj), bits(b.efficiency_opj));
    EXPECT_EQ(bits(a.lane_utilization), bits(b.lane_utilization));
    EXPECT_EQ(a.initiation_interval, b.initiation_interval);
    EXPECT_EQ(bits(a.pipelined_throughput_ops),
              bits(b.pipelined_throughput_ops));
}

void
expectBitIdenticalPoint(const SweepPoint &a, const SweepPoint &b)
{
    auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
    EXPECT_EQ(bits(a.dp.node_nm), bits(b.dp.node_nm));
    EXPECT_EQ(a.dp.partition, b.dp.partition);
    EXPECT_EQ(a.dp.simplification, b.dp.simplification);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error_code, b.error_code);
    EXPECT_EQ(a.error, b.error);
    expectBitIdenticalResult(a.res, b.res);
}

/** Run both engines and diff the full outcome (cells + report). */
void
diffSweep(const Simulator &sim, const SweepConfig &cfg,
          const SweepOptions &base = {})
{
    SweepOptions soa = base;
    soa.engine = SweepEngine::Soa;
    SweepOptions legacy = base;
    legacy.engine = SweepEngine::Legacy;

    auto a = runSweepChecked(sim, cfg, soa);
    auto b = runSweepChecked(sim, cfg, legacy);
    ASSERT_EQ(a.ok(), b.ok());
    if (!a.ok()) {
        EXPECT_EQ(a.error().code(), b.error().code());
        return;
    }
    ASSERT_EQ(a.value().points.size(), b.value().points.size());
    for (std::size_t i = 0; i < a.value().points.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectBitIdenticalPoint(a.value().points[i],
                                b.value().points[i]);
    }
    const auto &ra = a.value().report;
    const auto &rb = b.value().report;
    EXPECT_EQ(ra.chains, rb.chains);
    EXPECT_EQ(ra.evaluated, rb.evaluated);
    EXPECT_EQ(ra.restored, rb.restored);
    EXPECT_EQ(ra.failed, rb.failed);
    ASSERT_EQ(ra.failures.size(), rb.failures.size());
    for (std::size_t i = 0; i < ra.failures.size(); ++i) {
        EXPECT_EQ(ra.failures[i].chain, rb.failures[i].chain);
        EXPECT_EQ(ra.failures[i].code, rb.failures[i].code);
        EXPECT_EQ(ra.failures[i].message, rb.failures[i].message);
    }
    EXPECT_EQ(ra.engine, SweepEngine::Soa);
    EXPECT_EQ(rb.engine, SweepEngine::Legacy);
}

/**
 * A random layered DAG: pseudo-variable and root-load sources, mixed
 * compute/memory interior (indirect loads and stores included), sinks.
 * Forward edges only, so it is acyclic by construction; the op mix
 * deliberately includes the whole vocabulary so every per-class cost
 * row is exercised.
 */
dfg::Graph
randomGraph(Rng &rng, int index)
{
    using dfg::NodeId;
    using dfg::OpType;

    dfg::Graph g("diff_rand_" + std::to_string(index));
    const int layers = rng.uniformInt(3, 6);
    std::vector<NodeId> earlier;

    const int n_roots = rng.uniformInt(2, 6);
    for (int i = 0; i < n_roots; ++i) {
        OpType op = rng.uniform() < 0.5 ? OpType::Input : OpType::Load;
        earlier.push_back(g.addNode(op));
    }

    const OpType interior[] = {
        OpType::Add,  OpType::Sub,   OpType::Mul,  OpType::Div,
        OpType::Cmp,  OpType::And,   OpType::Or,   OpType::Xor,
        OpType::Shift, OpType::Select, OpType::Max, OpType::Min,
        OpType::FAdd, OpType::FSub,  OpType::FMul, OpType::FDiv,
        OpType::Sqrt, OpType::Exp,   OpType::Lut,  OpType::Load,
        OpType::Store,
    };
    for (int l = 1; l < layers; ++l) {
        const int width = rng.uniformInt(3, 12);
        std::vector<NodeId> current;
        for (int i = 0; i < width; ++i) {
            OpType op =
                interior[rng.uniformInt(0, std::size(interior) - 1)];
            NodeId id = g.addNode(op);
            const int fanin = rng.uniformInt(
                1, std::min<int>(3, static_cast<int>(earlier.size())));
            for (int e = 0; e < fanin; ++e) {
                NodeId from = earlier[rng.uniformInt(
                    0, static_cast<int>(earlier.size()) - 1)];
                g.addEdge(from, id);
            }
            current.push_back(id);
        }
        earlier.insert(earlier.end(), current.begin(), current.end());
    }

    // Terminate a few dangling values explicitly.
    const int n_sinks = rng.uniformInt(1, 4);
    for (int i = 0; i < n_sinks; ++i) {
        OpType op = rng.uniform() < 0.5 ? OpType::Output : OpType::Store;
        NodeId id = g.addNode(op);
        NodeId from = earlier[rng.uniformInt(
            0, static_cast<int>(earlier.size()) - 1)];
        g.addEdge(from, id);
    }
    return g;
}

// ---------------------------------------------------------------------
// Sweep-level diffs.
// ---------------------------------------------------------------------

TEST(SweepDiff, AllKernelsQuickGridBitIdentical)
{
    const SweepConfig cfg = SweepConfig::quick();
    for (const auto &info : kernels::kernelTable()) {
        SCOPED_TRACE(info.abbrev);
        Simulator sim(kernels::makeKernel(info.abbrev));
        diffSweep(sim, cfg);
    }
}

TEST(SweepDiff, RandomChainsExceedTwoHundredBitIdentical)
{
    // 16 seeded graphs x (3 nodes x 5 simplifications) = 240 chains.
    SweepConfig cfg;
    cfg.nodes = { 45.0, 14.0, 5.0 };
    cfg.partitions = { 1, 3, 8, 17 }; // odd factors stress id % banks
    cfg.simplifications = { 1, 4, 8, 11, 13 };

    Rng rng(0xd1ffu);
    std::size_t chains = 0;
    for (int i = 0; i < 16; ++i) {
        SCOPED_TRACE("graph " + std::to_string(i));
        Simulator sim(randomGraph(rng, i));
        diffSweep(sim, cfg);
        chains += cfg.nodes.size() * cfg.simplifications.size();
    }
    EXPECT_GE(chains, 200u);
}

// ---------------------------------------------------------------------
// Cell-level diffs over the full mode space. The sweep grid never
// leaves the default Heterogeneous/Concurrent modes, so the banked
// scratchpad (stamped queues) and FIFO/DMA fabric paths are diffed
// directly against Simulator::run here.
// ---------------------------------------------------------------------

TEST(SweepDiff, EveryMemoryCommModeCellBitIdentical)
{
    Rng rng(0xcafeu);
    std::vector<dfg::Graph> graphs;
    graphs.push_back(kernels::makeKernel("RED"));
    graphs.push_back(kernels::makeKernel("S2D"));
    graphs.push_back(randomGraph(rng, 100));
    graphs.push_back(randomGraph(rng, 101));

    for (const auto &graph : graphs) {
        SCOPED_TRACE(graph.name());
        Simulator sim(graph);
        aladdin::SweepPlan plan(sim.graph(), sim.analysis());
        aladdin::PlanScratch scratch;

        for (double node : {45.0, 7.0}) {
            for (int simp : {1, 13}) {
                for (bool chaining : {true, false}) {
                    for (auto comm :
                         {CommMode::Fifo, CommMode::Concurrent,
                          CommMode::Dma}) {
                        for (double clock : {1.0, 2.5}) {
                            DesignPoint dp;
                            dp.node_nm = node;
                            dp.simplification = simp;
                            dp.chaining = chaining;
                            dp.comm = comm;
                            dp.clock_ghz = clock;
                            const auto costs =
                                aladdin::deriveCellCosts(dp);
                            for (auto memory :
                                 {MemoryMode::Simple,
                                  MemoryMode::Banked,
                                  MemoryMode::Heterogeneous}) {
                                for (int partition : {1, 2, 5, 16}) {
                                    dp.memory = memory;
                                    dp.partition = partition;
                                    SCOPED_TRACE(dp.str());
                                    expectBitIdenticalResult(
                                        aladdin::evalPlanCell(
                                            plan, costs, dp, scratch),
                                        sim.run(dp));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// CSV bytes (the accelwall-sweep --csv surface).
// ---------------------------------------------------------------------

/** Mirror of accelwall-sweep's --csv emission, byte for byte. */
std::string
sweepCsv(const SweepOutcome &outcome)
{
    CsvWriter out({"node_nm", "partition", "simplification",
                   "runtime_ns", "energy_pj", "power_mw", "area_um2",
                   "efficiency_opj", "lane_utilization", "status"});
    for (const auto &p : outcome.points) {
        out.addRow({fmtFixed(p.dp.node_nm, 0),
                    std::to_string(p.dp.partition),
                    std::to_string(p.dp.simplification),
                    fmtFixed(p.res.runtime_ns, 3),
                    fmtFixed(p.res.energy_pj, 3),
                    fmtFixed(p.res.power_mw, 4),
                    fmtFixed(p.res.area_um2, 1),
                    fmtFixed(p.res.efficiency_opj, 0),
                    fmtFixed(p.res.lane_utilization, 4),
                    p.ok ? "ok" : errorCodeName(p.error_code)});
    }
    std::ostringstream os;
    out.write(os);
    return os.str();
}

TEST(SweepDiff, CsvBytesIdenticalAcrossEngines)
{
    const SweepConfig cfg = SweepConfig::quick();
    for (const char *kernel : {"RED", "FFT", "AES"}) {
        SCOPED_TRACE(kernel);
        Simulator sim(kernels::makeKernel(kernel));
        auto soa =
            runSweepChecked(sim, cfg, engineOpts(SweepEngine::Soa));
        auto legacy =
            runSweepChecked(sim, cfg, engineOpts(SweepEngine::Legacy));
        ASSERT_TRUE(soa.ok());
        ASSERT_TRUE(legacy.ok());
        EXPECT_EQ(sweepCsv(soa.value()), sweepCsv(legacy.value()));
    }
}

// ---------------------------------------------------------------------
// Failure paths: injected chain faults and abort codes.
// ---------------------------------------------------------------------

TEST(SweepDiff, FaultInjectedChainsDegradeIdentically)
{
    Simulator sim(kernels::makeKernel("RED"));
    const SweepConfig cfg = SweepConfig::quick();
    FaultGuard guard("chain:3");
    SweepOptions base;
    base.on_error = OnError::Skip;
    diffSweep(sim, cfg, base);
}

TEST(SweepDiff, AbortSurfacesSameErrorCode)
{
    Simulator sim(kernels::makeKernel("RED"));
    const SweepConfig cfg = SweepConfig::quick();
    FaultGuard guard("chain:1");
    for (auto engine : {SweepEngine::Soa, SweepEngine::Legacy}) {
        auto outcome = runSweepChecked(sim, cfg, engineOpts(engine));
        ASSERT_FALSE(outcome.ok());
        EXPECT_EQ(outcome.error().code(), ErrorCode::SweepChainFailed);
    }
}

// ---------------------------------------------------------------------
// Checkpoint/resume with the engines on opposite sides of the crash.
// ---------------------------------------------------------------------

TEST(SweepDiff, LegacyCheckpointResumesUnderSoa)
{
    Simulator sim(kernels::makeKernel("RED"));
    const SweepConfig cfg = SweepConfig::quick();
    auto clean = runSweepChecked(sim, cfg, engineOpts(SweepEngine::Legacy));
    ASSERT_TRUE(clean.ok());

    const std::string path = tmpPath("legacy_to_soa");
    SweepOptions write_opts = engineOpts(SweepEngine::Legacy);
    write_opts.checkpoint_path = path;
    ASSERT_TRUE(runSweepChecked(sim, cfg, write_opts).ok());
    writeFile(path, keepBlocks(readFile(path), 5));

    SweepOptions resume_opts = engineOpts(SweepEngine::Soa);
    resume_opts.checkpoint_path = path;
    resume_opts.resume = true;
    auto resumed = runSweepChecked(sim, cfg, resume_opts);
    ASSERT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.value().report.restored, 5u);
    EXPECT_EQ(resumed.value().report.evaluated, 7u);
    ASSERT_EQ(resumed.value().points.size(), clean.value().points.size());
    for (std::size_t i = 0; i < clean.value().points.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectBitIdenticalPoint(resumed.value().points[i],
                                clean.value().points[i]);
    }
}

TEST(SweepDiff, SoaCheckpointResumesUnderLegacy)
{
    Simulator sim(kernels::makeKernel("S2D"));
    const SweepConfig cfg = SweepConfig::quick();
    auto clean = runSweepChecked(sim, cfg, engineOpts(SweepEngine::Soa));
    ASSERT_TRUE(clean.ok());

    const std::string path = tmpPath("soa_to_legacy");
    SweepOptions write_opts = engineOpts(SweepEngine::Soa);
    write_opts.checkpoint_path = path;
    ASSERT_TRUE(runSweepChecked(sim, cfg, write_opts).ok());
    writeFile(path, keepBlocks(readFile(path), 4));

    SweepOptions resume_opts = engineOpts(SweepEngine::Legacy);
    resume_opts.checkpoint_path = path;
    resume_opts.resume = true;
    auto resumed = runSweepChecked(sim, cfg, resume_opts);
    ASSERT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.value().report.restored, 4u);
    EXPECT_EQ(resumed.value().report.evaluated, 8u);
    ASSERT_EQ(resumed.value().points.size(), clean.value().points.size());
    for (std::size_t i = 0; i < clean.value().points.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectBitIdenticalPoint(resumed.value().points[i],
                                clean.value().points[i]);
    }
}

TEST(SweepDiff, FailedChainsFromLegacyCheckpointRestoreUnderSoa)
{
    Simulator sim(kernels::makeKernel("RED"));
    const SweepConfig cfg = SweepConfig::quick();
    const std::string path = tmpPath("failed_mixed");

    {
        FaultGuard guard("chain:3");
        SweepOptions opts = engineOpts(SweepEngine::Legacy);
        opts.on_error = OnError::Skip;
        opts.checkpoint_path = path;
        ASSERT_TRUE(runSweepChecked(sim, cfg, opts).ok());
    }

    SweepOptions resume_opts = engineOpts(SweepEngine::Soa);
    resume_opts.on_error = OnError::Skip;
    resume_opts.checkpoint_path = path;
    resume_opts.resume = true;
    auto resumed = runSweepChecked(sim, cfg, resume_opts);
    ASSERT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.value().report.restored, 12u);
    EXPECT_EQ(resumed.value().report.failed, 4u);
    EXPECT_EQ(resumed.value().report.failures.front().code,
              ErrorCode::FaultInjected);
}

// ---------------------------------------------------------------------
// Engine selection.
// ---------------------------------------------------------------------

TEST(SweepDiff, EngineResolutionFollowsEnvironment)
{
    using aladdin::resolveSweepEngine;
    ASSERT_EQ(unsetenv("ACCELWALL_SWEEP_ENGINE"), 0);
    EXPECT_EQ(resolveSweepEngine(SweepEngine::Auto), SweepEngine::Soa);
    setenv("ACCELWALL_SWEEP_ENGINE", "legacy", 1);
    EXPECT_EQ(resolveSweepEngine(SweepEngine::Auto),
              SweepEngine::Legacy);
    // Explicit requests beat the environment.
    EXPECT_EQ(resolveSweepEngine(SweepEngine::Soa), SweepEngine::Soa);
    setenv("ACCELWALL_SWEEP_ENGINE", "soa", 1);
    EXPECT_EQ(resolveSweepEngine(SweepEngine::Auto), SweepEngine::Soa);
    setenv("ACCELWALL_SWEEP_ENGINE", "turbo", 1);
    EXPECT_EQ(resolveSweepEngine(SweepEngine::Auto), SweepEngine::Soa);
    unsetenv("ACCELWALL_SWEEP_ENGINE");

    EXPECT_STREQ(aladdin::sweepEngineName(SweepEngine::Soa), "soa");
    EXPECT_STREQ(aladdin::sweepEngineName(SweepEngine::Legacy),
                 "legacy");
    EXPECT_STREQ(aladdin::sweepEngineName(SweepEngine::Auto), "auto");
}

} // namespace
} // namespace accelwall
