/**
 * @file
 * Unit tests for the CMOS scaling table (Figure 3a substrate).
 */

#include <gtest/gtest.h>

#include "cmos/scaling.hh"

namespace accelwall::cmos
{
namespace
{

using units::Nanometers;
using namespace units::literals;

const ScalingTable &table = ScalingTable::instance();

TEST(Scaling, BaselineIsUnity)
{
    EXPECT_DOUBLE_EQ(table.frequencyGain(45.0_nm), 1.0);
    EXPECT_DOUBLE_EQ(table.dynamicEnergy(45.0_nm), 1.0);
    EXPECT_DOUBLE_EQ(table.leakagePower(45.0_nm), 1.0);
    EXPECT_DOUBLE_EQ(table.vddRel(45.0_nm), 1.0);
    EXPECT_DOUBLE_EQ(table.densityGain(45.0_nm), 1.0);
}

TEST(Scaling, HasPaperNodes)
{
    // All nodes named anywhere in the paper's figures must resolve.
    for (double node : {250.0, 180.0, 130.0, 110.0, 90.0, 65.0, 55.0,
                        45.0, 40.0, 32.0, 28.0, 22.0, 20.0, 16.0, 14.0,
                        12.0, 10.0, 7.0, 5.0}) {
        EXPECT_TRUE(table.has(Nanometers{node})) << node << "nm missing";
    }
}

TEST(Scaling, UnknownNodeDies)
{
    EXPECT_EXIT(table.at(6.0_nm), ::testing::ExitedWithCode(1),
                "not tabulated");
}

TEST(Scaling, NearestResolvesGeometrically)
{
    EXPECT_DOUBLE_EQ(table.nearest(6.9_nm).node_nm.raw(), 7.0);
    EXPECT_DOUBLE_EQ(table.nearest(200.0_nm).node_nm.raw(), 180.0);
    EXPECT_DOUBLE_EQ(table.nearest(3.0_nm).node_nm.raw(), 5.0);
}

TEST(Scaling, NodesSortedOldestFirst)
{
    auto nodes = table.nodes();
    ASSERT_GE(nodes.size(), 2u);
    for (std::size_t i = 1; i < nodes.size(); ++i)
        EXPECT_GT(nodes[i - 1].raw(), nodes[i].raw());
}

/**
 * Property sweep: every scaling quantity must be monotone in feature
 * size — that is the physical content of Figure 3a.
 */
class ScalingMonotone : public ::testing::TestWithParam<int>
{
};

TEST_P(ScalingMonotone, SuccessiveNodesImprove)
{
    auto nodes = table.nodes();
    std::size_t i = static_cast<std::size_t>(GetParam());
    ASSERT_LT(i + 1, nodes.size());
    Nanometers old_node = nodes[i], new_node = nodes[i + 1];

    // Newer nodes: faster, denser, lower switching energy, lower
    // per-device leakage, lower (or equal) supply voltage.
    EXPECT_GT(table.frequencyGain(new_node), table.frequencyGain(old_node));
    EXPECT_GT(table.densityGain(new_node), table.densityGain(old_node));
    EXPECT_LT(table.dynamicEnergy(new_node), table.dynamicEnergy(old_node));
    EXPECT_LT(table.leakagePower(new_node), table.leakagePower(old_node));
    EXPECT_LE(table.vddRel(new_node), table.vddRel(old_node));
    EXPECT_LT(table.capacitanceRel(new_node),
              table.capacitanceRel(old_node));
}

INSTANTIATE_TEST_SUITE_P(AllAdjacentPairs, ScalingMonotone,
                         ::testing::Range(0, 18));

TEST(Scaling, FiveNmMatchesPaperBallpark)
{
    // Paper Fig. 3a: 5nm dynamic energy roughly 20x below 45nm, VDD 0.6V
    // per IRDS, frequency gain between 2x and 3.5x.
    EXPECT_NEAR(table.dynamicEnergy(5.0_nm), 0.05, 0.02);
    EXPECT_NEAR(table.at(5.0_nm).vdd.raw(), 0.60, 1e-9);
    double f = table.frequencyGain(5.0_nm);
    EXPECT_GT(f, 2.0);
    EXPECT_LT(f, 3.5);
}

TEST(Scaling, DensityGainIsQuadratic)
{
    EXPECT_NEAR(table.densityGain(5.0_nm), 81.0, 1e-9);
    EXPECT_NEAR(table.densityGain(90.0_nm), 0.25, 1e-9);
}

TEST(Scaling, LeakagePerAreaRisesWithScaling)
{
    // Per-transistor leakage falls slower than density rises: the
    // dark-silicon premise. Check the 45nm -> 5nm endpoint.
    double per_area_45 =
        table.leakagePower(45.0_nm) * table.densityGain(45.0_nm);
    double per_area_5 =
        table.leakagePower(5.0_nm) * table.densityGain(5.0_nm);
    EXPECT_GT(per_area_5, per_area_45);
}

} // namespace
} // namespace accelwall::cmos
