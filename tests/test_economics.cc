/**
 * @file
 * Tests for the mining-market economics simulator: the Section IV-D
 * platform transitions must emerge endogenously.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "economics/mining_market.hh"

namespace accelwall::economics
{
namespace
{

using chipdb::Platform;

bool
contains(const std::vector<Platform> &v, Platform p)
{
    for (Platform x : v) {
        if (x == p)
            return true;
    }
    return false;
}

TEST(Market, ChipEvaluationArithmetic)
{
    studies::MiningChip chip;
    chip.label = "t";
    chip.platform = Platform::ASIC;
    chip.ghs = 10.0;
    chip.watts = 100.0;
    chip.area_mm2 = 50.0;

    MarketConfig cfg;
    cfg.usd_per_kwh = units::UsdPerKilowattHour{0.10};
    cfg.usd_per_mm2 = units::UsdPerSquareMillimeter{2.0};
    ChipEconomics econ = evaluateChip(chip, 1.0, cfg);
    // Revenue 10 USD/day, electricity 0.1kW*24h*0.1 = 0.24 USD/day.
    EXPECT_NEAR(econ.margin_usd_per_day.raw(), 9.76, 1e-9);
    EXPECT_NEAR(econ.energy_cost_share, 0.024, 1e-9);
    EXPECT_NEAR(econ.payback_days.raw(), 100.0 / 9.76, 1e-9);
}

TEST(Market, UnprofitableChipNeverPaysBack)
{
    studies::MiningChip chip;
    chip.ghs = 0.001;
    chip.watts = 100.0;
    chip.area_mm2 = 200.0;
    ChipEconomics econ = evaluateChip(chip, 1.0, MarketConfig{});
    EXPECT_LT(econ.margin_usd_per_day.raw(), 0.0);
    EXPECT_TRUE(std::isinf(econ.payback_days.raw()));
}

TEST(Market, NetworkGrowsAndRevenueDensityFalls)
{
    auto epochs = simulateMarket();
    ASSERT_GE(epochs.size(), 10u);
    for (std::size_t i = 1; i < epochs.size(); ++i) {
        EXPECT_GT(epochs[i].network_ghs, epochs[i - 1].network_ghs);
        EXPECT_LT(epochs[i].usd_per_ghs_day,
                  epochs[i - 1].usd_per_ghs_day);
    }
}

TEST(Market, PlatformTransitionsEmerge)
{
    auto epochs = simulateMarket();

    // Early: CPUs are profitable (network is tiny).
    const Epoch &first = epochs.front();
    EXPECT_TRUE(contains(first.profitable_platforms, Platform::CPU));

    // Late: CPUs and GPUs have been squeezed out; ASICs remain.
    const Epoch &last = epochs.back();
    EXPECT_FALSE(contains(last.profitable_platforms, Platform::CPU));
    EXPECT_FALSE(contains(last.profitable_platforms, Platform::GPU));
    EXPECT_TRUE(contains(last.profitable_platforms, Platform::ASIC));

    // The best chip's platform never regresses along CPU->GPU/FPGA->
    // ASIC once ASICs arrive.
    bool seen_asic = false;
    for (const auto &epoch : epochs) {
        if (epoch.best.platform == Platform::ASIC)
            seen_asic = true;
        if (seen_asic) {
            EXPECT_EQ(epoch.best.platform, Platform::ASIC)
                << "year " << epoch.year;
        }
    }
    EXPECT_TRUE(seen_asic);
}

TEST(Market, EnergyShareBecomesDominant)
{
    // "the energy spent became the dominating factor": the best chip's
    // electricity share of revenue rises over the simulation.
    auto epochs = simulateMarket();
    double early = epochs.front().best.energy_cost_share;
    double late = epochs.back().best.energy_cost_share;
    EXPECT_LT(early, 0.05);
    EXPECT_GT(late, 5.0 * early);
}

TEST(Market, RejectsBadConfig)
{
    MarketConfig cfg;
    cfg.step_years = 0.0;
    EXPECT_EXIT(simulateMarket(cfg), ::testing::ExitedWithCode(1),
                "time range");
    cfg = MarketConfig{};
    cfg.growth_per_year = 0.5;
    EXPECT_EXIT(simulateMarket(cfg), ::testing::ExitedWithCode(1),
                "grow");
}

} // namespace
} // namespace accelwall::economics
