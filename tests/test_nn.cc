/**
 * @file
 * Tests for the CNN layer-shape module: canonical AlexNet / VGG-16
 * costs and the layer-DFG generator.
 */

#include <gtest/gtest.h>

#include "dfg/analysis.hh"
#include "nn/conv_dfg.hh"
#include "nn/layers.hh"

namespace accelwall::nn
{
namespace
{

TEST(Layers, Conv1AlexNetGeometry)
{
    const Layer &conv1 = alexnetLayers().front();
    LayerCost c = layerCost(conv1);
    EXPECT_EQ(c.out_w, 55);
    EXPECT_EQ(c.out_h, 55);
    // 55*55*96 outputs x 11*11*3 MACs each.
    EXPECT_NEAR(c.macs, 105.4e6, 0.5e6);
    EXPECT_NEAR(c.params, 34.9e3, 0.5e3);
}

TEST(Layers, AlexNetTotals)
{
    ModelCost cost = modelCost(alexnetLayers());
    // ~724M MACs (1.45 GOP/image), ~61M parameters.
    EXPECT_NEAR(cost.total_macs / 1e6, 724.0, 30.0);
    EXPECT_NEAR(cost.total_params / 1e6, 61.0, 3.0);
    EXPECT_NEAR(cost.gops_per_image, 1.45, 0.1);
}

TEST(Layers, Vgg16Totals)
{
    ModelCost cost = modelCost(vgg16Layers());
    // ~15.5G MACs (31 GOP/image), ~138M parameters.
    EXPECT_NEAR(cost.total_macs / 1e9, 15.47, 0.5);
    EXPECT_NEAR(cost.total_params / 1e6, 138.0, 5.0);
}

TEST(Layers, PaperModelSizeClaims)
{
    // Section IV-C: "the amount of data needed to represent VGG-16 is
    // three times the amount of data for AlexNet, and the amount of
    // operations per image is about 20x".
    ModelCost alex = modelCost(alexnetLayers());
    ModelCost vgg = modelCost(vgg16Layers());
    double ops_ratio = vgg.total_macs / alex.total_macs;
    double param_ratio = vgg.total_params / alex.total_params;
    EXPECT_GT(ops_ratio, 15.0);
    EXPECT_LT(ops_ratio, 25.0);
    EXPECT_GT(param_ratio, 2.0);
    EXPECT_LT(param_ratio, 3.5);
}

TEST(Layers, PoolLayersCostNoMacs)
{
    for (const auto &layer : vgg16Layers()) {
        if (layer.kind == LayerKind::Pool) {
            LayerCost c = layerCost(layer);
            EXPECT_EQ(c.macs, 0.0);
            EXPECT_EQ(c.params, 0.0);
            EXPECT_GT(c.activations, 0.0);
        }
    }
}

TEST(Layers, BadGeometryDies)
{
    Layer bad;
    bad.name = "bad";
    bad.in_w = 0;
    EXPECT_EXIT(layerCost(bad), ::testing::ExitedWithCode(1),
                "geometry");
}

TEST(ConvDfg, ConvTileStructure)
{
    const Layer &conv3 = alexnetLayers()[4]; // 3x3x256 receptive field
    dfg::Graph g = makeLayerDfg(conv3, 2, 2, 4);
    dfg::Analysis a = dfg::analyze(g);
    // 16 outputs x (capped 256-deep receptive field): thousands of
    // nodes, log-depth reductions.
    EXPECT_GT(a.num_nodes, 5000u);
    EXPECT_LT(a.depth, 30u);
    std::size_t stores = g.countIf(
        [](dfg::OpType op) { return op == dfg::OpType::Store; });
    EXPECT_EQ(stores, 2u * 2u * 4u);
}

TEST(ConvDfg, FcTileStructure)
{
    const Layer &fc7 = alexnetLayers()[9];
    dfg::Graph g = makeLayerDfg(fc7, 1, 1, 8);
    dfg::Analysis a = dfg::analyze(g);
    std::size_t fmuls = g.countIf(
        [](dfg::OpType op) { return op == dfg::OpType::FMul; });
    EXPECT_EQ(fmuls, 8u * 256u); // 8 neurons x capped 256 inputs
    EXPECT_GT(a.max_working_set, 100u);
}

TEST(ConvDfg, PoolTileUsesMaxTrees)
{
    Layer pool = vgg16Layers()[2];
    dfg::Graph g = makeLayerDfg(pool, 2, 2, 2);
    std::size_t maxes = g.countIf(
        [](dfg::OpType op) { return op == dfg::OpType::Max; });
    // 8 outputs x (2x2 window -> 3 Max nodes each).
    EXPECT_EQ(maxes, 8u * 3u);
}

TEST(ConvDfg, SchedulableByAladdin)
{
    // The generated tiles must be valid DAGs for the simulator: no
    // cycles, positive work.
    for (const auto &layer : alexnetLayers()) {
        dfg::Graph g = makeLayerDfg(layer, 2, 2, 2);
        dfg::Analysis a = dfg::analyze(g);
        EXPECT_GT(a.num_nodes, 0u) << layer.name;
    }
}

} // namespace
} // namespace accelwall::nn
