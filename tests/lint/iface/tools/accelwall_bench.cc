// Fixture bench emitter: the I009 seeds. `fx_drifted` is a JSON key
// the golden pin never mentions, and `accelwall-bench-rogue-v9` is a
// schema tag the pin does not carry; the `fx_runtime_ms` key and the
// `accelwall-bench-fx-v1` tag are the healthy controls.

#include <iostream>
#include <string>

namespace
{

void
key(const std::string &name)
{
    std::cout << '"' << name << '"' << ": ";
}

} // namespace

int
main()
{
    std::cout << "{ \"schema\": \"accelwall-bench-fx-v1\", ";
    key("fx_runtime_ms");
    std::cout << "1.5, ";
    key("fx_drifted");
    std::cout << "0 }\n";
    std::cout << "accelwall-bench-rogue-v9\n";
    return 0;
}
