#!/usr/bin/env bash
# Fixture gate: selects only the fx_smoke label, so the orphanlabel
# declared in tests/CMakeLists.txt is the I008 seed.
set -uo pipefail
prefix="${1:-build}"

run_ctest() {
    ctest --test-dir "$1" --output-on-failure -L "${2:-}"
}

run_ctest "${prefix}" "fx_smoke"
