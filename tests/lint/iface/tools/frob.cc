// Fixture CLI tool: both directions of I004 flag drift plus the I005
// coverage gap. `--undoc` is parsed but missing from the usage text;
// `--ghost` is documented but never parsed; `--untested` is consistent
// yet no fixture test or harness line exercises it.

#include <iostream>
#include <string>

namespace
{

int
usage()
{
    std::cerr << "usage: frob [--ok N] [--untested] [--ghost N]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--ok" && i + 1 < argc) {
            ++i;
        } else if (arg == "--untested") {
            continue;
        } else if (arg == "--undoc") {
            continue;
        } else {
            return usage();
        }
    }
    return 0;
}
