// Fixture request dispatcher + error→HTTP mapping. `/v1/ghost-served`
// is the I003 seed (dispatched, never classified in metrics.cc); the
// FxConflict arm below returns 500 while the README claims 404, which
// is the I007 seed.

#include "util/error.hh"

namespace accelwall::serve
{

int
dispatch(const char *path_cstr)
{
    std::string path(path_cstr);
    if (path == "/v1/fx")
        return 0;
    if (path == "/v1/untested")
        return 1;
    if (path == "/v1/ghost-served")
        return 2;
    return -1;
}

using util::ErrorCode;

int
httpStatusFor(ErrorCode code)
{
    switch (code) {
    case ErrorCode::FxBadRequest:
        return 400;
    case ErrorCode::FxConflict:
        return 500;
    default:
        return 500;
    }
}

} // namespace accelwall::serve
