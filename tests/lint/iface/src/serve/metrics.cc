// Fixture metrics implementation: the declared serving surface the
// I-rules diff against the fixture README and tests. Each literal
// below is one seeded drift case (or a healthy control) — see the
// fixture README's violations table.

#include <string>

namespace accelwall::serve
{

std::string
renderMetrics()
{
    std::string out;
    // Healthy control: documented, tested, full HELP/TYPE discipline.
    out += "# HELP accelwall_fx_requests_total Requests served.\n";
    out += "# TYPE accelwall_fx_requests_total counter\n";
    out += "accelwall_fx_requests_total 42\n";
    // I001: emitted with discipline but missing from the glossary.
    out += "# HELP accelwall_fx_undocumented_total Sneaky series.\n";
    out += "# TYPE accelwall_fx_undocumented_total counter\n";
    out += "accelwall_fx_undocumented_total 7\n";
    // I002: documented and emitted, asserted by no fixture test.
    out += "# HELP accelwall_fx_untested_total Never asserted.\n";
    out += "# TYPE accelwall_fx_untested_total counter\n";
    out += "accelwall_fx_untested_total 9\n";
    // I010: emitted with neither HELP nor TYPE.
    out += "accelwall_fx_bare 3\n";
    // I010: a counter that violates the `_total` naming convention.
    out += "# HELP accelwall_fx_miscounted Counter, badly named.\n";
    out += "# TYPE accelwall_fx_miscounted counter\n";
    out += "accelwall_fx_miscounted 1\n";
    // I010: HELP/TYPE declared for a series that is never emitted.
    out += "# HELP accelwall_fx_ghost_total Declared, never emitted.\n";
    out += "# TYPE accelwall_fx_ghost_total counter\n";
    return out;
}

// The per-endpoint request classification: the declared route set.
// `/v1/unserved` is the I003 seed — classified here, dispatched
// nowhere; `/v1/untested` is served and documented but no fixture
// test ever names it.
const char *
classifyEndpoint(int which)
{
    static const char *kRoutes[] = {
        "/v1/fx",
        "/v1/untested",
        "/v1/unserved",
    };
    return kRoutes[which];
}

} // namespace accelwall::serve
