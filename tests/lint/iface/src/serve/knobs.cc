// Fixture env knobs, both halves of the I006 drift: ACCELWALL_FX_UNDOC
// is read here and set by the fixture test but documented nowhere;
// ACCELWALL_FX_UNSET is documented in the fixture README but no test
// or script ever sets it.

#include <cstdlib>

namespace accelwall::serve
{

bool
fxKnobs()
{
    const char *undoc = std::getenv("ACCELWALL_FX_UNDOC");
    const char *unset = std::getenv("ACCELWALL_FX_UNSET");
    return undoc != nullptr || unset != nullptr;
}

} // namespace accelwall::serve
