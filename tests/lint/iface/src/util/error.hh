// Fixture error registry: the ErrorCode enum the I007 extractor
// parses. E7999 is deliberately absent — the README cites it anyway.

#ifndef FIXTURE_UTIL_ERROR_HH
#define FIXTURE_UTIL_ERROR_HH

#include <string>

namespace accelwall::util
{

enum class ErrorCode
{
    FxBadRequest = 7000,
    FxConflict = 7001,
};

} // namespace accelwall::util

#endif // FIXTURE_UTIL_ERROR_HH
