// Fixture test: the coverage surface for the I002/I003/I006 scans.
// Everything named here counts as "exercised" (raw text, comments
// included — which is why this comment must not name the seeded
// gaps). The undocumented knob IS set here, so only its missing
// documentation fires; the series/route/flag gaps stay absent.

#include <cstdlib>

int
main()
{
    setenv("ACCELWALL_FX_UNDOC", "1", 1);
    const char *series[] = {
        "accelwall_fx_requests_total",
        "accelwall_fx_undocumented_total",
        "accelwall_fx_bare",
        "accelwall_fx_miscounted",
    };
    const char *routes[] = { "/v1/fx", "/v1/unserved" };
    return series[0] != nullptr && routes[0] != nullptr ? 0 : 1;
}
