# Fixture bench pin: carries the fx_runtime_ms key and the
# accelwall-bench-fx-v1 schema tag; the drifted key and the rogue tag
# emitted by tools/accelwall_bench.cc are deliberately missing (I009).
set(expected_schema "accelwall-bench-fx-v1")
set(expected_keys "fx_runtime_ms")
