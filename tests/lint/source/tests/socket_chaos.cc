// Fixture socket-chaos test: names both socket-layer fault sites,
// "send-reset" and "recv-stall", so the S004 test-coverage arm sees
// them exercised. Together with the checks in src/util/socket.cc this
// keeps the pair fully healthy — the golden pin asserts S004 stays
// silent about them.
int
main()
{
    return 0;
}
