// Fixture test file: exercises fault site ingest-record, and expects
// error E1101 on bad records — both fine. Citing E7777 is the S003
// violation: that code is not in the fixture registry.
int
main()
{
    return 0;
}
