#ifndef FIXTURE_CMOS_MODEL_HH
#define FIXTURE_CMOS_MODEL_HH

namespace accelwall::cmos
{

// S008 twice: dimensional names hiding in bare-double parameters.
double scaleArea(double area_mm2, double feature_nm);

} // namespace accelwall::cmos

#endif // FIXTURE_CMOS_MODEL_HH
