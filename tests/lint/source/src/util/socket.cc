// Fixture socket layer: exercises the socket-site half of S004. The
// send-reset check below is legitimate production usage, but no
// fixture test names the site, so S004 must report it untested; the
// registered recv-stall site has no check anywhere under src/, so
// S004 must report it unused.

#include "util/faultinject.hh"

namespace accelwall::util
{

int
sendAll(FaultPlan &faults, int fd)
{
    if (faults.shouldFailCounted("send-reset"))
        return -1;
    return fd;
}

} // namespace accelwall::util
