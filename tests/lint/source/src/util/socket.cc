// Fixture socket layer: the socket-site half of S004, in its healthy
// shape. Both chaos sites are checked here AND named by the fixture
// socket test, so S004 must stay silent about them — the golden pin
// asserts the absence. The S004 coverage findings come from the
// orphan/untested sites in faultinject.hh instead.

#include "util/faultinject.hh"

namespace accelwall::util
{

int
sendAll(FaultPlan &faults, int fd)
{
    if (faults.shouldFailCounted("send-reset"))
        return -1;
    return fd;
}

int
recvSome(FaultPlan &faults, int fd)
{
    if (faults.shouldFailCounted("recv-stall"))
        return -1;
    return fd;
}

} // namespace accelwall::util
