// Fixture registry header. Never compiled — scanned by srccheck only,
// so the (deliberately ill-formed) duplicate enumerator below is fine.
#ifndef FIXTURE_UTIL_ERROR_HH
#define FIXTURE_UTIL_ERROR_HH

namespace accelwall
{

enum class ErrorCode
{
    None = 0,
    ParseSyntax = 1101, // healthy: labeled, raised, mapped
    ParseSyntax = 1102, // S001: enumerator defined twice
    LimitBudget = 1203,
    LimitClash = 1203,  // S001: reuses code 1203
    GhostCode = 1404,   // S001: no label case; S002: never raised
    ServeTeapot = 5099, // S002: not an explicit case in httpStatusFor
};

} // namespace accelwall

#endif // FIXTURE_UTIL_ERROR_HH
