#include "util/error.hh"

namespace accelwall
{

const char *
errorLabel(ErrorCode code)
{
    switch (code) {
      case ErrorCode::None: return "none";
      case ErrorCode::ParseSyntax: return "parse-syntax";
      case ErrorCode::LimitBudget: return "limit-budget";
      case ErrorCode::LimitClash: return "limit-clash";
      case ErrorCode::ServeTeapot: return "serve-teapot";
      // GhostCode has no case here: S001 flags it in the registry.
    }
    return "unknown";
}

} // namespace accelwall
