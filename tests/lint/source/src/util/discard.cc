#include "util/error.hh"

namespace accelwall::util
{

void
ignoreResult()
{
    (void)parseRecord(7); // S007: silenced checked return, no reason
}

} // namespace accelwall::util
