#ifndef FIXTURE_UTIL_FAULTINJECT_HH
#define FIXTURE_UTIL_FAULTINJECT_HH

namespace accelwall::util
{

struct FaultSiteInfo
{
    const char *site;
    const char *style;
    const char *effect;
};

inline constexpr FaultSiteInfo kFaultSites[] = {
    { "ingest-record", "keyed", "healthy: used in src/, named in tests/" },
    { "orphan-site", "keyed", "S004: never checked under src/" },
    { "untested-site", "counted", "S004: no test names it" },
    // Socket-layer shapes, mirroring the real registry's chaos sites:
    { "send-reset", "counted", "S004: checked in socket.cc, untested" },
    { "recv-stall", "counted", "S004: registered but never checked" },
};

} // namespace accelwall::util

#endif // FIXTURE_UTIL_FAULTINJECT_HH
