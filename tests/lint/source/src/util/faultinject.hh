#ifndef FIXTURE_UTIL_FAULTINJECT_HH
#define FIXTURE_UTIL_FAULTINJECT_HH

namespace accelwall::util
{

struct FaultSiteInfo
{
    const char *site;
    const char *style;
    const char *effect;
};

inline constexpr FaultSiteInfo kFaultSites[] = {
    { "ingest-record", "keyed", "healthy: used in src/, named in tests/" },
    { "orphan-site", "keyed", "S004: never checked under src/" },
    { "untested-site", "counted", "S004: no test names it" },
    // Socket-layer shapes, mirroring the real registry's chaos sites.
    // Both are healthy: checked in socket.cc, named by the socket
    // test. The golden pin asserts S004 stays silent about them.
    { "send-reset", "counted", "healthy: checked + tested" },
    { "recv-stall", "counted", "healthy: checked + tested" },
};

} // namespace accelwall::util

#endif // FIXTURE_UTIL_FAULTINJECT_HH
