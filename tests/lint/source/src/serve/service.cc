#include "util/error.hh"

namespace accelwall::serve
{

int
httpStatusFor(ErrorCode code)
{
    switch (code) {
      case ErrorCode::ParseSyntax: return 400;
      // ServeTeapot (5099) rides the default branch: S002 flags it in
      // the registry header.
      default: return 500;
    }
}

void
handleQuery()
{
    fatal("query handler gave up"); // S010: terminator in serve/
}

} // namespace accelwall::serve
