#include "util/error.hh"
#include "util/faultinject.hh"

namespace accelwall
{

// Raises every registered code except GhostCode, so only GhostCode
// trips the S002 never-raised audit.
int
parseRecord(util::FaultPlan &faults, int kind)
{
    if (faults.shouldFail("ingest-record"))
        return makeError(ErrorCode::ParseSyntax, "injected parse fault");
    if (kind == 2)
        return makeError(ErrorCode::LimitBudget, "over budget");
    if (kind == 3)
        return makeError(ErrorCode::LimitClash, "conflicting limits");
    return makeError(ErrorCode::ServeTeapot, "short and stout");
}

} // namespace accelwall
