#include <cstdlib>

#include "util/faultinject.hh"

namespace accelwall::aladdin
{

double
jitterSample(util::FaultPlan &faults)
{
    if (faults.shouldFail("rogue-site")) // S004: not in kFaultSites
        return 0.0;
    if (faults.shouldFailCounted("untested-site"))
        return 1.0;
    return rand() * 0.5; // S005: ambient randomness in a hot path
}

void
writeCheckpoint(Collector &coll)
{
    util::MutexLock lock(coll.mu);
    coll.ckpt.flush(); // S006: blocking call under a live MutexLock
}

} // namespace accelwall::aladdin
