#include <util/error.hh> // S009: project header with angle brackets

#include "dfg/verify.hh" // S009: own header must be the first include

namespace accelwall::dfg
{

bool
verifyGraph()
{
    return true;
}

} // namespace accelwall::dfg
