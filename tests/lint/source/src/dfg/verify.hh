#ifndef FIXTURE_DFG_VERIFY_HH
#define FIXTURE_DFG_VERIFY_HH

namespace accelwall::dfg
{

bool verifyGraph();

} // namespace accelwall::dfg

#endif // FIXTURE_DFG_VERIFY_HH
