/**
 * @file
 * Unit tests for the deterministic parallelism primitives in
 * util/parallel.hh: ThreadPool, parallelFor, parallelMap, and the
 * job-count configuration. These carry the ctest label "parallel" so
 * they can be run in isolation under ThreadSanitizer
 * (-DACCELWALL_TSAN=ON, ctest -L parallel).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hh"

namespace accelwall::util
{
namespace
{

TEST(ThreadPool, RunsPostedTasks)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workers(), 3);

    std::mutex mu;
    std::condition_variable cv;
    int done = 0; // guarded by mu
    constexpr int kTasks = 64;
    for (int i = 0; i < kTasks; ++i) {
        pool.post([&] {
            std::lock_guard<std::mutex> lock(mu);
            if (++done == kTasks)
                cv.notify_one();
        });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == kTasks; });
    EXPECT_EQ(done, kTasks);
}

TEST(ThreadPool, EnsureWorkersGrowsButNeverShrinks)
{
    ThreadPool pool(2);
    pool.ensureWorkers(5);
    EXPECT_EQ(pool.workers(), 5);
    pool.ensureWorkers(1);
    EXPECT_EQ(pool.workers(), 5);
}

TEST(ParallelFor, OrderingIsStableAcrossJobCounts)
{
    constexpr std::size_t kN = 1000;
    std::vector<std::size_t> serial(kN);
    for (std::size_t i = 0; i < kN; ++i)
        serial[i] = i * i + 7;

    for (int jobs : {1, 2, 3, 8, 17}) {
        std::vector<std::size_t> out(kN, 0);
        parallelFor(
            kN, [&](std::size_t i) { out[i] = i * i + 7; }, jobs);
        EXPECT_EQ(out, serial) << "jobs=" << jobs;
    }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    constexpr std::size_t kN = 777;
    std::vector<std::atomic<int>> hits(kN);
    parallelFor(
        kN, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, JobsOneRunsInlineOnCallerThread)
{
    auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> ids(16);
    parallelFor(
        ids.size(),
        [&](std::size_t i) { ids[i] = std::this_thread::get_id(); }, 1);
    for (const auto &id : ids)
        EXPECT_EQ(id, caller);
}

TEST(ParallelFor, EmptyRangeIsANoOp)
{
    std::atomic<int> calls{0};
    parallelFor(0, [&](std::size_t) { calls.fetch_add(1); }, 4);
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleItemRunsOnce)
{
    std::atomic<int> calls{0};
    std::size_t seen = 99;
    parallelFor(
        1,
        [&](std::size_t i) {
            calls.fetch_add(1);
            seen = i;
        },
        8);
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(seen, 0u);
}

TEST(ParallelFor, MoreJobsThanItems)
{
    std::vector<int> out(3, 0);
    parallelFor(
        out.size(), [&](std::size_t i) { out[i] = 1; }, 64);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 3);
}

TEST(ParallelFor, PropagatesExceptions)
{
    EXPECT_THROW(
        parallelFor(
            100,
            [](std::size_t i) {
                if (i == 37)
                    throw std::runtime_error("boom at 37");
            },
            4),
        std::runtime_error);
}

TEST(ParallelFor, FirstChunkExceptionWinsDeterministically)
{
    // Both chunks throw; the rethrown exception must come from the
    // lowest chunk index no matter which thread finishes first.
    for (int attempt = 0; attempt < 10; ++attempt) {
        try {
            parallelFor(
                100,
                [](std::size_t i) {
                    if (i == 0)
                        throw std::runtime_error("low");
                    if (i == 99)
                        throw std::runtime_error("high");
                },
                2);
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "low");
        }
    }
}

TEST(ParallelFor, SerialFallbackPropagatesExceptions)
{
    EXPECT_THROW(
        parallelFor(
            10,
            [](std::size_t i) {
                if (i == 5)
                    throw std::logic_error("serial boom");
            },
            1),
        std::logic_error);
}

TEST(ParallelMap, ResultsLandAtInputIndex)
{
    std::vector<int> in(257);
    std::iota(in.begin(), in.end(), -57);
    for (int jobs : {1, 8}) {
        auto out = parallelMap(
            in, [](int v) { return 3 * v - 1; }, jobs);
        ASSERT_EQ(out.size(), in.size());
        for (std::size_t i = 0; i < in.size(); ++i)
            EXPECT_EQ(out[i], 3 * in[i] - 1);
    }
}

TEST(ParallelMap, EmptyInputGivesEmptyOutput)
{
    std::vector<int> in;
    auto out = parallelMap(in, [](int v) { return v; }, 8);
    EXPECT_TRUE(out.empty());
}

TEST(JobsConfig, HardwareJobsIsPositive)
{
    EXPECT_GE(hardwareJobs(), 1);
}

TEST(JobsConfig, SetDefaultJobsOverridesEverything)
{
    setDefaultJobs(5);
    EXPECT_EQ(defaultJobs(), 5);
    setDefaultJobs(0); // clear
}

TEST(JobsConfig, EnvVariableIsHonored)
{
    setDefaultJobs(0);
    ASSERT_EQ(setenv("ACCELWALL_JOBS", "3", 1), 0);
    EXPECT_EQ(defaultJobs(), 3);

    // setDefaultJobs (the --jobs flag) outranks the environment.
    setDefaultJobs(2);
    EXPECT_EQ(defaultJobs(), 2);
    setDefaultJobs(0);

    // Garbage and non-positive values fall back to the hardware.
    ASSERT_EQ(setenv("ACCELWALL_JOBS", "banana", 1), 0);
    EXPECT_EQ(defaultJobs(), hardwareJobs());
    ASSERT_EQ(setenv("ACCELWALL_JOBS", "-4", 1), 0);
    EXPECT_EQ(defaultJobs(), hardwareJobs());
    ASSERT_EQ(unsetenv("ACCELWALL_JOBS"), 0);
    EXPECT_EQ(defaultJobs(), hardwareJobs());
}

} // namespace
} // namespace accelwall::util
