/**
 * @file
 * Tests for the specialization-stack attribution (Figure 2).
 */

#include <gtest/gtest.h>

#include "potential/model.hh"
#include "stack/stack.hh"
#include "studies/bitcoin.hh"

namespace accelwall::stack
{
namespace
{

using csr::ChipGain;
using csr::Metric;
using potential::ChipSpec;
using potential::kUncappedTdp;
using potential::PotentialModel;

/** Dimension a spec from plain magnitudes. */
ChipSpec
makeSpec(double node, double area, double freq_ghz)
{
    return ChipSpec{units::Nanometers{node},
                    units::SquareMillimeters{area},
                    units::Gigahertz{freq_ghz}, kUncappedTdp};
}

ChipGain
chip(double node, double area, double freq, double gain)
{
    return ChipGain{"c", makeSpec(node, area, freq), gain, 2015.0};
}

TEST(Stack, LayerNames)
{
    EXPECT_STREQ(layerName(Layer::Algorithm), "algorithm");
    EXPECT_STREQ(layerName(Layer::Physical), "physical");
}

TEST(Stack, PurePhysicalSeries)
{
    // Gains exactly track potential: everything lands on Physical.
    PotentialModel model;
    ChipSpec a = makeSpec(45.0, 100.0, 1.0);
    ChipSpec b = makeSpec(16.0, 100.0, 1.0);
    double ratio = model.throughput(b) / model.throughput(a);

    std::vector<Step> steps = {
        {ChipGain{"a", a, 10.0, 2010}, {}},
        {ChipGain{"b", b, 10.0 * ratio, 2016}, {}},
    };
    Breakdown bd = attributeStack(steps, model, Metric::Throughput);
    EXPECT_NEAR(bd.share[Layer::Physical], 1.0, 1e-9);
    EXPECT_NEAR(bd.share[Layer::Engineering], 0.0, 1e-9);
}

TEST(Stack, AnnotatedCsrSplitsAcrossLayers)
{
    // Same physical chip, 4x the gain, annotated as algorithm +
    // framework: CSR splits equally between the two.
    PotentialModel model;
    ChipSpec spec = makeSpec(28.0, 100.0, 1.0);
    std::vector<Step> steps = {
        {ChipGain{"v1", spec, 10.0, 2014}, {}},
        {ChipGain{"v2", spec, 40.0, 2016},
         {Layer::Algorithm, Layer::Framework}},
    };
    Breakdown bd = attributeStack(steps, model, Metric::Throughput);
    EXPECT_NEAR(bd.share[Layer::Algorithm], 0.5, 1e-9);
    EXPECT_NEAR(bd.share[Layer::Framework], 0.5, 1e-9);
    EXPECT_NEAR(bd.share[Layer::Physical], 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(bd.total_gain, 4.0);
}

TEST(Stack, UnannotatedCsrGoesToEngineering)
{
    PotentialModel model;
    ChipSpec spec = makeSpec(28.0, 100.0, 1.0);
    std::vector<Step> steps = {
        {ChipGain{"v1", spec, 10.0, 2014}, {}},
        {ChipGain{"v2", spec, 20.0, 2016}, {}},
    };
    Breakdown bd = attributeStack(steps, model, Metric::Throughput);
    EXPECT_NEAR(bd.share[Layer::Engineering], 1.0, 1e-9);
}

TEST(Stack, SharesSumToOne)
{
    PotentialModel model;
    std::vector<Step> steps = {
        {chip(90.0, 190.0, 2.4, 1.0), {}},
        {chip(40.0, 334.0, 0.85, 250.0), {Layer::Platform}},
        {chip(45.0, 220.0, 0.1, 700.0), {Layer::Platform}},
        {chip(130.0, 40.0, 0.1, 5000.0),
         {Layer::Platform, Layer::Engineering}},
        {chip(16.0, 18.0, 0.7, 2500000.0), {Layer::Engineering}},
    };
    Breakdown bd = attributeStack(steps, model, Metric::Throughput);
    double sum = 0.0;
    for (const auto &[layer, share] : bd.share)
        sum += share;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Stack, BitcoinPlatformDominatesSpecializationShare)
{
    // Annotate the full mining series: platform changes at the
    // CPU->GPU, GPU->FPGA, FPGA->ASIC boundaries; everything else is
    // engineering. The platform layer must carry most of the
    // non-physical gain (Section IV-E's "non-recurring boost").
    PotentialModel model;
    auto chips = studies::miningChipGains(studies::miningChips(),
                                          false);
    const auto &raw = studies::miningChips();

    std::vector<Step> steps;
    for (std::size_t i = 0; i < chips.size(); ++i) {
        Step step;
        step.chip = chips[i];
        if (i > 0 && raw[i].platform != raw[i - 1].platform)
            step.changed.push_back(Layer::Platform);
        steps.push_back(std::move(step));
    }
    Breakdown bd =
        attributeStack(steps, model, Metric::AreaThroughput);
    // Across the platform jumps, the platform layer carries the bulk
    // of the 500,000x (the paper's non-recurring boost); physics
    // explains the rest; residual engineering is comparatively small.
    EXPECT_GT(bd.share[Layer::Platform], 0.5);
    EXPECT_GT(bd.share[Layer::Physical], 0.05);
    EXPECT_LT(bd.share[Layer::Physical], 0.5);
    EXPECT_GT(bd.share[Layer::Platform],
              3.0 * std::abs(bd.share[Layer::Engineering]));
}

TEST(Stack, RejectsBadInput)
{
    PotentialModel model;
    ChipSpec spec = makeSpec(28.0, 100.0, 1.0);
    std::vector<Step> one = {{ChipGain{"v1", spec, 10.0, 2014}, {}}};
    EXPECT_EXIT(attributeStack(one, model, Metric::Throughput),
                ::testing::ExitedWithCode(1), "two steps");

    std::vector<Step> bad = {
        {ChipGain{"v1", spec, 10.0, 2014}, {}},
        {ChipGain{"v2", spec, 20.0, 2016}, {Layer::Physical}},
    };
    EXPECT_EXIT(attributeStack(bad, model, Metric::Throughput),
                ::testing::ExitedWithCode(1), "derived");
}

} // namespace
} // namespace accelwall::stack
