/**
 * @file
 * The serve subsystem's test suite (ctest label "serve").
 *
 * Layered like the subsystem itself:
 *   - util/json: writer determinism, parser acceptance + rejection
 *   - serve/cache: FNV-1a, LRU order, eviction accounting
 *   - serve/http: a fuzz-ish corpus of malformed request heads, every
 *     case pinned to a stable error code
 *   - serve/service: endpoint logic socket-free (HttpRequest in,
 *     HttpResponse out), including the error-code -> HTTP mapping
 *   - serve/server: real sockets — cache bit-identity end to end,
 *     admission control, read deadlines, and a graceful-drain death
 *     test proving a SIGTERM'd server answers what it accepted and
 *     exits 0.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hh"
#include "serve/client.hh"
#include "serve/http.hh"
#include "serve/metrics.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "util/error.hh"
#include "util/json.hh"
#include "util/socket.hh"

using namespace accelwall;
using namespace accelwall::serve;

// ---------------------------------------------------------------- json

TEST(Json, WriterBasicObject)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("BTC");
    w.key("node_nm").value(16.0);
    w.key("chips").value(4);
    w.key("capped").value(false);
    w.key("note").null();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"name\": \"BTC\", \"node_nm\": 16, "
                       "\"chips\": 4, \"capped\": false, "
                       "\"note\": null}");
}

TEST(Json, WriterEscapesStrings)
{
    JsonWriter w;
    w.beginObject();
    w.key("msg").value(std::string("a\"b\\c\nd\te"));
    w.endObject();
    EXPECT_EQ(w.str(), "{\"msg\": \"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, NumberFormattingIsCanonical)
{
    // Integral values print without a fraction; non-integral values
    // round-trip via the shortest representation. Both matter for
    // cache bit-identity.
    EXPECT_EQ(fmtJsonNumber(16.0), "16");
    EXPECT_EQ(fmtJsonNumber(-3.0), "-3");
    EXPECT_EQ(fmtJsonNumber(0.0), "0");
    EXPECT_EQ(fmtJsonNumber(0.5), "0.5");
    double v = 1.0 / 3.0;
    std::string s = fmtJsonNumber(v);
    EXPECT_EQ(std::stod(s), v); // exact round trip
}

TEST(Json, ParseRoundTrip)
{
    auto parsed = parseJson(
        "{\"a\": [1, 2.5, \"x\"], \"b\": {\"c\": true, \"d\": null}}");
    ASSERT_TRUE(parsed.ok());
    const JsonValue &root = parsed.value();
    ASSERT_TRUE(root.isObject());
    const JsonValue *a = root.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->asArray().size(), 3u);
    EXPECT_EQ(a->asArray()[0].asNumber(), 1.0);
    EXPECT_EQ(a->asArray()[2].asString(), "x");
    const JsonValue *b = root.find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->find("c")->asBool());
    EXPECT_TRUE(b->find("d")->isNull());
}

TEST(Json, ParseErrorsCarryLineAndColumn)
{
    auto parsed = parseJson("{\n  \"a\": 12x\n}");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code(), ErrorCode::JsonParse);
    // 1-based line:column pointing into line 2.
    EXPECT_NE(parsed.error().str().find("2:"), std::string::npos);
}

TEST(Json, ParseRejections)
{
    // Each entry must fail with E1101 json-parse.
    const char *bad[] = {
        "",            "{",           "[1,]",      "{\"a\": 01}",
        "{\"a\"; 1}",  "\"unterm",    "tru",       "{\"a\":1} x",
        "{\"a\": 1, \"a\": 2}", // duplicate key
        "\"bad \\q escape\"",   "[\x01]",
    };
    for (const char *text : bad) {
        auto parsed = parseJson(text);
        ASSERT_FALSE(parsed.ok()) << "accepted: " << text;
        EXPECT_EQ(parsed.error().code(), ErrorCode::JsonParse) << text;
    }
}

TEST(Json, ParseDepthLimit)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    EXPECT_FALSE(parseJson(deep, /*max_depth=*/64).ok());
    EXPECT_TRUE(parseJson(deep, /*max_depth=*/128).ok());
}

// --------------------------------------------------------------- cache

TEST(Cache, Fnv1aKnownVectors)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
}

TEST(Cache, HitMissAndStats)
{
    ResultCache cache(/*capacity=*/8, /*shards=*/2);
    EXPECT_FALSE(cache.lookup("/v1/gains", "q1").has_value());
    cache.insert("/v1/gains", "q1", "r1");
    auto hit = cache.lookup("/v1/gains", "q1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "r1");
    // Same body under a different endpoint is a different key.
    EXPECT_FALSE(cache.lookup("/v1/csr", "q1").has_value());
    CacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_NEAR(stats.hitRatio(), 1.0 / 3.0, 1e-12);
}

TEST(Cache, EvictsLeastRecentlyUsed)
{
    // One shard so the LRU order is global and deterministic.
    ResultCache cache(/*capacity=*/2, /*shards=*/1);
    cache.insert("/e", "a", "ra");
    cache.insert("/e", "b", "rb");
    // Touch "a" so "b" is now the LRU entry.
    ASSERT_TRUE(cache.lookup("/e", "a").has_value());
    cache.insert("/e", "c", "rc");
    EXPECT_TRUE(cache.lookup("/e", "a").has_value());
    EXPECT_FALSE(cache.lookup("/e", "b").has_value());
    EXPECT_TRUE(cache.lookup("/e", "c").has_value());
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(Cache, ZeroCapacityDisables)
{
    ResultCache cache(0);
    cache.insert("/e", "a", "ra");
    EXPECT_FALSE(cache.lookup("/e", "a").has_value());
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(Cache, ConcurrentEvictionAndLookupOfSameKey)
{
    // One shard with a two-entry budget, so every cold insert evicts
    // and lookups of the contended hot key race eviction directly.
    // Run under TSan (ci_gate tsan stage) this pins the shard locking;
    // in any build it pins the invariant that a racing lookup returns
    // either a miss or the exact inserted bytes — never a torn value.
    ResultCache cache(/*capacity=*/2, /*shards=*/1);
    const std::string body(256, 'r');
    cache.insert("/v1/gains", "hot", body);

    std::atomic<bool> stop{false};
    std::atomic<bool> torn{false};
    long hits = 0;

    // The reader drives termination (so the evictor churns for its
    // whole run regardless of scheduling), and re-arms the hot key on
    // every miss (so hit and eviction keep racing instead of the key
    // staying dead after its first eviction).
    std::thread evictor([&] {
        int i = 0;
        while (!stop.load() || i < 1000) {
            cache.insert("/v1/gains", "cold-" + std::to_string(i),
                         body);
            ++i;
        }
    });
    std::thread reader([&] {
        for (int i = 0; i < 20000; ++i) {
            auto got = cache.lookup("/v1/gains", "hot");
            if (got.has_value()) {
                ++hits;
                if (*got != body)
                    torn.store(true);
            } else {
                cache.insert("/v1/gains", "hot", body);
            }
        }
        stop.store(true);
    });
    evictor.join();
    reader.join();

    EXPECT_FALSE(torn.load());
    EXPECT_GT(hits, 0);
    EXPECT_GT(cache.stats().evictions, 0u);
    EXPECT_LE(cache.stats().entries, 2u);
}

// ---------------------------------------------------------------- http

TEST(Http, ParsesMinimalRequest)
{
    auto parsed = parseRequestHead(
        "POST /v1/gains HTTP/1.1\r\nHost: x\r\n"
        "Content-Length: 2\r\n\r\n");
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().method, "POST");
    EXPECT_EQ(parsed.value().target, "/v1/gains");
    EXPECT_EQ(parsed.value().header("host"), "x");
    auto length = contentLength(parsed.value(), HttpLimits{});
    ASSERT_TRUE(length.ok());
    EXPECT_EQ(length.value(), 2u);
}

TEST(Http, MalformedHeadCorpus)
{
    // Fuzz-ish corpus: every malformed head is rejected with the
    // stable E5001 http-malformed, never accepted, never a crash.
    const char *corpus[] = {
        "",                                  // empty
        "POST /v1/gains HTTP/1.1\r\n",       // truncated (no blank line)
        "POST /v1/gains\r\n\r\n",            // two-token request line
        "POST /v1/gains HTTP/1.1 x\r\n\r\n", // four tokens
        "post /v1/gains HTTP/1.1\r\n\r\n",   // lowercase method
        "POST v1/gains HTTP/1.1\r\n\r\n",    // target missing '/'
        "POST /v1/gains HTTP/2\r\n\r\n",     // unsupported version
        "POST / HTTP/1.1\r\nBad Header: x\r\n\r\n", // space in name
        "POST / HTTP/1.1\r\nnocolon\r\n\r\n",       // colon-free header
        "POST / HTTP/1.1\r\n folded: x\r\n\r\n",    // continuation line
        "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        "GET / HTTP/1.1\nHost: x\n\n",       // bare-LF framing
    };
    for (const char *head : corpus) {
        auto parsed = parseRequestHead(head);
        if (!parsed.ok()) {
            EXPECT_EQ(parsed.error().code(), ErrorCode::HttpMalformed)
                << head;
            continue;
        }
        auto length = contentLength(parsed.value(), HttpLimits{});
        EXPECT_FALSE(length.ok()) << "accepted: " << head;
    }
}

TEST(Http, BadContentLengths)
{
    for (const char *value : { "-1", "12x", "1 2", "9999999999999" }) {
        auto parsed = parseRequestHead(
            std::string("POST / HTTP/1.1\r\nContent-Length: ") + value +
            "\r\n\r\n");
        ASSERT_TRUE(parsed.ok()) << value;
        auto length = contentLength(parsed.value(), HttpLimits{});
        ASSERT_FALSE(length.ok()) << value;
        EXPECT_EQ(length.error().code(), ErrorCode::HttpMalformed)
            << value;
    }
}

TEST(Http, OversizedDeclaredBodyIsRejected)
{
    HttpLimits limits;
    limits.max_body_bytes = 64;
    auto parsed = parseRequestHead(
        "POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n");
    ASSERT_TRUE(parsed.ok());
    auto length = contentLength(parsed.value(), limits);
    ASSERT_FALSE(length.ok());
    EXPECT_EQ(length.error().code(), ErrorCode::HttpBodyTooLarge);
}

TEST(Http, OversizedHeadIsRejected)
{
    HttpLimits limits;
    limits.max_head_bytes = 128;
    std::string head = "GET / HTTP/1.1\r\nX-Pad: " +
                       std::string(200, 'a') + "\r\n\r\n";
    auto parsed = parseRequestHead(head, limits);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code(), ErrorCode::HttpMalformed);
}

// ------------------------------------------------------------- service

namespace
{

HttpRequest
post(const std::string &target, const std::string &body)
{
    HttpRequest req;
    req.method = "POST";
    req.target = target;
    req.version = "HTTP/1.1";
    req.body = body;
    return req;
}

/** The "code" string inside a structured error body. */
std::string
errorCode(const HttpResponse &res)
{
    auto parsed = parseJson(res.body);
    if (!parsed.ok() || !parsed.value().isObject())
        return "<unparseable>";
    const JsonValue *error = parsed.value().find("error");
    if (!error || !error->isObject())
        return "<no error member>";
    const JsonValue *code = error->find("code");
    return code && code->isString() ? code->asString() : "<no code>";
}

const char *kGainsBody =
    "{\"spec\": {\"node_nm\": 16, \"area_mm2\": 100, "
    "\"freq_ghz\": 1.5, \"tdp_w\": 250}}";

const char *kCsrBody =
    "{\"metric\": \"throughput\", \"chips\": ["
    "{\"name\": \"g1\", \"node_nm\": 130, \"area_mm2\": 100, "
    "\"freq_ghz\": 0.2, \"tdp_w\": 50, \"gain\": 1},"
    "{\"name\": \"g2\", \"node_nm\": 28, \"area_mm2\": 150, "
    "\"freq_ghz\": 0.7, \"tdp_w\": 150, \"gain\": 400}]}";

} // namespace

TEST(Service, StatusMappingIsPartOfTheInterface)
{
    EXPECT_EQ(httpStatusFor(ErrorCode::JsonParse), 400);
    EXPECT_EQ(httpStatusFor(ErrorCode::JsonBadType), 400);
    EXPECT_EQ(httpStatusFor(ErrorCode::JsonMissingField), 400);
    EXPECT_EQ(httpStatusFor(ErrorCode::JsonBadValue), 400);
    EXPECT_EQ(httpStatusFor(ErrorCode::HttpMalformed), 400);
    EXPECT_EQ(httpStatusFor(ErrorCode::HttpUnsupportedMethod), 405);
    EXPECT_EQ(httpStatusFor(ErrorCode::HttpBodyTooLarge), 413);
    EXPECT_EQ(httpStatusFor(ErrorCode::HttpDeadline), 408);
    EXPECT_EQ(httpStatusFor(ErrorCode::ServeOverloaded), 503);
    EXPECT_EQ(httpStatusFor(ErrorCode::ServeUnknownEndpoint), 404);
    EXPECT_EQ(httpStatusFor(ErrorCode::ServeSweepTooLarge), 413);
    EXPECT_EQ(httpStatusFor(ErrorCode::ServeChipletTooLarge), 413);
    EXPECT_EQ(httpStatusFor(ErrorCode::ServeBind), 500);
}

TEST(Service, GainsHappyPath)
{
    Service service;
    HttpResponse res = service.handle(post("/v1/gains", kGainsBody));
    ASSERT_EQ(res.status, 200) << res.body;
    auto parsed = parseJson(res.body);
    ASSERT_TRUE(parsed.ok());
    const JsonValue *gains = parsed.value().find("gains");
    ASSERT_NE(gains, nullptr);
    // 45nm/25mm2 -> 16nm/100mm2 must gain more than 1x throughput.
    EXPECT_GT(gains->find("throughput")->asNumber(), 1.0);
}

TEST(Service, CsrHappyPath)
{
    Service service;
    HttpResponse res = service.handle(post("/v1/csr", kCsrBody));
    ASSERT_EQ(res.status, 200) << res.body;
    auto parsed = parseJson(res.body);
    ASSERT_TRUE(parsed.ok());
    const JsonValue *points = parsed.value().find("points");
    ASSERT_NE(points, nullptr);
    EXPECT_EQ(points->asArray().size(), 2u);
}

TEST(Service, SweepHappyPathAndCellLimit)
{
    ServiceOptions options;
    options.max_sweep_cells = 8;
    Service service(options);
    HttpResponse ok = service.handle(post(
        "/v1/sweep", "{\"kernel\": \"RED\", \"nodes\": [45, 16], "
                     "\"partitions\": [1, 2], "
                     "\"simplifications\": [1, 2]}"));
    ASSERT_EQ(ok.status, 200) << ok.body;

    HttpResponse too_big = service.handle(post(
        "/v1/sweep", "{\"kernel\": \"RED\", \"nodes\": [45, 32, 16], "
                     "\"partitions\": [1, 2, 4], "
                     "\"simplifications\": [1, 2, 3]}"));
    EXPECT_EQ(too_big.status, 413);
    EXPECT_EQ(errorCode(too_big), "E5007");
}

TEST(Service, ChipletHappyPathAndCellLimit)
{
    ServiceOptions options;
    options.max_chiplet_cells = 8;
    Service service(options);
    HttpResponse ok = service.handle(post(
        "/v1/chiplet",
        "{\"spec\": {\"node_nm\": 7, \"area_mm2\": 700, "
        "\"freq_ghz\": 1.0, \"tdp_w\": 300}, "
        "\"chiplets\": [1, 4], \"nodes\": [14, 7]}"));
    ASSERT_EQ(ok.status, 200) << ok.body;
    auto parsed = parseJson(ok.body);
    ASSERT_TRUE(parsed.ok());
    const JsonValue *baseline = parsed.value().find("baseline");
    ASSERT_NE(baseline, nullptr);
    EXPECT_GT(baseline->find("cost_usd")->asNumber(), 0.0);
    const JsonValue *points = parsed.value().find("points");
    ASSERT_NE(points, nullptr);
    EXPECT_EQ(points->asArray().size(), 4u);

    HttpResponse too_big = service.handle(post(
        "/v1/chiplet",
        "{\"spec\": {\"node_nm\": 7, \"area_mm2\": 700, "
        "\"freq_ghz\": 1.0, \"tdp_w\": 300}, "
        "\"chiplets\": [1, 2, 4], \"nodes\": [45, 22, 14]}"));
    EXPECT_EQ(too_big.status, 413);
    EXPECT_EQ(errorCode(too_big), "E5010");
}

TEST(Service, ChipletUntabulatedNodeIsAPerPointError)
{
    Service service;
    HttpResponse res = service.handle(post(
        "/v1/chiplet",
        "{\"spec\": {\"node_nm\": 7, \"area_mm2\": 700, "
        "\"freq_ghz\": 1.0, \"tdp_w\": 300}, "
        "\"chiplets\": [2], \"nodes\": [6]}"));
    ASSERT_EQ(res.status, 200) << res.body;
    auto parsed = parseJson(res.body);
    ASSERT_TRUE(parsed.ok());
    const JsonValue *points = parsed.value().find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->asArray().size(), 1u);
    const JsonValue &point = points->asArray()[0];
    EXPECT_FALSE(point.find("ok")->asBool());
    EXPECT_EQ(point.find("error")->asString(),
              "chiplet-unknown-node");
}

TEST(Service, ChipletCacheBitIdentity)
{
    Service service;
    HttpRequest req = post(
        "/v1/chiplet",
        "{\"spec\": {\"node_nm\": 7, \"area_mm2\": 700, "
        "\"freq_ghz\": 1.0, \"tdp_w\": 300}, "
        "\"chiplets\": [1, 2, 4, 8], \"nodes\": [45, 22, 14, 7], "
        "\"link_pj_per_bit\": 0.5}");
    HttpResponse first = service.handle(req);
    HttpResponse second = service.handle(req);
    ASSERT_EQ(first.status, 200) << first.body;
    ASSERT_EQ(second.status, 200);
    EXPECT_EQ(first.headers.at("X-Cache"), "miss");
    EXPECT_EQ(second.headers.at("X-Cache"), "hit");
    EXPECT_EQ(first.body, second.body);
}

TEST(Service, ChipletBadRequestsGetStableCodes)
{
    Service service;
    HttpResponse empty = service.handle(post(
        "/v1/chiplet",
        "{\"spec\": {\"node_nm\": 7, \"area_mm2\": 700, "
        "\"freq_ghz\": 1.0, \"tdp_w\": 300}, "
        "\"chiplets\": [], \"nodes\": [45]}"));
    EXPECT_EQ(empty.status, 400);
    EXPECT_EQ(errorCode(empty), "E4001");

    HttpResponse missing = service.handle(post(
        "/v1/chiplet", "{\"chiplets\": [1], \"nodes\": [45]}"));
    EXPECT_EQ(missing.status, 400);
    EXPECT_EQ(errorCode(missing), "E1103");
}

TEST(Service, BadRequestsGetStableCodes)
{
    Service service;

    HttpResponse bad_json = service.handle(post("/v1/gains", "{nope"));
    EXPECT_EQ(bad_json.status, 400);
    EXPECT_EQ(errorCode(bad_json), "E1101");

    HttpResponse missing =
        service.handle(post("/v1/gains", "{\"ref\": {}}"));
    EXPECT_EQ(missing.status, 400);
    EXPECT_EQ(errorCode(missing), "E1103");

    HttpResponse bad_type =
        service.handle(post("/v1/gains", "{\"spec\": 12}"));
    EXPECT_EQ(bad_type.status, 400);
    EXPECT_EQ(errorCode(bad_type), "E1102");

    HttpResponse bad_value = service.handle(post(
        "/v1/gains", "{\"spec\": {\"node_nm\": -4, \"area_mm2\": 1}}"));
    EXPECT_EQ(bad_value.status, 400);
    EXPECT_EQ(errorCode(bad_value), "E1104");

    HttpResponse unknown = service.handle(post("/v1/nope", "{}"));
    EXPECT_EQ(unknown.status, 404);
    EXPECT_EQ(errorCode(unknown), "E5006");

    HttpRequest get = post("/v1/gains", "");
    get.method = "GET";
    HttpResponse wrong_method = service.handle(get);
    EXPECT_EQ(wrong_method.status, 405);
    EXPECT_EQ(errorCode(wrong_method), "E5002");

    HttpResponse unknown_kernel = service.handle(post(
        "/v1/sweep", "{\"kernel\": \"NOPE\", \"nodes\": [45], "
                     "\"partitions\": [1], \"simplifications\": [1]}"));
    EXPECT_EQ(unknown_kernel.status, 400);
    EXPECT_EQ(errorCode(unknown_kernel), "E1104");
}

TEST(Service, CacheBitIdentity)
{
    Service service;
    HttpRequest req = post("/v1/gains", kGainsBody);
    HttpResponse first = service.handle(req);
    HttpResponse second = service.handle(req);
    ASSERT_EQ(first.status, 200);
    ASSERT_EQ(second.status, 200);
    EXPECT_EQ(first.headers.at("X-Cache"), "miss");
    EXPECT_EQ(second.headers.at("X-Cache"), "hit");
    // Byte identity is the contract, not structural equality.
    EXPECT_EQ(first.body, second.body);
    EXPECT_EQ(service.cache().stats().hits, 1u);
}

TEST(Service, ErrorsAreNotCached)
{
    Service service;
    HttpRequest req = post("/v1/gains", "{bad");
    (void)service.handle(req);
    (void)service.handle(req);
    EXPECT_EQ(service.cache().stats().insertions, 0u);
}

TEST(Service, HealthzAndMetrics)
{
    ServiceOptions options;
    options.version = "test-build";
    Service service(options);

    HttpRequest health;
    health.method = "GET";
    health.target = "/healthz";
    HttpResponse res = service.handle(health);
    ASSERT_EQ(res.status, 200);
    EXPECT_NE(res.body.find("\"test-build\""), std::string::npos);

    (void)service.handle(post("/v1/gains", kGainsBody));
    service.metrics().recordRequest(Endpoint::Gains, 200, 0.001);
    HttpRequest metrics;
    metrics.method = "GET";
    metrics.target = "/metrics";
    HttpResponse prom = service.handle(metrics);
    ASSERT_EQ(prom.status, 200);
    EXPECT_NE(prom.content_type.find("text/plain"), std::string::npos);
    for (const char *metric :
         { "accelwall_requests_total", "accelwall_requests_shed_total",
           "accelwall_request_duration_seconds_bucket",
           "accelwall_cache_hits_total", "accelwall_cache_misses_total",
           "accelwall_cache_insertions_total",
           "accelwall_cache_evictions_total", "accelwall_cache_entries",
           "accelwall_cache_hit_ratio",
           "accelwall_connection_aborts_total",
           "accelwall_retries_total", "accelwall_breaker_state",
           "accelwall_faults_injected_total",
           "accelwall_inflight_requests" }) {
        EXPECT_NE(prom.body.find(metric), std::string::npos) << metric;
    }
}

// -------------------------------------------------------------- server

namespace
{

/** Start a server on an ephemeral port or fail the test. */
void
startOrFail(Server &server)
{
    auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error().str();
    ASSERT_GT(server.port(), 0);
}

} // namespace

TEST(Server, EndToEndCacheBitIdentity)
{
    Server server;
    startOrFail(server);

    auto first = httpRequest("127.0.0.1", server.port(), "POST",
                             "/v1/gains", kGainsBody);
    auto second = httpRequest("127.0.0.1", server.port(), "POST",
                              "/v1/gains", kGainsBody);
    ASSERT_TRUE(first.ok()) << first.error().str();
    ASSERT_TRUE(second.ok()) << second.error().str();
    EXPECT_EQ(first.value().status, 200);
    EXPECT_EQ(second.value().status, 200);
    EXPECT_EQ(first.value().headers.at("x-cache"), "miss");
    EXPECT_EQ(second.value().headers.at("x-cache"), "hit");
    EXPECT_EQ(first.value().body, second.value().body);
    EXPECT_EQ(server.service().cache().stats().hits, 1u);
    server.stop();
}

TEST(Server, ShedsWhenSaturated)
{
    // accept_queue = 0 makes every connection take the admission-
    // control path: deterministic 503 + Retry-After from the acceptor.
    ServerOptions options;
    options.accept_queue = 0;
    Server server(options);
    startOrFail(server);

    auto res = httpRequest("127.0.0.1", server.port(), "POST",
                           "/v1/gains", kGainsBody);
    ASSERT_TRUE(res.ok()) << res.error().str();
    EXPECT_EQ(res.value().status, 503);
    EXPECT_EQ(res.value().headers.at("retry-after"), "1");
    EXPECT_EQ(errorCode(res.value()), "E5005");
    EXPECT_GE(server.service().metrics().shedCount(), 1u);
    server.stop();
}

TEST(Server, SlowRequestHitsReadDeadline)
{
    ServerOptions options;
    options.limits.read_deadline_ms = 150;
    Server server(options);
    startOrFail(server);

    // Send half a request head and then stall: the server must answer
    // 408 E5004 instead of holding the handler hostage.
    auto fd = util::tcpConnect("127.0.0.1", server.port(), 1000);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        util::sendAll(fd.value().get(), "POST /v1/gains HT", 1000).ok());
    HttpLimits limits;
    limits.read_deadline_ms = 2000;
    auto res = readResponse(fd.value().get(), limits);
    ASSERT_TRUE(res.ok()) << res.error().str();
    EXPECT_EQ(res.value().status, 408);
    EXPECT_EQ(errorCode(res.value()), "E5004");
    server.stop();
}

TEST(Server, UnknownEndpointOverTheWire)
{
    Server server;
    startOrFail(server);
    auto res =
        httpRequest("127.0.0.1", server.port(), "POST", "/nope", "{}");
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.value().status, 404);
    EXPECT_EQ(errorCode(res.value()), "E5006");
    server.stop();
}

TEST(Server, MetricsCountRequestsOverTheWire)
{
    Server server;
    startOrFail(server);
    for (int i = 0; i < 3; ++i) {
        auto res = httpRequest("127.0.0.1", server.port(), "POST",
                               "/v1/gains", kGainsBody);
        ASSERT_TRUE(res.ok());
        ASSERT_EQ(res.value().status, 200);
    }
    auto prom =
        httpRequest("127.0.0.1", server.port(), "GET", "/metrics");
    ASSERT_TRUE(prom.ok());
    EXPECT_NE(
        prom.value().body.find(
            "accelwall_requests_total{endpoint=\"/v1/gains\","
            "status=\"2xx\"} 3"),
        std::string::npos)
        << prom.value().body;
    server.stop();
}

/**
 * Graceful drain end to end, in a death test so a hang or crash in
 * the signal path fails loudly instead of wedging the suite: the
 * child starts a server, serves one request, SIGTERMs itself (the
 * installed handler pokes the wake pipe), drains, and exits 0.
 */
TEST(ServerDeathTest, SigtermDrainsAndExitsZero)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            Server server;
            if (!server.start().ok())
                std::exit(10);
            server.installSignalHandlers();
            auto res = httpRequest("127.0.0.1", server.port(), "POST",
                                   "/v1/gains", kGainsBody);
            if (!res.ok() || res.value().status != 200)
                std::exit(11);
            std::raise(SIGTERM);
            server.waitUntilStopped();
            if (server.service().metrics().totalRequests() < 1)
                std::exit(12);
            std::exit(0);
        },
        testing::ExitedWithCode(0), "");
}
