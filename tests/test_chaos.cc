/**
 * @file
 * The network chaos suite (ctest label "chaos").
 *
 * Three layers:
 *   - util/socket fault sites: each of the six socket-level injection
 *     points (accept-fail, recv-short, recv-stall, send-partial,
 *     send-reset, conn-drop-mid-body) armed in isolation against real
 *     loopback sockets, pinned to its documented effect and error code.
 *   - serve/client: the resilient client's retry gate, breaker state
 *     machine, Retry-After handling, and E52xx terminal codes, driven
 *     by refused connections and injected faults.
 *   - acceptance: a hostile fault plan that kills >= 30% of
 *     connections; the client must converge with zero non-injected
 *     errors, every acknowledged response byte-identical to a
 *     fault-free oracle, and the injected-fault trajectory identical
 *     across two runs of the same spec (DESIGN §11).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "serve/client.hh"
#include "serve/http.hh"
#include "serve/metrics.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "util/error.hh"
#include "util/faultinject.hh"
#include "util/socket.hh"

using namespace accelwall;
using namespace accelwall::serve;
using util::FaultPlan;

namespace
{

/** Arms a fault plan for one test and disarms it on scope exit. */
class FaultGuard
{
  public:
    explicit FaultGuard(const std::string &spec)
    {
        auto r = FaultPlan::global().configure(spec);
        EXPECT_TRUE(r.ok()) << spec;
    }
    ~FaultGuard() { FaultPlan::global().clear(); }
};

/** Start a server on an ephemeral port or fail the test. */
void
startOrFail(Server &server)
{
    auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error().str();
    ASSERT_GT(server.port(), 0);
}

const char *kGainsBody =
    "{\"spec\": {\"node_nm\": 16, \"area_mm2\": 100, "
    "\"freq_ghz\": 1.5, \"tdp_w\": 250}}";

/** A connected loopback pair (plus the listener keeping it alive). */
struct Loopback
{
    util::Listener listener;
    util::Fd client;
    util::Fd server;
};

Loopback
connectPair()
{
    Loopback lb;
    auto listener = util::tcpListen("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok());
    if (!listener.ok())
        return lb;
    lb.listener = std::move(listener.value());
    auto client = util::tcpConnect("127.0.0.1", lb.listener.port, 2000);
    EXPECT_TRUE(client.ok());
    if (!client.ok())
        return lb;
    lb.client = std::move(client.value());
    auto server = util::tcpAccept(lb.listener.fd.get());
    EXPECT_TRUE(server.ok());
    if (server.ok())
        lb.server = std::move(server.value());
    return lb;
}

/**
 * Bind an ephemeral port, then close it: connections to the returned
 * port are refused until someone rebinds it.
 */
int
deadPort()
{
    auto listener = util::tcpListen("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok());
    return listener.ok() ? listener.value().port : 1;
}

} // namespace

// ------------------------------------------------- fault-site plumbing

TEST(FaultPlanSocket, InjectedCountsTrackFires)
{
    FaultGuard guard("recv-short:2,send-reset:3");
    auto &plan = FaultPlan::global();
    int fired = 0;
    for (int i = 0; i < 6; ++i)
        fired += plan.shouldFailCounted("recv-short") ? 1 : 0;
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(plan.injectedCount("recv-short"), 3u);
    EXPECT_EQ(plan.injectedCount("send-reset"), 0u);
    EXPECT_EQ(plan.totalInjected(), 3u);

    // Reconfiguring resets both the call and the injected counters.
    ASSERT_TRUE(plan.configure("recv-short:2").ok());
    EXPECT_EQ(plan.injectedCount("recv-short"), 0u);
    EXPECT_EQ(plan.totalInjected(), 0u);
}

TEST(FaultPlanSocket, UnarmedSitesNeverCount)
{
    auto &plan = FaultPlan::global();
    plan.clear();
    EXPECT_FALSE(plan.shouldFailCounted("accept-fail"));
    EXPECT_EQ(plan.injectedCount("accept-fail"), 0u);
    EXPECT_EQ(plan.totalInjected(), 0u);
}

// ----------------------------------------------- socket sites, armed

TEST(SocketFaults, AcceptFailClosesTheConnection)
{
    auto listener = util::tcpListen("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    FaultGuard guard("accept-fail:1");
    auto client =
        util::tcpConnect("127.0.0.1", listener.value().port, 2000);
    ASSERT_TRUE(client.ok());
    auto conn = util::tcpAccept(listener.value().fd.get());
    ASSERT_FALSE(conn.ok());
    EXPECT_EQ(conn.error().code(), ErrorCode::ServeConnection);
    EXPECT_NE(conn.error().str().find("accept-fail"), std::string::npos)
        << conn.error().str();
    EXPECT_EQ(FaultPlan::global().injectedCount("accept-fail"), 1u);
}

TEST(SocketFaults, RecvShortClampsEveryReadToOneByte)
{
    Loopback lb = connectPair();
    ASSERT_TRUE(lb.server.valid());
    ASSERT_TRUE(util::sendAll(lb.client.get(), "hello", 1000).ok());
    FaultGuard guard("recv-short:1");
    std::string got;
    while (got.size() < 5) {
        auto n = util::recvSome(lb.server.get(), got, 4096, 1000);
        ASSERT_TRUE(n.ok()) << n.error().str();
        ASSERT_EQ(n.value(), 1u); // clamped: reassembly loop exercised
    }
    EXPECT_EQ(got, "hello");
    EXPECT_EQ(FaultPlan::global().injectedCount("recv-short"), 5u);
}

TEST(SocketFaults, RecvStallReportsDeadlineWithoutWaiting)
{
    Loopback lb = connectPair();
    ASSERT_TRUE(lb.server.valid());
    ASSERT_TRUE(util::sendAll(lb.client.get(), "data", 1000).ok());
    FaultGuard guard("recv-stall:1");
    std::string got;
    // The deadline is a minute: if the stall actually waited, the test
    // would time out. It must fail immediately with E5004.
    auto n = util::recvSome(lb.server.get(), got, 4096, 60000);
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.error().code(), ErrorCode::HttpDeadline);
    EXPECT_TRUE(got.empty());
}

TEST(SocketFaults, SendPartialStillDeliversEveryByte)
{
    Loopback lb = connectPair();
    ASSERT_TRUE(lb.server.valid());
    std::string payload(512, '\0');
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>('a' + (i % 26));
    {
        FaultGuard guard("send-partial:1");
        ASSERT_TRUE(util::sendAll(lb.client.get(), payload, 5000).ok());
        EXPECT_EQ(FaultPlan::global().injectedCount("send-partial"), 1u);
    }
    std::string got;
    while (got.size() < payload.size()) {
        auto n = util::recvSome(lb.server.get(), got, 4096, 2000);
        ASSERT_TRUE(n.ok()) << n.error().str();
        ASSERT_GT(n.value(), 0u);
    }
    EXPECT_EQ(got, payload); // degraded to 1-byte writes, not corrupted
}

TEST(SocketFaults, SendResetFailsTheWrite)
{
    Loopback lb = connectPair();
    ASSERT_TRUE(lb.client.valid());
    FaultGuard guard("send-reset:1");
    auto sent = util::sendAll(lb.client.get(), "payload", 1000);
    ASSERT_FALSE(sent.ok());
    EXPECT_EQ(sent.error().code(), ErrorCode::ServeConnection);
    EXPECT_EQ(FaultPlan::global().injectedCount("send-reset"), 1u);
}

TEST(SocketFaults, ConnDropMidBodyDeliversExactlyHalf)
{
    Loopback lb = connectPair();
    ASSERT_TRUE(lb.server.valid());
    std::string payload(64, 'q');
    {
        FaultGuard guard("conn-drop-mid-body:1");
        auto sent = util::sendAll(lb.client.get(), payload, 1000);
        ASSERT_FALSE(sent.ok());
        EXPECT_EQ(sent.error().code(), ErrorCode::ServeConnection);
    }
    std::string got;
    while (true) {
        auto n = util::recvSome(lb.server.get(), got, 4096, 2000);
        ASSERT_TRUE(n.ok()) << n.error().str();
        if (n.value() == 0)
            break; // the injected shutdown reads as an orderly FIN
    }
    EXPECT_EQ(got, payload.substr(0, payload.size() / 2));
}

// --------------------------------------------------- resilient client

TEST(ResilientClient, ExhaustsRetriesOnRefusedConnections)
{
    // No listener: every connect is refused. The failure precedes the
    // send, so even a non-idempotent request retries freely.
    RetryPolicy retry;
    retry.max_attempts = 3;
    retry.base_backoff_ms = 0;
    retry.attempt_deadline_ms = 500;
    BreakerPolicy breaker;
    breaker.failure_threshold = 100; // keep the breaker out of this test
    Client client("127.0.0.1", deadPort(), retry, breaker);

    auto res = client.post("/v1/gains", "{}", false);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code(), ErrorCode::ClientRetriesExhausted);
    EXPECT_EQ(client.retries(), 2u);
    EXPECT_EQ(client.breakerState(), BreakerState::Closed);
}

TEST(ResilientClient, BreakerOpensFastFailsProbesAndRecovers)
{
    int port = deadPort();
    RetryPolicy retry;
    retry.max_attempts = 1; // one attempt per request: breaker steps
    retry.base_backoff_ms = 0; // map 1:1 to requests
    retry.attempt_deadline_ms = 500;
    BreakerPolicy breaker;
    breaker.failure_threshold = 2;
    breaker.cooldown_rejects = 2;
    Client client("127.0.0.1", port, retry, breaker);

    // Two consecutive failures trip Closed -> Open.
    EXPECT_FALSE(client.get("/healthz").ok());
    EXPECT_EQ(client.breakerState(), BreakerState::Closed);
    EXPECT_FALSE(client.get("/healthz").ok());
    EXPECT_EQ(client.breakerState(), BreakerState::Open);
    EXPECT_EQ(client.breakerOpens(), 1u);

    // The cooldown fast-fails the next two requests with E5202
    // without touching the network.
    for (int i = 0; i < 2; ++i) {
        auto rejected = client.get("/healthz");
        ASSERT_FALSE(rejected.ok());
        EXPECT_EQ(rejected.error().code(), ErrorCode::ClientCircuitOpen);
    }
    EXPECT_EQ(client.breakerFastFails(), 2u);

    // The cooldown is spent: the next request goes through as the
    // half-open probe, fails (still no listener), and reopens.
    auto probe = client.get("/healthz");
    ASSERT_FALSE(probe.ok());
    EXPECT_EQ(probe.error().code(), ErrorCode::ClientRetriesExhausted);
    EXPECT_EQ(client.breakerState(), BreakerState::Open);

    // Bring the upstream back on the same port; burn the new cooldown,
    // then the probe succeeds and closes the breaker.
    ServerOptions options;
    options.port = port;
    Server server(options);
    startOrFail(server);
    for (int i = 0; i < 2; ++i) {
        auto rejected = client.get("/healthz");
        ASSERT_FALSE(rejected.ok());
        EXPECT_EQ(rejected.error().code(), ErrorCode::ClientCircuitOpen);
    }
    auto recovered = client.get("/healthz");
    ASSERT_TRUE(recovered.ok()) << recovered.error().str();
    EXPECT_EQ(recovered.value().status, 200);
    EXPECT_EQ(client.breakerState(), BreakerState::Closed);
    EXPECT_EQ(client.breakerOpens(), 1u); // reopening a probe is not
    server.stop();                        // a fresh Closed -> Open trip
}

TEST(ResilientClient, Surfaces503AfterRetriesAndHonorsRetryAfter)
{
    // accept_queue = 0: the admission path sheds every connection with
    // 503 + Retry-After: 1. The shed is explicitly retryable even for
    // non-idempotent requests; the final 503 surfaces as a response.
    ServerOptions options;
    options.accept_queue = 0;
    Server server(options);
    startOrFail(server);

    RetryPolicy retry;
    retry.max_attempts = 3;
    retry.base_backoff_ms = 2;
    retry.max_backoff_ms = 10; // caps the honored Retry-After: 1s -> 10ms
    Client client("127.0.0.1", server.port(), retry);

    auto res = client.post("/v1/gains", kGainsBody, false);
    ASSERT_TRUE(res.ok()) << res.error().str();
    EXPECT_EQ(res.value().status, 503);
    EXPECT_EQ(client.retries(), 2u);
    server.stop();
}

TEST(ResilientClient, OverallDeadlineBoundsTheRetryLoop)
{
    ServerOptions options;
    options.accept_queue = 0; // endless 503s
    Server server(options);
    startOrFail(server);

    RetryPolicy retry;
    retry.max_attempts = 1000;
    retry.base_backoff_ms = 40;
    retry.max_backoff_ms = 40;
    retry.honor_retry_after = false; // force the backoff path
    retry.overall_deadline_ms = 100;
    BreakerPolicy breaker;
    breaker.failure_threshold = 1000; // the deadline must fire first
    Client client("127.0.0.1", server.port(), retry, breaker);

    auto res = client.get("/v1/gains");
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code(), ErrorCode::ClientDeadline);
    server.stop();
}

TEST(ResilientClient, NonIdempotentNotRetriedAfterBytesSent)
{
    Server server;
    startOrFail(server);
    RetryPolicy retry;
    retry.max_attempts = 4;
    retry.base_backoff_ms = 0;
    Client client("127.0.0.1", server.port(), retry);

    {
        // Every send drops mid-body: the request bytes may have
        // reached the server, so a non-idempotent request must not
        // be replayed — the transport error passes through unchanged.
        FaultGuard guard("conn-drop-mid-body:1");
        auto res = client.post("/v1/gains", kGainsBody, false);
        ASSERT_FALSE(res.ok());
        EXPECT_EQ(res.error().code(), ErrorCode::ServeConnection);
        EXPECT_EQ(client.retries(), 0u);
        // Join the workers before the guard disarms: a worker may
        // still be writing the response to the dropped connection,
        // and plan checks must not race reconfiguration.
        server.stop();
    }
}

TEST(ResilientClient, IdempotentRetryConvergesThroughAcceptFaults)
{
    Server server;
    startOrFail(server);
    RetryPolicy retry;
    retry.max_attempts = 4;
    retry.base_backoff_ms = 0;
    Client client("127.0.0.1", server.port(), retry);

    FaultGuard guard("accept-fail:2");
    auto warm = client.post("/v1/gains", kGainsBody, true); // accept #1
    ASSERT_TRUE(warm.ok()) << warm.error().str();
    ASSERT_EQ(client.retries(), 0u);

    // Accept #2 is killed; the retry lands on clean accept #3 and the
    // replayed answer is byte-identical to the first.
    auto res = client.post("/v1/gains", kGainsBody, true);
    ASSERT_TRUE(res.ok()) << res.error().str();
    EXPECT_EQ(res.value().status, 200);
    EXPECT_EQ(res.value().body, warm.value().body);
    EXPECT_EQ(client.retries(), 1u);
    EXPECT_EQ(FaultPlan::global().injectedCount("accept-fail"), 1u);
    server.stop();
}

TEST(ResilientClient, PublishesRetryAndBreakerMetrics)
{
    Server server;
    startOrFail(server);
    RetryPolicy retry;
    retry.max_attempts = 2;
    retry.base_backoff_ms = 0;
    Client client("127.0.0.1", server.port(), retry);
    client.setMetrics(&server.service().metrics());

    FaultGuard guard("accept-fail:2");
    auto warm = client.post("/v1/gains", kGainsBody, true); // accept #1
    ASSERT_TRUE(warm.ok()) << warm.error().str();
    auto res = client.post("/v1/gains", kGainsBody, true); // #2 killed
    ASSERT_TRUE(res.ok()) << res.error().str();

    // Scrape through the client too (accept #4 is killed as well; the
    // retry converges). The scrape renders while the plan is armed, so
    // faults_injected_total reports the two accept-fail fires.
    auto prom = client.get("/metrics");
    ASSERT_TRUE(prom.ok()) << prom.error().str();
    const std::string &body = prom.value().body;
    for (const char *line :
         { "accelwall_retries_total 2", "accelwall_breaker_state 0",
           "accelwall_faults_injected_total 2",
           "accelwall_connection_aborts_total{cause=\"accept-fault\"} "
           "2" }) {
        EXPECT_NE(body.find(line), std::string::npos)
            << "missing: " << line << "\n"
            << body;
    }
    server.stop();
}

// ------------------------------------------------ acceptance: chaos

namespace
{

/** One chaos run: returns per-run totals for the determinism check. */
struct ChaosRunStats
{
    std::uint64_t attempts = 0;
    std::uint64_t killed = 0;
    std::uint64_t total_injected = 0;
    std::uint64_t accept_injected = 0;
};

} // namespace

/**
 * The acceptance gate: a hostile plan across accept-fail, send-reset,
 * and conn-drop-mid-body that kills >= 30% of connection attempts.
 * The resilient client must converge on every request with zero
 * non-injected errors, every acknowledged response byte-identical to
 * the fault-free oracle, and two runs of the same spec must produce
 * the identical injected-fault trajectory.
 *
 * Determinism setup (DESIGN §11): one worker, one closed-loop client
 * thread, and a backoff long enough that the server finishes a failed
 * exchange's tail work before the next attempt arrives — the counted
 * socket sites then run in a fixed global order.
 */
TEST(ChaosAcceptance, ConvergesByteIdenticalUnderHostileFaultPlan)
{
    std::vector<std::string> bodies;
    for (int node : {45, 32, 16, 7}) {
        for (int area : {25, 100, 400}) {
            bodies.push_back(
                "{\"spec\": {\"node_nm\": " + std::to_string(node) +
                ", \"area_mm2\": " + std::to_string(area) +
                ", \"freq_ghz\": 1.5, \"tdp_w\": 250}}");
        }
    }

    // Oracle: the same queries against a fault-free server.
    std::vector<std::string> oracle;
    {
        Server server;
        startOrFail(server);
        for (const std::string &body : bodies) {
            auto res = httpRequest("127.0.0.1", server.port(), "POST",
                                   "/v1/gains", body);
            ASSERT_TRUE(res.ok()) << res.error().str();
            ASSERT_EQ(res.value().status, 200);
            oracle.push_back(res.value().body);
        }
        server.stop();
    }

    const char *kSpec =
        "accept-fail:4,send-reset:7,conn-drop-mid-body:9";
    std::vector<ChaosRunStats> runs;
    for (int run = 0; run < 2; ++run) {
        ServerOptions options;
        options.workers = 1;
        Server server(options);
        startOrFail(server);

        RetryPolicy retry;
        retry.max_attempts = 10;
        retry.base_backoff_ms = 25; // lets the failed exchange's tail
        retry.max_backoff_ms = 25;  // drain before the next attempt
        BreakerPolicy breaker;
        breaker.failure_threshold = 1000; // converge, don't fast-fail
        Client client("127.0.0.1", server.port(), retry, breaker);

        FaultGuard guard(kSpec);
        for (std::size_t i = 0; i < bodies.size(); ++i) {
            auto res = client.post("/v1/gains", bodies[i], true);
            ASSERT_TRUE(res.ok())
                << "run " << run << " request " << i << ": "
                << res.error().str();
            ASSERT_EQ(res.value().status, 200) << res.value().body;
            EXPECT_EQ(res.value().body, oracle[i])
                << "run " << run << " response " << i
                << " diverged from the fault-free oracle";
        }

        ChaosRunStats stats;
        stats.killed = client.retries(); // each retry = a killed attempt
        stats.attempts = bodies.size() + stats.killed;
        auto &plan = FaultPlan::global();
        stats.total_injected = plan.totalInjected();
        stats.accept_injected = plan.injectedCount("accept-fail");
        runs.push_back(stats);

        // The plan must be genuinely hostile: >= 30% of connection
        // attempts died to an injected fault, yet zero errors leaked
        // past the client (asserted request by request above).
        EXPECT_GE(10 * stats.killed, 3 * stats.attempts)
            << stats.killed << " killed of " << stats.attempts
            << " attempts in run " << run;
        EXPECT_GT(stats.total_injected, 0u);
        server.stop();
    }

    // Same spec, same trajectory: the injected-fault counts reproduce
    // exactly across runs.
    EXPECT_EQ(runs[0].total_injected, runs[1].total_injected);
    EXPECT_EQ(runs[0].accept_injected, runs[1].accept_injected);
    EXPECT_EQ(runs[0].attempts, runs[1].attempts);
}
