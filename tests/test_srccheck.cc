/**
 * @file
 * The source lint domain: tokenizer, corpus plumbing, the
 * srccheck:allow suppression grammar, and one synthetic-corpus case
 * per S rule. The rules run against in-memory SourceFiles built with
 * makeSourceFile, so every case is hermetic — the on-disk repo is
 * covered separately by the lint_source ctest entry.
 *
 * Note on string literals here: S003 scans this file's raw text for
 * Exxxx references, so codes that must NOT exist in the real registry
 * are split across adjacent literals ("E" "9999" never appears as one
 * token of text).
 */

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "srccheck/check.hh"
#include "srccheck/scan.hh"
#include "srccheck/token.hh"

namespace accelwall::srccheck
{
namespace
{

// ---------------------------------------------------------------------
// Tokenizer

TEST(Tokenize, KindsAndPositions)
{
    TokenStream ts = tokenize("int x = 42;\nreturn x;\n");
    ASSERT_EQ(ts.tokens.size(), 8u);
    EXPECT_EQ(ts.tokens[0].kind, TokKind::Identifier);
    EXPECT_TRUE(ts.tokens[0].isIdent("int"));
    EXPECT_EQ(ts.tokens[0].line, 1u);
    EXPECT_TRUE(ts.tokens[2].isPunct('='));
    EXPECT_EQ(ts.tokens[3].kind, TokKind::Number);
    EXPECT_EQ(ts.tokens[3].text, "42");
    EXPECT_EQ(ts.tokens[5].line, 2u);
    EXPECT_EQ(ts.lines, 2u); // a trailing newline opens no third line
}

TEST(Tokenize, CommentsAreCapturedNotTokenized)
{
    TokenStream ts = tokenize("a; // trailing note\nb;\n");
    ASSERT_EQ(ts.comments.size(), 1u);
    EXPECT_EQ(ts.comments[0].line, 1u);
    EXPECT_NE(ts.comments[0].text.find("trailing note"),
              std::string::npos);
    // Only `a ; b ;` tokenize.
    EXPECT_EQ(ts.tokens.size(), 4u);
}

TEST(Tokenize, BlockCommentSplitsPerLine)
{
    TokenStream ts = tokenize("/* one\n   two */ c;\n");
    ASSERT_EQ(ts.comments.size(), 2u);
    EXPECT_EQ(ts.comments[0].line, 1u);
    EXPECT_EQ(ts.comments[1].line, 2u);
    EXPECT_NE(ts.comments[1].text.find("two"), std::string::npos);
    EXPECT_EQ(ts.tokens.size(), 2u); // c ;
}

TEST(Tokenize, DirectiveJoinsContinuationLines)
{
    TokenStream ts = tokenize("#define WIDE(a) \\\n    (a + 1)\nx;\n");
    ASSERT_EQ(ts.directives.size(), 1u);
    EXPECT_EQ(ts.directives[0].line, 1u);
    EXPECT_NE(ts.directives[0].text.find("WIDE"), std::string::npos);
    EXPECT_NE(ts.directives[0].text.find("(a + 1)"), std::string::npos);
    // The directive body never leaks into the token stream.
    ASSERT_EQ(ts.tokens.size(), 2u);
    EXPECT_TRUE(ts.tokens[0].isIdent("x"));
    EXPECT_EQ(ts.tokens[0].line, 3u);
}

TEST(Tokenize, StringQuoteEscapesAreDecoded)
{
    // Policy: \" and \\ are unescaped (so embedded quotes read
    // naturally), every other escape stays verbatim.
    TokenStream ts = tokenize("f(\"say \\\"hi\\\\n\\\"\", 'c');\n");
    ASSERT_EQ(ts.tokens.size(), 7u);
    EXPECT_EQ(ts.tokens[2].kind, TokKind::String);
    EXPECT_EQ(ts.tokens[2].text, "say \"hi\\n\"");
    EXPECT_EQ(ts.tokens[4].kind, TokKind::Char);
}

TEST(Tokenize, RawStringsKeepQuotesAndBackslashes)
{
    TokenStream ts = tokenize("auto s = R\"(say \"hi\\n\")\";\n");
    ASSERT_EQ(ts.tokens.size(), 5u);
    EXPECT_EQ(ts.tokens[3].kind, TokKind::String);
    EXPECT_EQ(ts.tokens[3].text, "say \"hi\\n\"");
}

// ---------------------------------------------------------------------
// Corpus plumbing

TEST(Corpus, MakeSourceFileTokenizesOnlyCxx)
{
    SourceFile cc = makeSourceFile("src/a.cc", "int x;\n");
    EXPECT_TRUE(cc.tokenized);
    SourceFile sh = makeSourceFile("tools/run.sh", "echo hi\n");
    EXPECT_FALSE(sh.tokenized);
    EXPECT_TRUE(sh.stream.tokens.empty());
}

TEST(Corpus, FindAndTotalLines)
{
    Corpus c;
    c.files.push_back(makeSourceFile("src/a.cc", "int x;\nint y;\n"));
    c.files.push_back(makeSourceFile("src/b.cc", "int z;\n"));
    ASSERT_NE(c.find("src/b.cc"), nullptr);
    EXPECT_EQ(c.find("src/nope.cc"), nullptr);
    EXPECT_EQ(c.totalLines(), 3u);
}

TEST(Corpus, LoadCorpusRejectsBadRoot)
{
    auto r = loadCorpus("/nonexistent/srccheck-root");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::SrcScanIo);
}

// ---------------------------------------------------------------------
// Suppressions

// One S007 violation, suppressible in every supported placement.
Report
checkDiscardFile(const std::string &body)
{
    Corpus c;
    c.files.push_back(makeSourceFile("src/x.cc", body));
    return check(c);
}

TEST(Allow, UnsuppressedViolationFires)
{
    Report r = checkDiscardFile("void f() { (void)g(); }\n");
    EXPECT_TRUE(r.fired(RuleId::DiscardAudit));
    EXPECT_FALSE(r.ok());
}

TEST(Allow, TrailingMarkerCoversItsOwnLine)
{
    Report r = checkDiscardFile(
        "void f() { (void)g(); } // srccheck:allow(S007): advisory\n");
    EXPECT_FALSE(r.fired(RuleId::DiscardAudit));
    EXPECT_TRUE(r.ok());
}

TEST(Allow, MarkerOnLineAboveCoversNextLine)
{
    Report r = checkDiscardFile("// srccheck:allow(S007): advisory\n"
                                "void f() { (void)g(); }\n");
    EXPECT_FALSE(r.fired(RuleId::DiscardAudit));
}

TEST(Allow, MultiLineJustificationReachesTheStatement)
{
    // The reason spans three comment lines; the window must extend
    // through the block to the first code line after it.
    Report r = checkDiscardFile(
        "// srccheck:allow(S007): the return value is advisory\n"
        "// here because the caller re-derives the same state on\n"
        "// the next tick anyway.\n"
        "void f() { (void)g(); }\n");
    EXPECT_FALSE(r.fired(RuleId::DiscardAudit));
}

TEST(Allow, MarkerDoesNotLeakPastTheNextCodeLine)
{
    Report r = checkDiscardFile("// srccheck:allow(S007): only line 2\n"
                                "int ok;\n"
                                "void f() { (void)g(); }\n");
    EXPECT_TRUE(r.fired(RuleId::DiscardAudit));
}

TEST(Allow, ListedRulesOnlyDisarmThemselves)
{
    Report r = checkDiscardFile("// srccheck:allow(S006, S009)\n"
                                "void f() { (void)g(); }\n");
    EXPECT_TRUE(r.fired(RuleId::DiscardAudit));
}

// ---------------------------------------------------------------------
// S001..S003: the error-code registry

// A minimal healthy registry corpus the cases below perturb.
std::vector<std::pair<std::string, std::string>>
healthyRegistry()
{
    return {
        { "src/util/error.hh",
          "enum class ErrorCode\n{\n    None = 0,\n"
          "    AlphaBad = 1101,\n};\n" },
        { "src/util/error.cc",
          "#include \"util/error.hh\"\n"
          "const char *label(ErrorCode c)\n{\n"
          "    switch (c) {\n"
          "      case ErrorCode::None: return \"none\";\n"
          "      case ErrorCode::AlphaBad: return \"alpha\";\n"
          "    }\n    return \"\";\n}\n" },
        { "src/ingest/a.cc",
          "int f()\n{\n"
          "    return makeError(ErrorCode::AlphaBad, \"x\");\n}\n" },
    };
}

Report
checkFiles(std::vector<std::pair<std::string, std::string>> files,
           Options options = {})
{
    Corpus c;
    for (auto &[path, text] : files)
        c.files.push_back(makeSourceFile(std::move(path),
                                         std::move(text)));
    return check(c, options);
}

TEST(Registry, HealthyCorpusIsClean)
{
    Report r = checkFiles(healthyRegistry());
    EXPECT_TRUE(r.ok()) << (r.diagnostics.empty()
                                ? "no diagnostics"
                                : r.diagnostics[0].str());
    EXPECT_EQ(r.num_errors + r.num_warnings, 0u);
}

TEST(Registry, DuplicateEnumeratorFiresS001)
{
    auto files = healthyRegistry();
    files[0].second =
        "enum class ErrorCode\n{\n    None = 0,\n"
        "    AlphaBad = 1101,\n    AlphaBad = 1102,\n};\n";
    Report r = checkFiles(files);
    EXPECT_TRUE(r.fired(RuleId::ErrorCodeRegistry));
}

TEST(Registry, ValueCollisionFiresS001)
{
    auto files = healthyRegistry();
    files[0].second =
        "enum class ErrorCode\n{\n    None = 0,\n"
        "    AlphaBad = 1101,\n    BetaBad = 1101,\n};\n";
    Report r = checkFiles(files);
    EXPECT_TRUE(r.fired(RuleId::ErrorCodeRegistry));
}

TEST(Registry, MissingLabelCaseFiresS001)
{
    auto files = healthyRegistry();
    files[0].second =
        "enum class ErrorCode\n{\n    None = 0,\n"
        "    AlphaBad = 1101,\n    BetaBad = 1102,\n};\n";
    // BetaBad is raised (so S002 stays quiet) but never labeled.
    files[2].second =
        "int f()\n{\n"
        "    makeError(ErrorCode::AlphaBad, \"x\");\n"
        "    return makeError(ErrorCode::BetaBad, \"y\");\n}\n";
    Report r = checkFiles(files);
    EXPECT_TRUE(r.fired(RuleId::ErrorCodeRegistry));
    EXPECT_FALSE(r.fired(RuleId::ErrorCodeRaised));
}

TEST(Registry, SecondEnumDefinitionFiresS001)
{
    auto files = healthyRegistry();
    files.emplace_back("src/rogue/codes.hh",
                       "enum class ErrorCode\n{\n    Hmm = 7,\n};\n");
    Report r = checkFiles(files);
    EXPECT_TRUE(r.fired(RuleId::ErrorCodeRegistry));
}

TEST(Registry, NeverRaisedCodeFiresS002)
{
    auto files = healthyRegistry();
    files[0].second =
        "enum class ErrorCode\n{\n    None = 0,\n"
        "    AlphaBad = 1101,\n    GhostBad = 1102,\n};\n";
    files[1].second =
        "const char *label(ErrorCode c)\n{\n"
        "    switch (c) {\n"
        "      case ErrorCode::None: return \"none\";\n"
        "      case ErrorCode::AlphaBad: return \"alpha\";\n"
        "      case ErrorCode::GhostBad: return \"ghost\";\n"
        "    }\n    return \"\";\n}\n";
    Report r = checkFiles(files);
    EXPECT_TRUE(r.fired(RuleId::ErrorCodeRaised));
    EXPECT_FALSE(r.fired(RuleId::ErrorCodeRegistry));
}

TEST(Registry, ServeCodeOffTheHttpMapFiresS002)
{
    auto files = healthyRegistry();
    files[0].second =
        "enum class ErrorCode\n{\n    None = 0,\n"
        "    AlphaBad = 1101,\n    ServeBad = 5042,\n};\n";
    files[1].second =
        "const char *label(ErrorCode c)\n{\n"
        "    switch (c) {\n"
        "      case ErrorCode::None: return \"none\";\n"
        "      case ErrorCode::AlphaBad: return \"alpha\";\n"
        "      case ErrorCode::ServeBad: return \"serve\";\n"
        "    }\n    return \"\";\n}\n";
    files[2].second =
        "int f()\n{\n"
        "    makeError(ErrorCode::AlphaBad, \"x\");\n"
        "    return makeError(ErrorCode::ServeBad, \"y\");\n}\n";
    // httpStatusFor exists but ServeBad rides its default branch.
    files.emplace_back(
        "src/serve/service.cc",
        "int httpStatusFor(ErrorCode c)\n{\n"
        "    switch (c) {\n"
        "      case ErrorCode::AlphaBad: return 400;\n"
        "      default: return 500;\n    }\n}\n");
    Report r = checkFiles(files);
    EXPECT_TRUE(r.fired(RuleId::ErrorCodeRaised));

    // Adding the explicit case clears it.
    files.back().second =
        "int httpStatusFor(ErrorCode c)\n{\n"
        "    switch (c) {\n"
        "      case ErrorCode::AlphaBad: return 400;\n"
        "      case ErrorCode::ServeBad: return 503;\n"
        "      default: return 500;\n    }\n}\n";
    Report clean = checkFiles(files);
    EXPECT_FALSE(clean.fired(RuleId::ErrorCodeRaised));
}

TEST(Registry, UnknownCitedCodeFiresS003)
{
    auto files = healthyRegistry();
    files.emplace_back("tests/test_a.cc",
                       std::string("// expects code E") +
                           "9999 from the parser\nint main() {}\n");
    Report r = checkFiles(files);
    EXPECT_TRUE(r.fired(RuleId::ErrorCodeReference));

    // A known code (and a five-digit number) are both fine.
    files.back().second = std::string("// expects E") +
                          "1101; serial E" + "123456 is not a code\n" +
                          "int main() {}\n";
    Report clean = checkFiles(files);
    EXPECT_FALSE(clean.fired(RuleId::ErrorCodeReference));
}

// ---------------------------------------------------------------------
// S004: fault sites

std::vector<std::pair<std::string, std::string>>
healthyFaultCorpus()
{
    return {
        { "src/util/faultinject.hh",
          "struct FaultSiteInfo { const char *site; };\n"
          "inline constexpr FaultSiteInfo kFaultSites[] = {\n"
          "    { \"fit\", \"counted\", \"fit fails\" },\n};\n" },
        { "src/aladdin/model.cc",
          "int f(FaultPlan &p)\n{\n"
          "    if (p.shouldFailCounted(\"fit\"))\n        return 1;\n"
          "    return 0;\n}\n" },
        { "tests/test_faults.cc",
          "// exercises site fit via --fault fit:2\nint main() {}\n" },
    };
}

TEST(FaultSites, HealthyCorpusIsClean)
{
    Report r = checkFiles(healthyFaultCorpus());
    EXPECT_FALSE(r.fired(RuleId::FaultSiteConsistency));
}

TEST(FaultSites, UnregisteredUseFires)
{
    auto files = healthyFaultCorpus();
    files[1].second =
        "int f(FaultPlan &p)\n{\n"
        "    if (p.shouldFail(\"rogue\"))\n        return 1;\n"
        "    if (p.shouldFailCounted(\"fit\"))\n        return 2;\n"
        "    return 0;\n}\n";
    Report r = checkFiles(files);
    EXPECT_TRUE(r.fired(RuleId::FaultSiteConsistency));
}

TEST(FaultSites, RegisteredButUncheckedFires)
{
    auto files = healthyFaultCorpus();
    files[0].second =
        "struct FaultSiteInfo { const char *site; };\n"
        "inline constexpr FaultSiteInfo kFaultSites[] = {\n"
        "    { \"fit\", \"counted\", \"fit fails\" },\n"
        "    { \"orphan\", \"keyed\", \"nobody checks this\" },\n};\n";
    Report r = checkFiles(files);
    EXPECT_TRUE(r.fired(RuleId::FaultSiteConsistency));
}

TEST(FaultSites, RegisteredButUntestedFires)
{
    auto files = healthyFaultCorpus();
    files[2].second = "// mentions no site at all\nint main() {}\n";
    Report r = checkFiles(files);
    EXPECT_TRUE(r.fired(RuleId::FaultSiteConsistency));
}

// ---------------------------------------------------------------------
// S005..S010: per-file hygiene

TEST(Hygiene, ClockInHotPathFiresS005)
{
    Report r = checkFiles(
        { { "src/aladdin/eval.cc",
            "double f()\n{\n    return rand() * 0.5;\n}\n" } });
    EXPECT_TRUE(r.fired(RuleId::DeterminismHygiene));

    // The same identifier as a member access is somebody's field.
    Report member = checkFiles(
        { { "src/aladdin/eval.cc",
            "double f(Bound b, Bound *p)\n{\n"
            "    return b.time + p->time;\n}\n" } });
    EXPECT_FALSE(member.fired(RuleId::DeterminismHygiene));

    // Outside the hot paths the rule does not apply.
    Report cold = checkFiles(
        { { "src/plot/render.cc",
            "double f()\n{\n    return rand() * 0.5;\n}\n" } });
    EXPECT_FALSE(cold.fired(RuleId::DeterminismHygiene));
}

TEST(Hygiene, QualifiedTimeStillFiresS005)
{
    Report r = checkFiles(
        { { "src/csr/fit.cc",
            "long f()\n{\n    return std::time(nullptr);\n}\n" } });
    EXPECT_TRUE(r.fired(RuleId::DeterminismHygiene));
}

TEST(Hygiene, BlockingUnderLockFiresS006AsWarning)
{
    Report r = checkFiles(
        { { "src/util/log.cc",
            "void f()\n{\n    MutexLock lock(mu);\n"
            "    out.flush();\n}\n" } });
    ASSERT_TRUE(r.fired(RuleId::LockDiscipline));
    EXPECT_EQ(r.num_warnings, 1u);
    EXPECT_TRUE(r.ok()); // warning-severity by default

    Options strict;
    strict.warnings_as_errors = true;
    Report esc = checkFiles(
        { { "src/util/log.cc",
            "void f()\n{\n    MutexLock lock(mu);\n"
            "    out.flush();\n}\n" } },
        strict);
    EXPECT_FALSE(esc.ok());
}

TEST(Hygiene, LockScopeEndsAtTheClosingBrace)
{
    Report r = checkFiles(
        { { "src/util/log.cc",
            "void f()\n{\n    {\n        MutexLock lock(mu);\n"
            "        x = 1;\n    }\n    out.flush();\n}\n" } });
    EXPECT_FALSE(r.fired(RuleId::LockDiscipline));
}

TEST(Hygiene, VoidZeroMacroIdiomPassesS007)
{
    Report r = checkFiles(
        { { "src/util/macros.hh",
            "void f()\n{\n    (void)0;\n}\n" } });
    EXPECT_FALSE(r.fired(RuleId::DiscardAudit));
}

TEST(Hygiene, DimensionalDoubleParamFiresS008)
{
    Report r = checkFiles(
        { { "src/cmos/scale.hh",
            "double scaleArea(double area_mm2);\n" } });
    EXPECT_TRUE(r.fired(RuleId::UnitsEscapeHatch));

    // Struct members at paren depth zero are the ingest boundary.
    Report member = checkFiles(
        { { "src/cmos/scale.hh",
            "struct Row\n{\n    double area_mm2 = 0.0;\n};\n" } });
    EXPECT_FALSE(member.fired(RuleId::UnitsEscapeHatch));
}

TEST(Hygiene, AngleProjectIncludeFiresS009)
{
    Report r = checkFiles(
        { { "src/util/error.hh", "enum class E { };\n" },
          { "src/csr/load.cc",
            "#include <util/error.hh>\nint x;\n" } });
    EXPECT_TRUE(r.fired(RuleId::IncludeHygiene));
}

TEST(Hygiene, OwnHeaderNotFirstFiresS009)
{
    Report r = checkFiles(
        { { "src/csr/load.hh", "int load();\n" },
          { "src/csr/load.cc",
            "#include <vector>\n#include \"csr/load.hh\"\n"
            "int load() { return 1; }\n" } });
    EXPECT_TRUE(r.fired(RuleId::IncludeHygiene));

    Report clean = checkFiles(
        { { "src/csr/load.hh", "int load();\n" },
          { "src/csr/load.cc",
            "#include \"csr/load.hh\"\n#include <vector>\n"
            "int load() { return 1; }\n" } });
    EXPECT_FALSE(clean.fired(RuleId::IncludeHygiene));
}

TEST(Hygiene, FatalInServeFiresS010)
{
    Report r = checkFiles(
        { { "src/serve/handler.cc",
            "void f()\n{\n    fatal(\"boom\");\n}\n" } });
    EXPECT_TRUE(r.fired(RuleId::FatalPathAudit));

    // The same call outside serve/ is somebody's deliberate policy.
    Report ok = checkFiles(
        { { "src/util/die.cc",
            "void f()\n{\n    fatal(\"boom\");\n}\n" } });
    EXPECT_FALSE(ok.fired(RuleId::FatalPathAudit));
}

// ---------------------------------------------------------------------
// Report machinery

TEST(Report, DiagnosticStrFormat)
{
    Report r = checkFiles(
        { { "src/serve/handler.cc",
            "void f()\n{\n    abort();\n}\n" } });
    ASSERT_EQ(r.diagnostics.size(), 1u);
    EXPECT_EQ(r.diagnostics[0].str().substr(0, 26),
              "src/serve/handler.cc:3: er");
    EXPECT_NE(r.diagnostics[0].str().find("S010 fatal-path-audit"),
              std::string::npos);
}

TEST(Report, MaxDiagnosticsCapCountsTheRest)
{
    Options opts;
    opts.max_diagnostics = 1;
    Report r = checkFiles(
        { { "src/serve/handler.cc",
            "void f()\n{\n    abort();\n    abort();\n"
            "    abort();\n}\n" } },
        opts);
    EXPECT_EQ(r.diagnostics.size(), 1u);
    EXPECT_EQ(r.suppressed, 2u);
    EXPECT_EQ(r.num_errors, 3u); // counters keep the true totals
    EXPECT_NE(r.summary().find("capped"), std::string::npos);
}

TEST(Report, RuleCodesAreStable)
{
    EXPECT_STREQ(ruleCode(RuleId::ErrorCodeRegistry), "S001");
    EXPECT_STREQ(ruleCode(RuleId::FatalPathAudit), "S010");
    EXPECT_STREQ(ruleName(RuleId::DeterminismHygiene),
                 "determinism-hygiene");
    EXPECT_EQ(defaultSeverity(RuleId::LockDiscipline),
              Severity::Warning);
    EXPECT_EQ(defaultSeverity(RuleId::ErrorCodeRegistry),
              Severity::Error);
}

} // namespace
} // namespace accelwall::srccheck
