/**
 * @file
 * Fault-tolerance tests: Result/Error plumbing, the deterministic
 * fault-injection harness, quarantine-and-continue ingestion, the
 * fault-isolated sweep with checkpoint/resume, and thread-safe
 * logging. Exercises every compiled-in injection site (ingest-record,
 * fit, chain, sweep-kill).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "aladdin/simulator.hh"
#include "aladdin/sweep.hh"
#include "chipdb/budget.hh"
#include "chipdb/ingest.hh"
#include "chipdb/synth.hh"
#include "kernels/kernels.hh"
#include "util/error.hh"
#include "util/faultinject.hh"
#include "util/logging.hh"

namespace accelwall
{
namespace
{

using aladdin::OnError;
using aladdin::runSweep;
using aladdin::runSweepChecked;
using aladdin::Simulator;
using aladdin::SweepConfig;
using aladdin::SweepOptions;
using aladdin::SweepPoint;
using chipdb::ChipRecord;
using chipdb::IngestReport;
using util::FaultPlan;

/** Arms a fault plan for one test and disarms it on scope exit. */
class FaultGuard
{
  public:
    explicit FaultGuard(const std::string &spec)
    {
        auto r = FaultPlan::global().configure(spec);
        EXPECT_TRUE(r.ok()) << spec;
    }
    ~FaultGuard() { FaultPlan::global().clear(); }
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    out << content;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "accelwall_" + name;
}

// ---------------------------------------------------------------------
// Error / Result plumbing.
// ---------------------------------------------------------------------

TEST(Error, StrFormatsCodeLabelAndContext)
{
    Error e = makeError(ErrorCode::CsvUnterminatedQuote, "boom")
                  .at(3, 7);
    e.in("chips.csv");
    EXPECT_EQ(e.str(),
              "E1001 csv-unterminated-quote: boom (chips.csv:3:7)");
    EXPECT_EQ(errorCodeName(ErrorCode::FaultInjected), "E9001");
}

TEST(Error, ResultVoidDefaultsToOk)
{
    Result<void> ok;
    EXPECT_TRUE(ok.ok());
    Result<void> bad = makeError(ErrorCode::Internal, "x");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code(), ErrorCode::Internal);
}

TEST(Error, ThrowErrorRoundTripsThroughException)
{
    try {
        throwError(makeError(ErrorCode::SweepChainFailed, "chain died"));
        FAIL() << "throwError returned";
    } catch (const ErrorException &e) {
        EXPECT_EQ(e.error().code(), ErrorCode::SweepChainFailed);
        EXPECT_NE(std::string(e.what()).find("chain died"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Fault-injection harness.
// ---------------------------------------------------------------------

TEST(FaultPlan, ParsesSpecAndArmsSites)
{
    FaultGuard guard("chain:3,ingest-record:10");
    EXPECT_TRUE(FaultPlan::global().armed("chain"));
    EXPECT_TRUE(FaultPlan::global().armed("ingest-record"));
    EXPECT_FALSE(FaultPlan::global().armed("fit"));
}

TEST(FaultPlan, MalformedSpecDisarmsEverything)
{
    for (const char *spec : {"chain", "chain:0", "chain:x", ":3"}) {
        auto r = FaultPlan::global().configure(spec);
        EXPECT_FALSE(r.ok()) << spec;
        EXPECT_FALSE(FaultPlan::global().armed("chain")) << spec;
    }
    FaultPlan::global().clear();
}

TEST(FaultPlan, KeyedCheckIsPureFunctionOfKey)
{
    FaultGuard guard("chain:3");
    std::set<std::uint64_t> failed;
    for (std::uint64_t k = 0; k < 12; ++k) {
        if (FaultPlan::global().shouldFail("chain", k))
            failed.insert(k);
        // Re-checking the same key gives the same answer: no counter.
        EXPECT_EQ(FaultPlan::global().shouldFail("chain", k),
                  failed.count(k) == 1);
    }
    EXPECT_EQ(failed, (std::set<std::uint64_t>{2, 5, 8, 11}));
    EXPECT_FALSE(FaultPlan::global().shouldFail("other-site", 2));
}

TEST(FaultPlan, CountedCheckFiresEveryPeriodThCall)
{
    FaultGuard guard("fit:2");
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i)
        fired.push_back(FaultPlan::global().shouldFailCounted("fit"));
    EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true,
                                        false, true}));
}

TEST(FaultPlan, InjectedFaultCarriesSiteAndCode)
{
    Error e = util::injectedFault("chain", 5);
    EXPECT_EQ(e.code(), ErrorCode::FaultInjected);
    EXPECT_NE(e.str().find("chain"), std::string::npos);
}

// ---------------------------------------------------------------------
// Record validation and quarantine ingestion.
// ---------------------------------------------------------------------

ChipRecord
goodRecord(const std::string &name = "chip")
{
    ChipRecord rec;
    rec.name = name;
    rec.platform = chipdb::Platform::CPU;
    rec.year = 2015.0;
    rec.node_nm = 14.0;
    rec.area_mm2 = 120.0;
    rec.transistors = 2e9;
    rec.freq_mhz = 3000.0;
    rec.tdp_w = 65.0;
    return rec;
}

TEST(Ingest, ValidateRecordReportsStableCodes)
{
    EXPECT_TRUE(chipdb::validateRecord(goodRecord()).ok());

    auto code = [](ChipRecord rec) {
        auto r = chipdb::validateRecord(rec);
        return r.ok() ? ErrorCode::None : r.error().code();
    };
    ChipRecord rec = goodRecord();
    rec.node_nm = 0.0;
    EXPECT_EQ(code(rec), ErrorCode::RecordNonPositiveNode);
    rec = goodRecord();
    rec.area_mm2 = -3.0;
    EXPECT_EQ(code(rec), ErrorCode::RecordNonPositiveArea);
    rec = goodRecord();
    rec.tdp_w = 0.0;
    EXPECT_EQ(code(rec), ErrorCode::RecordNonPositiveTdp);
    rec = goodRecord();
    rec.freq_mhz = -1.0;
    EXPECT_EQ(code(rec), ErrorCode::RecordNonPositiveFreq);
    rec = goodRecord();
    rec.year = -5.0;
    EXPECT_EQ(code(rec), ErrorCode::RecordBadYear);
    rec = goodRecord();
    rec.area_mm2 = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(code(rec), ErrorCode::RecordNonFinite);
    rec = goodRecord();
    rec.transistors = -1.0;
    EXPECT_EQ(code(rec), ErrorCode::RecordNonFinite);

    // 0 transistors means "undisclosed", not corrupt.
    rec = goodRecord();
    rec.transistors = 0.0;
    EXPECT_TRUE(chipdb::validateRecord(rec).ok());
}

TEST(Ingest, QuarantineSkipsBadRecordsAndCountsExactly)
{
    std::vector<ChipRecord> records;
    for (int i = 0; i < 10; ++i)
        records.push_back(goodRecord("chip" + std::to_string(i)));
    records[3].tdp_w = 0.0;
    records[7].node_nm = -1.0;

    IngestReport report;
    auto ok = chipdb::quarantineRecords(records, report);
    EXPECT_EQ(ok.size(), 8u);
    EXPECT_EQ(report.total, 10u);
    EXPECT_EQ(report.accepted, 8u);
    EXPECT_EQ(report.quarantined, 2u);
    ASSERT_EQ(report.issues.size(), 2u);
    EXPECT_EQ(report.issues[0].row, 3u);
    EXPECT_EQ(report.issues[0].name, "chip3");
    EXPECT_EQ(report.issues[0].error.code(),
              ErrorCode::RecordNonPositiveTdp);
    EXPECT_EQ(report.issues[1].row, 7u);
    EXPECT_EQ(report.summary(),
              "8/10 records ok, 2 quarantined (E2001 x 1, E2003 x 1)");
}

TEST(Ingest, InjectionQuarantinesExactlyTheKeyedRecords)
{
    FaultGuard guard("ingest-record:3");
    std::vector<ChipRecord> records;
    for (int i = 0; i < 9; ++i)
        records.push_back(goodRecord("chip" + std::to_string(i)));

    IngestReport report;
    auto ok = chipdb::quarantineRecords(records, report);
    EXPECT_EQ(ok.size(), 6u);
    EXPECT_EQ(report.quarantined, 3u);
    EXPECT_EQ(report.code_counts.at(9001), 3u);
    std::set<std::size_t> rows;
    for (const auto &issue : report.issues)
        rows.insert(issue.row);
    EXPECT_EQ(rows, (std::set<std::size_t>{2, 5, 8}));
}

TEST(Ingest, ParseChipCsvAcceptsCleanFile)
{
    IngestReport report;
    auto recs = chipdb::parseChipCsv(
        "name,platform,year,node_nm,area_mm2,freq_mhz,tdp_w,transistors\n"
        "a,CPU,2015,14,120,3000,65,2e9\n"
        "b,GPU,2017,16,471,1500,250,\n",
        report);
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs.value().size(), 2u);
    EXPECT_EQ(recs.value()[0].name, "a");
    EXPECT_DOUBLE_EQ(recs.value()[0].transistors, 2e9);
    // Empty transistors field = undisclosed.
    EXPECT_DOUBLE_EQ(recs.value()[1].transistors, 0.0);
    EXPECT_EQ(recs.value()[1].platform, chipdb::Platform::GPU);
    EXPECT_EQ(report.accepted, 2u);
    EXPECT_EQ(report.quarantined, 0u);
}

TEST(Ingest, ParseChipCsvQuarantinesBadRowsAndContinues)
{
    IngestReport report;
    auto recs = chipdb::parseChipCsv(
        "name,platform,year,node_nm,area_mm2,freq_mhz,tdp_w\n"
        "ok1,CPU,2015,14,120,3000,65\n"
        "short-row,CPU,2015\n"
        "bad-num,CPU,2015,14,xyz,3000,65\n"
        "bad-platform,TPU,2015,14,120,3000,65\n"
        "bad-tdp,CPU,2015,14,120,3000,0\n"
        "ok2,GPU,2016,16,300,1500,180\n",
        report);
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs.value().size(), 2u);
    EXPECT_EQ(recs.value()[0].name, "ok1");
    EXPECT_EQ(recs.value()[1].name, "ok2");
    EXPECT_EQ(report.total, 6u);
    EXPECT_EQ(report.quarantined, 4u);
    EXPECT_EQ(report.code_counts.at(1002), 1u); // arity
    EXPECT_EQ(report.code_counts.at(1003), 1u); // bad number
    EXPECT_EQ(report.code_counts.at(2007), 1u); // bad platform
    EXPECT_EQ(report.code_counts.at(2003), 1u); // bad TDP
    ASSERT_EQ(report.issues.size(), 4u);
    EXPECT_EQ(report.issues[0].name, "short-row");
    EXPECT_EQ(report.issues[0].error.code(),
              ErrorCode::CsvArityMismatch);
    // Row positions are 0-based data-row indices.
    EXPECT_EQ(report.issues[0].row, 1u);
    EXPECT_EQ(report.issues[3].row, 4u);
}

TEST(Ingest, FileLevelProblemsFailTheWholeParse)
{
    IngestReport report;
    auto missing = chipdb::parseChipCsv("name,platform\nx,CPU\n", report);
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code(), ErrorCode::CsvMissingColumn);

    auto empty = chipdb::parseChipCsv(
        "name,platform,year,node_nm,area_mm2,freq_mhz,tdp_w\n", report);
    ASSERT_FALSE(empty.ok());
    EXPECT_EQ(empty.error().code(), ErrorCode::CsvNoData);

    auto broken = chipdb::parseChipCsv("name,\"oops\n", report);
    ASSERT_FALSE(broken.ok());
    EXPECT_EQ(broken.error().code(), ErrorCode::CsvUnterminatedQuote);
}

TEST(Ingest, DetailedIssuesAreCappedButCountsStayExact)
{
    std::vector<ChipRecord> records;
    for (int i = 0; i < 30; ++i) {
        ChipRecord rec = goodRecord("bad" + std::to_string(i));
        rec.tdp_w = 0.0;
        records.push_back(rec);
    }
    IngestReport report;
    auto ok = chipdb::quarantineRecords(records, report);
    EXPECT_TRUE(ok.empty());
    EXPECT_EQ(report.quarantined, 30u);
    EXPECT_EQ(report.issues.size(), IngestReport::kMaxDetailedIssues);
    EXPECT_EQ(report.code_counts.at(2003), 30u);
}

// ---------------------------------------------------------------------
// Fits compose with quarantine; the `fit` site injects.
// ---------------------------------------------------------------------

TEST(Fits, QuarantineThenFitProceedsWithSurvivors)
{
    auto corpus = chipdb::makeSynthCorpus();
    corpus[1].area_mm2 = -10.0; // corrupt two records
    corpus[4].tdp_w = std::numeric_limits<double>::infinity();

    IngestReport report;
    auto clean = chipdb::quarantineRecords(corpus, report);
    EXPECT_EQ(report.quarantined, 2u);
    auto fit = chipdb::fitAreaModelChecked(clean);
    ASSERT_TRUE(fit.ok());
    EXPECT_NEAR(fit.value().exponent, 0.877, 0.05);
}

TEST(Fits, TooFewRecordsIsActionable)
{
    std::vector<ChipRecord> tiny = {goodRecord("only")};
    auto fit = chipdb::fitAreaModelChecked(tiny);
    ASSERT_FALSE(fit.ok());
    EXPECT_EQ(fit.error().code(), ErrorCode::FitTooFewRecords);
    EXPECT_NE(fit.error().message().find("fewer than two"),
              std::string::npos);

    auto tdp = chipdb::fitTdpModelChecked(tiny, units::Nanometers{5.0},
                                          units::Nanometers{10.0});
    ASSERT_FALSE(tdp.ok());
    EXPECT_EQ(tdp.error().code(), ErrorCode::FitTooFewRecords);
}

TEST(Fits, FitSiteInjectsRecoverableError)
{
    FaultGuard guard("fit:1");
    auto corpus = chipdb::makeSynthCorpus();
    auto fit = chipdb::fitAreaModelChecked(corpus);
    ASSERT_FALSE(fit.ok());
    EXPECT_EQ(fit.error().code(), ErrorCode::FaultInjected);
}

// ---------------------------------------------------------------------
// Fault-isolated sweep.
// ---------------------------------------------------------------------

void
expectSameCell(const SweepPoint &a, const SweepPoint &b)
{
    auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error_code, b.error_code);
    EXPECT_EQ(a.dp.partition, b.dp.partition);
    EXPECT_EQ(a.dp.simplification, b.dp.simplification);
    EXPECT_EQ(bits(a.dp.node_nm), bits(b.dp.node_nm));
    EXPECT_EQ(a.res.cycles, b.res.cycles);
    EXPECT_EQ(bits(a.res.runtime_ns), bits(b.res.runtime_ns));
    EXPECT_EQ(bits(a.res.dynamic_energy_pj), bits(b.res.dynamic_energy_pj));
    EXPECT_EQ(bits(a.res.leakage_power_uw), bits(b.res.leakage_power_uw));
    EXPECT_EQ(bits(a.res.energy_pj), bits(b.res.energy_pj));
    EXPECT_EQ(bits(a.res.power_mw), bits(b.res.power_mw));
    EXPECT_EQ(bits(a.res.area_um2), bits(b.res.area_um2));
    EXPECT_EQ(a.res.ops, b.res.ops);
    EXPECT_EQ(a.res.fused_ops, b.res.fused_ops);
    EXPECT_EQ(bits(a.res.throughput_ops), bits(b.res.throughput_ops));
    EXPECT_EQ(bits(a.res.efficiency_opj), bits(b.res.efficiency_opj));
    EXPECT_EQ(bits(a.res.lane_utilization), bits(b.res.lane_utilization));
    EXPECT_EQ(a.res.initiation_interval, b.res.initiation_interval);
    EXPECT_EQ(bits(a.res.pipelined_throughput_ops),
              bits(b.res.pipelined_throughput_ops));
}

TEST(SweepRobust, CheckedMatchesLegacyBitForBit)
{
    Simulator sim(kernels::makeKernel("RED"));
    SweepConfig cfg = SweepConfig::quick();
    auto legacy = runSweep(sim, cfg);
    auto outcome = runSweepChecked(sim, cfg);
    ASSERT_TRUE(outcome.ok());
    const auto &points = outcome.value().points;
    ASSERT_EQ(points.size(), legacy.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        expectSameCell(points[i], legacy[i]);
    EXPECT_FALSE(outcome.value().report.degraded());
    EXPECT_EQ(outcome.value().report.evaluated,
              outcome.value().report.chains);
}

TEST(SweepRobust, EmptyDimensionIsRecoverable)
{
    Simulator sim(kernels::makeKernel("RED"));
    SweepConfig cfg = SweepConfig::quick();
    cfg.partitions.clear();
    auto outcome = runSweepChecked(sim, cfg);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code(), ErrorCode::SweepEmptyDimension);
}

TEST(SweepRobust, InjectedChainsBecomeFailedCellsUnderSkip)
{
    Simulator sim(kernels::makeKernel("RED"));
    SweepConfig cfg = SweepConfig::quick();
    auto clean = runSweep(sim, cfg);

    // chain:3 kills chains 2, 5, 8, 11 — 4 of the quick grid's 12
    // (node, simplification) chains, i.e. a third of the sweep.
    FaultGuard guard("chain:3");
    SweepOptions opts;
    opts.on_error = OnError::Skip;
    auto outcome = runSweepChecked(sim, cfg, opts);
    ASSERT_TRUE(outcome.ok());
    const auto &points = outcome.value().points;
    const auto &report = outcome.value().report;

    const std::size_t n_part = cfg.partitions.size();
    const std::set<std::size_t> killed{2, 5, 8, 11};
    ASSERT_EQ(points.size(), clean.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        std::size_t chain = i / n_part;
        if (killed.count(chain)) {
            EXPECT_FALSE(points[i].ok);
            EXPECT_EQ(points[i].error_code, ErrorCode::FaultInjected);
            EXPECT_NE(points[i].error.find("E9001"), std::string::npos);
            // Failed cells keep their grid coordinates but zero results.
            EXPECT_EQ(points[i].dp.partition, clean[i].dp.partition);
            EXPECT_EQ(points[i].res.cycles, 0u);
        } else {
            // Survivors are bit-identical to the clean run.
            expectSameCell(points[i], clean[i]);
        }
    }

    EXPECT_TRUE(report.degraded());
    EXPECT_EQ(report.chains, 12u);
    EXPECT_EQ(report.failed, 4u);
    ASSERT_EQ(report.failures.size(), 4u);
    std::set<std::size_t> reported;
    for (const auto &f : report.failures) {
        reported.insert(f.chain);
        EXPECT_EQ(f.code, ErrorCode::FaultInjected);
    }
    EXPECT_EQ(reported, killed);
    // Failures come sorted by chain index.
    EXPECT_EQ(report.failures.front().chain, 2u);
    EXPECT_EQ(report.failures.back().chain, 11u);
    EXPECT_NE(report.summary().find("4 failed"), std::string::npos);
    EXPECT_NE(report.summary().find("E9001 x 4"), std::string::npos);
}

TEST(SweepRobust, AbortPolicySurfacesFirstFailure)
{
    Simulator sim(kernels::makeKernel("RED"));
    FaultGuard guard("chain:3");
    auto outcome = runSweepChecked(sim, SweepConfig::quick());
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code(), ErrorCode::SweepChainFailed);
    EXPECT_NE(outcome.error().message().find("chain 2"),
              std::string::npos);
    EXPECT_NE(outcome.error().message().find("--on-error skip"),
              std::string::npos);
}

TEST(SweepRobust, SelectorsSkipFailedCells)
{
    // A failed cell has all-zero results; if the selectors didn't skip
    // it, its runtime 0 would win bestPerformance outright.
    Simulator sim(kernels::makeKernel("RED"));
    SweepConfig cfg = SweepConfig::quick();
    auto points = runSweep(sim, cfg);
    std::size_t honest_best = aladdin::bestPerformance(points);

    auto sabotaged = points;
    sabotaged[0].ok = false;
    sabotaged[0].res = aladdin::SimResult{};
    std::size_t best = aladdin::bestPerformance(sabotaged);
    EXPECT_NE(best, 0u);
    if (honest_best != 0)
        EXPECT_EQ(best, honest_best);
    EXPECT_NE(aladdin::bestEfficiency(sabotaged), 0u);
}

TEST(SweepRobust, SelectorsDieWhenEveryCellFailed)
{
    Simulator sim(kernels::makeKernel("RED"));
    auto points = runSweep(sim, SweepConfig::quick());
    for (auto &p : points)
        p.ok = false;
    EXPECT_EXIT(aladdin::bestPerformance(points),
                ::testing::ExitedWithCode(1), "every design point");
    EXPECT_EXIT(aladdin::bestEfficiencyUnderArea(points, 1e18),
                ::testing::ExitedWithCode(1), "budget");
}

// ---------------------------------------------------------------------
// Checkpoint / resume.
// ---------------------------------------------------------------------

/** Keep the header plus the first @p k complete chain blocks. */
std::string
keepBlocks(const std::string &ckpt, std::size_t k)
{
    std::istringstream iss(ckpt);
    std::string line, out;
    std::size_t ends = 0;
    while (std::getline(iss, line)) {
        out += line + "\n";
        if (line.rfind("end ", 0) == 0 && ++ends == k)
            break;
    }
    return out;
}

TEST(Checkpoint, FullResumeRestoresEverythingBitIdentical)
{
    Simulator sim(kernels::makeKernel("RED"));
    SweepConfig cfg = SweepConfig::quick();
    const std::string path = tmpPath("ckpt_full");

    SweepOptions write_opts;
    write_opts.checkpoint_path = path;
    auto first = runSweepChecked(sim, cfg, write_opts);
    ASSERT_TRUE(first.ok());

    SweepOptions resume_opts;
    resume_opts.checkpoint_path = path;
    resume_opts.resume = true;
    auto second = runSweepChecked(sim, cfg, resume_opts);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.value().report.restored, 12u);
    EXPECT_EQ(second.value().report.evaluated, 0u);
    ASSERT_EQ(second.value().points.size(), first.value().points.size());
    for (std::size_t i = 0; i < first.value().points.size(); ++i)
        expectSameCell(second.value().points[i], first.value().points[i]);
}

TEST(Checkpoint, PartialResumeCompletesBitIdentical)
{
    Simulator sim(kernels::makeKernel("RED"));
    SweepConfig cfg = SweepConfig::quick();
    auto clean = runSweep(sim, cfg);
    const std::string path = tmpPath("ckpt_partial");

    SweepOptions write_opts;
    write_opts.checkpoint_path = path;
    ASSERT_TRUE(runSweepChecked(sim, cfg, write_opts).ok());

    // Simulate a crash that only got 5 chain blocks onto disk.
    writeFile(path, keepBlocks(readFile(path), 5));

    SweepOptions resume_opts;
    resume_opts.checkpoint_path = path;
    resume_opts.resume = true;
    auto resumed = runSweepChecked(sim, cfg, resume_opts);
    ASSERT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.value().report.restored, 5u);
    EXPECT_EQ(resumed.value().report.evaluated, 7u);
    ASSERT_EQ(resumed.value().points.size(), clean.size());
    for (std::size_t i = 0; i < clean.size(); ++i)
        expectSameCell(resumed.value().points[i], clean[i]);
}

TEST(Checkpoint, TornTrailingBlockIsTolerated)
{
    Simulator sim(kernels::makeKernel("RED"));
    SweepConfig cfg = SweepConfig::quick();
    auto clean = runSweep(sim, cfg);
    const std::string path = tmpPath("ckpt_torn");

    SweepOptions write_opts;
    write_opts.checkpoint_path = path;
    ASSERT_TRUE(runSweepChecked(sim, cfg, write_opts).ok());

    // A block cut off mid-cell, as a real kill mid-write would leave.
    writeFile(path, keepBlocks(readFile(path), 3) +
                        "chain 9 ok\ncell 42 1.5");

    SweepOptions resume_opts;
    resume_opts.checkpoint_path = path;
    resume_opts.resume = true;
    auto resumed = runSweepChecked(sim, cfg, resume_opts);
    ASSERT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.value().report.restored, 3u);
    for (std::size_t i = 0; i < clean.size(); ++i)
        expectSameCell(resumed.value().points[i], clean[i]);
}

TEST(Checkpoint, FailedChainsPersistAcrossResume)
{
    Simulator sim(kernels::makeKernel("RED"));
    SweepConfig cfg = SweepConfig::quick();
    const std::string path = tmpPath("ckpt_failed");

    {
        FaultGuard guard("chain:3");
        SweepOptions opts;
        opts.on_error = OnError::Skip;
        opts.checkpoint_path = path;
        ASSERT_TRUE(runSweepChecked(sim, cfg, opts).ok());
    }

    // Injection is now disarmed, but the checkpoint remembers which
    // chains failed: the resume reports them without re-evaluating.
    SweepOptions resume_opts;
    resume_opts.on_error = OnError::Skip;
    resume_opts.checkpoint_path = path;
    resume_opts.resume = true;
    auto resumed = runSweepChecked(sim, cfg, resume_opts);
    ASSERT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.value().report.restored, 12u);
    EXPECT_EQ(resumed.value().report.failed, 4u);
    EXPECT_EQ(resumed.value().report.failures.front().code,
              ErrorCode::FaultInjected);
    const auto &points = resumed.value().points;
    const std::size_t n_part = cfg.partitions.size();
    for (std::size_t c : {2u, 5u, 8u, 11u}) {
        EXPECT_FALSE(points[c * n_part].ok);
        EXPECT_EQ(points[c * n_part].error_code,
                  ErrorCode::FaultInjected);
    }
}

TEST(Checkpoint, UnusableCheckpointsAreHardErrors)
{
    Simulator sim(kernels::makeKernel("RED"));
    SweepConfig cfg = SweepConfig::quick();

    SweepOptions opts;
    opts.resume = true;
    auto no_path = runSweepChecked(sim, cfg, opts);
    ASSERT_FALSE(no_path.ok());
    EXPECT_EQ(no_path.error().code(), ErrorCode::CheckpointIo);

    opts.checkpoint_path = tmpPath("ckpt_missing_nonexistent");
    auto missing = runSweepChecked(sim, cfg, opts);
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code(), ErrorCode::CheckpointIo);

    opts.checkpoint_path = tmpPath("ckpt_garbage");
    writeFile(opts.checkpoint_path, "not a checkpoint at all\n");
    auto garbage = runSweepChecked(sim, cfg, opts);
    ASSERT_FALSE(garbage.ok());
    EXPECT_EQ(garbage.error().code(), ErrorCode::CheckpointCorrupt);
}

TEST(Checkpoint, GridMismatchIsRejected)
{
    Simulator sim(kernels::makeKernel("RED"));
    SweepConfig cfg = SweepConfig::quick();
    const std::string path = tmpPath("ckpt_mismatch");

    SweepOptions write_opts;
    write_opts.checkpoint_path = path;
    ASSERT_TRUE(runSweepChecked(sim, cfg, write_opts).ok());

    SweepConfig other = cfg;
    other.nodes.push_back(32.0);
    SweepOptions resume_opts;
    resume_opts.checkpoint_path = path;
    resume_opts.resume = true;
    auto mismatch = runSweepChecked(sim, other, resume_opts);
    ASSERT_FALSE(mismatch.ok());
    EXPECT_EQ(mismatch.error().code(), ErrorCode::CheckpointMismatch);

    // Same shape but a different kernel must also be rejected.
    Simulator other_sim(kernels::makeKernel("ENT"));
    auto wrong_kernel = runSweepChecked(other_sim, cfg, resume_opts);
    ASSERT_FALSE(wrong_kernel.ok());
    EXPECT_EQ(wrong_kernel.error().code(), ErrorCode::CheckpointMismatch);
}

TEST(Checkpoint, KillSiteExitsWithCode3)
{
    Simulator sim(kernels::makeKernel("RED"));
    SweepConfig cfg = SweepConfig::quick();
    const std::string path = tmpPath("ckpt_kill");
    EXPECT_EXIT(
        {
            auto armed = FaultPlan::global().configure("sweep-kill:3");
            ASSERT_TRUE(armed.ok());
            SweepOptions opts;
            opts.checkpoint_path = path;
            opts.jobs = 1;
            runSweepChecked(sim, cfg, opts);
        },
        ::testing::ExitedWithCode(util::kFaultKillExitCode), "");

    // The file the killed child left behind resumes cleanly and the
    // result is bit-identical to an undisturbed run.
    auto clean = runSweep(sim, cfg);
    SweepOptions resume_opts;
    resume_opts.checkpoint_path = path;
    resume_opts.resume = true;
    auto resumed = runSweepChecked(sim, cfg, resume_opts);
    ASSERT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.value().report.restored, 3u);
    ASSERT_EQ(resumed.value().points.size(), clean.size());
    for (std::size_t i = 0; i < clean.size(); ++i)
        expectSameCell(resumed.value().points[i], clean[i]);
}

// ---------------------------------------------------------------------
// Thread-safe logging.
// ---------------------------------------------------------------------

TEST(Logging, ConcurrentWarnLinesNeverInterleave)
{
    const int threads = 8, lines = 50;
    ::testing::internal::CaptureStderr();
    {
        std::vector<std::thread> pool;
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([t] {
                for (int i = 0; i < lines; ++i)
                    warn("thread ", t, " line ", i,
                         " padding-padding-padding");
            });
        }
        for (auto &th : pool)
            th.join();
    }
    std::string captured = ::testing::internal::GetCapturedStderr();

    std::istringstream iss(captured);
    std::string line;
    std::size_t count = 0;
    while (std::getline(iss, line)) {
        ++count;
        // Every line is exactly one complete message.
        EXPECT_TRUE(line.rfind("warn: thread ", 0) == 0) << line;
        EXPECT_NE(line.find(" padding-padding-padding"),
                  std::string::npos)
            << line;
    }
    EXPECT_EQ(count, static_cast<std::size_t>(threads * lines));
}

} // namespace
} // namespace accelwall
