/**
 * @file
 * Integration tests spanning the whole stack: datasheet corpus →
 * regression → potential model → CSR → projection (the paper's
 * modeling pipeline end to end), and DFG → kernel → simulator → sweep
 * → attribution (the Section VI pipeline) on the same build.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "aladdin/attribution.hh"
#include "aladdin/simulator.hh"
#include "chipdb/budget.hh"
#include "chipdb/synth.hh"
#include "csr/csr.hh"
#include "kernels/kernels.hh"
#include "nn/conv_dfg.hh"
#include "nn/layers.hh"
#include "potential/model.hh"
#include "projection/projection.hh"
#include "studies/video.hh"
#include "tpu/tpu_model.hh"

namespace accelwall
{
namespace
{

/**
 * The full datasheet pipeline with a *refit* budget model: generate
 * the corpus, re-derive the area law, build a potential model from the
 * fitted coefficients, and verify the downstream CSR study barely
 * moves — the system is robust to refitting.
 */
TEST(Integration, RefitBudgetModelPreservesCsrStudy)
{
    auto corpus = chipdb::makeSynthCorpus();
    auto fit = chipdb::fitAreaModel(corpus);
    potential::PotentialModel refit(
        chipdb::BudgetModel(fit.coeff, fit.exponent));
    potential::PotentialModel canonical;

    auto chips = studies::videoChipGains(false);
    auto a = csr::csrSeries(chips, canonical, csr::Metric::Throughput);
    auto b = csr::csrSeries(chips, refit, csr::Metric::Throughput);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(b[i].csr, a[i].csr, 0.10 * a[i].csr) << a[i].name;
}

/**
 * Potential → CSR → projection consistency: a synthetic chip lineage
 * whose gains are exactly k x potential must project a wall of exactly
 * k x the limit potential under the linear model.
 */
TEST(Integration, LinearLineageProjectsExactly)
{
    potential::PotentialModel model;
    const double k = 3.0;

    using namespace units::literals;
    std::vector<csr::ChipGain> lineage;
    std::vector<double> nodes = {45.0, 28.0, 16.0, 10.0, 7.0};
    for (double node : nodes) {
        potential::ChipSpec spec{units::Nanometers{node}, 150.0_mm2,
                                 1.0_ghz, potential::kUncappedTdp};
        lineage.push_back(
            {"n" + std::to_string(static_cast<int>(node)), spec,
             k * model.throughput(spec).raw(), 2010.0});
    }

    units::TransistorGigahertz base =
        model.throughput(lineage.front().spec);
    std::vector<stats::Point2> points;
    for (const auto &chip : lineage)
        points.push_back(
            {model.throughput(chip.spec) / base, chip.gain});

    potential::ChipSpec wall{5.0_nm, 150.0_mm2, 1.0_ghz,
                             potential::kUncappedTdp};
    double phy_limit = model.throughput(wall) / base;
    auto proj = projection::projectFrontier(points, phy_limit);

    EXPECT_NEAR(proj.linear_limit, k * model.throughput(wall).raw(),
                1e-6 * proj.linear_limit);
    EXPECT_GT(proj.linear.r2, 0.999999);
}

/**
 * The Section VI pipeline over an nn:: layer: generate a conv-tile
 * DFG, sweep it, attribute gains — same machinery as the Table IV
 * kernels, different front end.
 */
TEST(Integration, ConvLayerThroughAladdin)
{
    const nn::Layer &conv3 = nn::alexnetLayers()[4];
    aladdin::Simulator sim(nn::makeLayerDfg(conv3, 2, 2, 4));
    auto attribution = aladdin::attribute(
        sim, aladdin::SweepConfig::quick(),
        aladdin::Target::EnergyEfficiency);
    EXPECT_GT(attribution.total_gain, 10.0);
    double sum = attribution.frac_cmos + attribution.frac_heterogeneity +
                 attribution.frac_partitioning +
                 attribution.frac_simplification;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

/**
 * Cross-model agreement: the TPU's simplification advantage (8b vs
 * 32b) and the aladdin datapath-narrowing advantage point the same
 * direction with comparable magnitude (quadratic multiplier scaling).
 */
TEST(Integration, SimplificationConsistentAcrossModels)
{
    // TPU side: energy ratio 32b/8b on a conv-heavy network.
    tpu::TpuConfig wide = tpu::TpuConfig::tpuV1();
    wide.operand_bits = 32;
    double tpu_ratio =
        tpu::TpuModel(wide).runModel(nn::vgg16Layers()).energy_mj /
        tpu::TpuModel(tpu::TpuConfig::tpuV1())
            .runModel(nn::vgg16Layers())
            .energy_mj;

    // Aladdin side: degree 13 (8-bit) vs degree 1 (32-bit) on GMM.
    aladdin::Simulator sim(kernels::makeGmm(8));
    aladdin::DesignPoint dp;
    dp.partition = 16;
    dp.simplification = 1;
    double e32 = sim.run(dp).dynamic_energy_pj;
    dp.simplification = 13;
    double e8 = sim.run(dp).dynamic_energy_pj;
    double aladdin_ratio = e32 / e8;

    EXPECT_GT(tpu_ratio, 2.0);
    EXPECT_GT(aladdin_ratio, 2.0);
    EXPECT_LT(std::fabs(std::log(tpu_ratio / aladdin_ratio)),
              std::log(4.0));
}

/**
 * The paper's central claim, end to end on our build: for the mature
 * video-decoder domain, most of the end-to-end gain is physical. The
 * geometric-mean CSR across the study stays within a small constant
 * while gains span nearly two orders of magnitude.
 */
TEST(Integration, PhysicsDominatesMatureDomains)
{
    potential::PotentialModel model;
    auto series = csr::csrSeries(studies::videoChipGains(false), model,
                                 csr::Metric::Throughput);
    double log_gain = 0.0, log_csr = 0.0;
    for (std::size_t i = 1; i < series.size(); ++i) {
        log_gain += std::log(series[i].rel_gain);
        log_csr += std::log(series[i].csr);
    }
    // Average CSR explains a small fraction of the average gain.
    EXPECT_LT(std::fabs(log_csr), 0.25 * log_gain);
}

} // namespace
} // namespace accelwall
