/**
 * @file
 * Tests for the roofline module.
 */

#include <gtest/gtest.h>

#include "roofline/roofline.hh"

namespace accelwall::roofline
{
namespace
{

Roofline
v1()
{
    return machineRoofline(tpu::TpuConfig::tpuV1());
}

TEST(Roofline, MachineParameters)
{
    Roofline roof = v1();
    EXPECT_NEAR(roof.peak_tops, 91.75, 0.5);
    EXPECT_DOUBLE_EQ(roof.bandwidth_gbs, 30.0);
    // Ridge: ~92 TOPS needs ~3058 op/B at 30 GB/s.
    EXPECT_NEAR(roof.ridge_intensity, 3058.0, 50.0);
}

TEST(Roofline, AttainableShape)
{
    Roofline roof = v1();
    // Memory-bound slope: attainable = I * BW.
    EXPECT_NEAR(roof.attainable(100.0), 100.0 * 30.0 / 1e3, 1e-9);
    // Past the ridge the roof is flat.
    EXPECT_NEAR(roof.attainable(1e6), roof.peak_tops, 1e-9);
    EXPECT_NEAR(roof.attainable(roof.ridge_intensity), roof.peak_tops,
                1e-6);
}

TEST(Roofline, RejectsBadIntensity)
{
    EXPECT_EXIT(v1().attainable(0.0), ::testing::ExitedWithCode(1),
                "positive");
}

TEST(Roofline, FcLayersMemoryBoundConvHighReuseNot)
{
    Roofline roof = v1();
    // FC: each weight used once -> intensity = 2 ops / byte.
    const nn::Layer &fc7 = nn::alexnetLayers()[9];
    Placement fc = placeLayer(roof, fc7, 8);
    EXPECT_EQ(fc.regime, Regime::MemoryBound);
    EXPECT_NEAR(fc.intensity, 2.0, 0.1);
    EXPECT_LT(fc.peak_fraction, 0.01);

    // VGG conv2_2: each weight reused 112x112 times.
    const nn::Layer &conv = nn::vgg16Layers()[4];
    Placement cv = placeLayer(roof, conv, 8);
    EXPECT_EQ(cv.regime, Regime::ComputeBound);
    EXPECT_NEAR(cv.peak_fraction, 1.0, 1e-9);
}

TEST(Roofline, VggMoreIntenseThanAlexNet)
{
    // VGG has ~20x the ops on ~2.3x the weights: higher aggregate
    // intensity, hence the better TPU utilization seen in Table I's
    // bench.
    Roofline roof = v1();
    Placement alex =
        placeModel(roof, "AlexNet", nn::alexnetLayers(), 8);
    Placement vgg = placeModel(roof, "VGG-16", nn::vgg16Layers(), 8);
    EXPECT_GT(vgg.intensity, 5.0 * alex.intensity);
    EXPECT_GT(vgg.attainable_tops, alex.attainable_tops);
}

TEST(Roofline, WiderOperandsLowerIntensity)
{
    Roofline roof = v1();
    Placement narrow =
        placeModel(roof, "a8", nn::alexnetLayers(), 8);
    Placement wide =
        placeModel(roof, "a32", nn::alexnetLayers(), 32);
    EXPECT_NEAR(narrow.intensity / wide.intensity, 4.0, 1e-6);
}

} // namespace
} // namespace accelwall::roofline
