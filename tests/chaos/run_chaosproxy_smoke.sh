#!/usr/bin/env bash
# Chaosproxy smoke (ctest "chaos" label): start accelwall-serve, put
# accelwall-chaosproxy in front of it with a hostile byte-level fault
# spec (premature FINs, corrupted status lines, truncated responses,
# dripped requests, split writes), and drive the resilient-client
# loadgen through the proxy with --tolerate retryable.
#
# Single-slot closed loop, so proxy connection serials march in request
# order: with periods {fin:6, corrupt:9, truncate:7} at most two
# consecutive connections are fatal (no n, n+1, n+2 are each divisible
# by 6, 7, or 9), so the default 4-attempt retry policy always
# converges and the default 5-failure breaker never opens. The proxy
# must report applied faults of every kind, and both daemons must
# drain cleanly on SIGTERM.
# Usage: run_chaosproxy_smoke.sh <serve-bin> <chaosproxy-bin> <loadgen-bin>
set -u

SERVE=$1
PROXY=$2
LOADGEN=$3
WORK=$(mktemp -d)
SRV_PID=""
PROXY_PID=""
cleanup() {
    [ -n "$PROXY_PID" ] && kill "$PROXY_PID" 2>/dev/null
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_port() {
    for _ in $(seq 1 100); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    return 1
}

"$SERVE" --port 0 --port-file "$WORK/serve.port" --workers 4 \
    > "$WORK/serve.log" 2>&1 &
SRV_PID=$!
if ! wait_port "$WORK/serve.port"; then
    echo "FAIL: server never wrote its port file"
    cat "$WORK/serve.log"
    exit 1
fi
SERVE_PORT=$(cat "$WORK/serve.port")

"$PROXY" --upstream-port "$SERVE_PORT" --port 0 \
    --port-file "$WORK/proxy.port" \
    --fault fin:6,corrupt:9,truncate:7,drip:4,delay:5 \
    > "$WORK/proxy.log" 2>&1 &
PROXY_PID=$!
if ! wait_port "$WORK/proxy.port"; then
    echo "FAIL: chaosproxy never wrote its port file"
    cat "$WORK/proxy.log"
    exit 1
fi
PROXY_PORT=$(cat "$WORK/proxy.port")

if ! "$LOADGEN" --port "$PROXY_PORT" --requests 120 --concurrency 1 \
    --tolerate retryable; then
    echo "FAIL: resilient loadgen did not converge through the chaos"
    cat "$WORK/proxy.log"
    cat "$WORK/serve.log"
    exit 1
fi

kill -TERM "$PROXY_PID"
wait "$PROXY_PID"
proxy_rc=$?
PROXY_PID=""
cat "$WORK/proxy.log"
if [ "$proxy_rc" -ne 0 ]; then
    echo "FAIL: chaosproxy exited $proxy_rc after SIGTERM"
    exit 1
fi
# Every fatal fault kind must actually have fired: 120 requests cover
# serials well past each period.
summary=$(grep 'chaosproxy drained:' "$WORK/proxy.log")
for kind in truncate corrupt fin delay drip; do
    if echo "$summary" | grep -qE "${kind}=0(,|$)"; then
        echo "FAIL: fault kind '$kind' never fired: $summary"
        exit 1
    fi
done

kill -TERM "$SRV_PID"
wait "$SRV_PID"
srv_rc=$?
SRV_PID=""
cat "$WORK/serve.log"
if [ "$srv_rc" -ne 0 ]; then
    echo "FAIL: server exited $srv_rc after SIGTERM (expected drain)"
    exit 1
fi
echo "PASS: 120 requests converged through the chaos proxy"
