/**
 * @file
 * The interface-drift lint domain: one synthetic-corpus case per I
 * rule, plus the shared plumbing (severity escalation, the raw-file
 * srccheck:allow grammar, the diagnostics cap, rule metadata). The
 * rules run against in-memory SourceFiles built with makeSourceFile,
 * so every case is hermetic — the on-disk repo is covered separately
 * by the lint_iface / lint_iface_broken ctest entries.
 *
 * Note on string literals here: the source domain's S003 scans this
 * file's raw text for Exxxx references, so synthetic codes that must
 * NOT exist in the real registry are split across adjacent literals
 * ("E90" "01" never appears as one run of text). Likewise the metric,
 * endpoint, and flag names use a zz_ prefix so this file's raw text
 * cannot satisfy a coverage scan for any real surface.
 */

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ifacecheck/check.hh"
#include "srccheck/scan.hh"

namespace accelwall::ifacecheck
{
namespace
{

Corpus
corpusOf(std::vector<std::pair<std::string, std::string>> files)
{
    Corpus c;
    c.root = "synthetic";
    for (auto &[path, text] : files)
        c.files.push_back(
            srccheck::makeSourceFile(std::move(path), std::move(text)));
    return c;
}

int
countRule(const Report &report, RuleId rule)
{
    int n = 0;
    for (const Diagnostic &d : report.diagnostics)
        n += d.rule == rule;
    return n;
}

// A metrics implementation whose exposition builder is healthy for
// the zz_up gauge; cases append their own drift on top.
const char *kHealthyMetrics =
    "const char *exposition =\n"
    "    \"# HELP accelwall_zz_up Server liveness.\\n\"\n"
    "    \"# TYPE accelwall_zz_up gauge\\n\"\n"
    "    \"accelwall_zz_up 1\\n\";\n";

// ---------------------------------------------------------------------
// Metrics: I001 / I002 / I010

TEST(MetricDocumented, FiresInBothDirections)
{
    Corpus c = corpusOf({
        { "src/serve/metrics.cc",
          std::string(kHealthyMetrics) +
              "const char *rogue =\n"
              "    \"# HELP accelwall_zz_rogue_total Sneaky.\\n\"\n"
              "    \"# TYPE accelwall_zz_rogue_total counter\\n\"\n"
              "    \"accelwall_zz_rogue_total 2\\n\";\n" },
        { "README.md",
          "the `/metrics` glossary:\n"
          "| metric | meaning |\n"
          "|---|---|\n"
          "| `zz_up` | liveness |\n"
          "| `zz_ghost_total` | documented, never emitted |\n" },
        { "tests/zz.cc",
          "// names accelwall_zz_up and accelwall_zz_rogue_total\n" },
    });
    Report r = check(c);
    EXPECT_TRUE(r.fired(RuleId::MetricDocumented));
    // One finding per direction: the emitted-but-undocumented rogue
    // series, and the documented-but-never-emitted ghost row.
    EXPECT_EQ(countRule(r, RuleId::MetricDocumented), 2);
    EXPECT_EQ(countRule(r, RuleId::MetricTested), 0);
}

TEST(MetricTested, WarnsByDefaultAndEscalatesUnderStrict)
{
    Corpus c = corpusOf({
        { "src/serve/metrics.cc", kHealthyMetrics },
        { "README.md",
          "the `/metrics` glossary:\n"
          "| metric | meaning |\n"
          "|---|---|\n"
          "| `zz_up` | liveness |\n" },
    });
    Report lax = check(c);
    EXPECT_TRUE(lax.fired(RuleId::MetricTested));
    EXPECT_TRUE(lax.ok()) << "I002 must be a warning by default";
    EXPECT_EQ(lax.num_warnings, 1u);

    Options strict;
    strict.warnings_as_errors = true;
    Report hard = check(c, strict);
    EXPECT_FALSE(hard.ok());
    EXPECT_EQ(hard.num_errors, 1u);
}

TEST(MetricHelpType, BareMiscountedAndGhostSeries)
{
    Corpus c = corpusOf({
        { "src/serve/metrics.cc",
          std::string(kHealthyMetrics) +
              "const char *drift =\n"
              "    \"accelwall_zz_bare 3\\n\"\n"
              "    \"# HELP accelwall_zz_mis Badly named.\\n\"\n"
              "    \"# TYPE accelwall_zz_mis counter\\n\"\n"
              "    \"accelwall_zz_mis 1\\n\"\n"
              "    \"# HELP accelwall_zz_ghost_total Unemitted.\\n\"\n"
              "    \"# TYPE accelwall_zz_ghost_total counter\\n\";\n" },
        { "tests/zz.cc",
          "// accelwall_zz_up accelwall_zz_bare accelwall_zz_mis\n" },
    });
    Report r = check(c);
    // zz_bare: no HELP + no TYPE (2); zz_mis: counter without _total
    // (1); zz_ghost_total: HELP and TYPE for an unemitted series (2).
    EXPECT_EQ(countRule(r, RuleId::MetricHelpType), 5);
}

TEST(MetricHelpType, HistogramSuffixesFoldToTheirBase)
{
    Corpus c = corpusOf({
        { "src/serve/metrics.cc",
          "const char *histo =\n"
          "    \"# HELP accelwall_zz_lat Latency.\\n\"\n"
          "    \"# TYPE accelwall_zz_lat histogram\\n\"\n"
          "    \"accelwall_zz_lat_bucket 1\\n\"\n"
          "    \"accelwall_zz_lat_sum 2\\n\"\n"
          "    \"accelwall_zz_lat_count 3\\n\";\n" },
        { "README.md",
          "the `/metrics` glossary:\n"
          "| metric | meaning |\n"
          "|---|---|\n"
          "| `zz_lat*` | latency histogram series |\n" },
        { "tests/zz.cc", "// asserts accelwall_zz_lat output\n" },
    });
    Report r = check(c);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_TRUE(r.diagnostics.empty());
}

// ---------------------------------------------------------------------
// Endpoints: I003

TEST(EndpointConsistency, AllFourArms)
{
    Corpus c = corpusOf({
        { "src/serve/metrics.cc",
          "const char *routes[] = { \"/zz/a\", \"/zz/unserved\" };\n" },
        { "src/serve/service.cc",
          "int d(const std::string &p) {\n"
          "    if (p == \"/zz/a\") return 0;\n"
          "    if (p == \"/zz/ghost\") return 1;\n"
          "    return -1;\n"
          "}\n" },
        { "README.md",
          "routes:\n"
          "| endpoint | meaning |\n"
          "|---|---|\n"
          "| `/zz/a` | healthy |\n"
          "| `/zz/unserved` | classified, not dispatched |\n"
          "| `/zz/doc-phantom` | documented only |\n" },
        { "tests/zz.cc", "// curls \"/zz/a\" only\n" },
    });
    Report r = check(c);
    // ghost: dispatched, never classified; unserved: classified,
    // never dispatched; doc-phantom: documented, neither; unserved
    // again: declared route no test exercises.
    EXPECT_EQ(countRule(r, RuleId::EndpointConsistency), 4);
}

// ---------------------------------------------------------------------
// CLI flags: I004 / I005

TEST(CliFlags, DocDriftBothWaysAndCoverageGap)
{
    Corpus c = corpusOf({
        { "tools/zz.cc",
          "int usage() {\n"
          "    err(\"usage: zz [--alpha N] [--ghost]\\n\");\n"
          "    return 2;\n"
          "}\n"
          "int main(int argc, char **argv) {\n"
          "    if (arg == \"--alpha\") {}\n"
          "    else if (arg == \"--beta\") {}\n"
          "    else if (arg == \"--version\") {}\n"
          "    return 0;\n"
          "}\n" },
        { "tests/CMakeLists.txt",
          "add_test(NAME zz COMMAND zz --alpha 1)\n" },
    });
    Report r = check(c);
    // I004: --beta parsed but undocumented, --ghost documented but
    // unparsed; --version is exempt (parsed centrally).
    EXPECT_EQ(countRule(r, RuleId::CliFlagDocumented), 2);
    // I005: --beta also lacks coverage; --alpha is exercised above.
    // (--version is likewise exempt from I004 but not from I005, and
    // every real tool has a cli_version ctest covering it.)
    EXPECT_TRUE(r.fired(RuleId::CliFlagExercised));
}

// ---------------------------------------------------------------------
// Env knobs: I006

TEST(EnvKnobs, UndocumentedAndNeverSetAreSeparateFindings)
{
    Corpus c = corpusOf({
        { "src/serve/knobs.cc",
          "bool f() {\n"
          "    const char *a = getenv(\"ACCELWALL_ZZ_DOC\");\n"
          "    const char *b = getenv(\"ACCELWALL_ZZ_SET\");\n"
          "    return a && b;\n"
          "}\n" },
        { "README.md", "Set ACCELWALL_ZZ_DOC to tune the fixture.\n" },
        { "tests/run.sh", "ACCELWALL_ZZ_SET=1 ./zz\n" },
    });
    Report r = check(c);
    // ZZ_DOC: documented, never set; ZZ_SET: set, never documented.
    EXPECT_EQ(countRule(r, RuleId::EnvKnobConsistency), 2);
}

// ---------------------------------------------------------------------
// Error-code docs: I007

TEST(ErrorDocs, WrongMappingAndUnregisteredCode)
{
    Corpus c = corpusOf({
        { "src/util/error.hh",
          "enum class ErrorCode\n"
          "{\n"
          "    ZzBad = 9000,\n"
          "    ZzConflict = 9001,\n"
          "};\n" },
        { "src/serve/service.cc",
          "int httpStatusFor(ErrorCode code) {\n"
          "    switch (code) {\n"
          "    case ErrorCode::ZzBad: return 400;\n"
          "    case ErrorCode::ZzConflict: return 409;\n"
          "    default: return 500;\n"
          "    }\n"
          "}\n" },
        { "README.md",
          "| code | HTTP | meaning |\n"
          "|---|---|---|\n"
          "| E90" "00 | 400 | healthy row |\n"
          "| E90" "01 | 404 | docs claim 404, code says 409 |\n"
          "| E99" "99 | 400 | not in the registry at all |\n" },
    });
    Report r = check(c);
    EXPECT_EQ(countRule(r, RuleId::ErrorDocMapping), 2);
}

// ---------------------------------------------------------------------
// ctest labels: I008

const char *kLabelledTests =
    "add_test(NAME a COMMAND a)\n"
    "set_tests_properties(a PROPERTIES LABELS \"zzgood;zzorphan\")\n";

TEST(CtestLabels, OrphanLabelIsNamed)
{
    Corpus c = corpusOf({
        { "tests/CMakeLists.txt", kLabelledTests },
        { "tools/ci_gate.sh",
          "run_ctest \"${prefix}\"\n"
          "run_ctest \"${prefix}\" \"zzgood\"\n" },
    });
    Report r = check(c);
    ASSERT_EQ(countRule(r, RuleId::CtestLabelGated), 1);
    for (const Diagnostic &d : r.diagnostics) {
        if (d.rule == RuleId::CtestLabelGated) {
            EXPECT_NE(d.message.find("zzorphan"), std::string::npos);
        }
    }
}

TEST(CtestLabels, RawAllowMarkerSuppresses)
{
    // Same corpus, but the CMake file disarms I008 with the raw-file
    // allow grammar: a marker line covers itself and the next line.
    Corpus c = corpusOf({
        { "tests/CMakeLists.txt",
          "add_test(NAME a COMMAND a)\n"
          "# srccheck:allow(I008) fixture-only label\n"
          "set_tests_properties(a PROPERTIES LABELS zzorphan)\n" },
        { "tools/ci_gate.sh", "run_ctest \"${prefix}\" \"zzgood\"\n" },
    });
    Report r = check(c);
    EXPECT_EQ(countRule(r, RuleId::CtestLabelGated), 0);
    EXPECT_TRUE(r.ok()) << r.summary();
}

// ---------------------------------------------------------------------
// Bench schema: I009

TEST(BenchSchema, UnpinnedKeyAndRogueTag)
{
    Corpus c = corpusOf({
        { "tools/accelwall_bench.cc",
          "void emit() {\n"
          "    key(\"zz_ms\");\n"
          "    key(\"zz_drift\");\n"
          "    tag(\"accelwall-bench-zz-v1\");\n"
          "    tag(\"accelwall-bench-zz-rogue\");\n"
          "}\n" },
        { "tests/golden/run_bench.cmake",
          "# pins zz_ms and the accelwall-bench-zz-v1 tag\n" },
    });
    Report r = check(c);
    EXPECT_EQ(countRule(r, RuleId::BenchSchemaKeys), 2);
}

// ---------------------------------------------------------------------
// Shared plumbing

TEST(Plumbing, DiagnosticsCapCountsButDropsBeyondMax)
{
    Corpus c = corpusOf({
        { "tests/CMakeLists.txt",
          "set_tests_properties(a PROPERTIES LABELS zzone)\n"
          "set_tests_properties(b PROPERTIES LABELS zztwo)\n" },
        { "tools/ci_gate.sh", "run_ctest \"${prefix}\" \"zzgood\"\n" },
    });
    Options opt;
    opt.max_diagnostics = 1;
    Report r = check(c, opt);
    EXPECT_EQ(r.diagnostics.size(), 1u);
    EXPECT_EQ(r.num_errors, 2u) << "counters must see capped findings";
    EXPECT_EQ(r.suppressed, 1u);
}

TEST(Plumbing, RuleMetadataTables)
{
    EXPECT_EQ(kNumRules, 10);
    EXPECT_STREQ(ruleCode(RuleId::MetricDocumented), "I001");
    EXPECT_STREQ(ruleCode(RuleId::MetricHelpType), "I010");
    EXPECT_STREQ(ruleName(RuleId::CliFlagDocumented),
                 "cli-flag-documented");
    EXPECT_EQ(defaultSeverity(RuleId::MetricTested), Severity::Warning);
    EXPECT_EQ(defaultSeverity(RuleId::CliFlagExercised),
              Severity::Warning);
    EXPECT_EQ(defaultSeverity(RuleId::ErrorDocMapping), Severity::Error);
    EXPECT_STREQ(severityName(Severity::Warning), "warning");
}

TEST(Plumbing, DiagnosticStrNamesFileLineAndRule)
{
    Corpus c = corpusOf({
        { "tests/CMakeLists.txt", kLabelledTests },
        { "tools/ci_gate.sh", "run_ctest \"${prefix}\" \"zzgood\"\n" },
    });
    Report r = check(c);
    ASSERT_FALSE(r.diagnostics.empty());
    std::string s = r.diagnostics[0].str();
    EXPECT_NE(s.find("tests/CMakeLists.txt:"), std::string::npos);
    EXPECT_NE(s.find("I008"), std::string::npos);
    EXPECT_NE(s.find("ctest-label-gated"), std::string::npos);
}

TEST(Plumbing, QuietCorpusReportsClean)
{
    // None of the anchor files exist: every extractor must notice its
    // surface is absent and stay silent rather than crash or invent
    // findings.
    Corpus c = corpusOf({
        { "src/cmos/model.cc", "int x = 1;\n" },
    });
    Report r = check(c);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_TRUE(r.diagnostics.empty());
}

} // namespace
} // namespace accelwall::ifacecheck
