/**
 * @file
 * Tests for the accelerator-wall projection machinery (Section VII):
 * the generic frontier projections and the four assembled domains.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "projection/domains.hh"
#include "projection/projection.hh"
#include "util/rng.hh"

namespace accelwall::projection
{
namespace
{

TEST(Projection, ExactLinearData)
{
    // gain = 2*phy + 1 exactly: the linear model must extrapolate it.
    std::vector<stats::Point2> pts;
    for (double x = 1.0; x <= 10.0; x += 1.0)
        pts.push_back({x, 2.0 * x + 1.0});
    ProjectionResult r = projectFrontier(pts, 100.0);
    EXPECT_NEAR(r.linear_limit, 201.0, 1e-6);
    EXPECT_NEAR(r.linear.r2, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(r.best_observed, 21.0);
    EXPECT_NEAR(r.linear_headroom, 201.0 / 21.0, 1e-6);
}

TEST(Projection, ExactLogData)
{
    std::vector<stats::Point2> pts;
    for (double x = 1.0; x <= 64.0; x *= 2.0)
        pts.push_back({x, 5.0 * std::log(x) + 2.0});
    ProjectionResult r = projectFrontier(pts, 1024.0);
    EXPECT_NEAR(r.log_limit, 5.0 * std::log(1024.0) + 2.0, 1e-6);
    EXPECT_NEAR(r.log.r2, 1.0, 1e-9);
}

TEST(Projection, LogIsMorePessimisticThanLinear)
{
    // On the same growing frontier, the sub-linear model always
    // projects a lower wall.
    std::vector<stats::Point2> pts;
    for (double x = 1.0; x <= 32.0; x *= 2.0)
        pts.push_back({x, 3.0 * x});
    ProjectionResult r = projectFrontier(pts, 1000.0);
    EXPECT_LT(r.log_limit, r.linear_limit);
}

TEST(Projection, DominatedPointsIgnored)
{
    std::vector<stats::Point2> pts = {
        {1.0, 1.0}, {2.0, 3.0}, {2.0, 0.5} /* dominated */, {4.0, 7.0},
    };
    ProjectionResult r = projectFrontier(pts, 10.0);
    EXPECT_EQ(r.frontier.size(), 3u);
}

TEST(Projection, LimitNeverBelowObserved)
{
    // A declining tail cannot project a wall below what already exists.
    std::vector<stats::Point2> pts = {
        {1.0, 10.0}, {2.0, 10.5}, {3.0, 10.6},
    };
    ProjectionResult r = projectFrontier(pts, 3.5);
    EXPECT_GE(r.log_limit, 10.6);
    EXPECT_GE(r.linear_limit, 10.6);
}

TEST(Projection, RejectsDegenerateInput)
{
    EXPECT_EXIT(projectFrontier({{1.0, 1.0}}, 10.0),
                ::testing::ExitedWithCode(1), "frontier");
    EXPECT_EXIT(projectFrontier({{1.0, 1.0}, {2.0, 2.0}}, -1.0),
                ::testing::ExitedWithCode(1), "positive");
}

TEST(Bootstrap, TightDataGivesTightBands)
{
    // Near-exact linear data: the bootstrap band hugs the point
    // estimate.
    std::vector<stats::Point2> pts;
    for (double x = 1.0; x <= 20.0; x += 1.0)
        pts.push_back({x, 3.0 * x + 0.001 * x * x});
    ProjectionResult point = projectFrontier(pts, 100.0);
    BootstrapResult boot = bootstrapProjection(pts, 100.0);

    EXPECT_GE(boot.usable, 150);
    EXPECT_LE(boot.linear_limit.lo, point.linear_limit);
    EXPECT_GE(boot.linear_limit.hi, point.linear_limit * 0.98);
    double band = boot.linear_limit.hi - boot.linear_limit.lo;
    EXPECT_LT(band, 0.2 * point.linear_limit);
}

TEST(Bootstrap, NoisyDataGivesWiderBands)
{
    std::vector<stats::Point2> tight, noisy;
    accelwall::Rng rng(5);
    for (double x = 1.0; x <= 20.0; x += 1.0) {
        tight.push_back({x, 3.0 * x});
        noisy.push_back({x, 3.0 * x * rng.lognoise(0.4)});
    }
    auto bt = bootstrapProjection(tight, 100.0);
    auto bn = bootstrapProjection(noisy, 100.0);
    double tight_band = bt.linear_limit.hi - bt.linear_limit.lo;
    double noisy_band = bn.linear_limit.hi - bn.linear_limit.lo;
    EXPECT_GT(noisy_band, 2.0 * tight_band);
}

TEST(Bootstrap, Deterministic)
{
    std::vector<stats::Point2> pts;
    for (double x = 1.0; x <= 12.0; x += 1.0)
        pts.push_back({x, 2.0 * x + 1.0});
    auto a = bootstrapProjection(pts, 50.0, 100, 42);
    auto b = bootstrapProjection(pts, 50.0, 100, 42);
    EXPECT_DOUBLE_EQ(a.linear_limit.lo, b.linear_limit.lo);
    EXPECT_DOUBLE_EQ(a.log_limit.hi, b.log_limit.hi);
}

TEST(Bootstrap, RejectsDegenerateInput)
{
    EXPECT_EXIT(bootstrapProjection({{1.0, 1.0}}, 10.0),
                ::testing::ExitedWithCode(1), "two points");
    std::vector<stats::Point2> pts = {{1.0, 1.0}, {2.0, 2.0}};
    EXPECT_EXIT(bootstrapProjection(pts, 10.0, 5),
                ::testing::ExitedWithCode(1), "resamples");
}

TEST(Domains, TableVParameters)
{
    const auto &table = domainTable();
    ASSERT_EQ(table.size(), 4u);
    const auto &video = domainParams(Domain::VideoDecoding);
    EXPECT_EQ(video.platform, "ASIC");
    EXPECT_DOUBLE_EQ(video.min_die_mm2.raw(), 1.68);
    EXPECT_DOUBLE_EQ(video.max_die_mm2.raw(), 16.0);
    EXPECT_DOUBLE_EQ(video.tdp_w.raw(), 7.0);
    EXPECT_DOUBLE_EQ(video.freq_mhz.raw(), 400.0);

    const auto &gpu = domainParams(Domain::GpuGraphics);
    EXPECT_DOUBLE_EQ(gpu.max_die_mm2.raw(), 815.0);
    EXPECT_DOUBLE_EQ(gpu.tdp_w.raw(), 345.0);

    const auto &fpga = domainParams(Domain::FpgaCnn);
    EXPECT_DOUBLE_EQ(fpga.tdp_w.raw(), 150.0);

    const auto &btc = domainParams(Domain::BitcoinMining);
    EXPECT_DOUBLE_EQ(btc.min_die_mm2.raw(), 11.1);
    EXPECT_DOUBLE_EQ(btc.freq_mhz.raw(), 1400.0);
}

/** Every domain/metric combination must assemble and project. */
class AllDomains : public ::testing::TestWithParam<
                       std::tuple<Domain, bool>>
{
};

TEST_P(AllDomains, AssemblesAndProjects)
{
    auto [domain, eff] = GetParam();
    DomainStudy study = projectDomain(domain, eff);
    EXPECT_GE(study.points.size(), 9u);
    EXPECT_GE(study.projection.frontier.size(), 2u);
    // The wall lies beyond every observed chip's potential.
    for (const auto &p : study.points)
        EXPECT_GT(study.projection.phy_limit, p.x);
    EXPECT_GT(study.projection.linear_limit, 0.0);
    EXPECT_GT(study.projection.log_limit, 0.0);
    EXPECT_GE(study.projection.linear_headroom, 1.0);
    EXPECT_GE(study.projection.log_headroom, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Fig15And16, AllDomains,
    ::testing::Combine(::testing::Values(Domain::VideoDecoding,
                                         Domain::GpuGraphics,
                                         Domain::FpgaCnn,
                                         Domain::BitcoinMining),
                       ::testing::Bool()));

TEST(Domains, PerformanceWallUsesLargestDie)
{
    // A larger die can only raise the throughput wall, so the
    // performance projection's physical limit must exceed what the
    // efficiency (smallest-die) spec would reach in throughput terms.
    DomainStudy perf = projectDomain(Domain::FpgaCnn, false);
    DomainStudy eff = projectDomain(Domain::FpgaCnn, true);
    EXPECT_GT(perf.projection.phy_limit, 1.0);
    EXPECT_GT(eff.projection.phy_limit, 1.0);
}

TEST(Domains, BitcoinHeadroomMatchesPaperBand)
{
    // Paper: "we project further improvements of 2-20x ... in
    // performance" for Bitcoin ASICs.
    DomainStudy perf = projectDomain(Domain::BitcoinMining, false);
    EXPECT_GT(perf.projection.linear_headroom, 2.0);
    EXPECT_LT(perf.projection.linear_headroom, 40.0);
    EXPECT_LT(perf.projection.log_headroom,
              perf.projection.linear_headroom);
}

TEST(Domains, EfficiencyHeadroomSmallerThanPerformance)
{
    // Section VII: "while performance has a promising trajectory for
    // most domains, energy efficiency is not projected to improve at
    // the same rate." The paper pairs the models with the spaces they
    // fit — "generally, the linear model fits the performance spaces,
    // and the logarithmic model fits the energy efficiency spaces" —
    // so the representative wall is linear for performance and log for
    // efficiency.
    for (Domain d : {Domain::VideoDecoding, Domain::GpuGraphics,
                     Domain::BitcoinMining}) {
        DomainStudy perf = projectDomain(d, false);
        DomainStudy eff = projectDomain(d, true);
        EXPECT_LT(eff.projection.log_headroom,
                  perf.projection.linear_headroom)
            << domainParams(d).name;
    }
}

} // namespace
} // namespace accelwall::projection
