/**
 * @file
 * Tests for the crypto substrate: SHA-256 against FIPS 180-4 / NIST
 * vectors, AES-128 against FIPS 197, and the mining-DFG structure
 * (including the ASICBoost saving).
 */

#include <gtest/gtest.h>

#include "crypto/aes.hh"
#include "crypto/sha256.hh"
#include "dfg/analysis.hh"
#include "kernels/btc.hh"
#include "kernels/kernels.hh"

namespace accelwall::crypto
{
namespace
{

TEST(Sha256Test, EmptyString)
{
    EXPECT_EQ(toHex(Sha256::hash("")),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc)
{
    EXPECT_EQ(toHex(Sha256::hash("abc")),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage)
{
    // NIST vector spanning a block boundary.
    EXPECT_EQ(toHex(Sha256::hash(
                  "abcdbcdecdefdefgefghfghighijhijk"
                  "ijkljklmklmnlmnomnopnopq")),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs)
{
    Sha256 h;
    std::vector<std::uint8_t> chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(chunk);
    EXPECT_EQ(toHex(h.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot)
{
    std::string msg = "The quick brown fox jumps over the lazy dog";
    Sha256 h;
    for (char c : msg)
        h.update(reinterpret_cast<const std::uint8_t *>(&c), 1);
    EXPECT_EQ(toHex(h.finish()), toHex(Sha256::hash(msg)));
}

TEST(Sha256Test, DoubleHash)
{
    // SHA256d("") = SHA256(SHA256("")).
    Sha256Digest inner = Sha256::hash("");
    std::uint8_t bytes[32];
    for (int i = 0; i < 8; ++i) {
        bytes[4 * i] = static_cast<std::uint8_t>(inner[i] >> 24);
        bytes[4 * i + 1] = static_cast<std::uint8_t>(inner[i] >> 16);
        bytes[4 * i + 2] = static_cast<std::uint8_t>(inner[i] >> 8);
        bytes[4 * i + 3] = static_cast<std::uint8_t>(inner[i]);
    }
    EXPECT_EQ(toHex(Sha256::doubleHash(nullptr, 0)),
              toHex(Sha256::hash(bytes, 32)));
}

TEST(Sha256Test, FinishTwiceDies)
{
    Sha256 h;
    h.finish();
    EXPECT_EXIT(h.finish(), ::testing::ExitedWithCode(1), "twice");
}

TEST(Sha256Test, MiningCountsLeadingZeros)
{
    std::array<std::uint8_t, 80> header{};
    // Different nonces give different difficulty; all are >= 0 and
    // deterministic.
    int z1 = mineLeadingZeroBits(header, 0);
    int z2 = mineLeadingZeroBits(header, 1);
    EXPECT_GE(z1, 0);
    EXPECT_GE(z2, 0);
    EXPECT_EQ(z1, mineLeadingZeroBits(header, 0));
    // Scanning a small nonce range finds some easy (>= 8-bit) share.
    int best = 0;
    for (std::uint32_t n = 0; n < 512; ++n)
        best = std::max(best, mineLeadingZeroBits(header, n));
    EXPECT_GE(best, 8);
}

TEST(Aes128Test, Fips197Vector)
{
    // FIPS-197 Appendix C.1 / B example.
    AesBlock key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    AesBlock plain = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                      0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
    AesBlock expected = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                         0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
    Aes128 aes(key);
    EXPECT_EQ(aes.encrypt(plain), expected);
}

TEST(Aes128Test, AllZeroVector)
{
    // NIST AESAVS known-answer: key=0, plaintext=0.
    AesBlock zero{};
    Aes128 aes(zero);
    AesBlock expected = {0x66, 0xe9, 0x4b, 0xd4, 0xef, 0x8a, 0x2c, 0x3b,
                         0x88, 0x4c, 0xfa, 0x59, 0xca, 0x34, 0x2b, 0x2e};
    EXPECT_EQ(aes.encrypt(zero), expected);
}

TEST(Aes128Test, SboxKnownEntries)
{
    const auto &s = Aes128::sbox();
    EXPECT_EQ(s[0x00], 0x63);
    EXPECT_EQ(s[0x01], 0x7c);
    EXPECT_EQ(s[0x53], 0xed);
    EXPECT_EQ(s[0xff], 0x16);
}

TEST(Aes128Test, XtimeMatchesGf256)
{
    EXPECT_EQ(Aes128::xtime(0x57), 0xae);
    EXPECT_EQ(Aes128::xtime(0xae), 0x47);
    EXPECT_EQ(Aes128::xtime(0x80), 0x1b);
}

TEST(BtcKernel, StructureFollowsSha256)
{
    dfg::Graph g = kernels::makeBtc(false);
    dfg::Analysis a = dfg::analyze(g);
    // Two compressions x 64 serial rounds: depth dominated by the
    // working-variable recurrence.
    EXPECT_GT(a.depth, 2u * 64u);
    // Each compression has 48 schedule expansions + 64 rounds of ~20
    // ops: thousands of nodes.
    EXPECT_GT(a.num_nodes, 4000u);
}

TEST(BtcKernel, AsicBoostSavesAboutTwentyPercent)
{
    // Section IV-E: "ASICBoost delivered a one-time 20% improvement".
    dfg::Graph plain = kernels::makeBtc(false);
    dfg::Graph boosted = kernels::makeBtc(true);
    auto compute = [](const dfg::Graph &g) {
        return static_cast<double>(g.countIf(dfg::isCompute));
    };
    double saving = 1.0 - compute(boosted) / compute(plain);
    EXPECT_GT(saving, 0.08);
    EXPECT_LT(saving, 0.30);
}

TEST(BtcKernel, RegistryExposesExtensions)
{
    EXPECT_GT(kernels::makeKernel("BTC").numNodes(), 4000u);
    EXPECT_LT(kernels::makeKernel("BTC-AB").countIf(dfg::isCompute),
              kernels::makeKernel("BTC").countIf(dfg::isCompute));
}

} // namespace
} // namespace accelwall::crypto
