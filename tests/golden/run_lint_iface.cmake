# Pin the `accelwall-lint --domain iface --format json` *schema* on
# the broken fixture corpus: top-level shape, per-unit keys, diagnostic
# keys, and — the real teeth — that every I001..I010 rule fires at
# least once. A drift extractor that silently stops matching fails
# here even though the real repo lints clean. Invoked by the
# golden_lint_iface_schema ctest entry with -DTOOL=<accelwall-lint>
# -DROOT=<fixture dir> -DOUT=<scratch.json>.
execute_process(
    COMMAND ${TOOL} --domain iface --source-root ${ROOT} --format json
    RESULT_VARIABLE rc
    OUTPUT_FILE ${OUT})
if (rc EQUAL 0)
    message(FATAL_ERROR
        "${TOOL} exited 0 on the broken corpus; expected a lint failure")
endif ()
file(READ ${OUT} doc)

# check_member(<json> <expected-type> <path...>): the member must exist
# and string(JSON ... TYPE) must report the expected type.
function(check_member doc expect)
    string(JSON actual ERROR_VARIABLE err TYPE "${doc}" ${ARGN})
    if (err)
        message(FATAL_ERROR "lint-iface json: missing ${ARGN}: ${err}")
    endif ()
    if (NOT actual STREQUAL expect)
        message(FATAL_ERROR
            "lint-iface json: ${ARGN} is ${actual}, expected ${expect}")
    endif ()
endfunction()

check_member("${doc}" ARRAY graphs)
check_member("${doc}" OBJECT summary)
foreach (key graphs errors warnings notes)
    check_member("${doc}" NUMBER summary ${key})
endforeach ()
# The per-domain rollup the CLI satellite added: with one domain run,
# exactly that domain appears.
check_member("${doc}" OBJECT summary domains)
check_member("${doc}" NUMBER summary domains iface errors)
check_member("${doc}" NUMBER summary domains iface warnings)

# Exactly one linted unit: the interface surface itself.
string(JSON n LENGTH "${doc}" graphs)
if (NOT n EQUAL 1)
    message(FATAL_ERROR "expected 1 linted unit, got ${n}")
endif ()
check_member("${doc}" STRING graphs 0 name)
check_member("${doc}" STRING graphs 0 phase)
foreach (key files lines errors warnings notes)
    check_member("${doc}" NUMBER graphs 0 ${key})
endforeach ()
check_member("${doc}" ARRAY graphs 0 diagnostics)
string(JSON phase GET "${doc}" graphs 0 phase)
if (NOT phase STREQUAL "iface")
    message(FATAL_ERROR "unit phase is '${phase}', expected 'iface'")
endif ()

# Every diagnostic carries rule/name/severity/file/message, located by
# file and (whenever one exists) line. Collect fired rule codes.
string(JSON diags LENGTH "${doc}" graphs 0 diagnostics)
if (diags EQUAL 0)
    message(FATAL_ERROR "broken corpus produced no diagnostics")
endif ()
set(fired "")
math(EXPR last "${diags} - 1")
foreach (i RANGE ${last})
    foreach (key rule name severity file message)
        check_member("${doc}" STRING graphs 0 diagnostics ${i} ${key})
    endforeach ()
    string(JSON has_line ERROR_VARIABLE no_line TYPE
        "${doc}" graphs 0 diagnostics ${i} line)
    if (NOT no_line AND NOT has_line STREQUAL "NUMBER")
        message(FATAL_ERROR
            "diagnostic ${i}: line is ${has_line}, expected NUMBER")
    endif ()
    string(JSON rule GET "${doc}" graphs 0 diagnostics ${i} rule)
    list(APPEND fired ${rule})
endforeach ()

# Coverage pin: the fixture corpus must trip every interface rule.
foreach (rule I001 I002 I003 I004 I005 I006 I007 I008 I009 I010)
    list(FIND fired ${rule} at)
    if (at EQUAL -1)
        message(FATAL_ERROR
            "rule ${rule} did not fire on the broken corpus")
    endif ()
endforeach ()
