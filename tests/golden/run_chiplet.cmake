# Run accelwall-sweep's chiplet axis and diff its CSV against the
# checked-in golden file — twice, at two job counts, pinning the
# sweep's determinism contract (bit-identical output for every --jobs
# value). Invoked by the golden_chiplet_csv ctest entry with
# -DTOOL=<binary> -DGOLDEN=<ref> -DOUT=<scratch>.
foreach (jobs 1 4)
    execute_process(
        COMMAND ${TOOL} --chiplets 1,2,4,8 --link-pj-per-bit 0.5
            --csv --jobs ${jobs}
        OUTPUT_FILE ${OUT}.jobs${jobs}
        RESULT_VARIABLE rc)
    if (NOT rc EQUAL 0)
        message(FATAL_ERROR
            "${TOOL} --chiplets failed with status ${rc} "
            "at --jobs ${jobs}")
    endif ()
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT}.jobs${jobs} ${GOLDEN}
        RESULT_VARIABLE diff)
    if (NOT diff EQUAL 0)
        message(FATAL_ERROR
            "chiplet CSV ${OUT}.jobs${jobs} differs from golden file "
            "${GOLDEN}; if the change is intentional, regenerate the "
            "golden file (see tests/CMakeLists.txt)")
    endif ()
endforeach ()
