# Pin the gate_summary.json schema written by tools/ci_gate.sh: run
# the gate in ACCELWALL_GATE_DRYRUN mode (every stage records SKIP
# without executing, so this takes milliseconds), then assert the
# summary shape — schema tag, overall verdict, and one record per
# stage carrying stage/status/seconds/log. Invoked by the
# golden_gate_summary_schema ctest entry with -DGATE=<ci_gate.sh>
# -DPREFIX=<scratch build prefix>.
set(ENV{ACCELWALL_GATE_DRYRUN} 1)
execute_process(
    COMMAND bash ${GATE} ${PREFIX}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if (NOT rc EQUAL 0)
    message(FATAL_ERROR "dryrun gate exited ${rc}; expected 0")
endif ()
file(READ ${PREFIX}-logs/gate_summary.json doc)

function(check_member doc expect)
    string(JSON actual ERROR_VARIABLE err TYPE "${doc}" ${ARGN})
    if (err)
        message(FATAL_ERROR "gate summary: missing ${ARGN}: ${err}")
    endif ()
    if (NOT actual STREQUAL expect)
        message(FATAL_ERROR
            "gate summary: ${ARGN} is ${actual}, expected ${expect}")
    endif ()
endfunction()

check_member("${doc}" STRING schema)
check_member("${doc}" BOOLEAN dryrun)
check_member("${doc}" STRING gate)
check_member("${doc}" ARRAY stages)
string(JSON schema GET "${doc}" schema)
if (NOT schema STREQUAL "accelwall-gate-summary-v1")
    message(FATAL_ERROR "schema tag is '${schema}'")
endif ()

string(JSON n LENGTH "${doc}" stages)
if (n LESS 10)
    message(FATAL_ERROR "only ${n} stages recorded; expected >= 10")
endif ()
set(stage_names "")
math(EXPR last "${n} - 1")
foreach (i RANGE ${last})
    check_member("${doc}" STRING stages ${i} stage)
    check_member("${doc}" STRING stages ${i} status)
    check_member("${doc}" NUMBER stages ${i} seconds)
    check_member("${doc}" STRING stages ${i} log)
    string(JSON status GET "${doc}" stages ${i} status)
    if (NOT status MATCHES "^(PASS|FAIL|SKIP)$")
        message(FATAL_ERROR "stage ${i} status is '${status}'")
    endif ()
    string(JSON name GET "${doc}" stages ${i} stage)
    list(APPEND stage_names "${name}")
endforeach ()

# The stages the rest of the repo depends on must exist by name: the
# label-gating stage the I008 lint rule points at, and the
# interface-drift lint stage this PR's tentpole added.
foreach (needle
        "ctest (lint|golden|cli_version)"
        "lint --strict (iface)")
    list(FIND stage_names "${needle}" at)
    if (at EQUAL -1)
        message(FATAL_ERROR
            "gate summary lacks stage '${needle}'; stages were: "
            "${stage_names}")
    endif ()
endforeach ()
