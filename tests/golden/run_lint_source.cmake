# Pin the `accelwall-lint --domain source --format json` *schema* on
# the broken fixture corpus: top-level shape, per-unit keys, diagnostic
# keys (including the file/line fields the source domain adds to
# DiagView), and — the real teeth — that every S001..S010 rule fires at
# least once. A rule that silently stops matching fails here even
# though the real repo lints clean. Invoked by the
# golden_lint_source_schema ctest entry with -DTOOL=<accelwall-lint>
# -DROOT=<fixture dir> -DOUT=<scratch.json>.
execute_process(
    COMMAND ${TOOL} --domain source --source-root ${ROOT} --format json
    RESULT_VARIABLE rc
    OUTPUT_FILE ${OUT})
if (rc EQUAL 0)
    message(FATAL_ERROR
        "${TOOL} exited 0 on the broken corpus; expected a lint failure")
endif ()
file(READ ${OUT} doc)

# check_member(<json> <expected-type> <path...>): the member must exist
# and string(JSON ... TYPE) must report the expected type.
function(check_member doc expect)
    string(JSON actual ERROR_VARIABLE err TYPE "${doc}" ${ARGN})
    if (err)
        message(FATAL_ERROR "lint-source json: missing ${ARGN}: ${err}")
    endif ()
    if (NOT actual STREQUAL expect)
        message(FATAL_ERROR
            "lint-source json: ${ARGN} is ${actual}, expected ${expect}")
    endif ()
endfunction()

check_member("${doc}" ARRAY graphs)
check_member("${doc}" OBJECT summary)
foreach (key graphs errors warnings notes)
    check_member("${doc}" NUMBER summary ${key})
endforeach ()

# Exactly one linted unit: the source corpus itself.
string(JSON n LENGTH "${doc}" graphs)
if (NOT n EQUAL 1)
    message(FATAL_ERROR "expected 1 linted unit, got ${n}")
endif ()
check_member("${doc}" STRING graphs 0 name)
check_member("${doc}" STRING graphs 0 phase)
foreach (key files lines errors warnings notes)
    check_member("${doc}" NUMBER graphs 0 ${key})
endforeach ()
check_member("${doc}" ARRAY graphs 0 diagnostics)
string(JSON phase GET "${doc}" graphs 0 phase)
if (NOT phase STREQUAL "source")
    message(FATAL_ERROR "unit phase is '${phase}', expected 'source'")
endif ()

# Every diagnostic carries rule/name/severity/file/message; the source
# domain locates findings by file, and by line whenever one exists.
# Collect the fired rule codes along the way.
string(JSON diags LENGTH "${doc}" graphs 0 diagnostics)
if (diags EQUAL 0)
    message(FATAL_ERROR "broken corpus produced no diagnostics")
endif ()
set(fired "")
math(EXPR last "${diags} - 1")
foreach (i RANGE ${last})
    foreach (key rule name severity file message)
        check_member("${doc}" STRING graphs 0 diagnostics ${i} ${key})
    endforeach ()
    string(JSON has_line ERROR_VARIABLE no_line TYPE
        "${doc}" graphs 0 diagnostics ${i} line)
    if (NOT no_line AND NOT has_line STREQUAL "NUMBER")
        message(FATAL_ERROR
            "diagnostic ${i}: line is ${has_line}, expected NUMBER")
    endif ()
    string(JSON rule GET "${doc}" graphs 0 diagnostics ${i} rule)
    list(APPEND fired ${rule})
    if (rule STREQUAL "S004")
        string(JSON msg GET "${doc}" graphs 0 diagnostics ${i} message)
        string(APPEND s004_messages "${msg}\n")
    endif ()
endforeach ()

# Coverage pin: the fixture corpus must trip every rule.
foreach (rule S001 S002 S003 S004 S005 S006 S007 S008 S009 S010)
    list(FIND fired ${rule} at)
    if (at EQUAL -1)
        message(FATAL_ERROR
            "rule ${rule} did not fire on the broken corpus")
    endif ()
endforeach ()

# S004 must cover the socket-layer site shapes the chaos layer added:
# a counted site checked in src/util/socket.cc but named by no test,
# and a registered socket site with no production check at all.
foreach (needle
        "\"send-reset\" is not exercised by any test"
        "\"recv-stall\" is never checked under src/")
    string(FIND "${s004_messages}" "${needle}" at)
    if (at EQUAL -1)
        message(FATAL_ERROR
            "S004 did not report: ${needle}\nS004 messages were:\n"
            "${s004_messages}")
    endif ()
endforeach ()
