# Run accelwall-sweep on the quick grid and diff its CSV against the
# checked-in golden file. Invoked by the golden_sweep_csv ctest entry
# with -DTOOL=<binary> -DKERNEL=<abbrev> -DGOLDEN=<ref> -DOUT=<scratch>.
#
# --jobs 4 makes the run exercise the parallel sweep path: the output
# must still match a golden file generated at any other job count.
execute_process(
    COMMAND ${TOOL} ${KERNEL} --grid quick --csv --jobs 4
    OUTPUT_FILE ${OUT}
    RESULT_VARIABLE rc)
if (NOT rc EQUAL 0)
    message(FATAL_ERROR "${TOOL} ${KERNEL} failed with status ${rc}")
endif ()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
    RESULT_VARIABLE diff)
if (NOT diff EQUAL 0)
    message(FATAL_ERROR
        "CSV output ${OUT} differs from golden file ${GOLDEN}; if the "
        "change is intentional, regenerate the golden file (see "
        "tests/CMakeLists.txt)")
endif ()
