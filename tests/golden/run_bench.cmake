# Pin the BENCH_sweep.json *schema* — keys, value types, and the
# repeat-count/array-length contract — so the perf-trajectory format
# cannot drift silently between commits. The numbers themselves are
# machine-dependent and deliberately unchecked. Invoked by the
# golden_bench_schema ctest entry with -DTOOL=<accelwall-bench>
# -DOUT=<scratch.json>; runs the real tool on the quick grid with the
# smallest repeat count that still exercises the median-of-N path.
set(repeat 2)
execute_process(
    COMMAND ${TOOL} --repeat ${repeat} --grid quick --only sweep
        --sweep-out ${OUT}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if (NOT rc EQUAL 0)
    message(FATAL_ERROR "${TOOL} failed with status ${rc}")
endif ()
file(READ ${OUT} doc)

# check_member(<json> <expected-type> <path...>): the member must exist
# and string(JSON ... TYPE) must report the expected type.
function(check_member doc expect)
    string(JSON actual ERROR_VARIABLE err TYPE "${doc}" ${ARGN})
    if (err)
        message(FATAL_ERROR "BENCH_sweep.json: missing ${ARGN}: ${err}")
    endif ()
    if (NOT actual STREQUAL expect)
        message(FATAL_ERROR
            "BENCH_sweep.json: ${ARGN} is ${actual}, expected ${expect}")
    endif ()
endfunction()

check_member("${doc}" STRING schema)
check_member("${doc}" STRING version)
check_member("${doc}" STRING grid)
check_member("${doc}" NUMBER repeat)
check_member("${doc}" NUMBER kernels)
check_member("${doc}" NUMBER cells_per_repeat)
check_member("${doc}" OBJECT engines)
check_member("${doc}" NUMBER speedup_soa_vs_legacy)
check_member("${doc}" NUMBER max_rss_kb)
foreach (engine soa legacy)
    check_member("${doc}" OBJECT engines ${engine})
    foreach (key median_wall_ms cells_per_sec p50_ms p95_ms p99_ms)
        check_member("${doc}" NUMBER engines ${engine} ${key})
    endforeach ()
    check_member("${doc}" ARRAY engines ${engine} repeats_wall_ms)
endforeach ()

string(JSON schema GET "${doc}" schema)
if (NOT schema STREQUAL "accelwall-bench-sweep-v1")
    message(FATAL_ERROR
        "schema tag is '${schema}'; bump this test with the format")
endif ()

# The repeat count must round-trip: the document's own `repeat` and the
# per-engine sample arrays must all agree with what we asked for.
string(JSON got_repeat GET "${doc}" repeat)
if (NOT got_repeat EQUAL repeat)
    message(FATAL_ERROR
        "repeat is ${got_repeat}, expected ${repeat}")
endif ()
foreach (engine soa legacy)
    string(JSON n LENGTH "${doc}" engines ${engine} repeats_wall_ms)
    if (NOT n EQUAL repeat)
        message(FATAL_ERROR
            "engines.${engine}.repeats_wall_ms has ${n} samples, "
            "expected ${repeat}")
    endif ()
endforeach ()
