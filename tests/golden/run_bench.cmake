# Pin the BENCH_sweep.json, BENCH_serve.json and BENCH_chiplet.json
# *schemas* — keys, value types, and the repeat-count/array-length
# contract — so the perf-trajectory format cannot drift silently
# between commits. The numbers themselves are machine-dependent and
# deliberately unchecked. Invoked by the golden_bench_schema ctest
# entry with -DTOOL=<accelwall-bench> -DOUT=<scratch.json>
# -DSERVE_OUT=<scratch2.json> -DCHIPLET_OUT=<scratch3.json>; runs the
# real tool on the quick grid with the smallest repeat count that
# still exercises the median-of-N path.
set(repeat 2)
execute_process(
    COMMAND ${TOOL} --repeat ${repeat} --grid quick --only sweep
        --sweep-out ${OUT}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if (NOT rc EQUAL 0)
    message(FATAL_ERROR "${TOOL} failed with status ${rc}")
endif ()
file(READ ${OUT} doc)

# check_member(<json> <expected-type> <path...>): the member must exist
# and string(JSON ... TYPE) must report the expected type.
function(check_member doc expect)
    string(JSON actual ERROR_VARIABLE err TYPE "${doc}" ${ARGN})
    if (err)
        message(FATAL_ERROR "BENCH_sweep.json: missing ${ARGN}: ${err}")
    endif ()
    if (NOT actual STREQUAL expect)
        message(FATAL_ERROR
            "BENCH_sweep.json: ${ARGN} is ${actual}, expected ${expect}")
    endif ()
endfunction()

check_member("${doc}" STRING schema)
check_member("${doc}" STRING version)
check_member("${doc}" STRING grid)
check_member("${doc}" NUMBER repeat)
check_member("${doc}" NUMBER kernels)
check_member("${doc}" NUMBER cells_per_repeat)
check_member("${doc}" OBJECT engines)
check_member("${doc}" NUMBER speedup_soa_vs_legacy)
check_member("${doc}" NUMBER max_rss_kb)
foreach (engine soa legacy)
    check_member("${doc}" OBJECT engines ${engine})
    foreach (key median_wall_ms cells_per_sec p50_ms p95_ms p99_ms)
        check_member("${doc}" NUMBER engines ${engine} ${key})
    endforeach ()
    check_member("${doc}" ARRAY engines ${engine} repeats_wall_ms)
endforeach ()

string(JSON schema GET "${doc}" schema)
if (NOT schema STREQUAL "accelwall-bench-sweep-v1")
    message(FATAL_ERROR
        "schema tag is '${schema}'; bump this test with the format")
endif ()

# The repeat count must round-trip: the document's own `repeat` and the
# per-engine sample arrays must all agree with what we asked for.
string(JSON got_repeat GET "${doc}" repeat)
if (NOT got_repeat EQUAL repeat)
    message(FATAL_ERROR
        "repeat is ${got_repeat}, expected ${repeat}")
endif ()
foreach (engine soa legacy)
    string(JSON n LENGTH "${doc}" engines ${engine} repeats_wall_ms)
    if (NOT n EQUAL repeat)
        message(FATAL_ERROR
            "engines.${engine}.repeats_wall_ms has ${n} samples, "
            "expected ${repeat}")
    endif ()
endforeach ()

# Serve trajectory: real sockets, two scenarios (clean + degraded
# under a pinned recv-short fault plan).
execute_process(
    COMMAND ${TOOL} --repeat ${repeat} --only serve
        --serve-out ${SERVE_OUT}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if (NOT rc EQUAL 0)
    message(FATAL_ERROR "${TOOL} --only serve failed with status ${rc}")
endif ()
file(READ ${SERVE_OUT} sdoc)

check_member("${sdoc}" STRING schema)
check_member("${sdoc}" STRING version)
check_member("${sdoc}" NUMBER repeat)
check_member("${sdoc}" NUMBER requests_per_repeat)
check_member("${sdoc}" OBJECT scenarios)
check_member("${sdoc}" NUMBER slowdown_degraded_vs_clean)
check_member("${sdoc}" NUMBER max_rss_kb)
foreach (scenario clean degraded)
    check_member("${sdoc}" OBJECT scenarios ${scenario})
    check_member("${sdoc}" STRING scenarios ${scenario} fault_spec)
    foreach (key median_wall_ms requests_per_sec p50_ms p95_ms p99_ms
            faults_injected)
        check_member("${sdoc}" NUMBER scenarios ${scenario} ${key})
    endforeach ()
    check_member("${sdoc}" ARRAY scenarios ${scenario} repeats_wall_ms)
    string(JSON n LENGTH "${sdoc}" scenarios ${scenario} repeats_wall_ms)
    if (NOT n EQUAL repeat)
        message(FATAL_ERROR
            "scenarios.${scenario}.repeats_wall_ms has ${n} samples, "
            "expected ${repeat}")
    endif ()
endforeach ()

string(JSON serve_schema GET "${sdoc}" schema)
if (NOT serve_schema STREQUAL "accelwall-bench-serve-v2")
    message(FATAL_ERROR
        "serve schema tag is '${serve_schema}'; bump this test with "
        "the format")
endif ()

# The degraded scenario's pinned plan must actually fire, and the
# clean baseline must stay fault-free.
string(JSON clean_faults GET "${sdoc}" scenarios clean faults_injected)
if (NOT clean_faults EQUAL 0)
    message(FATAL_ERROR
        "clean scenario reports ${clean_faults} injected faults")
endif ()
string(JSON degraded_spec GET "${sdoc}" scenarios degraded fault_spec)
if (NOT degraded_spec STREQUAL "recv-short:10")
    message(FATAL_ERROR
        "degraded fault_spec is '${degraded_spec}', expected "
        "'recv-short:10'")
endif ()
string(JSON degraded_faults GET
    "${sdoc}" scenarios degraded faults_injected)
if (degraded_faults EQUAL 0)
    message(FATAL_ERROR
        "degraded scenario injected no faults; the recv-short plan "
        "is not reaching the socket layer")
endif ()

# Chiplet trajectory: the yield/cost axis over the pinned K x node
# grid.
execute_process(
    COMMAND ${TOOL} --repeat ${repeat} --only chiplet
        --chiplet-out ${CHIPLET_OUT}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if (NOT rc EQUAL 0)
    message(FATAL_ERROR
        "${TOOL} --only chiplet failed with status ${rc}")
endif ()
file(READ ${CHIPLET_OUT} cdoc)

check_member("${cdoc}" STRING schema)
check_member("${cdoc}" STRING version)
check_member("${cdoc}" NUMBER repeat)
check_member("${cdoc}" NUMBER cells_per_repeat)
check_member("${cdoc}" OBJECT chiplet)
check_member("${cdoc}" NUMBER max_rss_kb)
foreach (key median_wall_ms cells_per_sec p50_ms p95_ms p99_ms)
    check_member("${cdoc}" NUMBER chiplet ${key})
endforeach ()
check_member("${cdoc}" ARRAY chiplet repeats_wall_ms)
string(JSON n LENGTH "${cdoc}" chiplet repeats_wall_ms)
if (NOT n EQUAL repeat)
    message(FATAL_ERROR
        "chiplet.repeats_wall_ms has ${n} samples, "
        "expected ${repeat}")
endif ()

string(JSON chiplet_schema GET "${cdoc}" schema)
if (NOT chiplet_schema STREQUAL "accelwall-bench-chiplet-v1")
    message(FATAL_ERROR
        "chiplet schema tag is '${chiplet_schema}'; bump this test "
        "with the format")
endif ()
