# Checkpoint/resume end-to-end: kill accelwall-sweep mid-run via the
# sweep-kill fault-injection site, resume from the checkpoint it left
# behind, and require the resumed CSV to be byte-identical to the
# golden file of an uninterrupted run. Invoked by the
# golden_sweep_resume ctest entry with -DTOOL= -DKERNEL= -DGOLDEN=
# -DOUT= -DCKPT=.

file(REMOVE ${CKPT})

# Phase 1: the sweep-kill site _Exit(3)s the process after the third
# completed chain hits the checkpoint. --jobs 1 keeps the counted site
# deterministic about *which* chains made it to disk.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ACCELWALL_FAULT=sweep-kill:3
        ${TOOL} ${KERNEL} --grid quick --csv --jobs 1
        --checkpoint ${CKPT}
    OUTPUT_QUIET
    ERROR_QUIET
    RESULT_VARIABLE rc)
if (NOT rc EQUAL 3)
    message(FATAL_ERROR
        "expected the injected kill to exit with code 3, got '${rc}'")
endif ()
if (NOT EXISTS ${CKPT})
    message(FATAL_ERROR "killed run left no checkpoint at ${CKPT}")
endif ()

# Phase 2: resume (no fault plan, parallel) and capture the CSV.
execute_process(
    COMMAND ${TOOL} ${KERNEL} --grid quick --csv --jobs 4
        --checkpoint ${CKPT} --resume
    OUTPUT_FILE ${OUT}
    RESULT_VARIABLE rc)
if (NOT rc EQUAL 0)
    message(FATAL_ERROR "resume run failed with status ${rc}")
endif ()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
    RESULT_VARIABLE diff)
if (NOT diff EQUAL 0)
    message(FATAL_ERROR
        "resumed CSV ${OUT} differs from the uninterrupted golden "
        "${GOLDEN}: checkpoint/resume broke bit-identity")
endif ()
