/**
 * @file
 * Tests for the TPU systolic-array model (Section V's Figure 10 /
 * Table I case study): peak throughput, layer behavior, the three
 * specialization concepts, and the ~80x CPU comparison.
 */

#include <gtest/gtest.h>

#include "nn/layers.hh"
#include "tpu/tpu_model.hh"

namespace accelwall::tpu
{
namespace
{

TEST(Tpu, PeakTopsMatchesTpuV1)
{
    // 256x256 MACs at 700 MHz: 92 TOPS (the TPU v1 headline).
    TpuModel tpu(TpuConfig::tpuV1());
    EXPECT_NEAR(tpu.peakTops(), 91.75, 0.5);
}

TEST(Tpu, HighReuseConvLayersComputeBound)
{
    // Convolutions reuse each weight across the feature map. Layers
    // with large maps (high reuse) are compute bound; the late,
    // weight-heavy small-map layers fall off the roofline into the
    // bandwidth-bound regime — just like the TPU paper's own roofline.
    TpuModel tpu(TpuConfig::tpuV1());
    bool saw_memory_bound_conv = false;
    for (const auto &layer : nn::vgg16Layers()) {
        if (layer.kind != nn::LayerKind::Conv)
            continue;
        LayerResult r = tpu.runLayer(layer);
        nn::LayerCost c = nn::layerCost(layer);
        double reuse = static_cast<double>(c.out_w) * c.out_h;
        if (reuse >= 3000.0) {
            EXPECT_FALSE(r.memory_bound) << layer.name;
        }
        saw_memory_bound_conv |= r.memory_bound;
        EXPECT_GT(r.utilization, 0.0);
        EXPECT_LE(r.utilization, 1.0);
    }
    EXPECT_TRUE(saw_memory_bound_conv);
}

TEST(Tpu, FcLayersMemoryBound)
{
    // FC layers touch each weight once: the DDR3 weight FIFO limits
    // them (the TPU paper's own observation).
    TpuModel tpu(TpuConfig::tpuV1());
    for (const auto &layer : nn::alexnetLayers()) {
        if (layer.kind != nn::LayerKind::FullyConnected)
            continue;
        LayerResult r = tpu.runLayer(layer);
        EXPECT_TRUE(r.memory_bound) << layer.name;
    }
}

TEST(Tpu, SmallerArrayIsSlower)
{
    TpuConfig small = TpuConfig::tpuV1();
    small.array_dim = 64;
    TpuModel big(TpuConfig::tpuV1()), little(small);
    ModelResult rb = big.runModel(nn::vgg16Layers());
    ModelResult rl = little.runModel(nn::vgg16Layers());
    EXPECT_LT(rb.time_ms, rl.time_ms);
}

TEST(Tpu, SimplificationConcept)
{
    // Widening the 8-bit datapath to 32 bits costs quadratic MAC
    // energy and 4x the weight traffic: efficiency collapses.
    TpuConfig wide = TpuConfig::tpuV1();
    wide.operand_bits = 32;
    TpuModel narrow(TpuConfig::tpuV1()), fat(wide);
    ModelResult rn = narrow.runModel(nn::alexnetLayers());
    ModelResult rf = fat.runModel(nn::alexnetLayers());
    EXPECT_GT(rn.tops_per_w, 3.0 * rf.tops_per_w);
}

TEST(Tpu, HeterogeneityConcept)
{
    // Without the on-chip activation unit every layer round-trips
    // activations over host I/O: slower and less efficient.
    TpuConfig no_act = TpuConfig::tpuV1();
    no_act.activation_unit = false;
    TpuModel with(TpuConfig::tpuV1()), without(no_act);
    ModelResult rw = with.runModel(nn::alexnetLayers());
    ModelResult ro = without.runModel(nn::alexnetLayers());
    EXPECT_LT(rw.time_ms, ro.time_ms);
    EXPECT_GT(rw.tops_per_w, ro.tops_per_w);
}

TEST(Tpu, EightyTimesCpuEfficiency)
{
    // Section V: "They demonstrated how TPUs improve the
    // energy-efficiency of deep neural network workloads by 80x
    // compared to CPUs."
    TpuModel tpu(TpuConfig::tpuV1());
    ModelResult t = tpu.runModel(nn::alexnetLayers());
    ModelResult c = runCpuBaseline(nn::alexnetLayers());
    double ratio = t.tops_per_w / c.tops_per_w;
    EXPECT_GT(ratio, 40.0);
    EXPECT_LT(ratio, 160.0);
}

TEST(Tpu, CpuBaselineThroughputSane)
{
    ModelResult c = runCpuBaseline(nn::alexnetLayers());
    // 2.6 GHz x 16 MAC/cycle = 41.6 GMAC/s = 0.083 TOPS.
    EXPECT_NEAR(c.tops, 0.0832, 0.001);
}

TEST(Tpu, RejectsBadConfig)
{
    TpuConfig bad = TpuConfig::tpuV1();
    bad.array_dim = 0;
    EXPECT_EXIT(TpuModel{bad}, ::testing::ExitedWithCode(1),
                "dimension");
    bad = TpuConfig::tpuV1();
    bad.operand_bits = 64;
    EXPECT_EXIT(TpuModel{bad}, ::testing::ExitedWithCode(1), "width");
}

} // namespace
} // namespace accelwall::tpu
