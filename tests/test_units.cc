/**
 * @file
 * The dimensional type system: arithmetic laws, conversion factors,
 * ratio collapse, and — via SFINAE probes — the negative space: the
 * unit mixups that must NOT compile. The probes turn "this expression
 * is ill-formed" into a static_assert, so a regression that quietly
 * legalizes adding nanometres to square millimetres fails this file's
 * build, not a review.
 */

#include <sstream>
#include <type_traits>
#include <utility>

#include <gtest/gtest.h>

#include "chipdb/budget.hh"
#include "potential/chip_spec.hh"
#include "util/units.hh"

using namespace accelwall;
using namespace accelwall::units;
using namespace accelwall::units::literals;

namespace
{

// ---------------------------------------------------------------------
// SFINAE probes: detect whether an operator expression is well-formed.
// ---------------------------------------------------------------------

template <typename A, typename B, typename = void>
struct CanAdd : std::false_type
{
};
template <typename A, typename B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type
{
};

template <typename A, typename B, typename = void>
struct CanSubtract : std::false_type
{
};
template <typename A, typename B>
struct CanSubtract<
    A, B, std::void_t<decltype(std::declval<A>() - std::declval<B>())>>
    : std::true_type
{
};

template <typename A, typename B, typename = void>
struct CanCompare : std::false_type
{
};
template <typename A, typename B>
struct CanCompare<
    A, B, std::void_t<decltype(std::declval<A>() < std::declval<B>())>>
    : std::true_type
{
};

// ---------------------------------------------------------------------
// Negative-compile harness. Each static_assert documents one forbidden
// expression; the build of this file IS the test.
// ---------------------------------------------------------------------

// Different dimensions never add, subtract, or compare.
static_assert(!CanAdd<Nanometers, SquareMillimeters>::value,
              "nm + mm2 must not compile");
static_assert(!CanSubtract<Watts, Joules>::value,
              "W - J must not compile (power is not energy)");
static_assert(!CanCompare<Watts, Joules>::value,
              "W < J must not compile");
static_assert(!CanCompare<Nanometers, Volts>::value,
              "nm < V must not compile");

// Same dimension at a different scale is still not the same unit:
// conversion must go through unit_cast, never implicitly.
static_assert(!CanAdd<Megahertz, Gigahertz>::value,
              "MHz + GHz must not compile without unit_cast");
static_assert(!CanCompare<Megahertz, Gigahertz>::value,
              "MHz < GHz must not compile without unit_cast");
static_assert(!CanAdd<Joules, Nanojoules>::value,
              "J + nJ must not compile without unit_cast");

// The double boundary is explicit in both directions.
static_assert(!std::is_convertible_v<double, Nanometers>,
              "a bare double must not silently become a quantity");
static_assert(!std::is_convertible_v<Nanometers, double>,
              "a quantity must not silently decay to double");
static_assert(!std::is_assignable_v<Nanometers &, double>,
              "assigning a raw double to a quantity must not compile");
static_assert(!CanAdd<Watts, double>::value,
              "W + double must not compile");

// The same expressions ARE legal with matching units — the probes
// themselves must not be trivially false.
static_assert(CanAdd<Nanometers, Nanometers>::value);
static_assert(CanCompare<Watts, Watts>::value);
static_assert(std::is_constructible_v<Nanometers, double>);

// ChipSpec's typed fields reject swapped constructor arguments.
static_assert(std::is_constructible_v<potential::ChipSpec, Nanometers,
                                      SquareMillimeters, Gigahertz,
                                      Watts>,
              "the correct ChipSpec field order must construct");
static_assert(!std::is_constructible_v<potential::ChipSpec,
                                       SquareMillimeters, Nanometers,
                                       Gigahertz, Watts>,
              "swapping node and area must not compile");
static_assert(!std::is_constructible_v<potential::ChipSpec, Nanometers,
                                       SquareMillimeters, Watts,
                                       Gigahertz>,
              "swapping frequency and TDP must not compile");
static_assert(!std::is_constructible_v<potential::ChipSpec, double,
                                       double, double, double>,
              "raw doubles must not construct a ChipSpec");

// Quantities stay zero-overhead and constexpr.
static_assert(sizeof(SquareMillimeters) == sizeof(double));
static_assert((2.0_nm + 3.0_nm).raw() == 5.0);
static_assert(Nanometers{45.0} == 45.0_nm);

// Ratio collapse is a type-level fact: like/like is double, while a
// dimensionless-but-scaled quotient stays a typed quantity.
static_assert(std::is_same_v<decltype(1.0_w / 1.0_w), double>);
static_assert(
    std::is_same_v<decltype((1.0_tx * 1.0_ghz) / (1.0_tx * 1.0_ghz)),
                   double>);
static_assert(!std::is_same_v<decltype(1.0_mm2 / (1.0_nm * 1.0_nm)),
                              double>,
              "the mm²/nm² density factor keeps its 1e12 scale");
static_assert(std::is_same_v<decltype(1.0_w / 1.0_ghz), Nanojoules>,
              "1 W at 1 GHz is 1 nJ per cycle");

TEST(Units, ArithmeticLaws)
{
    EXPECT_DOUBLE_EQ((10.0_nm + 35.0_nm).raw(), 45.0);
    EXPECT_DOUBLE_EQ((45.0_nm - 10.0_nm).raw(), 35.0);
    EXPECT_DOUBLE_EQ((-45.0_nm).raw(), -45.0);
    EXPECT_DOUBLE_EQ((3.0 * 100.0_w).raw(), 300.0);
    EXPECT_DOUBLE_EQ((100.0_w * 3.0).raw(), 300.0);
    EXPECT_DOUBLE_EQ((100.0_w / 4.0).raw(), 25.0);

    Watts w{10.0};
    w += Watts{5.0};
    EXPECT_DOUBLE_EQ(w.raw(), 15.0);
    w -= Watts{3.0};
    EXPECT_DOUBLE_EQ(w.raw(), 12.0);
    w *= 2.0;
    EXPECT_DOUBLE_EQ(w.raw(), 24.0);
    w /= 4.0;
    EXPECT_DOUBLE_EQ(w.raw(), 6.0);
}

TEST(Units, Comparisons)
{
    EXPECT_TRUE(5.0_nm < 7.0_nm);
    EXPECT_TRUE(7.0_nm > 5.0_nm);
    EXPECT_TRUE(5.0_nm <= 5.0_nm);
    EXPECT_TRUE(5.0_nm >= 5.0_nm);
    EXPECT_TRUE(5.0_nm == 5.0_nm);
    EXPECT_TRUE(5.0_nm != 6.0_nm);
}

TEST(Units, ConversionFactors)
{
    // MHz <-> GHz round trip.
    EXPECT_DOUBLE_EQ(unit_cast<Gigahertz>(2400.0_mhz).raw(), 2.4);
    EXPECT_DOUBLE_EQ(unit_cast<Megahertz>(Gigahertz{1.5}).raw(), 1500.0);

    // J <-> nJ.
    EXPECT_DOUBLE_EQ(unit_cast<Nanojoules>(1.0_j).raw(), 1e9);
    EXPECT_DOUBLE_EQ(unit_cast<Joules>(Nanojoules{2e9}).raw(), 2.0);

    // Identity cast is exact.
    EXPECT_DOUBLE_EQ(unit_cast<Watts>(Watts{7.5}).raw(), 7.5);
}

TEST(Units, RatioCollapse)
{
    // Like-for-like quotients are the plain gain ratios of Eq. 2.
    double gain = 900.0_w / 60.0_w;
    EXPECT_DOUBLE_EQ(gain, 15.0);

    TransistorGigahertz a = 4.0_tx * Gigahertz{2.0};
    TransistorGigahertz b = 2.0_tx * Gigahertz{2.0};
    EXPECT_DOUBLE_EQ(a / b, 2.0);
}

TEST(Units, DensityFactorKeepsScale)
{
    // D = area/node² in mm²/nm²: raw magnitudes divide directly in the
    // fit's calibration units (the residual 1e12 lives in the type).
    DensityFactor d =
        chipdb::BudgetModel::densityFactor(100.0_mm2, 10.0_nm);
    EXPECT_DOUBLE_EQ(d.raw(), 1.0);

    DensityFactor d2 =
        chipdb::BudgetModel::densityFactor(500.0_mm2, 10.0_nm);
    EXPECT_DOUBLE_EQ(d2.raw(), 5.0);
}

TEST(Units, DerivedUnitAlgebra)
{
    // throughput = transistors * frequency; efficiency = that per watt.
    TransistorGigahertz tput = TransistorCount{1e9} * Gigahertz{2.0};
    EXPECT_DOUBLE_EQ(tput.raw(), 2e9);

    TransistorGigahertzPerWatt eff = tput / 100.0_w;
    EXPECT_DOUBLE_EQ(eff.raw(), 2e7);

    // Power per transistor-GHz is an energy: 1 W per (tx*GHz) = 1 nJ.
    WattsPerTransistorGigahertz per = 100.0_w / tput;
    EXPECT_DOUBLE_EQ(per.raw(), 5e-8);

    // Multiplying back recovers the power.
    Watts back = per * tput;
    EXPECT_DOUBLE_EQ(back.raw(), 100.0);
}

TEST(Units, StreamsRawMagnitude)
{
    std::ostringstream oss;
    oss << 45.0_nm << " " << 1.5_ghz;
    EXPECT_EQ(oss.str(), "45 1.5");
}

} // namespace
