/**
 * @file
 * Unit tests for the util module: formatting, tables, CSV, RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/arena.hh"
#include "util/csv.hh"
#include "util/format.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace accelwall
{
namespace
{

TEST(Format, FixedDigits)
{
    EXPECT_EQ(fmtFixed(3.14159, 2), "3.14");
    EXPECT_EQ(fmtFixed(3.14159, 0), "3");
    EXPECT_EQ(fmtFixed(-1.5, 1), "-1.5");
}

TEST(Format, SiSuffixes)
{
    EXPECT_EQ(fmtSi(950.0), "950.0");
    EXPECT_EQ(fmtSi(16100.0), "16.1K");
    EXPECT_EQ(fmtSi(3.4e6), "3.4M");
    EXPECT_EQ(fmtSi(2.5e9), "2.5G");
    EXPECT_EQ(fmtSi(1.2e12), "1.2T");
}

TEST(Format, SiNegative)
{
    EXPECT_EQ(fmtSi(-16100.0), "-16.1K");
}

TEST(Format, Gain)
{
    EXPECT_EQ(fmtGain(307.42), "307.4x");
    EXPECT_EQ(fmtGain(1.0, 2), "1.00x");
}

TEST(Format, Node)
{
    EXPECT_EQ(fmtNode(45.0), "45nm");
    EXPECT_EQ(fmtNode(5.0), "5nm");
    EXPECT_EQ(fmtNode(6.5), "6.5nm");
}

TEST(Format, Percent)
{
    EXPECT_EQ(fmtPercent(0.42), "42.0%");
    EXPECT_EQ(fmtPercent(1.0), "100.0%");
}

TEST(Format, Padding)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcde", 4), "abcde");
}

TEST(Format, JsonEscapePassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("riscv-boom v2.0"), "riscv-boom v2.0");
    EXPECT_EQ(jsonEscape(""), "");
}

TEST(Format, JsonEscapeQuotesAndBackslashes)
{
    // A diagnostic quoting a Windows-style path and a nested quote:
    // exactly the shape that used to break `accelwall-lint --format
    // json` before escaping was centralized here.
    EXPECT_EQ(jsonEscape("bad chip \"K\\40\""),
              "bad chip \\\"K\\\\40\\\"");
    EXPECT_EQ(jsonEscape("\\"), "\\\\");
    EXPECT_EQ(jsonEscape("\""), "\\\"");
}

TEST(Format, JsonEscapeNamedControls)
{
    EXPECT_EQ(jsonEscape("a\nb\tc\rd\be\ff"),
              "a\\nb\\tc\\rd\\be\\ff");
}

TEST(Format, JsonEscapeBareControlBytes)
{
    EXPECT_EQ(jsonEscape(std::string("x\x01y", 3)), "x\\u0001y");
    EXPECT_EQ(jsonEscape(std::string("\x1f", 1)), "\\u001f");
    // Embedded NUL must survive as an escape, not truncate the string.
    EXPECT_EQ(jsonEscape(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(Format, JsonEscapeLeavesHighBytesAlone)
{
    // UTF-8 multibyte sequences (bytes >= 0x80) pass through verbatim;
    // JSON strings are UTF-8 and escaping them would corrupt them.
    EXPECT_EQ(jsonEscape("45nm\xc2\xb2"), "45nm\xc2\xb2");
}

TEST(Format, JsonEscapeOutputParsesAsJson)
{
    // The crafted worst case: every escape class in one message.
    std::string nasty = "say \"hi\"\\\n\tctl:\x02 done";
    std::string escaped = jsonEscape(nasty);
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    EXPECT_EQ(escaped.find('\t'), std::string::npos);
    EXPECT_EQ(escaped.find('\x02'), std::string::npos);
    // Every '"' inside must be preceded by a backslash.
    for (std::size_t i = 0; i < escaped.size(); ++i) {
        if (escaped[i] == '"') {
            ASSERT_GT(i, 0u);
            EXPECT_EQ(escaped[i - 1], '\\');
        }
    }
}

TEST(Table, AlignsColumns)
{
    Table t({"Chip", "Gain"});
    t.addRow({"ISSCC2006", "1.0x"});
    t.addRow({"A", "64.0x"});
    std::string s = t.str();
    EXPECT_NE(s.find("ISSCC2006  1.0x"), std::string::npos);
    EXPECT_NE(s.find("A          64.0x"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numCols(), 2u);
}

TEST(Table, RowArityMismatchDies)
{
    Table t({"a", "b"});
    EXPECT_EXIT(t.addRow({"only-one"}), ::testing::ExitedWithCode(1),
                "arity");
}

TEST(Csv, PlainRoundTrip)
{
    CsvWriter w({"x", "y"});
    w.addRow({"1", "2"});
    EXPECT_EQ(w.str(), "x,y\n1,2\n");
}

TEST(Csv, EscapesSpecials)
{
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
}

TEST(Csv, ParsePlain)
{
    auto rows = parseCsv("a,b,c\n1,2,3\n").value();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Csv, ParseQuotedCommasAndQuotes)
{
    auto rows = parseCsv("x,\"a,b\",\"say \"\"hi\"\"\"\n").value();
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_EQ(rows[0].size(), 3u);
    EXPECT_EQ(rows[0][1], "a,b");
    EXPECT_EQ(rows[0][2], "say \"hi\"");
}

TEST(Csv, ParseCrlfAndNoTrailingNewline)
{
    auto rows = parseCsv("a,b\r\n1,2").value();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1][1], "2");
}

TEST(Csv, ParseEmptyFields)
{
    auto rows = parseCsv("a,,c\n,,\n").value();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][1], "");
    EXPECT_EQ(rows[1].size(), 3u);
}

TEST(Csv, ParseRoundTripsWriter)
{
    CsvWriter w({"name", "note"});
    w.addRow({"chip,1", "said \"fast\""});
    auto rows = parseCsv(w.str()).value();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1][0], "chip,1");
    EXPECT_EQ(rows[1][1], "said \"fast\"");
}

TEST(Csv, ParseUnterminatedQuoteIsRecoverable)
{
    auto rows = parseCsv("a,\"oops\n");
    ASSERT_FALSE(rows.ok());
    EXPECT_EQ(rows.error().code(), ErrorCode::CsvUnterminatedQuote);
    EXPECT_NE(rows.error().message().find("unterminated"),
              std::string::npos);
    EXPECT_EQ(rows.error().line(), 1u);
    EXPECT_EQ(rows.error().column(), 3u);
}

TEST(Csv, ParseTruncatedQuotedFieldReportsOpeningQuote)
{
    // The file ends inside a quoted field that opened on line 2,
    // column 5: the error must point at the opening quote, not EOF.
    auto rows = parseCsv("a,b\n1,2,\"trunca");
    ASSERT_FALSE(rows.ok());
    EXPECT_EQ(rows.error().code(), ErrorCode::CsvUnterminatedQuote);
    EXPECT_EQ(rows.error().line(), 2u);
    EXPECT_EQ(rows.error().column(), 5u);
    EXPECT_NE(rows.error().str().find("E1001"), std::string::npos);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.nextU64() == b.nextU64())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(2.0, 5.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(9);
    std::set<int> seen;
    for (int i = 0; i < 500; ++i) {
        int v = rng.uniformInt(0, 4);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 4);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    double mean = sum / n;
    double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, LognoiseCentredMultiplicatively)
{
    Rng rng(17);
    double log_sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        log_sum += std::log(rng.lognoise(0.2));
    EXPECT_NEAR(log_sum / n, 0.0, 0.01);
}

// --- Arena property tests (the sweep engine's scratch allocator) -----

TEST(Arena, AlignmentHonoredUnderRandomSequences)
{
    Rng rng(101);
    util::Arena arena(256); // small first block to force growth
    const std::size_t aligns[] = {1, 2, 4, 8, 16, 32, 64};
    for (int i = 0; i < 2000; ++i) {
        std::size_t align = aligns[rng.uniformInt(0, 6)];
        std::size_t size =
            static_cast<std::size_t>(rng.uniformInt(0, 300));
        void *p = arena.allocBytes(size, align);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
    }
}

TEST(Arena, TypedAllocMatchesNaturalAlignment)
{
    util::Arena arena;
    arena.allocBytes(1, 1); // skew the cursor
    double *d = arena.alloc<double>(7);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double),
              0u);
    arena.allocBytes(3, 1);
    std::uint32_t *u = arena.alloc<std::uint32_t>(5);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u) %
                  alignof(std::uint32_t),
              0u);
}

TEST(Arena, NoOverlapUnderRandomAllocationSequences)
{
    // Every live allocation is filled with its own tag; if any two
    // overlapped, a later fill would corrupt an earlier allocation's
    // bytes and the final verification would see the wrong tag.
    Rng rng(202);
    util::Arena arena(128);
    for (int round = 0; round < 20; ++round) {
        std::vector<std::pair<std::uint8_t *, std::size_t>> live;
        int n = rng.uniformInt(1, 60);
        for (int i = 0; i < n; ++i) {
            std::size_t size =
                static_cast<std::size_t>(rng.uniformInt(1, 500));
            auto *p = static_cast<std::uint8_t *>(arena.allocBytes(
                size, std::size_t{1}
                          << static_cast<unsigned>(
                                 rng.uniformInt(0, 6))));
            std::memset(p, i & 0xff, size);
            live.emplace_back(p, size);
        }
        // Interval disjointness, the direct property...
        auto sorted = live;
        std::sort(sorted.begin(), sorted.end());
        for (std::size_t i = 1; i < sorted.size(); ++i) {
            EXPECT_GE(reinterpret_cast<std::uintptr_t>(sorted[i].first),
                      reinterpret_cast<std::uintptr_t>(
                          sorted[i - 1].first) +
                          sorted[i - 1].second);
        }
        // ...and the observable consequence: every tag survived.
        for (std::size_t i = 0; i < live.size(); ++i) {
            for (std::size_t b = 0; b < live[i].second; ++b)
                ASSERT_EQ(live[i].first[b], i & 0xff);
        }
        arena.reset();
    }
}

TEST(Arena, ResetRetainsCapacityAndStopsGrowth)
{
    util::Arena arena(256);
    auto churn = [&] {
        for (int i = 0; i < 100; ++i)
            arena.allocBytes(97, 8);
    };
    churn();
    std::size_t reserved = arena.bytesReserved();
    std::size_t blocks = arena.blocks();
    EXPECT_GT(arena.bytesAllocated(), 0u);
    for (int round = 0; round < 50; ++round) {
        arena.reset();
        EXPECT_EQ(arena.bytesAllocated(), 0u);
        churn();
        // An identical workload after reset() must never grow the
        // arena again: capacity is recycled, not leaked.
        EXPECT_EQ(arena.bytesReserved(), reserved);
        EXPECT_EQ(arena.blocks(), blocks);
    }
}

TEST(Arena, OversizedRequestGetsDedicatedBlock)
{
    util::Arena arena(64);
    auto *p = static_cast<std::uint8_t *>(
        arena.allocBytes(1 << 20, 64));
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xee, 1 << 20); // must all be writable
    EXPECT_GE(arena.bytesReserved(), std::size_t{1} << 20);
}

TEST(Arena, AsanPoisonRegression)
{
    // Regression case for the ASan poison bookkeeping: after reset()
    // the arena re-serves the same storage. Every byte handed back
    // out must be unpoisoned exactly (an off-by-one in the redzone
    // accounting makes this loop abort under -DACCELWALL_ASAN=ON),
    // and allocZeroed must find the memory writable and zero it.
    util::Arena arena(512);
    for (int round = 0; round < 8; ++round) {
        Rng rng(static_cast<std::uint64_t>(round) + 1);
        for (int i = 0; i < 64; ++i) {
            std::size_t size =
                static_cast<std::size_t>(rng.uniformInt(1, 200));
            auto *p = static_cast<std::uint8_t *>(
                arena.allocBytes(size, 8));
            for (std::size_t b = 0; b < size; ++b)
                p[b] = static_cast<std::uint8_t>(b);
            for (std::size_t b = 0; b < size; ++b)
                ASSERT_EQ(p[b], static_cast<std::uint8_t>(b));
        }
        double *z = arena.allocZeroed<double>(33);
        for (int i = 0; i < 33; ++i)
            EXPECT_EQ(z[i], 0.0);
        arena.reset();
    }
}

} // namespace
} // namespace accelwall
