/**
 * @file
 * Tests for the DFG verifier: every rule must fire on a graph built to
 * break exactly it, every registered kernel must verify clean, and
 * every dfgopt rewrite must preserve verification.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "chipdb/budget.hh"
#include "cmos/scaling.hh"
#include "dfg/verify.hh"
#include "dfgopt/rewrites.hh"
#include "kernels/builder.hh"
#include "kernels/kernels.hh"
#include "modelcheck/check.hh"
#include "util/units.hh"

namespace accelwall::dfg::verify
{
namespace
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;
using kernels::binary;
using kernels::loadArray;
using kernels::storeAll;
using kernels::unary;

/** The full registry the lint tool walks. */
std::vector<std::string>
allKernels()
{
    std::vector<std::string> names;
    for (const kernels::KernelInfo &info : kernels::kernelTable())
        names.push_back(info.abbrev);
    for (const char *ext : { "BTC", "BTC-AB", "IDCT", "ENT", "DFT" })
        names.emplace_back(ext);
    return names;
}

// ---------------------------------------------------------------------
// Rule metadata.

TEST(Rules, CodesAndNamesAreStable)
{
    EXPECT_STREQ(ruleCode(RuleId::Cycle), "V002");
    EXPECT_STREQ(ruleName(RuleId::Cycle), "cycle");
    EXPECT_STREQ(ruleCode(RuleId::ArityMismatch), "V006");
    EXPECT_STREQ(ruleCode(RuleId::BoundConsistency), "V014");
    EXPECT_STREQ(ruleCode(RuleId::RewriteAccounting), "R004");
    EXPECT_EQ(defaultSeverity(RuleId::DuplicateEdge), Severity::Note);
    EXPECT_EQ(defaultSeverity(RuleId::DeadNode), Severity::Warning);
    EXPECT_EQ(defaultSeverity(RuleId::Cycle), Severity::Error);
    // Every rule has a distinct code.
    std::set<std::string> codes;
    for (int i = 0; i < kNumRules; ++i)
        codes.insert(ruleCode(static_cast<RuleId>(i)));
    EXPECT_EQ(codes.size(), static_cast<std::size_t>(kNumRules));
}

// ---------------------------------------------------------------------
// Single-graph rules, each on a graph broken in exactly one way.

TEST(Verify, EmptyGraphIsAnError)
{
    Report r = verify(Graph("hollow"));
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::EmptyGraph));
}

TEST(Verify, CycleIsDetected)
{
    Graph g("loop");
    NodeId a = g.addNode(OpType::Add);
    NodeId b = g.addNode(OpType::Sub);
    g.addEdge(a, b);
    g.addEdge(b, a);
    Report r = verify(g);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::Cycle));
}

TEST(Verify, SelfEdgeIsACycle)
{
    RawGraph raw;
    raw.name = "self";
    raw.ops = { OpType::Load, OpType::Add, OpType::Store };
    raw.edges = { { 0, 1 }, { 1, 1 }, { 1, 2 } };
    Report r = verify(raw);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::Cycle));
}

TEST(Verify, DanglingEdgeOnlyExpressibleRaw)
{
    RawGraph raw;
    raw.name = "dangling";
    raw.ops = { OpType::Load, OpType::Store };
    raw.edges = { { 0, 1 }, { 0, 9 } };
    Report r = verify(raw);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::DanglingEdge));
    // The bad endpoint is reported on the edge.
    bool located = false;
    for (const Diagnostic &d : r.diagnostics) {
        if (d.rule == RuleId::DanglingEdge && d.edge &&
            d.edge->second == 9)
            located = true;
    }
    EXPECT_TRUE(located);
}

TEST(Verify, DuplicateEdgeIsANote)
{
    // x*x squaring is legal DFG structure (MDY and KNN rely on it);
    // the verifier points it out without failing.
    Graph g("square");
    NodeId x = g.addNode(OpType::Load);
    NodeId sq = binary(g, OpType::Mul, x, x);
    storeAll(g, {sq});
    Report r = verify(g);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::DuplicateEdge));
    EXPECT_EQ(r.num_notes, 1u);
}

TEST(Verify, ArityMismatchIsDetected)
{
    Graph g("fat-div");
    auto in = loadArray(g, 3);
    NodeId div = g.addNode(OpType::Div);
    for (NodeId p : in)
        g.addEdge(p, div);
    storeAll(g, {div});
    Report r = verify(g);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::ArityMismatch));
}

TEST(Verify, VariablePlacementIsDetected)
{
    // An Input with a predecessor is not an input.
    RawGraph raw;
    raw.name = "fed-input";
    raw.ops = { OpType::Load, OpType::Input, OpType::Store };
    raw.edges = { { 0, 1 }, { 1, 2 } };
    Report r = verify(raw);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::VariablePlacement));
}

TEST(Verify, TypeMismatchIsDetected)
{
    Graph g("mixed");
    auto in = loadArray(g, 2);
    NodeId sum = binary(g, OpType::Add, in[0], in[1]);
    NodeId fsum = binary(g, OpType::FAdd, sum, in[0]);
    storeAll(g, {fsum});
    Report r = verify(g);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::TypeMismatch));
}

TEST(Verify, WidthNarrowingIsDetected)
{
    Graph g("truncating");
    auto in = loadArray(g, 2); // kDefaultWidth = 32
    NodeId sum = g.addNode(OpType::Add, 8);
    g.addEdge(in[0], sum);
    g.addEdge(in[1], sum);
    storeAll(g, {sum});
    Report r = verify(g);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::WidthNarrowing));
}

TEST(Verify, WidthImbalanceIsAWarning)
{
    Graph g("lopsided");
    NodeId narrow = g.addNode(OpType::Load, 16);
    NodeId wide = g.addNode(OpType::Load, 32);
    NodeId sum = g.addNode(OpType::Add, 32);
    g.addEdge(narrow, sum);
    g.addEdge(wide, sum);
    storeAll(g, {sum});
    Report r = verify(g);
    EXPECT_TRUE(r.ok()); // warning, not error
    EXPECT_TRUE(r.fired(RuleId::WidthImbalance));
    EXPECT_EQ(r.num_warnings, 1u);

    Options strict;
    strict.warnings_as_errors = true;
    EXPECT_FALSE(verify(g, strict).ok());
}

TEST(Verify, FloatLoadAddressIsDetected)
{
    Graph g("float-index");
    auto in = loadArray(g, 2);
    NodeId addr = binary(g, OpType::FMul, in[0], in[1]);
    NodeId gather = unary(g, OpType::Load, addr);
    storeAll(g, {gather});
    Report r = verify(g);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::MemoryAddressing));
}

TEST(Verify, StoreWithConsumersIsDetected)
{
    RawGraph raw;
    raw.name = "chatty-store";
    raw.ops = { OpType::Load, OpType::Store, OpType::Add,
                OpType::Store };
    raw.edges = { { 0, 1 }, { 1, 2 }, { 0, 2 }, { 2, 3 } };
    Report r = verify(raw);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::MemoryAddressing));
}

TEST(Verify, UnreachableNodeIsDetected)
{
    // An Add fed only by another orphan Add: no path from any source.
    RawGraph raw;
    raw.name = "orphans";
    raw.ops = { OpType::Load, OpType::Store, OpType::Add, OpType::Sub,
                OpType::Store };
    raw.edges = { { 0, 1 }, { 2, 3 }, { 3, 4 } };
    Report r = verify(raw);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::UnreachableNode));
}

TEST(Verify, DeadNodeIsAWarning)
{
    Graph g("wasted");
    auto in = loadArray(g, 2);
    binary(g, OpType::Mul, in[0], in[1]); // never consumed
    NodeId sum = binary(g, OpType::Add, in[0], in[1]);
    storeAll(g, {sum});
    Report r = verify(g);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::DeadNode));
}

TEST(Verify, DiagnosticCapSuppressesButCounts)
{
    // 600 dead multiplies against a 4-diagnostic budget.
    Graph g("noisy");
    auto in = loadArray(g, 2);
    for (int i = 0; i < 600; ++i)
        binary(g, OpType::Mul, in[0], in[1]);
    NodeId sum = binary(g, OpType::Add, in[0], in[1]);
    storeAll(g, {sum});

    Options opts;
    opts.max_diagnostics = 4;
    Report r = verify(g, opts);
    // Counters see everything; only the diagnostic list is capped.
    EXPECT_EQ(r.diagnostics.size(), 4u);
    EXPECT_EQ(r.num_warnings, 600u);
    EXPECT_EQ(r.suppressed, 596u);
}

TEST(Verify, DiagnosticRenderingIsStructured)
{
    Graph g("loop");
    NodeId a = g.addNode(OpType::Add);
    NodeId b = g.addNode(OpType::Sub);
    g.addEdge(a, b);
    g.addEdge(b, a);
    Report r = verify(g);
    ASSERT_FALSE(r.diagnostics.empty());
    const Diagnostic &d = r.diagnostics.front();
    std::string line = d.str();
    EXPECT_NE(line.find("loop"), std::string::npos);
    EXPECT_NE(line.find(ruleCode(d.rule)), std::string::npos);
    EXPECT_NE(line.find(severityName(d.severity)), std::string::npos);
}

// ---------------------------------------------------------------------
// The registry: every kernel the paper evaluates verifies clean.

TEST(Registry, AllKernelsVerifyClean)
{
    for (const std::string &abbrev : allKernels()) {
        Report r = verify(kernels::makeKernel(abbrev));
        EXPECT_EQ(r.num_errors, 0u)
            << abbrev << ": " << r.summary()
            << (r.diagnostics.empty()
                    ? ""
                    : "\n  " + r.diagnostics.front().str());
        // Warnings too: dead nodes in a generator are modeling bugs
        // (BTC's round-63 'e' adder and ENT's final window were real
        // ones this rule caught).
        EXPECT_EQ(r.num_warnings, 0u) << abbrev << ": " << r.summary();
    }
}

TEST(Registry, Figure11ExampleVerifiesClean)
{
    Report r = verify(makeFigure11Example());
    EXPECT_EQ(r.num_errors, 0u) << r.summary();
    EXPECT_EQ(r.num_warnings, 0u) << r.summary();
}

TEST(Registry, BoundConsistencyRunsOnKernels)
{
    // V014 cross-checks dfg::analyze against concepts::bound; it must
    // participate (and pass) for real kernels, and be skippable.
    Graph g = kernels::makeKernel("RED");
    Report checked = verify(g);
    EXPECT_FALSE(checked.fired(RuleId::BoundConsistency));

    Options no_bounds;
    no_bounds.check_bounds = false;
    Report unchecked = verify(g, no_bounds);
    EXPECT_TRUE(unchecked.ok());
}

// ---------------------------------------------------------------------
// Rewrite preservation: verified graph in, verified graph out.

TEST(Rewrite, EveryRewritePreservesVerification)
{
    for (const std::string &abbrev : allKernels()) {
        Graph g = kernels::makeKernel(abbrev);

        dfgopt::RewriteStats cse;
        Report rc = verifyRewrite(
            g, dfgopt::eliminateCommonSubexpressions(g, &cse));
        EXPECT_EQ(rc.num_errors, 0u)
            << abbrev << "+cse: " << rc.summary();

        dfgopt::RewriteStats sr;
        Report rs = verifyRewrite(g, dfgopt::reduceStrength(g, &sr));
        EXPECT_EQ(rs.num_errors, 0u)
            << abbrev << "+sr: " << rs.summary();
    }
}

TEST(Rewrite, DroppedInputIsDetected)
{
    Graph before("pair");
    {
        auto in = loadArray(before, 2);
        storeAll(before, {binary(before, OpType::Add, in[0], in[1])});
    }
    Graph after("pair+opt");
    {
        NodeId only = after.addNode(OpType::Load);
        NodeId sum = unary(after, OpType::Add, only);
        storeAll(after, {sum});
    }
    Report r = verifyRewrite(before, after);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::RewriteInputs));
}

TEST(Rewrite, DroppedStoreIsDetected)
{
    Graph before("two-out");
    {
        auto in = loadArray(before, 2);
        storeAll(before, {binary(before, OpType::Add, in[0], in[1]),
                          binary(before, OpType::Sub, in[0], in[1])});
    }
    Graph after("two-out+opt");
    {
        auto in = loadArray(after, 2);
        storeAll(after, {binary(after, OpType::Add, in[0], in[1])});
    }
    Report r = verifyRewrite(before, after);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::RewriteSinks));
}

TEST(Rewrite, ShortenedCriticalPathIsDetected)
{
    // A mechanical rewrite may not beat the Θ(D) dependence bound.
    Graph before("chain");
    {
        auto in = loadArray(before, 2);
        NodeId x = binary(before, OpType::Add, in[0], in[1]);
        NodeId y = binary(before, OpType::Add, x, in[1]);
        storeAll(before, {y});
    }
    Graph after("chain+opt");
    {
        auto in = loadArray(after, 2);
        storeAll(after, {binary(after, OpType::Add, in[0], in[1])});
    }
    Report r = verifyRewrite(before, after);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.fired(RuleId::RewriteDepth));
}

// ---------------------------------------------------------------------
// The debug hook.

// Must run before any test calls setDebugVerify(): the knob is read
// from the environment exactly once, and gtest_discover_tests runs
// each TEST in its own process with ACCELWALL_VERIFY pinned, so the
// initial state here is the env-derived one.
TEST(DebugVerify, EnvKnobSetsTheInitialState)
{
    const char *env = std::getenv("ACCELWALL_VERIFY");
    if (env == nullptr)
        GTEST_SKIP() << "ACCELWALL_VERIFY not set for this process";
    EXPECT_EQ(debugVerifyEnabled(), std::string(env) != "0");
}

TEST(DebugVerify, PanicsOnBrokenGraphWhenEnabled)
{
    Graph g("loop");
    NodeId a = g.addNode(OpType::Add);
    NodeId b = g.addNode(OpType::Sub);
    g.addEdge(a, b);
    g.addEdge(b, a);

    setDebugVerify(true);
    EXPECT_TRUE(debugVerifyEnabled());
    EXPECT_DEATH(debugVerify(g, "test-site"), "cycle");

    setDebugVerify(false);
    EXPECT_FALSE(debugVerifyEnabled());
    debugVerify(g, "test-site"); // gated off: must not die
    setDebugVerify(true);
}

TEST(DebugVerify, PassesCleanGraphsSilently)
{
    setDebugVerify(true);
    debugVerify(kernels::makeKernel("RED"), "test-site");
}

// ---------------------------------------------------------------------
// The model lint domain (modelcheck, rules M001..M013): the shipped
// tables must audit clean, and each rule must fire on inputs corrupted
// to break exactly its invariant.
// ---------------------------------------------------------------------

namespace mc = accelwall::modelcheck;

using accelwall::units::Nanometers;
using accelwall::units::Volts;

TEST(ModelRules, CodesAndNamesAreStable)
{
    EXPECT_STREQ(mc::ruleCode(mc::RuleId::NodeOrder), "M001");
    EXPECT_STREQ(mc::ruleName(mc::RuleId::NodeOrder), "node-order");
    EXPECT_STREQ(mc::ruleCode(mc::RuleId::CorpusAudit), "M010");
    EXPECT_STREQ(mc::ruleName(mc::RuleId::CorpusAudit), "corpus-audit");
    EXPECT_STREQ(mc::ruleCode(mc::RuleId::ChipletWaferCostMonotonic),
                 "M011");
    EXPECT_STREQ(mc::ruleName(mc::RuleId::ChipletWaferCostMonotonic),
                 "chiplet-wafer-cost-monotonic");
    EXPECT_STREQ(mc::ruleCode(mc::RuleId::ChipletDefectMonotonic),
                 "M012");
    EXPECT_STREQ(mc::ruleName(mc::RuleId::ChipletDefectMonotonic),
                 "chiplet-defect-monotonic");
    EXPECT_STREQ(mc::ruleCode(mc::RuleId::ChipletYieldSanity), "M013");
    EXPECT_STREQ(mc::ruleName(mc::RuleId::ChipletYieldSanity),
                 "chiplet-yield-sanity");
    EXPECT_EQ(mc::defaultSeverity(mc::RuleId::NodeOrder),
              mc::Severity::Error);
}

TEST(ModelCheck, ShippedInputsAuditClean)
{
    mc::Report report = mc::check(mc::shippedInputs());
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.num_errors, 0u);

    // Clean even with warnings escalated (the lint_model ctest runs
    // --strict; a new warning in the shipped tables should fail here
    // too, not only in CI).
    mc::Options strict;
    strict.warnings_as_errors = true;
    EXPECT_TRUE(mc::check(mc::shippedInputs(), strict).ok());
}

TEST(ModelCheck, NodeOrderViolationFires)
{
    mc::Inputs in = mc::shippedInputs();
    std::swap(in.scaling[0], in.scaling[1]);
    mc::Report report = mc::check(in);
    EXPECT_TRUE(report.fired(mc::RuleId::NodeOrder));
    EXPECT_FALSE(report.ok());
}

TEST(ModelCheck, NegativeNodeFires)
{
    mc::Inputs in = mc::shippedInputs();
    in.scaling.back().node_nm = Nanometers{-5.0};
    EXPECT_TRUE(mc::check(in).fired(mc::RuleId::NodeOrder));
}

TEST(ModelCheck, VddBumpFires)
{
    // Supply voltage rising as devices shrink is a transposed row, not
    // physics.
    mc::Inputs in = mc::shippedInputs();
    in.scaling.back().vdd = Volts{5.0};
    mc::Report report = mc::check(in);
    EXPECT_TRUE(report.fired(mc::RuleId::VddMonotonic));
    EXPECT_FALSE(report.ok());
}

TEST(ModelCheck, GateDelayBumpFires)
{
    mc::Inputs in = mc::shippedInputs();
    in.scaling.back().gate_delay = 2.0;
    EXPECT_TRUE(mc::check(in).fired(mc::RuleId::DelayMonotonic));
}

TEST(ModelCheck, CapacitanceBumpFires)
{
    mc::Inputs in = mc::shippedInputs();
    in.scaling.back().capacitance = 2.0;
    EXPECT_TRUE(mc::check(in).fired(mc::RuleId::CapacitanceMonotonic));
}

TEST(ModelCheck, LeakageBumpFires)
{
    mc::Inputs in = mc::shippedInputs();
    in.scaling.back().leakage = 2.0;
    EXPECT_TRUE(mc::check(in).fired(mc::RuleId::LeakageMonotonic));
}

TEST(ModelCheck, DenormalizedBaselineFires)
{
    // The 45nm row anchors every relative factor; nudging its gate
    // delay off 1.0 breaks the paper's Figure 3a normalization.
    mc::Inputs in = mc::shippedInputs();
    for (cmos::NodeParams &row : in.scaling) {
        if (row.node_nm == Nanometers{45.0})
            row.gate_delay = 0.9;
    }
    mc::Report report = mc::check(in);
    EXPECT_TRUE(report.fired(mc::RuleId::BaselineNormalization));
    EXPECT_FALSE(report.ok());
}

TEST(ModelCheck, MissingBaselineFires)
{
    mc::Inputs in = mc::shippedInputs();
    std::erase_if(in.scaling, [](const cmos::NodeParams &row) {
        return row.node_nm == Nanometers{45.0};
    });
    EXPECT_TRUE(
        mc::check(in).fired(mc::RuleId::BaselineNormalization));
}

TEST(ModelCheck, OverlappingTdpGroupsFire)
{
    mc::Inputs in = mc::shippedInputs();
    in.budget = chipdb::BudgetModel{
        4.99e9, 0.877,
        { { Nanometers{5.0}, Nanometers{14.0}, 2.15, 0.402, "a" },
          { Nanometers{12.0}, Nanometers{22.0}, 0.49, 0.557, "b" } } };
    mc::Report report = mc::check(in);
    EXPECT_TRUE(report.fired(mc::RuleId::GroupCoverage));
}

TEST(ModelCheck, GroupProgressionRegressionFires)
{
    // An older group with a *larger* coefficient would claim pre-22nm
    // silicon converted TDP to throughput better than FinFETs do.
    mc::Inputs in = mc::shippedInputs();
    in.budget = chipdb::BudgetModel{
        4.99e9, 0.877,
        { { Nanometers{5.0}, Nanometers{10.0}, 2.15, 0.402, "a" },
          { Nanometers{12.0}, Nanometers{22.0}, 3.10, 0.557, "b" } } };
    EXPECT_TRUE(mc::check(in).fired(mc::RuleId::GroupProgression));
}

TEST(ModelCheck, OffLawAreaFitFires)
{
    // A 10x-low coefficient leaves every reference chip far off the
    // Figure 3b law.
    mc::Inputs in = mc::shippedInputs();
    in.budget = chipdb::BudgetModel{4.99e8, 0.877};
    mc::Report report = mc::check(in);
    EXPECT_TRUE(report.fired(mc::RuleId::AreaFitSanity));
    EXPECT_FALSE(report.ok());
}

TEST(ModelCheck, ImplausibleCorpusRecordFires)
{
    mc::Inputs in = mc::shippedInputs();
    ASSERT_FALSE(in.corpus.empty());
    in.corpus[0].area_mm2 *= 100.0;
    mc::Report report = mc::check(in);
    EXPECT_TRUE(report.fired(mc::RuleId::CorpusAudit));
    EXPECT_FALSE(report.ok());
}

TEST(ModelCheck, EmptyChipNameIsAWarningUntilEscalated)
{
    mc::Inputs in = mc::shippedInputs();
    ASSERT_FALSE(in.corpus.empty());
    in.corpus[0].name.clear();
    mc::Report report = mc::check(in);
    EXPECT_TRUE(report.fired(mc::RuleId::CorpusAudit));
    EXPECT_TRUE(report.ok()) << "a missing name alone must not fail";
    EXPECT_GE(report.num_warnings, 1u);

    mc::Options strict;
    strict.warnings_as_errors = true;
    EXPECT_FALSE(mc::check(in, strict).ok());
}

TEST(ModelCheck, DiagnosticCapSuppressesButCounts)
{
    mc::Inputs in = mc::shippedInputs();
    std::swap(in.scaling[0], in.scaling[1]);
    in.scaling.back().vdd = Volts{5.0};
    mc::Options opts;
    opts.max_diagnostics = 1;
    mc::Report report = mc::check(in, opts);
    EXPECT_EQ(report.diagnostics.size(), 1u);
    EXPECT_GE(report.suppressed, 1u);
    EXPECT_GE(report.num_errors, 2u)
        << "counters must keep counting past the cap";
}

TEST(ModelCheck, DiagnosticRenderingIsStructured)
{
    mc::Inputs in = mc::shippedInputs();
    in.scaling.back().vdd = Volts{5.0};
    mc::Report report = mc::check(in);
    ASSERT_FALSE(report.diagnostics.empty());
    const mc::Diagnostic &diag = report.diagnostics.front();
    std::string line = diag.str();
    EXPECT_NE(line.find(mc::ruleCode(diag.rule)), std::string::npos);
    EXPECT_NE(line.find(diag.subject), std::string::npos);
}

TEST(ModelCheck, ChipletWaferCostRegressionFires)
{
    // A shrink that got *cheaper* per wafer would make the crossover
    // study trivially favor the newest node; the table forbids it.
    mc::Inputs in = mc::shippedInputs();
    ASSERT_GE(in.chiplet_costs.nodes.size(), 2u);
    in.chiplet_costs.nodes.back().wafer_usd = units::Usd{1.0};
    mc::Report report = mc::check(in);
    EXPECT_TRUE(
        report.fired(mc::RuleId::ChipletWaferCostMonotonic));
    EXPECT_FALSE(report.ok());
}

TEST(ModelCheck, ChipletNodeOrderViolationFires)
{
    mc::Inputs in = mc::shippedInputs();
    ASSERT_GE(in.chiplet_costs.nodes.size(), 2u);
    std::swap(in.chiplet_costs.nodes[0], in.chiplet_costs.nodes[1]);
    EXPECT_TRUE(mc::check(in).fired(
        mc::RuleId::ChipletWaferCostMonotonic));
}

TEST(ModelCheck, ChipletDefectRegressionFires)
{
    // Defect density falling at a shrink contradicts the model's
    // yield-pressure story (and real fab learning curves).
    mc::Inputs in = mc::shippedInputs();
    ASSERT_GE(in.chiplet_costs.nodes.size(), 2u);
    in.chiplet_costs.nodes.back().defect_d0 =
        units::DefectsPerSquareMillimeter{1e-6};
    mc::Report report = mc::check(in);
    EXPECT_TRUE(report.fired(mc::RuleId::ChipletDefectMonotonic));
    EXPECT_FALSE(report.ok());
}

TEST(ModelCheck, ChipletAbsurdDefectDensityFires)
{
    mc::Inputs in = mc::shippedInputs();
    ASSERT_FALSE(in.chiplet_costs.nodes.empty());
    in.chiplet_costs.nodes[0].defect_d0 =
        units::DefectsPerSquareMillimeter{50.0};
    EXPECT_TRUE(
        mc::check(in).fired(mc::RuleId::ChipletDefectMonotonic));
}

TEST(ModelCheck, ChipletBadClusteringParameterFires)
{
    mc::Inputs in = mc::shippedInputs();
    in.chiplet_costs.alpha = -3.0;
    mc::Report report = mc::check(in);
    EXPECT_TRUE(report.fired(mc::RuleId::ChipletYieldSanity));
    EXPECT_FALSE(report.ok());
}

TEST(ModelCheck, ChipletBadTestYieldFires)
{
    mc::Inputs in = mc::shippedInputs();
    in.chiplet_costs.packaging.test_yield = 1.2;
    EXPECT_TRUE(mc::check(in).fired(mc::RuleId::ChipletYieldSanity));
}

TEST(ModelCheck, EmptyChipletTableStaysSilent)
{
    // The chiplet table is optional: inputs predating the subsystem
    // (or stripped-down fixtures) must not trip M011..M013.
    mc::Inputs in = mc::shippedInputs();
    in.chiplet_costs = chiplet::CostTable{};
    in.chiplet_costs.nodes.clear();
    mc::Report report = mc::check(in);
    EXPECT_FALSE(report.fired(mc::RuleId::ChipletWaferCostMonotonic));
    EXPECT_FALSE(report.fired(mc::RuleId::ChipletDefectMonotonic));
    EXPECT_FALSE(report.fired(mc::RuleId::ChipletYieldSanity));
}

TEST(ModelCheck, BrokenShowcaseCoversEveryRule)
{
    mc::Report merged;
    for (const mc::Inputs &in : mc::brokenShowcaseInputs())
        merged.merge(mc::check(in));
    EXPECT_FALSE(merged.ok());
    for (int i = 0; i < mc::kNumRules; ++i) {
        auto rule = static_cast<mc::RuleId>(i);
        EXPECT_TRUE(merged.fired(rule))
            << "showcase never fires " << mc::ruleCode(rule);
    }
}

} // namespace
} // namespace accelwall::dfg::verify
