/**
 * @file
 * Unit tests for the CMOS potential model (Section III, Figure 3d),
 * including the paper's headline anchors and monotonicity properties.
 */

#include <gtest/gtest.h>

#include "potential/chip_spec.hh"
#include "potential/model.hh"

namespace accelwall::potential
{
namespace
{

/** The paper's Fig. 3d normalization chip: 25mm², 45nm, 1GHz. */
ChipSpec
baseline()
{
    return ChipSpec{45.0, 25.0, 1.0, kUncappedTdp};
}

TEST(Potential, SelfGainIsUnity)
{
    PotentialModel m;
    ChipSpec ref = baseline();
    EXPECT_DOUBLE_EQ(m.throughputGain(ref, ref), 1.0);
    EXPECT_DOUBLE_EQ(m.efficiencyGain(ref, ref), 1.0);
    EXPECT_DOUBLE_EQ(m.areaThroughputGain(ref, ref), 1.0);
}

TEST(Potential, Figure3dUncappedAnchor)
{
    // 800mm² 5nm at 1GHz, unconstrained: ~1000x the baseline.
    PotentialModel m;
    ChipSpec big{5.0, 800.0, 1.0, kUncappedTdp};
    double gain = m.throughputGain(big, baseline());
    EXPECT_GT(gain, 900.0);
    EXPECT_LT(gain, 1100.0);
}

TEST(Potential, Figure3dTdpCapAnchor)
{
    // Same chip under an 800W envelope: drops by ~70% to ~300x.
    PotentialModel m;
    ChipSpec capped{5.0, 800.0, 1.0, 800.0};
    ChipSpec uncapped{5.0, 800.0, 1.0, kUncappedTdp};
    double gain = m.throughputGain(capped, baseline());
    EXPECT_GT(gain, 250.0);
    EXPECT_LT(gain, 350.0);

    double drop = 1.0 - m.throughput(capped) / m.throughput(uncapped);
    EXPECT_NEAR(drop, 0.70, 0.05);
}

TEST(Potential, ActiveTransistorsIsMinOfBudgets)
{
    PotentialModel m;
    ChipSpec spec{5.0, 800.0, 1.0, 800.0};
    EXPECT_DOUBLE_EQ(m.activeTransistors(spec),
                     std::min(m.areaTransistors(spec),
                              m.tdpTransistors(spec)));
    EXPECT_LT(m.tdpTransistors(spec), m.areaTransistors(spec));
}

TEST(Potential, PowerCappedAtTdp)
{
    PotentialModel m;
    ChipSpec spec{5.0, 800.0, 1.0, 800.0};
    EXPECT_LE(m.power(spec), 800.0 + 1e-9);

    // A small unconstrained chip dissipates below any sane envelope.
    ChipSpec small = baseline();
    EXPECT_LT(m.power(small), 50.0);
    EXPECT_GT(m.power(small), 1.0);
}

TEST(Potential, SmallChipsFavorEfficiency)
{
    // Paper: "As expected, small chips are favorable for energy
    // efficiency." Under the same power envelope, a large die pays the
    // leakage of all its transistors while only a fraction may switch.
    PotentialModel m;
    ChipSpec small{5.0, 25.0, 1.0, 150.0};
    ChipSpec large{5.0, 800.0, 1.0, 150.0};
    EXPECT_GT(m.energyEfficiency(small), m.energyEfficiency(large));
}

TEST(Potential, LeakageCanConsumeEntireEnvelope)
{
    // An 800mm² 5nm die leaks more than 100W: under a 100W envelope no
    // switching budget remains and throughput collapses to zero.
    PotentialModel m;
    ChipSpec starved{5.0, 800.0, 1.0, 100.0};
    EXPECT_DOUBLE_EQ(m.activeTransistors(starved), 0.0);
    EXPECT_DOUBLE_EQ(m.throughput(starved), 0.0);
    EXPECT_GT(m.power(starved), 0.0); // it still leaks
}

TEST(Potential, EfficiencyImprovesWithNode)
{
    PotentialModel m;
    ChipSpec ref = baseline();
    double prev = m.energyEfficiency(ref);
    for (double node : {32.0, 22.0, 14.0, 10.0, 7.0, 5.0}) {
        ChipSpec spec{node, 25.0, 1.0, kUncappedTdp};
        double eff = m.energyEfficiency(spec);
        EXPECT_GT(eff, prev) << "at " << node << "nm";
        prev = eff;
    }
}

/** Monotonicity sweep over die areas: more area, more throughput. */
class PotentialAreaMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(PotentialAreaMonotone, ThroughputRisesWithArea)
{
    PotentialModel m;
    double node = GetParam();
    double prev = 0.0;
    for (double area : {25.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
        ChipSpec spec{node, area, 1.0, kUncappedTdp};
        double thr = m.throughput(spec);
        EXPECT_GT(thr, prev) << "at area " << area;
        prev = thr;
    }
}

INSTANTIATE_TEST_SUITE_P(PaperNodes, PotentialAreaMonotone,
                         ::testing::Values(45.0, 28.0, 16.0, 10.0, 7.0,
                                           5.0));

/** Monotonicity sweep over TDP: a looser envelope never hurts. */
class PotentialTdpMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(PotentialTdpMonotone, ThroughputRisesWithTdp)
{
    PotentialModel m;
    double node = GetParam();
    double prev = 0.0;
    for (double tdp : {25.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
        ChipSpec spec{node, 800.0, 1.0, tdp};
        double thr = m.throughput(spec);
        EXPECT_GE(thr, prev) << "at TDP " << tdp;
        prev = thr;
    }
}

INSTANTIATE_TEST_SUITE_P(PaperNodes, PotentialTdpMonotone,
                         ::testing::Values(45.0, 28.0, 16.0, 10.0, 7.0,
                                           5.0));

TEST(Potential, OldNodesAppealUnderTightTdpForLargeChips)
{
    // Paper: "As chips get larger, the high transistor count and static
    // power of new CMOS nodes make old nodes more appealing under a
    // restricted TDP" — in efficiency terms. Under a tight envelope the
    // efficiency advantage of 5nm over 16nm shrinks versus unconstrained.
    PotentialModel m;
    ChipSpec new_unc{5.0, 800.0, 1.0, kUncappedTdp};
    ChipSpec old_unc{16.0, 800.0, 1.0, kUncappedTdp};
    ChipSpec new_cap{5.0, 800.0, 1.0, 200.0};
    ChipSpec old_cap{16.0, 800.0, 1.0, 200.0};
    double adv_unc =
        m.energyEfficiency(new_unc) / m.energyEfficiency(old_unc);
    double adv_cap =
        m.energyEfficiency(new_cap) / m.energyEfficiency(old_cap);
    EXPECT_LT(adv_cap, adv_unc);
}

TEST(Potential, AreaThroughputNormalizes)
{
    PotentialModel m;
    ChipSpec spec{16.0, 100.0, 1.0, kUncappedTdp};
    EXPECT_DOUBLE_EQ(m.areaThroughput(spec),
                     m.throughput(spec) / 100.0);
}

TEST(Potential, RejectsNonPositiveFrequency)
{
    PotentialModel m;
    ChipSpec bad{45.0, 25.0, 0.0, 100.0};
    EXPECT_EXIT(m.tdpTransistors(bad), ::testing::ExitedWithCode(1),
                "frequency");
}

} // namespace
} // namespace accelwall::potential
