/**
 * @file
 * Unit tests for the CMOS potential model (Section III, Figure 3d),
 * including the paper's headline anchors and monotonicity properties.
 */

#include <gtest/gtest.h>

#include "potential/chip_spec.hh"
#include "potential/model.hh"

namespace accelwall::potential
{
namespace
{

using namespace units::literals;
using units::Gigahertz;
using units::Nanometers;
using units::SquareMillimeters;
using units::Watts;

/** Shorthand for building dimensioned specs from plain magnitudes. */
ChipSpec
spec(double node_nm, double area_mm2, double freq_ghz, Watts tdp)
{
    return ChipSpec{Nanometers{node_nm}, SquareMillimeters{area_mm2},
                    Gigahertz{freq_ghz}, tdp};
}

/** The paper's Fig. 3d normalization chip: 25mm², 45nm, 1GHz. */
ChipSpec
baseline()
{
    return spec(45.0, 25.0, 1.0, kUncappedTdp);
}

TEST(Potential, SelfGainIsUnity)
{
    PotentialModel m;
    ChipSpec ref = baseline();
    EXPECT_DOUBLE_EQ(m.throughputGain(ref, ref), 1.0);
    EXPECT_DOUBLE_EQ(m.efficiencyGain(ref, ref), 1.0);
    EXPECT_DOUBLE_EQ(m.areaThroughputGain(ref, ref), 1.0);
}

TEST(Potential, Figure3dUncappedAnchor)
{
    // 800mm² 5nm at 1GHz, unconstrained: ~1000x the baseline.
    PotentialModel m;
    ChipSpec big = spec(5.0, 800.0, 1.0, kUncappedTdp);
    double gain = m.throughputGain(big, baseline());
    EXPECT_GT(gain, 900.0);
    EXPECT_LT(gain, 1100.0);
}

TEST(Potential, Figure3dTdpCapAnchor)
{
    // Same chip under an 800W envelope: drops by ~70% to ~300x.
    PotentialModel m;
    ChipSpec capped = spec(5.0, 800.0, 1.0, 800.0_w);
    ChipSpec uncapped = spec(5.0, 800.0, 1.0, kUncappedTdp);
    double gain = m.throughputGain(capped, baseline());
    EXPECT_GT(gain, 250.0);
    EXPECT_LT(gain, 350.0);

    double drop = 1.0 - m.throughput(capped) / m.throughput(uncapped);
    EXPECT_NEAR(drop, 0.70, 0.05);
}

TEST(Potential, ActiveTransistorsIsMinOfBudgets)
{
    PotentialModel m;
    ChipSpec s = spec(5.0, 800.0, 1.0, 800.0_w);
    EXPECT_DOUBLE_EQ(m.activeTransistors(s).raw(),
                     std::min(m.areaTransistors(s),
                              m.tdpTransistors(s)).raw());
    EXPECT_LT(m.tdpTransistors(s), m.areaTransistors(s));
}

TEST(Potential, PowerCappedAtTdp)
{
    PotentialModel m;
    ChipSpec s = spec(5.0, 800.0, 1.0, 800.0_w);
    EXPECT_LE(m.power(s).raw(), 800.0 + 1e-9);

    // A small unconstrained chip dissipates below any sane envelope.
    ChipSpec small = baseline();
    EXPECT_LT(m.power(small), 50.0_w);
    EXPECT_GT(m.power(small), 1.0_w);
}

TEST(Potential, SmallChipsFavorEfficiency)
{
    // Paper: "As expected, small chips are favorable for energy
    // efficiency." Under the same power envelope, a large die pays the
    // leakage of all its transistors while only a fraction may switch.
    PotentialModel m;
    ChipSpec small = spec(5.0, 25.0, 1.0, 150.0_w);
    ChipSpec large = spec(5.0, 800.0, 1.0, 150.0_w);
    EXPECT_GT(m.energyEfficiency(small), m.energyEfficiency(large));
}

TEST(Potential, LeakageCanConsumeEntireEnvelope)
{
    // An 800mm² 5nm die leaks more than 100W: under a 100W envelope no
    // switching budget remains and throughput collapses to zero.
    PotentialModel m;
    ChipSpec starved = spec(5.0, 800.0, 1.0, 100.0_w);
    EXPECT_DOUBLE_EQ(m.activeTransistors(starved).raw(), 0.0);
    EXPECT_DOUBLE_EQ(m.throughput(starved).raw(), 0.0);
    EXPECT_GT(m.power(starved), 0.0_w); // it still leaks
}

TEST(Potential, EfficiencyImprovesWithNode)
{
    PotentialModel m;
    auto prev = m.energyEfficiency(baseline());
    for (double node : {32.0, 22.0, 14.0, 10.0, 7.0, 5.0}) {
        auto eff = m.energyEfficiency(spec(node, 25.0, 1.0, kUncappedTdp));
        EXPECT_GT(eff, prev) << "at " << node << "nm";
        prev = eff;
    }
}

/** Monotonicity sweep over die areas: more area, more throughput. */
class PotentialAreaMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(PotentialAreaMonotone, ThroughputRisesWithArea)
{
    PotentialModel m;
    double node = GetParam();
    units::TransistorGigahertz prev{0.0};
    for (double area : {25.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
        auto thr = m.throughput(spec(node, area, 1.0, kUncappedTdp));
        EXPECT_GT(thr, prev) << "at area " << area;
        prev = thr;
    }
}

INSTANTIATE_TEST_SUITE_P(PaperNodes, PotentialAreaMonotone,
                         ::testing::Values(45.0, 28.0, 16.0, 10.0, 7.0,
                                           5.0));

/** Monotonicity sweep over TDP: a looser envelope never hurts. */
class PotentialTdpMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(PotentialTdpMonotone, ThroughputRisesWithTdp)
{
    PotentialModel m;
    double node = GetParam();
    units::TransistorGigahertz prev{0.0};
    for (double tdp : {25.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
        auto thr = m.throughput(spec(node, 800.0, 1.0, Watts{tdp}));
        EXPECT_GE(thr, prev) << "at TDP " << tdp;
        prev = thr;
    }
}

INSTANTIATE_TEST_SUITE_P(PaperNodes, PotentialTdpMonotone,
                         ::testing::Values(45.0, 28.0, 16.0, 10.0, 7.0,
                                           5.0));

TEST(Potential, OldNodesAppealUnderTightTdpForLargeChips)
{
    // Paper: "As chips get larger, the high transistor count and static
    // power of new CMOS nodes make old nodes more appealing under a
    // restricted TDP" — in efficiency terms. Under a tight envelope the
    // efficiency advantage of 5nm over 16nm shrinks versus unconstrained.
    PotentialModel m;
    ChipSpec new_unc = spec(5.0, 800.0, 1.0, kUncappedTdp);
    ChipSpec old_unc = spec(16.0, 800.0, 1.0, kUncappedTdp);
    ChipSpec new_cap = spec(5.0, 800.0, 1.0, 200.0_w);
    ChipSpec old_cap = spec(16.0, 800.0, 1.0, 200.0_w);
    double adv_unc =
        m.energyEfficiency(new_unc) / m.energyEfficiency(old_unc);
    double adv_cap =
        m.energyEfficiency(new_cap) / m.energyEfficiency(old_cap);
    EXPECT_LT(adv_cap, adv_unc);
}

TEST(Potential, AreaThroughputNormalizes)
{
    PotentialModel m;
    ChipSpec s = spec(16.0, 100.0, 1.0, kUncappedTdp);
    EXPECT_DOUBLE_EQ(m.areaThroughput(s).raw(),
                     (m.throughput(s) / 100.0_mm2).raw());
}

TEST(Potential, RejectsNonPositiveFrequency)
{
    PotentialModel m;
    ChipSpec bad = spec(45.0, 25.0, 0.0, 100.0_w);
    EXPECT_EXIT(m.tdpTransistors(bad), ::testing::ExitedWithCode(1),
                "frequency");
}

} // namespace
} // namespace accelwall::potential
