#!/usr/bin/env bash
# Loadgen smoke (ctest "serve" label): start accelwall-serve on an
# ephemeral port, drive >=1k mixed gains/csr requests through
# accelwall-loadgen (which exits nonzero unless every request got a
# 2xx), then SIGTERM the daemon and require a clean graceful-drain
# exit. Usage: run_loadgen_smoke.sh <serve-binary> <loadgen-binary>
set -u

SERVE=$1
LOADGEN=$2
WORK=$(mktemp -d)
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

"$SERVE" --port 0 --port-file "$WORK/port" --workers 4 \
    > "$WORK/serve.log" 2>&1 &
SRV_PID=$!

for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    sleep 0.1
done
if [ ! -s "$WORK/port" ]; then
    echo "FAIL: server never wrote its port file"
    cat "$WORK/serve.log"
    exit 1
fi
PORT=$(cat "$WORK/port")

if ! "$LOADGEN" --port "$PORT" --requests 1000 --concurrency 8; then
    echo "FAIL: loadgen reported errors"
    cat "$WORK/serve.log"
    exit 1
fi

kill -TERM "$SRV_PID"
wait "$SRV_PID"
rc=$?
SRV_PID=""
cat "$WORK/serve.log"
if [ "$rc" -ne 0 ]; then
    echo "FAIL: server exited $rc after SIGTERM (expected clean drain)"
    exit 1
fi
echo "PASS: 1000 requests, clean drain"
