/**
 * @file
 * Unit tests for the Table II specialization-concept bounds.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "aladdin/simulator.hh"
#include "concepts/bounds.hh"
#include "dfg/graph.hh"
#include "kernels/kernels.hh"

namespace accelwall::concepts
{
namespace
{

using dfg::Analysis;
using dfg::analyze;
using dfg::Graph;
using dfg::makeFigure11Example;

Analysis
fig11()
{
    Graph g = makeFigure11Example();
    return analyze(g);
}

TEST(Bounds, Names)
{
    EXPECT_STREQ(componentName(Component::Memory), "memory");
    EXPECT_STREQ(conceptName(SpecConcept::Partitioning), "partitioning");
}

TEST(Bounds, MemorySimplification)
{
    Analysis a = fig11();
    Bound b = bound(a, Component::Memory, SpecConcept::Simplification);
    // |V| * log(max|WS|) = 9 * log2(3); space = max|WS| = 3.
    EXPECT_NEAR(b.time, 9.0 * std::log2(3.0), 1e-9);
    EXPECT_DOUBLE_EQ(b.space, 3.0);
    EXPECT_EQ(b.time_expr, "|V|*log(max|WS|)");
}

TEST(Bounds, MemoryHeterogeneity)
{
    Analysis a = fig11();
    Bound b = bound(a, Component::Memory, SpecConcept::Heterogeneity);
    EXPECT_DOUBLE_EQ(b.time, 4.0);  // D
    EXPECT_DOUBLE_EQ(b.space, 10.0); // |E|
}

TEST(Bounds, MemoryPartitioning)
{
    Analysis a = fig11();
    Bound b = bound(a, Component::Memory, SpecConcept::Partitioning);
    EXPECT_NEAR(b.time, 4.0 * std::log2(3.0), 1e-9);
    EXPECT_DOUBLE_EQ(b.space, 3.0);
}

TEST(Bounds, CommunicationRow)
{
    Analysis a = fig11();
    Bound simp =
        bound(a, Component::Communication, SpecConcept::Simplification);
    EXPECT_DOUBLE_EQ(simp.time, 10.0); // |E|
    EXPECT_DOUBLE_EQ(simp.space, 9.0); // |V|

    Bound het =
        bound(a, Component::Communication, SpecConcept::Heterogeneity);
    EXPECT_DOUBLE_EQ(het.time, 4.0);   // D
    EXPECT_DOUBLE_EQ(het.space, 10.0); // |E|

    Bound part =
        bound(a, Component::Communication, SpecConcept::Partitioning);
    EXPECT_DOUBLE_EQ(part.time, 4.0); // D
    EXPECT_DOUBLE_EQ(part.space, 3.0); // max|WS|
}

TEST(Bounds, ComputationRow)
{
    Analysis a = fig11();
    Bound simp =
        bound(a, Component::Computation, SpecConcept::Simplification);
    EXPECT_DOUBLE_EQ(simp.time, 10.0); // |E|
    EXPECT_DOUBLE_EQ(simp.space, 1.0);

    Bound het =
        bound(a, Component::Computation, SpecConcept::Heterogeneity);
    EXPECT_DOUBLE_EQ(het.time, 3.0); // |V_IN|
    // 2^3 inputs * 2 outputs = 16 table entries.
    EXPECT_DOUBLE_EQ(het.space, 16.0);
    EXPECT_NEAR(het.log2_space, 4.0, 1e-9);

    Bound part =
        bound(a, Component::Computation, SpecConcept::Partitioning);
    EXPECT_DOUBLE_EQ(part.time, 4.0);
    EXPECT_DOUBLE_EQ(part.space, 3.0);
}

TEST(Bounds, LutSpaceOverflowStaysFiniteInLog)
{
    // 2048 inputs: 2^2048 overflows a double, log2_space must not.
    Graph g("huge");
    std::vector<dfg::NodeId> ins;
    for (int i = 0; i < 2048; ++i)
        ins.push_back(g.addNode(dfg::OpType::Input));
    dfg::NodeId op = g.addNode(dfg::OpType::Add);
    for (auto in : ins)
        g.addEdge(in, op);
    dfg::NodeId out = g.addNode(dfg::OpType::Output);
    g.addEdge(op, out);

    Bound het =
        bound(analyze(g), Component::Computation,
              SpecConcept::Heterogeneity);
    EXPECT_TRUE(std::isinf(het.space));
    EXPECT_NEAR(het.log2_space, 2048.0, 1.0);
}

/**
 * Property: heterogeneity always achieves the minimal time (depth) among
 * memory concepts, but at superior-or-equal space cost to partitioning.
 * This is the Table II tradeoff in one assertion.
 */
class BoundsTradeoff : public ::testing::TestWithParam<int>
{
  protected:
    /** A random-ish layered DAG parameterized by seed. */
    static Analysis
    makeLayered(int seed)
    {
        Graph g("layered");
        int width = 3 + seed % 5;
        int depth = 2 + seed % 7;
        std::vector<dfg::NodeId> prev;
        for (int i = 0; i < width; ++i)
            prev.push_back(g.addNode(dfg::OpType::Input));
        for (int d = 0; d < depth; ++d) {
            std::vector<dfg::NodeId> cur;
            for (int i = 0; i < width; ++i) {
                dfg::NodeId n = g.addNode(dfg::OpType::FAdd);
                g.addEdge(prev[i], n);
                g.addEdge(prev[(i + 1 + d) % width], n);
                cur.push_back(n);
            }
            prev = cur;
        }
        for (auto n : prev) {
            dfg::NodeId out = g.addNode(dfg::OpType::Output);
            g.addEdge(n, out);
        }
        return analyze(g);
    }
};

TEST_P(BoundsTradeoff, HeterogeneityFastestMemoryConcept)
{
    Analysis a = makeLayered(GetParam());
    Bound het = bound(a, Component::Memory, SpecConcept::Heterogeneity);
    Bound simp = bound(a, Component::Memory, SpecConcept::Simplification);
    Bound part = bound(a, Component::Memory, SpecConcept::Partitioning);

    EXPECT_LE(het.time, simp.time);
    EXPECT_LE(het.time, part.time);
    // Heterogeneity pays for speed in space: |E| >= max|WS| here since
    // every non-input node has >= 2 in-edges.
    EXPECT_GE(het.space, part.space);
}

TEST_P(BoundsTradeoff, PartitioningNeverSlowerThanSimplification)
{
    Analysis a = makeLayered(GetParam());
    for (Component comp : {Component::Memory, Component::Communication,
                           Component::Computation}) {
        Bound part = bound(a, comp, SpecConcept::Partitioning);
        Bound simp = bound(a, comp, SpecConcept::Simplification);
        EXPECT_LE(part.time, simp.time)
            << "component " << componentName(comp);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsTradeoff, ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// Theory vs simulator: the Table II asymptotics must show up in the
// scheduler's actual cycle counts.
// ---------------------------------------------------------------------

/**
 * Partitioning time bound Θ(D): with effectively unlimited lanes and
 * 1-cycle ops, the schedule collapses to within a small constant of
 * the DFG depth.
 */
class TheoryVsSim : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TheoryVsSim, UnlimitedPartitioningApproachesDepth)
{
    dfg::Graph g = kernels::makeKernel(GetParam());
    dfg::Analysis a = dfg::analyze(g);
    aladdin::Simulator sim(std::move(g));

    aladdin::DesignPoint dp;
    dp.partition = 1 << 20;
    dp.chaining = false;
    auto res = sim.run(dp);

    // 45nm latencies reach 15 cycles (FDiv), so allow that constant.
    EXPECT_GE(res.cycles, a.depth - 2);
    EXPECT_LE(res.cycles, 16 * a.depth);
}

TEST_P(TheoryVsSim, SinglePortApproachesSerialTime)
{
    // Memory simplification Θ(|V|)-flavor: one port and one lane put
    // the schedule within a small constant of the op count.
    dfg::Graph g = kernels::makeKernel(GetParam());
    std::size_t ops = g.numNodes() - g.countIf(dfg::isVariable);
    aladdin::Simulator sim(std::move(g));

    aladdin::DesignPoint dp;
    dp.partition = 1;
    dp.memory = aladdin::MemoryMode::Simple;
    dp.chaining = false;
    auto res = sim.run(dp);

    EXPECT_GE(res.cycles + 1, ops / 2); // issue-bound
    EXPECT_LE(res.cycles, 20 * ops);    // within the latency constant
}

TEST_P(TheoryVsSim, SpeedupBoundedByMaxWorkingSet)
{
    // Partitioning beyond max|WS| is theoretically wasted: measured
    // speedup from lanes alone must not exceed the bound by more than
    // the latency constant.
    dfg::Graph g = kernels::makeKernel(GetParam());
    dfg::Analysis a = dfg::analyze(g);
    aladdin::Simulator sim(std::move(g));

    aladdin::DesignPoint dp;
    dp.chaining = false;
    dp.partition = 1;
    double serial = sim.run(dp).runtime_ns;
    dp.partition = 1 << 20;
    double parallel = sim.run(dp).runtime_ns;

    double speedup = serial / parallel;
    EXPECT_LE(speedup,
              static_cast<double>(a.max_working_set) * 1.05 + 1.0)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Kernels, TheoryVsSim,
                         ::testing::Values("RED", "FFT", "NWN", "GMM",
                                           "ENT"));

} // namespace
} // namespace accelwall::concepts
