# Usage-contract check for the accelwall_* tools: run one tool with
# deliberately bad arguments and require the documented behavior —
# a "usage:" line on stderr and exit code 2 (distinguishable from
# model/data errors, which exit 1 via fatal()).
#
# Invoked by the cli_* ctest entries with
#   -DTOOL=<binary> "-DARGS=<arg|arg|...>" -P run_cli_case.cmake
# ARGS uses '|' as the separator so it survives the shell and ctest.

string(REPLACE "|" ";" args "${ARGS}")
execute_process(
    COMMAND ${TOOL} ${args}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if (NOT rc EQUAL 2)
    message(FATAL_ERROR
        "${TOOL} ${ARGS}: expected usage exit code 2, got '${rc}'\n"
        "stderr: ${err}")
endif ()
if (NOT err MATCHES "usage:")
    message(FATAL_ERROR
        "${TOOL} ${ARGS}: exit code 2 but no usage text on stderr\n"
        "stderr: ${err}")
endif ()
