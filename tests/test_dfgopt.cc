/**
 * @file
 * Tests for the algorithm-layer DFG rewrites: common-subexpression
 * elimination, strength reduction, and the parallelism profile.
 */

#include <gtest/gtest.h>

#include "dfg/analysis.hh"
#include "dfgopt/rewrites.hh"
#include "kernels/builder.hh"
#include "kernels/kernels.hh"

namespace accelwall::dfgopt
{
namespace
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;
using kernels::binary;
using kernels::loadArray;
using kernels::storeAll;

/** (a+b)*(a+b) with the common Add duplicated. */
Graph
redundantSquare()
{
    Graph g("square");
    auto in = loadArray(g, 2);
    NodeId s1 = binary(g, OpType::Add, in[0], in[1]);
    NodeId s2 = binary(g, OpType::Add, in[0], in[1]);
    NodeId prod = binary(g, OpType::FMul, s1, s2);
    storeAll(g, {prod});
    return g;
}

TEST(Cse, MergesStructuralDuplicates)
{
    Graph g = redundantSquare();
    RewriteStats stats;
    Graph opt = eliminateCommonSubexpressions(g, &stats);

    EXPECT_EQ(stats.nodes_before, 6u);
    EXPECT_EQ(stats.rewritten, 1u);
    EXPECT_EQ(opt.numNodes(), 5u);
    dfg::analyze(opt); // still a valid DAG
    // The multiply now has the merged Add twice as operand.
    std::size_t adds = opt.countIf(
        [](OpType op) { return op == OpType::Add; });
    EXPECT_EQ(adds, 1u);
}

TEST(Cse, CommutativityNormalized)
{
    // Add(a,b) and Add(b,a) merge; Sub(a,b) and Sub(b,a) must not.
    Graph g("comm");
    auto in = loadArray(g, 2);
    NodeId ab = binary(g, OpType::Add, in[0], in[1]);
    NodeId ba = binary(g, OpType::Add, in[1], in[0]);
    NodeId sab = binary(g, OpType::Sub, in[0], in[1]);
    NodeId sba = binary(g, OpType::Sub, in[1], in[0]);
    storeAll(g, {ab, ba, sab, sba});

    RewriteStats stats;
    Graph opt = eliminateCommonSubexpressions(g, &stats);
    EXPECT_EQ(stats.rewritten, 1u);
    EXPECT_EQ(opt.countIf([](OpType op) { return op == OpType::Add; }),
              1u);
    EXPECT_EQ(opt.countIf([](OpType op) { return op == OpType::Sub; }),
              2u);
}

TEST(Cse, NeverMergesLoadsOrUnaryConstOps)
{
    // Two Loads are distinct addresses; two unary Muls carry distinct
    // folded constants.
    Graph g("loads");
    NodeId a = g.addNode(OpType::Load);
    NodeId b = g.addNode(OpType::Load);
    NodeId m1 = g.addNode(OpType::Mul);
    g.addEdge(a, m1);
    NodeId m2 = g.addNode(OpType::Mul);
    g.addEdge(a, m2);
    NodeId sum = binary(g, OpType::Add, m1, m2);
    NodeId sum2 = binary(g, OpType::Add, b, sum);
    storeAll(g, {sum2});

    RewriteStats stats;
    Graph opt = eliminateCommonSubexpressions(g, &stats);
    EXPECT_EQ(stats.rewritten, 0u);
    EXPECT_EQ(opt.numNodes(), g.numNodes());
}

TEST(Cse, CascadesThroughLevels)
{
    // Duplicate subtrees merge bottom-up: ((a+b)+c) twice collapses to
    // one chain.
    Graph g("cascade");
    auto in = loadArray(g, 3);
    NodeId x1 = binary(g, OpType::Add, in[0], in[1]);
    NodeId y1 = binary(g, OpType::Add, x1, in[2]);
    NodeId x2 = binary(g, OpType::Add, in[0], in[1]);
    NodeId y2 = binary(g, OpType::Add, x2, in[2]);
    NodeId top = binary(g, OpType::FMul, y1, y2);
    storeAll(g, {top});

    RewriteStats stats;
    eliminateCommonSubexpressions(g, &stats);
    EXPECT_EQ(stats.rewritten, 2u);
}

TEST(Cse, IdempotentOnKernels)
{
    // Our kernel generators emit clean graphs; CSE must be a no-op on
    // structure (it may renumber) — duplicate work would be a
    // generator bug.
    for (const char *abbrev : {"GMM", "FFT", "S3D"}) {
        RewriteStats stats;
        Graph opt = eliminateCommonSubexpressions(
            kernels::makeKernel(abbrev), &stats);
        EXPECT_EQ(stats.rewritten, 0u) << abbrev;
    }
}

TEST(StrengthReduction, RewritesConstMultiplies)
{
    Graph g = kernels::makeKernel("IDCT");
    std::size_t muls = g.countIf(
        [](OpType op) { return op == OpType::Mul; });
    ASSERT_GT(muls, 0u);

    RewriteStats stats;
    Graph opt = reduceStrength(g, &stats);
    EXPECT_EQ(stats.rewritten, muls);
    EXPECT_EQ(opt.countIf([](OpType op) { return op == OpType::Mul; }),
              0u);
    // Each Mul became Shift+Shift+Add.
    EXPECT_EQ(opt.numNodes(), g.numNodes() + 2 * muls);
    dfg::analyze(opt);
}

TEST(StrengthReduction, LeavesBinaryMultipliesAlone)
{
    Graph g = kernels::makeGmm(4); // binary FMul only
    RewriteStats stats;
    Graph opt = reduceStrength(g, &stats);
    EXPECT_EQ(stats.rewritten, 0u);
    EXPECT_EQ(opt.numNodes(), g.numNodes());
}

TEST(Profile, MatchesAnalysis)
{
    Graph g = kernels::makeRed(64);
    ParallelismProfile profile = parallelismProfile(g);
    dfg::Analysis a = dfg::analyze(g);
    EXPECT_EQ(profile.peak, a.max_working_set);
    EXPECT_EQ(profile.stage_sizes, a.stage_sizes);
    EXPECT_GT(profile.average, 1.0);
}

} // namespace
} // namespace accelwall::dfgopt
