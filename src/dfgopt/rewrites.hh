/**
 * @file
 * DFG rewrites modeling algorithm-layer specialization.
 *
 * The specialization stack's top mutable layer is the algorithm
 * (Figure 2); the paper's emerging-domain study (Section IV-C) and the
 * ASICBoost discussion (IV-E) show CSR gains coming from exactly such
 * rewrites. This module implements mechanical ones — common-
 * subexpression elimination and multiplier strength reduction — so the
 * Section VI flow can quantify algorithm-layer CSR on any kernel.
 */

#ifndef ACCELWALL_DFGOPT_REWRITES_HH
#define ACCELWALL_DFGOPT_REWRITES_HH

#include <cstddef>
#include <vector>

#include "dfg/graph.hh"

namespace accelwall::dfgopt
{

/** Before/after accounting for one rewrite. */
struct RewriteStats
{
    std::size_t nodes_before = 0;
    std::size_t nodes_after = 0;
    /** Nodes merged away (CSE) or replaced (strength reduction). */
    std::size_t rewritten = 0;
};

/**
 * Common-subexpression elimination: structurally identical compute
 * nodes — same operation, same (for commutative ops, unordered)
 * operand set, at least two operands — are merged. Memory accesses,
 * variables, and constant-folded unary arithmetic (whose immediate is
 * not represented in the DFG) are conservatively never merged.
 */
dfg::Graph eliminateCommonSubexpressions(const dfg::Graph &graph,
                                         RewriteStats *stats = nullptr);

/**
 * Strength reduction: each constant multiply (a unary Mul, whose
 * immediate was folded at construction) is re-expressed as a canonical
 * signed-digit shift-add pair — two cheap nodes replacing one array
 * multiplier, trading a node for ~5x less switching energy and ~2.5x
 * less delay.
 */
dfg::Graph reduceStrength(const dfg::Graph &graph,
                          RewriteStats *stats = nullptr);

/** Stage-by-stage parallelism summary. */
struct ParallelismProfile
{
    std::vector<std::size_t> stage_sizes;
    double average = 0.0;
    std::size_t peak = 0;
};

/** Profile a DFG's per-stage parallelism (ASAP stages). */
ParallelismProfile parallelismProfile(const dfg::Graph &graph);

} // namespace accelwall::dfgopt

#endif // ACCELWALL_DFGOPT_REWRITES_HH
