#include "dfgopt/rewrites.hh"

#include <algorithm>
#include <map>
#include <tuple>

#include "dfg/analysis.hh"
#include "dfg/verify.hh"

namespace accelwall::dfgopt
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

namespace
{

/** Operations whose operand order is semantically irrelevant. */
bool
isCommutative(OpType op)
{
    switch (op) {
      case OpType::Add:
      case OpType::Mul:
      case OpType::And:
      case OpType::Or:
      case OpType::Xor:
      case OpType::Max:
      case OpType::Min:
      case OpType::FAdd:
      case OpType::FMul:
        return true;
      default:
        return false;
    }
}

} // namespace

Graph
eliminateCommonSubexpressions(const Graph &graph, RewriteStats *stats)
{
    dfg::verify::debugVerify(graph, "dfgopt::cse input");
    Graph out(graph.name() + "+cse");

    // Value numbering in topological order: a node's key is its op,
    // its width, and its operands' value numbers.
    std::vector<NodeId> remap(graph.numNodes());
    std::map<std::tuple<OpType, int, std::vector<NodeId>>, NodeId> table;
    std::size_t merged = 0;

    for (NodeId id : graph.topoOrder()) {
        OpType op = graph.op(id);
        std::vector<NodeId> preds;
        preds.reserve(graph.preds(id).size());
        for (NodeId p : graph.preds(id))
            preds.push_back(remap[p]);

        // Mergeable: genuine compute with at least two operands — a
        // unary arithmetic node carries a folded constant the DFG does
        // not represent, so two of them may differ semantically.
        bool mergeable = dfg::isCompute(op) && preds.size() >= 2;
        if (mergeable) {
            std::vector<NodeId> key_preds = preds;
            if (isCommutative(op))
                std::sort(key_preds.begin(), key_preds.end());
            auto key = std::make_tuple(op, graph.width(id),
                                       std::move(key_preds));
            auto it = table.find(key);
            if (it != table.end()) {
                remap[id] = it->second;
                ++merged;
                continue;
            }
            NodeId fresh = out.addNode(op, graph.width(id));
            for (NodeId p : preds)
                out.addEdge(p, fresh);
            table.emplace(std::move(key), fresh);
            remap[id] = fresh;
            continue;
        }

        NodeId fresh = out.addNode(op, graph.width(id));
        for (NodeId p : preds)
            out.addEdge(p, fresh);
        remap[id] = fresh;
    }

    if (stats != nullptr) {
        stats->nodes_before = graph.numNodes();
        stats->nodes_after = out.numNodes();
        stats->rewritten = merged;
    }
    dfg::verify::debugVerify(out, "dfgopt::cse output");
    return out;
}

Graph
reduceStrength(const Graph &graph, RewriteStats *stats)
{
    dfg::verify::debugVerify(graph, "dfgopt::sr input");
    Graph out(graph.name() + "+sr");

    std::vector<NodeId> remap(graph.numNodes());
    std::size_t rewritten = 0;

    for (NodeId id : graph.topoOrder()) {
        OpType op = graph.op(id);
        const auto &preds = graph.preds(id);

        if (op == OpType::Mul && preds.size() == 1) {
            // Constant multiply: canonical signed-digit form with two
            // terms, (x << a) +/- (x << b).
            int w = graph.width(id);
            NodeId src = remap[preds[0]];
            NodeId sh1 = out.addNode(OpType::Shift, w);
            out.addEdge(src, sh1);
            NodeId sh2 = out.addNode(OpType::Shift, w);
            out.addEdge(src, sh2);
            NodeId sum = out.addNode(OpType::Add, w);
            out.addEdge(sh1, sum);
            out.addEdge(sh2, sum);
            remap[id] = sum;
            ++rewritten;
            continue;
        }

        NodeId fresh = out.addNode(op, graph.width(id));
        for (NodeId p : preds)
            out.addEdge(remap[p], fresh);
        remap[id] = fresh;
    }

    if (stats != nullptr) {
        stats->nodes_before = graph.numNodes();
        stats->nodes_after = out.numNodes();
        stats->rewritten = rewritten;
    }
    dfg::verify::debugVerify(out, "dfgopt::sr output");
    return out;
}

ParallelismProfile
parallelismProfile(const Graph &graph)
{
    dfg::Analysis a = dfg::analyze(graph);
    ParallelismProfile out;
    out.stage_sizes = a.stage_sizes;
    out.peak = a.max_working_set;
    double sum = 0.0;
    for (std::size_t s : a.stage_sizes)
        sum += static_cast<double>(s);
    out.average = sum / static_cast<double>(a.stage_sizes.size());
    return out;
}

} // namespace accelwall::dfgopt
