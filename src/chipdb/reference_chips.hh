/**
 * @file
 * A validation set of real, publicly documented chips.
 *
 * The synthetic corpus (synth.hh) is *drawn from* the paper's budget
 * laws, so recovering them there validates the regression machinery
 * but not the laws. This table holds well-known commercial parts with
 * published die sizes and transistor counts so tests can check the
 * Figure 3b law against actual silicon: the law should predict every
 * entry's transistor count within a small factor across 130nm..12nm.
 */

#ifndef ACCELWALL_CHIPDB_REFERENCE_CHIPS_HH
#define ACCELWALL_CHIPDB_REFERENCE_CHIPS_HH

#include <vector>

#include "chipdb/record.hh"

namespace accelwall::chipdb
{

/**
 * Real chips with public die size and transistor count (vendor
 * disclosures / die analyses). Frequencies are nominal; TDPs are the
 * official board/package ratings.
 */
const std::vector<ChipRecord> &referenceChips();

} // namespace accelwall::chipdb

#endif // ACCELWALL_CHIPDB_REFERENCE_CHIPS_HH
