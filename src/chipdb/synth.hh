/**
 * @file
 * Synthetic datasheet corpus (substitution for CPU DB / TechPowerUp).
 *
 * The paper builds its potential model from datasheets of 1612 CPUs and
 * 1001 GPUs scraped from online databases. We do not have those scrapes;
 * instead we generate a corpus of the same size whose quantities follow
 * the paper's published budget laws (Fig. 3b/3c) perturbed by log-normal
 * noise. The regression machinery then runs genuinely against this corpus
 * and recovers the published coefficients within noise — which is exactly
 * the property the downstream model depends on.
 */

#ifndef ACCELWALL_CHIPDB_SYNTH_HH
#define ACCELWALL_CHIPDB_SYNTH_HH

#include <cstdint>
#include <vector>

#include "chipdb/record.hh"

namespace accelwall::chipdb
{

/** Knobs for the synthetic corpus generator. */
struct SynthConfig
{
    /** RNG seed; the default reproduces the checked-in experiment runs. */
    std::uint64_t seed = 0xACCE1;
    /** Number of CPU records (paper: 1612). */
    int num_cpus = 1612;
    /** Number of GPU records (paper: 1001). */
    int num_gpus = 1001;
    /** Multiplicative noise on transistor counts (log-normal sigma). */
    double tc_noise = 0.18;
    /** Multiplicative noise on TDP (log-normal sigma). */
    double tdp_noise = 0.12;
};

/**
 * Generate the synthetic corpus. Deterministic for a given config.
 */
std::vector<ChipRecord> makeSynthCorpus(const SynthConfig &config = {});

} // namespace accelwall::chipdb

#endif // ACCELWALL_CHIPDB_SYNTH_HH
