#include "chipdb/reference_chips.hh"

namespace accelwall::chipdb
{

const std::vector<ChipRecord> &
referenceChips()
{
    // name                plat             year    node   mm²    transistors freq[MHz] TDP[W]
    static const std::vector<ChipRecord> chips = {
        // CPUs.
        { "Pentium 4 Northwood", Platform::CPU, 2002.0, 130.0, 146.0,
          5.5e7, 2400.0, 58.0 },
        { "Athlon 64",           Platform::CPU, 2003.7, 130.0, 193.0,
          1.06e8, 2000.0, 89.0 },
        { "Core 2 Duo E6600",    Platform::CPU, 2006.6, 65.0, 143.0,
          2.91e8, 2400.0, 65.0 },
        { "Core i7-920",         Platform::CPU, 2008.9, 45.0, 263.0,
          7.31e8, 2660.0, 130.0 },
        { "Core i7-2600K",       Platform::CPU, 2011.0, 32.0, 216.0,
          1.16e9, 3400.0, 95.0 },
        { "Core i7-4770K",       Platform::CPU, 2013.4, 22.0, 177.0,
          1.4e9, 3500.0, 84.0 },
        { "Core i7-6700K",       Platform::CPU, 2015.6, 14.0, 122.0,
          1.75e9, 4000.0, 91.0 },
        { "Ryzen 7 1800X",       Platform::CPU, 2017.2, 14.0, 213.0,
          4.8e9, 3600.0, 95.0 },
        // GPUs.
        { "GeForce 8800 GTX",    Platform::GPU, 2006.9, 90.0, 484.0,
          6.81e8, 575.0, 145.0 },
        { "GTX 280",             Platform::GPU, 2008.4, 65.0, 576.0,
          1.4e9, 602.0, 236.0 },
        { "HD 5870",             Platform::GPU, 2009.8, 40.0, 334.0,
          2.15e9, 850.0, 188.0 },
        { "GTX 480",             Platform::GPU, 2010.2, 40.0, 529.0,
          3.0e9, 701.0, 250.0 },
        { "GTX 680",             Platform::GPU, 2012.2, 28.0, 294.0,
          3.54e9, 1006.0, 195.0 },
        { "HD 7970",             Platform::GPU, 2012.0, 28.0, 352.0,
          4.31e9, 925.0, 250.0 },
        { "R9 290X",             Platform::GPU, 2013.8, 28.0, 438.0,
          6.2e9, 1000.0, 290.0 },
        { "GTX 980",             Platform::GPU, 2014.7, 28.0, 398.0,
          5.2e9, 1126.0, 165.0 },
        { "GTX 980 Ti",          Platform::GPU, 2015.4, 28.0, 601.0,
          8.0e9, 1000.0, 250.0 },
        { "GTX 1080",            Platform::GPU, 2016.4, 16.0, 314.0,
          7.2e9, 1607.0, 180.0 },
        { "GTX 1080 Ti",         Platform::GPU, 2017.2, 16.0, 471.0,
          1.2e10, 1480.0, 250.0 },
        { "Titan V",             Platform::GPU, 2017.9, 12.0, 815.0,
          2.11e10, 1200.0, 250.0 },
        { "Vega 64",             Platform::GPU, 2017.6, 14.0, 495.0,
          1.25e10, 1247.0, 295.0 },
    };
    return chips;
}

} // namespace accelwall::chipdb
