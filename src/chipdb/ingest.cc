#include "chipdb/ingest.hh"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/csv.hh"
#include "util/faultinject.hh"

namespace accelwall::chipdb
{

namespace
{

bool
finite(double v)
{
    return std::isfinite(v);
}

Result<double>
parseNumber(const std::string &field, const char *what)
{
    char *end = nullptr;
    double value = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || *end != '\0') {
        return makeError(ErrorCode::CsvBadNumber, "could not parse ",
                         what, " from '", field, "'");
    }
    return value;
}

Result<Platform>
parsePlatform(const std::string &field)
{
    if (field == "CPU")
        return Platform::CPU;
    if (field == "GPU")
        return Platform::GPU;
    if (field == "FPGA")
        return Platform::FPGA;
    if (field == "ASIC")
        return Platform::ASIC;
    return makeError(ErrorCode::RecordBadPlatform, "unknown platform '",
                     field, "' (expected CPU|GPU|FPGA|ASIC)");
}

} // namespace

void
IngestReport::addIssue(std::size_t row, std::string name, Error error)
{
    ++quarantined;
    ++code_counts[static_cast<int>(error.code())];
    if (issues.size() < kMaxDetailedIssues)
        issues.push_back({row, std::move(name), std::move(error)});
}

std::string
IngestReport::summary() const
{
    std::ostringstream oss;
    oss << accepted << '/' << total << " records ok, " << quarantined
        << " quarantined";
    if (!code_counts.empty()) {
        oss << " (";
        bool first = true;
        for (const auto &[code, count] : code_counts) {
            if (!first)
                oss << ", ";
            first = false;
            oss << 'E' << code << " x " << count;
        }
        oss << ')';
    }
    return oss.str();
}

Result<void>
validateRecord(const ChipRecord &rec)
{
    for (double v : {rec.year, rec.node_nm, rec.area_mm2,
                     rec.transistors, rec.freq_mhz, rec.tdp_w}) {
        if (!finite(v)) {
            return makeError(ErrorCode::RecordNonFinite,
                             "non-finite numeric field")
                .in(rec.name);
        }
    }
    if (rec.node_nm <= 0.0) {
        return makeError(ErrorCode::RecordNonPositiveNode, "node ",
                         rec.node_nm, " nm must be positive")
            .in(rec.name);
    }
    if (rec.area_mm2 <= 0.0) {
        return makeError(ErrorCode::RecordNonPositiveArea, "die area ",
                         rec.area_mm2, " mm^2 must be positive")
            .in(rec.name);
    }
    if (rec.tdp_w <= 0.0) {
        return makeError(ErrorCode::RecordNonPositiveTdp, "TDP ",
                         rec.tdp_w, " W must be positive")
            .in(rec.name);
    }
    if (rec.freq_mhz <= 0.0) {
        return makeError(ErrorCode::RecordNonPositiveFreq, "frequency ",
                         rec.freq_mhz, " MHz must be positive")
            .in(rec.name);
    }
    // 0 transistors means "undisclosed"; negative is corrupt data.
    if (rec.transistors < 0.0) {
        return makeError(ErrorCode::RecordNonFinite,
                         "negative transistor count ", rec.transistors)
            .in(rec.name);
    }
    if (rec.year < 0.0) {
        return makeError(ErrorCode::RecordBadYear, "year ", rec.year,
                         " must be non-negative")
            .in(rec.name);
    }
    return {};
}

std::vector<ChipRecord>
quarantineRecords(const std::vector<ChipRecord> &records,
                  IngestReport &report)
{
    auto &faults = util::FaultPlan::global();
    std::vector<ChipRecord> ok;
    ok.reserve(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        const ChipRecord &rec = records[i];
        ++report.total;
        if (faults.shouldFail("ingest-record", i)) {
            report.addIssue(i, rec.name,
                            util::injectedFault("ingest-record", i));
            continue;
        }
        auto valid = validateRecord(rec);
        if (!valid.ok()) {
            report.addIssue(i, rec.name, valid.error());
            continue;
        }
        ++report.accepted;
        ok.push_back(rec);
    }
    return ok;
}

Result<std::vector<ChipRecord>>
parseChipCsv(const std::string &text, IngestReport &report)
{
    auto parsed = parseCsv(text);
    if (!parsed.ok())
        return parsed.error();
    const CsvRows &rows = parsed.value();
    if (rows.size() < 2) {
        return makeError(ErrorCode::CsvNoData,
                         "need a header row plus at least one record");
    }

    std::map<std::string, std::size_t> cols;
    for (std::size_t c = 0; c < rows[0].size(); ++c)
        cols[rows[0][c]] = c;
    for (const char *required : {"name", "platform", "year", "node_nm",
                                 "area_mm2", "freq_mhz", "tdp_w"}) {
        if (!cols.count(required)) {
            return makeError(ErrorCode::CsvMissingColumn,
                             "missing required column '", required, "'");
        }
    }
    bool has_transistors = cols.count("transistors") > 0;

    auto &faults = util::FaultPlan::global();
    std::vector<ChipRecord> ok;
    for (std::size_t r = 1; r < rows.size(); ++r) {
        const auto &row = rows[r];
        std::size_t idx = r - 1; // 0-based data-row index
        ++report.total;
        std::string name =
            row.size() > cols["name"] ? row[cols["name"]] : "";

        if (row.size() < rows[0].size()) {
            report.addIssue(
                idx, name,
                makeError(ErrorCode::CsvArityMismatch, "row has ",
                          row.size(), " fields, expected ",
                          rows[0].size())
                    .at(r + 1, 1));
            continue;
        }
        if (faults.shouldFail("ingest-record", idx)) {
            report.addIssue(idx, name,
                            util::injectedFault("ingest-record", idx));
            continue;
        }

        ChipRecord rec;
        rec.name = name;
        Error row_error;
        bool failed = false;
        auto number = [&](const char *col, double *out) {
            if (failed)
                return;
            auto value = parseNumber(row[cols[col]], col);
            if (!value.ok()) {
                row_error = value.error();
                failed = true;
                return;
            }
            *out = value.value();
        };
        auto platform = parsePlatform(row[cols["platform"]]);
        if (!platform.ok()) {
            row_error = platform.error();
            failed = true;
        } else {
            rec.platform = platform.value();
        }
        number("year", &rec.year);
        number("node_nm", &rec.node_nm);
        number("area_mm2", &rec.area_mm2);
        number("freq_mhz", &rec.freq_mhz);
        number("tdp_w", &rec.tdp_w);
        if (!failed && has_transistors &&
            !row[cols["transistors"]].empty())
            number("transistors", &rec.transistors);

        if (!failed) {
            auto valid = validateRecord(rec);
            if (!valid.ok()) {
                row_error = valid.error();
                failed = true;
            }
        }
        if (failed) {
            report.addIssue(idx, name, std::move(row_error));
            continue;
        }
        ++report.accepted;
        ok.push_back(std::move(rec));
    }
    return ok;
}

} // namespace accelwall::chipdb
