#include "chipdb/synth.hh"

#include <cmath>
#include <string>

#include "chipdb/budget.hh"
#include "util/rng.hh"

namespace accelwall::chipdb
{

namespace
{

/** Per-node sampling ranges for one platform class. */
struct NodeProfile
{
    double node_nm;
    double first_year;
    double last_year;
    double min_area_mm2;
    double max_area_mm2;
    double min_tdp_w;
    double max_tdp_w;
};

const NodeProfile kCpuProfiles[] = {
    { 180.0, 1999.0, 2003.0, 80.0, 220.0, 20.0, 90.0 },
    { 130.0, 2001.0, 2005.0, 80.0, 250.0, 25.0, 110.0 },
    {  90.0, 2004.0, 2007.0, 90.0, 300.0, 30.0, 130.0 },
    {  65.0, 2006.0, 2009.0, 100.0, 300.0, 30.0, 150.0 },
    {  45.0, 2008.0, 2011.0, 100.0, 350.0, 25.0, 140.0 },
    {  32.0, 2010.0, 2012.0, 120.0, 450.0, 25.0, 150.0 },
    {  22.0, 2012.0, 2015.0, 120.0, 500.0, 25.0, 165.0 },
    {  14.0, 2015.0, 2018.0, 120.0, 600.0, 30.0, 220.0 },
    {  10.0, 2017.0, 2019.0, 120.0, 650.0, 35.0, 280.0 },
};

const NodeProfile kGpuProfiles[] = {
    { 180.0, 2000.0, 2002.0, 80.0, 200.0, 15.0, 60.0 },
    { 130.0, 2002.0, 2004.0, 100.0, 220.0, 20.0, 75.0 },
    { 110.0, 2004.0, 2006.0, 100.0, 280.0, 25.0, 90.0 },
    {  90.0, 2005.0, 2007.0, 120.0, 350.0, 30.0, 130.0 },
    {  65.0, 2007.0, 2009.0, 120.0, 580.0, 40.0, 200.0 },
    {  55.0, 2008.0, 2010.0, 120.0, 580.0, 40.0, 230.0 },
    {  40.0, 2010.0, 2012.0, 120.0, 530.0, 50.0, 260.0 },
    {  28.0, 2012.0, 2016.0, 120.0, 600.0, 50.0, 300.0 },
    {  20.0, 2014.0, 2016.0, 150.0, 600.0, 60.0, 300.0 },
    {  16.0, 2016.0, 2018.0, 150.0, 815.0, 75.0, 350.0 },
    {  12.0, 2017.0, 2019.0, 150.0, 815.0, 75.0, 350.0 },
};

void
emit(std::vector<ChipRecord> &out, const NodeProfile *profiles,
     std::size_t num_profiles, int count, Platform platform,
     const char *prefix, const SynthConfig &config, Rng &rng,
     const BudgetModel &budget)
{
    for (int i = 0; i < count; ++i) {
        const NodeProfile &prof = profiles[i % num_profiles];

        ChipRecord rec;
        rec.platform = platform;
        rec.name = std::string(prefix) + "-" + std::to_string(i);
        rec.node_nm = prof.node_nm;
        rec.year = rng.uniform(prof.first_year, prof.last_year);
        rec.area_mm2 = rng.uniform(prof.min_area_mm2, prof.max_area_mm2);

        // Transistor count follows the area law (Fig. 3b) with noise.
        rec.transistors =
            budget.areaTransistors(rec.area(), rec.node()).raw() *
            rng.lognoise(config.tc_noise);

        // TDP is sampled log-uniformly in the node's commercial range;
        // the shipping frequency is then what the power law of the
        // chip's node group (Fig. 3c) affords for this many transistors
        // within that envelope: freq = k * TDP^e / TC. Real products
        // land near this frontier because vendors clock up to the
        // envelope.
        rec.tdp_w = std::exp(rng.uniform(std::log(prof.min_tdp_w),
                                         std::log(prof.max_tdp_w)));
        double tghz = budget.tdpTransistorGhz(rec.tdp(), rec.node()).raw();
        double freq_ghz = tghz / rec.transistors *
                          rng.lognoise(config.tdp_noise);
        rec.freq_mhz = freq_ghz * 1e3;

        // Real databases omit transistor counts for a fraction of chips;
        // keep ~10% undisclosed so fits must tolerate gaps.
        if (rng.uniform() < 0.10)
            rec.transistors = 0.0;

        out.push_back(std::move(rec));
    }
}

} // namespace

std::vector<ChipRecord>
makeSynthCorpus(const SynthConfig &config)
{
    Rng rng(config.seed);
    BudgetModel budget;

    std::vector<ChipRecord> corpus;
    corpus.reserve(static_cast<std::size_t>(config.num_cpus) +
                   static_cast<std::size_t>(config.num_gpus));

    emit(corpus, kCpuProfiles, std::size(kCpuProfiles), config.num_cpus,
         Platform::CPU, "cpu", config, rng, budget);
    emit(corpus, kGpuProfiles, std::size(kGpuProfiles), config.num_gpus,
         Platform::GPU, "gpu", config, rng, budget);

    return corpus;
}

} // namespace accelwall::chipdb
