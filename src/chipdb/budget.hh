/**
 * @file
 * Transistor-budget models (Section III, Figures 3b and 3c).
 *
 * Two independent caps on the number of usable transistors:
 *
 *  1. Area budget (Fig. 3b): the datasheet fit
 *         TC(D) = 4.99e9 * D^0.877,  D = area / node²  [mm²/nm²]
 *     Sub-linear in D because large chips are harder to fully utilize.
 *
 *  2. Power budget (Fig. 3c): per node-group fits of
 *         transistors[1e9] * freq[GHz] = k * TDP^e
 *     Post-Dennard power density limits the fraction of transistors that
 *     can switch within a TDP envelope; newer groups have larger k
 *     (more devices per watt) but smaller e (the envelope saturates
 *     faster).
 *
 * Both canonical parameter sets are the paper's published fits; the same
 * regressions can be re-derived from a corpus via fitAreaModel() /
 * fitTdpModel() (exercised on the synthetic corpus, see synth.hh).
 */

#ifndef ACCELWALL_CHIPDB_BUDGET_HH
#define ACCELWALL_CHIPDB_BUDGET_HH

#include <string>
#include <vector>

#include "chipdb/record.hh"
#include "stats/fits.hh"
#include "util/error.hh"

namespace accelwall::chipdb
{

/** One TDP-envelope node group of Figure 3c. */
struct TdpGroup
{
    /** Inclusive node range covered, in nm (newest..oldest). */
    double min_node_nm = 0.0;
    double max_node_nm = 0.0;
    /** Fit: transistors[1e9] * freq[GHz] = coeff * TDP^exponent. */
    double coeff = 0.0;
    double exponent = 0.0;
    /** Display label, e.g. "10nm-5nm". */
    std::string label;
};

/**
 * The combined transistor-budget model.
 */
class BudgetModel
{
  public:
    /** Construct with the paper's canonical fit parameters. */
    BudgetModel();

    /** Construct with explicit area-fit parameters (e.g. re-fit). */
    BudgetModel(double area_coeff, double area_exponent);

    /** Density factor D = area/node² in mm²/nm². */
    static double densityFactor(double area_mm2, double node_nm);

    /**
     * Area-budget transistor count for a die of @p area_mm2 at
     * @p node_nm (Fig. 3b curve).
     */
    double areaTransistors(double area_mm2, double node_nm) const;

    /**
     * Invert the area budget: die area needed to hold @p transistors at
     * @p node_nm.
     */
    double areaForTransistors(double transistors, double node_nm) const;

    /**
     * Power-budget transistor-gigahertz product (in absolute
     * transistors * GHz) for @p tdp_w at @p node_nm (Fig. 3c curves).
     */
    double tdpTransistorGhz(double tdp_w, double node_nm) const;

    /**
     * Power-budget active transistor count at @p freq_ghz.
     */
    double tdpTransistors(double tdp_w, double node_nm,
                          double freq_ghz) const;

    /** The node group covering @p node_nm (nearest when outside). */
    const TdpGroup &groupFor(double node_nm) const;

    /** All node groups, newest first. */
    const std::vector<TdpGroup> &groups() const { return groups_; }

    /** Area-fit coefficient (canonically 4.99e9). */
    double areaCoeff() const { return area_coeff_; }

    /** Area-fit exponent (canonically 0.877). */
    double areaExponent() const { return area_exponent_; }

  private:
    double area_coeff_;
    double area_exponent_;
    std::vector<TdpGroup> groups_;
};

/**
 * Re-derive the Figure 3b regression from a corpus: power-law fit of
 * transistor count against density factor. Records lacking a disclosed
 * transistor count are skipped. Fails recoverably (with an actionable
 * count summary) when fewer than two usable records remain, or when
 * the `fit` fault-injection site fires.
 */
Result<stats::PowerLawFit> fitAreaModelChecked(
    const std::vector<ChipRecord> &corpus);

/**
 * Re-derive one Figure 3c regression from a corpus: power-law fit of
 * transistors[1e9]*freq[GHz] against TDP over records whose node falls in
 * [min_node_nm, max_node_nm]. Recoverable-failure semantics match
 * fitAreaModelChecked().
 */
Result<stats::PowerLawFit> fitTdpModelChecked(
    const std::vector<ChipRecord> &corpus, double min_node_nm,
    double max_node_nm);

/** Boundary adaptor for fitAreaModelChecked(): fatal() on error. */
stats::PowerLawFit fitAreaModel(const std::vector<ChipRecord> &corpus);

/** Boundary adaptor for fitTdpModelChecked(): fatal() on error. */
stats::PowerLawFit fitTdpModel(const std::vector<ChipRecord> &corpus,
                               double min_node_nm, double max_node_nm);

} // namespace accelwall::chipdb

#endif // ACCELWALL_CHIPDB_BUDGET_HH
