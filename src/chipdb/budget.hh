/**
 * @file
 * Transistor-budget models (Section III, Figures 3b and 3c).
 *
 * Two independent caps on the number of usable transistors:
 *
 *  1. Area budget (Fig. 3b): the datasheet fit
 *         TC(D) = 4.99e9 * D^0.877,  D = area / node²  [mm²/nm²]
 *     Sub-linear in D because large chips are harder to fully utilize.
 *
 *  2. Power budget (Fig. 3c): per node-group fits of
 *         transistors[1e9] * freq[GHz] = k * TDP^e
 *     Post-Dennard power density limits the fraction of transistors that
 *     can switch within a TDP envelope; newer groups have larger k
 *     (more devices per watt) but smaller e (the envelope saturates
 *     faster).
 *
 * Both canonical parameter sets are the paper's published fits; the same
 * regressions can be re-derived from a corpus via fitAreaModel() /
 * fitTdpModel() (exercised on the synthetic corpus, see synth.hh).
 */

#ifndef ACCELWALL_CHIPDB_BUDGET_HH
#define ACCELWALL_CHIPDB_BUDGET_HH

#include <string>
#include <vector>

#include "chipdb/record.hh"
#include "stats/fits.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace accelwall::chipdb
{

/** One TDP-envelope node group of Figure 3c. */
struct TdpGroup
{
    /** Inclusive node range covered (newest..oldest). */
    units::Nanometers min_node_nm{0.0};
    units::Nanometers max_node_nm{0.0};
    /** Fit: transistors[1e9] * freq[GHz] = coeff * TDP^exponent. */
    double coeff = 0.0;
    double exponent = 0.0;
    /** Display label, e.g. "10nm-5nm". */
    std::string label;
};

/**
 * The combined transistor-budget model.
 */
class BudgetModel
{
  public:
    /** Construct with the paper's canonical fit parameters. */
    BudgetModel();

    /** Construct with explicit area-fit parameters (e.g. re-fit). */
    BudgetModel(double area_coeff, double area_exponent);

    /**
     * Construct with explicit area-fit parameters and TDP groups. The
     * model linter's corrupted fixtures use this; it performs no
     * validation beyond coefficient positivity — validating the groups
     * is the linter's job (rules M007/M008).
     */
    BudgetModel(double area_coeff, double area_exponent,
                std::vector<TdpGroup> groups);

    /**
     * Density factor D = area/node². The result keeps its mm²/nm²
     * scale in the type: feed it to the Fig. 3b power law only through
     * .raw() (the fit coefficient 4.99e9 is calibrated to exactly that
     * unit).
     */
    static units::DensityFactor densityFactor(units::SquareMillimeters area,
                                              units::Nanometers node);

    /**
     * Area-budget transistor count for a die of @p area at @p node
     * (Fig. 3b curve).
     */
    units::TransistorCount areaTransistors(units::SquareMillimeters area,
                                           units::Nanometers node) const;

    /**
     * Invert the area budget: die area needed to hold @p transistors at
     * @p node.
     */
    units::SquareMillimeters areaForTransistors(
        units::TransistorCount transistors, units::Nanometers node) const;

    /**
     * Power-budget transistor-gigahertz product for @p tdp at @p node
     * (Fig. 3c curves).
     */
    units::TransistorGigahertz tdpTransistorGhz(
        units::Watts tdp, units::Nanometers node) const;

    /**
     * Power-budget active transistor count at @p freq.
     */
    units::TransistorCount tdpTransistors(units::Watts tdp,
                                          units::Nanometers node,
                                          units::Gigahertz freq) const;

    /** The node group covering @p node (nearest when outside). */
    const TdpGroup &groupFor(units::Nanometers node) const;

    /** All node groups, newest first. */
    const std::vector<TdpGroup> &groups() const { return groups_; }

    /** Area-fit coefficient (canonically 4.99e9). */
    double areaCoeff() const { return area_coeff_; }

    /** Area-fit exponent (canonically 0.877). */
    double areaExponent() const { return area_exponent_; }

  private:
    double area_coeff_;
    double area_exponent_;
    std::vector<TdpGroup> groups_;
};

/**
 * Re-derive the Figure 3b regression from a corpus: power-law fit of
 * transistor count against density factor. Records lacking a disclosed
 * transistor count are skipped. Fails recoverably (with an actionable
 * count summary) when fewer than two usable records remain, or when
 * the `fit` fault-injection site fires.
 */
Result<stats::PowerLawFit> fitAreaModelChecked(
    const std::vector<ChipRecord> &corpus);

/**
 * Re-derive one Figure 3c regression from a corpus: power-law fit of
 * transistors[1e9]*freq[GHz] against TDP over records whose node falls in
 * [min_node_nm, max_node_nm]. Recoverable-failure semantics match
 * fitAreaModelChecked().
 */
Result<stats::PowerLawFit> fitTdpModelChecked(
    const std::vector<ChipRecord> &corpus, units::Nanometers min_node_nm,
    units::Nanometers max_node_nm);

/** Boundary adaptor for fitAreaModelChecked(): fatal() on error. */
stats::PowerLawFit fitAreaModel(const std::vector<ChipRecord> &corpus);

/** Boundary adaptor for fitTdpModelChecked(): fatal() on error. */
stats::PowerLawFit fitTdpModel(const std::vector<ChipRecord> &corpus,
                               units::Nanometers min_node_nm,
                               units::Nanometers max_node_nm);

} // namespace accelwall::chipdb

#endif // ACCELWALL_CHIPDB_BUDGET_HH
