/**
 * @file
 * Quarantine-and-continue datasheet ingestion.
 *
 * The paper's transistor-budget fits (Section III) run over ~2600
 * scraped CPU/GPU datasheet records; at that scale a handful of
 * malformed rows (non-positive area/TDP/node, NaN, arity mismatch,
 * unparseable numbers) is the norm, and one bad row must not abort the
 * run. Ingestion therefore diagnoses, counts, and skips bad records —
 * each quarantined row becomes an IngestIssue in a structured report —
 * and the downstream fits proceed as long as enough records survive.
 *
 * The `ingest-record` fault-injection site (util/faultinject.hh) is
 * compiled into both entry points, keyed by the record's 0-based
 * index, so tests can kill arbitrary record subsets and assert the
 * report stays exact.
 */

#ifndef ACCELWALL_CHIPDB_INGEST_HH
#define ACCELWALL_CHIPDB_INGEST_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "chipdb/record.hh"
#include "util/error.hh"

namespace accelwall::chipdb
{

/** One quarantined record: where it was, what it was, why it failed. */
struct IngestIssue
{
    /** 0-based record index (CSV: data-row index, header excluded). */
    std::size_t row = 0;
    /** The record's name field, when one was readable. */
    std::string name;
    Error error;
};

/** Structured outcome of one ingestion pass. */
struct IngestReport
{
    /** Detailed issues are capped; counts are always exact. */
    static constexpr std::size_t kMaxDetailedIssues = 20;

    std::size_t total = 0;
    std::size_t accepted = 0;
    std::size_t quarantined = 0;
    /** First kMaxDetailedIssues issues, in record order. */
    std::vector<IngestIssue> issues;
    /** Exact per-error-code quarantine counts (keyed by code value). */
    std::map<int, std::size_t> code_counts;

    /** Record one quarantined row. */
    void addIssue(std::size_t row, std::string name, Error error);

    /** One-line digest, e.g. "2592/2613 records ok, 21 quarantined
     *  (E2003 x 12, E1003 x 9)". */
    std::string summary() const;
};

/**
 * Validate one datasheet record: finite numbers, positive node/area,
 * positive TDP and frequency when disclosed, sane year. A transistor
 * count of 0 means "undisclosed" and is accepted (the fits skip it).
 */
Result<void> validateRecord(const ChipRecord &rec);

/**
 * Filter @p records through validateRecord (plus the `ingest-record`
 * fault site), appending failures to @p report and returning the
 * survivors in input order.
 */
std::vector<ChipRecord> quarantineRecords(
    const std::vector<ChipRecord> &records, IngestReport &report);

/**
 * Parse a datasheet CSV into validated ChipRecords.
 *
 * Required header columns: name, platform, year, node_nm, area_mm2,
 * freq_mhz, tdp_w; `transistors` is optional (absent or empty fields
 * mean undisclosed). Structural problems with the file itself (CSV
 * syntax, missing required columns, no data rows) fail the whole
 * parse; per-row problems (arity mismatch, unparseable numbers,
 * validation failures) quarantine only that row.
 */
Result<std::vector<ChipRecord>> parseChipCsv(const std::string &text,
                                             IngestReport &report);

} // namespace accelwall::chipdb

#endif // ACCELWALL_CHIPDB_INGEST_HH
