#include "chipdb/budget.hh"

#include <cmath>

#include "util/faultinject.hh"
#include "util/logging.hh"

namespace accelwall::chipdb
{

const char *
platformName(Platform platform)
{
    switch (platform) {
      case Platform::CPU: return "CPU";
      case Platform::GPU: return "GPU";
      case Platform::FPGA: return "FPGA";
      case Platform::ASIC: return "ASIC";
    }
    return "?";
}

BudgetModel::BudgetModel()
    : BudgetModel(4.99e9, 0.877)
{
}

BudgetModel::BudgetModel(double area_coeff, double area_exponent)
    : area_coeff_(area_coeff), area_exponent_(area_exponent)
{
    if (area_coeff_ <= 0.0)
        fatal("BudgetModel: area coefficient must be positive");

    // Figure 3c's four published node-group fits, plus one extrapolated
    // legacy group so the pre-65nm case-study chips (video decoders,
    // early Bitcoin miners) resolve. Legacy parameters are chosen to
    // continue the coefficient/exponent progression and to land near
    // real datapoints (e.g. a 90nm Athlon 64: ~0.1e9 transistors at
    // 2.4GHz and 89W -> 0.24 B*GHz; the fit gives 0.28).
    groups_ = {
        { 5.0, 10.0, 2.15, 0.402, "10nm-5nm" },
        { 12.0, 22.0, 0.49, 0.557, "22nm-12nm" },
        { 28.0, 32.0, 0.11, 0.729, "32nm-28nm" },
        { 40.0, 55.0, 0.02, 0.869, "55nm-40nm" },
        { 65.0, 250.0, 0.004, 0.95, "250nm-65nm (extrapolated)" },
    };
}

double
BudgetModel::densityFactor(double area_mm2, double node_nm)
{
    if (area_mm2 <= 0.0 || node_nm <= 0.0)
        fatal("densityFactor: area and node must be positive");
    return area_mm2 / (node_nm * node_nm);
}

double
BudgetModel::areaTransistors(double area_mm2, double node_nm) const
{
    double d = densityFactor(area_mm2, node_nm);
    return area_coeff_ * std::pow(d, area_exponent_);
}

double
BudgetModel::areaForTransistors(double transistors, double node_nm) const
{
    if (transistors <= 0.0)
        fatal("areaForTransistors: transistor count must be positive");
    double d = std::pow(transistors / area_coeff_, 1.0 / area_exponent_);
    return d * node_nm * node_nm;
}

const TdpGroup &
BudgetModel::groupFor(double node_nm) const
{
    for (const auto &g : groups_) {
        if (node_nm >= g.min_node_nm && node_nm <= g.max_node_nm)
            return g;
    }
    // Nodes between group boundaries (e.g. 25nm) or beyond the table:
    // pick the group whose geometric centre is closest in log space.
    const TdpGroup *best = &groups_.front();
    double best_dist = 1e300;
    for (const auto &g : groups_) {
        double centre =
            0.5 * (std::log(g.min_node_nm) + std::log(g.max_node_nm));
        double dist = std::fabs(centre - std::log(node_nm));
        if (dist < best_dist) {
            best_dist = dist;
            best = &g;
        }
    }
    return *best;
}

double
BudgetModel::tdpTransistorGhz(double tdp_w, double node_nm) const
{
    if (tdp_w <= 0.0)
        fatal("tdpTransistorGhz: TDP must be positive");
    const TdpGroup &g = groupFor(node_nm);
    return g.coeff * std::pow(tdp_w, g.exponent) * 1e9;
}

double
BudgetModel::tdpTransistors(double tdp_w, double node_nm,
                            double freq_ghz) const
{
    if (freq_ghz <= 0.0)
        fatal("tdpTransistors: frequency must be positive");
    return tdpTransistorGhz(tdp_w, node_nm) / freq_ghz;
}

Result<stats::PowerLawFit>
fitAreaModelChecked(const std::vector<ChipRecord> &corpus)
{
    if (util::FaultPlan::global().shouldFailCounted("fit"))
        return util::injectedFault("fit", 0);
    std::vector<double> d, tc;
    for (const auto &rec : corpus) {
        if (rec.transistors <= 0.0)
            continue;
        d.push_back(BudgetModel::densityFactor(rec.area_mm2, rec.node_nm));
        tc.push_back(rec.transistors);
    }
    if (d.size() < 2) {
        return makeError(
            ErrorCode::FitTooFewRecords,
            "fitAreaModel: corpus has fewer than two usable records (",
            d.size(), " of ", corpus.size(),
            " disclose a transistor count); ingest more records or "
            "check the quarantine report");
    }
    return stats::fitPowerLaw(d, tc);
}

Result<stats::PowerLawFit>
fitTdpModelChecked(const std::vector<ChipRecord> &corpus,
                   double min_node_nm, double max_node_nm)
{
    if (util::FaultPlan::global().shouldFailCounted("fit"))
        return util::injectedFault("fit", 0);
    std::vector<double> tdp, tghz;
    for (const auto &rec : corpus) {
        if (rec.transistors <= 0.0 || rec.tdp_w <= 0.0)
            continue;
        if (rec.node_nm < min_node_nm || rec.node_nm > max_node_nm)
            continue;
        tdp.push_back(rec.tdp_w);
        tghz.push_back(rec.transistors / 1e9 * rec.freq_mhz / 1e3);
    }
    if (tdp.size() < 2) {
        return makeError(
            ErrorCode::FitTooFewRecords,
            "fitTdpModel: fewer than two records in node range [",
            min_node_nm, ", ", max_node_nm, "] (", tdp.size(), " of ",
            corpus.size(),
            " usable); widen the range or ingest more records");
    }
    return stats::fitPowerLaw(tdp, tghz);
}

stats::PowerLawFit
fitAreaModel(const std::vector<ChipRecord> &corpus)
{
    auto fit = fitAreaModelChecked(corpus);
    if (!fit.ok())
        fatal(fit.error().str());
    return fit.value();
}

stats::PowerLawFit
fitTdpModel(const std::vector<ChipRecord> &corpus, double min_node_nm,
            double max_node_nm)
{
    auto fit = fitTdpModelChecked(corpus, min_node_nm, max_node_nm);
    if (!fit.ok())
        fatal(fit.error().str());
    return fit.value();
}

} // namespace accelwall::chipdb
