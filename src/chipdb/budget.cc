#include "chipdb/budget.hh"

#include <cmath>

#include "util/faultinject.hh"
#include "util/logging.hh"

namespace accelwall::chipdb
{

using units::DensityFactor;
using units::Gigahertz;
using units::Nanometers;
using units::SquareMillimeters;
using units::TransistorCount;
using units::TransistorGigahertz;
using units::Watts;

const char *
platformName(Platform platform)
{
    switch (platform) {
      case Platform::CPU: return "CPU";
      case Platform::GPU: return "GPU";
      case Platform::FPGA: return "FPGA";
      case Platform::ASIC: return "ASIC";
    }
    return "?";
}

BudgetModel::BudgetModel()
    : BudgetModel(4.99e9, 0.877)
{
}

BudgetModel::BudgetModel(double area_coeff, double area_exponent,
                         std::vector<TdpGroup> groups)
    : area_coeff_(area_coeff), area_exponent_(area_exponent),
      groups_(std::move(groups))
{
    if (area_coeff_ <= 0.0)
        fatal("BudgetModel: area coefficient must be positive");
    if (groups_.empty())
        fatal("BudgetModel: need at least one TDP group");
}

BudgetModel::BudgetModel(double area_coeff, double area_exponent)
    : area_coeff_(area_coeff), area_exponent_(area_exponent)
{
    if (area_coeff_ <= 0.0)
        fatal("BudgetModel: area coefficient must be positive");

    // Figure 3c's four published node-group fits, plus one extrapolated
    // legacy group so the pre-65nm case-study chips (video decoders,
    // early Bitcoin miners) resolve. Legacy parameters are chosen to
    // continue the coefficient/exponent progression and to land near
    // real datapoints (e.g. a 90nm Athlon 64: ~0.1e9 transistors at
    // 2.4GHz and 89W -> 0.24 B*GHz; the fit gives 0.28).
    groups_ = {
        { Nanometers{5.0}, Nanometers{10.0}, 2.15, 0.402, "10nm-5nm" },
        { Nanometers{12.0}, Nanometers{22.0}, 0.49, 0.557, "22nm-12nm" },
        { Nanometers{28.0}, Nanometers{32.0}, 0.11, 0.729, "32nm-28nm" },
        { Nanometers{40.0}, Nanometers{55.0}, 0.02, 0.869, "55nm-40nm" },
        { Nanometers{65.0}, Nanometers{250.0}, 0.004, 0.95,
          "250nm-65nm (extrapolated)" },
    };
}

DensityFactor
BudgetModel::densityFactor(SquareMillimeters area, Nanometers node)
{
    if (area <= SquareMillimeters{0.0} || node <= Nanometers{0.0})
        fatal("densityFactor: area and node must be positive");
    return area / (node * node);
}

TransistorCount
BudgetModel::areaTransistors(SquareMillimeters area, Nanometers node) const
{
    // Escape hatch: TC(D) = c * D^e is a power-law fit calibrated to D
    // in mm²/nm²; non-integer exponents have no dimensional algebra.
    double d = densityFactor(area, node).raw();
    return TransistorCount{area_coeff_ * std::pow(d, area_exponent_)};
}

SquareMillimeters
BudgetModel::areaForTransistors(TransistorCount transistors,
                                Nanometers node) const
{
    if (transistors <= TransistorCount{0.0})
        fatal("areaForTransistors: transistor count must be positive");
    double d = std::pow(transistors.raw() / area_coeff_,
                        1.0 / area_exponent_);
    return DensityFactor{d} * (node * node);
}

const TdpGroup &
BudgetModel::groupFor(Nanometers node) const
{
    for (const auto &g : groups_) {
        if (node >= g.min_node_nm && node <= g.max_node_nm)
            return g;
    }
    // Nodes between group boundaries (e.g. 25nm) or beyond the table:
    // pick the group whose geometric centre is closest in log space.
    const TdpGroup *best = &groups_.front();
    double best_dist = 1e300;
    for (const auto &g : groups_) {
        double centre = 0.5 * (std::log(g.min_node_nm.raw()) +
                               std::log(g.max_node_nm.raw()));
        double dist = std::fabs(centre - std::log(node.raw()));
        if (dist < best_dist) {
            best_dist = dist;
            best = &g;
        }
    }
    return *best;
}

TransistorGigahertz
BudgetModel::tdpTransistorGhz(Watts tdp, Nanometers node) const
{
    if (tdp <= Watts{0.0})
        fatal("tdpTransistorGhz: TDP must be positive");
    // Escape hatch: the Fig. 3c fits are power laws of TDP in watts
    // yielding billions of transistor-GHz.
    const TdpGroup &g = groupFor(node);
    return TransistorGigahertz{g.coeff * std::pow(tdp.raw(), g.exponent) *
                               1e9};
}

TransistorCount
BudgetModel::tdpTransistors(Watts tdp, Nanometers node,
                            Gigahertz freq) const
{
    if (freq <= Gigahertz{0.0})
        fatal("tdpTransistors: frequency must be positive");
    return tdpTransistorGhz(tdp, node) / freq;
}

Result<stats::PowerLawFit>
fitAreaModelChecked(const std::vector<ChipRecord> &corpus)
{
    if (util::FaultPlan::global().shouldFailCounted("fit"))
        return util::injectedFault("fit", 0);
    // Fit boundary: the log-log regression consumes raw magnitudes in
    // the fit's calibration units (D in mm²/nm², TC in transistors).
    std::vector<double> d, tc;
    for (const auto &rec : corpus) {
        if (rec.transistors <= 0.0)
            continue;
        d.push_back(
            BudgetModel::densityFactor(rec.area(), rec.node()).raw());
        tc.push_back(rec.tc().raw());
    }
    if (d.size() < 2) {
        return makeError(
            ErrorCode::FitTooFewRecords,
            "fitAreaModel: corpus has fewer than two usable records (",
            d.size(), " of ", corpus.size(),
            " disclose a transistor count); ingest more records or "
            "check the quarantine report");
    }
    return stats::fitPowerLaw(d, tc);
}

Result<stats::PowerLawFit>
fitTdpModelChecked(const std::vector<ChipRecord> &corpus,
                   Nanometers min_node_nm, Nanometers max_node_nm)
{
    if (util::FaultPlan::global().shouldFailCounted("fit"))
        return util::injectedFault("fit", 0);
    std::vector<double> tdp, tghz;
    for (const auto &rec : corpus) {
        if (rec.transistors <= 0.0 || rec.tdp_w <= 0.0)
            continue;
        if (rec.node() < min_node_nm || rec.node() > max_node_nm)
            continue;
        // Fit boundary: y is in billions of transistor-GHz, with the
        // MHz -> GHz conversion made explicit by the unit types.
        tdp.push_back(rec.tdp().raw());
        Gigahertz freq = units::unit_cast<Gigahertz>(rec.freq());
        tghz.push_back((rec.tc() * freq).raw() / 1e9);
    }
    if (tdp.size() < 2) {
        return makeError(
            ErrorCode::FitTooFewRecords,
            "fitTdpModel: fewer than two records in node range [",
            min_node_nm, ", ", max_node_nm, "] (", tdp.size(), " of ",
            corpus.size(),
            " usable); widen the range or ingest more records");
    }
    return stats::fitPowerLaw(tdp, tghz);
}

stats::PowerLawFit
fitAreaModel(const std::vector<ChipRecord> &corpus)
{
    auto fit = fitAreaModelChecked(corpus);
    if (!fit.ok())
        fatal(fit.error().str());
    return fit.value();
}

stats::PowerLawFit
fitTdpModel(const std::vector<ChipRecord> &corpus, Nanometers min_node_nm,
            Nanometers max_node_nm)
{
    auto fit = fitTdpModelChecked(corpus, min_node_nm, max_node_nm);
    if (!fit.ok())
        fatal(fit.error().str());
    return fit.value();
}

} // namespace accelwall::chipdb
