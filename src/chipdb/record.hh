/**
 * @file
 * Datasheet record types. The paper's CMOS potential model is constructed
 * from datasheets of 1612 CPUs and 1001 GPUs (CPU DB / TechPowerUp); this
 * struct holds the fields those fits consume.
 */

#ifndef ACCELWALL_CHIPDB_RECORD_HH
#define ACCELWALL_CHIPDB_RECORD_HH

#include <string>

#include "util/units.hh"

namespace accelwall::chipdb
{

/** Broad platform classes used across the paper's case studies. */
enum class Platform
{
    CPU,
    GPU,
    FPGA,
    ASIC,
};

/** Human-readable platform name ("CPU", "GPU", ...). */
const char *platformName(Platform platform);

/**
 * One chip datasheet entry.
 *
 * The fields are raw doubles: this struct is the ingest boundary, and
 * CSV data arrives untyped (parse, then validate, then quarantine).
 * Everything downstream of validation should enter the dimensional
 * domain through the typed accessors below rather than reading the
 * raw fields — the budget fits and model-lint audits do.
 */
struct ChipRecord
{
    std::string name;
    Platform platform = Platform::CPU;
    /** Introduction year (fractional years encode quarters). */
    double year = 0.0;
    /** CMOS feature size in nanometres. */
    double node_nm = 0.0;
    /** Die area in mm². */
    double area_mm2 = 0.0;
    /** Transistor count (0 when the datasheet does not disclose it). */
    double transistors = 0.0;
    /** Nominal clock in MHz. */
    double freq_mhz = 0.0;
    /** Thermal design power in watts. */
    double tdp_w = 0.0;

    /** Typed view of node_nm. */
    units::Nanometers node() const { return units::Nanometers{node_nm}; }
    /** Typed view of area_mm2. */
    units::SquareMillimeters area() const
    {
        return units::SquareMillimeters{area_mm2};
    }
    /** Typed view of freq_mhz. */
    units::Megahertz freq() const { return units::Megahertz{freq_mhz}; }
    /** Typed view of tdp_w. */
    units::Watts tdp() const { return units::Watts{tdp_w}; }
    /** Typed view of transistors. */
    units::TransistorCount tc() const
    {
        return units::TransistorCount{transistors};
    }
};

} // namespace accelwall::chipdb

#endif // ACCELWALL_CHIPDB_RECORD_HH
