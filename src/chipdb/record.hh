/**
 * @file
 * Datasheet record types. The paper's CMOS potential model is constructed
 * from datasheets of 1612 CPUs and 1001 GPUs (CPU DB / TechPowerUp); this
 * struct holds the fields those fits consume.
 */

#ifndef ACCELWALL_CHIPDB_RECORD_HH
#define ACCELWALL_CHIPDB_RECORD_HH

#include <string>

namespace accelwall::chipdb
{

/** Broad platform classes used across the paper's case studies. */
enum class Platform
{
    CPU,
    GPU,
    FPGA,
    ASIC,
};

/** Human-readable platform name ("CPU", "GPU", ...). */
const char *platformName(Platform platform);

/** One chip datasheet entry. */
struct ChipRecord
{
    std::string name;
    Platform platform = Platform::CPU;
    /** Introduction year (fractional years encode quarters). */
    double year = 0.0;
    /** CMOS feature size in nanometres. */
    double node_nm = 0.0;
    /** Die area in mm². */
    double area_mm2 = 0.0;
    /** Transistor count (0 when the datasheet does not disclose it). */
    double transistors = 0.0;
    /** Nominal clock in MHz. */
    double freq_mhz = 0.0;
    /** Thermal design power in watts. */
    double tdp_w = 0.0;
};

} // namespace accelwall::chipdb

#endif // ACCELWALL_CHIPDB_RECORD_HH
