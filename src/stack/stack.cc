#include "stack/stack.hh"

#include <cmath>

#include "util/logging.hh"

namespace accelwall::stack
{

const char *
layerName(Layer layer)
{
    switch (layer) {
      case Layer::Algorithm: return "algorithm";
      case Layer::Framework: return "framework";
      case Layer::Platform: return "platform";
      case Layer::Engineering: return "engineering";
      case Layer::Physical: return "physical";
    }
    return "?";
}

Breakdown
attributeStack(const std::vector<Step> &steps,
               const potential::PotentialModel &model,
               csr::Metric metric)
{
    if (steps.size() < 2)
        fatal("attributeStack: need at least two steps");

    Breakdown out;
    std::map<Layer, double> log_share;

    for (std::size_t i = 1; i < steps.size(); ++i) {
        const auto &prev = steps[i - 1].chip;
        const auto &cur = steps[i].chip;
        if (prev.gain <= 0.0 || cur.gain <= 0.0)
            fatal("attributeStack: gains must be positive");

        double log_gain = std::log(cur.gain / prev.gain);
        double csr_ratio = csr::csrRatio(cur, prev, model, metric);
        double log_csr = std::log(csr_ratio);
        double log_phy = log_gain - log_csr;

        log_share[Layer::Physical] += log_phy;

        const auto &changed = steps[i].changed;
        for (Layer layer : changed) {
            if (layer == Layer::Physical)
                fatal("attributeStack: Physical is derived, not "
                      "annotated");
        }
        if (changed.empty()) {
            log_share[Layer::Engineering] += log_csr;
        } else {
            double split = log_csr / static_cast<double>(changed.size());
            for (Layer layer : changed)
                log_share[layer] += split;
        }
    }

    out.total_gain = steps.back().chip.gain / steps.front().chip.gain;
    double log_total = std::log(out.total_gain);
    for (auto &[layer, value] : log_share) {
        out.share[layer] =
            log_total != 0.0 ? value / log_total : 0.0;
    }
    return out;
}

} // namespace accelwall::stack
