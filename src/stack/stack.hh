/**
 * @file
 * The specialization stack (Section II, Figure 2).
 *
 * "The gain ... depends on the layers that are not fixed, i.e.,
 * Algorithm (Alg), Framework (Fwk), Platform (Plt), Engineering (Eng),
 * and Physical (Phy)."
 *
 * Given a chip series where each generational step is annotated with
 * the stack layers that changed (a new platform, a new compiler, an
 * algorithmic rewrite...), this module splits the series' cumulative
 * log-gain between the physical layer (via the potential model) and
 * the annotated specialization layers — turning Figure 2 from a
 * taxonomy into an attribution.
 */

#ifndef ACCELWALL_STACK_STACK_HH
#define ACCELWALL_STACK_STACK_HH

#include <map>
#include <vector>

#include "csr/csr.hh"
#include "potential/model.hh"

namespace accelwall::stack
{

/** The mutable layers of Figure 2's accelerator-centric column. */
enum class Layer
{
    Algorithm,
    Framework,
    Platform,
    Engineering,
    Physical,
};

/** Human-readable layer name. */
const char *layerName(Layer layer);

/**
 * One generational step: the chip and the non-physical layers that
 * changed since the previous chip. An empty list attributes the step's
 * CSR delta to Engineering (the residual design-quality layer).
 */
struct Step
{
    csr::ChipGain chip;
    std::vector<Layer> changed;
};

/** The attribution result. */
struct Breakdown
{
    /** End-to-end gain of the last chip over the first. */
    double total_gain = 1.0;
    /**
     * Share of the total log-gain attributed to each layer. Shares
     * are signed (a layer can regress) and sum to 1 when total_gain
     * exceeds 1.
     */
    std::map<Layer, double> share;
};

/**
 * Attribute a series' gains across the stack. Each step's log-gain is
 * decomposed via Eq. 2 into a physical part (the potential ratio,
 * attributed to Layer::Physical) and a CSR part, split equally among
 * the step's changed layers.
 *
 * @pre at least two steps, positive gains; Layer::Physical must not
 *      appear in any step's changed list (it is derived).
 */
Breakdown attributeStack(const std::vector<Step> &steps,
                         const potential::PotentialModel &model,
                         csr::Metric metric);

} // namespace accelwall::stack

#endif // ACCELWALL_STACK_STACK_HH
