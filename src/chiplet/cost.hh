/**
 * @file
 * Silicon economics for the chiplet design space: per-node wafer
 * prices and defect densities, the negative-binomial yield model, and
 * packaging overheads — everything needed to turn a die area on a
 * process node into a cost per *good*, packaged die.
 *
 * The paper's sweeps are area-normalized but never cost-normalized;
 * Monad-style chiplet analyses show the specialization economics
 * invert once cost enters, because yield falls super-linearly in die
 * area while wafer price rises steeply toward leading nodes. The
 * model here is deliberately the textbook one:
 *
 *   yield(A)        = (1 + A*D0/alpha)^(-alpha)      (negative binomial)
 *   dies_per_wafer  = pi*(d/2)^2/A - pi*d/sqrt(2*A)  (edge-loss corrected)
 *   cost_good_die   = wafer_usd / (dies_per_wafer * yield)
 *   packaged(K)     = K*(cost_good_die/test_yield + bond) + substrate
 *
 * All money flows through units::Usd and defect densities through
 * units::DefectsPerSquareMillimeter, so swapping a wafer price for a
 * defect density (or an area for a node) fails to compile. The
 * sqrt(2A) edge term is dimensionally non-algebraic and uses .raw()
 * per the DESIGN.md §7 escape-hatch policy.
 *
 * Table plausibility (positive prices, monotone trends toward smaller
 * nodes, sane alpha) is machine-checked by modelcheck rules M011-M013.
 */

#ifndef ACCELWALL_CHIPLET_COST_HH
#define ACCELWALL_CHIPLET_COST_HH

#include <vector>

#include "util/error.hh"
#include "util/units.hh"

namespace accelwall::chiplet
{

/** Wafer economics of one process node. */
struct NodeCost
{
    units::Nanometers node_nm{0.0};
    /** Price of one processed 300mm wafer on this node. */
    units::Usd wafer_usd{0.0};
    /** Defect density D0 feeding the negative-binomial yield. */
    units::DefectsPerSquareMillimeter defect_d0{0.0};
};

/** Assembly costs charged once per packaged design. */
struct Packaging
{
    /** Interposer/substrate, charged once per package. */
    units::Usd substrate_usd{2.0};
    /** Bond/attach cost, charged once per die placed. */
    units::Usd bond_usd_per_die{0.5};
    /** Post-bond test yield per die (known-good-die testing). */
    double test_yield = 0.99;
};

/**
 * The full cost table: per-node wafer rows (oldest node first, node_nm
 * strictly descending), the yield-model shape, and packaging.
 */
struct CostTable
{
    std::vector<NodeCost> nodes;
    /** Negative-binomial clustering parameter (defect clustering). */
    double alpha = 3.0;
    /** Wafer diameter; 300mm is the industry standard. */
    units::Millimeters wafer_diameter{300.0};
    Packaging packaging;
};

/**
 * The shipped table: 45nm..5nm wafer prices and defect densities in
 * the range public foundry analyses quote. Audited by M011-M013.
 */
const CostTable &shippedCostTable();

/** Row lookup by exact node; nullptr when the node is not tabulated. */
const NodeCost *findNode(const CostTable &table,
                         units::Nanometers node_nm);

/**
 * Negative-binomial die yield in (0, 1]:
 * (1 + A*D0/alpha)^(-alpha).
 */
double dieYield(units::SquareMillimeters area,
                units::DefectsPerSquareMillimeter defect_d0,
                double alpha);

/**
 * Gross dies per wafer with the standard edge-loss correction.
 * Returns 0 when the die does not fit the wafer at all.
 */
double diesPerWafer(units::SquareMillimeters area,
                    units::Millimeters wafer_diameter);

/**
 * Wafer price amortized over good dies:
 * wafer_usd / (dies_per_wafer * yield).
 *
 * Errors: E4201 chiplet-unknown-node when @p node_nm has no table
 * row; E4202 chiplet-die-too-large when the die exceeds the wafer.
 */
Result<units::Usd> costPerGoodDie(const CostTable &table,
                                  units::Nanometers node_nm,
                                  units::SquareMillimeters die_area);

/**
 * Total silicon + assembly cost of a K-die package where every die
 * has area @p die_area on node @p node_nm: K good dies (derated by
 * the post-bond test yield), K bond charges, one substrate.
 */
Result<units::Usd> packagedCost(const CostTable &table,
                                units::Nanometers node_nm,
                                units::SquareMillimeters die_area,
                                int dies);

} // namespace accelwall::chiplet

#endif // ACCELWALL_CHIPLET_COST_HH
