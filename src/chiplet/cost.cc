#include "chiplet/cost.hh"

#include <cmath>

namespace accelwall::chiplet
{

const CostTable &
shippedCostTable()
{
    using units::DefectsPerSquareMillimeter;
    using units::Nanometers;
    using units::Usd;
    // Wafer prices and defect densities in the range public foundry
    // cost analyses quote: prices climb steeply toward leading nodes
    // while D0 creeps up with process complexity. Oldest node first;
    // M011/M012 pin the ordering and monotonicity.
    static const CostTable table = {
        {
            {Nanometers{45.0}, Usd{1500.0},
             DefectsPerSquareMillimeter{0.0005}},
            {Nanometers{32.0}, Usd{2000.0},
             DefectsPerSquareMillimeter{0.0007}},
            {Nanometers{22.0}, Usd{2500.0},
             DefectsPerSquareMillimeter{0.0010}},
            {Nanometers{14.0}, Usd{3500.0},
             DefectsPerSquareMillimeter{0.0013}},
            {Nanometers{10.0}, Usd{5000.0},
             DefectsPerSquareMillimeter{0.0016}},
            {Nanometers{7.0}, Usd{6500.0},
             DefectsPerSquareMillimeter{0.0020}},
            {Nanometers{5.0}, Usd{9500.0},
             DefectsPerSquareMillimeter{0.0030}},
        },
        /*alpha=*/3.0,
        /*wafer_diameter=*/units::Millimeters{300.0},
        Packaging{},
    };
    return table;
}

const NodeCost *
findNode(const CostTable &table, units::Nanometers node_nm)
{
    for (const NodeCost &row : table.nodes) {
        if (row.node_nm == node_nm)
            return &row;
    }
    return nullptr;
}

double
dieYield(units::SquareMillimeters area,
         units::DefectsPerSquareMillimeter defect_d0, double alpha)
{
    // A*D0 is dimensionless by construction (area * 1/area).
    const double defects = area * defect_d0;
    return std::pow(1.0 + defects / alpha, -alpha);
}

double
diesPerWafer(units::SquareMillimeters area,
             units::Millimeters wafer_diameter)
{
    const double d = wafer_diameter.raw();
    const double a = area.raw();
    // The sqrt(2A) edge-loss term is dimensionally non-algebraic
    // (mm per sqrt-mm²), so this formula runs on raw magnitudes.
    const double pi = 3.14159265358979323846;
    const double gross =
        pi * d * d / (4.0 * a) - pi * d / std::sqrt(2.0 * a);
    return gross > 0.0 ? gross : 0.0;
}

Result<units::Usd>
costPerGoodDie(const CostTable &table, units::Nanometers node_nm,
               units::SquareMillimeters die_area)
{
    const NodeCost *row = findNode(table, node_nm);
    if (row == nullptr) {
        return makeError(ErrorCode::ChipletUnknownNode, "node ",
                         node_nm.raw(),
                         "nm has no wafer-cost table row")
            .in("chiplet-cost");
    }
    const double dies = diesPerWafer(die_area, table.wafer_diameter);
    if (dies < 1.0) {
        return makeError(ErrorCode::ChipletDieTooLarge, "die area ",
                         die_area.raw(),
                         "mm2 does not fit the wafer")
            .in("chiplet-cost");
    }
    const double yield = dieYield(die_area, row->defect_d0, table.alpha);
    return units::Usd{row->wafer_usd.raw() / (dies * yield)};
}

Result<units::Usd>
packagedCost(const CostTable &table, units::Nanometers node_nm,
             units::SquareMillimeters die_area, int dies)
{
    auto good_die = costPerGoodDie(table, node_nm, die_area);
    if (!good_die.ok())
        return good_die.error();
    const Packaging &pkg = table.packaging;
    const units::Usd per_die =
        good_die.value() / pkg.test_yield + pkg.bond_usd_per_die;
    return pkg.substrate_usd + static_cast<double>(dies) * per_die;
}

} // namespace accelwall::chiplet
