#include "chiplet/partition.hh"

#include "util/logging.hh"

namespace accelwall::chiplet
{

namespace
{

/** Aggregate throughput of K identical dies under @p per_die_tdp. */
units::TransistorGigahertz
aggregateThroughput(const potential::PotentialModel &model,
                    const PartitionPlan &plan,
                    units::SquareMillimeters die_area,
                    units::Watts per_die_tdp)
{
    potential::ChipSpec die;
    die.node_nm = plan.node_nm;
    die.area_mm2 = die_area;
    die.freq_ghz = plan.base.freq_ghz;
    die.tdp_w = per_die_tdp;
    return static_cast<double>(plan.chiplets) * model.throughput(die);
}

} // namespace

Result<PartitionResult>
evaluatePartition(const potential::PotentialModel &model,
                  const CostTable &table, const PartitionPlan &plan,
                  const LinkParams &link)
{
    if (plan.chiplets < 1)
        panic("evaluatePartition: chiplets must be >= 1");
    if (plan.base.area_mm2 <= units::SquareMillimeters{0.0})
        panic("evaluatePartition: base area must be positive");

    const double k = static_cast<double>(plan.chiplets);
    const units::SquareMillimeters die_area = plan.base.area_mm2 / k;
    const bool capped = plan.base.tdp_w < potential::kUncappedTdp;

    // Cross-chiplet traffic fraction: uniform all-to-all worst case.
    const double cross_fraction = (k - 1.0) / k;

    // Pass 1: estimate throughput with the TDP split evenly, before
    // any link charge, to size the traffic the links must carry.
    units::Watts per_die_tdp =
        capped ? plan.base.tdp_w / k : potential::kUncappedTdp;
    const units::TransistorGigahertz uncharged =
        aggregateThroughput(model, plan, die_area, per_die_tdp);

    // Traffic scales with aggregate throughput potential: each
    // transistor-GHz emits bits_per_txghz bits, a fraction of which
    // crosses the package. GHz * pJ collapses to a milliwatt-scale
    // power quantity; unit_cast brings it back to watts.
    const units::Gigahertz traffic_rate =
        (uncharged / units::TransistorCount{1.0}) *
        link.bits_per_txghz * cross_fraction;
    const units::Watts link_power =
        units::unit_cast<units::Watts>(traffic_rate * link.pj_per_bit);

    // Pass 2: a power-capped design pays the link energy out of its
    // own envelope before compute gets the remainder. The floor keeps
    // a link-swamped design at ~zero throughput instead of tripping
    // the model's positive-TDP invariant.
    if (capped) {
        units::Watts compute_budget = plan.base.tdp_w - link_power;
        if (compute_budget < units::Watts{1e-9})
            compute_budget = units::Watts{1e-9};
        per_die_tdp = compute_budget / k;
    }
    const units::TransistorGigahertz charged =
        aggregateThroughput(model, plan, die_area, per_die_tdp);

    // Latency derate: ns/hop at the design clock is a plain cycle
    // count; weight it by the traffic fraction that actually hops.
    const double hop_cycles = link.ns_per_hop * plan.base.freq_ghz;
    const double penalty =
        1.0 / (1.0 + cross_fraction * link.latency_weight * hop_cycles);

    auto cost =
        packagedCost(table, plan.node_nm, die_area, plan.chiplets);
    if (!cost.ok())
        return cost.error();

    potential::ChipSpec die;
    die.node_nm = plan.node_nm;
    die.area_mm2 = die_area;
    die.freq_ghz = plan.base.freq_ghz;
    die.tdp_w = per_die_tdp;

    PartitionResult out;
    out.chiplets = plan.chiplets;
    out.node_nm = plan.node_nm;
    out.die_area = die_area;
    out.throughput = charged * penalty;
    out.link_power = link_power;
    out.power = k * model.power(die) + link_power;
    out.latency_penalty = penalty;
    out.cost = cost.value();
    out.throughput_per_usd = out.throughput / out.cost;
    return out;
}

} // namespace accelwall::chiplet
