/**
 * @file
 * The chiplet axis over the design-space sweep: evaluate a base
 * design at every (K chiplets × process node) grid point, fanning out
 * on the ThreadPool, and report cost-normalized gains — delivered
 * throughput per dollar, relative to the K=1 monolith on the base
 * node.
 *
 * Determinism contract: the grid is enumerated in a fixed row-major
 * order (chiplet counts outer, nodes inner) and evaluated with
 * util::parallelMap, whose static chunking writes each point to its
 * own slot — output is bit-identical for every --jobs value.
 *
 * Per-point failures (a node without a cost-table row, a die that
 * does not fit the wafer) do not abort the sweep: the point is
 * reported with ok=false and its stable E-code, mirroring the main
 * sweep's per-chain status column.
 */

#ifndef ACCELWALL_CHIPLET_SWEEP_HH
#define ACCELWALL_CHIPLET_SWEEP_HH

#include <vector>

#include "chiplet/partition.hh"

namespace accelwall::chiplet
{

/** The chiplet sweep grid: a base design × K values × nodes. */
struct SweepConfig
{
    /** The monolithic design every partition is compared against. */
    potential::ChipSpec base;
    /** Chiplet counts to evaluate (must be non-empty, all >= 1). */
    std::vector<int> chiplets;
    /** Process nodes to evaluate (must be non-empty). */
    std::vector<units::Nanometers> nodes;
    LinkParams link;
    /** Worker threads; 0 means util::defaultJobs(). */
    int jobs = 0;
};

/** One evaluated grid point. */
struct SweepPoint
{
    int chiplets = 1;
    units::Nanometers node_nm{0.0};
    bool ok = false;
    /** Stable failure code when !ok (E4201/E4202). */
    ErrorCode error = ErrorCode::None;
    PartitionResult result;
    /** Cost-normalized CSR: throughput/$ relative to the baseline. */
    double gain_per_usd = 0.0;
};

/** The sweep output: every grid point plus the monolithic baseline. */
struct SweepResult
{
    /** K=1 on the base node — the denominator of gain_per_usd. */
    PartitionResult baseline;
    /** Row-major over (chiplets outer, nodes inner), input order. */
    std::vector<SweepPoint> points;
};

/**
 * Run the chiplet sweep. Whole-sweep errors: E4001 for an empty
 * chiplets or nodes dimension, and E4201/E4202 when the *baseline*
 * itself cannot be costed (the relative metric would be undefined).
 */
Result<SweepResult> runSweep(const potential::PotentialModel &model,
                             const CostTable &table,
                             const SweepConfig &config);

} // namespace accelwall::chiplet

#endif // ACCELWALL_CHIPLET_SWEEP_HH
