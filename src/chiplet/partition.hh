/**
 * @file
 * Partitioning a monolithic ChipSpec into K chiplets.
 *
 * The disaggregation trade the chiplet literature describes: splitting
 * a die into K smaller dies buys yield (cost falls super-linearly in
 * die area) and lets the area live on an older, cheaper node — but
 * every transistor-GHz whose producer and consumer land on different
 * chiplets now crosses a package link that charges energy (pJ/bit)
 * and latency (ns/hop). The model here keeps that honest the same way
 * the paper's dark-memory analysis does: link energy is paid out of
 * the design's TDP envelope before compute gets the remainder, and
 * hop latency derates delivered throughput.
 *
 * Policy (DESIGN.md §13):
 *
 *  - A K-way plan splits area evenly; every die runs the base clock.
 *  - The cross-chiplet traffic fraction is f = (K-1)/K — the uniform
 *    all-to-all worst case — and traffic scales with the aggregate
 *    throughput potential via bits_per_txghz.
 *  - Link power = f * throughput * bits_per_txghz * pj_per_bit; it is
 *    subtracted from the TDP before per-die budgets are derived, so a
 *    power-capped design pays for its own disaggregation.
 *  - Latency derates throughput by 1/(1 + f*latency_weight*hop_cycles)
 *    with hop_cycles = ns_per_hop * clock.
 *  - K=1 reduces exactly to the monolith: f=0, no link power, no
 *    latency penalty, one packaged die.
 */

#ifndef ACCELWALL_CHIPLET_PARTITION_HH
#define ACCELWALL_CHIPLET_PARTITION_HH

#include "chiplet/cost.hh"
#include "potential/chip_spec.hh"
#include "potential/model.hh"

namespace accelwall::chiplet
{

/** Inter-chiplet link technology and traffic model. */
struct LinkParams
{
    /** Energy per bit crossing the package (organic ~1-2, UCIe <1). */
    units::Picojoules pj_per_bit{0.5};
    /** One-hop die-to-die latency. */
    units::Nanoseconds ns_per_hop{2.0};
    /**
     * Bits of cross-die traffic generated per transistor-GHz of
     * aggregate throughput. The default puts link power at a few
     * percent of a ~300W envelope for an 8-way split — the regime
     * package-level memory-traffic analyses report.
     */
    double bits_per_txghz = 1e-5;
    /** How strongly hop latency derates delivered throughput. */
    double latency_weight = 0.1;
};

/** One point of the chiplet design space. */
struct PartitionPlan
{
    /** The monolithic design being disaggregated. */
    potential::ChipSpec base;
    /** Number of equal-area chiplets (K=1 is the monolith). */
    int chiplets = 1;
    /** Process node every chiplet is fabbed on (may differ from base). */
    units::Nanometers node_nm{45.0};
};

/** The evaluated economics and physics of one PartitionPlan. */
struct PartitionResult
{
    int chiplets = 1;
    units::Nanometers node_nm{0.0};
    units::SquareMillimeters die_area{0.0};
    /** Delivered aggregate throughput after the latency derate. */
    units::TransistorGigahertz throughput{0.0};
    /** Modeled dissipation of all dies plus the links. */
    units::Watts power{0.0};
    /** The links' share of that dissipation. */
    units::Watts link_power{0.0};
    /** Multiplicative latency derate in (0, 1]. */
    double latency_penalty = 1.0;
    /** Packaged cost: K good dies + bonding + substrate. */
    units::Usd cost{0.0};
    /** The headline metric: delivered throughput per dollar. */
    units::TransistorGigahertzPerUsd throughput_per_usd{0.0};
};

/**
 * Evaluate one partition plan against the potential model and cost
 * table. Errors propagate from the cost layer: E4201 for a node
 * without a table row, E4202 for a die that does not fit the wafer.
 * The plan itself must have chiplets >= 1 and a positive base area;
 * violations are caller bugs and panic.
 */
Result<PartitionResult> evaluatePartition(
    const potential::PotentialModel &model, const CostTable &table,
    const PartitionPlan &plan, const LinkParams &link = {});

} // namespace accelwall::chiplet

#endif // ACCELWALL_CHIPLET_PARTITION_HH
