#include "chiplet/sweep.hh"

#include "util/parallel.hh"

namespace accelwall::chiplet
{

Result<SweepResult>
runSweep(const potential::PotentialModel &model, const CostTable &table,
         const SweepConfig &config)
{
    if (config.chiplets.empty()) {
        return makeError(ErrorCode::SweepEmptyDimension,
                         "chiplet sweep needs at least one chiplet count")
            .in("chiplet-sweep");
    }
    if (config.nodes.empty()) {
        return makeError(ErrorCode::SweepEmptyDimension,
                         "chiplet sweep needs at least one node")
            .in("chiplet-sweep");
    }

    PartitionPlan baseline_plan;
    baseline_plan.base = config.base;
    baseline_plan.chiplets = 1;
    baseline_plan.node_nm = config.base.node_nm;
    auto baseline =
        evaluatePartition(model, table, baseline_plan, config.link);
    if (!baseline.ok())
        return baseline.error();
    const double baseline_per_usd =
        baseline.value().throughput_per_usd.raw();

    std::vector<PartitionPlan> grid;
    grid.reserve(config.chiplets.size() * config.nodes.size());
    for (int k : config.chiplets) {
        for (units::Nanometers node : config.nodes) {
            PartitionPlan plan;
            plan.base = config.base;
            plan.chiplets = k;
            plan.node_nm = node;
            grid.push_back(plan);
        }
    }

    SweepResult out;
    out.baseline = baseline.value();
    out.points = util::parallelMap(
        grid,
        [&](const PartitionPlan &plan) {
            SweepPoint point;
            point.chiplets = plan.chiplets;
            point.node_nm = plan.node_nm;
            auto eval =
                evaluatePartition(model, table, plan, config.link);
            if (!eval.ok()) {
                point.error = eval.error().code();
                return point;
            }
            point.ok = true;
            point.result = eval.value();
            point.gain_per_usd =
                point.result.throughput_per_usd.raw() /
                baseline_per_usd;
            return point;
        },
        config.jobs);
    return out;
}

} // namespace accelwall::chiplet
