/**
 * @file
 * AES-128 block encryption (FIPS 197).
 *
 * Table IV's AES entry models an encryption accelerator; we implement
 * the real cipher so the kernel DFG's operation mix (S-box lookups, GF
 * doubles, XOR folds per round) is grounded in the actual algorithm
 * and so tests can validate against the FIPS-197 vectors.
 */

#ifndef ACCELWALL_CRYPTO_AES_HH
#define ACCELWALL_CRYPTO_AES_HH

#include <array>
#include <cstdint>

namespace accelwall::crypto
{

/** A 16-byte AES block or round key. */
using AesBlock = std::array<std::uint8_t, 16>;

/**
 * AES-128 encryptor: key expansion at construction, then per-block
 * encryption.
 */
class Aes128
{
  public:
    /** Expand the 128-bit key into 11 round keys. */
    explicit Aes128(const AesBlock &key);

    /** Encrypt one 16-byte block. */
    AesBlock encrypt(const AesBlock &plaintext) const;

    /** Number of rounds for a 128-bit key. */
    static constexpr int kRounds = 10;

    /** The forward S-box (exposed for the kernel generator's LUTs). */
    static const std::array<std::uint8_t, 256> &sbox();

    /** GF(2^8) doubling (xtime), the MixColumns primitive. */
    static std::uint8_t xtime(std::uint8_t x);

  private:
    std::array<AesBlock, kRounds + 1> round_keys_;
};

} // namespace accelwall::crypto

#endif // ACCELWALL_CRYPTO_AES_HH
