#include "crypto/aes.hh"

namespace accelwall::crypto
{

namespace
{

/** Build the AES S-box from the GF(2^8) inverse + affine transform. */
std::array<std::uint8_t, 256>
buildSbox()
{
    // Generate via the standard 3-based log/antilog tables.
    std::uint8_t log_table[256] = {};
    std::uint8_t alog[256] = {};
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
        alog[i] = x;
        log_table[x] = static_cast<std::uint8_t>(i);
        // multiply by 3 = x * 2 ^ x
        std::uint8_t x2 = static_cast<std::uint8_t>(
            (x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
        x = static_cast<std::uint8_t>(x2 ^ x);
    }

    std::array<std::uint8_t, 256> sbox{};
    for (int i = 0; i < 256; ++i) {
        // alog has period 255: inverse(x) = alog[(255 - log x) mod 255].
        std::uint8_t inv =
            (i == 0) ? 0 : alog[(255 - log_table[i]) % 255];
        std::uint8_t s = inv;
        std::uint8_t result = inv;
        for (int b = 0; b < 4; ++b) {
            s = static_cast<std::uint8_t>((s << 1) | (s >> 7));
            result ^= s;
        }
        sbox[i] = static_cast<std::uint8_t>(result ^ 0x63);
    }
    return sbox;
}

} // namespace

const std::array<std::uint8_t, 256> &
Aes128::sbox()
{
    static const std::array<std::uint8_t, 256> table = buildSbox();
    return table;
}

std::uint8_t
Aes128::xtime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^
                                     ((x & 0x80) ? 0x1b : 0x00));
}

Aes128::Aes128(const AesBlock &key)
{
    const auto &s = sbox();
    round_keys_[0] = key;

    std::uint8_t rcon = 0x01;
    for (int r = 1; r <= kRounds; ++r) {
        const AesBlock &prev = round_keys_[r - 1];
        AesBlock &rk = round_keys_[r];

        // RotWord + SubWord + Rcon on the previous last word.
        std::uint8_t t0 = static_cast<std::uint8_t>(s[prev[13]] ^ rcon);
        std::uint8_t t1 = s[prev[14]];
        std::uint8_t t2 = s[prev[15]];
        std::uint8_t t3 = s[prev[12]];
        rcon = xtime(rcon);

        rk[0] = static_cast<std::uint8_t>(prev[0] ^ t0);
        rk[1] = static_cast<std::uint8_t>(prev[1] ^ t1);
        rk[2] = static_cast<std::uint8_t>(prev[2] ^ t2);
        rk[3] = static_cast<std::uint8_t>(prev[3] ^ t3);
        for (int i = 4; i < 16; ++i)
            rk[i] = static_cast<std::uint8_t>(prev[i] ^ rk[i - 4]);
    }
}

AesBlock
Aes128::encrypt(const AesBlock &plaintext) const
{
    const auto &s = sbox();
    AesBlock state = plaintext;

    auto add_round_key = [&](int r) {
        for (int i = 0; i < 16; ++i)
            state[i] ^= round_keys_[r][i];
    };

    auto sub_bytes = [&]() {
        for (auto &b : state)
            b = s[b];
    };

    auto shift_rows = [&]() {
        AesBlock out;
        for (int row = 0; row < 4; ++row) {
            for (int col = 0; col < 4; ++col)
                out[row + 4 * col] =
                    state[row + 4 * ((col + row) % 4)];
        }
        state = out;
    };

    auto mix_columns = [&]() {
        for (int col = 0; col < 4; ++col) {
            std::uint8_t *c = &state[4 * col];
            std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
            c[0] = static_cast<std::uint8_t>(xtime(a0) ^ xtime(a1) ^
                                             a1 ^ a2 ^ a3);
            c[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^
                                             xtime(a2) ^ a2 ^ a3);
            c[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^
                                             xtime(a3) ^ a3);
            c[3] = static_cast<std::uint8_t>(xtime(a0) ^ a0 ^ a1 ^
                                             a2 ^ xtime(a3));
        }
    };

    add_round_key(0);
    for (int r = 1; r < kRounds; ++r) {
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(r);
    }
    sub_bytes();
    shift_rows();
    add_round_key(kRounds);
    return state;
}

} // namespace accelwall::crypto
