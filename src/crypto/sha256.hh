/**
 * @file
 * SHA-256 (FIPS 180-4).
 *
 * The Bitcoin case study (Section IV-D) rests on the fixed SHA-256
 * hash: "the growing energy costs and the fact that mining computation
 * relies on a fixed SHA-256 hash function incentivized hardware
 * specialization". We implement the full function so the mining kernel
 * DFG (kernels::makeBtc) is derived from the real round structure and
 * the mining workload generator produces bit-accurate hashes.
 */

#ifndef ACCELWALL_CRYPTO_SHA256_HH
#define ACCELWALL_CRYPTO_SHA256_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace accelwall::crypto
{

/** A 256-bit digest as eight big-endian words. */
using Sha256Digest = std::array<std::uint32_t, 8>;

/**
 * Incremental SHA-256 (FIPS 180-4).
 */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p len bytes. */
    void update(const std::uint8_t *data, std::size_t len);

    /** Convenience overload for byte vectors. */
    void update(const std::vector<std::uint8_t> &data);

    /** Finalize (pad + length) and return the digest. */
    Sha256Digest finish();

    /** One-shot hash of a byte buffer. */
    static Sha256Digest hash(const std::uint8_t *data, std::size_t len);

    /** One-shot hash of a string's bytes. */
    static Sha256Digest hash(const std::string &text);

    /**
     * Bitcoin's double hash: SHA256(SHA256(data)).
     */
    static Sha256Digest doubleHash(const std::uint8_t *data,
                                   std::size_t len);

    /** Number of compression rounds (the mining DFG's row count). */
    static constexpr int kRounds = 64;

  private:
    void compress(const std::uint8_t block[64]);

    std::array<std::uint32_t, 8> state_;
    std::uint64_t total_bytes_ = 0;
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t buffered_ = 0;
    bool finished_ = false;
};

/** Render a digest as lowercase hex (for tests and tools). */
std::string toHex(const Sha256Digest &digest);

/**
 * Evaluate a Bitcoin-style proof-of-work: double-SHA256 an 80-byte
 * header with the given nonce patched into bytes 76..79 (little
 * endian) and count the leading zero bits of the digest.
 */
int mineLeadingZeroBits(std::array<std::uint8_t, 80> header,
                        std::uint32_t nonce);

} // namespace accelwall::crypto

#endif // ACCELWALL_CRYPTO_SHA256_HH
