#include "cmos/scaling.hh"

#include <cmath>

#include "util/logging.hh"

namespace accelwall::cmos
{

namespace
{

/** The node used as the normalization baseline throughout the paper. */
constexpr double kBaselineNode = 45.0;

} // namespace

ScalingTable::ScalingTable()
{
    // Columns: node[nm], VDD[V], gate delay (rel 45nm), capacitance per
    // gate (rel 45nm), leakage power per transistor (rel 45nm).
    //
    // 250..45nm follow classic (near-Dennard) scaling digests; 40..7nm
    // follow Stillmaker & Baas's post-Dennard tables (VDD nearly flat,
    // delay and capacitance improving more slowly); 5nm follows the IRDS
    // 2017 projection the paper adopts. Leakage per transistor falls with
    // device size roughly as (N/45)^1.3: per-area leakage *rises* with
    // density, which is what caps large-chip gains in Figure 3d.
    params_ = {
        { 250.0, 2.50, 6.00, 5.50, 9.20 },
        { 180.0, 1.80, 4.20, 4.00, 6.05 },
        { 130.0, 1.30, 3.00, 2.90, 3.97 },
        { 110.0, 1.20, 2.50, 2.40, 3.20 },
        {  90.0, 1.10, 2.00, 2.00, 2.46 },
        {  65.0, 1.10, 1.40, 1.45, 1.61 },
        {  55.0, 1.05, 1.20, 1.22, 1.30 },
        {  45.0, 1.00, 1.00, 1.00, 1.00 },
        {  40.0, 0.99, 0.94, 0.90, 0.86 },
        {  32.0, 0.95, 0.82, 0.72, 0.64 },
        {  28.0, 0.90, 0.76, 0.63, 0.54 },
        {  22.0, 0.85, 0.67, 0.50, 0.39 },
        {  20.0, 0.85, 0.63, 0.46, 0.35 },
        {  16.0, 0.80, 0.55, 0.37, 0.26 },
        {  14.0, 0.75, 0.52, 0.33, 0.22 },
        {  12.0, 0.75, 0.49, 0.28, 0.18 },
        {  10.0, 0.70, 0.45, 0.24, 0.14 },
        {   7.0, 0.65, 0.40, 0.18, 0.089 },
        {   5.0, 0.60, 0.37, 0.14, 0.057 },
    };
}

const ScalingTable &
ScalingTable::instance()
{
    static const ScalingTable table;
    return table;
}

bool
ScalingTable::has(double node_nm) const
{
    for (const auto &p : params_) {
        if (p.node_nm == node_nm)
            return true;
    }
    return false;
}

const NodeParams &
ScalingTable::at(double node_nm) const
{
    for (const auto &p : params_) {
        if (p.node_nm == node_nm)
            return p;
    }
    fatal("CMOS node ", node_nm, "nm is not tabulated");
}

const NodeParams &
ScalingTable::nearest(double node_nm) const
{
    if (node_nm <= 0.0)
        fatal("CMOS node must be positive, got ", node_nm);
    const NodeParams *best = &params_.front();
    double best_dist = 1e300;
    for (const auto &p : params_) {
        // Compare in log space: 7nm should resolve between 5 and 10
        // geometrically, not arithmetically.
        double dist = std::fabs(std::log(p.node_nm) - std::log(node_nm));
        if (dist < best_dist) {
            best_dist = dist;
            best = &p;
        }
    }
    return *best;
}

std::vector<double>
ScalingTable::nodes() const
{
    std::vector<double> out;
    out.reserve(params_.size());
    for (const auto &p : params_)
        out.push_back(p.node_nm);
    return out;
}

double
ScalingTable::frequencyGain(double node_nm) const
{
    return 1.0 / nearest(node_nm).gate_delay;
}

double
ScalingTable::dynamicEnergy(double node_nm) const
{
    const NodeParams &p = nearest(node_nm);
    const NodeParams &base = at(kBaselineNode);
    double v_rel = p.vdd / base.vdd;
    return p.capacitance * v_rel * v_rel;
}

double
ScalingTable::dynamicPower(double node_nm) const
{
    return dynamicEnergy(node_nm);
}

double
ScalingTable::leakagePower(double node_nm) const
{
    return nearest(node_nm).leakage;
}

double
ScalingTable::vddRel(double node_nm) const
{
    return nearest(node_nm).vdd / at(kBaselineNode).vdd;
}

double
ScalingTable::capacitanceRel(double node_nm) const
{
    return nearest(node_nm).capacitance;
}

double
ScalingTable::gateDelayRel(double node_nm) const
{
    return nearest(node_nm).gate_delay;
}

double
ScalingTable::densityGain(double node_nm) const
{
    double n = nearest(node_nm).node_nm;
    return (kBaselineNode / n) * (kBaselineNode / n);
}

} // namespace accelwall::cmos
