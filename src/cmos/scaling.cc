#include "cmos/scaling.hh"

#include <cmath>
#include <utility>

#include "util/logging.hh"

namespace accelwall::cmos
{

namespace
{

using units::Nanometers;
using units::Volts;

/** The node used as the normalization baseline throughout the paper. */
constexpr Nanometers kBaselineNode{45.0};

} // namespace

ScalingTable::ScalingTable()
{
    // Columns: node, VDD, gate delay (rel 45nm), capacitance per gate
    // (rel 45nm), leakage power per transistor (rel 45nm).
    //
    // 250..45nm follow classic (near-Dennard) scaling digests; 40..7nm
    // follow Stillmaker & Baas's post-Dennard tables (VDD nearly flat,
    // delay and capacitance improving more slowly); 5nm follows the IRDS
    // 2017 projection the paper adopts. Leakage per transistor falls with
    // device size roughly as (N/45)^1.3: per-area leakage *rises* with
    // density, which is what caps large-chip gains in Figure 3d.
    params_ = {
        { Nanometers{250.0}, Volts{2.50}, 6.00, 5.50, 9.20 },
        { Nanometers{180.0}, Volts{1.80}, 4.20, 4.00, 6.05 },
        { Nanometers{130.0}, Volts{1.30}, 3.00, 2.90, 3.97 },
        { Nanometers{110.0}, Volts{1.20}, 2.50, 2.40, 3.20 },
        { Nanometers{ 90.0}, Volts{1.10}, 2.00, 2.00, 2.46 },
        { Nanometers{ 65.0}, Volts{1.10}, 1.40, 1.45, 1.61 },
        { Nanometers{ 55.0}, Volts{1.05}, 1.20, 1.22, 1.30 },
        { Nanometers{ 45.0}, Volts{1.00}, 1.00, 1.00, 1.00 },
        { Nanometers{ 40.0}, Volts{0.99}, 0.94, 0.90, 0.86 },
        { Nanometers{ 32.0}, Volts{0.95}, 0.82, 0.72, 0.64 },
        { Nanometers{ 28.0}, Volts{0.90}, 0.76, 0.63, 0.54 },
        { Nanometers{ 22.0}, Volts{0.85}, 0.67, 0.50, 0.39 },
        { Nanometers{ 20.0}, Volts{0.85}, 0.63, 0.46, 0.35 },
        { Nanometers{ 16.0}, Volts{0.80}, 0.55, 0.37, 0.26 },
        { Nanometers{ 14.0}, Volts{0.75}, 0.52, 0.33, 0.22 },
        { Nanometers{ 12.0}, Volts{0.75}, 0.49, 0.28, 0.18 },
        { Nanometers{ 10.0}, Volts{0.70}, 0.45, 0.24, 0.14 },
        { Nanometers{  7.0}, Volts{0.65}, 0.40, 0.18, 0.089 },
        { Nanometers{  5.0}, Volts{0.60}, 0.37, 0.14, 0.057 },
    };
}

ScalingTable::ScalingTable(std::vector<NodeParams> params)
    : params_(std::move(params))
{
    if (params_.empty())
        fatal("ScalingTable: explicit table must have at least one row");
}

const ScalingTable &
ScalingTable::instance()
{
    static const ScalingTable table;
    return table;
}

bool
ScalingTable::has(Nanometers node) const
{
    for (const auto &p : params_) {
        if (p.node_nm == node)
            return true;
    }
    return false;
}

const NodeParams &
ScalingTable::at(Nanometers node) const
{
    for (const auto &p : params_) {
        if (p.node_nm == node)
            return p;
    }
    fatal("CMOS node ", node, "nm is not tabulated");
}

const NodeParams &
ScalingTable::nearest(Nanometers node) const
{
    if (node <= Nanometers{0.0})
        fatal("CMOS node must be positive, got ", node);
    const NodeParams *best = &params_.front();
    double best_dist = 1e300;
    for (const auto &p : params_) {
        // Compare in log space: 7nm should resolve between 5 and 10
        // geometrically, not arithmetically.
        double dist =
            std::fabs(std::log(p.node_nm.raw()) - std::log(node.raw()));
        if (dist < best_dist) {
            best_dist = dist;
            best = &p;
        }
    }
    return *best;
}

std::vector<Nanometers>
ScalingTable::nodes() const
{
    std::vector<Nanometers> out;
    out.reserve(params_.size());
    for (const auto &p : params_)
        out.push_back(p.node_nm);
    return out;
}

double
ScalingTable::frequencyGain(Nanometers node) const
{
    return 1.0 / nearest(node).gate_delay;
}

double
ScalingTable::dynamicEnergy(Nanometers node) const
{
    const NodeParams &p = nearest(node);
    const NodeParams &base = at(kBaselineNode);
    double v_rel = p.vdd / base.vdd;
    return p.capacitance * v_rel * v_rel;
}

double
ScalingTable::dynamicPower(Nanometers node) const
{
    return dynamicEnergy(node);
}

double
ScalingTable::leakagePower(Nanometers node) const
{
    return nearest(node).leakage;
}

double
ScalingTable::vddRel(Nanometers node) const
{
    return nearest(node).vdd / at(kBaselineNode).vdd;
}

double
ScalingTable::capacitanceRel(Nanometers node) const
{
    return nearest(node).capacitance;
}

double
ScalingTable::gateDelayRel(Nanometers node) const
{
    return nearest(node).gate_delay;
}

double
ScalingTable::densityGain(Nanometers node) const
{
    // The true ratio of two same-unit lengths collapses to a plain
    // double, which is exactly the dimensionless gain Figure 3a plots.
    double rel = kBaselineNode / nearest(node).node_nm;
    return rel * rel;
}

} // namespace accelwall::cmos
