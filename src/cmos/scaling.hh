/**
 * @file
 * CMOS device-scaling model (Section III, Figure 3a).
 *
 * The paper digests the Stillmaker & Baas scaling equations (180nm..7nm)
 * and the IRDS 2017 5nm projections into per-node device factors. We encode
 * the same digest as a static table spanning 250nm..5nm. All relative
 * quantities are normalized to the 45nm node, matching the paper's
 * normalization in Figure 3a and the 45nm baseline of Section VI.
 *
 * Values are approximations reconstructed from the published curves (see
 * DESIGN.md, substitutions table); what matters downstream is the relative
 * progression between nodes, not the absolute third digit.
 *
 * Nodes and supply voltages are dimensional types (util/units.hh):
 * handing the table a die area or a frequency where a node is expected
 * fails to compile. The remaining factors are ratios relative to 45nm
 * and stay plain doubles.
 */

#ifndef ACCELWALL_CMOS_SCALING_HH
#define ACCELWALL_CMOS_SCALING_HH

#include <vector>

#include "util/units.hh"

namespace accelwall::cmos
{

/** Device-level parameters for one CMOS node. */
struct NodeParams
{
    /** Feature size (e.g. 45nm). */
    units::Nanometers node_nm{0.0};
    /** Nominal supply voltage. */
    units::Volts vdd{0.0};
    /** Gate delay relative to 45nm (smaller is faster). */
    double gate_delay = 0.0;
    /** Switched capacitance per gate relative to 45nm. */
    double capacitance = 0.0;
    /** Static (leakage) power per transistor relative to 45nm. */
    double leakage = 0.0;
};

/**
 * The scaling table: per-node device factors plus derived relative
 * quantities. The built-in digest is a process-wide singleton; nodes
 * not in the table are resolved to the nearest tabulated node by
 * nearest(). Explicit tables (tests, the model linter's corrupted
 * fixtures) can be built from a parameter vector.
 */
class ScalingTable
{
  public:
    /** The singleton instance holding the built-in table. */
    static const ScalingTable &instance();

    /** Build a table from explicit rows (model lint / tests). */
    explicit ScalingTable(std::vector<NodeParams> params);

    /** True when @p node is tabulated exactly. */
    bool has(units::Nanometers node) const;

    /** Parameters for an exactly tabulated node; fatal() otherwise. */
    const NodeParams &at(units::Nanometers node) const;

    /** Parameters for the tabulated node closest to @p node. */
    const NodeParams &nearest(units::Nanometers node) const;

    /** All tabulated nodes, descending feature size (oldest first). */
    std::vector<units::Nanometers> nodes() const;

    /** The raw rows, oldest node first (model lint audits these). */
    const std::vector<NodeParams> &params() const { return params_; }

    /**
     * Maximum-frequency gain relative to 45nm: the inverse of relative
     * gate delay.
     */
    double frequencyGain(units::Nanometers node) const;

    /**
     * Dynamic switching energy per operation relative to 45nm:
     * C * VDD^2 with both factors taken relative to the 45nm node.
     */
    double dynamicEnergy(units::Nanometers node) const;

    /**
     * Dynamic power per transistor relative to 45nm at a fixed absolute
     * clock: equals dynamicEnergy() since power = energy * frequency.
     */
    double dynamicPower(units::Nanometers node) const;

    /** Leakage power per transistor relative to 45nm. */
    double leakagePower(units::Nanometers node) const;

    /** Supply voltage relative to 45nm. */
    double vddRel(units::Nanometers node) const;

    /** Switched capacitance per gate relative to 45nm. */
    double capacitanceRel(units::Nanometers node) const;

    /** Relative gate delay (45nm == 1.0). */
    double gateDelayRel(units::Nanometers node) const;

    /**
     * Ideal areal transistor-density gain relative to 45nm: (45/N)^2.
     * The empirically achievable budget is modeled separately in chipdb
     * (Figure 3b's sub-linear utilization fit).
     */
    double densityGain(units::Nanometers node) const;

  private:
    ScalingTable();

    std::vector<NodeParams> params_;
};

} // namespace accelwall::cmos

#endif // ACCELWALL_CMOS_SCALING_HH
