/**
 * @file
 * CMOS device-scaling model (Section III, Figure 3a).
 *
 * The paper digests the Stillmaker & Baas scaling equations (180nm..7nm)
 * and the IRDS 2017 5nm projections into per-node device factors. We encode
 * the same digest as a static table spanning 250nm..5nm. All relative
 * quantities are normalized to the 45nm node, matching the paper's
 * normalization in Figure 3a and the 45nm baseline of Section VI.
 *
 * Values are approximations reconstructed from the published curves (see
 * DESIGN.md, substitutions table); what matters downstream is the relative
 * progression between nodes, not the absolute third digit.
 */

#ifndef ACCELWALL_CMOS_SCALING_HH
#define ACCELWALL_CMOS_SCALING_HH

#include <vector>

namespace accelwall::cmos
{

/** Device-level parameters for one CMOS node. */
struct NodeParams
{
    /** Feature size in nanometres (e.g. 45). */
    double node_nm = 0.0;
    /** Nominal supply voltage in volts. */
    double vdd = 0.0;
    /** Gate delay relative to 45nm (smaller is faster). */
    double gate_delay = 0.0;
    /** Switched capacitance per gate relative to 45nm. */
    double capacitance = 0.0;
    /** Static (leakage) power per transistor relative to 45nm. */
    double leakage = 0.0;
};

/**
 * The scaling table: per-node device factors plus derived relative
 * quantities. A process-wide singleton; nodes not in the table are
 * resolved to the nearest tabulated node by nearest().
 */
class ScalingTable
{
  public:
    /** The singleton instance holding the built-in table. */
    static const ScalingTable &instance();

    /** True when @p node_nm is tabulated exactly. */
    bool has(double node_nm) const;

    /** Parameters for an exactly tabulated node; fatal() otherwise. */
    const NodeParams &at(double node_nm) const;

    /** Parameters for the tabulated node closest to @p node_nm. */
    const NodeParams &nearest(double node_nm) const;

    /** All tabulated nodes, descending feature size (oldest first). */
    std::vector<double> nodes() const;

    /**
     * Maximum-frequency gain relative to 45nm: the inverse of relative
     * gate delay.
     */
    double frequencyGain(double node_nm) const;

    /**
     * Dynamic switching energy per operation relative to 45nm:
     * C * VDD^2 with both factors taken relative to the 45nm node.
     */
    double dynamicEnergy(double node_nm) const;

    /**
     * Dynamic power per transistor relative to 45nm at a fixed absolute
     * clock: equals dynamicEnergy() since power = energy * frequency.
     */
    double dynamicPower(double node_nm) const;

    /** Leakage power per transistor relative to 45nm. */
    double leakagePower(double node_nm) const;

    /** Supply voltage relative to 45nm. */
    double vddRel(double node_nm) const;

    /** Switched capacitance per gate relative to 45nm. */
    double capacitanceRel(double node_nm) const;

    /** Relative gate delay (45nm == 1.0). */
    double gateDelayRel(double node_nm) const;

    /**
     * Ideal areal transistor-density gain relative to 45nm: (45/N)^2.
     * The empirically achievable budget is modeled separately in chipdb
     * (Figure 3b's sub-linear utilization fit).
     */
    double densityGain(double node_nm) const;

  private:
    ScalingTable();

    std::vector<NodeParams> params_;
};

} // namespace accelwall::cmos

#endif // ACCELWALL_CMOS_SCALING_HH
