/**
 * @file
 * Theoretical limits of chip specialization concepts (Section V-B,
 * Table II).
 *
 * The paper identifies three specialization concepts — simplification,
 * partitioning, heterogeneity — each applicable to the three processing
 * components — memory, communication, computation — and derives Θ-bounds
 * on time and space for each combination in terms of DFG quantities:
 *
 *                Simplification           Heterogeneity          Partitioning
 *  MEM.  Time    Θ(|V|·log(max|WS|))      Θ(D)                   Θ(D·log(max|WS|))
 *        Space   Θ(max|WS|)               Θ(|E|)                 Θ(max|WS|)
 *  COMM. Time    Θ(|E|)                   Θ(D)                   Θ(D)
 *        Space   Θ(|V|)                   Θ(|E|)                 Θ(max|WS|)
 *  COMP. Time    Θ(|E|)                   Θ(|V_IN|)              Θ(D)
 *        Space   Θ(1)                     Θ(2^|V_IN|·|V_OUT|)    Θ(max|WS|)
 *
 * This module evaluates those bounds numerically for a concrete DFG.
 */

#ifndef ACCELWALL_CONCEPTS_BOUNDS_HH
#define ACCELWALL_CONCEPTS_BOUNDS_HH

#include <string>

#include "dfg/analysis.hh"

namespace accelwall::concepts
{

/** The three processing components of Section V-A. */
enum class Component
{
    Memory,
    Communication,
    Computation,
};

/** The three chip-specialization concepts of Section V-A. */
enum class SpecConcept
{
    Simplification,
    Partitioning,
    Heterogeneity,
};

/** Human-readable names. */
const char *componentName(Component component);
const char *conceptName(SpecConcept spec_concept);

/** One Table II cell evaluated against a concrete DFG. */
struct Bound
{
    /** Evaluated time bound (Θ-argument, not wall clock). */
    double time = 0.0;
    /**
     * Evaluated space bound. May be +inf when 2^|V_IN| overflows a
     * double; log2_space is always finite.
     */
    double space = 0.0;
    /** log2 of the space bound (finite even when space overflows). */
    double log2_space = 0.0;
    /** The symbolic Θ-expression for time, e.g. "|V|*log(max|WS|)". */
    std::string time_expr;
    /** The symbolic Θ-expression for space. */
    std::string space_expr;
};

/**
 * Evaluate the Table II bound for (component, concept) on an analyzed
 * DFG.
 */
Bound bound(const dfg::Analysis &analysis, Component component,
            SpecConcept spec_concept);

} // namespace accelwall::concepts

#endif // ACCELWALL_CONCEPTS_BOUNDS_HH
