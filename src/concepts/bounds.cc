#include "concepts/bounds.hh"

#include <cmath>

#include "util/logging.hh"

namespace accelwall::concepts
{

namespace
{

/** log2 guarded for the degenerate max|WS| == 1 case. */
double
log2Of(double x)
{
    return x <= 2.0 ? 1.0 : std::log2(x);
}

} // namespace

const char *
componentName(Component component)
{
    switch (component) {
      case Component::Memory: return "memory";
      case Component::Communication: return "communication";
      case Component::Computation: return "computation";
    }
    return "?";
}

const char *
conceptName(SpecConcept spec_concept)
{
    switch (spec_concept) {
      case SpecConcept::Simplification: return "simplification";
      case SpecConcept::Partitioning: return "partitioning";
      case SpecConcept::Heterogeneity: return "heterogeneity";
    }
    return "?";
}

Bound
bound(const dfg::Analysis &a, Component component, SpecConcept spec_concept)
{
    double v = static_cast<double>(a.num_nodes);
    double e = static_cast<double>(a.num_edges);
    double d = static_cast<double>(a.depth);
    double ws = static_cast<double>(a.max_working_set);
    double vin = static_cast<double>(a.num_inputs);
    double vout = static_cast<double>(a.num_outputs);

    Bound b;
    switch (component) {
      case Component::Memory:
        switch (spec_concept) {
          case SpecConcept::Simplification:
            // Single simple module; every node performs a sequential
            // lookup bounded by the naming space.
            b.time = v * log2Of(ws);
            b.space = ws;
            b.log2_space = std::log2(std::max(ws, 1.0));
            b.time_expr = "|V|*log(max|WS|)";
            b.space_expr = "max|WS|";
            return b;
          case SpecConcept::Heterogeneity:
            // A banked hierarchy mirroring all DFG edges serves each
            // stage in parallel at O(1) per access.
            b.time = d;
            b.space = e;
            b.log2_space = std::log2(std::max(e, 1.0));
            b.time_expr = "D";
            b.space_expr = "|E|";
            return b;
          case SpecConcept::Partitioning:
            // max|WS| banks; lookups proceed per stage.
            b.time = d * log2Of(ws);
            b.space = ws;
            b.log2_space = std::log2(std::max(ws, 1.0));
            b.time_expr = "D*log(max|WS|)";
            b.space_expr = "max|WS|";
            return b;
        }
        break;

      case Component::Communication:
        switch (spec_concept) {
          case SpecConcept::Simplification:
            // Minimal spanning tree: |V| wires, data traverses all
            // dependence edges serially.
            b.time = e;
            b.space = v;
            b.log2_space = std::log2(std::max(v, 1.0));
            b.time_expr = "|E|";
            b.space_expr = "|V|";
            return b;
          case SpecConcept::Heterogeneity:
            // Topology mirrors the DFG: wiring |E|, delay = depth.
            b.time = d;
            b.space = e;
            b.log2_space = std::log2(std::max(e, 1.0));
            b.time_expr = "D";
            b.space_expr = "|E|";
            return b;
          case SpecConcept::Partitioning:
            b.time = d;
            b.space = ws;
            b.log2_space = std::log2(std::max(ws, 1.0));
            b.time_expr = "D";
            b.space_expr = "max|WS|";
            return b;
        }
        break;

      case Component::Computation:
        switch (spec_concept) {
          case SpecConcept::Simplification:
            // Nodes reduced to Θ(1) gates computing bit-serially.
            b.time = e;
            b.space = 1.0;
            b.log2_space = 0.0;
            b.time_expr = "|E|";
            b.space_expr = "1";
            return b;
          case SpecConcept::Heterogeneity:
            // The extreme fusion case: one lookup table over all input
            // bits. Space 2^|V_IN| * |V_OUT| overflows quickly; report
            // log2 alongside.
            b.time = vin;
            b.log2_space = vin + std::log2(std::max(vout, 1.0));
            b.space = std::exp2(vin) * vout;
            b.time_expr = "|V_IN|";
            b.space_expr = "2^|V_IN|*|V_OUT|";
            return b;
          case SpecConcept::Partitioning:
            b.time = d;
            b.space = ws;
            b.log2_space = std::log2(std::max(ws, 1.0));
            b.time_expr = "D";
            b.space_expr = "max|WS|";
            return b;
        }
        break;
    }
    panic("concepts::bound: unhandled component/concept combination");
}

} // namespace accelwall::concepts
