#include "ifacecheck/check.hh"

#include <sstream>

#include "ifacecheck/internal.hh"

namespace accelwall::ifacecheck
{

const char *
ruleCode(RuleId rule)
{
    switch (rule) {
      case RuleId::MetricDocumented: return "I001";
      case RuleId::MetricTested: return "I002";
      case RuleId::EndpointConsistency: return "I003";
      case RuleId::CliFlagDocumented: return "I004";
      case RuleId::CliFlagExercised: return "I005";
      case RuleId::EnvKnobConsistency: return "I006";
      case RuleId::ErrorDocMapping: return "I007";
      case RuleId::CtestLabelGated: return "I008";
      case RuleId::BenchSchemaKeys: return "I009";
      case RuleId::MetricHelpType: return "I010";
    }
    return "I???";
}

const char *
ruleName(RuleId rule)
{
    switch (rule) {
      case RuleId::MetricDocumented: return "metric-documented";
      case RuleId::MetricTested: return "metric-tested";
      case RuleId::EndpointConsistency: return "endpoint-consistency";
      case RuleId::CliFlagDocumented: return "cli-flag-documented";
      case RuleId::CliFlagExercised: return "cli-flag-exercised";
      case RuleId::EnvKnobConsistency: return "env-knob-consistency";
      case RuleId::ErrorDocMapping: return "error-doc-mapping";
      case RuleId::CtestLabelGated: return "ctest-label-gated";
      case RuleId::BenchSchemaKeys: return "bench-schema-keys";
      case RuleId::MetricHelpType: return "metric-help-type";
    }
    return "unknown";
}

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "unknown";
}

Severity
defaultSeverity(RuleId rule)
{
    switch (rule) {
      // The two pure coverage rules default to Warning — a missing
      // test is a gap, not yet a lie in the docs. --strict escalates.
      case RuleId::MetricTested:
      case RuleId::CliFlagExercised:
        return Severity::Warning;
      default:
        return Severity::Error;
    }
}

std::string
Diagnostic::str() const
{
    std::ostringstream oss;
    oss << file;
    if (line > 0)
        oss << ':' << line;
    oss << ": " << severityName(severity) << ' ' << ruleCode(rule) << ' '
        << ruleName(rule) << ": " << message;
    return oss.str();
}

bool
Report::fired(RuleId rule) const
{
    for (const Diagnostic &d : diagnostics) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

std::string
Report::summary() const
{
    std::ostringstream oss;
    oss << num_errors << (num_errors == 1 ? " error, " : " errors, ")
        << num_warnings
        << (num_warnings == 1 ? " warning, " : " warnings, ")
        << num_notes << (num_notes == 1 ? " note" : " notes");
    if (suppressed > 0)
        oss << " (+" << suppressed << " capped)";
    return oss.str();
}

namespace internal
{

bool
hasPrefix(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void
Sink::add(RuleId rule, const std::string &file, std::size_t line,
          std::string message)
{
    if (line > 0) {
        const SourceFile *sf = corpus_.find(file);
        if (sf != nullptr && sf->allowed(ruleCode(rule), line))
            return;
    }
    Severity sev = defaultSeverity(rule);
    if (sev == Severity::Warning && options_.warnings_as_errors)
        sev = Severity::Error;
    switch (sev) {
      case Severity::Error: ++report_->num_errors; break;
      case Severity::Warning: ++report_->num_warnings; break;
      case Severity::Note: ++report_->num_notes; break;
    }
    if (report_->diagnostics.size() >= options_.max_diagnostics) {
        ++report_->suppressed;
        return;
    }
    Diagnostic d;
    d.rule = rule;
    d.severity = sev;
    d.file = file;
    d.line = line;
    d.message = std::move(message);
    report_->diagnostics.push_back(std::move(d));
}

namespace
{

bool
isNameChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '-';
}

std::string
trimCell(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t`");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t`");
    return s.substr(b, e - b + 1);
}

/** Split one markdown table line into trimmed cells. */
DocRow
splitRow(const std::string &line, std::size_t lineno)
{
    DocRow row;
    row.line = lineno;
    std::size_t pos = line.find('|');
    while (pos != std::string::npos) {
        std::size_t next = line.find('|', pos + 1);
        if (next == std::string::npos)
            break;
        row.cells.push_back(
            trimCell(line.substr(pos + 1, next - pos - 1)));
        pos = next;
    }
    return row;
}

bool
isSeparatorRow(const DocRow &row)
{
    for (const std::string &cell : row.cells) {
        if (cell.find_first_not_of("-: ") != std::string::npos)
            return false;
    }
    return true;
}

/** Invoke @p fn with (line_text, 1-based line number) per line. */
template <typename Fn>
void
forEachLine(const std::string &text, Fn fn)
{
    std::size_t line = 1;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t eol = text.find('\n', pos);
        std::size_t len =
            (eol == std::string::npos ? text.size() : eol) - pos;
        fn(text.substr(pos, len), line);
        if (eol == std::string::npos)
            break;
        pos = eol + 1;
        ++line;
    }
}

} // namespace

bool
containsWord(const std::string &text, const std::string &word)
{
    if (word.empty())
        return false;
    std::size_t at = text.find(word);
    while (at != std::string::npos) {
        bool left_ok = at == 0 || !isNameChar(text[at - 1]);
        std::size_t end = at + word.size();
        bool right_ok = end >= text.size() || !isNameChar(text[end]);
        if (left_ok && right_ok)
            return true;
        at = text.find(word, at + 1);
    }
    return false;
}

std::vector<DocRow>
docTableRows(const std::string &text, const std::string &anchor)
{
    std::vector<DocRow> rows;
    bool anchored = false;
    bool in_table = false;
    bool done = false;
    forEachLine(text, [&](const std::string &line, std::size_t lineno) {
        if (done)
            return;
        if (!anchored) {
            if (line.find(anchor) != std::string::npos)
                anchored = true;
            if (!anchored)
                return;
        }
        std::size_t b = line.find_first_not_of(" \t");
        bool is_row = b != std::string::npos && line[b] == '|';
        if (!in_table) {
            in_table = is_row;
        } else if (!is_row) {
            done = true; // first non-row line ends the table
            return;
        }
        if (is_row) {
            DocRow row = splitRow(line, lineno);
            if (!row.cells.empty() && !isSeparatorRow(row))
                rows.push_back(std::move(row));
        }
    });
    return rows;
}

std::vector<DocRow>
allDocRows(const std::string &text)
{
    std::vector<DocRow> rows;
    forEachLine(text, [&](const std::string &line, std::size_t lineno) {
        std::size_t b = line.find_first_not_of(" \t");
        if (b == std::string::npos || line[b] != '|')
            return;
        DocRow row = splitRow(line, lineno);
        if (!row.cells.empty() && !isSeparatorRow(row))
            rows.push_back(std::move(row));
    });
    return rows;
}

} // namespace internal

Report
check(const Corpus &corpus, const Options &options)
{
    Report report;
    internal::Sink sink(corpus, options, &report);
    internal::checkServeSurface(corpus, sink);
    internal::checkToolSurface(corpus, sink);
    return report;
}

} // namespace accelwall::ifacecheck
