/**
 * @file
 * Interface-drift rules (the `iface` lint domain, I001..I010): diff
 * every externally visible surface of the repo — Prometheus metrics,
 * HTTP endpoints, CLI flags, ACCELWALL_* env knobs, stable error
 * codes, ctest labels, bench schema keys — between the place that
 * *declares* it and every place that *uses* it (code, README/DESIGN
 * tables, tests, and ci_gate.sh).
 *
 *  | rule | name                   | invariant                               |
 *  |------|------------------------|-----------------------------------------|
 *  | I001 | metric-documented      | series emitted in serve/metrics.cc ⇔    |
 *  |      |                        | listed in the README /metrics glossary  |
 *  | I002 | metric-tested          | every emitted series asserted by a test |
 *  | I003 | endpoint-consistency   | endpoints classified for metrics ⇔      |
 *  |      |                        | dispatched in service.cc ⇔ README table |
 *  |      |                        | ⇔ exercised by tests                    |
 *  | I004 | cli-flag-documented    | every parsed --flag in a tool's usage   |
 *  |      |                        | text, and nothing documented unparsed   |
 *  | I005 | cli-flag-exercised     | every parsed --flag hit by a test or    |
 *  |      |                        | harness script                          |
 *  | I006 | env-knob-consistency   | getenv("ACCELWALL_*") documented and    |
 *  |      |                        | set somewhere under tests//ci_gate.sh   |
 *  | I007 | error-doc-mapping      | Exxxx→HTTP rows in docs match the       |
 *  |      |                        | registry and httpStatusFor()            |
 *  | I008 | ctest-label-gated      | every declared ctest label selectable   |
 *  |      |                        | by name in a ci_gate.sh stage           |
 *  | I009 | bench-schema-keys      | bench JSON keys and schema tags pinned  |
 *  |      |                        | by tests/golden/run_bench.cmake         |
 *  | I010 | metric-help-type       | every series has # HELP and # TYPE;     |
 *  |      |                        | counters end _total, gauges do not      |
 *
 * The domain consumes the same srccheck::Corpus the S rules scan (the
 * scanner also ingests CMakeLists.txt files and tools/ scripts for the
 * registries that live there) and reuses the srccheck:allow(Ixxx)
 * suppression grammar. The extractor model — declared registry vs.
 * observed usage, diffed exactly — and the lexical limits of each
 * extraction are documented in DESIGN.md §12.
 */

#ifndef ACCELWALL_IFACECHECK_CHECK_HH
#define ACCELWALL_IFACECHECK_CHECK_HH

#include <cstddef>
#include <string>
#include <vector>

#include "srccheck/scan.hh"

namespace accelwall::ifacecheck
{

/** The shared scanner corpus the I rules consume. */
using srccheck::Corpus;
using srccheck::SourceFile;

/** Identity of one interface-drift rule. */
enum class RuleId
{
    MetricDocumented,    ///< I001
    MetricTested,        ///< I002
    EndpointConsistency, ///< I003
    CliFlagDocumented,   ///< I004
    CliFlagExercised,    ///< I005
    EnvKnobConsistency,  ///< I006
    ErrorDocMapping,     ///< I007
    CtestLabelGated,     ///< I008
    BenchSchemaKeys,     ///< I009
    MetricHelpType,      ///< I010
};

/** Total number of RuleId values (for dense per-rule tables). */
inline constexpr int kNumRules =
    static_cast<int>(RuleId::MetricHelpType) + 1;

/** Diagnostic severity; only Error fails the check. */
enum class Severity
{
    Note,
    Warning,
    Error,
};

/** Stable short code, e.g. "I004". */
const char *ruleCode(RuleId rule);

/** Kebab-case rule name, e.g. "cli-flag-documented". */
const char *ruleName(RuleId rule);

/** Lower-case severity name, e.g. "error". */
const char *severityName(Severity severity);

/** The built-in severity a rule fires at. */
Severity defaultSeverity(RuleId rule);

/** One rule violation, locatable to a file and usually a line. */
struct Diagnostic
{
    RuleId rule = RuleId::MetricDocumented;
    Severity severity = Severity::Error;
    /** Root-relative file the finding is in (may be a doc file). */
    std::string file;
    /** 1-based line, or 0 for whole-file/cross-file findings. */
    std::size_t line = 0;
    /** Human-readable explanation with concrete names. */
    std::string message;

    /** "README.md:310: error I001 metric-documented ...". */
    std::string str() const;
};

/** Knobs for one scan. */
struct Options
{
    /** Escalate Warning diagnostics to Error. */
    bool warnings_as_errors = false;
    /** Keep at most this many diagnostics; the rest are counted. */
    std::size_t max_diagnostics = 256;
};

/** Outcome of one scan. */
struct Report
{
    std::vector<Diagnostic> diagnostics;
    std::size_t num_errors = 0;
    std::size_t num_warnings = 0;
    std::size_t num_notes = 0;
    /** Diagnostics dropped beyond Options::max_diagnostics. */
    std::size_t suppressed = 0;

    /** True when no Error-severity diagnostics fired. */
    bool ok() const { return num_errors == 0; }

    /** True when a rule with this id fired (at any severity). */
    bool fired(RuleId rule) const;

    /** "3 errors, 1 warning, 0 notes". */
    std::string summary() const;
};

/** Run every I rule against @p corpus. */
Report check(const Corpus &corpus, const Options &options = {});

} // namespace accelwall::ifacecheck

#endif // ACCELWALL_IFACECHECK_CHECK_HH
