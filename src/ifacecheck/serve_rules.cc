/**
 * @file
 * Serving-surface rules: Prometheus metric names (I001 documented,
 * I002 tested, I010 HELP/TYPE discipline) and HTTP endpoints (I003).
 *
 * The declared registry for metrics is the exposition text built in
 * src/serve/metrics.cc: every string literal is scanned for
 * `accelwall_[a-z0-9_]+` runs, classified by the text immediately
 * before the run on the same exposition line — `# HELP ` and `# TYPE `
 * prefixes are declarations, anything else is an emission. The
 * declared registry for endpoints is the set of whole-string path
 * literals in metrics.cc (endpointLabel/classifyEndpoint). Observed
 * usages come from the README glossary/endpoint tables, service.cc
 * dispatch literals, and raw test text.
 */

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ifacecheck/internal.hh"

namespace accelwall::ifacecheck::internal
{

namespace
{

using srccheck::TokKind;
using srccheck::Token;

bool
isMetricChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

/** Everything the metrics implementation says about its series. */
struct MetricSurface
{
    /** Raw series name -> first emission line. */
    std::map<std::string, std::size_t> emitted;
    /** Series name -> line of its `# HELP` declaration. */
    std::map<std::string, std::size_t> help;
    /** Series name -> declared `# TYPE` kind ("counter", ...). */
    std::map<std::string, std::string> type;
    std::map<std::string, std::size_t> type_line;
};

/**
 * Scan every string literal of @p file for metric-name runs and
 * classify each as HELP declaration, TYPE declaration, or emission by
 * the exposition-line prefix inside the same literal.
 */
MetricSurface
scanMetrics(const SourceFile &file)
{
    MetricSurface s;
    const std::string kName = "accelwall_";
    for (const Token &tok : file.stream.tokens) {
        if (tok.kind != TokKind::String)
            continue;
        const std::string &text = tok.text;
        std::size_t at = text.find(kName);
        while (at != std::string::npos) {
            if (at > 0 && isMetricChar(text[at - 1])) {
                at = text.find(kName, at + 1);
                continue;
            }
            std::size_t end = at;
            while (end < text.size() && isMetricChar(text[end]))
                ++end;
            std::string name = text.substr(at, end - at);
            std::size_t bol = text.rfind('\n', at);
            bol = bol == std::string::npos ? 0 : bol + 1;
            std::string prefix = text.substr(bol, at - bol);
            if (prefix == "# HELP ") {
                s.help.emplace(name, tok.line);
            } else if (prefix == "# TYPE ") {
                std::size_t k = end;
                while (k < text.size() && text[k] == ' ')
                    ++k;
                std::size_t ke = k;
                while (ke < text.size() && text[ke] >= 'a' &&
                       text[ke] <= 'z')
                    ++ke;
                s.type.emplace(name, text.substr(k, ke - k));
                s.type_line.emplace(name, tok.line);
            } else {
                s.emitted.emplace(name, tok.line);
            }
            at = text.find(kName, end);
        }
    }
    return s;
}

/**
 * The base series of one emitted name: histogram emissions drop their
 * `_bucket`/`_sum`/`_count` suffix when the stripped name carries the
 * TYPE declaration.
 */
std::string
baseSeries(const std::string &name, const MetricSurface &s)
{
    for (const char *suffix : { "_bucket", "_sum", "_count" }) {
        std::string suf(suffix);
        if (name.size() > suf.size() && hasSuffix(name, suf)) {
            std::string stripped =
                name.substr(0, name.size() - suf.size());
            if (s.type.count(stripped) || s.help.count(stripped))
                return stripped;
        }
    }
    return name;
}

/** One README glossary entry: a short name or a `_*` prefix pattern. */
struct GlossaryEntry
{
    std::string name;
    bool wildcard = false; ///< name is a prefix (row ended in `_*`)
    std::size_t line = 0;
    bool matched = false;
};

bool
glossaryMatches(GlossaryEntry &entry, const std::string &short_name)
{
    bool hit = entry.wildcard
                   ? hasPrefix(short_name, entry.name)
                   : short_name == entry.name;
    if (hit)
        entry.matched = true;
    return hit;
}

/**
 * Parse the README `/metrics` glossary table (anchored by the first
 * line containing "glossary") into entries. Rows name series without
 * the `accelwall_` prefix; a trailing `{...}` label set is dropped; an
 * inner `{a,b,c}` group expands; a trailing `*` makes the entry a
 * prefix pattern.
 */
std::vector<GlossaryEntry>
parseGlossary(const std::string &text)
{
    std::vector<GlossaryEntry> entries;
    bool header = true;
    for (const DocRow &row : docTableRows(text, "glossary")) {
        if (header) {
            header = false; // the `| metric | meaning |` header row
            continue;
        }
        if (row.cells.empty())
            continue;
        std::string cell = row.cells[0];
        if (cell.empty() ||
            cell.find_first_not_of(
                "abcdefghijklmnopqrstuvwxyz0123456789_{},*") !=
                std::string::npos)
            continue;
        // `requests_total{endpoint,status}`: a brace group that closes
        // the cell is a label set, not part of the name.
        std::size_t open = cell.find('{');
        std::vector<std::string> names;
        if (open != std::string::npos && cell.back() == '}') {
            names.push_back(cell.substr(0, open));
        } else if (open != std::string::npos) {
            std::size_t close = cell.find('}', open);
            if (close == std::string::npos)
                continue;
            std::string head = cell.substr(0, open);
            std::string tail = cell.substr(close + 1);
            std::string inner =
                cell.substr(open + 1, close - open - 1);
            std::size_t b = 0;
            while (b <= inner.size()) {
                std::size_t comma = inner.find(',', b);
                std::size_t len =
                    (comma == std::string::npos ? inner.size() : comma) -
                    b;
                names.push_back(head + inner.substr(b, len) + tail);
                if (comma == std::string::npos)
                    break;
                b = comma + 1;
            }
        } else {
            names.push_back(cell);
        }
        for (std::string &name : names) {
            GlossaryEntry entry;
            entry.line = row.line;
            entry.wildcard = !name.empty() && name.back() == '*';
            entry.name =
                entry.wildcard ? name.substr(0, name.size() - 1) : name;
            if (!entry.name.empty())
                entries.push_back(std::move(entry));
        }
    }
    return entries;
}

std::string
shortName(const std::string &series)
{
    const std::string kPrefix = "accelwall_";
    return hasPrefix(series, kPrefix) ? series.substr(kPrefix.size())
                                      : series;
}

/** True when @p text occurs in any test or harness-script file. */
bool
coveredByTests(const Corpus &corpus, const std::string &needle,
               bool whole_word)
{
    for (const SourceFile &f : corpus.files) {
        bool harness = hasPrefix(f.path, "tests/") ||
                       (hasPrefix(f.path, "tools/") &&
                        (hasSuffix(f.path, ".sh") ||
                         hasSuffix(f.path, ".cmake") ||
                         hasSuffix(f.path, "CMakeLists.txt")));
        if (!harness)
            continue;
        if (whole_word ? containsWord(f.text, needle)
                       : f.text.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

/** I001 + I002 + I010 over the metrics implementation. */
void
checkMetrics(const Corpus &corpus, Sink &sink)
{
    const SourceFile *impl = corpus.find(kMetricsImpl);
    if (impl == nullptr || !impl->tokenized)
        return;
    MetricSurface s = scanMetrics(*impl);

    std::vector<GlossaryEntry> glossary;
    const SourceFile *readme = corpus.find(kReadme);
    bool have_glossary = false;
    if (readme != nullptr) {
        glossary = parseGlossary(readme->text);
        have_glossary = !glossary.empty();
    }

    // Deduplicate emissions to their base series for the doc/test and
    // HELP/TYPE checks; histogram sub-series match the glossary raw.
    std::map<std::string, std::size_t> bases;
    for (const auto &[name, line] : s.emitted)
        bases.emplace(baseSeries(name, s), line);

    for (const auto &[name, line] : s.emitted) {
        if (!have_glossary)
            break;
        bool documented = false;
        std::string short_name = shortName(name);
        for (GlossaryEntry &entry : glossary)
            documented |= glossaryMatches(entry, short_name);
        if (!documented) {
            sink.add(RuleId::MetricDocumented, kMetricsImpl, line,
                     "series '" + name +
                         "' is emitted but missing from the README "
                         "`/metrics` glossary");
        }
    }
    for (const GlossaryEntry &entry : glossary) {
        if (!entry.matched) {
            sink.add(RuleId::MetricDocumented, kReadme, entry.line,
                     "the README `/metrics` glossary documents '" +
                         entry.name +
                         (entry.wildcard ? "*" : "") +
                         "' but src/serve/metrics.cc never emits such "
                         "a series");
        }
    }

    for (const auto &[base, line] : bases) {
        if (!coveredByTests(corpus, base, /*whole_word=*/false)) {
            sink.add(RuleId::MetricTested, kMetricsImpl, line,
                     "series '" + base +
                         "' is never asserted by any test under "
                         "tests/ or harness script");
        }
    }

    for (const auto &[base, line] : bases) {
        auto type_it = s.type.find(base);
        if (!s.help.count(base)) {
            sink.add(RuleId::MetricHelpType, kMetricsImpl, line,
                     "series '" + base +
                         "' is emitted without a `# HELP` line");
        }
        if (type_it == s.type.end()) {
            sink.add(RuleId::MetricHelpType, kMetricsImpl, line,
                     "series '" + base +
                         "' is emitted without a `# TYPE` line");
        } else if (type_it->second == "counter" &&
                   !hasSuffix(base, "_total")) {
            sink.add(RuleId::MetricHelpType, kMetricsImpl,
                     s.type_line[base],
                     "counter '" + base +
                         "' violates the `_total` naming convention");
        } else if (type_it->second == "gauge" &&
                   hasSuffix(base, "_total")) {
            sink.add(RuleId::MetricHelpType, kMetricsImpl,
                     s.type_line[base],
                     "gauge '" + base +
                         "' must not use the counter `_total` suffix");
        }
    }
    for (const auto &[name, line] : s.help) {
        if (!bases.count(name)) {
            sink.add(RuleId::MetricHelpType, kMetricsImpl, line,
                     "`# HELP` declares '" + name +
                         "' but the series is never emitted");
        }
    }
    for (const auto &[name, line] : s.type_line) {
        if (!bases.count(name)) {
            sink.add(RuleId::MetricHelpType, kMetricsImpl, line,
                     "`# TYPE` declares '" + name +
                         "' but the series is never emitted");
        }
    }
}

/** Whole-string endpoint path literals of @p file, with lines. */
std::map<std::string, std::size_t>
endpointLiterals(const SourceFile &file)
{
    std::map<std::string, std::size_t> paths;
    for (const Token &tok : file.stream.tokens) {
        if (tok.kind != TokKind::String || tok.text.size() < 2 ||
            tok.text[0] != '/')
            continue;
        if (tok.text.find_first_not_of(
                "abcdefghijklmnopqrstuvwxyz0123456789_/.-", 1) !=
            std::string::npos)
            continue;
        paths.emplace(tok.text, tok.line);
    }
    return paths;
}

/** I003: metrics classification ⇔ dispatch ⇔ README ⇔ tests. */
void
checkEndpoints(const Corpus &corpus, Sink &sink)
{
    const SourceFile *metrics = corpus.find(kMetricsImpl);
    const SourceFile *service = corpus.find(kServiceImpl);
    if (metrics == nullptr || !metrics->tokenized ||
        service == nullptr || !service->tokenized)
        return;
    std::map<std::string, std::size_t> declared =
        endpointLiterals(*metrics);
    std::map<std::string, std::size_t> dispatched =
        endpointLiterals(*service);

    for (const auto &[path, line] : dispatched) {
        if (!declared.count(path)) {
            sink.add(RuleId::EndpointConsistency, kServiceImpl, line,
                     "endpoint '" + path +
                         "' is dispatched but not classified for "
                         "metrics in src/serve/metrics.cc");
        }
    }
    for (const auto &[path, line] : declared) {
        if (!dispatched.count(path)) {
            sink.add(RuleId::EndpointConsistency, kMetricsImpl, line,
                     "endpoint '" + path +
                         "' is classified for metrics but never "
                         "dispatched in src/serve/service.cc");
        }
    }

    const SourceFile *readme = corpus.find(kReadme);
    if (readme != nullptr) {
        std::map<std::string, std::size_t> documented;
        for (const DocRow &row :
             docTableRows(readme->text, "| endpoint ")) {
            if (!row.cells.empty() && !row.cells[0].empty() &&
                row.cells[0][0] == '/')
                documented.emplace(row.cells[0], row.line);
        }
        if (!documented.empty()) {
            for (const auto &[path, line] : declared) {
                if (!documented.count(path)) {
                    sink.add(RuleId::EndpointConsistency, kMetricsImpl,
                             line,
                             "endpoint '" + path +
                                 "' is missing from the README "
                                 "endpoint table");
                }
            }
            for (const auto &[path, line] : documented) {
                if (!declared.count(path)) {
                    sink.add(RuleId::EndpointConsistency, kReadme, line,
                             "the README endpoint table documents '" +
                                 path +
                                 "' but the server neither "
                                 "classifies nor serves it");
                }
            }
        }
    }

    for (const auto &[path, line] : declared) {
        if (!coveredByTests(corpus, path, /*whole_word=*/false)) {
            sink.add(RuleId::EndpointConsistency, kMetricsImpl, line,
                     "endpoint '" + path +
                         "' is not exercised by any test or harness "
                         "script");
        }
    }
}

} // namespace

void
checkServeSurface(const Corpus &corpus, Sink &sink)
{
    checkMetrics(corpus, sink);
    checkEndpoints(corpus, sink);
}

} // namespace accelwall::ifacecheck::internal
