/**
 * @file
 * Tool/CI-surface rules: CLI flags (I004 documented, I005 exercised),
 * ACCELWALL_* env knobs (I006), error-code→HTTP claims in docs
 * (I007), ctest labels vs. ci_gate.sh stages (I008), and bench JSON
 * schema keys vs. their golden pin (I009).
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ifacecheck/internal.hh"

namespace accelwall::ifacecheck::internal
{

namespace
{

using srccheck::TokKind;
using srccheck::Token;

bool
isFlagChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
}

/** I004 + I005 over every tool translation unit. */
void
checkCliFlags(const Corpus &corpus, Sink &sink)
{
    for (const SourceFile &file : corpus.files) {
        if (!file.tokenized || !hasPrefix(file.path, "tools/") ||
            !hasSuffix(file.path, ".cc"))
            continue;
        // Parsed: a string literal that is exactly one flag is an
        // argv comparison. Documented: a flag-shaped run inside any
        // longer literal (usage text, examples).
        std::map<std::string, std::size_t> parsed;
        std::map<std::string, std::size_t> documented;
        for (const Token &tok : file.stream.tokens) {
            if (tok.kind != TokKind::String)
                continue;
            const std::string &text = tok.text;
            bool whole_flag =
                text.size() > 2 && text.compare(0, 2, "--") == 0 &&
                text.find_first_not_of(
                    "abcdefghijklmnopqrstuvwxyz0123456789-", 2) ==
                    std::string::npos;
            if (whole_flag) {
                parsed.emplace(text, tok.line);
                continue;
            }
            std::size_t at = text.find("--");
            while (at != std::string::npos) {
                if (at > 0 && text[at - 1] == '-') {
                    at = text.find("--", at + 1);
                    continue;
                }
                std::size_t end = at + 2;
                while (end < text.size() && isFlagChar(text[end]))
                    ++end;
                // Require a leading alphanumeric so `----` separators
                // and `--` option terminators are not flag-shaped.
                if (end > at + 2 && text[at + 2] != '-')
                    documented.emplace(text.substr(at, end - at),
                                       tok.line);
                at = text.find("--", end);
            }
        }
        if (parsed.empty() && documented.empty())
            continue;
        // --version is parsed centrally by cli::handleVersion
        // (tools/cli_util.hh), so tools document it without a local
        // comparison literal.
        for (const auto &[flag, line] : parsed) {
            if (flag != "--version" && !documented.count(flag)) {
                sink.add(RuleId::CliFlagDocumented, file.path, line,
                         "flag '" + flag +
                             "' is parsed but absent from the tool's "
                             "usage text");
            }
        }
        for (const auto &[flag, line] : documented) {
            if (flag != "--version" && !parsed.count(flag)) {
                sink.add(RuleId::CliFlagDocumented, file.path, line,
                         "usage text documents '" + flag +
                             "' but the tool never parses it");
            }
        }
        for (const auto &[flag, line] : parsed) {
            bool covered = false;
            for (const SourceFile &f : corpus.files) {
                bool harness =
                    hasPrefix(f.path, "tests/") ||
                    (hasPrefix(f.path, "tools/") &&
                     (hasSuffix(f.path, ".sh") ||
                      hasSuffix(f.path, ".cmake") ||
                      hasSuffix(f.path, "CMakeLists.txt")));
                if (harness && containsWord(f.text, flag)) {
                    covered = true;
                    break;
                }
            }
            if (!covered) {
                sink.add(RuleId::CliFlagExercised, file.path, line,
                         "flag '" + flag +
                             "' is not exercised by any test or "
                             "harness script");
            }
        }
    }
}

/** I006: every getenv("ACCELWALL_*") documented and set somewhere. */
void
checkEnvKnobs(const Corpus &corpus, Sink &sink)
{
    const SourceFile *readme = corpus.find(kReadme);
    const SourceFile *design = corpus.find(kDesign);
    for (const SourceFile &file : corpus.files) {
        if (!file.tokenized || (!hasPrefix(file.path, "src/") &&
                                !hasPrefix(file.path, "tools/")))
            continue;
        const std::vector<Token> &toks = file.stream.tokens;
        for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
            if (!toks[i].isIdent("getenv") || !toks[i + 1].isPunct('(') ||
                toks[i + 2].kind != TokKind::String ||
                !hasPrefix(toks[i + 2].text, "ACCELWALL_"))
                continue;
            const std::string &knob = toks[i + 2].text;
            std::size_t line = toks[i + 2].line;
            bool in_docs =
                (readme != nullptr &&
                 containsWord(readme->text, knob)) ||
                (design != nullptr && containsWord(design->text, knob));
            if (!in_docs) {
                sink.add(RuleId::EnvKnobConsistency, file.path, line,
                         "env knob '" + knob +
                             "' is read here but documented in "
                             "neither README.md nor DESIGN.md");
            }
            bool exercised = false;
            for (const SourceFile &f : corpus.files) {
                bool harness = hasPrefix(f.path, "tests/") ||
                               (hasPrefix(f.path, "tools/") &&
                                hasSuffix(f.path, ".sh"));
                if (harness && containsWord(f.text, knob)) {
                    exercised = true;
                    break;
                }
            }
            if (!exercised) {
                sink.add(RuleId::EnvKnobConsistency, file.path, line,
                         "env knob '" + knob +
                             "' is never set by any test or by "
                             "tools/ci_gate.sh");
            }
        }
    }
}

/** One enumerator parsed out of `enum class ErrorCode`. */
struct CodeEntry
{
    std::string name;
    long value = 0;
};

/** Parse the ErrorCode enumerators of @p file (first definition). */
std::vector<CodeEntry>
parseErrorEnum(const SourceFile &file)
{
    std::vector<CodeEntry> entries;
    const std::vector<Token> &toks = file.stream.tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (!(toks[i].isIdent("enum") && toks[i + 1].isIdent("class") &&
              toks[i + 2].isIdent("ErrorCode")))
            continue;
        std::size_t j = i + 3;
        while (j < toks.size() && !toks[j].isPunct('{') &&
               !toks[j].isPunct(';'))
            ++j;
        if (j >= toks.size() || !toks[j].isPunct('{'))
            continue; // forward declaration
        long next_value = 0;
        ++j;
        while (j < toks.size() && !toks[j].isPunct('}')) {
            if (toks[j].kind != TokKind::Identifier) {
                ++j;
                continue;
            }
            CodeEntry entry;
            entry.name = toks[j].text;
            if (j + 2 < toks.size() && toks[j + 1].isPunct('=') &&
                toks[j + 2].kind == TokKind::Number) {
                entry.value =
                    std::strtol(toks[j + 2].text.c_str(), nullptr, 0);
                j += 3;
            } else {
                entry.value = next_value;
                ++j;
            }
            next_value = entry.value + 1;
            entries.push_back(std::move(entry));
            while (j < toks.size() && !toks[j].isPunct(',') &&
                   !toks[j].isPunct('}'))
                ++j;
            if (j < toks.size() && toks[j].isPunct(','))
                ++j;
        }
        return entries;
    }
    return entries;
}

/**
 * Parse the `case ErrorCode::X: ... return N;` arms of httpStatusFor
 * in @p file into name→status, plus the `default:` status.
 */
void
parseStatusMap(const SourceFile &file,
               std::map<std::string, long> *by_name,
               long *default_status)
{
    const std::vector<Token> &toks = file.stream.tokens;
    std::size_t begin = toks.size();
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].isIdent("httpStatusFor") && toks[i + 1].isPunct('(')) {
            begin = i;
            break;
        }
    }
    if (begin == toks.size())
        return;
    int depth = 0;
    bool in_body = false;
    std::vector<std::string> pending;
    bool pending_default = false;
    for (std::size_t i = begin; i < toks.size(); ++i) {
        if (toks[i].isPunct('{')) {
            ++depth;
            in_body = true;
        } else if (toks[i].isPunct('}')) {
            --depth;
            if (in_body && depth == 0)
                return;
        } else if (in_body && toks[i].isIdent("case") &&
                   i + 4 < toks.size() &&
                   toks[i + 1].isIdent("ErrorCode") &&
                   toks[i + 2].isPunct(':') && toks[i + 3].isPunct(':')) {
            pending.push_back(toks[i + 4].text);
        } else if (in_body && toks[i].isIdent("default")) {
            pending_default = true;
        } else if (in_body && toks[i].isIdent("return") &&
                   i + 1 < toks.size() &&
                   toks[i + 1].kind == TokKind::Number) {
            long status =
                std::strtol(toks[i + 1].text.c_str(), nullptr, 10);
            for (const std::string &name : pending)
                (*by_name)[name] = status;
            if (pending_default)
                *default_status = status;
            pending.clear();
            pending_default = false;
        }
    }
}

bool
isDashByte(unsigned char c)
{
    // '-', or a byte of the UTF-8 en/em dashes (E2 80 93 / E2 80 94).
    return c == '-' || c == 0xe2 || c == 0x80 || c == 0x93 || c == 0x94;
}

/** The Exxxx codes of one doc-table cell, or empty if it is not a
 * pure code list/range. Ranges like `E1101-E1104` expand. */
std::vector<long>
parseCodeCell(const std::string &cell)
{
    std::vector<long> codes;
    std::vector<std::size_t> spans; // start of each code
    std::size_t i = 0;
    while (i < cell.size()) {
        char c = cell[i];
        if (c == 'E') {
            std::size_t end = i + 1;
            while (end < cell.size() && cell[end] >= '0' &&
                   cell[end] <= '9')
                ++end;
            if (end - i != 5)
                return {};
            codes.push_back(std::strtol(cell.substr(i + 1, 4).c_str(),
                                        nullptr, 10));
            spans.push_back(i);
            i = end;
        } else if (c == ' ' || c == ',' || c == '/' ||
                   isDashByte(static_cast<unsigned char>(c))) {
            ++i;
        } else {
            return {}; // prose cell, not a code list
        }
    }
    if (codes.size() == 2 && spans.size() == 2) {
        // Two codes joined only by dash bytes form a closed range.
        bool dashes = true;
        bool any = false;
        for (std::size_t k = spans[0] + 5; k < spans[1]; ++k) {
            unsigned char c = static_cast<unsigned char>(cell[k]);
            if (c == ' ')
                continue;
            if (!isDashByte(c)) {
                dashes = false;
                break;
            }
            any = true;
        }
        if (dashes && any && codes[1] > codes[0] &&
            codes[1] - codes[0] < 64) {
            std::vector<long> range;
            for (long v = codes[0]; v <= codes[1]; ++v)
                range.push_back(v);
            return range;
        }
    }
    return codes;
}

/** True when @p cell is exactly a 3-digit HTTP status. */
bool
parseStatusCell(const std::string &cell, long *status)
{
    if (cell.size() != 3 ||
        cell.find_first_not_of("0123456789") != std::string::npos)
        return false;
    *status = std::strtol(cell.c_str(), nullptr, 10);
    return *status >= 100 && *status <= 599;
}

/** I007: doc rows claiming `Exxxx -> HTTP status` match the code. */
void
checkErrorDocs(const Corpus &corpus, Sink &sink)
{
    const SourceFile *header = corpus.find(kErrorHeader);
    const SourceFile *service = corpus.find(kServiceImpl);
    if (header == nullptr || !header->tokenized || service == nullptr ||
        !service->tokenized)
        return;
    std::map<long, std::string> registry;
    for (const CodeEntry &entry : parseErrorEnum(*header))
        registry.emplace(entry.value, entry.name);
    if (registry.empty())
        return;
    std::map<std::string, long> by_name;
    long default_status = 0;
    parseStatusMap(*service, &by_name, &default_status);
    if (by_name.empty() || default_status == 0)
        return;

    for (const char *doc : { kReadme, kDesign }) {
        const SourceFile *file = corpus.find(doc);
        if (file == nullptr)
            continue;
        for (const DocRow &row : allDocRows(file->text)) {
            std::vector<long> codes;
            long claimed = 0;
            int code_cells = 0;
            int status_cells = 0;
            for (const std::string &cell : row.cells) {
                std::vector<long> cs = parseCodeCell(cell);
                if (!cs.empty()) {
                    ++code_cells;
                    codes = std::move(cs);
                    continue;
                }
                long st = 0;
                if (parseStatusCell(cell, &st)) {
                    ++status_cells;
                    claimed = st;
                }
            }
            if (code_cells != 1 || status_cells != 1)
                continue;
            for (long value : codes) {
                char buf[16];
                std::snprintf(buf, sizeof buf, "E%04ld", value);
                auto reg = registry.find(value);
                if (reg == registry.end()) {
                    sink.add(RuleId::ErrorDocMapping, doc, row.line,
                             std::string(buf) +
                                 " is cited with an HTTP mapping but "
                                 "is not in the ErrorCode registry");
                    continue;
                }
                auto arm = by_name.find(reg->second);
                long actual = arm == by_name.end() ? default_status
                                                   : arm->second;
                if (actual != claimed) {
                    sink.add(RuleId::ErrorDocMapping, doc, row.line,
                             "docs claim " + std::string(buf) + " -> " +
                                 std::to_string(claimed) +
                                 " but httpStatusFor() maps it to " +
                                 std::to_string(actual));
                }
            }
        }
    }
}

/** I008: every declared ctest label selectable by a gate stage. */
void
checkCiLabels(const Corpus &corpus, Sink &sink)
{
    const SourceFile *gate = corpus.find(kGateScript);
    if (gate == nullptr)
        return;
    std::set<std::string> gated;
    {
        std::size_t pos = 0;
        const std::string &text = gate->text;
        while ((pos = text.find("run_ctest", pos)) != std::string::npos) {
            std::size_t eol = text.find('\n', pos);
            std::string line = text.substr(
                pos, (eol == std::string::npos ? text.size() : eol) -
                         pos);
            std::size_t q = 0;
            while ((q = line.find('"', q)) != std::string::npos) {
                std::size_t q2 = line.find('"', q + 1);
                if (q2 == std::string::npos)
                    break;
                std::string arg = line.substr(q + 1, q2 - q - 1);
                if (!arg.empty() &&
                    arg.find_first_not_of(
                        "abcdefghijklmnopqrstuvwxyz0123456789_|") ==
                        std::string::npos) {
                    std::size_t b = 0;
                    while (b <= arg.size()) {
                        std::size_t bar = arg.find('|', b);
                        std::size_t len =
                            (bar == std::string::npos ? arg.size()
                                                      : bar) -
                            b;
                        if (len > 0)
                            gated.insert(arg.substr(b, len));
                        if (bar == std::string::npos)
                            break;
                        b = bar + 1;
                    }
                }
                q = q2 + 1;
            }
            pos = eol == std::string::npos ? text.size() : eol;
        }
    }
    for (const char *path : { kTestsCMake, kToolsCMake }) {
        const SourceFile *cmake = corpus.find(path);
        if (cmake == nullptr)
            continue;
        const std::string &text = cmake->text;
        std::size_t pos = 0;
        std::size_t line = 1;
        std::size_t scanned = 0;
        while ((pos = text.find("LABELS", pos)) != std::string::npos) {
            for (; scanned < pos; ++scanned)
                line += text[scanned] == '\n';
            std::size_t i = pos + 6;
            while (i < text.size() && (text[i] == ' ' || text[i] == '\t'))
                ++i;
            // One cmake argument: quoted `"a;b"` or a bare word.
            std::string arg;
            if (i < text.size() && text[i] == '"') {
                std::size_t close = text.find('"', i + 1);
                if (close != std::string::npos)
                    arg = text.substr(i + 1, close - i - 1);
            } else {
                std::size_t end = i;
                while (end < text.size() && text[end] != ' ' &&
                       text[end] != '\t' && text[end] != '\n' &&
                       text[end] != ')')
                    ++end;
                arg = text.substr(i, end - i);
            }
            std::size_t b = 0;
            while (b <= arg.size()) {
                std::size_t semi = arg.find(';', b);
                std::size_t len =
                    (semi == std::string::npos ? arg.size() : semi) - b;
                std::string label = arg.substr(b, len);
                bool label_shaped =
                    !label.empty() && label[0] >= 'a' &&
                    label[0] <= 'z' &&
                    label.find_first_not_of(
                        "abcdefghijklmnopqrstuvwxyz0123456789_") ==
                        std::string::npos;
                if (label_shaped && !gated.count(label)) {
                    sink.add(RuleId::CtestLabelGated, path, line,
                             "ctest label '" + label +
                                 "' is never selected by name in any "
                                 "tools/ci_gate.sh run_ctest stage");
                }
                if (semi == std::string::npos)
                    break;
                b = semi + 1;
            }
            pos += 6;
        }
    }
}

/** I009: bench JSON keys + schema tags pinned by run_bench.cmake. */
void
checkBenchSchema(const Corpus &corpus, Sink &sink)
{
    const SourceFile *bench = corpus.find(kBenchTool);
    const SourceFile *pin = corpus.find(kBenchPin);
    if (bench == nullptr || !bench->tokenized || pin == nullptr)
        return;
    const std::vector<Token> &toks = bench->stream.tokens;
    std::map<std::string, std::size_t> keys;
    std::map<std::string, std::size_t> tags;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].isIdent("key") && toks[i + 1].isPunct('(') &&
            toks[i + 2].kind == TokKind::String)
            keys.emplace(toks[i + 2].text, toks[i + 2].line);
    }
    for (const Token &tok : toks) {
        if (tok.kind == TokKind::String &&
            hasPrefix(tok.text, "accelwall-bench-"))
            tags.emplace(tok.text, tok.line);
    }
    for (const auto &[key, line] : keys) {
        if (!containsWord(pin->text, key)) {
            sink.add(RuleId::BenchSchemaKeys, kBenchTool, line,
                     "bench emits JSON key '" + key + "' that " +
                         kBenchPin + " never pins");
        }
    }
    for (const auto &[tag, line] : tags) {
        if (pin->text.find(tag) == std::string::npos) {
            sink.add(RuleId::BenchSchemaKeys, kBenchTool, line,
                     "bench schema tag '" + tag + "' is not pinned by " +
                         kBenchPin);
        }
    }
}

} // namespace

void
checkToolSurface(const Corpus &corpus, Sink &sink)
{
    checkCliFlags(corpus, sink);
    checkEnvKnobs(corpus, sink);
    checkErrorDocs(corpus, sink);
    checkCiLabels(corpus, sink);
    checkBenchSchema(corpus, sink);
}

} // namespace accelwall::ifacecheck::internal
