/**
 * @file
 * Shared plumbing between the two rule translation units
 * (serve_rules.cc: I001..I003/I010 serving surface; tool_rules.cc:
 * I004..I009 tool/CI surface). Not part of the public ifacecheck API.
 */

#ifndef ACCELWALL_IFACECHECK_INTERNAL_HH
#define ACCELWALL_IFACECHECK_INTERNAL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "ifacecheck/check.hh"

namespace accelwall::ifacecheck::internal
{

/** Collects diagnostics with suppression + cap handling. */
class Sink
{
  public:
    Sink(const Corpus &corpus, const Options &options, Report *report)
        : corpus_(corpus), options_(options), report_(report)
    {
    }

    /**
     * Record one finding at @p file:@p line unless an inline
     * `srccheck:allow(<rule>)` marker disarms it there.
     */
    void add(RuleId rule, const std::string &file, std::size_t line,
             std::string message);

  private:
    const Corpus &corpus_;
    const Options &options_;
    Report *report_;
};

bool hasPrefix(const std::string &s, const std::string &prefix);
bool hasSuffix(const std::string &s, const std::string &suffix);

/**
 * True when @p word occurs in @p text with neither neighbor in the
 * name charset [A-Za-z0-9_-] — i.e. as a whole interface name, not a
 * substring of a longer one.
 */
bool containsWord(const std::string &text, const std::string &word);

/** One parsed markdown table row: trimmed, backtick-stripped cells. */
struct DocRow
{
    std::vector<std::string> cells;
    std::size_t line = 0;
};

/**
 * The rows of the first markdown table at or after the first line of
 * @p text containing @p anchor (separator rows dropped). Empty when
 * the anchor or the table is missing.
 */
std::vector<DocRow> docTableRows(const std::string &text,
                                 const std::string &anchor);

/** Every '|' table row in @p text, for anchor-free scans (I007). */
std::vector<DocRow> allDocRows(const std::string &text);

/** Anchor files the cross-surface rules diff, by repo convention. */
inline constexpr const char *kMetricsImpl = "src/serve/metrics.cc";
inline constexpr const char *kServiceImpl = "src/serve/service.cc";
inline constexpr const char *kErrorHeader = "src/util/error.hh";
inline constexpr const char *kReadme = "README.md";
inline constexpr const char *kDesign = "DESIGN.md";
inline constexpr const char *kGateScript = "tools/ci_gate.sh";
inline constexpr const char *kBenchTool = "tools/accelwall_bench.cc";
inline constexpr const char *kBenchPin = "tests/golden/run_bench.cmake";
inline constexpr const char *kTestsCMake = "tests/CMakeLists.txt";
inline constexpr const char *kToolsCMake = "tools/CMakeLists.txt";

/** Rules I001..I003, I010: metrics + endpoints (serving surface). */
void checkServeSurface(const Corpus &corpus, Sink &sink);

/** Rules I004..I009: flags, env knobs, docs, labels, bench schema. */
void checkToolSurface(const Corpus &corpus, Sink &sink);

} // namespace accelwall::ifacecheck::internal

#endif // ACCELWALL_IFACECHECK_INTERNAL_HH
