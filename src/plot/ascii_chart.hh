/**
 * @file
 * Terminal scatter/series charts.
 *
 * There is no plotting stack in this environment, so the
 * figure-regeneration benches render their series directly as ASCII
 * charts: log- or linear-axis scatter plots with multiple labeled
 * series, mirroring what the paper's figures plot.
 */

#ifndef ACCELWALL_PLOT_ASCII_CHART_HH
#define ACCELWALL_PLOT_ASCII_CHART_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace accelwall::plot
{

/** Axis transform. */
enum class Scale
{
    Linear,
    Log10,
};

/** One labeled point series. */
struct Series
{
    std::string label;
    /** Marker drawn for this series' points (e.g. 'o', '*', '+'). */
    char marker = 'o';
    std::vector<double> xs;
    std::vector<double> ys;
};

/** Chart configuration. */
struct ChartConfig
{
    /** Plot-area size in character cells. */
    int width = 64;
    int height = 20;
    Scale x_scale = Scale::Linear;
    Scale y_scale = Scale::Linear;
    /**
     * Print axis ticks as plain fixed-point numbers instead of
     * SI-suffixed ones (useful for year axes, where "2.0K" misleads).
     */
    bool x_plain_ticks = false;
    bool y_plain_ticks = false;
    std::string x_label;
    std::string y_label;
    std::string title;
};

/**
 * Render-only chart: collect series, then print.
 *
 * Points sharing a cell are drawn with the marker of the last series
 * added; out-of-range or non-positive values on log axes are skipped
 * with a warning count in the footer.
 */
class AsciiChart
{
  public:
    explicit AsciiChart(ChartConfig config);

    /** Add a series; empty series are allowed and skipped. */
    void addSeries(Series series);

    /** Render the chart, axes, and legend to @p os. */
    void print(std::ostream &os) const;

    /** Render to a string (for tests). */
    std::string str() const;

  private:
    ChartConfig config_;
    std::vector<Series> series_;
};

} // namespace accelwall::plot

#endif // ACCELWALL_PLOT_ASCII_CHART_HH
