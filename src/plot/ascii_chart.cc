#include "plot/ascii_chart.hh"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/format.hh"
#include "util/logging.hh"

namespace accelwall::plot
{

namespace
{

/** Apply an axis transform; NaN for invalid log inputs. */
double
transform(double v, Scale scale)
{
    if (scale == Scale::Log10)
        return v > 0.0 ? std::log10(v) : std::nan("");
    return v;
}

/** Invert an axis transform (for tick labels). */
double
untransform(double t, Scale scale)
{
    if (scale == Scale::Log10)
        return std::pow(10.0, t);
    return t;
}

} // namespace

AsciiChart::AsciiChart(ChartConfig config)
    : config_(std::move(config))
{
    if (config_.width < 16 || config_.height < 4)
        fatal("AsciiChart: plot area must be at least 16x4");
}

void
AsciiChart::addSeries(Series series)
{
    if (series.xs.size() != series.ys.size())
        fatal("AsciiChart: series '", series.label,
              "' has mismatched x/y lengths");
    series_.push_back(std::move(series));
}

void
AsciiChart::print(std::ostream &os) const
{
    // Collect transformed extents.
    double min_x = 1e300, max_x = -1e300;
    double min_y = 1e300, max_y = -1e300;
    int skipped = 0;
    for (const auto &s : series_) {
        for (std::size_t i = 0; i < s.xs.size(); ++i) {
            double tx = transform(s.xs[i], config_.x_scale);
            double ty = transform(s.ys[i], config_.y_scale);
            if (std::isnan(tx) || std::isnan(ty)) {
                ++skipped;
                continue;
            }
            min_x = std::min(min_x, tx);
            max_x = std::max(max_x, tx);
            min_y = std::min(min_y, ty);
            max_y = std::max(max_y, ty);
        }
    }

    if (!config_.title.empty())
        os << config_.title << '\n';

    if (min_x > max_x) {
        os << "(no plottable points)\n";
        return;
    }
    // Degenerate extents get a symmetric margin.
    if (max_x == min_x) {
        max_x += 1.0;
        min_x -= 1.0;
    }
    if (max_y == min_y) {
        max_y += 1.0;
        min_y -= 1.0;
    }

    const int w = config_.width, h = config_.height;
    std::vector<std::string> grid(h, std::string(w, ' '));
    int plotted = 0;
    for (const auto &s : series_) {
        for (std::size_t i = 0; i < s.xs.size(); ++i) {
            double tx = transform(s.xs[i], config_.x_scale);
            double ty = transform(s.ys[i], config_.y_scale);
            if (std::isnan(tx) || std::isnan(ty))
                continue;
            int col = static_cast<int>(std::lround(
                (tx - min_x) / (max_x - min_x) * (w - 1)));
            int row = static_cast<int>(std::lround(
                (ty - min_y) / (max_y - min_y) * (h - 1)));
            grid[h - 1 - row][col] = s.marker;
            ++plotted;
        }
    }

    auto fmt_tick = [](double v, bool plain) {
        return plain ? fmtFixed(v, 1) : fmtSi(v, 1);
    };

    // Y axis: label the top, middle, and bottom rows.
    auto y_tick = [&](int row) {
        double t = min_y + (max_y - min_y) *
                              static_cast<double>(h - 1 - row) / (h - 1);
        return fmt_tick(untransform(t, config_.y_scale),
                        config_.y_plain_ticks);
    };
    std::size_t label_w = 0;
    for (int row : {0, h / 2, h - 1})
        label_w = std::max(label_w, y_tick(row).size());

    for (int row = 0; row < h; ++row) {
        std::string label;
        if (row == 0 || row == h / 2 || row == h - 1)
            label = y_tick(row);
        os << padLeft(label, label_w) << " |" << grid[row] << '\n';
    }
    os << std::string(label_w + 1, ' ') << '+'
       << std::string(w, '-') << '\n';

    // X axis: min, mid, max ticks.
    std::string x_min = fmt_tick(untransform(min_x, config_.x_scale),
                                 config_.x_plain_ticks);
    std::string x_mid =
        fmt_tick(untransform(0.5 * (min_x + max_x), config_.x_scale),
                 config_.x_plain_ticks);
    std::string x_max = fmt_tick(untransform(max_x, config_.x_scale),
                                 config_.x_plain_ticks);
    std::string axis(w, ' ');
    axis.replace(0, x_min.size(), x_min);
    if (w / 2 + static_cast<int>(x_mid.size()) < w)
        axis.replace(w / 2, x_mid.size(), x_mid);
    if (static_cast<int>(x_max.size()) <= w)
        axis.replace(w - x_max.size(), x_max.size(), x_max);
    os << std::string(label_w + 2, ' ') << axis << '\n';

    if (!config_.x_label.empty() || !config_.y_label.empty()) {
        os << std::string(label_w + 2, ' ') << config_.x_label;
        if (!config_.y_label.empty())
            os << "   (y: " << config_.y_label << ")";
        os << '\n';
    }

    // Legend.
    os << "legend:";
    for (const auto &s : series_) {
        if (!s.xs.empty())
            os << "  " << s.marker << " = " << s.label;
    }
    os << '\n';
    if (skipped > 0)
        os << "(" << skipped << " points outside the log domain "
           << "skipped)\n";
    if (plotted == 0)
        os << "(no plottable points)\n";
}

std::string
AsciiChart::str() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace accelwall::plot
