/**
 * @file
 * GPU graphics-rendering case study (Section IV-B, Figures 5-7).
 *
 * The paper joins an AnandTech results database (24 game benchmarks,
 * 20+ GPUs per game) with GPU datasheets. We reconstruct the datasheet
 * side from public specifications and *synthesize* the frame-rate side
 * (DESIGN.md substitutions): each GPU's frame rate on a game is its
 * physical throughput potential times an architecture-quality factor
 * times small log-normal noise. The quality factors are the ground
 * truth the CSR pipeline must recover — they encode the paper's
 * findings (first architecture on a new node underperforms, e.g. Fermi;
 * quality matures as the node stabilizes; overall CSR stays within
 * ~0.95-1.5x while absolute gains grow by an order of magnitude more).
 *
 * Each game is only benchmarked on GPUs of its own era, so some
 * architecture pairs share fewer than five games and Figure 6/7's
 * transitive completion (Eq. 4) genuinely engages.
 */

#ifndef ACCELWALL_STUDIES_GPU_HH
#define ACCELWALL_STUDIES_GPU_HH

#include <string>
#include <vector>

#include "csr/csr.hh"
#include "potential/chip_spec.hh"

namespace accelwall::studies
{

/** One GPU micro-architecture generation. */
struct GpuArch
{
    std::string name;
    /** First product year. */
    double year = 0.0;
    /** Launch CMOS node in nm. */
    double node_nm = 0.0;
    /**
     * Architecture quality: the CMOS-independent factor (ground truth
     * CSR) the synthetic frame rates embed.
     */
    double quality = 1.0;
};

/** One GPU product. */
struct GpuChip
{
    std::string name;
    std::string arch;
    double year = 0.0;
    double node_nm = 0.0;
    double area_mm2 = 0.0;
    double freq_mhz = 0.0;
    double tdp_w = 0.0;
    /** Paper's opaque (high-performance) vs translucent markers. */
    bool high_end = true;
};

/** One game benchmark. */
struct GameApp
{
    std::string name;
    /** Release year: GPUs are tested on games of their era. */
    double year = 0.0;
    /** Frame rate of the reference GPU at reference potential. */
    double base_fps = 0.0;
};

/** One synthesized benchmark result. */
struct GpuResult
{
    std::string gpu;
    std::string arch;
    std::string app;
    double year = 0.0; // GPU year
    double fps = 0.0;
    double frames_per_joule = 0.0;
    bool high_end = true;
};

/** The architecture generations of Figures 6-7, by year. */
const std::vector<GpuArch> &gpuArchs();

/** The GPU corpus (25 products, 2008-2017). */
const std::vector<GpuChip> &gpuChips();

/** The 24 game benchmarks. */
const std::vector<GameApp> &gameApps();

/** The five applications Figure 5 plots. */
const std::vector<std::string> &headlineApps();

/** Architecture-quality lookup; fatal() on unknown. */
double archQuality(const std::string &arch);

/** Physical spec for the potential model. */
potential::ChipSpec gpuSpec(const GpuChip &chip);

/**
 * Synthesize the full benchmark table (deterministic): every (GPU,
 * game) pair whose eras overlap, with fps and frames/J.
 */
const std::vector<GpuResult> &gpuBenchmarks();

/**
 * The Figure 5 series for one app: ChipGains (gain = fps or frames/J)
 * over the GPUs that ran it, ordered by GPU year. The paper's headline
 * trend curves follow the high-performance (opaque-marker) GPUs; pass
 * @p high_end_only to match.
 */
std::vector<csr::ChipGain> gpuAppSeries(const std::string &app,
                                        bool use_efficiency,
                                        bool high_end_only = false);

} // namespace accelwall::studies

#endif // ACCELWALL_STUDIES_GPU_HH
