#include "studies/fpga.hh"

#include "potential/chip_spec.hh"
#include "util/logging.hh"

namespace accelwall::studies
{

const std::vector<FpgaCnnDesign> &
fpgaCnnDesigns()
{
    // label       model     year    node  mm²    MHz    W     GOPS   LUT% DSP% BRAM%
    static const std::vector<FpgaCnnDesign> designs = {
        // --- AlexNet ---
        { "FPGA2015",   "AlexNet", 2015.1, 28.0, 600.0, 100.0, 21.0,
          61.6, 61.0, 80.0, 50.0 },
        { "FPGA2016",   "AlexNet", 2016.1, 28.0, 600.0, 120.0, 25.8,
          136.5, 46.0, 37.0, 52.0 },
        { "FPGA2016+",  "AlexNet", 2016.1, 28.0, 350.0, 150.0, 9.6,
          187.8, 84.0, 89.0, 87.0 },
        { "FPL2016",    "AlexNet", 2016.6, 20.0, 560.0, 180.0, 26.0,
          390.0, 60.0, 55.0, 58.0 },
        { "ICCAD2016",  "AlexNet", 2016.8, 20.0, 560.0, 200.0, 28.0,
          445.0, 55.0, 68.0, 62.0 },
        { "ISCA2017",   "AlexNet", 2017.5, 28.0, 600.0, 150.0, 25.0,
          320.0, 70.0, 60.0, 70.0 },
        { "ISCA2017+",  "AlexNet", 2017.5, 28.0, 600.0, 170.0, 26.0,
          360.0, 72.0, 65.0, 75.0 },
        { "ISCA2017*",  "AlexNet", 2017.5, 20.0, 560.0, 200.0, 30.0,
          460.0, 65.0, 70.0, 60.0 },
        { "FPGA2017",   "AlexNet", 2017.1, 20.0, 560.0, 231.0, 35.0,
          866.0, 68.0, 80.0, 72.0 },
        { "FPGA2017+",  "AlexNet", 2017.1, 20.0, 560.0, 303.0, 45.0,
          1382.0, 75.0, 92.0, 80.0 },
        { "FPGA2017*",  "AlexNet", 2017.1, 20.0, 560.0, 290.0, 33.0,
          1460.0, 78.0, 90.0, 85.0 },
        // --- VGG-16 ---
        { "FPGA2016",   "VGG-16", 2016.1, 28.0, 600.0, 120.0, 25.0,
          117.8, 50.0, 40.0, 55.0 },
        { "FPGA2016+",  "VGG-16", 2016.1, 28.0, 350.0, 150.0, 9.6,
          137.0, 84.0, 89.0, 87.0 },
        { "FPGA2016*",  "VGG-16", 2016.6, 28.0, 600.0, 150.0, 24.0,
          348.0, 70.0, 80.0, 70.0 },
        { "ICCAD2016",  "VGG-16", 2016.8, 20.0, 560.0, 200.0, 28.0,
          460.0, 60.0, 65.0, 62.0 },
        { "FCCM2017",   "VGG-16", 2017.3, 20.0, 560.0, 200.0, 30.0,
          645.0, 65.0, 72.0, 68.0 },
        { "FPGA2017",   "VGG-16", 2017.1, 20.0, 560.0, 231.0, 35.0,
          866.0, 68.0, 80.0, 72.0 },
        { "FPGA2017+",  "VGG-16", 2017.1, 20.0, 560.0, 240.0, 36.0,
          920.0, 72.0, 82.0, 75.0 },
        { "FPGA2017*",  "VGG-16", 2017.1, 20.0, 560.0, 180.0, 30.0,
          720.0, 66.0, 75.0, 70.0 },
        { "FPGA2018",   "VGG-16", 2018.1, 20.0, 560.0, 200.0, 32.0,
          1068.0, 76.0, 85.0, 80.0 },
    };
    return designs;
}

std::vector<FpgaCnnDesign>
fpgaDesignsFor(const std::string &model)
{
    std::vector<FpgaCnnDesign> out;
    for (const auto &d : fpgaCnnDesigns()) {
        if (d.model == model)
            out.push_back(d);
    }
    if (out.empty())
        fatal("fpgaDesignsFor: no designs for model '", model, "'");
    return out;
}

csr::ChipGain
fpgaChipGain(const FpgaCnnDesign &design, bool use_efficiency)
{
    csr::ChipGain out;
    out.name = design.label;
    out.year = design.year;
    out.spec.node_nm = units::Nanometers{design.node_nm};
    out.spec.area_mm2 = units::SquareMillimeters{design.area_mm2};
    out.spec.freq_ghz = units::unit_cast<units::Gigahertz>(
        units::Megahertz{design.freq_mhz});
    out.spec.tdp_w = potential::kUncappedTdp;
    out.gain = use_efficiency ? design.gops / design.tdp_w // GOPS/J
                              : design.gops;
    return out;
}

std::vector<csr::ChipGain>
fpgaChipGains(const std::vector<FpgaCnnDesign> &designs,
              bool use_efficiency)
{
    std::vector<csr::ChipGain> out;
    out.reserve(designs.size());
    for (const auto &d : designs)
        out.push_back(fpgaChipGain(d, use_efficiency));
    return out;
}

} // namespace accelwall::studies
