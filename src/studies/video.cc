#include "studies/video.hh"

#include "chipdb/budget.hh"
#include "potential/chip_spec.hh"

namespace accelwall::studies
{

const std::vector<VideoChip> &
videoDecoderChips()
{
    // label          year    node  kgate  KB     MHz    mW     MPix/s
    static const std::vector<VideoChip> chips = {
        { "ISSCC2006",   2006.0, 180.0,  160.0,   4.5, 120.0, 240.0,   62.0 },
        { "ISSCC2007",   2007.0, 130.0,  252.0,   9.0, 135.0, 209.0,  124.0 },
        { "VLSI2009",    2009.5,  90.0,  414.0,  16.0, 150.0, 160.0,  186.0 },
        { "ISSCC2010",   2010.0,  90.0,  662.0,  40.0, 166.0, 278.0,  373.0 },
        { "ISSCC2011",   2011.0,  65.0,  924.0, 100.0, 280.0, 428.0, 1062.0 },
        { "JSSC2011",    2011.5,  65.0, 1157.0, 124.0, 330.0, 460.0, 1328.0 },
        { "ISSCC2012",   2012.0,  65.0, 2100.0, 220.0, 330.0, 668.0, 2000.0 },
        { "ISSCC2013",   2013.0,  40.0,  446.0,  27.0, 200.0, 164.0,  498.0 },
        { "ESSCIRC2014", 2014.5,  28.0, 1400.0, 150.0, 350.0, 356.0, 2490.0 },
        { "JSSC2016",    2016.0,  28.0,  820.0,  56.0, 300.0, 161.0,  996.0 },
        { "ESSCIRC2016", 2016.5,  28.0, 1820.0, 164.0, 380.0, 284.0, 2490.0 },
        { "JSSC2017",    2017.0,  40.0, 3630.0, 364.0, 400.0, 683.0, 3968.0 },
    };
    return chips;
}

double
videoTransistors(const VideoChip &chip)
{
    double logic = chip.kgates * 1e3 * 4.0;
    double sram_bits = chip.sram_kb * 1024.0 * 8.0;
    return logic + sram_bits * 6.0;
}

csr::ChipGain
videoChipGain(const VideoChip &chip, bool use_efficiency)
{
    chipdb::BudgetModel budget;
    potential::ChipSpec spec;
    spec.node_nm = units::Nanometers{chip.node_nm};
    spec.area_mm2 = budget.areaForTransistors(
        units::TransistorCount{videoTransistors(chip)}, spec.node_nm);
    spec.freq_ghz =
        units::unit_cast<units::Gigahertz>(units::Megahertz{chip.freq_mhz});
    spec.tdp_w = potential::kUncappedTdp;

    csr::ChipGain out;
    out.name = chip.label;
    out.year = chip.year;
    out.spec = spec;
    out.gain = use_efficiency
                   ? chip.mpix_s / (chip.power_mw / 1e3) // MPixels/J
                   : chip.mpix_s;                        // MPixels/s
    return out;
}

std::vector<csr::ChipGain>
videoChipGains(bool use_efficiency)
{
    std::vector<csr::ChipGain> out;
    for (const auto &chip : videoDecoderChips())
        out.push_back(videoChipGain(chip, use_efficiency));
    return out;
}

} // namespace accelwall::studies
