/**
 * @file
 * Bitcoin mining case study (Section IV-D, Figures 1 and 9).
 *
 * SHA-256 mining hardware across all four platform classes. Values are
 * reconstructed from the paper's figures, the Bitcoin wiki hardware
 * tables, and product datasheets (DESIGN.md substitutions). Because
 * mining products integrate wildly different chip counts, the paper's
 * performance metric is throughput per chip area (GHash/s/mm²);
 * efficiency is GHash/J.
 *
 * Headline shapes preserved: ASIC perf/area improves ~500-600x across
 * ASIC generations (~600,000x over the CPU baseline) while the physical
 * potential improves ~300x, leaving CSR ~1.7-2x; energy-efficiency CSR
 * shows two improvement regions (130/110nm, then 28/16nm) separated by
 * the abrupt 110nm -> 28nm node jump.
 */

#ifndef ACCELWALL_STUDIES_BITCOIN_HH
#define ACCELWALL_STUDIES_BITCOIN_HH

#include <string>
#include <vector>

#include "chipdb/record.hh"
#include "csr/csr.hh"

namespace accelwall::studies
{

/** One mining chip (per-chip figures, not whole-product). */
struct MiningChip
{
    std::string label;
    chipdb::Platform platform = chipdb::Platform::ASIC;
    /** Introduction date in fractional years (Fig. 1 x-axis). */
    double year = 0.0;
    double node_nm = 0.0;
    /** Die area in mm². */
    double area_mm2 = 0.0;
    /** Core clock in MHz. */
    double freq_mhz = 0.0;
    /** Per-chip power in watts. */
    double watts = 0.0;
    /** Per-chip hash rate in GHash/s. */
    double ghs = 0.0;
};

/** The full Figure 9 chip set (CPU, GPU, FPGA, ASIC), by date. */
const std::vector<MiningChip> &miningChips();

/** Only the ASIC entries (Figure 1's series). */
std::vector<MiningChip> miningAsics();

/**
 * Convert to a csr::ChipGain.
 *
 * @param use_efficiency False: gain is GHash/s/mm² (Figs. 1, 9a) and
 *        the matching CSR metric is csr::Metric::AreaThroughput. True:
 *        gain is GHash/J (Fig. 9b) with Metric::EnergyEfficiency.
 */
csr::ChipGain miningChipGain(const MiningChip &chip, bool use_efficiency);

/** Convert a whole set. */
std::vector<csr::ChipGain>
miningChipGains(const std::vector<MiningChip> &chips, bool use_efficiency);

} // namespace accelwall::studies

#endif // ACCELWALL_STUDIES_BITCOIN_HH
