/**
 * @file
 * FPGA convolutional-neural-network case study (Section IV-C,
 * Figure 8).
 *
 * Published FPGA implementations of AlexNet and VGG-16 on 28nm and 20nm
 * parts, reconstructed from the paper's figure and its cited
 * FPGA/FPL/ICCAD/FCCM/ISCA publications (DESIGN.md substitutions).
 *
 * Headline shapes preserved: AlexNet throughput improves ~24x and
 * efficiency ~14x (VGG-16: ~9x and ~7x); most 20nm parts beat the 28nm
 * parts; CSR improves by up to ~6x across designs — the emerging-domain
 * counterexample to the mature-domain studies — but stalls between the
 * best designs.
 */

#ifndef ACCELWALL_STUDIES_FPGA_HH
#define ACCELWALL_STUDIES_FPGA_HH

#include <string>
#include <vector>

#include "csr/csr.hh"

namespace accelwall::studies
{

/** One published FPGA CNN implementation. */
struct FpgaCnnDesign
{
    std::string label;
    /** "AlexNet" or "VGG-16". */
    std::string model;
    double year = 0.0;
    /** FPGA fabric node in nm (28 or 20). */
    double node_nm = 0.0;
    /** FPGA die area in mm². */
    double area_mm2 = 0.0;
    /** Achieved design clock in MHz (Fig. 8b). */
    double freq_mhz = 0.0;
    /** Board power in W. */
    double tdp_w = 0.0;
    /** Throughput in GOPS (Fig. 8a). */
    double gops = 0.0;
    /** Resource utilization percentages (Fig. 8b). */
    double lut_pct = 0.0;
    double dsp_pct = 0.0;
    double bram_pct = 0.0;
};

/** All designs, AlexNet first then VGG-16, each by year. */
const std::vector<FpgaCnnDesign> &fpgaCnnDesigns();

/** Only the designs for one model ("AlexNet" or "VGG-16"). */
std::vector<FpgaCnnDesign> fpgaDesignsFor(const std::string &model);

/**
 * Convert to a csr::ChipGain: gain is GOPS (Fig. 8a) or GOPS/J
 * (Fig. 8c); the physical spec uses the fabric node, die area, and the
 * *achieved design clock* — utilization of the fabric is part of the
 * specialization return, not the physical potential.
 */
csr::ChipGain fpgaChipGain(const FpgaCnnDesign &design,
                           bool use_efficiency);

/** Convert a whole set. */
std::vector<csr::ChipGain>
fpgaChipGains(const std::vector<FpgaCnnDesign> &designs,
              bool use_efficiency);

} // namespace accelwall::studies

#endif // ACCELWALL_STUDIES_FPGA_HH
