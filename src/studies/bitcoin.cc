#include "studies/bitcoin.hh"

#include "potential/chip_spec.hh"

namespace accelwall::studies
{

using chipdb::Platform;

const std::vector<MiningChip> &
miningChips()
{
    // label                 plat            year    node   mm²    MHz    W      GH/s
    static const std::vector<MiningChip> chips = {
        // First-generation software miners.
        { "Athlon64-CPU",     Platform::CPU,  2009.2,  90.0, 190.0, 2400.0, 89.0, 0.0014 },
        { "Core-i5-CPU",      Platform::CPU,  2010.0,  45.0, 296.0, 2660.0, 95.0, 0.0060 },
        { "Xeon-CPU",         Platform::CPU,  2010.5,  32.0, 240.0, 2930.0, 95.0, 0.0066 },
        // GPU era.
        { "HD5870-GPU",       Platform::GPU,  2010.3,  40.0, 334.0,  850.0, 188.0, 0.39 },
        { "HD6990-GPU",       Platform::GPU,  2011.2,  40.0, 389.0,  830.0, 375.0, 0.76 },
        { "GTX580-GPU",       Platform::GPU,  2011.0,  40.0, 520.0,  772.0, 244.0, 0.14 },
        // FPGA boards.
        { "Spartan6-FPGA",    Platform::FPGA, 2011.5,  45.0, 220.0,  100.0, 10.0, 0.10 },
        { "LX150-quad-FPGA",  Platform::FPGA, 2011.8,  45.0, 220.0,  100.0, 9.0, 0.22 },
        { "Stratix4-FPGA",    Platform::FPGA, 2012.0,  40.0, 300.0,  120.0, 14.0, 0.26 },
        // ASIC era (Figure 1's series): per-chip numbers.
        { "Avalon1-ASIC",     Platform::ASIC, 2012.9, 130.0,  40.0,  100.0,  2.6, 0.28 },
        { "ASICMiner-ASIC",   Platform::ASIC, 2013.1, 130.0,  36.0,  110.0,  2.4, 0.30 },
        { "Bitfury1-ASIC",    Platform::ASIC, 2013.4, 110.0,  14.0,  180.0,  1.1, 0.29 },
        { "Avalon2-ASIC",     Platform::ASIC, 2013.7, 110.0,  20.0,  200.0,  1.5, 0.50 },
        { "Avalon3-ASIC",     Platform::ASIC, 2014.0,  55.0,  25.0,  300.0,  3.0, 1.50 },
        { "BM1382-ASIC",      Platform::ASIC, 2014.3,  55.0,  22.0,  350.0,  2.8, 1.70 },
        { "SP-Tech-ASIC",     Platform::ASIC, 2014.5,  28.0,  30.0,  500.0,  4.5, 5.50 },
        { "BM1384-ASIC",      Platform::ASIC, 2014.9,  28.0,  24.0,  550.0,  3.6, 5.80 },
        { "A3222-ASIC",       Platform::ASIC, 2015.3,  28.0,  20.0,  600.0,  3.0, 5.50 },
        { "BM1385-ASIC",      Platform::ASIC, 2015.7,  28.0,  21.0,  600.0,  2.7, 6.30 },
        { "A3212-16nm-ASIC",  Platform::ASIC, 2016.1,  16.0,  16.0,  650.0,  4.2, 40.0 },
        { "BM1387-ASIC",      Platform::ASIC, 2016.5,  16.0,  18.0,  700.0,  6.3, 64.0 },
    };
    return chips;
}

std::vector<MiningChip>
miningAsics()
{
    std::vector<MiningChip> out;
    for (const auto &chip : miningChips()) {
        if (chip.platform == Platform::ASIC)
            out.push_back(chip);
    }
    return out;
}

csr::ChipGain
miningChipGain(const MiningChip &chip, bool use_efficiency)
{
    csr::ChipGain out;
    out.name = chip.label;
    out.year = chip.year;
    out.spec.node_nm = units::Nanometers{chip.node_nm};
    out.spec.area_mm2 = units::SquareMillimeters{chip.area_mm2};
    out.spec.freq_ghz =
        units::unit_cast<units::Gigahertz>(units::Megahertz{chip.freq_mhz});
    out.spec.tdp_w = potential::kUncappedTdp;
    out.gain = use_efficiency ? chip.ghs / chip.watts
                              : chip.ghs / chip.area_mm2;
    return out;
}

std::vector<csr::ChipGain>
miningChipGains(const std::vector<MiningChip> &chips, bool use_efficiency)
{
    std::vector<csr::ChipGain> out;
    out.reserve(chips.size());
    for (const auto &chip : chips)
        out.push_back(miningChipGain(chip, use_efficiency));
    return out;
}

} // namespace accelwall::studies
