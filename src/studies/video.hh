/**
 * @file
 * Video decoder ASIC case study (Section IV-A, Figure 4).
 *
 * Twelve fabricated decoder ASICs spanning ISSCC2006 (180nm, HD) to
 * JSSC2017 (40nm, 8K). The dataset is reconstructed from the paper's
 * figures and its cited ISSCC/JSSC/VLSI/ESSCIRC publications (see
 * DESIGN.md substitutions): gate counts and SRAM capacities drive the
 * transistor estimate the paper describes for Figure 4b ("estimations of
 * the number of transistors given the number of NAND logic gates, and
 * the number of SRAM bits").
 *
 * Headline shapes preserved: throughput up to ~64x and energy
 * efficiency up to ~34x over the 2006 baseline, a ~36x transistor-count
 * spread, and CSR that fails to improve (dips below 1) for the
 * best-performing parts.
 */

#ifndef ACCELWALL_STUDIES_VIDEO_HH
#define ACCELWALL_STUDIES_VIDEO_HH

#include <string>
#include <vector>

#include "csr/csr.hh"

namespace accelwall::studies
{

/** One published decoder ASIC. */
struct VideoChip
{
    std::string label;
    /** Publication year (x-axis of Figure 4). */
    double year = 0.0;
    /** CMOS node in nm. */
    double node_nm = 0.0;
    /** Core logic complexity in kilo NAND-gates. */
    double kgates = 0.0;
    /** On-chip SRAM in kilobytes. */
    double sram_kb = 0.0;
    /** Clock in MHz. */
    double freq_mhz = 0.0;
    /** Measured decoding power in mW. */
    double power_mw = 0.0;
    /** Decoding throughput in MPixels/s. */
    double mpix_s = 0.0;
};

/** The Figure 4 chip set, in publication order. */
const std::vector<VideoChip> &videoDecoderChips();

/**
 * Transistor estimate per the paper's method: 4 transistors per NAND
 * gate of core logic plus 6 per SRAM bit.
 */
double videoTransistors(const VideoChip &chip);

/**
 * Convert to a csr::ChipGain. The physical spec derives die area from
 * the transistor estimate (inverting the Figure 3b law) so the
 * potential model sees exactly the disclosed budget; TDP is uncapped —
 * these sub-watt parts are never envelope-limited.
 *
 * @param chip The decoder.
 * @param use_efficiency False: gain is MPixels/s (Fig. 4a). True: gain
 *        is MPixels/J (Fig. 4c).
 */
csr::ChipGain videoChipGain(const VideoChip &chip, bool use_efficiency);

/** All chips as ChipGains, same order as videoDecoderChips(). */
std::vector<csr::ChipGain> videoChipGains(bool use_efficiency);

} // namespace accelwall::studies

#endif // ACCELWALL_STUDIES_VIDEO_HH
