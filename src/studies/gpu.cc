#include "studies/gpu.hh"

#include <algorithm>
#include <map>

#include "potential/model.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace accelwall::studies
{

const std::vector<GpuArch> &
gpuArchs()
{
    // Quality factors encode Section IV-B's observations: the first
    // architecture on a fresh node regresses (Fermi on 40nm, Pascal on
    // 16nm vs the mature Maxwell 2); quality recovers as a node
    // stabilizes; the overall span stays within ~1.4x across a decade.
    static const std::vector<GpuArch> archs = {
        { "Tesla", 2008.4, 65.0, 1.00 },
        { "Tesla 2", 2009.0, 55.0, 1.03 },
        { "TeraScale 2", 2009.8, 40.0, 1.00 },
        { "Fermi", 2010.2, 40.0, 0.93 },
        { "Fermi 2", 2010.9, 40.0, 1.05 },
        { "GCN 1", 2012.0, 28.0, 1.07 },
        { "Kepler", 2012.2, 28.0, 1.10 },
        { "GCN 2", 2013.8, 28.0, 1.12 },
        { "Maxwell 2", 2014.7, 28.0, 1.32 },
        { "Pascal", 2016.4, 16.0, 1.27 },
    };
    return archs;
}

const std::vector<GpuChip> &
gpuChips()
{
    // name          arch           year    node  mm²   MHz    W     hi
    static const std::vector<GpuChip> chips = {
        { "GTX 280", "Tesla", 2008.4, 65.0, 576.0, 602.0, 236.0, true },
        { "9800 GT", "Tesla", 2008.5, 65.0, 324.0, 600.0, 105.0, false },
        { "GTX 285", "Tesla 2", 2009.0, 55.0, 470.0, 648.0, 204.0, true },
        { "GTS 250", "Tesla 2", 2009.2, 55.0, 260.0, 738.0, 145.0, false },
        { "HD 5870", "TeraScale 2", 2009.8, 40.0, 334.0, 850.0, 188.0,
          true },
        { "HD 5770", "TeraScale 2", 2009.9, 40.0, 166.0, 850.0, 108.0,
          false },
        { "GTX 480", "Fermi", 2010.2, 40.0, 529.0, 701.0, 250.0, true },
        { "GTX 460", "Fermi", 2010.5, 40.0, 332.0, 675.0, 160.0, false },
        { "GTX 580", "Fermi 2", 2010.9, 40.0, 520.0, 772.0, 244.0, true },
        { "GTX 560 Ti", "Fermi 2", 2011.0, 40.0, 360.0, 822.0, 170.0,
          false },
        { "HD 7970", "GCN 1", 2012.0, 28.0, 352.0, 925.0, 250.0, true },
        { "HD 7850", "GCN 1", 2012.2, 28.0, 212.0, 860.0, 130.0, false },
        { "GTX 680", "Kepler", 2012.2, 28.0, 294.0, 1006.0, 195.0, true },
        { "GTX 660", "Kepler", 2012.7, 28.0, 221.0, 980.0, 140.0, false },
        { "GTX 770", "Kepler", 2013.4, 28.0, 294.0, 1046.0, 230.0, true },
        { "R9 290X", "GCN 2", 2013.8, 28.0, 438.0, 1000.0, 290.0, true },
        { "R9 285", "GCN 2", 2014.7, 28.0, 359.0, 918.0, 190.0, false },
        { "GTX 980", "Maxwell 2", 2014.7, 28.0, 398.0, 1126.0, 165.0,
          true },
        { "GTX 960", "Maxwell 2", 2015.0, 28.0, 227.0, 1127.0, 120.0,
          false },
        { "GTX 980 Ti", "Maxwell 2", 2015.4, 28.0, 601.0, 1000.0, 250.0,
          true },
        { "GTX 1070", "Pascal", 2016.4, 16.0, 314.0, 1506.0, 150.0,
          true },
        { "GTX 1060", "Pascal", 2016.5, 16.0, 200.0, 1506.0, 120.0,
          false },
        { "GTX 1080", "Pascal", 2016.4, 16.0, 314.0, 1607.0, 180.0,
          true },
        { "GTX 1080 Ti", "Pascal", 2017.2, 16.0, 471.0, 1480.0, 250.0,
          true },
        { "Titan Xp", "Pascal", 2017.3, 16.0, 471.0, 1417.0, 250.0,
          true },
    };
    return chips;
}

const std::vector<GameApp> &
gameApps()
{
    // 24 titles spanning 2006-2016; each is benchmarked on GPUs of its
    // own era, so consecutive architecture generations share games while
    // distant ones (Tesla vs Pascal) do not — engaging Eq. 4.
    static const std::vector<GameApp> apps = {
        { "Oblivion FHD", 2006.3, 40.0 },
        { "Company of Heroes FHD", 2006.9, 48.0 },
        { "Stalker FHD", 2007.2, 33.0 },
        { "Crysis FHD", 2007.9, 14.0 },
        { "COD4 FHD", 2008.0, 60.0 },
        { "Crysis Warhead FHD", 2008.7, 28.0 },
        { "Far Cry 2 FHD", 2008.8, 45.0 },
        { "HAWX FHD", 2009.2, 55.0 },
        { "Metro 2033 FHD", 2010.2, 22.0 },
        { "Civilization V FHD", 2010.7, 35.0 },
        { "Portal 2 FHD", 2011.3, 90.0 },
        { "Dirt 3 FHD", 2011.4, 55.0 },
        { "Battlefield 3 FHD", 2011.8, 32.0 },
        { "Skyrim FHD", 2011.9, 48.0 },
        { "Bioshock Infinite FHD", 2013.2, 38.0 },
        { "Tomb Raider FHD", 2013.2, 34.0 },
        { "Crysis 3 FHD", 2013.2, 18.0 },
        { "Battlefield 4 FHD", 2013.8, 30.0 },
        { "Battlefield 4 QHD", 2013.8, 19.0 },
        { "GTA V FHD", 2015.3, 28.0 },
        { "GTA V FHD 99th perc.", 2015.3, 20.0 },
        { "Witcher 3 FHD", 2015.4, 24.0 },
        { "Doom 2016 FHD", 2016.4, 52.0 },
        { "Deus Ex MD FHD", 2016.6, 25.0 },
    };
    return apps;
}

const std::vector<std::string> &
headlineApps()
{
    static const std::vector<std::string> apps = {
        "Crysis 3 FHD",
        "Battlefield 4 FHD",
        "Battlefield 4 QHD",
        "GTA V FHD",
        "GTA V FHD 99th perc.",
    };
    return apps;
}

double
archQuality(const std::string &arch)
{
    for (const auto &a : gpuArchs()) {
        if (a.name == arch)
            return a.quality;
    }
    fatal("unknown GPU architecture '", arch, "'");
}

potential::ChipSpec
gpuSpec(const GpuChip &chip)
{
    potential::ChipSpec spec;
    spec.node_nm = units::Nanometers{chip.node_nm};
    spec.area_mm2 = units::SquareMillimeters{chip.area_mm2};
    spec.freq_ghz =
        units::unit_cast<units::Gigahertz>(units::Megahertz{chip.freq_mhz});
    spec.tdp_w = units::Watts{chip.tdp_w};
    return spec;
}

namespace
{

/** A GPU benchmarks a game when their eras overlap. */
bool
tested(const GpuChip &gpu, const GameApp &app)
{
    return gpu.year >= app.year - 2.0 && gpu.year <= app.year + 4.5;
}

std::vector<GpuResult>
synthesize()
{
    potential::PotentialModel model;
    Rng rng(0x6A3E5u); // deterministic
    const GpuChip &ref = gpuChips().front();
    units::TransistorGigahertz ref_pot = model.throughput(gpuSpec(ref));

    std::vector<GpuResult> out;
    for (const auto &gpu : gpuChips()) {
        double pot = model.throughput(gpuSpec(gpu)) / ref_pot;
        double quality = archQuality(gpu.arch);
        for (const auto &app : gameApps()) {
            if (!tested(gpu, app))
                continue;
            GpuResult r;
            r.gpu = gpu.name;
            r.arch = gpu.arch;
            r.app = app.name;
            r.year = gpu.year;
            r.high_end = gpu.high_end;
            r.fps = app.base_fps * pot * quality * rng.lognoise(0.04);
            // Measured gaming power: the physical model's dissipation
            // estimate with board-level measurement noise.
            double watts = model.power(gpuSpec(gpu)).raw() *
                           rng.lognoise(0.05);
            r.frames_per_joule = r.fps / watts;
            out.push_back(std::move(r));
        }
    }
    return out;
}

} // namespace

const std::vector<GpuResult> &
gpuBenchmarks()
{
    static const std::vector<GpuResult> results = synthesize();
    return results;
}

std::vector<csr::ChipGain>
gpuAppSeries(const std::string &app, bool use_efficiency,
             bool high_end_only)
{
    std::map<std::string, const GpuChip *> by_name;
    for (const auto &gpu : gpuChips())
        by_name[gpu.name] = &gpu;

    std::vector<csr::ChipGain> out;
    for (const auto &r : gpuBenchmarks()) {
        if (r.app != app)
            continue;
        if (high_end_only && !r.high_end)
            continue;
        const GpuChip *gpu = by_name.at(r.gpu);
        csr::ChipGain g;
        g.name = r.gpu;
        g.year = r.year;
        g.spec = gpuSpec(*gpu);
        g.gain = use_efficiency ? r.frames_per_joule : r.fps;
        out.push_back(std::move(g));
    }
    std::sort(out.begin(), out.end(),
              [](const csr::ChipGain &a, const csr::ChipGain &b) {
                  return a.year < b.year;
              });
    if (out.empty())
        fatal("gpuAppSeries: no benchmarks for app '", app, "'");
    return out;
}

} // namespace accelwall::studies
