/**
 * @file
 * Tensor Processing Unit model (Section V, Figure 10, Table I).
 *
 * The paper uses Google's TPU as the worked example of all three
 * specialization concepts applied across all three processing
 * components: simplified 8-bit multiply-add units and DDR3 interfaces,
 * partitioned systolic-array datapaths and banked weight memory, and
 * heterogeneous activation/pooling units with a software-defined DMA
 * interface. This module models a TPU-v1-like systolic inference
 * engine running the nn:: layer descriptions, alongside a
 * general-purpose CPU baseline, to reproduce the headline "TPUs
 * improve the energy-efficiency of DNN workloads by ~80x compared to
 * CPUs".
 */

#ifndef ACCELWALL_TPU_TPU_MODEL_HH
#define ACCELWALL_TPU_TPU_MODEL_HH

#include <string>
#include <vector>

#include "nn/layers.hh"

namespace accelwall::tpu
{

/** A TPU-like accelerator configuration (Figure 10's blocks). */
struct TpuConfig
{
    /** Systolic array dimension (Partitioning, concepts 8-9). */
    int array_dim = 256;
    /** Accelerator clock in GHz. */
    double clock_ghz = 0.7;
    /** CMOS node in nm (TPU v1: 28nm). */
    double node_nm = 28.0;
    /** Operand width in bits (Simplification, concept 7: 8b ints). */
    int operand_bits = 8;
    /** Weight-FIFO (DDR3) bandwidth in GB/s (Simplification, 1+4). */
    double weight_bw_gbs = 30.0;
    /** Unified-buffer capacity in MB (Heterogeneity, concept 3). */
    double unified_buffer_mb = 24.0;
    /**
     * Non-linear activation unit on chip (Heterogeneity, concept 9);
     * without it activations round-trip to the host.
     */
    bool activation_unit = true;
    /** Host I/O bandwidth in GB/s used when activation_unit is off. */
    double host_bw_gbs = 14.0;
    /** Idle (leakage + clocking) power in W. */
    double idle_power_w = 10.0;

    /** The TPU-v1-like reference point. */
    static TpuConfig tpuV1();
};

/** Execution estimate for one layer. */
struct LayerResult
{
    double cycles = 0.0;
    double time_ms = 0.0;
    double energy_mj = 0.0;
    /** Fraction of peak MAC throughput achieved. */
    double utilization = 0.0;
    /** True when weight bandwidth (not compute) set the time. */
    bool memory_bound = false;
};

/** Whole-network estimate. */
struct ModelResult
{
    double time_ms = 0.0;
    double energy_mj = 0.0;
    /** Achieved tera-operations per second (MAC = 2 ops). */
    double tops = 0.0;
    /** Achieved tera-operations per joule. */
    double tops_per_w = 0.0;
};

/**
 * Systolic-array inference model.
 */
class TpuModel
{
  public:
    explicit TpuModel(TpuConfig config);

    /** Peak throughput in TOPS (array_dim^2 MACs/cycle, 2 ops each). */
    double peakTops() const;

    /** Estimate one layer. */
    LayerResult runLayer(const nn::Layer &layer) const;

    /** Estimate a whole network. */
    ModelResult runModel(const std::vector<nn::Layer> &layers) const;

    const TpuConfig &config() const { return config_; }

  private:
    TpuConfig config_;
};

/** A general-purpose CPU running the same network in FP32 SIMD. */
struct CpuConfig
{
    double clock_ghz = 2.6;
    /** FP32 SIMD lanes x FMA ports: MACs per cycle. */
    int macs_per_cycle = 16;
    double node_nm = 22.0;
    double tdp_w = 90.0;
    /**
     * Energy per MAC including instruction supply, cache hierarchy,
     * and OoO control — the general-purpose overhead specialization
     * removes (Hameed et al.'s ~50x instruction-tax plus FP32 vs
     * int8).
     */
    double energy_per_mac_pj = 2000.0;
};

/** Estimate the CPU baseline on a network. */
ModelResult runCpuBaseline(const std::vector<nn::Layer> &layers,
                           const CpuConfig &config = {});

} // namespace accelwall::tpu

#endif // ACCELWALL_TPU_TPU_MODEL_HH
