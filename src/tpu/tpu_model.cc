#include "tpu/tpu_model.hh"

#include <algorithm>
#include <cmath>

#include "cmos/scaling.hh"
#include "util/logging.hh"

namespace accelwall::tpu
{

namespace
{

/**
 * Energy per 8-bit MAC at 28nm including local (systolic) operand
 * movement, in pJ. Scales with operand width (quadratically, array
 * multiplier) and CMOS node.
 */
constexpr double kMacEnergy8b28nmPj = 0.25;

/** Unified-buffer access energy per byte at 28nm, pJ. */
constexpr double kSramEnergyPjPerByte = 1.2;

/** Off-chip (DDR3 weight FIFO) energy per byte, pJ. */
constexpr double kDramEnergyPjPerByte = 60.0;

} // namespace

TpuConfig
TpuConfig::tpuV1()
{
    return TpuConfig{};
}

TpuModel::TpuModel(TpuConfig config)
    : config_(std::move(config))
{
    if (config_.array_dim < 1)
        fatal("TpuModel: array dimension must be >= 1");
    if (config_.operand_bits < 1 || config_.operand_bits > 32)
        fatal("TpuModel: operand width must be 1..32 bits");
}

double
TpuModel::peakTops() const
{
    double macs_per_cycle = static_cast<double>(config_.array_dim) *
                            config_.array_dim;
    return macs_per_cycle * 2.0 * config_.clock_ghz / 1e3;
}

LayerResult
TpuModel::runLayer(const nn::Layer &layer) const
{
    const auto &scaling = cmos::ScalingTable::instance();
    nn::LayerCost cost = nn::layerCost(layer);

    LayerResult out;
    if (cost.macs == 0.0) {
        // Pooling: streamed through the heterogeneous pooling unit (or
        // the host when absent); negligible next to conv/FC layers.
        double bytes = cost.activations * config_.operand_bits / 8.0;
        double bw = config_.activation_unit
                        ? config_.weight_bw_gbs * 4.0 // on-chip stream
                        : config_.host_bw_gbs;
        out.time_ms = bytes / (bw * 1e9) * 1e3;
        out.cycles = out.time_ms * 1e-3 * config_.clock_ghz * 1e9;
        out.energy_mj = bytes * kSramEnergyPjPerByte * 1e-9 +
                        config_.idle_power_w * out.time_ms * 1e-3 * 1e3;
        return out;
    }

    // --- Compute time: the systolic array runs matrix tiles. -------
    // Utilization is capped by how well the layer's dimensions fill
    // the array: output channels map to columns, the receptive field
    // (or FC inputs) to rows.
    double rows = (layer.kind == nn::LayerKind::Conv)
                      ? static_cast<double>(layer.kernel) *
                            layer.kernel * layer.in_c / layer.groups
                      : static_cast<double>(layer.in_w) * layer.in_h *
                            layer.in_c;
    double cols = layer.out_c;
    double fill_rows =
        std::min(1.0, rows / static_cast<double>(config_.array_dim));
    double fill_cols =
        std::min(1.0, cols / static_cast<double>(config_.array_dim));
    out.utilization = fill_rows * fill_cols;

    double peak_macs_per_s = static_cast<double>(config_.array_dim) *
                             config_.array_dim * config_.clock_ghz *
                             1e9;
    double compute_s = cost.macs / (peak_macs_per_s * out.utilization);

    // --- Weight time: parameters stream through the weight FIFO. ---
    double weight_bytes = cost.params * config_.operand_bits / 8.0;
    double weight_s = weight_bytes / (config_.weight_bw_gbs * 1e9);

    // --- Activation round trip without the on-chip unit. -----------
    double act_s = 0.0;
    if (!config_.activation_unit) {
        double act_bytes = cost.activations * 2.0 * 4.0; // FP32 both ways
        act_s = act_bytes / (config_.host_bw_gbs * 1e9);
    }

    double time_s = std::max(compute_s, weight_s) + act_s;
    out.memory_bound = weight_s > compute_s;
    out.time_ms = time_s * 1e3;
    out.cycles = time_s * config_.clock_ghz * 1e9;

    // --- Energy. ----------------------------------------------------
    double width = static_cast<double>(config_.operand_bits) / 8.0;
    double mac_pj = kMacEnergy8b28nmPj * width * width *
                    scaling.dynamicEnergy(units::Nanometers{
                        config_.node_nm}) /
                    scaling.dynamicEnergy(units::Nanometers{28.0});
    double act_bytes_local =
        cost.activations * config_.operand_bits / 8.0;
    double energy_pj = cost.macs * mac_pj +
                       act_bytes_local * kSramEnergyPjPerByte +
                       weight_bytes * kDramEnergyPjPerByte;
    if (!config_.activation_unit)
        energy_pj += cost.activations * 8.0 * kDramEnergyPjPerByte;
    out.energy_mj = energy_pj * 1e-9 +
                    config_.idle_power_w * time_s * 1e3;
    return out;
}

ModelResult
TpuModel::runModel(const std::vector<nn::Layer> &layers) const
{
    ModelResult total;
    double total_ops = 0.0;
    for (const auto &layer : layers) {
        LayerResult r = runLayer(layer);
        total.time_ms += r.time_ms;
        total.energy_mj += r.energy_mj;
        total_ops += nn::layerCost(layer).macs * 2.0;
    }
    total.tops = total_ops / (total.time_ms * 1e-3) / 1e12;
    total.tops_per_w = total_ops / (total.energy_mj * 1e-3) / 1e12;
    return total;
}

ModelResult
runCpuBaseline(const std::vector<nn::Layer> &layers,
               const CpuConfig &config)
{
    double total_macs = 0.0;
    for (const auto &layer : layers)
        total_macs += nn::layerCost(layer).macs;

    double macs_per_s =
        config.clock_ghz * 1e9 * config.macs_per_cycle;

    ModelResult out;
    double time_s = total_macs / macs_per_s;
    out.time_ms = time_s * 1e3;
    out.energy_mj = total_macs * config.energy_per_mac_pj * 1e-9;
    double ops = total_macs * 2.0;
    out.tops = ops / time_s / 1e12;
    out.tops_per_w = ops / (out.energy_mj * 1e-3) / 1e12;
    return out;
}

} // namespace accelwall::tpu
