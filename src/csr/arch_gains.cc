#include "csr/arch_gains.hh"

#include <cmath>

#include "stats/descriptive.hh"
#include "util/logging.hh"

namespace accelwall::csr
{

ArchGainSolver::ArchGainSolver(int min_shared_apps)
    : min_shared_apps_(min_shared_apps)
{
    if (min_shared_apps_ < 1)
        fatal("ArchGainSolver: min_shared_apps must be >= 1");
}

int
ArchGainSolver::indexOf(const std::string &arch) const
{
    auto it = arch_index_.find(arch);
    if (it == arch_index_.end())
        fatal("ArchGainSolver: unknown architecture '", arch, "'");
    return it->second;
}

int
ArchGainSolver::addArch(const std::string &arch)
{
    auto it = arch_index_.find(arch);
    if (it != arch_index_.end())
        return it->second;
    int idx = static_cast<int>(archs_.size());
    archs_.push_back(arch);
    arch_index_[arch] = idx;
    observations_.emplace_back();
    return idx;
}

void
ArchGainSolver::addObservation(const std::string &arch,
                               const std::string &app, double gain)
{
    if (solved_)
        fatal("ArchGainSolver: addObservation after solve()");
    if (gain <= 0.0)
        fatal("ArchGainSolver: gains must be positive");
    observations_[addArch(arch)][app].push_back(gain);
}

void
ArchGainSolver::solve()
{
    if (solved_)
        fatal("ArchGainSolver: solve() called twice");
    solved_ = true;

    std::size_t n = archs_.size();
    gains_.assign(n, std::vector<double>(n, 1.0));
    known_.assign(n, std::vector<bool>(n, false));
    direct_.assign(n, std::vector<bool>(n, false));

    // Collapse duplicate samples of the same (arch, app) to their
    // geometric mean: the same architecture appears in multiple chips.
    std::vector<std::map<std::string, double>> app_gain(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (const auto &[app, samples] : observations_[i])
            app_gain[i][app] = stats::geomean(samples);
    }

    // Direct relations (Eq. 3): geometric mean of shared-app ratios for
    // pairs with at least min_shared_apps_ shared applications.
    for (std::size_t x = 0; x < n; ++x) {
        known_[x][x] = true;
        for (std::size_t y = 0; y < n; ++y) {
            if (x == y)
                continue;
            std::vector<double> ratios;
            for (const auto &[app, gx] : app_gain[x]) {
                auto it = app_gain[y].find(app);
                if (it != app_gain[y].end())
                    ratios.push_back(gx / it->second);
            }
            if (static_cast<int>(ratios.size()) >= min_shared_apps_) {
                gains_[x][y] = stats::geomean(ratios);
                known_[x][y] = true;
                direct_[x][y] = true;
            }
        }
    }

    // Transitive completion (Eq. 4): for each unknown pair, take the
    // geometric mean of products through all intermediaries with known
    // relations on both legs. Iterate until no pair is added.
    bool added = true;
    while (added) {
        added = false;
        for (std::size_t x = 0; x < n; ++x) {
            for (std::size_t y = 0; y < n; ++y) {
                if (x == y || known_[x][y])
                    continue;
                std::vector<double> products;
                for (std::size_t mid = 0; mid < n; ++mid) {
                    if (mid == x || mid == y)
                        continue;
                    if (known_[x][mid] && known_[mid][y])
                        products.push_back(gains_[x][mid] *
                                           gains_[mid][y]);
                }
                if (!products.empty()) {
                    gains_[x][y] = stats::geomean(products);
                    known_[x][y] = true;
                    added = true;
                }
            }
        }
    }
}

bool
ArchGainSolver::hasGain(const std::string &x, const std::string &y) const
{
    if (!solved_)
        fatal("ArchGainSolver: hasGain before solve()");
    return known_[indexOf(x)][indexOf(y)];
}

double
ArchGainSolver::gain(const std::string &x, const std::string &y) const
{
    if (!solved_)
        fatal("ArchGainSolver: gain before solve()");
    int xi = indexOf(x), yi = indexOf(y);
    if (!known_[xi][yi])
        fatal("ArchGainSolver: no relation between '", x, "' and '", y,
              "'");
    return gains_[xi][yi];
}

int
ArchGainSolver::sharedApps(const std::string &x, const std::string &y) const
{
    int xi = indexOf(x), yi = indexOf(y);
    int shared = 0;
    for (const auto &[app, samples] : observations_[xi]) {
        if (observations_[yi].count(app))
            ++shared;
    }
    return shared;
}

bool
ArchGainSolver::isDirect(const std::string &x, const std::string &y) const
{
    if (!solved_)
        fatal("ArchGainSolver: isDirect before solve()");
    return direct_[indexOf(x)][indexOf(y)];
}

} // namespace accelwall::csr
