/**
 * @file
 * Chip Specialization Return (Section II, Equations 1-2).
 *
 * CSR decouples a chip's end-to-end gain from the gain explained by its
 * physical (CMOS) potential:
 *
 *   CSR(Alg,Fwk,Plt,Eng) = Gain(Alg,Fwk,Plt,Eng,Phy) / Gain(Phy)   (Eq. 1)
 *
 * Comparatively, between two chips A and B (Eq. 2):
 *
 *   Gain_A/Gain_B = [CSR_A/CSR_B] * [Gain(Phy_A)/Gain(Phy_B)]
 *
 * Given a series of chips with reported gains and a potential model, this
 * module produces the normalized (relative gain, relative physical
 * potential, CSR) triples that Figures 1, 4, 5, 8 and 9 plot.
 */

#ifndef ACCELWALL_CSR_CSR_HH
#define ACCELWALL_CSR_CSR_HH

#include <cstddef>
#include <string>
#include <vector>

#include "potential/chip_spec.hh"
#include "potential/model.hh"

namespace accelwall::csr
{

/** Which physical-potential target function divides the reported gain. */
enum class Metric
{
    /** Throughput potential (OP/s): transistors x frequency. */
    Throughput,
    /** Energy-efficiency potential (OP/J): throughput / power. */
    EnergyEfficiency,
    /**
     * Throughput potential per die area (OP/s/mm²): the paper's metric
     * for Bitcoin miners, whose products vary wildly in chip count.
     */
    AreaThroughput,
};

/** Human-readable metric name. */
const char *metricName(Metric metric);

/** One chip with its reported (measured) gain value. */
struct ChipGain
{
    /** Display label, e.g. "ISSCC2006" or "GTX 1080". */
    std::string name;
    /** Physical description fed to the potential model. */
    potential::ChipSpec spec;
    /**
     * Absolute reported gain in domain units (MPixels/s, GOPS/J, ...).
     * Only ratios of this value are ever used.
     */
    double gain = 0.0;
    /** Introduction date (fractional years); used for ordering only. */
    double year = 0.0;
};

/** One row of a CSR trend: everything normalized to the baseline chip. */
struct CsrPoint
{
    std::string name;
    double year = 0.0;
    /** Reported gain relative to the baseline chip. */
    double rel_gain = 1.0;
    /** Physical potential relative to the baseline chip. */
    double rel_phy = 1.0;
    /** Chip specialization return: rel_gain / rel_phy (Eq. 2). */
    double csr = 1.0;
};

/**
 * Compute the CSR trend for a chip series.
 *
 * @param chips The series; must be non-empty with positive gains.
 * @param model The physical potential model.
 * @param metric Which potential target function to use.
 * @param baseline The index of the normalization chip (paper: the least
 *                 performing / oldest chip).
 */
std::vector<CsrPoint> csrSeries(const std::vector<ChipGain> &chips,
                                const potential::PotentialModel &model,
                                Metric metric, std::size_t baseline = 0);

/**
 * Single-pair CSR ratio (Eq. 2 rearranged): how much of chip/ref's gain
 * ratio is *not* explained by physics.
 */
double csrRatio(const ChipGain &chip, const ChipGain &ref,
                const potential::PotentialModel &model, Metric metric);

/**
 * Annualized CSR growth over a trailing window — the statistic behind
 * claims like Figure 1's "CSR did not improve in the last two years".
 *
 * Fits log(CSR) against year over the points whose year falls within
 * [end - window_years, end] (end = the latest year in the series) and
 * returns exp(slope): 1.0 means flat CSR, 1.10 means CSR compounds 10%
 * per year. fatal() when fewer than two points fall in the window or
 * the window has no year spread.
 */
double csrAnnualGrowth(const std::vector<CsrPoint> &series,
                       double window_years);

} // namespace accelwall::csr

#endif // ACCELWALL_CSR_CSR_HH
