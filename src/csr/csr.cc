#include "csr/csr.hh"

#include <algorithm>
#include <cmath>

#include "stats/fits.hh"
#include "util/logging.hh"

namespace accelwall::csr
{

namespace
{

double
potentialOf(const potential::PotentialModel &model,
            const potential::ChipSpec &spec, Metric metric)
{
    // CSR consumes potentials only through like-for-like ratios
    // (Eq. 2), so the shared unit scale cancels; .raw() strips it.
    switch (metric) {
      case Metric::Throughput:
        return model.throughput(spec).raw();
      case Metric::EnergyEfficiency:
        return model.energyEfficiency(spec).raw();
      case Metric::AreaThroughput:
        return model.areaThroughput(spec).raw();
    }
    panic("unknown CSR metric");
}

} // namespace

const char *
metricName(Metric metric)
{
    switch (metric) {
      case Metric::Throughput: return "throughput";
      case Metric::EnergyEfficiency: return "energy efficiency";
      case Metric::AreaThroughput: return "throughput/area";
    }
    return "?";
}

std::vector<CsrPoint>
csrSeries(const std::vector<ChipGain> &chips,
          const potential::PotentialModel &model, Metric metric,
          std::size_t baseline)
{
    if (chips.empty())
        fatal("csrSeries: empty chip series");
    if (baseline >= chips.size())
        fatal("csrSeries: baseline index ", baseline, " out of range");

    const ChipGain &base = chips[baseline];
    if (base.gain <= 0.0)
        fatal("csrSeries: baseline chip '", base.name,
              "' has non-positive gain");
    double base_phy = potentialOf(model, base.spec, metric);

    std::vector<CsrPoint> out;
    out.reserve(chips.size());
    for (const auto &chip : chips) {
        if (chip.gain <= 0.0)
            fatal("csrSeries: chip '", chip.name,
                  "' has non-positive gain");
        CsrPoint pt;
        pt.name = chip.name;
        pt.year = chip.year;
        pt.rel_gain = chip.gain / base.gain;
        pt.rel_phy = potentialOf(model, chip.spec, metric) / base_phy;
        pt.csr = pt.rel_gain / pt.rel_phy;
        out.push_back(std::move(pt));
    }
    return out;
}

double
csrAnnualGrowth(const std::vector<CsrPoint> &series, double window_years)
{
    if (window_years <= 0.0)
        fatal("csrAnnualGrowth: window must be positive");
    double end = -1e300;
    for (const auto &pt : series)
        end = std::max(end, pt.year);

    std::vector<double> years, log_csr;
    for (const auto &pt : series) {
        if (pt.year >= end - window_years) {
            years.push_back(pt.year);
            log_csr.push_back(std::log(pt.csr));
        }
    }
    if (years.size() < 2)
        fatal("csrAnnualGrowth: fewer than two points in the window");

    auto fit = stats::fitLinear(years, log_csr);
    return std::exp(fit.slope);
}

double
csrRatio(const ChipGain &chip, const ChipGain &ref,
         const potential::PotentialModel &model, Metric metric)
{
    if (chip.gain <= 0.0 || ref.gain <= 0.0)
        fatal("csrRatio: gains must be positive");
    double gain_ratio = chip.gain / ref.gain;
    double phy_ratio = potentialOf(model, chip.spec, metric) /
                       potentialOf(model, ref.spec, metric);
    return gain_ratio / phy_ratio;
}

} // namespace accelwall::csr
