/**
 * @file
 * Cross-architecture relative gains (Section IV-B, Equations 3-4).
 *
 * The paper compares GPU architecture generations by the geometric mean of
 * per-application gain ratios over applications both architectures ran
 * (Eq. 3), requiring at least five shared applications; pairs with fewer
 * shared applications are filled in transitively through intermediary
 * architectures (Eq. 4), iterating until the relations matrix stops
 * growing.
 */

#ifndef ACCELWALL_CSR_ARCH_GAINS_HH
#define ACCELWALL_CSR_ARCH_GAINS_HH

#include <map>
#include <string>
#include <vector>

namespace accelwall::csr
{

/**
 * Builds and solves the architecture relative-gain relations matrix.
 *
 * Usage: addObservation() per (architecture, application, gain) sample,
 * then solve(), then query gain().
 */
class ArchGainSolver
{
  public:
    /**
     * @param min_shared_apps Minimum shared applications for a direct
     *        Eq. 3 relation (the paper uses 5).
     */
    explicit ArchGainSolver(int min_shared_apps = 5);

    /** Record one benchmark result for an architecture. */
    void addObservation(const std::string &arch, const std::string &app,
                        double gain);

    /**
     * Build the direct relations (Eq. 3) and iterate the transitive
     * completion (Eq. 4) to fixpoint. Call after all observations.
     */
    void solve();

    /** All architectures seen, in first-observation order. */
    const std::vector<std::string> &archs() const { return archs_; }

    /** True when a (possibly transitive) relation exists for (x, y). */
    bool hasGain(const std::string &x, const std::string &y) const;

    /**
     * Relative gain Gain(X -> Y): how much better X is than Y, as the
     * geometric mean of shared-app ratios or its transitive completion.
     * fatal() when no relation exists (disconnected components).
     */
    double gain(const std::string &x, const std::string &y) const;

    /** Number of applications shared by two architectures. */
    int sharedApps(const std::string &x, const std::string &y) const;

    /** True when the direct (Eq. 3) relation was available for (x, y). */
    bool isDirect(const std::string &x, const std::string &y) const;

  private:
    int indexOf(const std::string &arch) const;
    int addArch(const std::string &arch);

    int min_shared_apps_;
    bool solved_ = false;

    std::vector<std::string> archs_;
    std::map<std::string, int> arch_index_;
    /** Per architecture: app name -> mean gain (duplicates averaged). */
    std::vector<std::map<std::string, std::vector<double>>> observations_;

    /** Solved relations: gains_[x][y] set when known_[x][y]. */
    std::vector<std::vector<double>> gains_;
    std::vector<std::vector<bool>> known_;
    std::vector<std::vector<bool>> direct_;
};

} // namespace accelwall::csr

#endif // ACCELWALL_CSR_ARCH_GAINS_HH
