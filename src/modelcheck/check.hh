/**
 * @file
 * Rule-based audits of the numerical model inputs (the `model` lint
 * domain, rules M001..M013).
 *
 * The dfg verifier (dfg/verify.hh) machine-checks graph structure; this
 * module does the same for the *data* every projection rests on: the
 * Section III device-scaling digest, the Figure 3b/3c transistor-budget
 * fits, and the chip corpus the regressions run against. A transposed
 * row in the scaling table or a sign slip in a fitted exponent corrupts
 * every CSR number downstream without a single test necessarily
 * noticing — these rules pin the physical invariants the paper's model
 * depends on:
 *
 *  | rule | name                  | invariant                             |
 *  |------|-----------------------|---------------------------------------|
 *  | M001 | node-order            | nodes positive, strictly descending   |
 *  | M002 | vdd-monotonic         | VDD never rises as devices shrink     |
 *  | M003 | delay-monotonic       | gate delay never rises as nodes shrink|
 *  | M004 | capacitance-monotonic | switched capacitance never rises      |
 *  | M005 | leakage-monotonic     | per-device leakage never rises        |
 *  | M006 | baseline-normalization| 45nm row exists and equals 1.0        |
 *  | M007 | group-coverage        | TDP groups well-formed, no overlap    |
 *  | M008 | group-progression     | newer groups: larger k, smaller e     |
 *  | M009 | area-fit-sanity       | Fig. 3b fit near TC(D)=4.99e9*D^0.877 |
 *  | M010 | corpus-audit          | corpus records physically plausible   |
 *  | M011 | chiplet-wafer-cost-monotonic | wafer $ rises toward new nodes |
 *  | M012 | chiplet-defect-monotonic | defect D0 plausible, non-decreasing|
 *  | M013 | chiplet-yield-sanity  | yield shape/packaging physically sane |
 *
 * The diagnostic machinery (rule id, severity, report) mirrors
 * dfg::verify so accelwall-lint renders both domains identically.
 */

#ifndef ACCELWALL_MODELCHECK_CHECK_HH
#define ACCELWALL_MODELCHECK_CHECK_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "chipdb/budget.hh"
#include "chipdb/record.hh"
#include "chiplet/cost.hh"
#include "cmos/scaling.hh"

namespace accelwall::modelcheck
{

/** Identity of one model-audit rule. */
enum class RuleId
{
    NodeOrder,              ///< M001: nodes positive, strictly descending
    VddMonotonic,           ///< M002: VDD non-increasing toward small nodes
    DelayMonotonic,         ///< M003: gate delay non-increasing
    CapacitanceMonotonic,   ///< M004: switched capacitance non-increasing
    LeakageMonotonic,       ///< M005: per-device leakage non-increasing
    BaselineNormalization,  ///< M006: 45nm row present and normalized to 1
    GroupCoverage,          ///< M007: TDP groups well-formed, disjoint
    GroupProgression,       ///< M008: coeff/exponent progression holds
    AreaFitSanity,          ///< M009: area fit near the published law
    CorpusAudit,            ///< M010: corpus records physically plausible
    ChipletWaferCostMonotonic, ///< M011: wafer $ rises toward new nodes
    ChipletDefectMonotonic, ///< M012: defect D0 plausible, non-decreasing
    ChipletYieldSanity,     ///< M013: yield/packaging physically sane
};

/** Total number of RuleId values (for dense per-rule tables). */
inline constexpr int kNumRules =
    static_cast<int>(RuleId::ChipletYieldSanity) + 1;

/** Diagnostic severity; only Error fails the check. */
enum class Severity
{
    Note,
    Warning,
    Error,
};

/** Stable short code, e.g. "M002". */
const char *ruleCode(RuleId rule);

/** Kebab-case rule name, e.g. "vdd-monotonic". */
const char *ruleName(RuleId rule);

/** Lower-case severity name, e.g. "error". */
const char *severityName(Severity severity);

/** The built-in severity a rule fires at. */
Severity defaultSeverity(RuleId rule);

/** One rule violation, locatable to a table row or corpus record. */
struct Diagnostic
{
    RuleId rule = RuleId::NodeOrder;
    Severity severity = Severity::Error;
    /** Which input it came from: "scaling", "budget", "corpus". */
    std::string subject;
    /** Offending row index, when the rule localizes to one. */
    std::optional<std::size_t> row;
    /** Human-readable explanation with concrete values. */
    std::string message;

    /** One-line rendering: "scaling: error M002 vdd-monotonic ...". */
    std::string str() const;
};

/** Knobs for one audit run. */
struct Options
{
    /** Escalate Warning diagnostics to Error. */
    bool warnings_as_errors = false;
    /** Keep at most this many diagnostics; the rest are counted. */
    std::size_t max_diagnostics = 256;
};

/** Outcome of one audit run. */
struct Report
{
    std::vector<Diagnostic> diagnostics;
    std::size_t num_errors = 0;
    std::size_t num_warnings = 0;
    std::size_t num_notes = 0;
    /** Diagnostics dropped beyond Options::max_diagnostics. */
    std::size_t suppressed = 0;

    /** True when no Error-severity diagnostics fired. */
    bool ok() const { return num_errors == 0; }

    /** True when a rule with this id fired (at any severity). */
    bool fired(RuleId rule) const;

    /** "3 errors, 1 warning, 0 notes". */
    std::string summary() const;

    /** Append another report's diagnostics and counts. */
    void merge(const Report &other);
};

/**
 * One auditable model: a scaling table, a budget model, and the corpus
 * the budget laws should describe. The corpus may be empty (M009's
 * residual check and M010 then have nothing to say).
 */
struct Inputs
{
    /** Display name ("shipped", "demo-vdd-bump", ...). */
    std::string name = "model";
    std::vector<cmos::NodeParams> scaling;
    chipdb::BudgetModel budget;
    std::vector<chipdb::ChipRecord> corpus;
    /**
     * The chiplet wafer-cost/yield table (M011..M013). May be empty
     * when the model under audit has no cost dimension; the chiplet
     * rules then stay silent.
     */
    chiplet::CostTable chiplet_costs;
};

/** The tables and corpus the library actually ships. */
Inputs shippedInputs();

/**
 * Deliberately corrupted inputs, one per failure family, proving each
 * M rule catches what it claims to (the `lint_model_broken` ctest and
 * the --demo-broken-model flag).
 */
std::vector<Inputs> brokenShowcaseInputs();

/** Run every M rule against @p inputs. */
Report check(const Inputs &inputs, const Options &options = {});

} // namespace accelwall::modelcheck

#endif // ACCELWALL_MODELCHECK_CHECK_HH
