#include "modelcheck/check.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "chipdb/reference_chips.hh"

namespace accelwall::modelcheck
{

using chipdb::ChipRecord;
using chipdb::TdpGroup;
using cmos::NodeParams;
using units::Nanometers;
using units::Volts;

namespace
{

/** Names and default severities, indexed by RuleId. */
struct RuleInfo
{
    const char *code;
    const char *name;
    Severity severity;
};

constexpr RuleInfo kRules[kNumRules] = {
    { "M001", "node-order", Severity::Error },
    { "M002", "vdd-monotonic", Severity::Error },
    { "M003", "delay-monotonic", Severity::Error },
    { "M004", "capacitance-monotonic", Severity::Error },
    { "M005", "leakage-monotonic", Severity::Error },
    { "M006", "baseline-normalization", Severity::Error },
    { "M007", "group-coverage", Severity::Error },
    { "M008", "group-progression", Severity::Error },
    { "M009", "area-fit-sanity", Severity::Error },
    { "M010", "corpus-audit", Severity::Error },
    { "M011", "chiplet-wafer-cost-monotonic", Severity::Error },
    { "M012", "chiplet-defect-monotonic", Severity::Error },
    { "M013", "chiplet-yield-sanity", Severity::Error },
};

/** Collects diagnostics, applying the Options caps and escalation. */
class Sink
{
  public:
    explicit Sink(const Options &options) : options_(options) {}

    template <typename... Args>
    void
    add(RuleId rule, const char *subject,
        std::optional<std::size_t> row, Args &&...args)
    {
        Severity sev = defaultSeverity(rule);
        if (sev == Severity::Warning && options_.warnings_as_errors)
            sev = Severity::Error;
        switch (sev) {
          case Severity::Error: ++report_.num_errors; break;
          case Severity::Warning: ++report_.num_warnings; break;
          case Severity::Note: ++report_.num_notes; break;
        }
        if (report_.diagnostics.size() >= options_.max_diagnostics) {
            ++report_.suppressed;
            return;
        }
        Diagnostic d;
        d.rule = rule;
        d.severity = sev;
        d.subject = subject;
        d.row = row;
        std::ostringstream oss;
        (oss << ... << args);
        d.message = oss.str();
        report_.diagnostics.push_back(std::move(d));
    }

    template <typename... Args>
    void
    warn(RuleId rule, const char *subject,
         std::optional<std::size_t> row, Args &&...args)
    {
        // Same as add() but capped at Warning severity.
        Severity sev = options_.warnings_as_errors ? Severity::Error
                                                   : Severity::Warning;
        if (sev == Severity::Error)
            ++report_.num_errors;
        else
            ++report_.num_warnings;
        if (report_.diagnostics.size() >= options_.max_diagnostics) {
            ++report_.suppressed;
            return;
        }
        Diagnostic d;
        d.rule = rule;
        d.severity = sev;
        d.subject = subject;
        d.row = row;
        std::ostringstream oss;
        (oss << ... << args);
        d.message = oss.str();
        report_.diagnostics.push_back(std::move(d));
    }

    Report take() { return std::move(report_); }

  private:
    Options options_;
    Report report_;
};

/**
 * M001: the scaling rows must list strictly descending positive
 * feature sizes — every nearest() lookup and every "newer node" loop
 * in the studies assumes that order.
 */
void
checkNodeOrder(const std::vector<NodeParams> &scaling, Sink &sink)
{
    if (scaling.empty()) {
        sink.add(RuleId::NodeOrder, "scaling", std::nullopt,
                 "scaling table is empty");
        return;
    }
    for (std::size_t i = 0; i < scaling.size(); ++i) {
        double node = scaling[i].node_nm.raw();
        if (!(node > 0.0)) {
            sink.add(RuleId::NodeOrder, "scaling", i, "node ", node,
                     "nm is not positive");
        } else if (i > 0 &&
                   scaling[i].node_nm >= scaling[i - 1].node_nm) {
            sink.add(RuleId::NodeOrder, "scaling", i, "node ", node,
                     "nm does not descend from the previous row (",
                     scaling[i - 1].node_nm.raw(),
                     "nm); rows must be oldest-first");
        }
    }
}

/**
 * M002..M005: each per-device quantity must be positive and must never
 * increase as feature size shrinks. Dennard scaling weakened after
 * ~65nm, but none of these quantities ever *rose* at a shrink in the
 * published digests; a bump is a transposed or mistyped row.
 */
void
checkMonotonic(const std::vector<NodeParams> &scaling, RuleId rule,
               const char *what, double (*get)(const NodeParams &),
               Sink &sink)
{
    for (std::size_t i = 0; i < scaling.size(); ++i) {
        double v = get(scaling[i]);
        if (!(v > 0.0)) {
            sink.add(rule, "scaling", i, what, " ", v,
                     " is not positive at node ",
                     scaling[i].node_nm.raw(), "nm");
            continue;
        }
        if (i == 0)
            continue;
        double prev = get(scaling[i - 1]);
        // Exact non-increase: the digests are coarse enough that any
        // genuine plateau is encoded as an equal value, not a wiggle.
        if (v > prev) {
            sink.add(rule, "scaling", i, what, " rises from ", prev,
                     " to ", v, " at the shrink to ",
                     scaling[i].node_nm.raw(), "nm");
        }
    }
}

/**
 * M006: the 45nm baseline row must exist with all relative factors
 * exactly 1 — every normalized quantity in Figure 3a divides by it —
 * and the absolute quantities must stay in physically plausible ranges.
 */
void
checkBaseline(const std::vector<NodeParams> &scaling, Sink &sink)
{
    constexpr double kTol = 1e-9;
    bool found = false;
    for (std::size_t i = 0; i < scaling.size(); ++i) {
        const NodeParams &p = scaling[i];
        if (p.vdd.raw() > 6.0) {
            sink.add(RuleId::BaselineNormalization, "scaling", i,
                     "VDD ", p.vdd.raw(), "V at node ", p.node_nm.raw(),
                     "nm is outside the plausible (0, 6] volt range");
        }
        for (double factor : { p.gate_delay, p.capacitance, p.leakage }) {
            if (factor > 100.0) {
                sink.add(RuleId::BaselineNormalization, "scaling", i,
                         "relative factor ", factor, " at node ",
                         p.node_nm.raw(),
                         "nm is outside the plausible (0, 100] range");
                break;
            }
        }
        if (p.node_nm != Nanometers{45.0})
            continue;
        found = true;
        if (std::fabs(p.gate_delay - 1.0) > kTol ||
            std::fabs(p.capacitance - 1.0) > kTol ||
            std::fabs(p.leakage - 1.0) > kTol) {
            sink.add(RuleId::BaselineNormalization, "scaling", i,
                     "45nm baseline row is not normalized to 1.0 "
                     "(delay ", p.gate_delay, ", capacitance ",
                     p.capacitance, ", leakage ", p.leakage, ")");
        }
    }
    if (!found) {
        sink.add(RuleId::BaselineNormalization, "scaling", std::nullopt,
                 "no 45nm baseline row; all relative quantities are "
                 "normalized to it");
    }
}

/**
 * M007: the Figure 3c node groups must be well-formed (positive,
 * min <= max, positive coefficient, exponent in (0, 2)) and pairwise
 * disjoint in newest-first order; an overlap makes groupFor()
 * resolution order-dependent.
 */
void
checkGroupCoverage(const std::vector<TdpGroup> &groups, Sink &sink)
{
    if (groups.empty()) {
        sink.add(RuleId::GroupCoverage, "budget", std::nullopt,
                 "budget model has no TDP groups");
        return;
    }
    for (std::size_t i = 0; i < groups.size(); ++i) {
        const TdpGroup &g = groups[i];
        if (!(g.min_node_nm.raw() > 0.0) ||
            g.max_node_nm < g.min_node_nm) {
            sink.add(RuleId::GroupCoverage, "budget", i, "group '",
                     g.label, "' has an invalid node range [",
                     g.min_node_nm.raw(), ", ", g.max_node_nm.raw(),
                     "]");
            continue;
        }
        if (!(g.coeff > 0.0)) {
            sink.add(RuleId::GroupCoverage, "budget", i, "group '",
                     g.label, "' has non-positive coefficient ",
                     g.coeff);
        }
        if (!(g.exponent > 0.0) || g.exponent >= 2.0) {
            sink.add(RuleId::GroupCoverage, "budget", i, "group '",
                     g.label, "' has exponent ", g.exponent,
                     " outside (0, 2): the TDP envelope must grow "
                     "sub-quadratically");
        }
        if (i > 0 && groups[i].min_node_nm <= groups[i - 1].max_node_nm) {
            sink.add(RuleId::GroupCoverage, "budget", i, "group '",
                     g.label, "' overlaps or fails to follow '",
                     groups[i - 1].label,
                     "': groups must be disjoint, newest first");
        }
    }
}

/**
 * M008: post-Dennard physics orders the fits — newer groups pack more
 * devices per watt (larger k) but saturate the envelope faster
 * (smaller e). A violated progression means two groups were swapped or
 * a fit was transcribed against the wrong node range.
 */
void
checkGroupProgression(const std::vector<TdpGroup> &groups, Sink &sink)
{
    for (std::size_t i = 1; i < groups.size(); ++i) {
        if (groups[i].coeff >= groups[i - 1].coeff) {
            sink.add(RuleId::GroupProgression, "budget", i,
                     "coefficient does not decrease toward older "
                     "groups: '", groups[i - 1].label, "' has ",
                     groups[i - 1].coeff, ", '", groups[i].label,
                     "' has ", groups[i].coeff);
        }
        if (groups[i].exponent <= groups[i - 1].exponent) {
            sink.add(RuleId::GroupProgression, "budget", i,
                     "exponent does not increase toward older groups: "
                     "'", groups[i - 1].label, "' has ",
                     groups[i - 1].exponent, ", '", groups[i].label,
                     "' has ", groups[i].exponent);
        }
    }
}

/**
 * M009: the Figure 3b area fit must stay near the published law
 * TC(D) = 4.99e9 * D^0.877, and where the corpus discloses transistor
 * counts the fit must predict them within a small factor — the law's
 * whole claim is that it describes real silicon.
 */
void
checkAreaFit(const Inputs &inputs, Sink &sink)
{
    const chipdb::BudgetModel &budget = inputs.budget;
    // A re-fit on a noisy corpus moves the coefficient by tens of
    // percent, not orders of magnitude.
    if (budget.areaCoeff() < 1e9 || budget.areaCoeff() > 2.5e10) {
        sink.add(RuleId::AreaFitSanity, "budget", std::nullopt,
                 "area coefficient ", budget.areaCoeff(),
                 " is far from the published 4.99e9 (allowed "
                 "[1e9, 2.5e10])");
    }
    if (budget.areaExponent() < 0.5 || budget.areaExponent() > 1.0) {
        sink.add(RuleId::AreaFitSanity, "budget", std::nullopt,
                 "area exponent ", budget.areaExponent(),
                 " is outside [0.5, 1.0]: utilization must be "
                 "sub-linear but not collapse");
    }

    // Residuals against disclosed transistor counts, in log space.
    const double kPerChipTol = std::log(4.0);
    const double kMedianTol = std::log(2.0);
    std::vector<double> residuals;
    for (std::size_t i = 0; i < inputs.corpus.size(); ++i) {
        const ChipRecord &rec = inputs.corpus[i];
        if (rec.transistors <= 0.0 || rec.area_mm2 <= 0.0 ||
            rec.node_nm <= 0.0) {
            continue;
        }
        double predicted =
            budget.areaTransistors(rec.area(), rec.node()).raw();
        double r = std::fabs(std::log(predicted / rec.transistors));
        residuals.push_back(r);
        if (r > kPerChipTol) {
            sink.warn(RuleId::AreaFitSanity, "corpus", i, "chip '",
                      rec.name, "' is off the area law by ",
                      std::exp(r), "x (predicted ", predicted,
                      ", disclosed ", rec.transistors, ")");
        }
    }
    if (residuals.size() >= 3) {
        auto mid = residuals.begin() +
                   static_cast<std::ptrdiff_t>(residuals.size() / 2);
        std::nth_element(residuals.begin(), mid, residuals.end());
        double median = *mid;
        if (median > kMedianTol) {
            sink.add(RuleId::AreaFitSanity, "corpus", std::nullopt,
                     "median area-law residual is ", std::exp(median),
                     "x across ", residuals.size(),
                     " disclosed chips: the fit does not describe "
                     "this corpus");
        }
    }
}

/**
 * M010: every corpus record must be physically plausible — the fits
 * consume them unconditionally, so one corrupted row (a die area in
 * cm², a node in µm) skews a regression silently.
 */
void
checkCorpus(const std::vector<ChipRecord> &corpus, Sink &sink)
{
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const ChipRecord &rec = corpus[i];
        if (!(rec.node_nm > 0.0) || !(rec.area_mm2 > 0.0) ||
            !(rec.freq_mhz > 0.0) || !(rec.tdp_w > 0.0)) {
            sink.add(RuleId::CorpusAudit, "corpus", i, "record '",
                     rec.name,
                     "' has a non-positive node/area/freq/TDP");
            continue;
        }
        if (rec.node_nm < 1.0 || rec.node_nm > 1000.0) {
            sink.add(RuleId::CorpusAudit, "corpus", i, "record '",
                     rec.name, "' node ", rec.node_nm,
                     "nm is outside [1, 1000]nm — wrong unit?");
        }
        if (rec.area_mm2 > 1400.0) {
            sink.add(RuleId::CorpusAudit, "corpus", i, "record '",
                     rec.name, "' die area ", rec.area_mm2,
                     "mm² exceeds the ~858mm² reticle limit by far — "
                     "wrong unit?");
        }
        if (rec.tdp_w > 2000.0) {
            sink.add(RuleId::CorpusAudit, "corpus", i, "record '",
                     rec.name, "' TDP ", rec.tdp_w,
                     "W is implausible for a single package");
        }
        if (rec.freq_mhz > 20000.0) {
            sink.add(RuleId::CorpusAudit, "corpus", i, "record '",
                     rec.name, "' clock ", rec.freq_mhz,
                     "MHz is implausible — kHz or Hz slipped in?");
        }
        if (rec.transistors < 0.0 || rec.transistors > 1e13) {
            sink.add(RuleId::CorpusAudit, "corpus", i, "record '",
                     rec.name, "' transistor count ", rec.transistors,
                     " is outside [0, 1e13]");
        }
        if (rec.name.empty()) {
            sink.warn(RuleId::CorpusAudit, "corpus", i,
                      "record has an empty name; quarantine "
                      "diagnostics cannot identify it");
        }
    }
}

/**
 * M011/M012: the per-node wafer rows must be oldest-first (strictly
 * descending positive nodes, mirroring M001), with positive wafer
 * prices that never *fall* at a shrink — leading nodes are never
 * cheaper per wafer — and positive defect densities that never fall
 * either (process complexity only adds defect modes) and stay under
 * the 1/mm² bound real foundries report. A violation is a transposed
 * or mistyped row that would silently invert the chiplet economics.
 */
void
checkChipletCosts(const chiplet::CostTable &table, Sink &sink)
{
    const std::vector<chiplet::NodeCost> &rows = table.nodes;
    if (rows.empty())
        return; // No cost dimension to audit.
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const chiplet::NodeCost &row = rows[i];
        double node = row.node_nm.raw();
        if (!(node > 0.0)) {
            sink.add(RuleId::ChipletWaferCostMonotonic, "chiplet", i,
                     "node ", node, "nm is not positive");
            continue;
        }
        if (i > 0 && row.node_nm >= rows[i - 1].node_nm) {
            sink.add(RuleId::ChipletWaferCostMonotonic, "chiplet", i,
                     "node ", node,
                     "nm does not descend from the previous row (",
                     rows[i - 1].node_nm.raw(),
                     "nm); rows must be oldest-first");
        }
        if (!(row.wafer_usd > units::Usd{0.0})) {
            sink.add(RuleId::ChipletWaferCostMonotonic, "chiplet", i,
                     "wafer price ", row.wafer_usd.raw(),
                     " USD at node ", node, "nm is not positive");
        } else if (i > 0 && rows[i - 1].wafer_usd > units::Usd{0.0} &&
                   row.wafer_usd < rows[i - 1].wafer_usd) {
            sink.add(RuleId::ChipletWaferCostMonotonic, "chiplet", i,
                     "wafer price falls from ",
                     rows[i - 1].wafer_usd.raw(), " to ",
                     row.wafer_usd.raw(), " USD at the shrink to ",
                     node, "nm");
        }
        double d0 = row.defect_d0.raw();
        if (!(d0 > 0.0)) {
            sink.add(RuleId::ChipletDefectMonotonic, "chiplet", i,
                     "defect density ", d0, "/mm2 at node ", node,
                     "nm is not positive");
        } else {
            if (d0 > 1.0) {
                sink.add(RuleId::ChipletDefectMonotonic, "chiplet", i,
                         "defect density ", d0,
                         "/mm2 at node ", node,
                         "nm exceeds the plausible 1/mm2 bound — "
                         "wrong unit?");
            }
            if (i > 0 && row.defect_d0 < rows[i - 1].defect_d0) {
                sink.add(RuleId::ChipletDefectMonotonic, "chiplet", i,
                         "defect density falls from ",
                         rows[i - 1].defect_d0.raw(), " to ", d0,
                         "/mm2 at the shrink to ", node, "nm");
            }
        }
    }
}

/**
 * M013: the yield-model shape and packaging constants must be
 * physically sane — alpha in (0, 20], a wafer in the [100, 450]mm
 * range real fabs run, non-negative packaging charges, a test yield
 * in (0, 1] — and the resulting yield curve must behave: in (0, 1]
 * and non-increasing in die area.
 */
void
checkChipletYield(const chiplet::CostTable &table, Sink &sink)
{
    if (table.nodes.empty())
        return; // No cost dimension to audit.
    if (!(table.alpha > 0.0) || table.alpha > 20.0) {
        sink.add(RuleId::ChipletYieldSanity, "chiplet", std::nullopt,
                 "negative-binomial alpha ", table.alpha,
                 " is outside (0, 20]");
    }
    double diameter = table.wafer_diameter.raw();
    if (diameter < 100.0 || diameter > 450.0) {
        sink.add(RuleId::ChipletYieldSanity, "chiplet", std::nullopt,
                 "wafer diameter ", diameter,
                 "mm is outside the [100, 450]mm range fabs run");
    }
    const chiplet::Packaging &pkg = table.packaging;
    if (pkg.substrate_usd < units::Usd{0.0} ||
        pkg.bond_usd_per_die < units::Usd{0.0}) {
        sink.add(RuleId::ChipletYieldSanity, "chiplet", std::nullopt,
                 "packaging charges must be non-negative (substrate ",
                 pkg.substrate_usd.raw(), ", bond ",
                 pkg.bond_usd_per_die.raw(), " USD)");
    }
    if (!(pkg.test_yield > 0.0) || pkg.test_yield > 1.0) {
        sink.add(RuleId::ChipletYieldSanity, "chiplet", std::nullopt,
                 "post-bond test yield ", pkg.test_yield,
                 " is outside (0, 1]");
    }
    if (!(table.alpha > 0.0))
        return; // The curve itself is meaningless below here.
    for (std::size_t i = 0; i < table.nodes.size(); ++i) {
        const chiplet::NodeCost &row = table.nodes[i];
        if (!(row.defect_d0.raw() > 0.0))
            continue; // M012 already named the row.
        double prev = 1.0;
        for (double area : { 25.0, 100.0, 400.0, 800.0 }) {
            double y = chiplet::dieYield(
                units::SquareMillimeters{area}, row.defect_d0,
                table.alpha);
            if (!(y > 0.0) || y > 1.0 || y > prev) {
                sink.add(RuleId::ChipletYieldSanity, "chiplet", i,
                         "yield ", y, " at ", area, "mm2 on node ",
                         row.node_nm.raw(),
                         "nm is not in (0, 1] and non-increasing "
                         "in area");
                break;
            }
            prev = y;
        }
    }
}

} // namespace

const char *
ruleCode(RuleId rule)
{
    return kRules[static_cast<int>(rule)].code;
}

const char *
ruleName(RuleId rule)
{
    return kRules[static_cast<int>(rule)].name;
}

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

Severity
defaultSeverity(RuleId rule)
{
    return kRules[static_cast<int>(rule)].severity;
}

std::string
Diagnostic::str() const
{
    std::ostringstream oss;
    oss << subject;
    if (row)
        oss << "[" << *row << "]";
    oss << ": " << severityName(severity) << " " << ruleCode(rule)
        << " " << ruleName(rule) << ": " << message;
    return oss.str();
}

bool
Report::fired(RuleId rule) const
{
    for (const Diagnostic &d : diagnostics) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

std::string
Report::summary() const
{
    std::ostringstream oss;
    oss << num_errors << (num_errors == 1 ? " error, " : " errors, ")
        << num_warnings
        << (num_warnings == 1 ? " warning, " : " warnings, ")
        << num_notes << (num_notes == 1 ? " note" : " notes");
    if (suppressed > 0)
        oss << " (" << suppressed << " suppressed)";
    return oss.str();
}

void
Report::merge(const Report &other)
{
    diagnostics.insert(diagnostics.end(), other.diagnostics.begin(),
                       other.diagnostics.end());
    num_errors += other.num_errors;
    num_warnings += other.num_warnings;
    num_notes += other.num_notes;
    suppressed += other.suppressed;
}

Inputs
shippedInputs()
{
    Inputs inputs;
    inputs.name = "shipped";
    inputs.scaling = cmos::ScalingTable::instance().params();
    inputs.budget = chipdb::BudgetModel{};
    inputs.corpus = chipdb::referenceChips();
    inputs.chiplet_costs = chiplet::shippedCostTable();
    return inputs;
}

std::vector<Inputs>
brokenShowcaseInputs()
{
    const Inputs shipped = shippedInputs();
    std::vector<Inputs> all;

    {
        // Rows out of order and a negative feature size: M001.
        Inputs in = shipped;
        in.name = "demo-node-order";
        std::swap(in.scaling[2], in.scaling[3]);
        in.scaling[5].node_nm = Nanometers{-65.0};
        all.push_back(std::move(in));
    }
    {
        // One transposed row bumps every per-device quantity at a
        // shrink: M002..M005 each fire.
        Inputs in = shipped;
        in.name = "demo-monotonic";
        NodeParams &p = in.scaling[10]; // 32nm row
        p.vdd = Volts{1.15};
        p.gate_delay = 1.6;
        p.capacitance = 1.7;
        p.leakage = 1.8;
        all.push_back(std::move(in));
    }
    {
        // 45nm row denormalized (as if re-normalized to 65nm but only
        // partially): M006.
        Inputs in = shipped;
        in.name = "demo-baseline";
        for (NodeParams &p : in.scaling) {
            if (p.node_nm == Nanometers{45.0})
                p.gate_delay = 0.71;
        }
        all.push_back(std::move(in));
    }
    {
        // Overlapping groups with a broken coefficient/exponent
        // progression: M007 and M008.
        Inputs in = shipped;
        in.name = "demo-groups";
        in.budget = chipdb::BudgetModel{
            4.99e9,
            0.877,
            {
                { Nanometers{5.0}, Nanometers{14.0}, 2.15, 0.402,
                  "14nm-5nm" },
                { Nanometers{12.0}, Nanometers{22.0}, 3.10, 0.557,
                  "22nm-12nm (overlaps)" },
                { Nanometers{28.0}, Nanometers{32.0}, 0.11, 0.301,
                  "32nm-28nm (regressed exponent)" },
            },
        };
        all.push_back(std::move(in));
    }
    {
        // An area law that no longer describes silicon: M009 (both the
        // parameter range check and the corpus residuals).
        Inputs in = shipped;
        in.name = "demo-area-fit";
        in.budget = chipdb::BudgetModel{4.99e8, 0.877};
        all.push_back(std::move(in));
    }
    {
        // Corrupted corpus rows — a cm² area, a µm node, a kHz clock:
        // M010 (plus M009 warnings where transistors are disclosed).
        Inputs in = shipped;
        in.name = "demo-corpus";
        if (in.corpus.size() >= 3) {
            in.corpus[0].area_mm2 *= 100.0; // cm² slipped in
            in.corpus[1].node_nm *= 1000.0; // µm slipped in
            in.corpus[2].freq_mhz *= 1e3;   // kHz slipped in
        }
        all.push_back(std::move(in));
    }
    {
        // A wafer price that falls at a shrink and two transposed
        // rows: M011.
        Inputs in = shipped;
        in.name = "demo-chiplet-wafer-cost";
        if (in.chiplet_costs.nodes.size() >= 4) {
            std::swap(in.chiplet_costs.nodes[1],
                      in.chiplet_costs.nodes[2]);
            in.chiplet_costs.nodes[3].wafer_usd = units::Usd{900.0};
        }
        all.push_back(std::move(in));
    }
    {
        // A defect density in defects/cm² (100x too large) and one
        // that improves at a shrink: M012.
        Inputs in = shipped;
        in.name = "demo-chiplet-defect";
        if (in.chiplet_costs.nodes.size() >= 3) {
            in.chiplet_costs.nodes[1].defect_d0 =
                units::DefectsPerSquareMillimeter{50.0};
            in.chiplet_costs.nodes[2].defect_d0 =
                units::DefectsPerSquareMillimeter{0.0001};
        }
        all.push_back(std::move(in));
    }
    {
        // A negative clustering parameter, a lab-scale wafer, and a
        // >1 test yield: M013.
        Inputs in = shipped;
        in.name = "demo-chiplet-yield";
        in.chiplet_costs.alpha = -3.0;
        in.chiplet_costs.wafer_diameter = units::Millimeters{50.0};
        in.chiplet_costs.packaging.test_yield = 1.2;
        all.push_back(std::move(in));
    }
    return all;
}

Report
check(const Inputs &inputs, const Options &options)
{
    Sink sink(options);
    checkNodeOrder(inputs.scaling, sink);
    checkMonotonic(inputs.scaling, RuleId::VddMonotonic, "VDD",
                   [](const NodeParams &p) { return p.vdd.raw(); },
                   sink);
    checkMonotonic(inputs.scaling, RuleId::DelayMonotonic, "gate delay",
                   [](const NodeParams &p) { return p.gate_delay; },
                   sink);
    checkMonotonic(inputs.scaling, RuleId::CapacitanceMonotonic,
                   "capacitance",
                   [](const NodeParams &p) { return p.capacitance; },
                   sink);
    checkMonotonic(inputs.scaling, RuleId::LeakageMonotonic, "leakage",
                   [](const NodeParams &p) { return p.leakage; }, sink);
    checkBaseline(inputs.scaling, sink);
    checkGroupCoverage(inputs.budget.groups(), sink);
    checkGroupProgression(inputs.budget.groups(), sink);
    checkAreaFit(inputs, sink);
    checkCorpus(inputs.corpus, sink);
    checkChipletCosts(inputs.chiplet_costs, sink);
    checkChipletYield(inputs.chiplet_costs, sink);
    return sink.take();
}

} // namespace accelwall::modelcheck
