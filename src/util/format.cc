#include "util/format.hh"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace accelwall
{

std::string
fmtFixed(double value, int digits)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(digits) << value;
    return oss.str();
}

std::string
fmtSi(double value, int digits)
{
    static const struct { double scale; const char *suffix; } bands[] = {
        { 1e12, "T" }, { 1e9, "G" }, { 1e6, "M" }, { 1e3, "K" },
    };
    double mag = std::fabs(value);
    for (const auto &band : bands) {
        if (mag >= band.scale)
            return fmtFixed(value / band.scale, digits) + band.suffix;
    }
    return fmtFixed(value, digits);
}

std::string
fmtGain(double value, int digits)
{
    return fmtFixed(value, digits) + "x";
}

std::string
fmtNode(double node_nm)
{
    // Nodes are integral nanometre labels (e.g. 45nm); print without a
    // fractional part unless one is genuinely present.
    if (node_nm == std::floor(node_nm))
        return fmtFixed(node_nm, 0) + "nm";
    return fmtFixed(node_nm, 1) + "nm";
}

std::string
fmtPercent(double fraction)
{
    return fmtFixed(fraction * 100.0, 1) + "%";
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
            break;
        }
    }
    return out;
}

} // namespace accelwall
