/**
 * @file
 * ASCII table builder. The figure-regeneration benches print the same
 * rows/series the paper's figures plot; this class renders them aligned.
 */

#ifndef ACCELWALL_UTIL_TABLE_HH
#define ACCELWALL_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace accelwall
{

/**
 * A simple column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   Table t({"Chip", "Node", "Gain"});
 *   t.addRow({"ISSCC2006", "180nm", "1.0x"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Construct with the header row. */
    explicit Table(std::vector<std::string> header);

    /** Append one data row; must match the header arity. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows added so far. */
    std::size_t numRows() const { return rows_.size(); }

    /** Number of columns (header arity). */
    std::size_t numCols() const { return header_.size(); }

    /** Render the table to @p os with a separator under the header. */
    void print(std::ostream &os) const;

    /** Render to a string (mainly for tests). */
    std::string str() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace accelwall

#endif // ACCELWALL_UTIL_TABLE_HH
