/**
 * @file
 * Thin POSIX TCP helpers for the serve subsystem: an owning
 * file-descriptor wrapper plus listen/connect/read/write primitives
 * with millisecond deadlines. IPv4 loopback-oriented and
 * dependency-free by design — the service embeds in the research
 * binaries, it is not a general networking library.
 *
 * All failures are recoverable Results (E5008 serve-bind for listener
 * setup, E5009 serve-connection for per-connection I/O, E5004
 * http-deadline for timeouts); nothing here calls fatal().
 *
 * Every primitive retries EINTR internally — a signal mid-call is
 * never reported as a timeout, an error, or (worst) a peer shutdown.
 * The socket-level fault sites of the deterministic chaos layer
 * (accept-fail, recv-short, recv-stall, send-partial, send-reset,
 * conn-drop-mid-body; see util/faultinject.hh and DESIGN §11) are
 * compiled into tcpAccept/recvSome/sendAll and armed via
 * ACCELWALL_FAULT.
 */

#ifndef ACCELWALL_UTIL_SOCKET_HH
#define ACCELWALL_UTIL_SOCKET_HH

#include <cstddef>
#include <string>

#include "util/error.hh"

namespace accelwall::util
{

/** Owning file descriptor; closes on destruction, movable. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(Fd &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close now (idempotent). */
    void reset();

    /** Give up ownership without closing. */
    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

  private:
    int fd_ = -1;
};

/** A bound, listening TCP socket plus the port it actually got. */
struct Listener
{
    Fd fd;
    /** The bound port; differs from the request when asking for 0. */
    int port = 0;
};

/**
 * Bind and listen on host:port (SO_REUSEADDR set, CLOEXEC). Port 0
 * requests an ephemeral port; the chosen one is reported back.
 *
 * @param host Dotted-quad address, e.g. "127.0.0.1" or "0.0.0.0".
 * @param backlog listen(2) backlog.
 */
Result<Listener> tcpListen(const std::string &host, int port,
                           int backlog = 128);

/**
 * Accept one connection (blocking); EINTR is retried internally.
 * Transient per-connection errors (ECONNABORTED, the injected
 * accept-fail fault) come back as retryable E5009 errors; a closed or
 * invalid listener fd comes back as E5008 (the drain signal). Accepted
 * sockets get TCP_NODELAY.
 */
Result<Fd> tcpAccept(int listen_fd);

/** Connect to host:port with a connect deadline. */
Result<Fd> tcpConnect(const std::string &host, int port,
                      int deadline_ms = 5000);

/**
 * Write the whole buffer, retrying short writes; SIGPIPE suppressed
 * (MSG_NOSIGNAL). @p deadline_ms bounds the total time.
 */
Result<void> sendAll(int fd, const std::string &data,
                     int deadline_ms = 5000);

/**
 * Read at most @p max_bytes, appending to @p out, returning the count
 * read (0 on orderly peer shutdown). Waits at most @p deadline_ms for
 * the descriptor to become readable; a timeout is E5004 http-deadline.
 */
Result<std::size_t> recvSome(int fd, std::string &out,
                             std::size_t max_bytes, int deadline_ms);

/**
 * A pipe whose write end can be poked from a signal handler: write()
 * on a pipe fd is async-signal-safe, so this is the canonical
 * self-pipe used to convert SIGINT/SIGTERM into a pollable event.
 */
class WakePipe
{
  public:
    /** panics when pipe(2) fails (startup-time resource exhaustion). */
    WakePipe();

    /** Pollable read end. */
    int readFd() const { return read_.get(); }

    /** Async-signal-safe: write one byte to the pipe. */
    void poke() const;

    /** Drain any pending bytes (after poll wakes up). */
    void drain() const;

  private:
    Fd read_;
    Fd write_;
};

/**
 * Wait until @p fd is readable or one of @p fd / @p wake_fd (pass -1
 * to skip) becomes readable. Returns the fd that woke us, or an E5004
 * error on timeout.
 */
Result<int> pollReadable(int fd, int wake_fd, int deadline_ms);

} // namespace accelwall::util

#endif // ACCELWALL_UTIL_SOCKET_HH
