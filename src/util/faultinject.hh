/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * A fault plan is a comma-separated list of `site:period` entries,
 * e.g. `ACCELWALL_FAULT=chain:3,ingest-record:10`. Each named site is
 * a check compiled into the production code path; an armed site fails
 * every period-th check. There are two check styles:
 *
 *  - shouldFail(site, key): keyed by a caller-supplied 0-based index
 *    (a chain index, a record row). Fails when (key + 1) % period == 0,
 *    so the failure *set* is a pure function of the plan and the input,
 *    independent of thread scheduling.
 *  - shouldFailCounted(site): keyed by an internal per-site atomic
 *    counter, for strictly serial sites (e.g. "kill the process after
 *    the Nth completed chain checkpoint").
 *
 * Compiled-in sites are declared in the kFaultSites registry below —
 * lint rule S004 (src/srccheck) cross-checks that every site string
 * passed to this API is registered there, that every registered site
 * is compiled into a production check, and that each one is exercised
 * by at least one test.
 *
 * An unparseable plan never turns injection on by accident: configure()
 * returns the error and leaves the plan disarmed.
 */

#ifndef ACCELWALL_UTIL_FAULTINJECT_HH
#define ACCELWALL_UTIL_FAULTINJECT_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/error.hh"
#include "util/thread_annotations.hh"

namespace accelwall::util
{

/** Exit code used by the `sweep-kill` site's simulated crash. */
inline constexpr int kFaultKillExitCode = 3;

/** One registered fault-injection site. */
struct FaultSiteInfo
{
    /** The site name as it appears in ACCELWALL_FAULT plans. */
    const char *site;
    /** Check style: "keyed" (shouldFail) or "counted". */
    const char *style;
    /** What an armed failure does. */
    const char *effect;
};

/**
 * The registry of every compiled-in injection site. Adding a check to
 * production code means adding a row here (and a robustness test that
 * arms it) — rule S004 enforces both directions.
 */
inline constexpr FaultSiteInfo kFaultSites[] = {
    { "ingest-record", "keyed",
      "chipdb record quarantined as malformed" },
    { "fit", "counted", "budget/TDP fit returns an error" },
    { "chain", "keyed", "one sweep (node,simp) chain fails" },
    { "sweep-kill", "counted",
      "process _Exit(3) after a chain completes" },
    // Socket-level sites, threaded through src/util/socket.cc. All
    // counted: the network layer has no caller-supplied key, and the
    // sites that must be schedule-deterministic (accept/send) are
    // called a structurally fixed number of times per connection
    // (DESIGN §11).
    { "accept-fail", "counted",
      "accepted connection closed immediately (client sees reset)" },
    { "recv-short", "counted",
      "recv clamped to 1 byte (forces reassembly loops)" },
    { "recv-stall", "counted",
      "recv reports a read deadline without waiting" },
    { "send-partial", "counted",
      "send clamped to 1 byte (forces completion loop)" },
    { "send-reset", "counted",
      "send fails as if the peer reset the connection" },
    { "conn-drop-mid-body", "counted",
      "half the payload sent, then the socket is shut down" },
};

/** True when @p site names a registered injection site. */
bool knownFaultSite(const std::string &site);

/**
 * The process-wide fault plan. Configuration must happen before the
 * sites are exercised (tests reconfigure between runs; workers only
 * read). The mutations serialize under config_mu_; the check methods
 * deliberately read without it — they run on every worker and the
 * phase discipline above makes the lock-free read safe — and are
 * marked NO_THREAD_SAFETY_ANALYSIS to record that exemption.
 */
class FaultPlan
{
  public:
    /** The global plan, seeded from ACCELWALL_FAULT on first use. */
    static FaultPlan &global();

    /**
     * Replace the plan with @p spec ("site:period[,site:period...]";
     * empty disarms everything). On a malformed spec the plan is
     * cleared and the parse error returned.
     */
    Result<void> configure(const std::string &spec) EXCLUDES(config_mu_);

    /** Disarm all sites and reset counters. */
    void clear() EXCLUDES(config_mu_);

    /** True when @p site appears in the active plan. */
    bool armed(const std::string &site) const NO_THREAD_SAFETY_ANALYSIS;

    /**
     * Keyed check: true when @p site is armed with period n and
     * (key + 1) % n == 0. Deterministic under any thread schedule.
     */
    bool shouldFail(const std::string &site, std::uint64_t key) const
        NO_THREAD_SAFETY_ANALYSIS;

    /**
     * Counted check: true on every period-th call for @p site
     * (1-based). Only meaningful at serialized call sites.
     */
    bool shouldFailCounted(const std::string &site)
        NO_THREAD_SAFETY_ANALYSIS;

    /**
     * Number of times @p site actually fired (a shouldFail /
     * shouldFailCounted call returned true) since it was configured.
     * Zero for unarmed sites. configure()/clear() reset the count.
     */
    std::uint64_t injectedCount(const std::string &site) const
        NO_THREAD_SAFETY_ANALYSIS;

    /** Sum of injectedCount over every armed site. */
    std::uint64_t totalInjected() const NO_THREAD_SAFETY_ANALYSIS;

  private:
    FaultPlan() = default;

    struct Site
    {
        std::uint64_t period = 0;
        std::atomic<std::uint64_t> calls{0};
        std::atomic<std::uint64_t> injected{0};
    };

    void clearLocked() REQUIRES(config_mu_);

    Mutex config_mu_;
    // node-based map: Site addresses stay stable for the atomics.
    std::map<std::string, std::unique_ptr<Site>> sites_
        GUARDED_BY(config_mu_);
};

/** The canonical Error raised by a keyed injected fault. */
Error injectedFault(const std::string &site, std::uint64_t key);

} // namespace accelwall::util

#endif // ACCELWALL_UTIL_FAULTINJECT_HH
