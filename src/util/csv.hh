/**
 * @file
 * Minimal CSV writer. Benches optionally dump machine-readable series so a
 * downstream plotting stack can regenerate the paper's figures.
 */

#ifndef ACCELWALL_UTIL_CSV_HH
#define ACCELWALL_UTIL_CSV_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "util/error.hh"

namespace accelwall
{

/**
 * Accumulates rows and writes RFC-4180-ish CSV (quotes fields containing
 * commas, quotes, or newlines).
 */
class CsvWriter
{
  public:
    /** Construct with the header row. */
    explicit CsvWriter(std::vector<std::string> header);

    /** Append one data row; must match the header arity. */
    void addRow(std::vector<std::string> row);

    /** Serialize header + rows to @p os. */
    void write(std::ostream &os) const;

    /** Serialize to a string. */
    std::string str() const;

    /** Escape a single field per CSV quoting rules. */
    static std::string escape(const std::string &field);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Parsed CSV contents: one vector of fields per row. */
using CsvRows = std::vector<std::vector<std::string>>;

/**
 * Parse CSV text into rows of fields. Handles quoted fields with
 * embedded commas, escaped quotes (""), and both LF and CRLF line
 * endings; a trailing newline does not produce an empty row.
 *
 * An unterminated quoted field (e.g. a truncated file) is a
 * recoverable error: the Error carries ErrorCode::CsvUnterminatedQuote
 * and the 1-based line/column of the quote that was never closed.
 */
Result<CsvRows> parseCsv(const std::string &text);

} // namespace accelwall

#endif // ACCELWALL_UTIL_CSV_HH
