/**
 * @file
 * Deterministic random number generation for the synthetic datasheet
 * corpus. We avoid std::mt19937 + std::normal_distribution because their
 * exact output is implementation-defined for distributions; SplitMix64 plus
 * a Box-Muller transform is reproducible across standard libraries.
 */

#ifndef ACCELWALL_UTIL_RNG_HH
#define ACCELWALL_UTIL_RNG_HH

#include <cstdint>

namespace accelwall
{

/**
 * SplitMix64 pseudo-random generator (Steele et al.), with convenience
 * draws for the distributions the corpus generator needs.
 */
class Rng
{
  public:
    /** Seed the generator; the same seed yields the same sequence. */
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit draw. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi);

    /** Standard normal draw via Box-Muller. */
    double normal();

    /** Normal draw with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Log-normal multiplicative noise: exp(N(0, sigma)). Used to perturb
     * power-law datasheet quantities, which are naturally multiplicative.
     */
    double lognoise(double sigma);

  private:
    std::uint64_t state_;
    bool has_spare_ = false;
    double spare_ = 0.0;
};

} // namespace accelwall

#endif // ACCELWALL_UTIL_RNG_HH
