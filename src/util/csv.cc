#include "util/csv.hh"

#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace accelwall
{

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        fatal("CsvWriter requires at least one column");
}

void
CsvWriter::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size()) {
        fatal("CSV row arity ", row.size(), " does not match header ",
              header_.size());
    }
    rows_.push_back(std::move(row));
}

std::string
CsvWriter::escape(const std::string &field)
{
    bool needs_quotes =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

void
CsvWriter::write(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << escape(row[c]);
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
CsvWriter::str() const
{
    std::ostringstream oss;
    write(oss);
    return oss.str();
}

Result<CsvRows>
parseCsv(const std::string &text)
{
    CsvRows rows;
    std::vector<std::string> row;
    std::string field;
    bool in_quotes = false;
    bool field_started = false;
    // 1-based position of the current character and of the quote that
    // opened the active quoted field (for the truncation diagnostic).
    std::size_t line = 1, column = 0;
    std::size_t quote_line = 0, quote_column = 0;

    auto end_field = [&]() {
        row.push_back(std::move(field));
        field.clear();
        field_started = false;
    };
    auto end_row = [&]() {
        end_field();
        rows.push_back(std::move(row));
        row.clear();
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        char ch = text[i];
        if (ch == '\n') {
            ++line;
            column = 0;
        } else {
            ++column;
        }
        if (in_quotes) {
            if (ch == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field += '"';
                    ++i;
                    ++column;
                } else {
                    in_quotes = false;
                }
            } else {
                field += ch;
            }
            continue;
        }
        switch (ch) {
          case '"':
            in_quotes = true;
            field_started = true;
            quote_line = line;
            quote_column = column;
            break;
          case ',':
            end_field();
            field_started = true; // next field exists even if empty
            break;
          case '\r':
            break; // swallow CR of CRLF
          case '\n':
            if (!field.empty() || field_started || !row.empty())
                end_row();
            break;
          default:
            field += ch;
            field_started = true;
            break;
        }
    }
    if (in_quotes) {
        return makeError(ErrorCode::CsvUnterminatedQuote,
                         "unterminated quoted field (quote opened at "
                         "line ",
                         quote_line, ", column ", quote_column, ")")
            .at(quote_line, quote_column);
    }
    if (!field.empty() || field_started || !row.empty())
        end_row();
    return rows;
}

} // namespace accelwall
