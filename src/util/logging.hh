/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: inform() for benign status, warn() for
 * conditions that might indicate a problem, fatal() for user errors that
 * prevent continuing (exits with code 1), and panic() for internal
 * invariant violations (aborts).
 *
 * Lines are serialized behind a mutex, so messages emitted from
 * ThreadPool workers never interleave mid-line. For failures that the
 * caller can recover from, prefer returning a Result (util/error.hh)
 * over fatal(); see DESIGN.md "Failure domains".
 */

#ifndef ACCELWALL_UTIL_LOGGING_HH
#define ACCELWALL_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace accelwall
{

/** Destinations understood by the logging backend. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

namespace detail
{

/** Emit one formatted log line; terminates for Fatal/Panic. */
[[noreturn]] void logAndDie(LogLevel level, const std::string &msg);

/** Emit one formatted log line for non-terminating levels. */
void log(LogLevel level, const std::string &msg);

/** Concatenate all arguments through an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Report a normal operating message to the user.
 */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::log(LogLevel::Inform,
                detail::concat(std::forward<Args>(args)...));
}

/**
 * Report a suspicious-but-survivable condition.
 */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::log(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/**
 * Terminate due to a user-correctable error (bad input or configuration).
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::logAndDie(LogLevel::Fatal,
                      detail::concat(std::forward<Args>(args)...));
}

/**
 * Terminate due to an internal invariant violation (a library bug).
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::logAndDie(LogLevel::Panic,
                      detail::concat(std::forward<Args>(args)...));
}

} // namespace accelwall

#endif // ACCELWALL_UTIL_LOGGING_HH
