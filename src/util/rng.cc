#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace accelwall
{

std::uint64_t
Rng::nextU64()
{
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return (nextU64() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::uniform(double lo, double hi)
{
    if (hi < lo)
        panic("Rng::uniform: hi < lo");
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int lo, int hi)
{
    if (hi < lo)
        panic("Rng::uniformInt: hi < lo");
    // Widen both ends before subtracting: uint64 - int mixes
    // signedness and only lands on the right span by modular accident.
    std::uint64_t span = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(hi) - static_cast<std::int64_t>(lo)) + 1;
    return lo + static_cast<int>(nextU64() % span);
}

double
Rng::normal()
{
    if (has_spare_) {
        has_spare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    has_spare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognoise(double sigma)
{
    return std::exp(normal(0.0, sigma));
}

} // namespace accelwall
