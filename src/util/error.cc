#include "util/error.hh"

#include <cstdio>

namespace accelwall
{

const char *
errorCodeLabel(ErrorCode code)
{
    switch (code) {
      case ErrorCode::None: return "none";
      case ErrorCode::CsvUnterminatedQuote: return "csv-unterminated-quote";
      case ErrorCode::CsvArityMismatch: return "csv-arity-mismatch";
      case ErrorCode::CsvBadNumber: return "csv-bad-number";
      case ErrorCode::CsvMissingColumn: return "csv-missing-column";
      case ErrorCode::CsvNoData: return "csv-no-data";
      case ErrorCode::JsonParse: return "json-parse";
      case ErrorCode::JsonBadType: return "json-bad-type";
      case ErrorCode::JsonMissingField: return "json-missing-field";
      case ErrorCode::JsonBadValue: return "json-bad-value";
      case ErrorCode::RecordNonPositiveNode:
        return "record-non-positive-node";
      case ErrorCode::RecordNonPositiveArea:
        return "record-non-positive-area";
      case ErrorCode::RecordNonPositiveTdp:
        return "record-non-positive-tdp";
      case ErrorCode::RecordNonFinite: return "record-non-finite";
      case ErrorCode::RecordBadYear: return "record-bad-year";
      case ErrorCode::RecordNonPositiveFreq:
        return "record-non-positive-freq";
      case ErrorCode::RecordBadPlatform: return "record-bad-platform";
      case ErrorCode::FitTooFewRecords: return "fit-too-few-records";
      case ErrorCode::SweepEmptyDimension: return "sweep-empty-dimension";
      case ErrorCode::SweepChainFailed: return "sweep-chain-failed";
      case ErrorCode::CheckpointIo: return "checkpoint-io";
      case ErrorCode::CheckpointCorrupt: return "checkpoint-corrupt";
      case ErrorCode::CheckpointMismatch: return "checkpoint-mismatch";
      case ErrorCode::ChipletUnknownNode: return "chiplet-unknown-node";
      case ErrorCode::ChipletDieTooLarge: return "chiplet-die-too-large";
      case ErrorCode::HttpMalformed: return "http-malformed";
      case ErrorCode::HttpUnsupportedMethod:
          return "http-unsupported-method";
      case ErrorCode::HttpBodyTooLarge: return "http-body-too-large";
      case ErrorCode::HttpDeadline: return "http-deadline";
      case ErrorCode::ServeOverloaded: return "serve-overloaded";
      case ErrorCode::ServeUnknownEndpoint:
          return "serve-unknown-endpoint";
      case ErrorCode::ServeSweepTooLarge: return "serve-sweep-too-large";
      case ErrorCode::ServeBind: return "serve-bind";
      case ErrorCode::ServeConnection: return "serve-connection";
      case ErrorCode::ServeChipletTooLarge:
          return "serve-chiplet-too-large";
      case ErrorCode::ClientRetriesExhausted:
          return "client-retries-exhausted";
      case ErrorCode::ClientCircuitOpen: return "client-circuit-open";
      case ErrorCode::ClientDeadline: return "client-deadline";
      case ErrorCode::SrcScanIo: return "src-scan-io";
      case ErrorCode::FaultInjected: return "fault-injected";
      case ErrorCode::Internal: return "internal";
    }
    return "unknown";
}

std::string
errorCodeName(ErrorCode code)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "E%d", static_cast<int>(code));
    return buf;
}

std::string
Error::str() const
{
    std::ostringstream oss;
    oss << errorCodeName(code_) << ' ' << errorCodeLabel(code_) << ": "
        << message_;
    if (!context_.empty() || line_ > 0) {
        oss << " (";
        if (!context_.empty())
            oss << context_;
        if (line_ > 0) {
            if (!context_.empty())
                oss << ':';
            oss << line_ << ':' << column_;
        }
        oss << ')';
    }
    return oss.str();
}

void
throwError(Error error)
{
    throw ErrorException(std::move(error));
}

} // namespace accelwall
