#include "util/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/format.hh"
#include "util/logging.hh"

namespace accelwall
{

std::string
fmtJsonNumber(double value)
{
    if (!std::isfinite(value)) {
        // JSON has no Inf/NaN; emitters must not feed them here.
        panic("fmtJsonNumber: non-finite value");
    }
    constexpr double kMaxExactInt = 9007199254740992.0; // 2^53
    if (value == std::floor(value) && std::fabs(value) <= kMaxExactInt) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", value);
        return buf;
    }
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), value);
    return std::string(buf, res.ptr);
}

// --- JsonWriter -------------------------------------------------------

void
JsonWriter::indent()
{
    if (!pretty_)
        return;
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty()) {
        if (!out_.empty())
            panic("JsonWriter: multiple top-level values");
        return;
    }
    auto &[scope, populated] = stack_.back();
    if (scope == Scope::Object) {
        if (!key_pending_)
            panic("JsonWriter: object value without a key");
        key_pending_ = false;
        return; // key() already wrote the separator
    }
    if (populated)
        out_ += pretty_ ? "," : ", ";
    if (pretty_)
        indent();
    populated = true;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (stack_.empty() || stack_.back().first != Scope::Object)
        panic("JsonWriter: key() outside an object");
    if (key_pending_)
        panic("JsonWriter: key() twice without a value");
    if (stack_.back().second)
        out_ += pretty_ ? "," : ", ";
    if (pretty_)
        indent();
    stack_.back().second = true;
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\": ";
    key_pending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    stack_.emplace_back(Scope::Object, false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back().first != Scope::Object ||
        key_pending_)
        panic("JsonWriter: unbalanced endObject()");
    bool populated = stack_.back().second;
    stack_.pop_back();
    if (pretty_ && populated)
        indent();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    stack_.emplace_back(Scope::Array, false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back().first != Scope::Array)
        panic("JsonWriter: unbalanced endArray()");
    bool populated = stack_.back().second;
    stack_.pop_back();
    if (pretty_ && populated)
        indent();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    out_ += fmtJsonNumber(v);
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(long v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned long v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(long long v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned long long v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    out_ += "null";
    return *this;
}

// --- JsonValue --------------------------------------------------------

const char *
JsonValue::kindName() const
{
    switch (kind_) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "?";
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        panic("JsonValue: asBool() on a ", kindName());
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        panic("JsonValue: asNumber() on a ", kindName());
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        panic("JsonValue: asString() on a ", kindName());
    return string_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (kind_ != Kind::Array)
        panic("JsonValue: asArray() on a ", kindName());
    return array_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        panic("JsonValue: members() on a ", kindName());
    return object_;
}

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind_ != Kind::Object)
        panic("JsonValue: find() on a ", kindName());
    for (const auto &[key, value] : object_) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue j;
    j.kind_ = Kind::Bool;
    j.bool_ = v;
    return j;
}

JsonValue
JsonValue::makeNumber(double v)
{
    JsonValue j;
    j.kind_ = Kind::Number;
    j.number_ = v;
    return j;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue j;
    j.kind_ = Kind::String;
    j.string_ = std::move(v);
    return j;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue j;
    j.kind_ = Kind::Array;
    j.array_ = std::move(items);
    return j;
}

JsonValue
JsonValue::makeObject(std::vector<std::pair<std::string, JsonValue>> m)
{
    JsonValue j;
    j.kind_ = Kind::Object;
    j.object_ = std::move(m);
    return j;
}

// --- parser -----------------------------------------------------------

namespace
{

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::size_t max_depth)
        : text_(text), max_depth_(max_depth)
    {
    }

    Result<JsonValue>
    parse()
    {
        JsonValue root;
        if (Result<void> r = parseValue(root, 0); !r.ok())
            return r.error();
        skipWhitespace();
        if (pos_ != text_.size())
            return fail("trailing content after the document");
        return root;
    }

  private:
    Error
    errorHere(const std::string &message) const
    {
        // 1-based line:column of pos_.
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        return Error(ErrorCode::JsonParse, message).at(line, col);
    }

    Error fail(const std::string &message) const
    {
        return errorHere(message);
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Result<void>
    parseValue(JsonValue &out, std::size_t depth)
    {
        if (depth > max_depth_)
            return fail("nesting deeper than the limit");
        skipWhitespace();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"': return parseString(out);
          case 't':
          case 'f': return parseBool(out);
          case 'n': return parseNull(out);
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber(out);
            return fail(std::string("unexpected character '") + c + "'");
        }
    }

    Result<void>
    parseLiteral(const char *word)
    {
        std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += len;
        return {};
    }

    Result<void>
    parseNull(JsonValue &out)
    {
        if (Result<void> r = parseLiteral("null"); !r.ok())
            return r;
        out = JsonValue::makeNull();
        return {};
    }

    Result<void>
    parseBool(JsonValue &out)
    {
        bool v = text_[pos_] == 't';
        if (Result<void> r = parseLiteral(v ? "true" : "false"); !r.ok())
            return r;
        out = JsonValue::makeBool(v);
        return {};
    }

    Result<void>
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (consume('-')) {
            // fall through to digits
        }
        if (pos_ >= text_.size() || !isDigit(text_[pos_]))
            return fail("malformed number");
        // Leading zero may not be followed by more digits.
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            isDigit(text_[pos_ + 1]))
            return fail("number with a leading zero");
        while (pos_ < text_.size() && isDigit(text_[pos_]))
            ++pos_;
        if (consume('.')) {
            if (pos_ >= text_.size() || !isDigit(text_[pos_]))
                return fail("malformed number fraction");
            while (pos_ < text_.size() && isDigit(text_[pos_]))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || !isDigit(text_[pos_]))
                return fail("malformed number exponent");
            while (pos_ < text_.size() && isDigit(text_[pos_]))
                ++pos_;
        }
        std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || !std::isfinite(v))
            return fail("number out of range");
        out = JsonValue::makeNumber(v);
        return {};
    }

    Result<void>
    parseString(JsonValue &out)
    {
        std::string s;
        if (Result<void> r = parseRawString(s); !r.ok())
            return r;
        out = JsonValue::makeString(std::move(s));
        return {};
    }

    Result<void>
    parseRawString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return {};
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp = 0;
                if (Result<void> r = parseHex4(cp); !r.ok())
                    return r;
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail(std::string("bad escape '\\") + e + "'");
            }
        }
    }

    Result<void>
    parseHex4(unsigned &out)
    {
        out = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                return fail("truncated \\u escape");
            char c = text_[pos_++];
            unsigned digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<unsigned>(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<unsigned>(c - 'A') + 10;
            else
                return fail("bad \\u escape digit");
            out = out * 16 + digit;
        }
        return {};
    }

    /** BMP-only \uXXXX; surrogates encode as-is (like jsonEscape). */
    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    Result<void>
    parseArray(JsonValue &out, std::size_t depth)
    {
        consume('[');
        std::vector<JsonValue> items;
        skipWhitespace();
        if (consume(']')) {
            out = JsonValue::makeArray(std::move(items));
            return {};
        }
        while (true) {
            JsonValue item;
            if (Result<void> r = parseValue(item, depth + 1); !r.ok())
                return r;
            items.push_back(std::move(item));
            skipWhitespace();
            if (consume(']'))
                break;
            if (!consume(','))
                return fail("expected ',' or ']' in array");
        }
        out = JsonValue::makeArray(std::move(items));
        return {};
    }

    Result<void>
    parseObject(JsonValue &out, std::size_t depth)
    {
        consume('{');
        std::vector<std::pair<std::string, JsonValue>> members;
        skipWhitespace();
        if (consume('}')) {
            out = JsonValue::makeObject(std::move(members));
            return {};
        }
        while (true) {
            skipWhitespace();
            std::string key;
            if (Result<void> r = parseRawString(key); !r.ok())
                return r;
            for (const auto &[existing, ignored] : members) {
                if (existing == key)
                    return fail("duplicate object key \"" + key + "\"");
            }
            skipWhitespace();
            if (!consume(':'))
                return fail("expected ':' after object key");
            JsonValue value;
            if (Result<void> r = parseValue(value, depth + 1); !r.ok())
                return r;
            members.emplace_back(std::move(key), std::move(value));
            skipWhitespace();
            if (consume('}'))
                break;
            if (!consume(','))
                return fail("expected ',' or '}' in object");
        }
        out = JsonValue::makeObject(std::move(members));
        return {};
    }

    static bool isDigit(char c) { return c >= '0' && c <= '9'; }

    const std::string &text_;
    std::size_t max_depth_;
    std::size_t pos_ = 0;
};

} // namespace

Result<JsonValue>
parseJson(const std::string &text, std::size_t max_depth)
{
    return JsonParser(text, max_depth).parse();
}

} // namespace accelwall
