/**
 * @file
 * Small string-formatting helpers used by the table/CSV writers and the
 * figure-regeneration benches.
 */

#ifndef ACCELWALL_UTIL_FORMAT_HH
#define ACCELWALL_UTIL_FORMAT_HH

#include <string>

namespace accelwall
{

/**
 * Format a double with a fixed number of fractional digits.
 *
 * @param value The number to format.
 * @param digits Fractional digits to keep.
 * @return The formatted string, e.g. fmtFixed(3.14159, 2) == "3.14".
 */
std::string fmtFixed(double value, int digits = 2);

/**
 * Format a double in engineering style with an SI suffix, e.g. 1.62K,
 * 3.4M, 12.1G. Values below 1000 are printed plainly.
 */
std::string fmtSi(double value, int digits = 1);

/**
 * Format a relative gain as the paper's figures label them, e.g. "307.4x".
 */
std::string fmtGain(double value, int digits = 1);

/**
 * Format a CMOS node, e.g. fmtNode(45) == "45nm".
 */
std::string fmtNode(double node_nm);

/**
 * Format a percentage with one fractional digit, e.g. "42.0%".
 */
std::string fmtPercent(double fraction);

/**
 * Left-pad @p s with spaces to at least @p width characters.
 */
std::string padLeft(const std::string &s, std::size_t width);

/**
 * Right-pad @p s with spaces to at least @p width characters.
 */
std::string padRight(const std::string &s, std::size_t width);

/**
 * Escape @p s for use inside a JSON string literal: quotes and
 * backslashes get backslash-escaped, the common control characters get
 * their short forms (\n, \t, \r, \b, \f), and any other byte below
 * 0x20 becomes a \u00XX escape. Diagnostic messages quote arbitrary
 * user input (chip names, file paths), so this must never emit
 * invalid JSON regardless of content.
 */
std::string jsonEscape(const std::string &s);

} // namespace accelwall

#endif // ACCELWALL_UTIL_FORMAT_HH
