/**
 * @file
 * Portable Clang Thread Safety Analysis annotations plus annotated
 * locking primitives.
 *
 * Under Clang with -Wthread-safety the macros expand to the
 * `thread_safety` attribute family and the compiler statically proves
 * that every access to a GUARDED_BY member happens with its capability
 * held; under other compilers they expand to nothing and the wrappers
 * cost exactly a std::mutex / std::condition_variable.
 *
 * Use the annotated types, not bare std::mutex, for any state shared
 * across ThreadPool workers:
 *
 *   struct Shared {
 *       util::Mutex mu;
 *       long hits GUARDED_BY(mu) = 0;
 *   };
 *   ...
 *   util::MutexLock lock(shared.mu);   // SCOPED_CAPABILITY
 *   ++shared.hits;                      // OK; without the lock: error
 *
 * tools/run_static_checks.sh runs the Clang pass when clang++ is on
 * PATH; the GCC build is unaffected.
 */

#ifndef ACCELWALL_UTIL_THREAD_ANNOTATIONS_HH
#define ACCELWALL_UTIL_THREAD_ANNOTATIONS_HH

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ACCELWALL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ACCELWALL_THREAD_ANNOTATION
#define ACCELWALL_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

#define CAPABILITY(x) ACCELWALL_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY ACCELWALL_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) ACCELWALL_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) ACCELWALL_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) \
    ACCELWALL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) \
    ACCELWALL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
    ACCELWALL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
    ACCELWALL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) \
    ACCELWALL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) \
    ACCELWALL_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) ACCELWALL_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
    ACCELWALL_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace accelwall::util
{

class ConditionVariable;

/** std::mutex carrying the `mutex` capability for the analysis. */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class ConditionVariable;
    std::mutex mu_;
};

/** RAII lock for Mutex (std::lock_guard with scoped-capability). */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable paired with Mutex. wait() demands the capability
 * so the analysis knows the guarded predicate is read under the lock
 * (the lock is briefly released inside, as with any CV wait — the
 * predicate itself is only ever evaluated while holding it).
 */
class ConditionVariable
{
  public:
    template <typename Pred>
    void
    wait(Mutex &mu, Pred pred) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS
    {
        std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
        cv_.wait(lock, pred);
        lock.release(); // caller still holds mu, as the contract says
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace accelwall::util

#endif // ACCELWALL_UTIL_THREAD_ANNOTATIONS_HH
