#include "util/faultinject.hh"

#include <cstdlib>

namespace accelwall::util
{

bool
knownFaultSite(const std::string &site)
{
    for (const FaultSiteInfo &info : kFaultSites) {
        if (site == info.site)
            return true;
    }
    return false;
}

FaultPlan &
FaultPlan::global()
{
    static FaultPlan *plan = [] {
        auto *p = new FaultPlan;
        if (const char *env = std::getenv("ACCELWALL_FAULT")) {
            auto parsed = p->configure(env);
            if (!parsed.ok()) {
                warn("ignoring ACCELWALL_FAULT: ",
                     parsed.error().str());
            }
        }
        return p;
    }();
    return *plan;
}

Result<void>
FaultPlan::configure(const std::string &spec)
{
    MutexLock lock(config_mu_);
    clearLocked();
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;

        std::size_t colon = entry.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= entry.size()) {
            clearLocked();
            return makeError(ErrorCode::Internal,
                             "fault spec entry '", entry,
                             "' is not site:period");
        }
        std::string site = entry.substr(0, colon);
        std::string period_str = entry.substr(colon + 1);
        char *parse_end = nullptr;
        unsigned long long period =
            std::strtoull(period_str.c_str(), &parse_end, 10);
        if (parse_end == period_str.c_str() || *parse_end != '\0' ||
            period == 0) {
            clearLocked();
            return makeError(ErrorCode::Internal, "fault spec '", entry,
                             "' wants a positive integer period");
        }
        // A typo'd site would silently disarm the intended fault;
        // arm it anyway (tests may probe synthetic names) but say so.
        if (!knownFaultSite(site))
            warn("fault site '", site, "' is not in kFaultSites");
        auto &slot = sites_[site];
        slot = std::make_unique<Site>();
        slot->period = static_cast<std::uint64_t>(period);
    }
    return {};
}

void
FaultPlan::clear()
{
    MutexLock lock(config_mu_);
    clearLocked();
}

void
FaultPlan::clearLocked()
{
    sites_.clear();
}

bool
FaultPlan::armed(const std::string &site) const
{
    return sites_.count(site) > 0;
}

bool
FaultPlan::shouldFail(const std::string &site, std::uint64_t key) const
{
    auto it = sites_.find(site);
    if (it == sites_.end())
        return false;
    if ((key + 1) % it->second->period != 0)
        return false;
    it->second->injected.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
FaultPlan::shouldFailCounted(const std::string &site)
{
    auto it = sites_.find(site);
    if (it == sites_.end())
        return false;
    std::uint64_t call =
        it->second->calls.fetch_add(1, std::memory_order_relaxed) + 1;
    if (call % it->second->period != 0)
        return false;
    it->second->injected.fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::uint64_t
FaultPlan::injectedCount(const std::string &site) const
{
    auto it = sites_.find(site);
    if (it == sites_.end())
        return 0;
    return it->second->injected.load(std::memory_order_relaxed);
}

std::uint64_t
FaultPlan::totalInjected() const
{
    std::uint64_t total = 0;
    for (const auto &entry : sites_)
        total += entry.second->injected.load(std::memory_order_relaxed);
    return total;
}

Error
injectedFault(const std::string &site, std::uint64_t key)
{
    return makeError(ErrorCode::FaultInjected, "injected fault at site '",
                     site, "' (key ", key, ")")
        .in(site);
}

} // namespace accelwall::util
