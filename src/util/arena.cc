#include "util/arena.hh"

#include <cstdlib>

#include "util/logging.hh"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ACCELWALL_ARENA_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define ACCELWALL_ARENA_ASAN 1
#endif

#ifdef ACCELWALL_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#define ARENA_POISON(p, n) __asan_poison_memory_region((p), (n))
#define ARENA_UNPOISON(p, n) __asan_unpoison_memory_region((p), (n))
#else
#define ARENA_POISON(p, n) ((void)0)
#define ARENA_UNPOISON(p, n) ((void)0)
#endif

namespace accelwall::util
{

namespace
{

/**
 * Poisoned gap kept between consecutive allocations under ASan, so an
 * overrun past one allocation's end lands on a redzone instead of the
 * next allocation. Zero cost when ASan is off (the gap is only added
 * in instrumented builds).
 */
#ifdef ACCELWALL_ARENA_ASAN
constexpr std::size_t kRedzone = 16;
#else
constexpr std::size_t kRedzone = 0;
#endif

bool
isPow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Arena::Arena(std::size_t first_block_bytes)
{
    if (first_block_bytes == 0)
        first_block_bytes = kDefaultBlockBytes;
    next_block_bytes_ = first_block_bytes;
}

Arena::~Arena()
{
    for (Block &b : blocks_) {
        // Poisoned storage must be cleaned before handing it back.
        ARENA_UNPOISON(b.base, b.size);
        ::operator delete(b.base, std::align_val_t{kMaxAlign});
    }
}

void
Arena::grow(std::size_t min_bytes)
{
    std::size_t size = next_block_bytes_;
    while (size < min_bytes)
        size *= 2;
    // Geometric growth keeps block count logarithmic in peak demand.
    next_block_bytes_ = size * 2;

    Block b;
    b.base = static_cast<std::uint8_t *>(
        ::operator new(size, std::align_val_t{kMaxAlign}));
    b.size = size;
    ARENA_POISON(b.base, b.size);
    blocks_.push_back(b);
    reserved_ += size;
    current_ = blocks_.size() - 1;
    cursor_ = 0;
}

void *
Arena::allocBytes(std::size_t size, std::size_t align)
{
    if (!isPow2(align) || align > kMaxAlign)
        panic("Arena::allocBytes: bad alignment ", align);
    if (size == 0)
        size = 1; // distinct non-null pointers for empty arrays

    while (true) {
        if (!blocks_.empty()) {
            Block &b = blocks_[current_];
            std::size_t at = (cursor_ + align - 1) & ~(align - 1);
            if (at + size <= b.size) {
                cursor_ = at + size + kRedzone;
                allocated_ += size;
                ARENA_UNPOISON(b.base + at, size);
                return b.base + at;
            }
            if (current_ + 1 < blocks_.size()) {
                // Advance into a block recycled by reset().
                ++current_;
                cursor_ = 0;
                continue;
            }
        }
        grow(size + align + kRedzone);
    }
}

void
Arena::reset()
{
    for (Block &b : blocks_) {
        // srccheck:allow(S007): keeps `b` used when ARENA_POISON
        // compiles away on non-ASan builds; nothing is discarded.
        (void)b;
        ARENA_POISON(b.base, b.size);
    }
    current_ = 0;
    cursor_ = 0;
    allocated_ = 0;
}

} // namespace accelwall::util
