#include "util/parallel.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "util/logging.hh"

namespace accelwall::util
{

namespace
{

/** The setDefaultJobs() override; 0 means unset. */
std::atomic<int> g_default_jobs{0};

/** Parse ACCELWALL_JOBS; 0 when absent or not a positive integer. */
int
envJobs()
{
    const char *env = std::getenv("ACCELWALL_JOBS");
    if (env == nullptr || *env == '\0')
        return 0;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == nullptr || *end != '\0' || v <= 0) {
        warn("ignoring ACCELWALL_JOBS='", env,
             "': expected a positive integer");
        return 0;
    }
    return static_cast<int>(v);
}

} // namespace

int
hardwareJobs()
{
    unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
}

int
defaultJobs()
{
    int set = g_default_jobs.load(std::memory_order_relaxed);
    if (set > 0)
        return set;
    int env = envJobs();
    if (env > 0)
        return env;
    return hardwareJobs();
}

void
setDefaultJobs(int jobs)
{
    g_default_jobs.store(jobs > 0 ? jobs : 0, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int workers)
{
    ensureWorkers(workers > 0 ? workers : hardwareJobs());
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    // Thread-safety analysis exempts destructors: no other thread can
    // hold a reference here, so the unlocked join is safe.
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        MutexLock lock(mu_);
        if (stop_)
            panic("ThreadPool::post: pool is shutting down");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::ensureWorkers(int n)
{
    MutexLock lock(mu_);
    while (static_cast<int>(threads_.size()) < n)
        threads_.emplace_back([this] { workerLoop(); });
}

int
ThreadPool::workers() const
{
    MutexLock lock(mu_);
    return static_cast<int>(threads_.size());
}

ThreadPool &
ThreadPool::global()
{
    // Leaked on purpose: worker threads may outlive static destructors
    // in exotic exit paths, and the OS reclaims everything anyway.
    static ThreadPool *pool = new ThreadPool(hardwareJobs());
    return *pool;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mu_);
            cv_.wait(mu_, [this]() REQUIRES(mu_) {
                return stop_ || !queue_.empty();
            });
            if (stop_)
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

namespace detail
{

void
runChunked(std::size_t n, int jobs,
           const std::function<void(std::size_t, std::size_t)> &chunk)
{
    std::size_t chunks =
        std::min(static_cast<std::size_t>(jobs), n);

    ThreadPool &pool = ThreadPool::global();
    // Grow toward the requested width so an explicit jobs > hardware
    // request still gets real concurrency (useful under TSan).
    pool.ensureWorkers(static_cast<int>(chunks) - 1);

    std::vector<std::exception_ptr> errors(chunks);

    // Completion latch shared between the caller and the pool workers;
    // the annotated struct lets the analysis prove pending is only
    // touched under its mutex.
    struct Completion {
        Mutex mu;
        ConditionVariable cv;
        std::size_t pending GUARDED_BY(mu) = 0;
    } done;
    {
        MutexLock lock(done.mu);
        done.pending = chunks - 1;
    }

    auto run_chunk = [&](std::size_t c) {
        std::size_t begin = n * c / chunks;
        std::size_t end = n * (c + 1) / chunks;
        try {
            chunk(begin, end);
        } catch (...) {
            errors[c] = std::current_exception();
        }
    };

    // Chunks 1..N-1 go to the pool; the caller runs chunk 0 itself so
    // a one-thread pool still makes progress while the caller waits.
    for (std::size_t c = 1; c < chunks; ++c) {
        pool.post([&, c] {
            run_chunk(c);
            MutexLock lock(done.mu);
            if (--done.pending == 0)
                done.cv.notify_one();
        });
    }
    run_chunk(0);

    {
        MutexLock lock(done.mu);
        done.cv.wait(done.mu, [&]() REQUIRES(done.mu) {
            return done.pending == 0;
        });
    }

    for (auto &err : errors) {
        if (err)
            std::rethrow_exception(err);
    }
}

} // namespace detail

} // namespace accelwall::util
