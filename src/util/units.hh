/**
 * @file
 * Zero-overhead dimensional-analysis types for the model layer.
 *
 * Every headline number in the paper is a product of physical
 * quantities — node (nm), die area (mm²), frequency (MHz/GHz), TDP (W),
 * per-op energy (J), transistor counts — flowing from the scaling
 * tables (Fig. 3) through the transistor-budget fits into CSR
 * (Eq. 1-4). A silent unit mixup (area where a node is expected, watts
 * where joules are expected) corrupts the whole reproduction without
 * any runtime symptom. This header makes those mixups *compile errors*.
 *
 * A Quantity<Dim, Scale> is a double tagged with
 *
 *  - a dimension vector Dim<length, time, energy, count, voltage,
 *    currency> of integer exponents, and
 *  - a std::ratio Scale relative to the coherent base units
 *    (metre, second, joule, transistor, volt, US dollar),
 *
 * so Nanometers and SquareMillimeters differ in dimension, while
 * Megahertz and Gigahertz share a dimension but differ in scale.
 * Multiplication and division combine both; addition, subtraction and
 * comparison require the exact same unit (same dimension AND scale) —
 * converting between scales is explicit via unit_cast. The quotient of
 * two identical units collapses to a plain double (a true ratio, the
 * form Eq. 2 consumes); any other dimensionless-but-scaled quotient
 * (e.g. the density factor D = mm²/nm² of Fig. 3b) stays typed so its
 * implied 1e12 scale cannot leak silently into untyped arithmetic.
 *
 * Escape-hatch policy (see DESIGN.md §7): power-law fits such as
 * TC(D) = 4.99e9 * D^0.877 are dimensionally non-algebraic, so the
 * regression layer operates on .raw() values; every .raw() call marks
 * a deliberate exit from the checked domain and should appear only at
 * fit/IO boundaries.
 *
 * Everything here is constexpr and compiles to bare double arithmetic:
 * sizeof(Quantity) == sizeof(double) and no operation does more work
 * than its unchecked equivalent.
 */

#ifndef ACCELWALL_UTIL_UNITS_HH
#define ACCELWALL_UTIL_UNITS_HH

#include <ostream>
#include <ratio>
#include <type_traits>

namespace accelwall::units
{

/**
 * Integer exponents over the base axes: length [m], time [s],
 * energy [J], count [transistors], voltage [V], currency [USD].
 * The currency axis defaults to 0 so the physical-only spellings
 * (Dim<2,0,0,0,0> for area, …) keep meaning what they always did.
 */
template <int Len, int Time, int Energy, int Count, int Volt,
          int Curr = 0>
struct Dim
{
    static constexpr int len = Len;
    static constexpr int time = Time;
    static constexpr int energy = Energy;
    static constexpr int count = Count;
    static constexpr int volt = Volt;
    static constexpr int curr = Curr;
};

using DimNone = Dim<0, 0, 0, 0, 0>;

namespace detail
{

template <typename A, typename B>
struct DimMul;
template <int... A, int... B>
struct DimMul<Dim<A...>, Dim<B...>>
{
    using type = Dim<(A + B)...>;
};

template <typename A, typename B>
struct DimDiv;
template <int... A, int... B>
struct DimDiv<Dim<A...>, Dim<B...>>
{
    using type = Dim<(A - B)...>;
};

template <typename D>
inline constexpr bool is_dimensionless = std::is_same_v<D, DimNone>;

template <typename S>
inline constexpr bool is_unit_scale = (S::num == 1 && S::den == 1);

/** The scale ratio as a double (exact for every unit used here). */
template <typename S>
inline constexpr double scale_value =
    static_cast<double>(S::num) / static_cast<double>(S::den);

} // namespace detail

/**
 * A double carrying its unit in the type. Construction from a raw
 * double is explicit; exit back to raw doubles is explicit via raw().
 */
template <typename D, typename S = std::ratio<1>>
class Quantity
{
  public:
    using dim = D;
    using scale = typename S::type;

    constexpr Quantity() = default;
    constexpr explicit Quantity(double value) : value_(value) {}

    /** The deliberate escape hatch: the unitless stored magnitude. */
    constexpr double raw() const { return value_; }

    constexpr Quantity operator-() const { return Quantity{-value_}; }

    constexpr Quantity &operator+=(Quantity other)
    {
        value_ += other.value_;
        return *this;
    }
    constexpr Quantity &operator-=(Quantity other)
    {
        value_ -= other.value_;
        return *this;
    }
    constexpr Quantity &operator*=(double k)
    {
        value_ *= k;
        return *this;
    }
    constexpr Quantity &operator/=(double k)
    {
        value_ /= k;
        return *this;
    }

  private:
    double value_ = 0.0;
};

// Same-unit arithmetic and ordering. Same dimension at a different
// scale (Megahertz vs Gigahertz) does NOT match these overloads; use
// unit_cast first. The constraints are expressed as requires-clauses
// so misuse is SFINAE-visible to the negative-compile test probes.

template <typename D, typename S>
constexpr Quantity<D, S>
operator+(Quantity<D, S> a, Quantity<D, S> b)
{
    return Quantity<D, S>{a.raw() + b.raw()};
}

template <typename D, typename S>
constexpr Quantity<D, S>
operator-(Quantity<D, S> a, Quantity<D, S> b)
{
    return Quantity<D, S>{a.raw() - b.raw()};
}

template <typename D, typename S>
constexpr bool
operator==(Quantity<D, S> a, Quantity<D, S> b)
{
    return a.raw() == b.raw();
}

template <typename D, typename S>
constexpr bool
operator!=(Quantity<D, S> a, Quantity<D, S> b)
{
    return a.raw() != b.raw();
}

template <typename D, typename S>
constexpr bool
operator<(Quantity<D, S> a, Quantity<D, S> b)
{
    return a.raw() < b.raw();
}

template <typename D, typename S>
constexpr bool
operator<=(Quantity<D, S> a, Quantity<D, S> b)
{
    return a.raw() <= b.raw();
}

template <typename D, typename S>
constexpr bool
operator>(Quantity<D, S> a, Quantity<D, S> b)
{
    return a.raw() > b.raw();
}

template <typename D, typename S>
constexpr bool
operator>=(Quantity<D, S> a, Quantity<D, S> b)
{
    return a.raw() >= b.raw();
}

// Scalar scaling keeps the unit.

template <typename D, typename S>
constexpr Quantity<D, S>
operator*(Quantity<D, S> q, double k)
{
    return Quantity<D, S>{q.raw() * k};
}

template <typename D, typename S>
constexpr Quantity<D, S>
operator*(double k, Quantity<D, S> q)
{
    return Quantity<D, S>{k * q.raw()};
}

template <typename D, typename S>
constexpr Quantity<D, S>
operator/(Quantity<D, S> q, double k)
{
    return Quantity<D, S>{q.raw() / k};
}

namespace detail
{

/**
 * Build the product/quotient result: dimension exponents add, scales
 * multiply. A result that is fully dimensionless at unit scale — W/W,
 * a true ratio — collapses to plain double; a dimensionless result
 * with a residual scale (mm²/nm² = 1e12) stays a typed Quantity so the
 * scale cannot vanish into untyped arithmetic unnoticed.
 */
template <typename DR, typename SR>
constexpr auto
makeResult(double value)
{
    if constexpr (is_dimensionless<DR> && is_unit_scale<typename SR::type>)
        return value;
    else
        return Quantity<DR, typename SR::type>{value};
}

} // namespace detail

template <typename D1, typename S1, typename D2, typename S2>
constexpr auto
operator*(Quantity<D1, S1> a, Quantity<D2, S2> b)
{
    using DR = typename detail::DimMul<D1, D2>::type;
    using SR = std::ratio_multiply<S1, S2>;
    return detail::makeResult<DR, SR>(a.raw() * b.raw());
}

template <typename D1, typename S1, typename D2, typename S2>
constexpr auto
operator/(Quantity<D1, S1> a, Quantity<D2, S2> b)
{
    using DR = typename detail::DimDiv<D1, D2>::type;
    using SR = std::ratio_divide<S1, S2>;
    return detail::makeResult<DR, SR>(a.raw() / b.raw());
}

template <typename D, typename S>
constexpr auto
operator/(double k, Quantity<D, S> q)
{
    using DR = typename detail::DimDiv<DimNone, D>::type;
    using SR = std::ratio_divide<std::ratio<1>, S>;
    return detail::makeResult<DR, SR>(k / q.raw());
}

/**
 * Explicit same-dimension rescale, e.g.
 * unit_cast<Gigahertz>(Megahertz{2400}) == Gigahertz{2.4}.
 */
template <typename To, typename D, typename S>
constexpr To
unit_cast(Quantity<D, S> q)
{
    static_assert(std::is_same_v<typename To::dim, D>,
                  "unit_cast cannot change dimensions, only scale");
    constexpr double factor = detail::scale_value<typename S::type> /
                              detail::scale_value<typename To::scale>;
    return To{q.raw() * factor};
}

/** Streams the raw magnitude (column headers carry the units). */
template <typename D, typename S>
std::ostream &
operator<<(std::ostream &os, Quantity<D, S> q)
{
    return os << q.raw();
}

// ---------------------------------------------------------------------
// The named units of the accelerator-wall model.
// ---------------------------------------------------------------------

using DimLength = Dim<1, 0, 0, 0, 0>;
using DimArea = Dim<2, 0, 0, 0, 0>;
using DimTime = Dim<0, 1, 0, 0, 0>;
using DimFrequency = Dim<0, -1, 0, 0, 0>;
using DimEnergy = Dim<0, 0, 1, 0, 0>;
using DimPower = Dim<0, -1, 1, 0, 0>;
using DimCount = Dim<0, 0, 0, 1, 0>;
using DimVoltage = Dim<0, 0, 0, 0, 1>;
using DimCurrency = Dim<0, 0, 0, 0, 0, 1>;

/** CMOS feature size, e.g. the 45 of "45nm". */
using Nanometers = Quantity<DimLength, std::ratio<1, 1000000000>>;
/** Die edge lengths (rarely used directly; areas dominate). */
using Millimeters = Quantity<DimLength, std::ratio<1, 1000>>;
/** Die area, the mm² of datasheets and Table V. */
using SquareMillimeters = Quantity<DimArea, std::ratio<1, 1000000>>;
/** node² — the denominator of the Fig. 3b density factor. */
using SquareNanometers =
    Quantity<DimArea, std::ratio<1, 1000000000000000000>>;
/** Datasheet clock (chipdb records store MHz). */
using Megahertz = Quantity<DimFrequency, std::ratio<1000000, 1>>;
/** Model clock (ChipSpec and the budget laws use GHz). */
using Gigahertz = Quantity<DimFrequency, std::ratio<1000000000, 1>>;
/** Thermal design power and modeled dissipation. */
using Watts = Quantity<DimPower>;
/** Absolute energy; 1 W / 1 GHz = 1 nJ per cycle. */
using Joules = Quantity<DimEnergy>;
using Nanojoules = Quantity<DimEnergy, std::ratio<1, 1000000000>>;
/** Per-bit link energy of the chiplet model (pJ/bit transfers). */
using Picojoules = Quantity<DimEnergy, std::ratio<1, 1000000000000>>;
/** Billed electricity (utility meters charge per kWh). */
using KilowattHours = Quantity<DimEnergy, std::ratio<3600000, 1>>;
/** Inter-chiplet hop latency (ns × GHz = cycles, a plain ratio). */
using Nanoseconds = Quantity<DimTime, std::ratio<1, 1000000000>>;
/** Market-simulation epochs and payback horizons. */
using Days = Quantity<DimTime, std::ratio<86400, 1>>;
/** Transistor counts (double: fit outputs are fractional). */
using TransistorCount = Quantity<DimCount>;
/** Supply voltage. */
using Volts = Quantity<DimVoltage>;
/** Money: wafer prices, capex, revenue. */
using Usd = Quantity<DimCurrency>;

/** The Fig. 3b density factor D = area/node² in mm²/nm² (scale 1e12). */
using DensityFactor =
    decltype(SquareMillimeters{} / (Nanometers{} * Nanometers{}));
/** The potential model's throughput unit (Section III). */
using TransistorGigahertz = decltype(TransistorCount{} * Gigahertz{});
/** Per-transistor leakage calibration (model.hh). */
using WattsPerTransistor = decltype(Watts{} / TransistorCount{});
/** Per-transistor-GHz switching calibration: nJ per transistor. */
using WattsPerTransistorGigahertz =
    decltype(Watts{} / TransistorGigahertz{});
/** The potential model's efficiency unit (throughput per watt). */
using TransistorGigahertzPerWatt =
    decltype(TransistorGigahertz{} / Watts{});
/** Area-normalized throughput (Section VI's per-mm² metrics). */
using TransistorGigahertzPerSquareMillimeter =
    decltype(TransistorGigahertz{} / SquareMillimeters{});
/** Fab defect density D0 — the knob of the negative-binomial yield. */
using DefectsPerSquareMillimeter = decltype(1.0 / SquareMillimeters{});
/** Wafer/die silicon price per unit area. */
using UsdPerSquareMillimeter = decltype(Usd{} / SquareMillimeters{});
/** Electricity tariff. */
using UsdPerKilowattHour = decltype(Usd{} / KilowattHours{});
/** Revenue and margin rates of the mining-market simulator. */
using UsdPerDay = decltype(Usd{} / Days{});
/** Cost-normalized throughput: the chiplet sweep's headline metric. */
using TransistorGigahertzPerUsd = decltype(TransistorGigahertz{} / Usd{});

static_assert(sizeof(Nanometers) == sizeof(double),
              "Quantity must stay a bare double");
static_assert(std::is_same_v<decltype(Watts{} / Gigahertz{}), Nanojoules>,
              "1 W at 1 GHz must be 1 nJ per cycle");
static_assert(
    std::is_same_v<decltype(Nanoseconds{} * Gigahertz{}), double>,
    "hop latency times clock must collapse to plain cycles");
static_assert(
    std::is_same_v<decltype(SquareMillimeters{} *
                            DefectsPerSquareMillimeter{}),
                   double>,
    "die area times defect density is the dimensionless A*D0 of the "
    "yield formula");
static_assert(
    std::is_same_v<decltype(KilowattHours{} * UsdPerKilowattHour{} /
                            Days{1.0}),
                   UsdPerDay>,
    "energy times tariff per day must land exactly on UsdPerDay");
static_assert(
    std::is_same_v<decltype(SquareMillimeters{} *
                            UsdPerSquareMillimeter{}),
                   Usd>,
    "area times area price must be plain dollars");

/** Unit literals: `using namespace accelwall::units::literals;`. */
namespace literals
{

constexpr Nanometers operator""_nm(long double v)
{
    return Nanometers{static_cast<double>(v)};
}
constexpr Nanometers operator""_nm(unsigned long long v)
{
    return Nanometers{static_cast<double>(v)};
}
constexpr SquareMillimeters operator""_mm2(long double v)
{
    return SquareMillimeters{static_cast<double>(v)};
}
constexpr SquareMillimeters operator""_mm2(unsigned long long v)
{
    return SquareMillimeters{static_cast<double>(v)};
}
constexpr Megahertz operator""_mhz(long double v)
{
    return Megahertz{static_cast<double>(v)};
}
constexpr Megahertz operator""_mhz(unsigned long long v)
{
    return Megahertz{static_cast<double>(v)};
}
constexpr Gigahertz operator""_ghz(long double v)
{
    return Gigahertz{static_cast<double>(v)};
}
constexpr Gigahertz operator""_ghz(unsigned long long v)
{
    return Gigahertz{static_cast<double>(v)};
}
constexpr Watts operator""_w(long double v)
{
    return Watts{static_cast<double>(v)};
}
constexpr Watts operator""_w(unsigned long long v)
{
    return Watts{static_cast<double>(v)};
}
constexpr Joules operator""_j(long double v)
{
    return Joules{static_cast<double>(v)};
}
constexpr TransistorCount operator""_tx(long double v)
{
    return TransistorCount{static_cast<double>(v)};
}
constexpr TransistorCount operator""_tx(unsigned long long v)
{
    return TransistorCount{static_cast<double>(v)};
}
constexpr Volts operator""_v(long double v)
{
    return Volts{static_cast<double>(v)};
}
constexpr Usd operator""_usd(long double v)
{
    return Usd{static_cast<double>(v)};
}
constexpr Usd operator""_usd(unsigned long long v)
{
    return Usd{static_cast<double>(v)};
}

} // namespace literals

} // namespace accelwall::units

#endif // ACCELWALL_UTIL_UNITS_HH
