/**
 * @file
 * The one JSON reader/writer pair in the tree.
 *
 * JsonWriter is a streaming emitter shared by every JSON producer
 * (accelwall-lint --format json, the serve subsystem's response
 * bodies) so escaping and number formatting live in exactly one
 * place. Numbers go through fmtJsonNumber(): integers in [-2^53, 2^53]
 * print without a fraction, everything else uses the shortest
 * round-trip form (std::to_chars), so identical inputs always
 * serialize to identical bytes — the serve result cache depends on
 * that for its bit-identity guarantee.
 *
 * JsonValue/parseJson is a small recursive-descent reader for request
 * bodies: objects, arrays, strings (with \uXXXX escapes), numbers,
 * booleans, and null. Parse failures come back as Result errors with
 * stable codes (E1101 json-parse) and 1-based line:column positions,
 * matching the CSV parser's conventions.
 */

#ifndef ACCELWALL_UTIL_JSON_HH
#define ACCELWALL_UTIL_JSON_HH

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/error.hh"

namespace accelwall
{

/** Canonical number formatting: shortest round-trip decimal form. */
std::string fmtJsonNumber(double value);

/**
 * Streaming JSON emitter with explicit object/array scopes.
 *
 * Commas and key/value separators are inserted automatically; the
 * caller only describes structure. Scope misuse (a value where a key
 * is required, unbalanced end* calls) panics — emitters are static
 * code paths, so that is a bug, not input-dependent.
 *
 *   JsonWriter w;
 *   w.beginObject();
 *   w.key("name").value("BTC");
 *   w.key("cells").beginArray().value(1.0).value(2.0).endArray();
 *   w.endObject();
 *   w.str();  // {"name": "BTC", "cells": [1, 2]}
 */
class JsonWriter
{
  public:
    /** @param pretty Two-space indentation + newlines when true. */
    explicit JsonWriter(bool pretty = false) : pretty_(pretty) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next call must produce its value. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(int v);
    JsonWriter &value(unsigned v);
    JsonWriter &value(long v);
    JsonWriter &value(unsigned long v);
    JsonWriter &value(long long v);
    JsonWriter &value(unsigned long long v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** The document so far; call after the final end*(). */
    const std::string &str() const { return out_; }

  private:
    enum class Scope
    {
        Object,
        Array,
    };

    void beforeValue();
    void indent();

    std::string out_;
    bool pretty_ = false;
    /** Per open scope: the scope kind and whether it has entries. */
    std::vector<std::pair<Scope, bool>> stack_;
    bool key_pending_ = false;
};

/**
 * One parsed JSON value. A tagged union over the seven JSON kinds;
 * object member order is preserved (insertion order) so diagnostics
 * can point at fields deterministically.
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Kind name for diagnostics ("number", "object", ...). */
    const char *kindName() const;

    /** Typed accessors; calling the wrong one panics (check first). */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;

    /** Object members in document order. */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** Member lookup; nullptr when absent (objects only). */
    const JsonValue *find(const std::string &name) const;

    /** True when the object has the member (objects only). */
    bool has(const std::string &name) const { return find(name); }

    static JsonValue makeNull();
    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> members);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/**
 * Parse a complete JSON document. Trailing non-whitespace, duplicate
 * object keys, and any syntax error produce an E1101 json-parse Error
 * carrying the 1-based line:column of the offending byte.
 *
 * @param text The document.
 * @param max_depth Nesting limit (arrays + objects) to bound stack
 *        use on adversarial inputs.
 */
Result<JsonValue> parseJson(const std::string &text,
                            std::size_t max_depth = 64);

} // namespace accelwall

#endif // ACCELWALL_UTIL_JSON_HH
