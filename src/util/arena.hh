/**
 * @file
 * Bump-pointer arena for per-chain sweep scratch.
 *
 * The data-oriented sweep engine (aladdin/soa_engine.hh) evaluates
 * thousands of design-point cells per (node, simplification) chain;
 * each cell needs a handful of node-sized arrays whose lifetimes all
 * end together when the cell finishes. An arena turns that pattern
 * into pointer bumps: alloc<T>(n) carves aligned storage out of large
 * blocks, reset() recycles every block in O(blocks) without returning
 * memory to the OS, and the next cell reuses the same hot cache lines.
 *
 * Safety properties (tested in tests/test_util.cc):
 *  - every allocation is aligned to alignof(T) (over-alignment up to
 *    kMaxAlign is honored);
 *  - live allocations never overlap, under any alloc/reset sequence;
 *  - under AddressSanitizer the recycled tail of every block is
 *    poisoned, so a use-after-reset or an overrun past an allocation's
 *    end is an ASan report instead of silent corruption.
 *
 * Not thread-safe: each worker thread owns its own arena (the sweep
 * keeps one per pool thread in thread-local scratch).
 */

#ifndef ACCELWALL_UTIL_ARENA_HH
#define ACCELWALL_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace accelwall::util
{

class Arena
{
  public:
    /** Largest honored allocation alignment. */
    static constexpr std::size_t kMaxAlign = 64;

    /** Default size of the first block, bytes. */
    static constexpr std::size_t kDefaultBlockBytes = std::size_t{1}
                                                      << 16;

    explicit Arena(std::size_t first_block_bytes = kDefaultBlockBytes);
    ~Arena();

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Carve @p size bytes aligned to @p align (a power of two
     * <= kMaxAlign; panic otherwise). The memory is uninitialized.
     * Oversized requests get a dedicated block, so any size succeeds.
     */
    void *allocBytes(std::size_t size, std::size_t align);

    /**
     * Typed allocation of @p count elements, uninitialized. Restricted
     * to trivially-destructible types: reset() never runs destructors.
     */
    template <typename T>
    T *
    alloc(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "Arena::alloc: reset() never destroys elements");
        return static_cast<T *>(
            allocBytes(count * sizeof(T), alignof(T)));
    }

    /** Typed allocation with every element value-initialized (zero). */
    template <typename T>
    T *
    allocZeroed(std::size_t count)
    {
        T *p = alloc<T>(count);
        for (std::size_t i = 0; i < count; ++i)
            p[i] = T{};
        return p;
    }

    /**
     * Recycle every block. Capacity is retained (no frees), previous
     * allocations become invalid, and under ASan their storage is
     * poisoned until re-allocated.
     */
    void reset();

    /** Bytes handed out since construction or the last reset(). */
    std::size_t bytesAllocated() const { return allocated_; }

    /** Total block capacity owned by the arena, bytes. */
    std::size_t bytesReserved() const { return reserved_; }

    /** Number of owned blocks (growth diagnostic). */
    std::size_t blocks() const { return blocks_.size(); }

  private:
    struct Block
    {
        std::uint8_t *base = nullptr;
        std::size_t size = 0;
    };

    /** Append a block of at least @p min_bytes and make it current. */
    void grow(std::size_t min_bytes);

    std::vector<Block> blocks_;
    /** Index of the block the cursor lives in; blocks_ before it are
     * full, blocks_ after it are empty (recycled by reset). */
    std::size_t current_ = 0;
    std::size_t cursor_ = 0; // offset into blocks_[current_]
    std::size_t allocated_ = 0;
    std::size_t reserved_ = 0;
    std::size_t next_block_bytes_ = kDefaultBlockBytes;
};

} // namespace accelwall::util

#endif // ACCELWALL_UTIL_ARENA_HH
