#include "util/socket.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "util/faultinject.hh"
#include "util/logging.hh"

namespace accelwall::util
{

namespace
{

using Clock = std::chrono::steady_clock;

Error
errnoError(ErrorCode code, const char *what)
{
    return makeError(code, what, ": ", std::strerror(errno));
}

/** Milliseconds left until the deadline, clamped at >= 0. */
int
remainingMs(Clock::time_point deadline)
{
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/**
 * poll(2) with an EINTR retry loop. A signal landing mid-wait must not
 * surface as a timeout or a connection error; retry with the time that
 * is actually left. @p timeout_ms < 0 waits forever, matching poll.
 */
int
pollRetry(pollfd *pfds, nfds_t count, int timeout_ms)
{
    if (timeout_ms < 0) {
        while (true) {
            int n = ::poll(pfds, count, -1);
            if (n >= 0 || errno != EINTR)
                return n;
        }
    }
    auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (true) {
        int n = ::poll(pfds, count, remainingMs(deadline));
        if (n >= 0 || errno != EINTR)
            return n;
        if (remainingMs(deadline) == 0)
            return 0; // the interruption consumed the whole wait
    }
}

/**
 * The socket options every TCP fd gets, in one place: SO_REUSEADDR
 * (listeners rebind instantly across test restarts) and TCP_NODELAY
 * (the serve exchanges are single-request latency-bound; Nagle would
 * add cross-packet stalls for nothing). Best-effort — an option that
 * does not apply to the fd's current state is simply ignored.
 */
void
setCommonSockOpts(int fd)
{
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

void
Fd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Result<Listener>
tcpListen(const std::string &host, int port, int backlog)
{
    if (port < 0 || port > 65535)
        return makeError(ErrorCode::ServeBind, "bad port ", port);

    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        return errnoError(ErrorCode::ServeBind, "socket");

    setCommonSockOpts(fd.get());

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return makeError(ErrorCode::ServeBind, "bad listen address '",
                         host, "'");
    }
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return errnoError(ErrorCode::ServeBind, "bind");
    if (::listen(fd.get(), backlog) != 0)
        return errnoError(ErrorCode::ServeBind, "listen");

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0)
        return errnoError(ErrorCode::ServeBind, "getsockname");

    Listener listener;
    listener.fd = std::move(fd);
    listener.port = ntohs(bound.sin_port);
    return listener;
}

Result<Fd>
tcpAccept(int listen_fd)
{
    while (true) {
        int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd >= 0) {
            Fd conn(fd);
            setCommonSockOpts(conn.get());
            // Dropping `conn` closes the socket with nothing sent —
            // the peer sees exactly what a crashed acceptor produces.
            if (FaultPlan::global().shouldFailCounted("accept-fail")) {
                return makeError(ErrorCode::ServeConnection,
                                 "injected accept failure")
                    .in("accept-fail");
            }
            return conn;
        }
        if (errno == EINTR)
            continue; // a signal is not a broken connection
        if (errno == ECONNABORTED)
            return errnoError(ErrorCode::ServeConnection, "accept");
        // EBADF/EINVAL: the listener was closed out from under us —
        // the drain signal. Everything else is equally terminal for
        // the accept loop.
        return errnoError(ErrorCode::ServeBind, "accept");
    }
}

Result<Fd>
tcpConnect(const std::string &host, int port, int deadline_ms)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        return errnoError(ErrorCode::ServeConnection, "socket");
    setCommonSockOpts(fd.get());

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return makeError(ErrorCode::ServeConnection, "bad address '",
                         host, "'");
    }

    int flags = ::fcntl(fd.get(), F_GETFL, 0);
    ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    // EINTR on a nonblocking connect means the handshake continues in
    // the background (POSIX) — fall through to the POLLOUT wait, same
    // as EINPROGRESS.
    if (rc != 0 && errno != EINPROGRESS && errno != EINTR)
        return errnoError(ErrorCode::ServeConnection, "connect");
    if (rc != 0) {
        pollfd pfd{fd.get(), POLLOUT, 0};
        int n = pollRetry(&pfd, 1, deadline_ms);
        if (n == 0) {
            return makeError(ErrorCode::HttpDeadline,
                             "connect timed out after ", deadline_ms,
                             "ms");
        }
        if (n < 0)
            return errnoError(ErrorCode::ServeConnection, "poll");
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
            errno = err;
            return errnoError(ErrorCode::ServeConnection, "connect");
        }
    }
    ::fcntl(fd.get(), F_SETFL, flags);
    return fd;
}

Result<void>
sendAll(int fd, const std::string &data, int deadline_ms)
{
    FaultPlan &plan = FaultPlan::global();
    // One check per sendAll call, in a fixed order, so multi-site
    // plans stay call-count deterministic (DESIGN §11).
    if (plan.shouldFailCounted("send-reset")) {
        return makeError(ErrorCode::ServeConnection,
                         "injected connection reset before send")
            .in("send-reset");
    }
    std::size_t limit = data.size();
    const bool drop_mid_body =
        plan.shouldFailCounted("conn-drop-mid-body");
    if (drop_mid_body)
        limit = data.size() / 2;
    std::size_t chunk = data.size();
    if (plan.shouldFailCounted("send-partial") && chunk > 1)
        chunk = 1; // every write is short; the loop must finish anyway

    auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
    std::size_t sent = 0;
    while (sent < limit) {
        std::size_t len = std::min(chunk, limit - sent);
        ssize_t n = ::send(fd, data.data() + sent, len, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            pollfd pfd{fd, POLLOUT, 0};
            int left = remainingMs(deadline);
            if (left == 0 || pollRetry(&pfd, 1, left) == 0) {
                return makeError(ErrorCode::HttpDeadline,
                                 "write timed out after ", deadline_ms,
                                 "ms");
            }
            continue;
        }
        return errnoError(ErrorCode::ServeConnection, "send");
    }
    if (drop_mid_body) {
        ::shutdown(fd, SHUT_RDWR);
        return makeError(ErrorCode::ServeConnection,
                         "injected connection drop mid-body (", sent,
                         " of ", data.size(), " bytes sent)")
            .in("conn-drop-mid-body");
    }
    return {};
}

Result<std::size_t>
recvSome(int fd, std::string &out, std::size_t max_bytes, int deadline_ms)
{
    FaultPlan &plan = FaultPlan::global();
    // Simulated stall: report the deadline the caller would have hit,
    // without consuming real wall time (tests stay fast and clocks
    // stay out of the failure decision).
    if (plan.shouldFailCounted("recv-stall")) {
        return makeError(ErrorCode::HttpDeadline,
                         "injected read stall (simulated ", deadline_ms,
                         "ms timeout)")
            .in("recv-stall");
    }
    if (plan.shouldFailCounted("recv-short") && max_bytes > 1)
        max_bytes = 1; // drip-feed: callers must reassemble

    auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
    while (true) {
        pollfd pfd{fd, POLLIN, 0};
        int n = pollRetry(&pfd, 1, remainingMs(deadline));
        if (n == 0) {
            return makeError(ErrorCode::HttpDeadline,
                             "read timed out after ", deadline_ms, "ms");
        }
        if (n < 0)
            return errnoError(ErrorCode::ServeConnection, "poll");

        std::string buf(max_bytes, '\0');
        ssize_t got = ::recv(fd, buf.data(), max_bytes, 0);
        if (got < 0) {
            // EINTR used to be reported as size 0 here — callers read
            // that as orderly peer shutdown and dropped live
            // connections. Retry with the time that is left instead.
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            return errnoError(ErrorCode::ServeConnection, "recv");
        }
        out.append(buf.data(), static_cast<std::size_t>(got));
        return static_cast<std::size_t>(got);
    }
}

WakePipe::WakePipe()
{
    int fds[2];
    // Non-blocking on both ends: drain() must not block, and poke()
    // on a full pipe should be a no-op (a wake-up is already queued).
    if (::pipe2(fds, O_CLOEXEC | O_NONBLOCK) != 0)
        panic("WakePipe: pipe2: ", std::strerror(errno));
    read_ = Fd(fds[0]);
    write_ = Fd(fds[1]);
}

void
WakePipe::poke() const
{
    char byte = 1;
    // Async-signal-safe; a full pipe means a poke is already pending.
    [[maybe_unused]] ssize_t n = ::write(write_.get(), &byte, 1);
}

void
WakePipe::drain() const
{
    char buf[64];
    while (::read(read_.get(), buf, sizeof(buf)) > 0) {
        // keep draining
    }
}

Result<int>
pollReadable(int fd, int wake_fd, int deadline_ms)
{
    pollfd pfds[2];
    nfds_t count = 0;
    pfds[count++] = {fd, POLLIN, 0};
    if (wake_fd >= 0)
        pfds[count++] = {wake_fd, POLLIN, 0};
    int n = pollRetry(pfds, count, deadline_ms);
    if (n == 0) {
        return makeError(ErrorCode::HttpDeadline, "poll timed out after ",
                         deadline_ms, "ms");
    }
    if (n < 0)
        return errnoError(ErrorCode::ServeConnection, "poll");
    if (count > 1 && (pfds[1].revents != 0))
        return wake_fd;
    return fd;
}

} // namespace accelwall::util
