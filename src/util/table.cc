#include "util/table.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/format.hh"
#include "util/logging.hh"

namespace accelwall
{

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        fatal("Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size()) {
        fatal("Table row arity ", row.size(), " does not match header ",
              header_.size());
    }
    rows_.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << padRight(row[c], widths[c]);
            if (c + 1 < row.size())
                os << "  ";
        }
        os << '\n';
    };

    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::str() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace accelwall
