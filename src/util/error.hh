/**
 * @file
 * Recoverable-error plumbing: Error, Result<T>, and the exception
 * bridge used by error boundaries.
 *
 * Error-handling policy (see DESIGN.md "Failure domains"):
 *
 *  - Input-driven failures (malformed CSV, bad datasheet records,
 *    under-populated fits, failed sweep chains) are *recoverable*:
 *    library code returns Result<T> carrying an Error with a stable
 *    code, and the caller decides whether to skip, degrade, or abort.
 *  - fatal() is reserved for CLI/adaptor boundaries that have decided
 *    a recoverable error is terminal for the process.
 *  - panic() is reserved for internal invariant violations (bugs).
 *
 * Error codes are stable integers grouped by failure domain (1xxx
 * parsing, 2xxx record validation, 3xxx fits, 4xxx sweep/checkpoint,
 * 5xxx serve, 6xxx source lint, 9xxx injected/internal) so reports,
 * CSV cells, and tests can match on them across releases. The
 * registry itself is machine-checked: lint rules S001..S003
 * (src/srccheck) verify each code is defined once, labeled, raised
 * somewhere under src/, mapped to an HTTP status when it is a serve
 * code, and that documentation references resolve.
 */

#ifndef ACCELWALL_UTIL_ERROR_HH
#define ACCELWALL_UTIL_ERROR_HH

#include <cstddef>
#include <exception>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "util/logging.hh"

namespace accelwall
{

/** Stable error codes; the numeric values are part of the interface. */
enum class ErrorCode
{
    None = 0,

    // 1xxx: text-input parsing.
    CsvUnterminatedQuote = 1001,
    CsvArityMismatch = 1002,
    CsvBadNumber = 1003,
    CsvMissingColumn = 1004,
    CsvNoData = 1005,
    JsonParse = 1101,
    JsonBadType = 1102,
    JsonMissingField = 1103,
    JsonBadValue = 1104,

    // 2xxx: chipdb record validation.
    RecordNonPositiveNode = 2001,
    RecordNonPositiveArea = 2002,
    RecordNonPositiveTdp = 2003,
    RecordNonFinite = 2004,
    RecordBadYear = 2005,
    RecordNonPositiveFreq = 2006,
    RecordBadPlatform = 2007,

    // 3xxx: regression fits.
    FitTooFewRecords = 3001,

    // 4xxx: design-space sweep and checkpointing.
    SweepEmptyDimension = 4001,
    SweepChainFailed = 4002,
    CheckpointIo = 4101,
    CheckpointCorrupt = 4102,
    CheckpointMismatch = 4103,

    // 42xx: chiplet cost/partition model (src/chiplet).
    ChipletUnknownNode = 4201,
    ChipletDieTooLarge = 4202,

    // 5xxx: embedded query service (serve). The HTTP status each code
    // maps to is part of the interface; see serve/service.hh.
    HttpMalformed = 5001,
    HttpUnsupportedMethod = 5002,
    HttpBodyTooLarge = 5003,
    HttpDeadline = 5004,
    ServeOverloaded = 5005,
    ServeUnknownEndpoint = 5006,
    ServeSweepTooLarge = 5007,
    ServeBind = 5008,
    ServeConnection = 5009,
    ServeChipletTooLarge = 5010,

    // 52xx: the resilient serve client (serve/client.hh). Raised on
    // the caller's side of the wire, after the retry policy gave up.
    ClientRetriesExhausted = 5201,
    ClientCircuitOpen = 5202,
    ClientDeadline = 5203,

    // 6xxx: source-consistency lint (srccheck).
    SrcScanIo = 6001,

    // 9xxx: injected faults and internal fallbacks.
    FaultInjected = 9001,
    Internal = 9902,
};

/** Stable kebab-case label, e.g. "csv-unterminated-quote". */
const char *errorCodeLabel(ErrorCode code);

/** Stable display code, e.g. "E1001". */
std::string errorCodeName(ErrorCode code);

/**
 * One recoverable failure: a stable code, a human-readable message,
 * and optional source context (an input name and/or a line:column
 * position for text inputs).
 */
class Error
{
  public:
    Error() = default;

    Error(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** Attach a 1-based line/column position (text inputs). */
    Error &
    at(std::size_t line, std::size_t column)
    {
        line_ = line;
        column_ = column;
        return *this;
    }

    /** Attach an origin label (a file path, site, or record name). */
    Error &
    in(std::string context)
    {
        context_ = std::move(context);
        return *this;
    }

    std::size_t line() const { return line_; }
    std::size_t column() const { return column_; }
    const std::string &context() const { return context_; }

    /** "E1001 csv-unterminated-quote: msg (chips.csv:3:7)". */
    std::string str() const;

  private:
    ErrorCode code_ = ErrorCode::None;
    std::string message_;
    std::string context_;
    std::size_t line_ = 0;
    std::size_t column_ = 0;
};

/** Build an Error by streaming all message arguments together. */
template <typename... Args>
Error
makeError(ErrorCode code, Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return Error(code, oss.str());
}

/**
 * Exception bridge for error boundaries: code deep inside a callback
 * (e.g. one sweep chain) throws, the boundary catches and converts
 * back to a Result. Not part of normal control flow elsewhere.
 */
class ErrorException : public std::exception
{
  public:
    explicit ErrorException(Error error)
        : error_(std::move(error)), what_(error_.str())
    {
    }

    const Error &error() const { return error_; }
    const char *what() const noexcept override { return what_.c_str(); }

  private:
    Error error_;
    std::string what_;
};

/** Throw @p error wrapped in ErrorException. */
[[noreturn]] void throwError(Error error);

/**
 * Value-or-Error, the return type of recoverable operations.
 *
 * Accessing value() on an error (or error() on a success) is a
 * programming bug and panics.
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(Error error) : error_(std::move(error))
    {
        if (error_.code() == ErrorCode::None)
            panic("Result: error with code None");
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    const T &
    value() const &
    {
        requireOk();
        return *value_;
    }

    T &
    value() &
    {
        requireOk();
        return *value_;
    }

    /** Move the value out (use on rvalue results). */
    T &&
    value() &&
    {
        requireOk();
        return std::move(*value_);
    }

    const Error &
    error() const
    {
        if (ok())
            panic("Result: error() on a success");
        return error_;
    }

  private:
    void
    requireOk() const
    {
        if (!ok())
            panic("Result: value() on error: ", error_.str());
    }

    std::optional<T> value_;
    Error error_;
};

/** Success-or-Error for operations without a payload. */
template <>
class [[nodiscard]] Result<void>
{
  public:
    Result() = default;
    Result(Error error) : ok_(false), error_(std::move(error))
    {
        if (error_.code() == ErrorCode::None)
            panic("Result: error with code None");
    }

    bool ok() const { return ok_; }
    explicit operator bool() const { return ok_; }

    const Error &
    error() const
    {
        if (ok_)
            panic("Result: error() on a success");
        return error_;
    }

  private:
    bool ok_ = true;
    Error error_;
};

} // namespace accelwall

#endif // ACCELWALL_UTIL_ERROR_HH
