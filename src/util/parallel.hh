/**
 * @file
 * Deterministic parallelism primitives: a ThreadPool plus
 * parallelFor/parallelMap helpers with static chunking.
 *
 * Design rules, in order of importance:
 *
 *  1. **Determinism.** Work is split into contiguous index chunks that
 *     depend only on (n, jobs), never on scheduling. Each index writes
 *     its own output slot, so parallel results are bit-identical to a
 *     serial run — the sweep/projection callers rely on this.
 *  2. **Serial fallback.** jobs <= 1 runs inline on the caller's thread
 *     with no pool, no locks, and no allocation beyond the output.
 *  3. **Exception safety.** The first exception in chunk order is
 *     rethrown on the caller's thread after all chunks finish; which
 *     exception propagates is therefore also deterministic.
 *
 * The job count is resolved from, in precedence order: an explicit
 * `jobs` argument > setDefaultJobs() (the tools' --jobs flag) > the
 * ACCELWALL_JOBS environment variable > std::thread::hardware_concurrency.
 */

#ifndef ACCELWALL_UTIL_PARALLEL_HH
#define ACCELWALL_UTIL_PARALLEL_HH

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.hh"

namespace accelwall::util
{

/** max(1, std::thread::hardware_concurrency). */
int hardwareJobs();

/**
 * The job count used when callers pass jobs = 0: the setDefaultJobs()
 * override if set, else ACCELWALL_JOBS (ignored unless a positive
 * integer), else hardwareJobs().
 */
int defaultJobs();

/** Set (or with jobs <= 0 clear) the process-wide job-count override. */
void setDefaultJobs(int jobs);

/**
 * A fixed set of worker threads draining a shared FIFO task queue.
 *
 * Tasks must not throw — wrap bodies that can (parallelFor does).
 * Use global() for the shared process pool; standalone instances are
 * mainly for tests.
 */
class ThreadPool
{
  public:
    /** Spawn @p workers threads (workers <= 0 means hardwareJobs()). */
    explicit ThreadPool(int workers = 0);

    /** Drains nothing: outstanding tasks are abandoned unexecuted. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. */
    void post(std::function<void()> task);

    /** Grow the pool to at least @p n workers (never shrinks). */
    void ensureWorkers(int n);

    /** Current worker-thread count. */
    int workers() const;

    /** The shared process-wide pool, created on first use. */
    static ThreadPool &global();

  private:
    void workerLoop();

    mutable Mutex mu_;
    ConditionVariable cv_;
    std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
    std::vector<std::thread> threads_ GUARDED_BY(mu_);
    bool stop_ GUARDED_BY(mu_) = false;
};

namespace detail
{

/**
 * Split [0, n) into at most @p jobs contiguous chunks and run
 * @p chunk(begin, end) for each on the global pool; the caller's
 * thread executes the first chunk. Rethrows the first (in chunk
 * order) captured exception.
 */
void runChunked(std::size_t n, int jobs,
                const std::function<void(std::size_t, std::size_t)> &chunk);

} // namespace detail

/**
 * Call body(i) for every i in [0, n), split across @p jobs threads
 * with static chunking (jobs = 0 means defaultJobs()).
 *
 * body must be safe to call concurrently for distinct indices; writes
 * to index-disjoint data need no synchronization.
 */
template <typename Body>
void
parallelFor(std::size_t n, const Body &body, int jobs = 0)
{
    if (n == 0)
        return;
    if (jobs == 0)
        jobs = defaultJobs();
    if (jobs <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    detail::runChunked(n, jobs,
                       [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i)
                               body(i);
                       });
}

/**
 * Map fn over items with parallelFor; result i lands at output index
 * i, so ordering matches the input regardless of jobs. The result type
 * must be default-constructible and movable.
 */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &items, const Fn &fn, int jobs = 0)
    -> std::vector<decltype(fn(items[0]))>
{
    std::vector<decltype(fn(items[0]))> out(items.size());
    parallelFor(
        items.size(), [&](std::size_t i) { out[i] = fn(items[i]); },
        jobs);
    return out;
}

} // namespace accelwall::util

#endif // ACCELWALL_UTIL_PARALLEL_HH
