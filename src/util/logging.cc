#include "util/logging.hh"

#include <cstdlib>
#include <iostream>

#include "util/thread_annotations.hh"

namespace accelwall
{
namespace detail
{

namespace
{

/**
 * Serializes whole log lines: ThreadPool workers report progress and
 * chain failures during sweeps, and without this their messages
 * interleave mid-line.
 */
util::Mutex log_mu;

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info: ";
      case LogLevel::Warn: return "warn: ";
      case LogLevel::Fatal: return "fatal: ";
      case LogLevel::Panic: return "panic: ";
    }
    return "?: ";
}

/** Write one log line; REQUIRES makes a lockless call a Clang error. */
void
emitLine(std::ostream &os, LogLevel level, const std::string &msg)
    REQUIRES(log_mu)
{
    os << prefix(level) << msg << '\n';
}

} // namespace

void
log(LogLevel level, const std::string &msg)
{
    std::ostream &os =
        (level == LogLevel::Inform) ? std::cout : std::cerr;
    util::MutexLock lock(log_mu);
    emitLine(os, level, msg);
}

void
logAndDie(LogLevel level, const std::string &msg)
{
    {
        util::MutexLock lock(log_mu);
        emitLine(std::cerr, level, msg);
        // srccheck:allow(S006): the process is about to die; flushing
        // the last line under the lock is the point of this path.
        std::cerr.flush();
    }
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail
} // namespace accelwall
