#include "util/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace accelwall
{
namespace detail
{

namespace
{

/**
 * Serializes whole log lines: ThreadPool workers report progress and
 * chain failures during sweeps, and without this their messages
 * interleave mid-line.
 */
std::mutex log_mu;

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info: ";
      case LogLevel::Warn: return "warn: ";
      case LogLevel::Fatal: return "fatal: ";
      case LogLevel::Panic: return "panic: ";
    }
    return "?: ";
}

} // namespace

void
log(LogLevel level, const std::string &msg)
{
    std::ostream &os =
        (level == LogLevel::Inform) ? std::cout : std::cerr;
    std::lock_guard<std::mutex> lock(log_mu);
    os << prefix(level) << msg << '\n';
}

void
logAndDie(LogLevel level, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(log_mu);
        std::cerr << prefix(level) << msg << std::endl;
    }
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail
} // namespace accelwall
