/**
 * @file
 * Source-consistency rules (the `source` lint domain, S001..S010):
 * whole-repo static analysis of the invariants earlier PRs established
 * by convention — stable error codes, named fault sites, determinism
 * of the sweep hot paths, and lock discipline.
 *
 *  | rule | name                   | invariant                               |
 *  |------|------------------------|-----------------------------------------|
 *  | S001 | error-code-registry    | ErrorCode defined once, unique values,  |
 *  |      |                        | every code labeled in error.cc          |
 *  | S002 | error-code-raised      | every code raised in src/; serve codes  |
 *  |      |                        | explicit in the code→HTTP mapping       |
 *  | S003 | error-code-reference   | Exxxx cited in tests/docs must exist    |
 *  | S004 | fault-site-consistency | faultinject sites registered and        |
 *  |      |                        | exercised by a test                     |
 *  | S005 | determinism-hygiene    | no clocks/rand in the sweep hot paths   |
 *  | S006 | lock-discipline        | no blocking calls under a MutexLock     |
 *  | S007 | discard-audit          | no (void)-discards of checked returns   |
 *  | S008 | units-escape-hatch     | no dimensional bare-double parameters   |
 *  | S009 | include-hygiene        | project headers quoted, own header first|
 *  | S010 | fatal-path-audit       | no fatal()/abort() in serve handlers    |
 *
 * The rules are lexical heuristics over srccheck::Corpus, not a
 * compiler: what each rule can and cannot promise — and the inline
 * `srccheck:allow(Sxxx)` escape hatch for the deliberate exceptions —
 * is documented in DESIGN.md §10. The diagnostic machinery mirrors
 * dfg::verify and modelcheck so accelwall-lint renders all three
 * domains identically.
 */

#ifndef ACCELWALL_SRCCHECK_CHECK_HH
#define ACCELWALL_SRCCHECK_CHECK_HH

#include <cstddef>
#include <string>
#include <vector>

#include "srccheck/scan.hh"

namespace accelwall::srccheck
{

/** Identity of one source-consistency rule. */
enum class RuleId
{
    ErrorCodeRegistry,    ///< S001
    ErrorCodeRaised,      ///< S002
    ErrorCodeReference,   ///< S003
    FaultSiteConsistency, ///< S004
    DeterminismHygiene,   ///< S005
    LockDiscipline,       ///< S006
    DiscardAudit,         ///< S007
    UnitsEscapeHatch,     ///< S008
    IncludeHygiene,       ///< S009
    FatalPathAudit,       ///< S010
};

/** Total number of RuleId values (for dense per-rule tables). */
inline constexpr int kNumRules =
    static_cast<int>(RuleId::FatalPathAudit) + 1;

/** Diagnostic severity; only Error fails the check. */
enum class Severity
{
    Note,
    Warning,
    Error,
};

/** Stable short code, e.g. "S005". */
const char *ruleCode(RuleId rule);

/** Kebab-case rule name, e.g. "determinism-hygiene". */
const char *ruleName(RuleId rule);

/** Lower-case severity name, e.g. "error". */
const char *severityName(Severity severity);

/** The built-in severity a rule fires at. */
Severity defaultSeverity(RuleId rule);

/** One rule violation, locatable to a file and usually a line. */
struct Diagnostic
{
    RuleId rule = RuleId::ErrorCodeRegistry;
    Severity severity = Severity::Error;
    /** Root-relative file the finding is in (may be a doc file). */
    std::string file;
    /** 1-based line, or 0 for whole-file/cross-file findings. */
    std::size_t line = 0;
    /** Human-readable explanation with concrete names. */
    std::string message;

    /** "src/x.cc:12: error S005 determinism-hygiene ...". */
    std::string str() const;
};

/** Knobs for one scan. */
struct Options
{
    /** Escalate Warning diagnostics to Error. */
    bool warnings_as_errors = false;
    /** Keep at most this many diagnostics; the rest are counted. */
    std::size_t max_diagnostics = 256;
};

/** Outcome of one scan. */
struct Report
{
    std::vector<Diagnostic> diagnostics;
    std::size_t num_errors = 0;
    std::size_t num_warnings = 0;
    std::size_t num_notes = 0;
    /** Diagnostics dropped beyond Options::max_diagnostics. */
    std::size_t suppressed = 0;

    /** True when no Error-severity diagnostics fired. */
    bool ok() const { return num_errors == 0; }

    /** True when a rule with this id fired (at any severity). */
    bool fired(RuleId rule) const;

    /** "3 errors, 1 warning, 0 notes". */
    std::string summary() const;
};

/** Run every S rule against @p corpus. */
Report check(const Corpus &corpus, const Options &options = {});

} // namespace accelwall::srccheck

#endif // ACCELWALL_SRCCHECK_CHECK_HH
