/**
 * @file
 * A lightweight C++ tokenizer for the source-consistency lint domain
 * (src/srccheck, rules S001..S010).
 *
 * This is deliberately *not* a C++ parser: the S rules match token
 * shapes (an identifier followed by `(`, a string literal in an
 * initializer list, `ErrorCode :: Name`), so a flat token stream with
 * line/column positions is enough. The tokenizer understands exactly
 * the lexical features those matches need to be reliable:
 *
 *  - `//` and C-style comments (captured separately, so suppression
 *    markers can be read without polluting the code stream),
 *  - string/char literals with escapes and raw strings R"delim(...)",
 *  - preprocessor directives (captured whole, with continuations, so
 *    `#include` analysis sees them and brace matching never does),
 *  - identifiers, numbers, and single-character punctuation.
 *
 * Anything beyond that — templates, overload resolution, type
 * checking — is out of scope by design; see DESIGN.md §10 for the
 * boundary between what the S rules can and cannot promise.
 */

#ifndef ACCELWALL_SRCCHECK_TOKEN_HH
#define ACCELWALL_SRCCHECK_TOKEN_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace accelwall::srccheck
{

/** Lexical class of one token. */
enum class TokKind
{
    Identifier, ///< [A-Za-z_][A-Za-z0-9_]*
    Number,     ///< integer/float literal (incl. hex), single token
    String,     ///< "..." or R"(...)"; text is the *decoded* contents
    Char,       ///< '...'; text is the raw spelling without quotes
    Punct,      ///< one punctuation character ("{", ":", "(", ...)
};

/** One code token with its 1-based source position. */
struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    std::size_t line = 1;
    std::size_t col = 1;

    bool isIdent(std::string_view s) const
    {
        return kind == TokKind::Identifier && text == s;
    }
    bool isPunct(char c) const
    {
        return kind == TokKind::Punct && text.size() == 1 && text[0] == c;
    }
};

/** One comment, kept out of the code stream. */
struct Comment
{
    std::string text; ///< contents without the //, /* */ markers
    std::size_t line = 1;
};

/** One preprocessor directive, captured as a whole logical line. */
struct Directive
{
    std::string text; ///< full text after '#', continuations joined
    std::size_t line = 1;
};

/** The complete lexical decomposition of one translation unit. */
struct TokenStream
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
    std::vector<Directive> directives;
    /** Total number of lines in the input. */
    std::size_t lines = 0;
};

/**
 * Tokenize C++ source text. Never fails: unrecognized bytes become
 * single-character Punct tokens, and an unterminated literal runs to
 * end of input — for a linter, degrading gracefully on weird input
 * beats refusing to scan the file containing it.
 */
TokenStream tokenize(std::string_view text);

} // namespace accelwall::srccheck

#endif // ACCELWALL_SRCCHECK_TOKEN_HH
