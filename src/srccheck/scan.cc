#include "srccheck/scan.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace accelwall::srccheck
{

namespace fs = std::filesystem;

namespace
{

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
hasPrefix(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

/** Should this root-relative path be scanned at all, and tokenized? */
bool
wantFile(const std::string &rel, bool *tokenized)
{
    *tokenized = false;
    if (rel == "README.md" || rel == "DESIGN.md" ||
        rel == "CMakeLists.txt")
        return true;
    // The seeded-broken lint fixtures are corpora of their own.
    if (hasPrefix(rel, "tests/lint/"))
        return false;
    if (hasPrefix(rel, "src/") || hasPrefix(rel, "tools/")) {
        if (hasSuffix(rel, ".hh") || hasSuffix(rel, ".cc")) {
            *tokenized = true;
            return true;
        }
        return hasSuffix(rel, ".sh") || hasSuffix(rel, ".cmake") ||
               hasSuffix(rel, "CMakeLists.txt");
    }
    if (hasPrefix(rel, "tests/")) {
        if (hasSuffix(rel, ".cc") || hasSuffix(rel, ".hh")) {
            *tokenized = true;
            return true;
        }
        return hasSuffix(rel, ".sh") || hasSuffix(rel, ".cmake") ||
               hasSuffix(rel, ".txt");
    }
    return false;
}

/** Parse `include "x"` / `include <x>` out of one directive. */
void
parseInclude(const Directive &dir, std::vector<IncludeDirective> *out)
{
    std::size_t i = 0;
    while (i < dir.text.size() &&
           (dir.text[i] == ' ' || dir.text[i] == '\t'))
        ++i;
    if (dir.text.compare(i, 7, "include") != 0)
        return;
    i += 7;
    while (i < dir.text.size() &&
           (dir.text[i] == ' ' || dir.text[i] == '\t'))
        ++i;
    if (i >= dir.text.size())
        return;
    char open = dir.text[i];
    char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
    if (close == '\0')
        return;
    std::size_t end = dir.text.find(close, i + 1);
    if (end == std::string::npos)
        return;
    IncludeDirective inc;
    inc.path = dir.text.substr(i + 1, end - i - 1);
    inc.angle = open == '<';
    inc.line = dir.line;
    out->push_back(std::move(inc));
}

/** Parse the rule list of a `srccheck:allow(S006[,S007...])` marker. */
std::set<std::string>
parseAllowRules(const std::string &text)
{
    std::set<std::string> rules;
    const std::string kMarker = "srccheck:allow(";
    std::size_t at = text.find(kMarker);
    if (at == std::string::npos)
        return rules;
    std::size_t open = at + kMarker.size() - 1;
    std::size_t close = text.find(')', open);
    if (close == std::string::npos)
        return rules;
    std::string list = text.substr(open + 1, close - open - 1);
    std::istringstream iss(list);
    std::string rule;
    while (std::getline(iss, rule, ',')) {
        std::size_t b = rule.find_first_not_of(" \t");
        std::size_t e = rule.find_last_not_of(" \t");
        if (b == std::string::npos)
            continue;
        rules.insert(rule.substr(b, e - b + 1));
    }
    return rules;
}

/**
 * Resolve `srccheck:allow(...)` markers into per-line disarm sets. A
 * marker covers its own line, every following line that is still part
 * of the justification comment block, and the first code line after
 * the block — so multi-line reasons (required by the allowlist
 * policy) still reach the statement they justify. A same-line trailer
 * marker covers its own statement directly.
 */
void
resolveAllows(const TokenStream &stream,
              std::map<std::size_t, std::set<std::string>> *allows)
{
    std::set<std::size_t> comment_lines;
    for (const Comment &com : stream.comments)
        comment_lines.insert(com.line);
    for (const Comment &com : stream.comments) {
        std::set<std::string> rules = parseAllowRules(com.text);
        if (rules.empty())
            continue;
        std::size_t line = com.line;
        (*allows)[line].insert(rules.begin(), rules.end());
        while (comment_lines.count(line + 1)) {
            ++line;
            (*allows)[line].insert(rules.begin(), rules.end());
        }
        (*allows)[line + 1].insert(rules.begin(), rules.end());
    }
}

/**
 * Raw (non-tokenized) files — docs, shell, cmake — get a line-based
 * variant of the same suppression grammar: a `srccheck:allow(...)`
 * marker anywhere on a line disarms those rules on that line and the
 * line directly below it. There is no comment-block notion in raw
 * text, so multi-line reasons must keep the marker on the last line.
 */
void
resolveRawAllows(const std::string &text,
                 std::map<std::size_t, std::set<std::string>> *allows)
{
    std::size_t line = 1;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t eol = text.find('\n', pos);
        std::size_t len =
            (eol == std::string::npos ? text.size() : eol) - pos;
        std::string one = text.substr(pos, len);
        if (one.find("srccheck:allow(") != std::string::npos) {
            std::set<std::string> rules = parseAllowRules(one);
            (*allows)[line].insert(rules.begin(), rules.end());
            (*allows)[line + 1].insert(rules.begin(), rules.end());
        }
        if (eol == std::string::npos)
            break;
        pos = eol + 1;
        ++line;
    }
}

} // namespace

const SourceFile *
Corpus::find(const std::string &path) const
{
    for (const SourceFile &f : files) {
        if (f.path == path)
            return &f;
    }
    return nullptr;
}

std::size_t
Corpus::totalLines() const
{
    std::size_t n = 0;
    for (const SourceFile &f : files) {
        if (f.tokenized)
            n += f.stream.lines;
    }
    return n;
}

SourceFile
makeSourceFile(std::string path, std::string text)
{
    SourceFile f;
    f.path = std::move(path);
    f.text = std::move(text);
    bool tokenized = hasSuffix(f.path, ".hh") || hasSuffix(f.path, ".cc");
    if (tokenized) {
        f.tokenized = true;
        f.stream = tokenize(f.text);
        for (const Directive &dir : f.stream.directives)
            parseInclude(dir, &f.includes);
        resolveAllows(f.stream, &f.allows);
    } else {
        resolveRawAllows(f.text, &f.allows);
    }
    return f;
}

Result<Corpus>
loadCorpus(const std::string &root)
{
    std::error_code ec;
    fs::path base(root);
    if (!fs::is_directory(base, ec)) {
        return makeError(ErrorCode::SrcScanIo, "source root '", root,
                         "' is not a directory");
    }

    // Collect candidate paths first so the scan order (and therefore
    // every diagnostic sequence) is sorted, not directory-iteration
    // order.
    std::vector<std::string> rels;
    for (const char *top : { "src", "tools", "tests" }) {
        fs::path dir = base / top;
        if (!fs::is_directory(dir, ec))
            continue;
        for (fs::recursive_directory_iterator
                 it(dir, fs::directory_options::skip_permission_denied,
                    ec),
             end;
             it != end; it.increment(ec)) {
            if (ec)
                break;
            if (!it->is_regular_file(ec))
                continue;
            std::string rel =
                fs::relative(it->path(), base, ec).generic_string();
            if (!ec)
                rels.push_back(std::move(rel));
        }
    }
    for (const char *doc : { "README.md", "DESIGN.md", "CMakeLists.txt" }) {
        if (fs::is_regular_file(base / doc, ec))
            rels.emplace_back(doc);
    }
    std::sort(rels.begin(), rels.end());

    Corpus corpus;
    corpus.root = root;
    for (const std::string &rel : rels) {
        bool tokenized = false;
        if (!wantFile(rel, &tokenized))
            continue;
        std::ifstream in(base / rel, std::ios::binary);
        if (!in)
            continue; // racing deletions are not the lint's business
        std::ostringstream text;
        text << in.rdbuf();
        corpus.files.push_back(makeSourceFile(rel, text.str()));
    }
    if (corpus.files.empty()) {
        return makeError(ErrorCode::SrcScanIo, "source root '", root,
                         "' contains nothing to scan");
    }
    return corpus;
}

} // namespace accelwall::srccheck
