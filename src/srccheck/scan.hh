/**
 * @file
 * Corpus loading for the source-consistency lint domain: walk a repo
 * checkout, tokenize its C++ sources, and collect the raw text the
 * cross-file S rules match against (tests, shell/cmake harnesses,
 * README/DESIGN).
 *
 * Layout conventions baked in (matching this repository):
 *
 *  - C++ sources live under src/ and tools/ (.hh/.cc) and are fully
 *    tokenized;
 *  - tests/ holds .cc plus .sh/.cmake harness files, scanned as raw
 *    text (rules only substring-match into them);
 *  - build scripts (the top-level CMakeLists.txt plus CMakeLists.txt
 *    and .cmake files under src/ and tools/) are raw text, so the
 *    iface rules can diff ctest labels and gate stages;
 *  - README.md and DESIGN.md are the documentation surface whose
 *    Exxxx references rule S003 validates and whose interface tables
 *    the I rules diff against code;
 *  - tests/lint/ is skipped: it holds the seeded-broken fixture
 *    corpora, which are linted as their own roots, never as part of
 *    the enclosing repo.
 *
 * Suppressions: a comment containing `srccheck:allow(S006)` (or a
 * comma list, `srccheck:allow(S006,I004)`) disarms those rules on the
 * comment's line and the line directly below it, so both trailing and
 * preceding-line comment styles work. Raw files get the same grammar
 * line-based: a marker anywhere on a line covers that line and the
 * next. Every suppression is expected to carry a reason in the same
 * comment; see DESIGN.md §10 and §12.
 */

#ifndef ACCELWALL_SRCCHECK_SCAN_HH
#define ACCELWALL_SRCCHECK_SCAN_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "srccheck/token.hh"
#include "util/error.hh"

namespace accelwall::srccheck
{

/** One `#include` directive in lexical order. */
struct IncludeDirective
{
    std::string path; ///< text between the delimiters
    bool angle = false;
    std::size_t line = 1;
};

/** One scanned file: raw text always, token stream for C++ sources. */
struct SourceFile
{
    /** Root-relative path with '/' separators, e.g. "src/util/csv.cc". */
    std::string path;
    std::string text;
    /** Tokenized for .hh/.cc under src/ and tools/; empty otherwise. */
    TokenStream stream;
    std::vector<IncludeDirective> includes;
    /** line -> rule codes ("S006") suppressed on that line. */
    std::map<std::size_t, std::set<std::string>> allows;
    /** True when the file was tokenized (stream is meaningful). */
    bool tokenized = false;

    bool
    allowed(const std::string &rule_code, std::size_t line) const
    {
        auto it = allows.find(line);
        return it != allows.end() && it->second.count(rule_code) > 0;
    }
};

/** A loaded checkout, ready for the S rules. */
struct Corpus
{
    /** The root the paths are relative to (display only). */
    std::string root;
    std::vector<SourceFile> files;

    /** The file at @p path, or nullptr. */
    const SourceFile *find(const std::string &path) const;

    /** Total line count over tokenized files. */
    std::size_t totalLines() const;
};

/**
 * Build one SourceFile from in-memory text, applying the same
 * tokenize/include/suppression pipeline loadCorpus() uses. Exposed so
 * unit tests can assemble synthetic corpora without a filesystem.
 */
SourceFile makeSourceFile(std::string path, std::string text);

/**
 * Load every relevant file under @p root (see the file comment for
 * what is scanned). Fails only when the root is unusable — a missing
 * or unreadable individual file is skipped, and files the conventions
 * do not cover are never opened. The file list is sorted by path so a
 * run's diagnostics are deterministic across platforms.
 */
Result<Corpus> loadCorpus(const std::string &root);

} // namespace accelwall::srccheck

#endif // ACCELWALL_SRCCHECK_SCAN_HH
