/**
 * @file
 * Shared plumbing between the two rule translation units
 * (check.cc: S001..S004 registry consistency; hygiene.cc:
 * S005..S010 per-file hygiene). Not part of the public srccheck API.
 */

#ifndef ACCELWALL_SRCCHECK_INTERNAL_HH
#define ACCELWALL_SRCCHECK_INTERNAL_HH

#include <string>

#include "srccheck/check.hh"

namespace accelwall::srccheck::internal
{

/** Collects diagnostics with suppression + cap handling. */
class Sink
{
  public:
    Sink(const Corpus &corpus, const Options &options, Report *report)
        : corpus_(corpus), options_(options), report_(report)
    {
    }

    /**
     * Record one finding at @p file:@p line unless an inline
     * `srccheck:allow(<rule>)` marker disarms it there.
     */
    void add(RuleId rule, const std::string &file, std::size_t line,
             std::string message);

  private:
    const Corpus &corpus_;
    const Options &options_;
    Report *report_;
};

bool hasPrefix(const std::string &s, const std::string &prefix);
bool hasSuffix(const std::string &s, const std::string &suffix);

/** Rules S001..S004: cross-file registry consistency. */
void checkRegistries(const Corpus &corpus, Sink &sink);

/** Rules S005..S010: per-file hygiene scans. */
void checkHygiene(const Corpus &corpus, Sink &sink);

} // namespace accelwall::srccheck::internal

#endif // ACCELWALL_SRCCHECK_INTERNAL_HH
