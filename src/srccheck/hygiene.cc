/**
 * @file
 * Per-file hygiene rules of the source lint domain (S005..S010):
 * determinism of the sweep hot paths, lock discipline, discard and
 * units escape-hatch audits, include hygiene, and the serve
 * fatal-path audit. Cross-file registry rules live in check.cc.
 */

#include <set>
#include <sstream>

#include "srccheck/internal.hh"

namespace accelwall::srccheck::internal
{

namespace
{

/** Directories whose evaluation must be bit-reproducible (S005). */
bool
isHotPath(const std::string &path)
{
    return hasPrefix(path, "src/aladdin/") ||
           hasPrefix(path, "src/dfg/") ||
           hasPrefix(path, "src/dfgopt/") ||
           hasPrefix(path, "src/csr/") ||
           hasPrefix(path, "src/projection/");
}

/**
 * S005: no wall clocks or ambient randomness in the hot paths. The
 * sweep engines promise bit-identical output across runs, thread
 * counts, and resume (DESIGN §9); one time() or rand() breaks every
 * golden and differential test downstream.
 */
void
checkDeterminism(const Corpus &corpus, Sink &sink)
{
    static const char *kBanned[] = {
        "rand",          "srand",        "rand_r",
        "random",        "drand48",      "random_device",
        "time",          "clock",        "gettimeofday",
        "clock_gettime", "timespec_get", "system_clock",
        "steady_clock",  "high_resolution_clock",
    };
    for (const SourceFile &f : corpus.files) {
        if (!f.tokenized || !isHotPath(f.path))
            continue;
        const std::vector<Token> &toks = f.stream.tokens;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Token &tok = toks[i];
            if (tok.kind != TokKind::Identifier)
                continue;
            // Member access is someone's field named `time`, not the
            // libc call: `b.time` / `res->time` are fine, `std::time`
            // is not (a lone ':' prefix stays flagged).
            if (i > 0 && (toks[i - 1].isPunct('.') ||
                          (toks[i - 1].isPunct('>') && i > 1 &&
                           toks[i - 2].isPunct('-'))))
                continue;
            for (const char *name : kBanned) {
                if (tok.text != name)
                    continue;
                sink.add(RuleId::DeterminismHygiene, f.path, tok.line,
                         "'" + tok.text +
                             "' in a hot path; sweep evaluation must "
                             "be bit-reproducible");
            }
        }
    }
}

/**
 * S006: no blocking calls in a lexical scope holding a MutexLock.
 * Heuristic: from each `MutexLock name(...)` declaration to the end
 * of its enclosing brace scope, flag identifiers naming sleeps,
 * socket waits, or file I/O. ConditionVariable waits are fine (they
 * release the lock); calls made *by* functions invoked under the
 * lock are invisible to a lexical scan — see DESIGN §10.
 */
void
checkLockDiscipline(const Corpus &corpus, Sink &sink)
{
    static const char *kBlocking[] = {
        "sleep",    "usleep",     "nanosleep", "sleep_for",
        "sleep_until", "poll",    "select",    "epoll_wait",
        "accept",   "connect",    "sendAll",   "recvSome",
        "fopen",    "fread",      "fwrite",    "ifstream",
        "ofstream", "fstream",    "getline",   "flush",
    };
    for (const SourceFile &f : corpus.files) {
        if (!f.tokenized || !hasPrefix(f.path, "src/"))
            continue;
        const std::vector<Token> &toks = f.stream.tokens;
        // Track brace depth; remember the depth each live lock was
        // declared at (locks die when the scope above them closes).
        std::vector<int> lock_depths;
        int depth = 0;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Token &tok = toks[i];
            if (tok.isPunct('{')) {
                ++depth;
                continue;
            }
            if (tok.isPunct('}')) {
                --depth;
                while (!lock_depths.empty() &&
                       lock_depths.back() > depth)
                    lock_depths.pop_back();
                continue;
            }
            if (tok.isIdent("MutexLock") && i + 2 < toks.size() &&
                toks[i + 1].kind == TokKind::Identifier &&
                toks[i + 2].isPunct('(')) {
                lock_depths.push_back(depth);
                continue;
            }
            if (lock_depths.empty() ||
                tok.kind != TokKind::Identifier)
                continue;
            for (const char *name : kBlocking) {
                if (tok.text != name)
                    continue;
                sink.add(RuleId::LockDiscipline, f.path, tok.line,
                         "'" + tok.text +
                             "' while holding a MutexLock; blocking "
                             "under a lock stalls every waiter");
            }
        }
    }
}

/**
 * S007: `(void)` discards. Result<T> is [[nodiscard]] for a reason —
 * a cast-to-void silences the very check PR 3 added. `(void)0` (the
 * no-op macro idiom) is allowed; anything else needs an inline
 * justification.
 */
void
checkDiscards(const Corpus &corpus, Sink &sink)
{
    for (const SourceFile &f : corpus.files) {
        if (!f.tokenized || (!hasPrefix(f.path, "src/") &&
                             !hasPrefix(f.path, "tools/")))
            continue;
        const std::vector<Token> &toks = f.stream.tokens;
        for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
            if (!(toks[i].isPunct('(') && toks[i + 1].isIdent("void") &&
                  toks[i + 2].isPunct(')')))
                continue;
            const Token &next = toks[i + 3];
            if (next.kind == TokKind::Number && next.text == "0")
                continue;
            sink.add(RuleId::DiscardAudit, f.path, toks[i].line,
                     "(void)-discard; checked returns (Result, "
                     "Quantity) must be consumed or the discard "
                     "justified inline");
        }
    }
}

/**
 * S008: dimensional bare doubles in model-layer signatures. A
 * parameter spelled `double area_mm2` in cmos/chipdb/potential is a
 * units bug waiting for an argument swap; PR 4's Quantity types exist
 * so the compiler rejects that. Struct members at the ingest boundary
 * are exempt (paren depth zero).
 */
void
checkUnitsEscapes(const Corpus &corpus, Sink &sink)
{
    static const char *kSuffixes[] = {
        "_nm", "_mm2", "_um2", "_mhz", "_ghz", "_w",
        "_v",  "_nj",  "_pj",  "_ns",  "_tx",
    };
    for (const SourceFile &f : corpus.files) {
        bool in_scope = hasPrefix(f.path, "src/cmos/") ||
                        hasPrefix(f.path, "src/chipdb/") ||
                        hasPrefix(f.path, "src/potential/");
        if (!f.tokenized || !in_scope || !hasSuffix(f.path, ".hh"))
            continue;
        const std::vector<Token> &toks = f.stream.tokens;
        int parens = 0;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].isPunct('('))
                ++parens;
            else if (toks[i].isPunct(')'))
                --parens;
            if (parens <= 0 || !toks[i].isIdent("double"))
                continue;
            if (i + 1 >= toks.size() ||
                toks[i + 1].kind != TokKind::Identifier)
                continue;
            const std::string &name = toks[i + 1].text;
            for (const char *suffix : kSuffixes) {
                if (!hasSuffix(name, suffix))
                    continue;
                sink.add(RuleId::UnitsEscapeHatch, f.path,
                         toks[i + 1].line,
                         "bare `double " + name +
                             "` parameter looks dimensional; take a "
                             "units::Quantity instead");
                break;
            }
        }
    }
}

/**
 * S009: include hygiene. Project headers are included with quotes
 * (angle brackets are reserved for the toolchain), and a .cc file
 * with a same-stem sibling header includes it first — the cheapest
 * continuous proof the header is self-contained.
 */
void
checkIncludes(const Corpus &corpus, Sink &sink)
{
    // Set of all project header paths as written in includes
    // (src/-relative, e.g. "util/error.hh").
    std::set<std::string> project_headers;
    for (const SourceFile &f : corpus.files) {
        if (hasPrefix(f.path, "src/") && hasSuffix(f.path, ".hh"))
            project_headers.insert(f.path.substr(4));
    }

    for (const SourceFile &f : corpus.files) {
        if (!f.tokenized || (!hasPrefix(f.path, "src/") &&
                             !hasPrefix(f.path, "tools/")))
            continue;
        for (const IncludeDirective &inc : f.includes) {
            if (inc.angle && project_headers.count(inc.path) > 0) {
                sink.add(RuleId::IncludeHygiene, f.path, inc.line,
                         "project header <" + inc.path +
                             "> included with angle brackets; use "
                             "quotes");
            }
        }
        if (!hasPrefix(f.path, "src/") || !hasSuffix(f.path, ".cc"))
            continue;
        std::string own = f.path.substr(4);
        own.replace(own.size() - 3, 3, ".hh");
        if (project_headers.count(own) == 0)
            continue; // no same-stem header
        if (f.includes.empty() || f.includes[0].path != own) {
            sink.add(RuleId::IncludeHygiene, f.path,
                     f.includes.empty() ? 0 : f.includes[0].line,
                     "own header \"" + own +
                         "\" must be the first include "
                         "(self-containment order)");
        }
    }
}

/**
 * S010: the serve request path never reaches process-terminating
 * calls. Every request is either answered or converted to an error
 * response; a fatal()/abort() reachable from a handler turns one bad
 * request into an outage.
 */
void
checkFatalPaths(const Corpus &corpus, Sink &sink)
{
    static const char *kTerminators[] = { "fatal", "abort", "exit",
                                          "_Exit", "quick_exit" };
    for (const SourceFile &f : corpus.files) {
        if (!f.tokenized || !hasPrefix(f.path, "src/serve/"))
            continue;
        const std::vector<Token> &toks = f.stream.tokens;
        for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Identifier ||
                !toks[i + 1].isPunct('('))
                continue;
            for (const char *name : kTerminators) {
                if (toks[i].text != name)
                    continue;
                sink.add(RuleId::FatalPathAudit, f.path, toks[i].line,
                         "'" + toks[i].text +
                             "()' in serve/; request handling must "
                             "degrade to an error response, never "
                             "terminate");
            }
        }
    }
}

} // namespace

void
checkHygiene(const Corpus &corpus, Sink &sink)
{
    checkDeterminism(corpus, sink);
    checkLockDiscipline(corpus, sink);
    checkDiscards(corpus, sink);
    checkUnitsEscapes(corpus, sink);
    checkIncludes(corpus, sink);
    checkFatalPaths(corpus, sink);
}

} // namespace accelwall::srccheck::internal
