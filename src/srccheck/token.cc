#include "srccheck/token.hh"

namespace accelwall::srccheck
{

namespace
{

bool
isIdentStart(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool
isIdentChar(char c)
{
    return isIdentStart(c) || (c >= '0' && c <= '9');
}

bool
isDigit(char c)
{
    return c >= '0' && c <= '9';
}

/** Cursor over the input with 1-based line/column tracking. */
class Lexer
{
  public:
    explicit Lexer(std::string_view text) : text_(text) {}

    bool done() const { return pos_ >= text_.size(); }
    char peek(std::size_t ahead = 0) const
    {
        return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
    }
    std::size_t line() const { return line_; }
    std::size_t col() const { return col_; }

    char
    advance()
    {
        char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    /**
     * True when the token about to start sits at the beginning of a
     * line (only whitespace before it) — how '#' is recognized as a
     * directive rather than an operator token.
     */
    bool
    atLineStart() const
    {
        std::size_t i = pos_;
        while (i > 0) {
            char c = text_[i - 1];
            if (c == '\n')
                return true;
            if (c != ' ' && c != '\t' && c != '\r')
                return false;
            --i;
        }
        return true;
    }

  private:
    std::string_view text_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
    std::size_t col_ = 1;
};

} // namespace

TokenStream
tokenize(std::string_view text)
{
    TokenStream out;
    Lexer lx(text);

    while (!lx.done()) {
        char c = lx.peek();

        // Whitespace.
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            lx.advance();
            continue;
        }

        // Line comment.
        if (c == '/' && lx.peek(1) == '/') {
            Comment com;
            com.line = lx.line();
            lx.advance();
            lx.advance();
            while (!lx.done() && lx.peek() != '\n')
                com.text.push_back(lx.advance());
            out.comments.push_back(std::move(com));
            continue;
        }

        // Block comment. Each line of a multi-line comment is recorded
        // separately so line-scoped suppression markers inside doc
        // blocks attach to the right line.
        if (c == '/' && lx.peek(1) == '*') {
            lx.advance();
            lx.advance();
            Comment com;
            com.line = lx.line();
            while (!lx.done()) {
                if (lx.peek() == '*' && lx.peek(1) == '/') {
                    lx.advance();
                    lx.advance();
                    break;
                }
                char ch = lx.advance();
                if (ch == '\n') {
                    out.comments.push_back(com);
                    com = Comment{};
                    com.line = lx.line();
                } else {
                    com.text.push_back(ch);
                }
            }
            out.comments.push_back(std::move(com));
            continue;
        }

        // Preprocessor directive: '#' first on its line, continuations
        // joined. Swallowing the whole logical line keeps conditional
        // compilation from unbalancing the brace matching rules do.
        if (c == '#' && lx.atLineStart()) {
            Directive dir;
            dir.line = lx.line();
            lx.advance();
            while (!lx.done()) {
                char ch = lx.peek();
                if (ch == '\n')
                    break;
                if (ch == '\\' && lx.peek(1) == '\n') {
                    lx.advance();
                    lx.advance();
                    dir.text.push_back(' ');
                    continue;
                }
                // A // comment ends the directive text.
                if (ch == '/' && lx.peek(1) == '/')
                    break;
                dir.text.push_back(lx.advance());
            }
            out.directives.push_back(std::move(dir));
            continue;
        }

        // Raw string literal, optionally behind an encoding prefix the
        // identifier path would otherwise swallow (u8R"...", LR"...").
        bool raw = false;
        std::size_t raw_prefix = 0;
        if (c == 'R' && lx.peek(1) == '"') {
            raw = true;
            raw_prefix = 1;
        } else if ((c == 'u' || c == 'U' || c == 'L')) {
            std::size_t i = 1;
            if (c == 'u' && lx.peek(1) == '8')
                i = 2;
            if (lx.peek(i) == 'R' && lx.peek(i + 1) == '"') {
                raw = true;
                raw_prefix = i + 1;
            }
        }
        if (raw) {
            Token tok;
            tok.kind = TokKind::String;
            tok.line = lx.line();
            tok.col = lx.col();
            for (std::size_t i = 0; i <= raw_prefix; ++i)
                lx.advance(); // prefix + opening quote
            std::string delim;
            while (!lx.done() && lx.peek() != '(')
                delim.push_back(lx.advance());
            if (!lx.done())
                lx.advance(); // '('
            std::string close = ")" + delim + "\"";
            std::string body;
            while (!lx.done()) {
                body.push_back(lx.advance());
                if (body.size() >= close.size() &&
                    body.compare(body.size() - close.size(),
                                 close.size(), close) == 0) {
                    body.resize(body.size() - close.size());
                    break;
                }
            }
            tok.text = std::move(body);
            out.tokens.push_back(std::move(tok));
            continue;
        }

        // String literal (decoded: \" and \\ unescaped, others kept).
        if (c == '"') {
            Token tok;
            tok.kind = TokKind::String;
            tok.line = lx.line();
            tok.col = lx.col();
            lx.advance();
            while (!lx.done()) {
                char ch = lx.advance();
                if (ch == '\\' && !lx.done()) {
                    char esc = lx.advance();
                    if (esc == '"' || esc == '\\') {
                        tok.text.push_back(esc);
                    } else {
                        tok.text.push_back('\\');
                        tok.text.push_back(esc);
                    }
                    continue;
                }
                if (ch == '"' || ch == '\n')
                    break;
                tok.text.push_back(ch);
            }
            out.tokens.push_back(std::move(tok));
            continue;
        }

        // Char literal. Only entered on a real quote start: a lone '
        // after an identifier (digit separators are handled in the
        // number path) cannot reach here.
        if (c == '\'') {
            Token tok;
            tok.kind = TokKind::Char;
            tok.line = lx.line();
            tok.col = lx.col();
            lx.advance();
            while (!lx.done()) {
                char ch = lx.advance();
                if (ch == '\\' && !lx.done()) {
                    tok.text.push_back(ch);
                    tok.text.push_back(lx.advance());
                    continue;
                }
                if (ch == '\'' || ch == '\n')
                    break;
                tok.text.push_back(ch);
            }
            out.tokens.push_back(std::move(tok));
            continue;
        }

        // Identifier / keyword.
        if (isIdentStart(c)) {
            Token tok;
            tok.kind = TokKind::Identifier;
            tok.line = lx.line();
            tok.col = lx.col();
            while (!lx.done() && isIdentChar(lx.peek()))
                tok.text.push_back(lx.advance());
            out.tokens.push_back(std::move(tok));
            continue;
        }

        // Number: digits, dots, hex, exponents, digit separators. The
        // rules never read the value, so one greedy token is enough.
        if (isDigit(c) || (c == '.' && isDigit(lx.peek(1)))) {
            Token tok;
            tok.kind = TokKind::Number;
            tok.line = lx.line();
            tok.col = lx.col();
            while (!lx.done()) {
                char ch = lx.peek();
                if (isIdentChar(ch) || ch == '.' || ch == '\'') {
                    tok.text.push_back(lx.advance());
                    continue;
                }
                if ((ch == '+' || ch == '-') && !tok.text.empty()) {
                    char prev = tok.text.back();
                    if (prev == 'e' || prev == 'E' || prev == 'p' ||
                        prev == 'P') {
                        tok.text.push_back(lx.advance());
                        continue;
                    }
                }
                break;
            }
            out.tokens.push_back(std::move(tok));
            continue;
        }

        // Everything else: one punctuation character per token.
        Token tok;
        tok.kind = TokKind::Punct;
        tok.line = lx.line();
        tok.col = lx.col();
        tok.text.push_back(lx.advance());
        out.tokens.push_back(std::move(tok));
    }

    out.lines = 0;
    for (char ch : text) {
        if (ch == '\n')
            ++out.lines;
    }
    if (!text.empty() && text.back() != '\n')
        ++out.lines; // unterminated final line still counts
    return out;
}

} // namespace accelwall::srccheck
