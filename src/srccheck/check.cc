#include "srccheck/check.hh"

#include <cstdlib>
#include <map>
#include <sstream>

#include "srccheck/internal.hh"

namespace accelwall::srccheck
{

const char *
ruleCode(RuleId rule)
{
    switch (rule) {
      case RuleId::ErrorCodeRegistry: return "S001";
      case RuleId::ErrorCodeRaised: return "S002";
      case RuleId::ErrorCodeReference: return "S003";
      case RuleId::FaultSiteConsistency: return "S004";
      case RuleId::DeterminismHygiene: return "S005";
      case RuleId::LockDiscipline: return "S006";
      case RuleId::DiscardAudit: return "S007";
      case RuleId::UnitsEscapeHatch: return "S008";
      case RuleId::IncludeHygiene: return "S009";
      case RuleId::FatalPathAudit: return "S010";
    }
    return "S???";
}

const char *
ruleName(RuleId rule)
{
    switch (rule) {
      case RuleId::ErrorCodeRegistry: return "error-code-registry";
      case RuleId::ErrorCodeRaised: return "error-code-raised";
      case RuleId::ErrorCodeReference: return "error-code-reference";
      case RuleId::FaultSiteConsistency: return "fault-site-consistency";
      case RuleId::DeterminismHygiene: return "determinism-hygiene";
      case RuleId::LockDiscipline: return "lock-discipline";
      case RuleId::DiscardAudit: return "discard-audit";
      case RuleId::UnitsEscapeHatch: return "units-escape-hatch";
      case RuleId::IncludeHygiene: return "include-hygiene";
      case RuleId::FatalPathAudit: return "fatal-path-audit";
    }
    return "unknown";
}

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "unknown";
}

Severity
defaultSeverity(RuleId rule)
{
    switch (rule) {
      // The two most heuristic rules default to Warning; everything
      // else is a hard consistency break. --strict escalates.
      case RuleId::LockDiscipline:
      case RuleId::UnitsEscapeHatch:
        return Severity::Warning;
      default:
        return Severity::Error;
    }
}

std::string
Diagnostic::str() const
{
    std::ostringstream oss;
    oss << file;
    if (line > 0)
        oss << ':' << line;
    oss << ": " << severityName(severity) << ' ' << ruleCode(rule) << ' '
        << ruleName(rule) << ": " << message;
    return oss.str();
}

bool
Report::fired(RuleId rule) const
{
    for (const Diagnostic &d : diagnostics) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

std::string
Report::summary() const
{
    std::ostringstream oss;
    oss << num_errors << (num_errors == 1 ? " error, " : " errors, ")
        << num_warnings
        << (num_warnings == 1 ? " warning, " : " warnings, ")
        << num_notes << (num_notes == 1 ? " note" : " notes");
    if (suppressed > 0)
        oss << " (+" << suppressed << " capped)";
    return oss.str();
}

namespace internal
{

bool
hasPrefix(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void
Sink::add(RuleId rule, const std::string &file, std::size_t line,
          std::string message)
{
    if (line > 0) {
        const SourceFile *sf = corpus_.find(file);
        if (sf != nullptr && sf->allowed(ruleCode(rule), line))
            return;
    }
    Severity sev = defaultSeverity(rule);
    if (sev == Severity::Warning && options_.warnings_as_errors)
        sev = Severity::Error;
    switch (sev) {
      case Severity::Error: ++report_->num_errors; break;
      case Severity::Warning: ++report_->num_warnings; break;
      case Severity::Note: ++report_->num_notes; break;
    }
    if (report_->diagnostics.size() >= options_.max_diagnostics) {
        ++report_->suppressed;
        return;
    }
    Diagnostic d;
    d.rule = rule;
    d.severity = sev;
    d.file = file;
    d.line = line;
    d.message = std::move(message);
    report_->diagnostics.push_back(std::move(d));
}

namespace
{

/** Where the cross-file rules expect their anchors, by convention. */
constexpr const char *kErrorHeader = "src/util/error.hh";
constexpr const char *kErrorImpl = "src/util/error.cc";
constexpr const char *kFaultHeader = "src/util/faultinject.hh";
constexpr const char *kServeImpl = "src/serve/service.cc";

/** One parsed ErrorCode enumerator. */
struct CodeEntry
{
    std::string name;
    long value = 0;
    std::size_t line = 0;
};

/**
 * Parse the `enum class ErrorCode` enumerators out of @p file.
 * Returns false when no definition was found.
 */
bool
parseErrorEnum(const SourceFile &file, std::vector<CodeEntry> *out,
               std::size_t *definitions)
{
    const std::vector<Token> &toks = file.stream.tokens;
    *definitions = 0;
    bool found = false;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (!(toks[i].isIdent("enum") && toks[i + 1].isIdent("class") &&
              toks[i + 2].isIdent("ErrorCode")))
            continue;
        // Skip an optional underlying type to the opening brace.
        std::size_t j = i + 3;
        while (j < toks.size() && !toks[j].isPunct('{') &&
               !toks[j].isPunct(';'))
            ++j;
        if (j >= toks.size() || !toks[j].isPunct('{'))
            continue; // forward declaration
        ++*definitions;
        if (found)
            continue; // only the first definition is parsed
        found = true;
        long next_value = 0;
        ++j;
        while (j < toks.size() && !toks[j].isPunct('}')) {
            if (toks[j].kind != TokKind::Identifier) {
                ++j;
                continue;
            }
            CodeEntry entry;
            entry.name = toks[j].text;
            entry.line = toks[j].line;
            if (j + 2 < toks.size() && toks[j + 1].isPunct('=') &&
                toks[j + 2].kind == TokKind::Number) {
                entry.value = std::strtol(toks[j + 2].text.c_str(),
                                          nullptr, 0);
                j += 3;
            } else {
                entry.value = next_value;
                ++j;
            }
            next_value = entry.value + 1;
            out->push_back(std::move(entry));
            // Skip to the comma (or closing brace).
            while (j < toks.size() && !toks[j].isPunct(',') &&
                   !toks[j].isPunct('}'))
                ++j;
            if (j < toks.size() && toks[j].isPunct(','))
                ++j;
        }
    }
    return found;
}

/** All `ErrorCode::X` mentions in @p file, with their lines. */
std::vector<std::pair<std::string, std::size_t>>
errorCodeMentions(const SourceFile &file)
{
    std::vector<std::pair<std::string, std::size_t>> out;
    const std::vector<Token> &toks = file.stream.tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (toks[i].isIdent("ErrorCode") && toks[i + 1].isPunct(':') &&
            toks[i + 2].isPunct(':') &&
            toks[i + 3].kind == TokKind::Identifier)
            out.emplace_back(toks[i + 3].text, toks[i + 3].line);
    }
    return out;
}

/**
 * `ErrorCode::X` mentions inside the body of every function-shaped
 * occurrence of @p fn in @p file (identifier, balanced parens, then a
 * braced body — call sites don't match).
 */
std::vector<std::string>
mentionsInFunction(const SourceFile &file, const std::string &fn)
{
    std::vector<std::string> out;
    const std::vector<Token> &toks = file.stream.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].isIdent(fn) || i + 1 >= toks.size() ||
            !toks[i + 1].isPunct('('))
            continue;
        std::size_t j = i + 1;
        int parens = 0;
        for (; j < toks.size(); ++j) {
            if (toks[j].isPunct('('))
                ++parens;
            else if (toks[j].isPunct(')') && --parens == 0)
                break;
        }
        if (j + 1 >= toks.size() || !toks[j + 1].isPunct('{'))
            continue;
        int braces = 0;
        for (std::size_t k = j + 1; k < toks.size(); ++k) {
            if (toks[k].isPunct('{'))
                ++braces;
            else if (toks[k].isPunct('}') && --braces == 0)
                break;
            if (toks[k].isIdent("ErrorCode") && k + 3 < toks.size() &&
                toks[k + 1].isPunct(':') && toks[k + 2].isPunct(':') &&
                toks[k + 3].kind == TokKind::Identifier)
                out.push_back(toks[k + 3].text);
        }
    }
    return out;
}

/** S001: the ErrorCode registry itself is well-formed. */
void
checkErrorRegistry(const Corpus &corpus, Sink &sink,
                   std::vector<CodeEntry> *codes)
{
    const SourceFile *hh = corpus.find(kErrorHeader);
    if (hh == nullptr)
        return; // corpus without the error layer: nothing to say
    std::size_t definitions = 0;
    if (!parseErrorEnum(*hh, codes, &definitions)) {
        sink.add(RuleId::ErrorCodeRegistry, kErrorHeader, 0,
                 "no `enum class ErrorCode` definition found");
        return;
    }

    // Exactly one definition, repo-wide.
    for (const SourceFile &f : corpus.files) {
        if (!f.tokenized || f.path == kErrorHeader)
            continue;
        std::size_t defs = 0;
        std::vector<CodeEntry> ignored;
        if (parseErrorEnum(f, &ignored, &defs) && defs > 0) {
            sink.add(RuleId::ErrorCodeRegistry, f.path, 0,
                     "second `enum class ErrorCode` definition; the "
                     "registry lives in " +
                         std::string(kErrorHeader));
        }
    }
    if (definitions > 1) {
        sink.add(RuleId::ErrorCodeRegistry, kErrorHeader, 0,
                 "multiple `enum class ErrorCode` definitions in the "
                 "registry header");
    }

    // Unique names and unique numeric values.
    std::map<std::string, std::size_t> by_name;
    std::map<long, std::string> by_value;
    for (const CodeEntry &c : *codes) {
        auto [it, fresh] = by_name.emplace(c.name, c.line);
        if (!fresh) {
            sink.add(RuleId::ErrorCodeRegistry, kErrorHeader, c.line,
                     "enumerator '" + c.name + "' defined twice");
        }
        auto [vit, vfresh] = by_value.emplace(c.value, c.name);
        if (!vfresh && c.name != vit->second) {
            std::ostringstream oss;
            oss << "'" << c.name << "' reuses code " << c.value
                << " already taken by '" << vit->second << "'";
            sink.add(RuleId::ErrorCodeRegistry, kErrorHeader, c.line,
                     oss.str());
        }
    }

    // Every enumerator needs a label case in error.cc.
    const SourceFile *cc = corpus.find(kErrorImpl);
    if (cc == nullptr) {
        sink.add(RuleId::ErrorCodeRegistry, kErrorImpl, 0,
                 "label implementation not found in corpus");
        return;
    }
    std::set<std::string> labeled;
    for (const auto &[name, line] : errorCodeMentions(*cc))
        labeled.insert(name);
    for (const CodeEntry &c : *codes) {
        if (labeled.count(c.name) == 0) {
            sink.add(RuleId::ErrorCodeRegistry, kErrorHeader, c.line,
                     "enumerator '" + c.name +
                         "' has no label case in " +
                         std::string(kErrorImpl));
        }
    }
}

/** S002: every code is raised; serve codes are explicitly mapped. */
void
checkErrorRaised(const Corpus &corpus, Sink &sink,
                 const std::vector<CodeEntry> &codes)
{
    if (codes.empty())
        return; // S001 already reported the missing registry

    std::set<std::string> raised;
    for (const SourceFile &f : corpus.files) {
        if (!f.tokenized || !hasPrefix(f.path, "src/"))
            continue;
        if (f.path == kErrorHeader || f.path == kErrorImpl)
            continue;
        for (const auto &[name, line] : errorCodeMentions(f))
            raised.insert(name);
    }
    for (const CodeEntry &c : codes) {
        if (c.value == 0)
            continue; // the None sentinel is never "raised"
        if (raised.count(c.name) == 0) {
            std::ostringstream oss;
            oss << "code E" << c.value << " ('" << c.name
                << "') is defined but never raised under src/";
            sink.add(RuleId::ErrorCodeRaised, kErrorHeader, c.line,
                     oss.str());
        }
    }

    // Serve-domain codes (5xxx) must appear explicitly in the
    // code→HTTP mapping: relying on its default branch silently
    // changes the wire contract when a new code is added.
    bool any_serve = false;
    for (const CodeEntry &c : codes)
        any_serve = any_serve || (c.value >= 5000 && c.value < 6000);
    if (!any_serve)
        return;
    const SourceFile *svc = corpus.find(kServeImpl);
    if (svc == nullptr) {
        sink.add(RuleId::ErrorCodeRaised, kServeImpl, 0,
                 "serve codes exist but the code->HTTP mapping file "
                 "was not found");
        return;
    }
    std::vector<std::string> mapped_list =
        mentionsInFunction(*svc, "httpStatusFor");
    std::set<std::string> mapped(mapped_list.begin(), mapped_list.end());
    for (const CodeEntry &c : codes) {
        if (c.value < 5000 || c.value >= 6000)
            continue;
        if (mapped.count(c.name) == 0) {
            std::ostringstream oss;
            oss << "serve code E" << c.value << " ('" << c.name
                << "') is not an explicit case in httpStatusFor()";
            sink.add(RuleId::ErrorCodeRaised, kErrorHeader, c.line,
                     oss.str());
        }
    }
}

/** S003: every Exxxx cited in tests/ or the docs exists. */
void
checkErrorReferences(const Corpus &corpus, Sink &sink,
                     const std::vector<CodeEntry> &codes)
{
    if (codes.empty())
        return;
    std::set<long> known;
    for (const CodeEntry &c : codes)
        known.insert(c.value);

    for (const SourceFile &f : corpus.files) {
        bool doc = f.path == "README.md" || f.path == "DESIGN.md";
        if (!doc && !hasPrefix(f.path, "tests/"))
            continue;
        const std::string &text = f.text;
        std::size_t line = 1;
        for (std::size_t i = 0; i < text.size(); ++i) {
            if (text[i] == '\n') {
                ++line;
                continue;
            }
            if (text[i] != 'E')
                continue;
            if (i > 0) {
                char prev = text[i - 1];
                if ((prev >= 'a' && prev <= 'z') ||
                    (prev >= 'A' && prev <= 'Z') ||
                    (prev >= '0' && prev <= '9') || prev == '_')
                    continue;
            }
            std::size_t d = 0;
            while (d < 4 && i + 1 + d < text.size() &&
                   text[i + 1 + d] >= '0' && text[i + 1 + d] <= '9')
                ++d;
            if (d != 4)
                continue;
            if (i + 5 < text.size() && text[i + 5] >= '0' &&
                text[i + 5] <= '9')
                continue; // five or more digits: not our format
            long value = std::strtol(text.substr(i + 1, 4).c_str(),
                                     nullptr, 10);
            if (known.count(value) == 0) {
                std::ostringstream oss;
                oss << "references error code E" << value
                    << ", which is not in the registry";
                sink.add(RuleId::ErrorCodeReference, f.path, line,
                         oss.str());
            }
            i += 4;
        }
    }
}

/** Parse the first string of each entry in the kFaultSites table. */
std::vector<std::pair<std::string, std::size_t>>
parseFaultSiteTable(const SourceFile &file)
{
    std::vector<std::pair<std::string, std::size_t>> out;
    const std::vector<Token> &toks = file.stream.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].isIdent("kFaultSites"))
            continue;
        // Find the initializer's opening brace.
        std::size_t j = i + 1;
        while (j < toks.size() && !toks[j].isPunct('{') &&
               !toks[j].isPunct(';'))
            ++j;
        if (j >= toks.size() || !toks[j].isPunct('{'))
            continue;
        int depth = 0;
        bool want_site = false;
        for (; j < toks.size(); ++j) {
            if (toks[j].isPunct('{')) {
                ++depth;
                want_site = depth == 2; // entering one entry
            } else if (toks[j].isPunct('}')) {
                if (--depth == 0)
                    break;
            } else if (want_site && toks[j].kind == TokKind::String) {
                out.emplace_back(toks[j].text, toks[j].line);
                want_site = false;
            }
        }
        break;
    }
    return out;
}

/** True when @p site occurs in @p text delimited by non-name chars. */
bool
containsSiteWord(const std::string &text, const std::string &site)
{
    std::size_t at = 0;
    auto boundary = [](char c) {
        return !((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_' || c == '-');
    };
    while ((at = text.find(site, at)) != std::string::npos) {
        bool left = at == 0 || boundary(text[at - 1]);
        std::size_t end = at + site.size();
        bool right = end >= text.size() || boundary(text[end]);
        if (left && right)
            return true;
        at = end;
    }
    return false;
}

/** S004: fault sites registered, used, and exercised by tests. */
void
checkFaultSites(const Corpus &corpus, Sink &sink)
{
    const SourceFile *hh = corpus.find(kFaultHeader);
    if (hh == nullptr)
        return; // corpus without a fault-injection layer: nothing to say
    std::vector<std::pair<std::string, std::size_t>> table =
        parseFaultSiteTable(*hh);
    if (table.empty()) {
        sink.add(RuleId::FaultSiteConsistency, kFaultHeader, 0,
                 "no kFaultSites registry found; every injection site "
                 "must be declared there");
        return;
    }
    std::set<std::string> registered;
    for (const auto &[site, line] : table)
        registered.insert(site);

    // Every site literal passed to the FaultPlan API in production
    // code must be registered.
    static const char *kApi[] = { "shouldFail", "shouldFailCounted",
                                  "armed" };
    std::set<std::string> used;
    for (const SourceFile &f : corpus.files) {
        if (!f.tokenized || !hasPrefix(f.path, "src/"))
            continue;
        if (hasPrefix(f.path, "src/util/faultinject"))
            continue;
        const std::vector<Token> &toks = f.stream.tokens;
        for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
            bool is_api = false;
            for (const char *fn : kApi)
                is_api = is_api || toks[i].isIdent(fn);
            if (!is_api || !toks[i + 1].isPunct('('))
                continue;
            if (toks[i + 2].kind != TokKind::String)
                continue;
            const std::string &site = toks[i + 2].text;
            used.insert(site);
            if (registered.count(site) == 0) {
                sink.add(RuleId::FaultSiteConsistency, f.path,
                         toks[i + 2].line,
                         "fault site \"" + site +
                             "\" is not in the kFaultSites registry");
            }
        }
    }

    // Every registered site must be compiled into some production
    // check, and exercised by at least one file under tests/.
    for (const auto &[site, line] : table) {
        if (used.count(site) == 0) {
            sink.add(RuleId::FaultSiteConsistency, kFaultHeader, line,
                     "registered fault site \"" + site +
                         "\" is never checked under src/");
        }
        bool exercised = false;
        for (const SourceFile &f : corpus.files) {
            if (!hasPrefix(f.path, "tests/"))
                continue;
            if (containsSiteWord(f.text, site)) {
                exercised = true;
                break;
            }
        }
        if (!exercised) {
            sink.add(RuleId::FaultSiteConsistency, kFaultHeader, line,
                     "registered fault site \"" + site +
                         "\" is not exercised by any test");
        }
    }
}

} // namespace

void
checkRegistries(const Corpus &corpus, Sink &sink)
{
    std::vector<CodeEntry> codes;
    checkErrorRegistry(corpus, sink, &codes);
    checkErrorRaised(corpus, sink, codes);
    checkErrorReferences(corpus, sink, codes);
    checkFaultSites(corpus, sink);
}

} // namespace internal

Report
check(const Corpus &corpus, const Options &options)
{
    Report report;
    internal::Sink sink(corpus, options, &report);
    internal::checkRegistries(corpus, sink);
    internal::checkHygiene(corpus, sink);
    return report;
}

} // namespace accelwall::srccheck
