/**
 * @file
 * Mining-market economics (Section IV-D's narrative, made mechanical).
 *
 * "Initially, inexpensive platforms were used, but following the
 * increase in difficulty, miners moved to expensive ASICs with new
 * energy efficiency CMOS nodes, since the energy spent became the
 * dominating factor for mining revenues."
 *
 * This module simulates that market: network hashrate grows, the
 * revenue per GH/s falls accordingly, and at each epoch every chip in
 * the studies::miningChips() dataset (those already introduced) is
 * evaluated for operating margin and capital payback. The platform
 * transitions — CPU to GPU to FPGA to ASIC — emerge endogenously.
 */

#ifndef ACCELWALL_ECONOMICS_MINING_MARKET_HH
#define ACCELWALL_ECONOMICS_MINING_MARKET_HH

#include <string>
#include <vector>

#include "studies/bitcoin.hh"
#include "util/units.hh"

namespace accelwall::economics
{

/**
 * Market assumptions. Money fields are dimensional (util/units.hh):
 * a tariff cannot be passed where a silicon price is expected.
 */
struct MarketConfig
{
    double start_year = 2009.5;
    double end_year = 2016.75;
    double step_years = 0.25;
    /** Electricity price. */
    units::UsdPerKilowattHour usd_per_kwh{0.10};
    /** Network-wide mining revenue per day. */
    units::UsdPerDay network_revenue_usd_per_day{1.0e6};
    /** Network hashrate at start_year, in GH/s. */
    double initial_network_ghs = 0.05;
    /** Multiplicative network-hashrate growth per year. */
    double growth_per_year = 18.0;
    /** Hardware price per mm² of silicon (capex model). */
    units::UsdPerSquareMillimeter usd_per_mm2{2.0};
};

/** One chip's economics at one epoch. */
struct ChipEconomics
{
    std::string chip;
    chipdb::Platform platform = chipdb::Platform::CPU;
    /** Revenue minus electricity (may be negative). */
    units::UsdPerDay margin_usd_per_day{0.0};
    /** Electricity share of revenue (the paper's dominating factor). */
    double energy_cost_share = 0.0;
    /** Time to recoup the silicon capex; +inf when unprofitable. */
    units::Days payback_days{0.0};
};

/** The market state at one epoch. */
struct Epoch
{
    double year = 0.0;
    double network_ghs = 0.0;
    /** Revenue per GH/s per day at this difficulty. */
    double usd_per_ghs_day = 0.0;
    /** The best-payback chip among those already introduced. */
    ChipEconomics best;
    /** Platforms with at least one profitable chip. */
    std::vector<chipdb::Platform> profitable_platforms;
};

/** Evaluate one chip at a given revenue density. */
ChipEconomics evaluateChip(const studies::MiningChip &chip,
                           double usd_per_ghs_day,
                           const MarketConfig &config);

/** Run the market simulation over the dataset. */
std::vector<Epoch> simulateMarket(const MarketConfig &config = {});

} // namespace accelwall::economics

#endif // ACCELWALL_ECONOMICS_MINING_MARKET_HH
