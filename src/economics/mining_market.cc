#include "economics/mining_market.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/logging.hh"

namespace accelwall::economics
{

ChipEconomics
evaluateChip(const studies::MiningChip &chip, double usd_per_ghs_day,
             const MarketConfig &config)
{
    ChipEconomics out;
    out.chip = chip.label;
    out.platform = chip.platform;

    // The hashrate side of the market is a plain ratio (the dataset
    // stores GH/s and usd_per_ghs_day divides two of them), so revenue
    // enters the typed domain here.
    const units::UsdPerDay revenue{chip.ghs * usd_per_ghs_day};
    // chip.watts for 24h: W/1000 * 24 is the datasheet kWh per day.
    const units::KilowattHours energy_per_day{chip.watts / 1e3 * 24.0};
    const units::UsdPerDay electricity =
        energy_per_day * config.usd_per_kwh / units::Days{1.0};
    out.margin_usd_per_day = revenue - electricity;
    out.energy_cost_share =
        revenue > units::UsdPerDay{0.0}
            ? electricity / revenue
            : std::numeric_limits<double>::infinity();

    const units::Usd capex =
        units::SquareMillimeters{chip.area_mm2} * config.usd_per_mm2;
    out.payback_days =
        out.margin_usd_per_day > units::UsdPerDay{0.0}
            ? capex / out.margin_usd_per_day
            : units::Days{std::numeric_limits<double>::infinity()};
    return out;
}

std::vector<Epoch>
simulateMarket(const MarketConfig &config)
{
    if (config.step_years <= 0.0 || config.end_year <= config.start_year)
        fatal("simulateMarket: bad time range");
    if (config.initial_network_ghs <= 0.0 ||
        config.growth_per_year <= 1.0)
        fatal("simulateMarket: network must start positive and grow");

    const auto &chips = studies::miningChips();

    std::vector<Epoch> out;
    for (double year = config.start_year; year <= config.end_year + 1e-9;
         year += config.step_years) {
        Epoch epoch;
        epoch.year = year;
        epoch.network_ghs =
            config.initial_network_ghs *
            std::pow(config.growth_per_year, year - config.start_year);
        // Revenue density divides typed UsdPerDay by untyped GH/s;
        // the quotient leaves the typed domain with it.
        epoch.usd_per_ghs_day =
            config.network_revenue_usd_per_day.raw() /
            epoch.network_ghs;

        std::set<chipdb::Platform> profitable;
        bool found = false;
        for (const auto &chip : chips) {
            if (chip.year > year)
                continue; // not introduced yet
            ChipEconomics econ =
                evaluateChip(chip, epoch.usd_per_ghs_day, config);
            if (econ.margin_usd_per_day > units::UsdPerDay{0.0})
                profitable.insert(chip.platform);
            if (!found || econ.payback_days < epoch.best.payback_days) {
                epoch.best = econ;
                found = true;
            }
        }
        epoch.profitable_platforms.assign(profitable.begin(),
                                          profitable.end());
        out.push_back(std::move(epoch));
    }
    return out;
}

} // namespace accelwall::economics
