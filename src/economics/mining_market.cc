#include "economics/mining_market.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/logging.hh"

namespace accelwall::economics
{

ChipEconomics
evaluateChip(const studies::MiningChip &chip, double usd_per_ghs_day,
             const MarketConfig &config)
{
    ChipEconomics out;
    out.chip = chip.label;
    out.platform = chip.platform;

    double revenue = chip.ghs * usd_per_ghs_day;
    double electricity =
        chip.watts / 1e3 * 24.0 * config.usd_per_kwh; // kWh/day cost
    out.margin_usd_per_day = revenue - electricity;
    out.energy_cost_share = revenue > 0.0 ? electricity / revenue
                                          : std::numeric_limits<
                                                double>::infinity();

    double capex = chip.area_mm2 * config.usd_per_mm2;
    out.payback_days = out.margin_usd_per_day > 0.0
                           ? capex / out.margin_usd_per_day
                           : std::numeric_limits<double>::infinity();
    return out;
}

std::vector<Epoch>
simulateMarket(const MarketConfig &config)
{
    if (config.step_years <= 0.0 || config.end_year <= config.start_year)
        fatal("simulateMarket: bad time range");
    if (config.initial_network_ghs <= 0.0 ||
        config.growth_per_year <= 1.0)
        fatal("simulateMarket: network must start positive and grow");

    const auto &chips = studies::miningChips();

    std::vector<Epoch> out;
    for (double year = config.start_year; year <= config.end_year + 1e-9;
         year += config.step_years) {
        Epoch epoch;
        epoch.year = year;
        epoch.network_ghs =
            config.initial_network_ghs *
            std::pow(config.growth_per_year, year - config.start_year);
        epoch.usd_per_ghs_day =
            config.network_revenue_usd_per_day / epoch.network_ghs;

        std::set<chipdb::Platform> profitable;
        bool found = false;
        for (const auto &chip : chips) {
            if (chip.year > year)
                continue; // not introduced yet
            ChipEconomics econ =
                evaluateChip(chip, epoch.usd_per_ghs_day, config);
            if (econ.margin_usd_per_day > 0.0)
                profitable.insert(chip.platform);
            if (!found || econ.payback_days < epoch.best.payback_days) {
                epoch.best = econ;
                found = true;
            }
        }
        epoch.profitable_platforms.assign(profitable.begin(),
                                          profitable.end());
        out.push_back(std::move(epoch));
    }
    return out;
}

} // namespace accelwall::economics
