/**
 * @file
 * Descriptive statistics used throughout the CSR pipelines: arithmetic and
 * geometric means, standard deviation, and residual-error summaries.
 */

#ifndef ACCELWALL_STATS_DESCRIPTIVE_HH
#define ACCELWALL_STATS_DESCRIPTIVE_HH

#include <cstddef>
#include <vector>

namespace accelwall::stats
{

/** Arithmetic mean; fatal() on an empty sample. */
double mean(const std::vector<double> &xs);

/**
 * Geometric mean; all samples must be positive. Used for Eq. 3's
 * cross-application gain aggregation.
 */
double geomean(const std::vector<double> &xs);

/** Sample standard deviation (N-1 denominator); 0 for N < 2. */
double stddev(const std::vector<double> &xs);

/** Median (average of middle two for even N). */
double median(std::vector<double> xs);

/** Minimum; fatal() on an empty sample. */
double minOf(const std::vector<double> &xs);

/** Maximum; fatal() on an empty sample. */
double maxOf(const std::vector<double> &xs);

/** Mean squared error between two equal-length series. */
double meanSquaredError(const std::vector<double> &actual,
                        const std::vector<double> &predicted);

} // namespace accelwall::stats

#endif // ACCELWALL_STATS_DESCRIPTIVE_HH
