#include "stats/fits.hh"

#include <cmath>

#include "util/logging.hh"

namespace accelwall::stats
{

namespace
{

/** R² of predictions against observations. */
double
rSquared(const std::vector<double> &ys, const std::vector<double> &preds)
{
    double mean = 0.0;
    for (double y : ys)
        mean += y;
    mean /= static_cast<double>(ys.size());

    double ss_tot = 0.0, ss_res = 0.0;
    for (std::size_t i = 0; i < ys.size(); ++i) {
        ss_tot += (ys[i] - mean) * (ys[i] - mean);
        ss_res += (ys[i] - preds[i]) * (ys[i] - preds[i]);
    }
    if (ss_tot == 0.0)
        return 1.0;
    return 1.0 - ss_res / ss_tot;
}

void
checkSizes(const std::vector<double> &xs, const std::vector<double> &ys,
           std::size_t min_points, const char *what)
{
    if (xs.size() != ys.size())
        fatal(what, ": xs and ys must be the same length");
    if (xs.size() < min_points)
        fatal(what, ": needs at least ", min_points, " points, got ",
              xs.size());
}

} // namespace

double
PowerLawFit::operator()(double x) const
{
    if (x <= 0.0)
        fatal("PowerLawFit evaluated at non-positive x=", x);
    return coeff * std::pow(x, exponent);
}

double
LogFit::operator()(double x) const
{
    if (x <= 0.0)
        fatal("LogFit evaluated at non-positive x=", x);
    return a * std::log(x) + b;
}

LinearFit
fitLinear(const std::vector<double> &xs, const std::vector<double> &ys)
{
    checkSizes(xs, ys, 2, "fitLinear");
    double n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    double denom = n * sxx - sx * sx;
    if (denom == 0.0)
        fatal("fitLinear: degenerate x values (all identical)");

    LinearFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    std::vector<double> preds(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        preds[i] = fit(xs[i]);
    fit.r2 = rSquared(ys, preds);
    return fit;
}

PowerLawFit
fitPowerLaw(const std::vector<double> &xs, const std::vector<double> &ys)
{
    checkSizes(xs, ys, 2, "fitPowerLaw");
    std::vector<double> lx(xs.size()), ly(ys.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i] <= 0.0 || ys[i] <= 0.0)
            fatal("fitPowerLaw requires positive samples");
        lx[i] = std::log(xs[i]);
        ly[i] = std::log(ys[i]);
    }
    LinearFit lin = fitLinear(lx, ly);

    PowerLawFit fit;
    fit.exponent = lin.slope;
    fit.coeff = std::exp(lin.intercept);
    fit.r2 = lin.r2;
    return fit;
}

LogFit
fitLog(const std::vector<double> &xs, const std::vector<double> &ys)
{
    checkSizes(xs, ys, 2, "fitLog");
    std::vector<double> lx(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i] <= 0.0)
            fatal("fitLog requires positive x samples");
        lx[i] = std::log(xs[i]);
    }
    LinearFit lin = fitLinear(lx, ys);

    LogFit fit;
    fit.a = lin.slope;
    fit.b = lin.intercept;
    fit.r2 = lin.r2;
    return fit;
}

QuadraticFit
fitQuadratic(const std::vector<double> &xs, const std::vector<double> &ys)
{
    checkSizes(xs, ys, 3, "fitQuadratic");

    // Centre x to keep the normal equations well conditioned: with raw
    // abscissae like calendar years (~2e3) the x^4 moments overwhelm
    // double precision. Fit in u = x - mean(x), expand back below.
    double mean_x = 0.0;
    for (double x : xs)
        mean_x += x;
    mean_x /= static_cast<double>(xs.size());

    // Normal equations for [a b c] with basis [u^2, u, 1].
    double s0 = static_cast<double>(xs.size());
    double s1 = 0, s2 = 0, s3 = 0, s4 = 0;
    double t0 = 0, t1 = 0, t2 = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double x = xs[i] - mean_x, y = ys[i];
        double x2 = x * x;
        s1 += x;
        s2 += x2;
        s3 += x2 * x;
        s4 += x2 * x2;
        t0 += y;
        t1 += x * y;
        t2 += x2 * y;
    }

    // Solve the 3x3 system via Cramer's rule.
    //  [s4 s3 s2] [a]   [t2]
    //  [s3 s2 s1] [b] = [t1]
    //  [s2 s1 s0] [c]   [t0]
    auto det3 = [](double a11, double a12, double a13, double a21,
                   double a22, double a23, double a31, double a32,
                   double a33) {
        return a11 * (a22 * a33 - a23 * a32) -
               a12 * (a21 * a33 - a23 * a31) +
               a13 * (a21 * a32 - a22 * a31);
    };

    double det = det3(s4, s3, s2, s3, s2, s1, s2, s1, s0);
    if (std::fabs(det) < 1e-12)
        fatal("fitQuadratic: singular system (x values not distinct?)");

    double ua = det3(t2, s3, s2, t1, s2, s1, t0, s1, s0) / det;
    double ub = det3(s4, t2, s2, s3, t1, s1, s2, t0, s0) / det;
    double uc = det3(s4, s3, t2, s3, s2, t1, s2, s1, t0) / det;

    // Expand y = ua*u^2 + ub*u + uc with u = x - m back to x.
    QuadraticFit fit;
    fit.a = ua;
    fit.b = ub - 2.0 * ua * mean_x;
    fit.c = ua * mean_x * mean_x - ub * mean_x + uc;

    std::vector<double> preds(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        preds[i] = fit(xs[i]);
    fit.r2 = rSquared(ys, preds);
    return fit;
}

} // namespace accelwall::stats
