/**
 * @file
 * Least-squares curve fits.
 *
 * The paper uses four fit families:
 *  - linear        y = a*x + b            (Eq. 5, Pareto projections)
 *  - logarithmic   y = a*ln(x) + b        (Eq. 6, Pareto projections)
 *  - power law     y = c*x^alpha          (Fig. 3b/3c budget models,
 *                                          "logarithmic regression with
 *                                          least mean square errors")
 *  - quadratic     y = a*x^2 + b*x + c    (Fig. 5 frame-rate trend curves)
 */

#ifndef ACCELWALL_STATS_FITS_HH
#define ACCELWALL_STATS_FITS_HH

#include <cstddef>
#include <vector>

namespace accelwall::stats
{

/** Result of a straight-line fit y = slope*x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination on the fitted space. */
    double r2 = 0.0;

    /** Evaluate the fitted line at @p x. */
    double operator()(double x) const { return slope * x + intercept; }
};

/** Result of a power-law fit y = coeff * x^exponent. */
struct PowerLawFit
{
    double coeff = 1.0;
    double exponent = 0.0;
    /** R² measured in log-log space, where the fit is linear. */
    double r2 = 0.0;

    /** Evaluate the fitted curve at @p x (x must be positive). */
    double operator()(double x) const;
};

/** Result of a logarithmic fit y = a*ln(x) + b. */
struct LogFit
{
    double a = 0.0;
    double b = 0.0;
    double r2 = 0.0;

    /** Evaluate the fitted curve at @p x (x must be positive). */
    double operator()(double x) const;
};

/** Result of a quadratic fit y = a*x² + b*x + c. */
struct QuadraticFit
{
    double a = 0.0;
    double b = 0.0;
    double c = 0.0;
    double r2 = 0.0;

    /** Evaluate the fitted parabola at @p x. */
    double operator()(double x) const { return (a * x + b) * x + c; }
};

/**
 * Ordinary least squares line through (xs, ys).
 *
 * @pre xs.size() == ys.size() and at least two points.
 */
LinearFit fitLinear(const std::vector<double> &xs,
                    const std::vector<double> &ys);

/**
 * Power-law fit via linear least squares in log-log space, matching the
 * paper's "logarithmic regression with least mean square errors".
 *
 * @pre all xs and ys strictly positive.
 */
PowerLawFit fitPowerLaw(const std::vector<double> &xs,
                        const std::vector<double> &ys);

/**
 * Logarithmic fit y = a*ln(x)+b via least squares on (ln x, y).
 *
 * @pre all xs strictly positive.
 */
LogFit fitLog(const std::vector<double> &xs, const std::vector<double> &ys);

/**
 * Quadratic fit via the 3x3 normal equations.
 *
 * @pre at least three points with distinct x.
 */
QuadraticFit fitQuadratic(const std::vector<double> &xs,
                          const std::vector<double> &ys);

} // namespace accelwall::stats

#endif // ACCELWALL_STATS_FITS_HH
