#include "stats/pareto.hh"

#include <algorithm>

namespace accelwall::stats
{

bool
dominates(const Point2 &a, const Point2 &b)
{
    bool no_worse = a.x <= b.x && a.y >= b.y;
    bool strictly_better = a.x < b.x || a.y > b.y;
    return no_worse && strictly_better;
}

std::vector<Point2>
paretoFrontier(std::vector<Point2> points)
{
    if (points.empty())
        return {};

    std::sort(points.begin(), points.end(),
              [](const Point2 &a, const Point2 &b) {
                  if (a.x != b.x)
                      return a.x < b.x;
                  return a.y > b.y;
              });

    std::vector<Point2> frontier;
    double best_y = -1e300;
    for (const auto &p : points) {
        if (p.y > best_y) {
            frontier.push_back(p);
            best_y = p.y;
        }
    }
    return frontier;
}

} // namespace accelwall::stats
