/**
 * @file
 * Pareto-frontier extraction. Section VII fits its projection models to the
 * Pareto frontier of (physical potential, reported gain) points: only chips
 * that are not dominated by another chip (>= on x with > on y) shape the
 * accelerator-wall projection.
 */

#ifndef ACCELWALL_STATS_PARETO_HH
#define ACCELWALL_STATS_PARETO_HH

#include <vector>

namespace accelwall::stats
{

/** A 2-D sample used in frontier extraction. */
struct Point2
{
    double x = 0.0;
    double y = 0.0;
};

/**
 * Extract the upper Pareto frontier of @p points: a point survives when no
 * other point has x <= its x and y >= its y (with at least one strict).
 * In other words, each surviving point offers the best y seen at or below
 * its x budget. The result is sorted by ascending x and has strictly
 * increasing y.
 */
std::vector<Point2> paretoFrontier(std::vector<Point2> points);

/**
 * True when @p a dominates @p b in the maximize-y / minimize-x sense used
 * by paretoFrontier().
 */
bool dominates(const Point2 &a, const Point2 &b);

} // namespace accelwall::stats

#endif // ACCELWALL_STATS_PARETO_HH
