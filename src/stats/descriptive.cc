#include "stats/descriptive.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace accelwall::stats
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        fatal("mean of an empty sample");
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        fatal("geomean of an empty sample");
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            fatal("geomean requires positive samples, got ", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        fatal("median of an empty sample");
    std::sort(xs.begin(), xs.end());
    std::size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double
minOf(const std::vector<double> &xs)
{
    if (xs.empty())
        fatal("min of an empty sample");
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    if (xs.empty())
        fatal("max of an empty sample");
    return *std::max_element(xs.begin(), xs.end());
}

double
meanSquaredError(const std::vector<double> &actual,
                 const std::vector<double> &predicted)
{
    if (actual.size() != predicted.size())
        fatal("MSE requires equal-length series");
    if (actual.empty())
        fatal("MSE of empty series");
    double acc = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        double d = actual[i] - predicted[i];
        acc += d * d;
    }
    return acc / static_cast<double>(actual.size());
}

} // namespace accelwall::stats
