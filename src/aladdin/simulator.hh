/**
 * @file
 * Pre-RTL accelerator model (the paper's Aladdin-based flow, Section VI).
 *
 * The simulator schedules a kernel's DFG onto an accelerator described by
 * a DesignPoint and reports runtime, energy, power, and area:
 *
 *  - Partitioning provisions `partition` parallel issue slots for compute
 *    operations and `partition` memory ports per cycle (replicated lanes
 *    and banked scratchpads).
 *  - Computation heterogeneity is operation chaining: a dependent op may
 *    execute combinationally within its producer's clock cycle when the
 *    accumulated delay fits the period. Faster CMOS nodes fit more logic
 *    levels per (fixed 1 GHz) cycle, reproducing the paper's observation
 *    that fusion gains compound with process advances.
 *  - Simplification narrows datapaths (energy/area/leakage savings,
 *    linear for adder-class units and quadratic for multiplier-class
 *    ones) and, at extreme degrees, deep-pipelines units — adding
 *    latency and registering outputs (which forbids chaining), the
 *    diminishing-returns regime of Figure 13.
 *  - The CMOS node scales delay, switching energy, leakage, and area via
 *    cmos::ScalingTable.
 *  - Memory and communication specialization (Table I rows 1-6) are
 *    selectable: MemoryMode picks a single simple port, striped banks
 *    with conflict serialization, or a conflict-free heterogeneous
 *    layout; CommMode picks a shared FIFO (+1 forwarding cycle, no
 *    chaining), concurrent per-lane forwarding, or a DMA engine that
 *    streams root loads at double bandwidth.
 */

#ifndef ACCELWALL_ALADDIN_SIMULATOR_HH
#define ACCELWALL_ALADDIN_SIMULATOR_HH

#include <array>
#include <cstdint>

#include "aladdin/design_point.hh"
#include "dfg/analysis.hh"
#include "dfg/graph.hh"

namespace accelwall::aladdin
{

/** Measured outcome of one design point. */
struct SimResult
{
    /** Clock cycles to drain the DFG. */
    std::uint64_t cycles = 0;
    /** Wall-clock makespan in ns. */
    double runtime_ns = 0.0;
    /** Switching energy in pJ. */
    double dynamic_energy_pj = 0.0;
    /** Leakage (static) power in uW. */
    double leakage_power_uw = 0.0;
    /** Total energy (switching + leakage * runtime) in pJ. */
    double energy_pj = 0.0;
    /** Average power in mW. */
    double power_mw = 0.0;
    /** Accelerator area in um². */
    double area_um2 = 0.0;
    /** Executed operations (compute + memory; pseudo nodes excluded). */
    std::uint64_t ops = 0;
    /** Operations chained into a producer's cycle (fused). */
    std::uint64_t fused_ops = 0;
    /** Throughput in operations per second (single invocation). */
    double throughput_ops = 0.0;
    /** Energy efficiency in operations per joule. */
    double efficiency_opj = 0.0;
    /**
     * Mean issue-lane occupancy: non-fused operations issued divided
     * by cycles x (compute + memory lanes). Falls toward zero once
     * partitioning outruns the kernel's parallelism — Figure 13's
     * "underutilized partitioned resources".
     */
    double lane_utilization = 0.0;
    /**
     * Initiation interval in cycles when invocations stream
     * back-to-back through the (acyclic) datapath: the binding
     * resource class's occupancy, not the latency.
     */
    std::uint64_t initiation_interval = 0;
    /** Steady-state pipelined throughput in operations per second. */
    double pipelined_throughput_ops = 0.0;
};

/**
 * Schedules one DFG across design points. Construction precomputes the
 * topological order and structural analysis; run() is const and
 * reusable across the sweep.
 */
class Simulator
{
  public:
    /** Capture (copy) the kernel DFG and precompute its analysis. */
    explicit Simulator(dfg::Graph graph);

    /** Evaluate one design point. */
    SimResult run(const DesignPoint &dp) const;

    /** The kernel DFG. */
    const dfg::Graph &graph() const { return graph_; }

    /** Structural analysis of the kernel. */
    const dfg::Analysis &analysis() const { return analysis_; }

    /** Register energy charged per non-chained op at 45nm/32-bit, pJ. */
    static constexpr double kRegisterEnergyPj = 0.10;

    /** Scratchpad leakage per byte at 45nm, uW. */
    static constexpr double kSramLeakUwPerByte = 0.05;

    /** Scratchpad area per byte at 45nm, um². */
    static constexpr double kSramAreaUm2PerByte = 1.5;

    /** Per-bank (port) overhead: leakage uW and area um² at 45nm. */
    static constexpr double kBankLeakUw = 2.0;
    static constexpr double kBankAreaUm2 = 500.0;

    /**
     * Simplification degrees above this deep-pipeline the units: each
     * further degree adds one cycle of latency and registers outputs
     * (disabling chaining through them).
     */
    static constexpr int kDeepPipelineDegree = 10;

  private:
    dfg::Graph graph_;
    dfg::Analysis analysis_;
    std::vector<dfg::NodeId> topo_;
};

} // namespace accelwall::aladdin

#endif // ACCELWALL_ALADDIN_SIMULATOR_HH
