/**
 * @file
 * Data-oriented (structure-of-arrays) sweep cell evaluator.
 *
 * Simulator::run() re-walks the pointer-heavy dfg::Graph — a
 * vector-of-vectors adjacency, std::map cycle buckets, std::deque wait
 * queues, unordered_map bank state — for every (node, partition,
 * simplification) cell of a sweep. This engine lowers the kernel once
 * into a SweepPlan of flat, contiguous tables (op codes, CSR successor
 * lists, per-class counts), derives the per-(node, simplification)
 * cost table once per chain, and then evaluates every cell of the
 * chain against the plan with arena-backed scratch:
 *
 *  - the cycle buckets become a power-of-two ring calendar indexed by
 *    `cycle & mask` (pending ready times never lead the current cycle
 *    by more than the largest op latency, so a small ring suffices);
 *  - wait queues become bump-allocated index FIFOs;
 *  - banked-memory state becomes stamp-validated flat arrays (no
 *    per-cell clearing, no hashing).
 *
 * The contract is *bit-identical* SimResult output: evalPlanCell()
 * replays the exact operation order of Simulator::run(), so every
 * floating-point accumulation happens in the same sequence. The legacy
 * evaluator remains the differential-test oracle behind
 * ACCELWALL_SWEEP_ENGINE=legacy (see sweep.hh and
 * tests/test_sweep_diff.cc).
 */

#ifndef ACCELWALL_ALADDIN_SOA_ENGINE_HH
#define ACCELWALL_ALADDIN_SOA_ENGINE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "aladdin/design_point.hh"
#include "aladdin/simulator.hh"
#include "dfg/analysis.hh"
#include "dfg/graph.hh"
#include "util/arena.hh"

namespace accelwall::aladdin
{

/**
 * One kernel DFG lowered into flat tables. Built once per sweep and
 * shared read-only across worker threads; evaluation never touches
 * dfg::Graph again.
 */
class SweepPlan
{
  public:
    /** Node property bits (plan.flags). */
    static constexpr std::uint8_t kVariable = 1;
    static constexpr std::uint8_t kMemory = 2;
    static constexpr std::uint8_t kCompute = 4;
    /** Load with no predecessors (DMA-streamable root load). */
    static constexpr std::uint8_t kRootLoad = 8;

    SweepPlan(const dfg::Graph &graph, const dfg::Analysis &analysis);

    /** |V|. */
    std::size_t num_nodes = 0;
    /** OpType per node, as a dense table index. */
    std::vector<std::uint8_t> op;
    /** kVariable/kMemory/kCompute/kRootLoad bits per node. */
    std::vector<std::uint8_t> flags;
    /** op | flags << 8 — one load per node on the hot path. */
    std::vector<std::uint16_t> meta;
    /** In-degree per node (schedule seeding). */
    std::vector<std::uint32_t> pred_count;
    /** CSR successor offsets, size num_nodes + 1. */
    std::vector<std::uint32_t> succ_off;
    /** CSR successor ids, edge order identical to Graph::succs(). */
    std::vector<dfg::NodeId> succ;
    /** Memory nodes in id order (initiation-interval accounting). */
    std::vector<dfg::NodeId> mem_nodes;
    /** Zero-in-degree nodes in id order (schedule seeding). */
    std::vector<dfg::NodeId> roots;
    /** Nodes per op class (functional-unit provisioning). */
    std::array<std::uint64_t, dfg::kNumOpTypes> op_count{};
    /** analysis.max_working_set (scratchpad sizing). */
    std::size_t max_working_set = 0;
};

/**
 * Per-(node, simplification) derived costs — everything in
 * Simulator::run() that does not depend on the partition factor, so a
 * chain computes it once and reuses it for all its partition cells.
 */
struct CellCosts
{
    struct OpCost
    {
        double delay_ns = 0.0;
        int latency_cycles = 1;
        double energy_pj = 0.0;
        double reg_energy_pj = 0.0;
        bool chainable = false;
        /**
         * energy_pj + reg_energy_pj and latency_cycles * period,
         * precomputed from the identical operands the legacy engine
         * adds/multiplies per issue — bit-identical by construction.
         */
        double issue_energy_pj = 0.0;
        double latency_ns = 0.0;
    };

    std::array<OpCost, dfg::kNumOpTypes> op;
    double period = 1.0;
    double leak_rel = 1.0;
    double density = 1.0;
    int extra_pipe = 0;
    bool fifo = false;
    bool dma = false;
    /** Max latency_cycles over all classes (ring-calendar sizing). */
    int max_latency = 1;
};

/**
 * Derive the chain-invariant cost table for @p dp. Only node_nm,
 * simplification, chaining, comm, and clock_ghz are read; partition
 * and memory mode are per-cell concerns.
 */
CellCosts deriveCellCosts(const DesignPoint &dp);

/**
 * Reusable per-thread evaluation scratch. All per-cell arrays live in
 * the arena (reset per cell, capacity retained); the stamped bank
 * tables persist across cells so banked-memory cells need no O(banks)
 * clearing. Default-constructed state is valid; the evaluator sizes
 * everything on use.
 */
struct PlanScratch
{
    util::Arena arena;
    /**
     * Issue-sequence log of the last runPlanSchedule() call: one
     * kTrace-flagged op index per issued or fused node, in
     * accumulation order. Arena-backed — valid until the next
     * runPlanSchedule() on this scratch. Feed to
     * replayDynamicEnergy() to re-accumulate the energy of the same
     * event trace under a different cost table.
     */
    const std::uint16_t *issue_log = nullptr;
    std::size_t issue_log_len = 0;
    /** Power-of-two ring calendar of ready nodes, one slot per cycle. */
    std::vector<std::vector<dfg::NodeId>> ring;
    /** One bit per ring slot: set iff the slot holds pending nodes. */
    std::vector<std::uint64_t> ring_occ;
    /** Nodes processed in the current cycle (grows under chaining). */
    std::vector<dfg::NodeId> list;

    // Stamp-validated banked-memory state, indexed by bank id. A slot
    // is live only when its stamp matches the current tick (per-cycle
    // state) or cell epoch (per-cell state).
    std::vector<std::uint64_t> bank_used_stamp;
    std::vector<std::uint64_t> bank_queue_stamp;
    std::vector<std::uint32_t> bank_head;
    std::vector<std::uint32_t> bank_tail;
    std::vector<std::uint64_t> bank_count_stamp;
    std::vector<std::uint64_t> bank_count;

    /** Monotonic cycle stamp; never reset, so stale slots never match. */
    std::uint64_t tick = 0;
    /** Monotonic cell stamp. */
    std::uint64_t cell_epoch = 0;
};

/**
 * The partition-trace-invariant outputs of one event-loop run. The
 * trace depends on the partition factor only through the issue-slot
 * budgets, so a wider partition replays the identical event sequence
 * whenever none of the partition-scaled budgets ever ran dry:
 *
 *  - compute slots scale with the partition everywhere, so
 *    `compute_starved` must be false;
 *  - under MemoryMode::Simple the memory/DMA ports are fixed at one
 *    regardless of partition, so memory starvation is irrelevant;
 *    under Heterogeneous the ports scale too, so `mem_starved` must
 *    also be false;
 *  - under MemoryMode::Banked the bank assignment itself is
 *    `id % partition`, so traces are never reusable across partitions.
 *
 * When those hold, the chain driver reuses the ScheduleOut for every
 * larger partition and only re-runs finishPlanCell().
 */
struct ScheduleOut
{
    std::uint64_t ops = 0;
    std::uint64_t fused_ops = 0;
    double dynamic_energy_pj = 0.0;
    double makespan = 0.0;
    /** True iff a compute node ever waited for an issue slot. */
    bool compute_starved = false;
    /** True iff a memory/DMA node ever waited for a port or bank. */
    bool mem_starved = false;
};

/** Issue-log entry bits (low byte is the op-table index). */
constexpr std::uint16_t kTraceFused = 0x100;
/** The DMA burst-amortization factor applied to this issue. */
constexpr std::uint16_t kTraceDmaScaled = 0x200;

/**
 * Run the event loop for one design point. Issue order, accumulation
 * order, and every floating-point expression replay Simulator::run()
 * exactly. Also fills scratch.issue_log with the event trace.
 */
ScheduleOut runPlanSchedule(const SweepPlan &plan,
                            const CellCosts &costs,
                            const DesignPoint &dp,
                            PlanScratch &scratch);

/**
 * Re-accumulate dynamic energy for a recorded issue sequence under a
 * (possibly different) cost table. The event trace is invariant
 * across cells that share node_nm, clock, comm, chaining, partition,
 * memory mode, and extra-pipe degree — simplification then only
 * scales the per-issue energies (see deriveCellCosts), so replaying
 * the log in order reproduces the full run's dynamic_energy_pj bit
 * for bit at a fraction of the cost. The sweep driver uses this to
 * evaluate same-trace sibling chains from one recorded schedule.
 */
double replayDynamicEnergy(const std::uint16_t *log, std::size_t len,
                           const CellCosts &costs);

/**
 * Derive the full SimResult from a schedule trace: functional-unit /
 * SRAM / fabric leakage and area, initiation interval, and the energy,
 * power, and throughput metrics. Pure accounting — reusable across
 * partition factors when the trace is (see ScheduleOut). Under
 * MemoryMode::Banked the bank-pressure accounting is
 * partition-dependent, so traces must never be reused across
 * partitions there.
 */
SimResult finishPlanCell(const SweepPlan &plan, const CellCosts &costs,
                         const DesignPoint &dp, PlanScratch &scratch,
                         const ScheduleOut &sched);

/**
 * Evaluate one design point against the lowered plan
 * (runPlanSchedule + finishPlanCell). Bit-identical to
 * Simulator::run(dp) on the plan's source graph — the differential
 * suite (ctest -L sweepdiff) enforces this cell by cell.
 */
SimResult evalPlanCell(const SweepPlan &plan, const CellCosts &costs,
                       const DesignPoint &dp, PlanScratch &scratch);

} // namespace accelwall::aladdin

#endif // ACCELWALL_ALADDIN_SOA_ENGINE_HH
