#include "aladdin/fu_library.hh"

#include <algorithm>

#include "util/logging.hh"

namespace accelwall::aladdin
{

namespace
{

// 45nm / 32-bit characterization. Integer adder-class values follow
// standard-cell digests; FP values follow Galal & Horowitz-style FPU
// surveys; memory-port values assume a small banked scratchpad. Energy
// values are per operation including operand registers.
//
//                        delay   energy  leak    area    quad
//                        [ns]    [pJ]    [uW]    [um²]   width
const OpParams kParams[dfg::kNumOpTypes] = {
    /* Input  */        { 0.00,   0.00,    0.0,      0.0, false },
    /* Output */        { 0.00,   0.00,    0.0,      0.0, false },
    /* Add    */        { 0.60,   0.50,    4.0,    300.0, false },
    /* Sub    */        { 0.60,   0.50,    4.0,    300.0, false },
    /* Mul    */        { 2.50,   3.10,   30.0,   2500.0, true },
    /* Div    */        { 12.0,   8.00,   40.0,   3000.0, true },
    /* Cmp    */        { 0.40,   0.20,    2.0,    150.0, false },
    /* And    */        { 0.25,   0.10,    1.0,    100.0, false },
    /* Or     */        { 0.25,   0.10,    1.0,    100.0, false },
    /* Xor    */        { 0.28,   0.12,    1.0,    110.0, false },
    /* Shift  */        { 0.40,   0.15,    2.0,    200.0, false },
    /* Select */        { 0.30,   0.15,    2.0,    150.0, false },
    /* Max    */        { 0.60,   0.40,    3.0,    250.0, false },
    /* Min    */        { 0.60,   0.40,    3.0,    250.0, false },
    /* FAdd   */        { 3.00,   0.90,   20.0,   1500.0, false },
    /* FSub   */        { 3.00,   0.90,   20.0,   1500.0, false },
    /* FMul   */        { 3.50,   3.70,   40.0,   3000.0, true },
    /* FDiv   */        { 15.0,   15.0,   60.0,   5000.0, true },
    /* Sqrt   */        { 15.0,   15.0,   60.0,   5000.0, true },
    /* Exp    */        { 20.0,   25.0,   80.0,   8000.0, true },
    /* Load   */        { 1.00,   2.00,    5.0,    400.0, false },
    /* Store  */        { 1.00,   2.50,    5.0,    400.0, false },
    /* Lut    */        { 0.80,   0.80,    6.0,    500.0, false },
};

} // namespace

const OpParams &
opParams(dfg::OpType op)
{
    int idx = static_cast<int>(op);
    if (idx < 0 || idx >= dfg::kNumOpTypes)
        panic("opParams: bad op type ", idx);
    return kParams[idx];
}

int
simplifiedWidth(int simplification_degree)
{
    if (simplification_degree < 1)
        fatal("simplification degree must be >= 1, got ",
              simplification_degree);
    return std::max(8, 32 - 2 * (simplification_degree - 1));
}

double
widthScale(dfg::OpType op, int simplification_degree)
{
    double w = static_cast<double>(simplifiedWidth(simplification_degree));
    double lin = w / 32.0;
    return opParams(op).quadratic_width ? lin * lin : lin;
}

} // namespace accelwall::aladdin
