#include "aladdin/design_point.hh"

#include <sstream>

#include "util/format.hh"

namespace accelwall::aladdin
{

const char *
memoryModeName(MemoryMode mode)
{
    switch (mode) {
      case MemoryMode::Simple: return "simple";
      case MemoryMode::Banked: return "banked";
      case MemoryMode::Heterogeneous: return "heterogeneous";
    }
    return "?";
}

const char *
commModeName(CommMode mode)
{
    switch (mode) {
      case CommMode::Fifo: return "fifo";
      case CommMode::Concurrent: return "concurrent";
      case CommMode::Dma: return "dma";
    }
    return "?";
}

std::string
DesignPoint::str() const
{
    std::ostringstream oss;
    oss << fmtNode(node_nm) << "/P" << partition << "/S" << simplification
        << (chaining ? "/het" : "/nohet");
    // Only non-default memory/communication modes are spelled out.
    if (memory != MemoryMode::Heterogeneous)
        oss << "/mem:" << memoryModeName(memory);
    if (comm != CommMode::Concurrent)
        oss << "/comm:" << commModeName(comm);
    return oss.str();
}

SweepConfig
SweepConfig::paper()
{
    SweepConfig cfg;
    cfg.nodes = { 45.0, 32.0, 22.0, 14.0, 10.0, 7.0, 5.0 };
    for (int p = 1; p <= 524288; p *= 2)
        cfg.partitions.push_back(p);
    for (int s = 1; s <= 13; ++s)
        cfg.simplifications.push_back(s);
    return cfg;
}

SweepConfig
SweepConfig::quick()
{
    SweepConfig cfg;
    cfg.nodes = { 45.0, 14.0, 5.0 };
    cfg.partitions = { 1, 4, 16, 64, 256 };
    cfg.simplifications = { 1, 5, 9, 13 };
    return cfg;
}

} // namespace accelwall::aladdin
