#include "aladdin/soa_engine.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "aladdin/fu_library.hh"
#include "cmos/scaling.hh"
#include "util/logging.hh"

/*
 * runPlanSchedule() + finishPlanCell() are a line-for-line replay of
 * Simulator::run() over flat data. Every floating-point expression
 * below is copied verbatim from simulator.cc, and the node issue order
 * is reproduced exactly (ring calendar == std::map buckets, index
 * FIFOs == std::deques, stamped arrays == unordered_maps), so the
 * accumulated SimResult is bit-identical. When touching simulator.cc,
 * mirror the change here — the `sweepdiff` differential suite will
 * catch any divergence.
 *
 * The schedule/accounting split exists for the partition axis: when
 * none of the partition-scaled slot budgets ever ran dry (see the
 * ScheduleOut contract in soa_engine.hh), a wider partition cannot
 * change the event trace, so the chain driver replays the cached
 * ScheduleOut through finishPlanCell() instead of re-running the
 * event loop.
 */

namespace accelwall::aladdin
{

namespace
{

using dfg::NodeId;
using dfg::OpType;

/** Intrusive-list terminator for the per-bank queues. */
constexpr std::uint32_t kNil = 0xffffffffu;

/** Fixed costs of the optional DMA engine (45nm values). */
constexpr double kDmaAreaUm2 = 3000.0;
constexpr double kDmaLeakUw = 20.0;

/** Fixed costs of the shared-FIFO fabric (45nm values). */
constexpr double kFifoAreaUm2 = 200.0;
constexpr double kFifoLeakUw = 1.0;

std::size_t
nextPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/**
 * True when 1.0/v is exact, i.e. v is a power of two. Division by such
 * a v equals multiplication by its reciprocal bit for bit, which turns
 * the per-resolution cycle quantization into a multiply on the common
 * 1 GHz / 2 GHz clock grids.
 */
bool
hasExactReciprocal(double v)
{
    int e;
    return std::frexp(v, &e) == 0.5;
}

} // namespace

SweepPlan::SweepPlan(const dfg::Graph &graph,
                     const dfg::Analysis &analysis)
{
    num_nodes = graph.numNodes();
    op.resize(num_nodes);
    flags.resize(num_nodes);
    pred_count.resize(num_nodes);
    succ_off.resize(num_nodes + 1);
    succ.reserve(graph.numEdges());
    max_working_set = analysis.max_working_set;

    meta.resize(num_nodes);
    for (NodeId id = 0; id < num_nodes; ++id) {
        OpType o = graph.op(id);
        op[id] = static_cast<std::uint8_t>(o);
        std::uint8_t f = 0;
        if (dfg::isVariable(o))
            f |= kVariable;
        if (dfg::isMemory(o))
            f |= kMemory;
        if (dfg::isCompute(o))
            f |= kCompute;
        if (o == OpType::Load && graph.preds(id).empty())
            f |= kRootLoad;
        flags[id] = f;
        meta[id] = static_cast<std::uint16_t>(
            op[id] | static_cast<std::uint16_t>(f) << 8);
        pred_count[id] =
            static_cast<std::uint32_t>(graph.preds(id).size());
        if (pred_count[id] == 0)
            roots.push_back(id);
        succ_off[id] = static_cast<std::uint32_t>(succ.size());
        // Edge order must match Graph::succs() exactly: the legacy
        // scheduler resolves successors in this order, and resolution
        // order decides bucket order decides accumulation order.
        for (NodeId s : graph.succs(id))
            succ.push_back(s);
        ++op_count[static_cast<int>(o)];
        if (dfg::isMemory(o))
            mem_nodes.push_back(id);
    }
    succ_off[num_nodes] = static_cast<std::uint32_t>(succ.size());
}

CellCosts
deriveCellCosts(const DesignPoint &dp)
{
    if (dp.clock_ghz <= 0.0)
        fatal("deriveCellCosts: clock must be positive");

    CellCosts cc;
    const auto &scaling = cmos::ScalingTable::instance();
    cc.period = 1.0 / dp.clock_ghz; // ns
    const units::Nanometers node{dp.node_nm};
    const double delay_rel = scaling.gateDelayRel(node);
    const double dyn_rel = scaling.dynamicEnergy(node);
    cc.leak_rel = scaling.leakagePower(node);
    cc.density = scaling.densityGain(node);
    cc.extra_pipe =
        std::max(0, dp.simplification - Simulator::kDeepPipelineDegree);
    cc.fifo = dp.comm == CommMode::Fifo;
    cc.dma = dp.comm == CommMode::Dma;
    const int comm_latency = cc.fifo ? 1 : 0;

    cc.max_latency = 1;
    for (int i = 0; i < dfg::kNumOpTypes; ++i) {
        OpType op = static_cast<OpType>(i);
        const OpParams &p = opParams(op);
        CellCosts::OpCost &c = cc.op[i];
        c.delay_ns = p.delay_ns * delay_rel;
        double ws = widthScale(op, dp.simplification);
        c.energy_pj = p.energy_pj * ws * dyn_rel;
        double lin_ws =
            static_cast<double>(simplifiedWidth(dp.simplification)) /
            32.0;
        c.reg_energy_pj = Simulator::kRegisterEnergyPj * lin_ws *
                          dyn_rel * (1.0 + cc.extra_pipe);
        if (cc.fifo)
            c.reg_energy_pj *= 0.85; // narrow shared bus
        if (dfg::isVariable(op)) {
            c.latency_cycles = 0;
            c.chainable = false;
        } else {
            c.latency_cycles = std::max(
                1, static_cast<int>(std::ceil(c.delay_ns / cc.period -
                                              1e-12)));
            if (dfg::isCompute(op))
                c.latency_cycles += cc.extra_pipe;
            c.latency_cycles += comm_latency;
            c.chainable = dp.chaining && !cc.fifo &&
                          dfg::isCompute(op) && cc.extra_pipe == 0 &&
                          c.delay_ns < cc.period;
        }
        c.issue_energy_pj = c.energy_pj + c.reg_energy_pj;
        c.latency_ns = c.latency_cycles * cc.period;
        cc.max_latency = std::max(cc.max_latency, c.latency_cycles);
    }
    return cc;
}

namespace
{

/**
 * Per-node schedule state, interleaved so the two random accesses per
 * resolved edge (ready-time max, in-degree decrement) hit one cache
 * line instead of two arrays.
 */
struct NodeState
{
    double ready_ns;
    std::uint32_t unresolved;
    std::uint32_t pad_;
};

template <bool kBank, bool kDma>
ScheduleOut
runPlanScheduleImpl(const SweepPlan &plan, const CellCosts &cc,
                    const DesignPoint &dp, PlanScratch &scratch)
{
    const double period = cc.period;
    const double inv_period = 1.0 / period;
    const bool exact_inv = hasExactReciprocal(period);
    const int mem_ports =
        dp.memory == MemoryMode::Simple ? 1 : dp.partition;
    const std::size_t n = plan.num_nodes;
    const std::uint16_t *const meta = plan.meta.data();
    const std::uint32_t *const succ_off = plan.succ_off.data();
    const NodeId *const succ = plan.succ.data();
    const CellCosts::OpCost *const opcost = cc.op.data();

    // --- Scratch: one arena reset, no per-node allocation ------------
    scratch.arena.reset();
    ++scratch.cell_epoch;
    const std::uint64_t epoch = scratch.cell_epoch;

    auto *ns = scratch.arena.alloc<NodeState>(n);

    // Issue-sequence log: every node issues (or fuses) at most once,
    // so capacity n suffices.
    auto *log = scratch.arena.alloc<std::uint16_t>(n);
    std::size_t log_len = 0;

    // Index FIFOs replacing the legacy std::deques. A node enters each
    // queue at most once, so capacity n suffices and heads only move
    // forward. Entries carry the op index in the high half so serving
    // skips the random meta[] load.
    auto *wq_compute = scratch.arena.alloc<std::uint64_t>(n);
    auto *wq_memory = scratch.arena.alloc<std::uint64_t>(n);
    auto *wq_dma = scratch.arena.alloc<std::uint64_t>(n);
    std::size_t wqc_head = 0, wqc_tail = 0;
    std::size_t wqm_head = 0, wqm_tail = 0;
    std::size_t wqd_head = 0, wqd_tail = 0;

    // Ring calendar replacing the std::map cycle buckets: a ready time
    // never leads the current cycle by more than the largest op
    // latency (+1 for mid-cycle spill-over), so a power-of-two ring
    // indexed by `cycle & mask` holds every pending bucket.
    const std::size_t ring_size =
        nextPow2(static_cast<std::size_t>(cc.max_latency) + 2);
    const std::size_t ring_mask = ring_size - 1;
    if (scratch.ring.size() < ring_size)
        scratch.ring.resize(ring_size);
    for (auto &slot : scratch.ring)
        slot.clear();
    std::vector<NodeId> *const ring = scratch.ring.data();
    // Occupancy bitmap over the ring: nextBucket() is a countr_zero
    // scan over words instead of a slot-by-slot emptiness walk.
    const std::size_t ring_words = (ring_size + 63) >> 6;
    if (scratch.ring_occ.size() < ring_words)
        scratch.ring_occ.resize(ring_words);
    std::uint64_t *const occ = scratch.ring_occ.data();
    std::fill_n(occ, ring_words, 0);
    std::vector<NodeId> &list = scratch.list;
    list.clear();
    std::size_t pending = 0;

    // Banked-memory state: stamped flat arrays plus an intrusive
    // per-bank FIFO threaded through bank_next. Only touched under
    // MemoryMode::Banked; stamp validation makes per-cell clearing of
    // the (partition-sized) tables unnecessary.
    std::uint32_t *bank_next = nullptr;
    std::uint32_t *bw = nullptr; // ring buffer of bank ids with waiters
    std::size_t bw_mask = 0;
    std::size_t bw_head = 0, bw_tail = 0;
    if constexpr (kBank) {
        const auto banks = static_cast<std::size_t>(dp.partition);
        if (scratch.bank_used_stamp.size() < banks) {
            scratch.bank_used_stamp.resize(banks, 0);
            scratch.bank_queue_stamp.resize(banks, 0);
            scratch.bank_head.resize(banks, 0);
            scratch.bank_tail.resize(banks, 0);
        }
        bank_next = scratch.arena.alloc<std::uint32_t>(n);
        // Live waiting banks <= queued memory nodes, each queued once.
        const std::size_t bw_cap = nextPow2(plan.mem_nodes.size() + 1);
        bw = scratch.arena.alloc<std::uint32_t>(bw_cap);
        bw_mask = bw_cap - 1;
    }

    const std::uint32_t *const pred_count = plan.pred_count.data();
    for (std::size_t i = 0; i < n; ++i) {
        ns[i].ready_ns = 0.0;
        ns[i].unresolved = pred_count[i];
    }
    for (NodeId id : plan.roots) {
        ring[0].push_back(id);
        ++pending;
    }
    if (pending > 0)
        occ[0] |= 1;

    ScheduleOut out;
    std::int64_t current_cycle = 0;
    bool in_cycle = false;

    auto bucketPush = [&](std::int64_t c, NodeId id) {
        if (c - current_cycle >=
            static_cast<std::int64_t>(ring_size)) [[unlikely]] {
            panic("runPlanSchedule: ring calendar overflow (bucket ",
                  c, " at cycle ", current_cycle, ")");
        }
        const std::size_t sl = static_cast<std::size_t>(c) & ring_mask;
        ring[sl].push_back(id);
        occ[sl >> 6] |= std::uint64_t{1} << (sl & 63);
        ++pending;
    };

    auto propagate = [&](NodeId id, double finish) {
        out.makespan = std::max(out.makespan, finish);
        const std::uint32_t lo = succ_off[id];
        const std::uint32_t hi = succ_off[id + 1];
        for (std::uint32_t s = lo; s < hi; ++s) {
            NodeId su = succ[s];
            NodeState &st = ns[su];
            st.ready_ns = std::max(st.ready_ns, finish);
            if (--st.unresolved == 0) {
                const double q = exact_inv
                                     ? st.ready_ns * inv_period
                                     : st.ready_ns / period;
                // Ready times are never negative, so truncation is
                // floor() bit for bit — minus the libm call the
                // baseline SSE2 target would emit.
                std::int64_t c = static_cast<std::int64_t>(q + 1e-9);
                if (c == current_cycle && in_cycle)
                    list.push_back(su);
                else
                    bucketPush(std::max(c, current_cycle), su);
            }
        }
    };

    auto any_waiting = [&] {
        return wqc_head != wqc_tail || wqm_head != wqm_tail ||
               wqd_head != wqd_tail || bw_head != bw_tail;
    };

    auto nextBucket = [&]() -> std::int64_t {
        const std::size_t start =
            static_cast<std::size_t>(current_cycle) & ring_mask;
        std::size_t w = start >> 6;
        std::uint64_t word =
            occ[w] & (~std::uint64_t{0} << (start & 63));
        // <= ring_words passes: the start word is revisited unmasked
        // after the wrap to pick up slots behind the start index.
        for (std::size_t k = 0; k <= ring_words; ++k) {
            if (word) {
                const std::size_t idx =
                    (w << 6) | static_cast<std::size_t>(
                                   std::countr_zero(word));
                return current_cycle +
                       static_cast<std::int64_t>((idx - start) &
                                                 ring_mask);
            }
            w = w + 1 == ring_words ? 0 : w + 1;
            word = occ[w];
        }
        panic("runPlanSchedule: pending nodes but empty calendar");
    };

    while (pending > 0 || any_waiting()) {
        std::int64_t cycle;
        if (any_waiting()) {
            cycle = current_cycle + 1;
            if (pending > 0)
                cycle = std::min(cycle, nextBucket());
        } else {
            cycle = nextBucket();
        }
        current_cycle = std::max(cycle, current_cycle);

        list.clear();
        {
            const std::size_t sl =
                static_cast<std::size_t>(current_cycle) & ring_mask;
            list.swap(ring[sl]);
            occ[sl >> 6] &= ~(std::uint64_t{1} << (sl & 63));
            pending -= list.size();
        }
        in_cycle = true;
        // Globally unique per (cell, cycle): stale bank_used stamps
        // from any earlier cell or cycle can never match.
        const std::uint64_t used_tick = ++scratch.tick;

        int compute_slots = dp.partition;
        int memory_slots = mem_ports;
        int dma_slots = kDma ? 2 * mem_ports : 0;
        double boundary = static_cast<double>(current_cycle) * period;

        auto issue = [&](NodeId id, std::uint16_t op) {
            const CellCosts::OpCost &c = opcost[op];
            double energy = c.issue_energy_pj;
            if constexpr (kDma) {
                if (meta[id] >> 8 & SweepPlan::kRootLoad) {
                    energy *= 0.8; // burst amortization
                    op |= kTraceDmaScaled;
                }
            }
            log[log_len++] = op;
            out.dynamic_energy_pj += energy;
            propagate(id, boundary + c.latency_ns);
        };

        // First serve work that was starved in earlier cycles.
        while (wqc_head != wqc_tail && compute_slots > 0) {
            const std::uint64_t e = wq_compute[wqc_head++];
            --compute_slots;
            issue(static_cast<NodeId>(e), static_cast<std::uint16_t>(e >> 32));
        }
        if constexpr (kDma) {
            while (wqd_head != wqd_tail && dma_slots > 0) {
                const std::uint64_t e = wq_dma[wqd_head++];
                --dma_slots;
                issue(static_cast<NodeId>(e),
                      static_cast<std::uint16_t>(e >> 32));
            }
        }
        if constexpr (kBank) {
            // Each bank serves one access per cycle, within the port
            // budget. Banks queue round-robin.
            std::size_t banks_today = bw_tail - bw_head;
            for (std::size_t i = 0;
                 i < banks_today && memory_slots > 0; ++i) {
                std::uint32_t bank = bw[(bw_head++) & bw_mask];
                std::uint32_t id = scratch.bank_head[bank];
                std::uint32_t next = bank_next[id];
                scratch.bank_head[bank] = next;
                --memory_slots;
                scratch.bank_used_stamp[bank] = used_tick;
                issue(id, meta[id] & 0xff);
                if (next != kNil)
                    bw[(bw_tail++) & bw_mask] = bank;
                else
                    scratch.bank_queue_stamp[bank] = 0; // erase queue
            }
        } else {
            while (wqm_head != wqm_tail && memory_slots > 0) {
                const std::uint64_t e = wq_memory[wqm_head++];
                --memory_slots;
                issue(static_cast<NodeId>(e),
                      static_cast<std::uint16_t>(e >> 32));
            }
        }

        // Then the nodes whose inputs became available this cycle. The
        // list may grow as chained ops finish mid-cycle.
        for (std::size_t i = 0; i < list.size(); ++i) {
            NodeId id = list[i];
            const std::uint16_t m = meta[id];
            const std::uint8_t f = static_cast<std::uint8_t>(m >> 8);
            const CellCosts::OpCost &c = opcost[m & 0xff];

            if (f & SweepPlan::kVariable) {
                // Pseudo nodes are free and instantaneous.
                propagate(id, ns[id].ready_ns);
                continue;
            }

            double ready = ns[id].ready_ns;
            if (c.chainable && ready >= boundary &&
                (ready - boundary) + c.delay_ns <= period + 1e-12) {
                // Fuse into the producer's cycle: no issue slot, no
                // pipeline-register write.
                ++out.fused_ops;
                log[log_len++] =
                    static_cast<std::uint16_t>((m & 0xff) | kTraceFused);
                out.dynamic_energy_pj += c.energy_pj;
                propagate(id, ready + c.delay_ns);
                continue;
            }

            if (ready > boundary + 1e-12) {
                // Mid-cycle ready but unchainable: wait for the next
                // boundary.
                bucketPush(current_cycle + 1, id);
                continue;
            }

            bool is_mem = (f & SweepPlan::kMemory) != 0;
            if (!is_mem) {
                if (compute_slots > 0) {
                    --compute_slots;
                    issue(id, m & 0xff);
                } else {
                    wq_compute[wqc_tail++] =
                        id | std::uint64_t(m & 0xff) << 32;
                    out.compute_starved = true;
                }
                continue;
            }

            // Memory access routing.
            if constexpr (kDma) {
                if (f & SweepPlan::kRootLoad) {
                    if (dma_slots > 0) {
                        --dma_slots;
                        issue(id, m & 0xff);
                    } else {
                        wq_dma[wqd_tail++] =
                            id | std::uint64_t(m & 0xff) << 32;
                        out.mem_starved = true;
                    }
                    continue;
                }
            }
            if constexpr (kBank) {
                auto bank = static_cast<std::uint32_t>(
                    id % static_cast<NodeId>(dp.partition));
                bool queued = scratch.bank_queue_stamp[bank] == epoch;
                bool used =
                    scratch.bank_used_stamp[bank] == used_tick;
                if (!queued && !used && memory_slots > 0) {
                    --memory_slots;
                    scratch.bank_used_stamp[bank] = used_tick;
                    issue(id, m & 0xff);
                } else {
                    out.mem_starved = true;
                    if (!queued) {
                        bw[(bw_tail++) & bw_mask] = bank;
                        scratch.bank_queue_stamp[bank] = epoch;
                        scratch.bank_head[bank] = id;
                    } else {
                        bank_next[scratch.bank_tail[bank]] = id;
                    }
                    scratch.bank_tail[bank] = id;
                    bank_next[id] = kNil;
                }
                continue;
            }
            if (memory_slots > 0) {
                --memory_slots;
                issue(id, m & 0xff);
            } else {
                wq_memory[wqm_tail++] =
                    id | std::uint64_t(m & 0xff) << 32;
                out.mem_starved = true;
            }
        }
        in_cycle = false;
    }
    // Every issued or fused node appends exactly one log entry, so the
    // op count falls out of the trace length for free.
    out.ops = log_len;
    scratch.issue_log = log;
    scratch.issue_log_len = log_len;
    return out;
}

} // namespace

double
replayDynamicEnergy(const std::uint16_t *log, std::size_t len,
                    const CellCosts &costs)
{
    // Same additions in the same order as the recorded run, with this
    // cost table's values — bit-identical to re-running the schedule
    // under any cost table that preserves the event trace.
    double e = 0.0;
    for (std::size_t i = 0; i < len; ++i) {
        const std::uint16_t ent = log[i];
        const CellCosts::OpCost &c = costs.op[ent & 0xff];
        if (ent & kTraceFused) {
            e += c.energy_pj;
        } else {
            double energy = c.issue_energy_pj;
            if (ent & kTraceDmaScaled)
                energy *= 0.8; // burst amortization
            e += energy;
        }
    }
    return e;
}

ScheduleOut
runPlanSchedule(const SweepPlan &plan, const CellCosts &cc,
                const DesignPoint &dp, PlanScratch &scratch)
{
    if (dp.partition < 1)
        fatal("runPlanSchedule: partition factor must be >= 1");
    if (dp.clock_ghz <= 0.0)
        fatal("runPlanSchedule: clock must be positive");
    // Monomorphise the event loop on the two flags that add work to
    // the per-node serving path; the common (false, false) instance
    // carries no banked or DMA branches at all.
    if (dp.memory == MemoryMode::Banked)
        return cc.dma
                   ? runPlanScheduleImpl<true, true>(plan, cc, dp, scratch)
                   : runPlanScheduleImpl<true, false>(plan, cc, dp,
                                                      scratch);
    return cc.dma
               ? runPlanScheduleImpl<false, true>(plan, cc, dp, scratch)
               : runPlanScheduleImpl<false, false>(plan, cc, dp, scratch);
}

SimResult
finishPlanCell(const SweepPlan &plan, const CellCosts &cc,
               const DesignPoint &dp, PlanScratch &scratch,
               const ScheduleOut &sched)
{
    const double period = cc.period;
    const int mem_ports =
        dp.memory == MemoryMode::Simple ? 1 : dp.partition;
    const bool bank_conflicts = dp.memory == MemoryMode::Banked;

    SimResult res;
    res.ops = sched.ops;
    res.fused_ops = sched.fused_ops;
    res.dynamic_energy_pj = sched.dynamic_energy_pj;

    // --- Account area, leakage, energy, derived metrics --------------
    // Functional units: one per lane and op class, but never more units
    // than the kernel has operations of that class.
    double fu_leak_uw = 0.0, fu_area_um2 = 0.0;
    for (int i = 0; i < dfg::kNumOpTypes; ++i) {
        OpType op = static_cast<OpType>(i);
        if (plan.op_count[i] == 0 || dfg::isVariable(op))
            continue;
        double instances = static_cast<double>(
            std::min<std::uint64_t>(plan.op_count[i],
                                    static_cast<std::uint64_t>(
                                        dp.partition)));
        const OpParams &p = opParams(op);
        double ws = widthScale(op, dp.simplification);
        fu_leak_uw += instances * p.leak_uw * ws;
        fu_area_um2 += instances * p.area_um2 * ws;
    }

    double word_bytes =
        static_cast<double>(simplifiedWidth(dp.simplification)) / 8.0;
    double sram_bytes =
        static_cast<double>(plan.max_working_set) * word_bytes;
    double bank_count;
    switch (dp.memory) {
      case MemoryMode::Simple:
        bank_count = 1.0;
        break;
      case MemoryMode::Banked:
        bank_count = 0.75 * dp.partition; // plain stripes
        break;
      case MemoryMode::Heterogeneous:
      default:
        bank_count = static_cast<double>(dp.partition);
        break;
    }
    double mem_leak_uw =
        sram_bytes * Simulator::kSramLeakUwPerByte +
        bank_count * Simulator::kBankLeakUw;
    double mem_area_um2 =
        sram_bytes * Simulator::kSramAreaUm2PerByte +
        bank_count * Simulator::kBankAreaUm2;

    double fabric_leak_uw = 0.0, fabric_area_um2 = 0.0;
    if (cc.fifo) {
        fabric_leak_uw += kFifoLeakUw;
        fabric_area_um2 += kFifoAreaUm2;
    }
    if (cc.dma) {
        fabric_leak_uw += kDmaLeakUw;
        fabric_area_um2 += kDmaAreaUm2;
    }

    res.leakage_power_uw =
        (fu_leak_uw + mem_leak_uw + fabric_leak_uw) * cc.leak_rel;
    res.area_um2 =
        (fu_area_um2 + mem_area_um2 + fabric_area_um2) / cc.density;

    res.runtime_ns = std::max(sched.makespan, period);
    res.cycles = static_cast<std::uint64_t>(
        std::ceil(res.runtime_ns / period - 1e-9));

    res.lane_utilization =
        static_cast<double>(res.ops - res.fused_ops) /
        (static_cast<double>(res.cycles) * 2.0 * dp.partition);

    // Steady-state initiation interval: resource occupancy alone.
    std::uint64_t compute_issues = res.ops - res.fused_ops;
    std::uint64_t mem_ops = 0;
    std::uint64_t busiest_bank = 0;
    if (bank_conflicts) {
        // Stamped per-bank counters: a fresh epoch per call makes
        // stale counts from earlier cells invisible.
        ++scratch.cell_epoch;
        const std::uint64_t epoch = scratch.cell_epoch;
        const auto banks = static_cast<std::size_t>(dp.partition);
        if (scratch.bank_count_stamp.size() < banks) {
            scratch.bank_count_stamp.resize(banks, 0);
            scratch.bank_count.resize(banks, 0);
        }
        for (NodeId id : plan.mem_nodes) {
            ++mem_ops;
            auto bank = static_cast<std::uint32_t>(
                id % static_cast<NodeId>(dp.partition));
            std::uint64_t count;
            if (scratch.bank_count_stamp[bank] == epoch) {
                count = ++scratch.bank_count[bank];
            } else {
                scratch.bank_count_stamp[bank] = epoch;
                scratch.bank_count[bank] = 1;
                count = 1;
            }
            busiest_bank = std::max(busiest_bank, count);
        }
    } else {
        mem_ops = plan.mem_nodes.size();
    }
    compute_issues -= std::min(compute_issues, mem_ops);
    std::uint64_t ii_compute =
        (compute_issues + dp.partition - 1) / dp.partition;
    std::uint64_t ii_mem =
        (mem_ops + mem_ports - 1) / std::max(mem_ports, 1);
    if (bank_conflicts)
        ii_mem = std::max(ii_mem, busiest_bank);
    res.initiation_interval = std::max<std::uint64_t>(
        {1, ii_compute, ii_mem});
    res.pipelined_throughput_ops =
        static_cast<double>(res.ops) /
        (static_cast<double>(res.initiation_interval) * period * 1e-9);

    // 1 uW * 1 ns = 1e-3 pJ.
    double leak_energy_pj =
        res.leakage_power_uw * res.runtime_ns * 1e-3;
    res.energy_pj = res.dynamic_energy_pj + leak_energy_pj;
    // 1 pJ / 1 ns = 1 mW.
    res.power_mw = res.energy_pj / res.runtime_ns;
    res.throughput_ops =
        static_cast<double>(res.ops) / (res.runtime_ns * 1e-9);
    res.efficiency_opj =
        static_cast<double>(res.ops) / (res.energy_pj * 1e-12);
    return res;
}

SimResult
evalPlanCell(const SweepPlan &plan, const CellCosts &cc,
             const DesignPoint &dp, PlanScratch &scratch)
{
    const ScheduleOut sched = runPlanSchedule(plan, cc, dp, scratch);
    return finishPlanCell(plan, cc, dp, scratch, sched);
}

} // namespace accelwall::aladdin
