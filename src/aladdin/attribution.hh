/**
 * @file
 * Gain attribution (Section VI, Figure 14).
 *
 * For each kernel the paper reports the optimal accelerator's gain over
 * a plain 45nm baseline and splits it between CMOS saving,
 * heterogeneity, simplification, and partitioning; CSR is then the part
 * of the gain that is *not* CMOS-driven — heterogeneity and
 * simplification — since "both CMOS saving and partitioning (i.e.,
 * using more transistors for parallelization) are inherently CMOS
 * dependent".
 *
 * We attribute by walking the knobs from the baseline
 * (45nm, partition 1, simplification 1, no chaining) to the optimum in
 * a fixed order — CMOS node, heterogeneity, partitioning,
 * simplification — and measuring each step's marginal share of the
 * total log-gain.
 */

#ifndef ACCELWALL_ALADDIN_ATTRIBUTION_HH
#define ACCELWALL_ALADDIN_ATTRIBUTION_HH

#include "aladdin/design_point.hh"
#include "aladdin/simulator.hh"
#include "aladdin/sweep.hh"

namespace accelwall::aladdin
{

/** Which gain Figure 14 plots. */
enum class Target
{
    Performance,
    EnergyEfficiency,
};

/** Human-readable target name. */
const char *targetName(Target target);

/** The Figure 14 decomposition for one kernel. */
struct Attribution
{
    Target target = Target::Performance;
    /** The optimal design point found by the sweep. */
    DesignPoint best;
    /** Gain of the optimum over the plain 45nm baseline. */
    double total_gain = 1.0;
    /**
     * Chip specialization return: the CMOS-independent share,
     * exp(log-gain of heterogeneity + simplification).
     */
    double csr = 1.0;
    /** Fractions of the total log-gain, each in [0,1], summing to 1. */
    double frac_cmos = 0.0;
    double frac_heterogeneity = 0.0;
    double frac_partitioning = 0.0;
    double frac_simplification = 0.0;
};

/**
 * Sweep the grid for @p target, locate the optimum, and decompose its
 * gain. The baseline is (45nm, partition 1, simplification 1, no
 * chaining) at the sweep's clock.
 */
Attribution attribute(const Simulator &sim, const SweepConfig &cfg,
                      Target target);

} // namespace accelwall::aladdin

#endif // ACCELWALL_ALADDIN_ATTRIBUTION_HH
