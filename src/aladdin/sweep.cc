#include "aladdin/sweep.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <utility>
#include <sstream>
#include <string_view>

#include "aladdin/soa_engine.hh"
#include "util/faultinject.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/thread_annotations.hh"

namespace accelwall::aladdin
{

namespace
{

bool
closeRel(double a, double b, double tol = 1e-3)
{
    return std::fabs(a - b) <= tol * std::max(std::fabs(a),
                                              std::fabs(b));
}

/**
 * %.17g round-trips IEEE binary64 exactly, so checkpointed cells
 * restore to bit-identical doubles — the resume bit-identity guarantee
 * rests on this.
 */
std::string
fmtExact(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char ch : s) {
        h ^= ch;
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Identifies the (kernel, grid) a checkpoint belongs to: resuming with
 * a different kernel or sweep configuration must be rejected, not
 * silently mixed.
 */
std::string
configFingerprint(const Simulator &sim, const SweepConfig &cfg)
{
    std::ostringstream key;
    key << sim.graph().name() << '|' << sim.graph().numNodes() << '|'
        << sim.graph().numEdges() << '|';
    for (double n : cfg.nodes)
        key << fmtExact(n) << ',';
    key << '|';
    for (int p : cfg.partitions)
        key << p << ',';
    key << '|';
    for (int s : cfg.simplifications)
        key << s << ',';
    key << '|' << cfg.chaining << '|' << fmtExact(cfg.clock_ghz);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a(key.str())));
    return buf;
}

std::string
serializeCell(const SimResult &r)
{
    std::ostringstream oss;
    oss << r.cycles << ' ' << fmtExact(r.runtime_ns) << ' '
        << fmtExact(r.dynamic_energy_pj) << ' '
        << fmtExact(r.leakage_power_uw) << ' ' << fmtExact(r.energy_pj)
        << ' ' << fmtExact(r.power_mw) << ' ' << fmtExact(r.area_um2)
        << ' ' << r.ops << ' ' << r.fused_ops << ' '
        << fmtExact(r.throughput_ops) << ' '
        << fmtExact(r.efficiency_opj) << ' '
        << fmtExact(r.lane_utilization) << ' ' << r.initiation_interval
        << ' ' << fmtExact(r.pipelined_throughput_ops);
    return oss.str();
}

bool
parseCell(const std::string &text, SimResult &r)
{
    std::istringstream iss(text);
    iss >> r.cycles >> r.runtime_ns >> r.dynamic_energy_pj >>
        r.leakage_power_uw >> r.energy_pj >> r.power_mw >> r.area_um2 >>
        r.ops >> r.fused_ops >> r.throughput_ops >> r.efficiency_opj >>
        r.lane_utilization >> r.initiation_interval >>
        r.pipelined_throughput_ops;
    return !iss.fail();
}

std::string
oneLine(std::string s)
{
    std::replace(s.begin(), s.end(), '\n', ' ');
    std::replace(s.begin(), s.end(), '\r', ' ');
    return s;
}

/** Set every cell of chain @p c to its grid coordinates + zero result. */
void
fillChainDp(const SweepConfig &cfg, std::size_t c, SweepPoint *chain_out)
{
    const std::size_t n_simp = cfg.simplifications.size();
    double node = cfg.nodes[c / n_simp];
    int simp = cfg.simplifications[c % n_simp];
    for (std::size_t pi = 0; pi < cfg.partitions.size(); ++pi) {
        SweepPoint &cell = chain_out[pi];
        cell = SweepPoint{};
        cell.dp.node_nm = node;
        cell.dp.partition = cfg.partitions[pi];
        cell.dp.simplification = simp;
        cell.dp.chaining = cfg.chaining;
        cell.dp.clock_ghz = cfg.clock_ghz;
    }
}

/** Serial partition chain with the plateau short-circuit; may throw. */
void
evalChain(const Simulator &sim, const SweepConfig &cfg, std::size_t c,
          SweepPoint *chain_out)
{
    fillChainDp(cfg, c, chain_out);
    bool plateaued = false;
    SimResult plateau;
    int stable = 0;
    for (std::size_t pi = 0; pi < cfg.partitions.size(); ++pi) {
        SimResult res;
        if (plateaued) {
            res = plateau;
        } else {
            res = sim.run(chain_out[pi].dp);
            if (pi > 0 && closeRel(res.runtime_ns, plateau.runtime_ns) &&
                closeRel(res.energy_pj, plateau.energy_pj)) {
                if (++stable >= 2)
                    plateaued = true;
            } else {
                stable = 0;
            }
            plateau = res;
        }
        chain_out[pi].res = res;
    }
}

/**
 * One recorded schedule trace, shared between sibling chains whose
 * event sequences provably coincide (same node_nm / clock / comm /
 * chaining / partition / memory mode / extra-pipe degree — see
 * replayDynamicEnergy()). `issues` owns a copy of the engine's
 * arena-backed issue log.
 */
struct CellTrace
{
    ScheduleOut sched;
    std::vector<std::uint16_t> issues;
    bool valid = false;
};

/** Per-partition-index trace table for one trace-sharing group. */
using ChainTraceCache = std::vector<CellTrace>;

/**
 * evalChain against the lowered plan instead of the Simulator. Same
 * plateau short-circuit, same output bit-for-bit; the per-thread
 * scratch persists across chains so steady-state evaluation does not
 * allocate.
 *
 * When @p cache is non-null it carries recorded traces between the
 * chains of one trace-sharing group: a valid entry skips the event
 * loop entirely (only the energy accumulation is replayed under this
 * chain's cost table), and every schedule this chain does run is
 * recorded for the group's remaining members.
 */
void
evalChainSoa(const SweepPlan &plan, const SweepConfig &cfg, std::size_t c,
             SweepPoint *chain_out, ChainTraceCache *cache = nullptr)
{
    fillChainDp(cfg, c, chain_out);
    static thread_local PlanScratch scratch;
    // Everything partition-independent is derived once per chain.
    const CellCosts costs = deriveCellCosts(chain_out[0].dp);
    bool plateaued = false;
    SimResult plateau;
    int stable = 0;
    // The event trace depends on the partition only through the
    // issue-slot budgets (see ScheduleOut), so once every
    // partition-scaled budget runs dry-free the trace is fixed for all
    // wider partitions and only the accounting pass re-runs. Under
    // MemoryMode::Simple the memory ports stay at one regardless of
    // partition, so only *compute* starvation blocks reuse there; bank
    // mapping shifts with the partition under MemoryMode::Banked, so
    // no reuse at all in that mode.
    ScheduleOut trace;
    int trace_partition = 0;
    for (std::size_t pi = 0; pi < cfg.partitions.size(); ++pi) {
        SimResult res;
        if (plateaued) {
            res = plateau;
        } else {
            const DesignPoint &dp = chain_out[pi].dp;
            if (cache && (*cache)[pi].valid) {
                // A sibling chain already scheduled this cell; only
                // the energy differs under this chain's costs.
                const CellTrace &ct = (*cache)[pi];
                ScheduleOut replay = ct.sched;
                replay.dynamic_energy_pj = replayDynamicEnergy(
                    ct.issues.data(), ct.issues.size(), costs);
                res = finishPlanCell(plan, costs, dp, scratch, replay);
            } else {
                const bool reusable =
                    trace_partition > 0 &&
                    dp.partition >= trace_partition &&
                    dp.memory != MemoryMode::Banked;
                if (!reusable) {
                    trace = runPlanSchedule(plan, costs, dp, scratch);
                    const bool invariant =
                        !trace.compute_starved &&
                        (dp.memory == MemoryMode::Simple ||
                         !trace.mem_starved);
                    if (invariant && dp.memory != MemoryMode::Banked)
                        trace_partition = dp.partition;
                }
                res = finishPlanCell(plan, costs, dp, scratch, trace);
                if (cache) {
                    CellTrace &ct = (*cache)[pi];
                    ct.sched = trace;
                    ct.issues.assign(
                        scratch.issue_log,
                        scratch.issue_log + scratch.issue_log_len);
                    ct.valid = true;
                }
            }
            if (pi > 0 && closeRel(res.runtime_ns, plateau.runtime_ns) &&
                closeRel(res.energy_pj, plateau.energy_pj)) {
                if (++stable >= 2)
                    plateaued = true;
            } else {
                stable = 0;
            }
            plateau = res;
        }
        chain_out[pi].res = res;
    }
}

/** One chain restored from a checkpoint file. */
struct RestoredChain
{
    bool ok = true;
    int code = 0;
    std::string message;
    std::vector<SimResult> cells;
};

/**
 * Parse a checkpoint file. Blocks are appended atomically (under a
 * mutex, flushed per block), so any anomaly after a valid header is
 * treated as a torn tail from the interrupted run: parsing stops there
 * and the remaining chains are simply re-evaluated. Header problems —
 * wrong magic, or a fingerprint/shape that does not match this sweep —
 * are hard errors.
 */
Result<std::map<std::size_t, RestoredChain>>
loadCheckpoint(const std::string &path, const std::string &fingerprint,
               std::size_t chains, std::size_t n_part)
{
    std::ifstream in(path);
    if (!in) {
        return makeError(ErrorCode::CheckpointIo, "cannot open '", path,
                         "' for resume");
    }
    std::string line;
    if (!std::getline(in, line)) {
        return makeError(ErrorCode::CheckpointCorrupt,
                         "checkpoint '", path, "' is empty");
    }
    std::istringstream header(line);
    std::string magic, fp;
    int version = 0;
    unsigned long long h_chains = 0, h_part = 0;
    header >> magic >> version >> fp >> h_chains >> h_part;
    if (header.fail() || magic != "accelwall-ckpt" || version != 1) {
        return makeError(ErrorCode::CheckpointCorrupt, "'", path,
                         "' is not an accelwall checkpoint");
    }
    if (fp != fingerprint || h_chains != chains || h_part != n_part) {
        return makeError(
            ErrorCode::CheckpointMismatch, "checkpoint '", path,
            "' was written for a different kernel or sweep grid; "
            "delete it or drop --resume to start fresh");
    }

    std::map<std::size_t, RestoredChain> done;
    while (std::getline(in, line)) {
        std::istringstream head(line);
        std::string tag, status;
        unsigned long long c = 0;
        head >> tag >> c >> status;
        if (head.fail() || tag != "chain" || c >= chains)
            break; // torn tail
        RestoredChain rec;
        if (status == "ok") {
            bool good = true;
            for (std::size_t pi = 0; pi < n_part && good; ++pi) {
                if (!std::getline(in, line) ||
                    line.rfind("cell ", 0) != 0) {
                    good = false;
                    break;
                }
                SimResult res;
                if (!parseCell(line.substr(5), res)) {
                    good = false;
                    break;
                }
                rec.cells.push_back(res);
            }
            if (!good)
                break;
        } else if (status == "fail") {
            rec.ok = false;
            std::string rest;
            std::getline(head, rest);
            std::istringstream tail(rest);
            tail >> rec.code;
            if (tail.fail())
                break;
            std::getline(tail, rec.message);
            if (!rec.message.empty() && rec.message.front() == ' ')
                rec.message.erase(0, 1);
        } else {
            break;
        }
        if (!std::getline(in, line))
            break;
        std::istringstream endl_(line);
        std::string end_tag;
        unsigned long long end_c = 0;
        endl_ >> end_tag >> end_c;
        if (endl_.fail() || end_tag != "end" || end_c != c)
            break;
        done[static_cast<std::size_t>(c)] = std::move(rec);
    }
    return done;
}

void
writeChainBlock(std::ostream &os, std::size_t c, const SweepPoint *cells,
                std::size_t n_part, bool failed, ErrorCode code,
                const std::string &message)
{
    if (failed) {
        os << "chain " << c << " fail " << static_cast<int>(code) << ' '
           << oneLine(message) << '\n';
    } else {
        os << "chain " << c << " ok\n";
        for (std::size_t pi = 0; pi < n_part; ++pi)
            os << "cell " << serializeCell(cells[pi].res) << '\n';
    }
    os << "end " << c << '\n';
    os.flush();
}

} // namespace

std::string
SweepReport::summary() const
{
    std::ostringstream oss;
    oss << chains << " chains: " << (chains - failed) << " ok, "
        << failed << " failed";
    if (failed > 0) {
        std::map<int, std::size_t> by_code;
        for (const ChainFailure &f : failures)
            ++by_code[static_cast<int>(f.code)];
        oss << " (";
        bool first = true;
        for (const auto &[code, count] : by_code) {
            if (!first)
                oss << ", ";
            first = false;
            oss << 'E' << code << " x " << count;
        }
        oss << ')';
    }
    if (restored > 0)
        oss << ", " << restored << " restored from checkpoint";
    return oss.str();
}

const char *
sweepEngineName(SweepEngine engine)
{
    switch (engine) {
      case SweepEngine::Auto:
        return "auto";
      case SweepEngine::Legacy:
        return "legacy";
      case SweepEngine::Soa:
      default:
        return "soa";
    }
}

SweepEngine
resolveSweepEngine(SweepEngine requested)
{
    if (requested != SweepEngine::Auto)
        return requested;
    const char *env = std::getenv("ACCELWALL_SWEEP_ENGINE");
    if (env == nullptr || *env == '\0' ||
        std::string_view(env) == "soa")
        return SweepEngine::Soa;
    if (std::string_view(env) == "legacy")
        return SweepEngine::Legacy;
    warn("ACCELWALL_SWEEP_ENGINE='", env,
         "' is not 'soa' or 'legacy'; using soa");
    return SweepEngine::Soa;
}

Result<SweepOutcome>
runSweepChecked(const Simulator &sim, const SweepConfig &cfg,
                const SweepOptions &opts)
{
    if (cfg.nodes.empty() || cfg.partitions.empty() ||
        cfg.simplifications.empty()) {
        return makeError(ErrorCode::SweepEmptyDimension,
                         "runSweep: empty sweep dimension");
    }

    const std::size_t n_simp = cfg.simplifications.size();
    const std::size_t n_part = cfg.partitions.size();
    const std::size_t chains = cfg.nodes.size() * n_simp;
    const std::string fingerprint = configFingerprint(sim, cfg);

    // Lower the kernel once; every chain then evaluates against the
    // flat plan. The fingerprint ignores the engine on purpose:
    // checkpoints are engine-portable because results are
    // bit-identical.
    const SweepEngine engine = resolveSweepEngine(opts.engine);
    std::optional<SweepPlan> plan;
    if (engine == SweepEngine::Soa)
        plan.emplace(sim.graph(), sim.analysis());

    // Chain c writes points [c * n_part, (c+1) * n_part), which is
    // exactly the serial node-major emission order.
    std::vector<SweepPoint> out(chains * n_part);
    std::vector<char> done(chains, 0);

    SweepReport report;
    report.chains = chains;
    report.engine = engine;

    // Chain-completion state shared between pool workers: the
    // checkpoint stream, the evaluated counter, and the failure list.
    // GUARDED_BY lets Clang's thread-safety analysis prove every access
    // holds mu, so a torn checkpoint block is a compile error, not a
    // race.
    struct Collector
    {
        util::Mutex mu;
        std::ofstream ckpt GUARDED_BY(mu);
        std::size_t evaluated GUARDED_BY(mu) = 0;
        std::vector<ChainFailure> failures GUARDED_BY(mu);
    } coll;

    if (opts.resume) {
        if (opts.checkpoint_path.empty()) {
            return makeError(ErrorCode::CheckpointIo,
                             "resume requested without a checkpoint "
                             "path");
        }
        auto loaded = loadCheckpoint(opts.checkpoint_path, fingerprint,
                                     chains, n_part);
        if (!loaded.ok())
            return loaded.error();
        for (auto &[c, rec] : loaded.value()) {
            done[c] = 1;
            ++report.restored;
            SweepPoint *chain_out = out.data() + c * n_part;
            fillChainDp(cfg, c, chain_out);
            if (rec.ok) {
                for (std::size_t pi = 0; pi < n_part; ++pi)
                    chain_out[pi].res = rec.cells[pi];
            } else {
                auto code = static_cast<ErrorCode>(rec.code);
                for (std::size_t pi = 0; pi < n_part; ++pi) {
                    chain_out[pi].ok = false;
                    chain_out[pi].error_code = code;
                    chain_out[pi].error = rec.message;
                }
                util::MutexLock lock(coll.mu);
                coll.failures.push_back({c, chain_out[0].dp.node_nm,
                                         chain_out[0].dp.simplification,
                                         code, rec.message});
            }
        }
    }

    if (!opts.checkpoint_path.empty()) {
        util::MutexLock lock(coll.mu);
        coll.ckpt.open(opts.checkpoint_path,
                       opts.resume ? std::ios::app : std::ios::trunc);
        if (!coll.ckpt) {
            return makeError(ErrorCode::CheckpointIo, "cannot write "
                             "checkpoint '",
                             opts.checkpoint_path, "'");
        }
        if (!opts.resume) {
            coll.ckpt << "accelwall-ckpt 1 " << fingerprint << ' '
                      << chains << ' ' << n_part << '\n';
            // srccheck:allow(S006): checkpoint appends are serialized
            // under the collector mutex by design — a torn block from
            // two writers would corrupt resume (DESIGN §6).
            coll.ckpt.flush();
        }
    }

    // Trace-sharing groups: chains with the same technology node and
    // extra-pipe degree produce identical per-cell event traces (the
    // simplification degree then only scales the energies — see
    // replayDynamicEnergy() in soa_engine.hh), so the group's first
    // evaluated chain records each schedule and its siblings replay.
    // Groups are worker-pool tasks; the cache never crosses threads.
    // The legacy engine keeps one chain per task.
    std::vector<std::vector<std::size_t>> groups;
    if (plan) {
        std::map<std::pair<std::size_t, int>, std::size_t> index;
        for (std::size_t c = 0; c < chains; ++c) {
            const int simp = cfg.simplifications[c % n_simp];
            const int ep = std::max(
                0, simp - Simulator::kDeepPipelineDegree);
            const auto key = std::make_pair(c / n_simp, ep);
            auto [it, fresh] = index.try_emplace(key, groups.size());
            if (fresh)
                groups.emplace_back();
            groups[it->second].push_back(c);
        }
    } else {
        groups.resize(chains);
        for (std::size_t c = 0; c < chains; ++c)
            groups[c].push_back(c);
    }

    auto &faults = util::FaultPlan::global();
    util::parallelFor(
        groups.size(),
        [&](std::size_t g) {
        ChainTraceCache cache(n_part);
        for (std::size_t c : groups[g]) {
            if (done[c])
                continue;
            SweepPoint *chain_out = out.data() + c * n_part;

            // Error boundary: nothing a single chain does — including
            // an injected fault — may take down the sweep.
            bool failed = false;
            Error err;
            if (faults.shouldFail("chain", c)) {
                failed = true;
                err = util::injectedFault("chain", c);
            } else {
                try {
                    if (plan)
                        evalChainSoa(*plan, cfg, c, chain_out, &cache);
                    else
                        evalChain(sim, cfg, c, chain_out);
                } catch (const ErrorException &e) {
                    failed = true;
                    err = e.error();
                } catch (const std::exception &e) {
                    failed = true;
                    err = makeError(ErrorCode::SweepChainFailed,
                                    e.what());
                } catch (...) {
                    failed = true;
                    err = makeError(ErrorCode::SweepChainFailed,
                                    "unknown exception");
                }
            }

            std::string display;
            if (failed) {
                fillChainDp(cfg, c, chain_out);
                display = err.str();
                for (std::size_t pi = 0; pi < n_part; ++pi) {
                    chain_out[pi].ok = false;
                    chain_out[pi].error_code = err.code();
                    chain_out[pi].error = display;
                }
            }

            util::MutexLock lock(coll.mu);
            ++coll.evaluated;
            if (failed) {
                coll.failures.push_back({c, chain_out[0].dp.node_nm,
                                         chain_out[0].dp.simplification,
                                         err.code(), display});
            }
            if (coll.ckpt.is_open()) {
                writeChainBlock(coll.ckpt, c, chain_out, n_part, failed,
                                err.code(), display);
            }
            // Simulated crash for checkpoint/resume testing. Checked
            // under the mutex so the file never holds a torn block
            // from another writer.
            if (faults.shouldFailCounted("sweep-kill")) {
                // srccheck:allow(S006): same serialized-checkpoint
                // contract as the header write above.
                coll.ckpt.flush();
                std::_Exit(util::kFaultKillExitCode);
            }
        }
        },
        opts.jobs);

    // Workers are done; drain the collector back into the report.
    std::vector<ChainFailure> failures;
    {
        util::MutexLock lock(coll.mu);
        report.evaluated = coll.evaluated;
        failures = std::move(coll.failures);
    }

    std::sort(failures.begin(), failures.end(),
              [](const ChainFailure &a, const ChainFailure &b) {
                  return a.chain < b.chain;
              });
    report.failed = failures.size();
    report.failures = std::move(failures);

    if (opts.on_error == OnError::Abort && report.failed > 0) {
        const ChainFailure &f = report.failures.front();
        return makeError(ErrorCode::SweepChainFailed, "chain ", f.chain,
                         " (node ", f.node_nm, " nm, simplification ",
                         f.simplification, ") failed: ", f.message,
                         "; use --on-error skip to degrade instead of "
                         "aborting");
    }
    return SweepOutcome{std::move(out), std::move(report)};
}

std::vector<SweepPoint>
runSweep(const Simulator &sim, const SweepConfig &cfg, int jobs)
{
    SweepOptions opts;
    opts.jobs = jobs;
    auto outcome = runSweepChecked(sim, cfg, opts);
    if (!outcome.ok())
        fatal(outcome.error().str());
    return std::move(outcome.value().points);
}

std::size_t
bestPerformance(const std::vector<SweepPoint> &points)
{
    if (points.empty())
        fatal("bestPerformance: empty sweep");
    bool found = false;
    std::size_t best = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!points[i].ok)
            continue;
        if (!found || points[i].res.runtime_ns < points[best].res.runtime_ns) {
            best = i;
            found = true;
        }
    }
    if (!found)
        fatal("bestPerformance: every design point failed");
    return best;
}

std::size_t
bestEfficiency(const std::vector<SweepPoint> &points)
{
    if (points.empty())
        fatal("bestEfficiency: empty sweep");
    bool found = false;
    std::size_t best = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!points[i].ok)
            continue;
        if (!found ||
            points[i].res.efficiency_opj > points[best].res.efficiency_opj) {
            best = i;
            found = true;
        }
    }
    if (!found)
        fatal("bestEfficiency: every design point failed");
    return best;
}

namespace
{

/** Best surviving index by `better` among points passing `fits`. */
template <typename Fits, typename Better>
std::size_t
bestUnder(const std::vector<SweepPoint> &points, Fits fits,
          Better better, const char *what)
{
    bool found = false;
    std::size_t best = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!points[i].ok || !fits(points[i].res))
            continue;
        if (!found || better(points[i].res, points[best].res)) {
            best = i;
            found = true;
        }
    }
    if (!found)
        fatal(what, ": no design point fits the budget");
    return best;
}

} // namespace

std::size_t
bestPerformanceUnderArea(const std::vector<SweepPoint> &points,
                         double area_um2)
{
    return bestUnder(
        points,
        [=](const SimResult &r) { return r.area_um2 <= area_um2; },
        [](const SimResult &a, const SimResult &b) {
            return a.runtime_ns < b.runtime_ns;
        },
        "bestPerformanceUnderArea");
}

std::size_t
bestEfficiencyUnderArea(const std::vector<SweepPoint> &points,
                        double area_um2)
{
    return bestUnder(
        points,
        [=](const SimResult &r) { return r.area_um2 <= area_um2; },
        [](const SimResult &a, const SimResult &b) {
            return a.efficiency_opj > b.efficiency_opj;
        },
        "bestEfficiencyUnderArea");
}

std::size_t
bestPerformanceUnderPower(const std::vector<SweepPoint> &points,
                          double power_mw)
{
    return bestUnder(
        points,
        [=](const SimResult &r) { return r.power_mw <= power_mw; },
        [](const SimResult &a, const SimResult &b) {
            return a.runtime_ns < b.runtime_ns;
        },
        "bestPerformanceUnderPower");
}

} // namespace accelwall::aladdin
