#include "aladdin/sweep.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/parallel.hh"

namespace accelwall::aladdin
{

namespace
{

bool
closeRel(double a, double b, double tol = 1e-3)
{
    return std::fabs(a - b) <= tol * std::max(std::fabs(a),
                                              std::fabs(b));
}

} // namespace

std::vector<SweepPoint>
runSweep(const Simulator &sim, const SweepConfig &cfg, int jobs)
{
    if (cfg.nodes.empty() || cfg.partitions.empty() ||
        cfg.simplifications.empty())
        fatal("runSweep: empty sweep dimension");

    // Each (node, simplification) pair owns one serial partition chain
    // so the plateau short-circuit still sees ascending factors; the
    // chains are independent and fan out across threads. Chain c
    // writes points [c * |partitions|, (c+1) * |partitions|), which is
    // exactly the serial node-major emission order.
    const std::size_t n_simp = cfg.simplifications.size();
    const std::size_t n_part = cfg.partitions.size();
    const std::size_t chains = cfg.nodes.size() * n_simp;

    std::vector<SweepPoint> out(chains * n_part);
    util::parallelFor(
        chains,
        [&](std::size_t c) {
            double node = cfg.nodes[c / n_simp];
            int simp = cfg.simplifications[c % n_simp];
            SweepPoint *chain_out = out.data() + c * n_part;

            bool plateaued = false;
            SimResult plateau;
            int stable = 0;
            for (std::size_t pi = 0; pi < n_part; ++pi) {
                DesignPoint dp;
                dp.node_nm = node;
                dp.partition = cfg.partitions[pi];
                dp.simplification = simp;
                dp.chaining = cfg.chaining;
                dp.clock_ghz = cfg.clock_ghz;

                SimResult res;
                if (plateaued) {
                    res = plateau;
                } else {
                    res = sim.run(dp);
                    if (pi > 0 &&
                        closeRel(res.runtime_ns, plateau.runtime_ns) &&
                        closeRel(res.energy_pj, plateau.energy_pj)) {
                        if (++stable >= 2)
                            plateaued = true;
                    } else {
                        stable = 0;
                    }
                    plateau = res;
                }
                chain_out[pi] = {dp, res};
            }
        },
        jobs);
    return out;
}

std::size_t
bestPerformance(const std::vector<SweepPoint> &points)
{
    if (points.empty())
        fatal("bestPerformance: empty sweep");
    std::size_t best = 0;
    for (std::size_t i = 1; i < points.size(); ++i) {
        if (points[i].res.runtime_ns < points[best].res.runtime_ns)
            best = i;
    }
    return best;
}

std::size_t
bestEfficiency(const std::vector<SweepPoint> &points)
{
    if (points.empty())
        fatal("bestEfficiency: empty sweep");
    std::size_t best = 0;
    for (std::size_t i = 1; i < points.size(); ++i) {
        if (points[i].res.efficiency_opj > points[best].res.efficiency_opj)
            best = i;
    }
    return best;
}

namespace
{

/** Best index by `better` among points passing `fits`. */
template <typename Fits, typename Better>
std::size_t
bestUnder(const std::vector<SweepPoint> &points, Fits fits,
          Better better, const char *what)
{
    bool found = false;
    std::size_t best = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!fits(points[i].res))
            continue;
        if (!found || better(points[i].res, points[best].res)) {
            best = i;
            found = true;
        }
    }
    if (!found)
        fatal(what, ": no design point fits the budget");
    return best;
}

} // namespace

std::size_t
bestPerformanceUnderArea(const std::vector<SweepPoint> &points,
                         double area_um2)
{
    return bestUnder(
        points,
        [=](const SimResult &r) { return r.area_um2 <= area_um2; },
        [](const SimResult &a, const SimResult &b) {
            return a.runtime_ns < b.runtime_ns;
        },
        "bestPerformanceUnderArea");
}

std::size_t
bestEfficiencyUnderArea(const std::vector<SweepPoint> &points,
                        double area_um2)
{
    return bestUnder(
        points,
        [=](const SimResult &r) { return r.area_um2 <= area_um2; },
        [](const SimResult &a, const SimResult &b) {
            return a.efficiency_opj > b.efficiency_opj;
        },
        "bestEfficiencyUnderArea");
}

std::size_t
bestPerformanceUnderPower(const std::vector<SweepPoint> &points,
                          double power_mw)
{
    return bestUnder(
        points,
        [=](const SimResult &r) { return r.power_mw <= power_mw; },
        [](const SimResult &a, const SimResult &b) {
            return a.runtime_ns < b.runtime_ns;
        },
        "bestPerformanceUnderPower");
}

} // namespace accelwall::aladdin
