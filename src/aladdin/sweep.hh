/**
 * @file
 * Design-space sweep driver (Section VI, Figure 13/14 inputs).
 */

#ifndef ACCELWALL_ALADDIN_SWEEP_HH
#define ACCELWALL_ALADDIN_SWEEP_HH

#include <vector>

#include "aladdin/design_point.hh"
#include "aladdin/simulator.hh"

namespace accelwall::aladdin
{

/** One evaluated design alternative. */
struct SweepPoint
{
    DesignPoint dp;
    SimResult res;
};

/**
 * Evaluate the full (node x partition x simplification) grid.
 *
 * Partitioning saturates once the factor exceeds the kernel's available
 * parallelism; after two consecutive factors produce identical runtime
 * and energy (within 0.1%), the remaining factors reuse the plateau
 * result instead of re-simulating — the Table III grid reaches 2^19,
 * far beyond any kernel's max working set.
 *
 * The (node, simplification) chains are independent and evaluated on
 * @p jobs threads (0 = util::defaultJobs()); the partition loop inside
 * each chain stays serial so the plateau short-circuit sees factors in
 * ascending order. Output is bit-identical for every job count, in the
 * serial node-major / simplification / partition order.
 */
std::vector<SweepPoint> runSweep(const Simulator &sim,
                                 const SweepConfig &cfg, int jobs = 0);

/** Index of the minimum-runtime point; fatal() on empty input. */
std::size_t bestPerformance(const std::vector<SweepPoint> &points);

/** Index of the maximum ops/J point; fatal() on empty input. */
std::size_t bestEfficiency(const std::vector<SweepPoint> &points);

/**
 * Fixed-budget selectors — the paper's premise is optimization "subject
 * to a given budget of power, area, and cost". These return the best
 * point whose area (um²) or power (mW) fits the budget; fatal() when
 * nothing fits.
 */
std::size_t bestPerformanceUnderArea(const std::vector<SweepPoint> &points,
                                     double area_um2);
std::size_t bestEfficiencyUnderArea(const std::vector<SweepPoint> &points,
                                    double area_um2);
std::size_t bestPerformanceUnderPower(
    const std::vector<SweepPoint> &points, double power_mw);

} // namespace accelwall::aladdin

#endif // ACCELWALL_ALADDIN_SWEEP_HH
