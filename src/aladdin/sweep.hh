/**
 * @file
 * Design-space sweep driver (Section VI, Figure 13/14 inputs).
 *
 * Fault tolerance: each (node, simplification) chain runs behind an
 * error boundary, so one pathological design point cannot abort a
 * campaign. Failed chains become explicit failed cells (the grid stays
 * complete), an OnError policy picks between aborting and degrading,
 * and periodic checkpointing makes interrupted sweeps resumable with
 * bit-identical results. The `chain` and `sweep-kill` fault-injection
 * sites (util/faultinject.hh) are compiled into the driver so tests
 * can kill arbitrary chain subsets or the whole process mid-run.
 */

#ifndef ACCELWALL_ALADDIN_SWEEP_HH
#define ACCELWALL_ALADDIN_SWEEP_HH

#include <cstddef>
#include <string>
#include <vector>

#include "aladdin/design_point.hh"
#include "aladdin/simulator.hh"
#include "util/error.hh"

namespace accelwall::aladdin
{

/** One evaluated design alternative. */
struct SweepPoint
{
    DesignPoint dp;
    SimResult res;
    /** False for cells of a failed chain; res is then all-zero. */
    bool ok = true;
    /** Failure code/display string when !ok (deterministic). */
    ErrorCode error_code = ErrorCode::None;
    std::string error;
};

/** What to do when a chain fails. */
enum class OnError
{
    /** Stop the sweep and surface the first failure (default). */
    Abort,
    /** Keep going; failed chains become failed cells in the output. */
    Skip,
};

/**
 * Which cell evaluator the sweep runs. Both produce bit-identical
 * results (enforced by the `sweepdiff` differential suite); Legacy
 * exists as the oracle and escape hatch.
 */
enum class SweepEngine
{
    /** Resolve from ACCELWALL_SWEEP_ENGINE; defaults to Soa. */
    Auto,
    /** Data-oriented plan evaluator (aladdin/soa_engine.hh). */
    Soa,
    /** Simulator::run() per cell — the differential-test oracle. */
    Legacy,
};

/** Display name: "auto", "soa", or "legacy". */
const char *sweepEngineName(SweepEngine engine);

/**
 * Resolve Auto against the ACCELWALL_SWEEP_ENGINE environment variable
 * ("soa" or "legacy"; unset or unknown values resolve to Soa, unknown
 * ones with a warn()). Non-Auto values pass through untouched.
 */
SweepEngine resolveSweepEngine(SweepEngine requested);

/** Knobs for runSweepChecked(). */
struct SweepOptions
{
    OnError on_error = OnError::Abort;
    /**
     * When non-empty, completed chains are appended to this file as
     * they finish (each block fsync-ordered behind a mutex), so a
     * killed run can be continued with resume.
     */
    std::string checkpoint_path;
    /**
     * Restore completed chains from checkpoint_path before sweeping;
     * only the missing chains are evaluated. The final output is
     * bit-identical to an uninterrupted run.
     */
    bool resume = false;
    /** Worker threads (0 = util::defaultJobs()). */
    int jobs = 0;
    /**
     * Cell evaluator. Checkpoints are engine-portable: a file written
     * under one engine resumes under the other with identical output.
     */
    SweepEngine engine = SweepEngine::Auto;
};

/** One failed (node, simplification) chain. */
struct ChainFailure
{
    /** Chain index in node-major order. */
    std::size_t chain = 0;
    double node_nm = 0.0;
    int simplification = 0;
    ErrorCode code = ErrorCode::None;
    /** Full display string, e.g. "E9001 fault-injected: ...". */
    std::string message;
};

/** Degradation summary of one sweep run. */
struct SweepReport
{
    /** Total (node, simplification) chains in the grid. */
    std::size_t chains = 0;
    /** Chains evaluated by this invocation. */
    std::size_t evaluated = 0;
    /** Chains restored from the checkpoint file. */
    std::size_t restored = 0;
    /** Chains that failed (evaluated + restored failures). */
    std::size_t failed = 0;
    /** All failures, sorted by chain index. */
    std::vector<ChainFailure> failures;
    /** Evaluator that ran the sweep (resolved, never Auto). */
    SweepEngine engine = SweepEngine::Soa;

    bool degraded() const { return failed > 0; }

    /** One-line digest for logs and the sweep report. */
    std::string summary() const;
};

/** Full outcome: the (complete) grid plus the degradation report. */
struct SweepOutcome
{
    std::vector<SweepPoint> points;
    SweepReport report;
};

/**
 * Evaluate the full (node x partition x simplification) grid.
 *
 * Partitioning saturates once the factor exceeds the kernel's available
 * parallelism; after two consecutive factors produce identical runtime
 * and energy (within 0.1%), the remaining factors reuse the plateau
 * result instead of re-simulating — the Table III grid reaches 2^19,
 * far beyond any kernel's max working set.
 *
 * The (node, simplification) chains are independent and evaluated on
 * opts.jobs threads; the partition loop inside each chain stays serial
 * so the plateau short-circuit sees factors in ascending order. Output
 * is bit-identical for every job count, in the serial node-major /
 * simplification / partition order, and — for the surviving cells —
 * bit-identical regardless of which chains failed or were resumed.
 *
 * Recoverable failures (empty grid dimensions, unusable checkpoint,
 * or a chain failure under OnError::Abort) come back as an Error;
 * under OnError::Skip chain failures degrade into failed cells and the
 * sweep still succeeds.
 */
Result<SweepOutcome> runSweepChecked(const Simulator &sim,
                                     const SweepConfig &cfg,
                                     const SweepOptions &opts = {});

/**
 * Boundary adaptor: abort-on-error sweep returning the bare grid;
 * fatal() on any recoverable failure.
 */
std::vector<SweepPoint> runSweep(const Simulator &sim,
                                 const SweepConfig &cfg, int jobs = 0);

/**
 * Index of the minimum-runtime point; failed cells are ignored.
 * fatal() on empty input or when every cell failed.
 */
std::size_t bestPerformance(const std::vector<SweepPoint> &points);

/** Index of the maximum ops/J point; same contract. */
std::size_t bestEfficiency(const std::vector<SweepPoint> &points);

/**
 * Fixed-budget selectors — the paper's premise is optimization "subject
 * to a given budget of power, area, and cost". These return the best
 * surviving point whose area (um²) or power (mW) fits the budget;
 * fatal() when nothing fits.
 */
std::size_t bestPerformanceUnderArea(const std::vector<SweepPoint> &points,
                                     double area_um2);
std::size_t bestEfficiencyUnderArea(const std::vector<SweepPoint> &points,
                                    double area_um2);
std::size_t bestPerformanceUnderPower(
    const std::vector<SweepPoint> &points, double power_mw);

} // namespace accelwall::aladdin

#endif // ACCELWALL_ALADDIN_SWEEP_HH
