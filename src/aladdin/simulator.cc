#include "aladdin/simulator.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <unordered_map>

#include "aladdin/fu_library.hh"
#include "cmos/scaling.hh"
#include "dfg/verify.hh"
#include "util/logging.hh"

namespace accelwall::aladdin
{

namespace
{

using dfg::NodeId;
using dfg::OpType;

/** Per-run, per-op-class derived costs. */
struct OpCosts
{
    double delay_ns = 0.0;   // combinational delay at this node/width
    int latency_cycles = 1;  // issue-to-finish cycles (pipelined)
    double energy_pj = 0.0;  // switching energy per op
    double reg_energy_pj = 0.0; // register energy when not chained
    bool chainable = false;  // may fuse into the producer's cycle
};

/** Fixed costs of the optional DMA engine (45nm values). */
constexpr double kDmaAreaUm2 = 3000.0;
constexpr double kDmaLeakUw = 20.0;

/** Fixed costs of the shared-FIFO fabric (45nm values). */
constexpr double kFifoAreaUm2 = 200.0;
constexpr double kFifoLeakUw = 1.0;

} // namespace

Simulator::Simulator(dfg::Graph graph)
    : graph_(std::move(graph)), analysis_(dfg::analyze(graph_)),
      topo_(graph_.topoOrder())
{
    // Fail fast on malformed kernels before their numbers reach a
    // sweep; no-op unless ACCELWALL_VERIFY (or a debug build) asks.
    dfg::verify::debugVerify(graph_, "aladdin::Simulator");
}

SimResult
Simulator::run(const DesignPoint &dp) const
{
    if (dp.partition < 1)
        fatal("Simulator: partition factor must be >= 1");
    if (dp.clock_ghz <= 0.0)
        fatal("Simulator: clock must be positive");

    const auto &scaling = cmos::ScalingTable::instance();
    const double period = 1.0 / dp.clock_ghz; // ns
    // DesignPoint is sweep-space input (raw doubles); enter the
    // dimensional domain here.
    const units::Nanometers node{dp.node_nm};
    const double delay_rel = scaling.gateDelayRel(node);
    const double dyn_rel = scaling.dynamicEnergy(node);
    const double leak_rel = scaling.leakagePower(node);
    const double density = scaling.densityGain(node);
    const int extra_pipe =
        std::max(0, dp.simplification - kDeepPipelineDegree);

    // Communication-fabric effects: a shared FIFO adds a forwarding
    // cycle and forbids combinational chaining across units; a DMA
    // engine streams root loads at double bandwidth.
    const bool fifo = dp.comm == CommMode::Fifo;
    const bool dma = dp.comm == CommMode::Dma;
    const int comm_latency = fifo ? 1 : 0;

    // Memory-hierarchy effects.
    const int mem_ports =
        dp.memory == MemoryMode::Simple ? 1 : dp.partition;
    const bool bank_conflicts = dp.memory == MemoryMode::Banked;

    // Derive per-op-class costs once.
    std::array<OpCosts, dfg::kNumOpTypes> costs;
    for (int i = 0; i < dfg::kNumOpTypes; ++i) {
        OpType op = static_cast<OpType>(i);
        const OpParams &p = opParams(op);
        OpCosts &c = costs[i];
        c.delay_ns = p.delay_ns * delay_rel;
        double ws = widthScale(op, dp.simplification);
        c.energy_pj = p.energy_pj * ws * dyn_rel;
        double lin_ws =
            static_cast<double>(simplifiedWidth(dp.simplification)) / 32.0;
        c.reg_energy_pj = kRegisterEnergyPj * lin_ws * dyn_rel *
                          (1.0 + extra_pipe);
        if (fifo)
            c.reg_energy_pj *= 0.85; // narrow shared bus
        if (dfg::isVariable(op)) {
            c.latency_cycles = 0;
            c.chainable = false;
        } else {
            c.latency_cycles = std::max(
                1, static_cast<int>(std::ceil(c.delay_ns / period -
                                              1e-12)));
            if (dfg::isCompute(op))
                c.latency_cycles += extra_pipe;
            c.latency_cycles += comm_latency;
            // Deep-pipelined units register their outputs; memory
            // ports are always registered; a FIFO fabric cannot
            // forward combinationally.
            c.chainable = dp.chaining && !fifo && dfg::isCompute(op) &&
                          extra_pipe == 0 && c.delay_ns < period;
        }
    }

    // --- Schedule ---------------------------------------------------
    const std::size_t n = graph_.numNodes();
    std::vector<std::uint32_t> unresolved(n);
    std::vector<double> ready_ns(n, 0.0);
    std::vector<double> finish_ns(n, 0.0);

    // Nodes that became ready, keyed by the cycle containing their
    // ready time. Resource-starved nodes wait in FIFO queues: one for
    // compute, one for streaming (DMA) loads, and either a single
    // memory queue or per-bank queues under banked memory.
    std::map<std::int64_t, std::vector<NodeId>> buckets;
    std::deque<NodeId> wait_compute, wait_memory, wait_dma;
    std::unordered_map<int, std::deque<NodeId>> wait_banks;
    std::deque<int> banks_waiting; // FIFO of bank ids with waiters

    auto bank_of = [&](NodeId id) {
        return static_cast<int>(id % static_cast<NodeId>(dp.partition));
    };
    auto is_root_load = [&](NodeId id) {
        return graph_.op(id) == OpType::Load && graph_.preds(id).empty();
    };

    for (NodeId id = 0; id < n; ++id) {
        unresolved[id] = static_cast<std::uint32_t>(graph_.preds(id).size());
        if (unresolved[id] == 0)
            buckets[0].push_back(id);
    }

    SimResult res;
    double makespan = 0.0;

    // Propagate a completion to successors; newly-ready successors land
    // in the bucket of the cycle containing their ready time (possibly
    // the current one, enabling cascaded chaining).
    std::vector<NodeId> *current_list = nullptr;
    std::int64_t current_cycle = 0;
    auto propagate = [&](NodeId id, double finish) {
        finish_ns[id] = finish;
        makespan = std::max(makespan, finish);
        for (NodeId succ : graph_.succs(id)) {
            ready_ns[succ] = std::max(ready_ns[succ], finish);
            if (--unresolved[succ] == 0) {
                std::int64_t c = static_cast<std::int64_t>(
                    std::floor(ready_ns[succ] / period + 1e-9));
                if (c == current_cycle && current_list != nullptr)
                    current_list->push_back(succ);
                else
                    buckets[std::max(c, current_cycle)].push_back(succ);
            }
        }
    };

    auto any_waiting = [&]() {
        return !wait_compute.empty() || !wait_memory.empty() ||
               !wait_dma.empty() || !banks_waiting.empty();
    };

    while (!buckets.empty() || any_waiting()) {
        // Pick the next cycle to simulate: the earliest bucket, or the
        // very next cycle when starved work is waiting on slots.
        std::int64_t cycle;
        if (any_waiting()) {
            cycle = current_cycle + 1;
            if (!buckets.empty())
                cycle = std::min(cycle, buckets.begin()->first);
        } else {
            cycle = buckets.begin()->first;
        }
        current_cycle = std::max(cycle, current_cycle);

        std::vector<NodeId> list;
        auto it = buckets.find(current_cycle);
        if (it != buckets.end()) {
            list = std::move(it->second);
            buckets.erase(it);
        }
        current_list = &list;

        int compute_slots = dp.partition;
        int memory_slots = mem_ports;
        // DMA streams root loads at double the port bandwidth without
        // competing with indirect accesses.
        int dma_slots = dma ? 2 * mem_ports : 0;
        double boundary = static_cast<double>(current_cycle) * period;

        auto issue = [&](NodeId id) {
            const OpCosts &c = costs[static_cast<int>(graph_.op(id))];
            ++res.ops;
            double energy = c.energy_pj + c.reg_energy_pj;
            if (dma && is_root_load(id))
                energy *= 0.8; // burst amortization
            res.dynamic_energy_pj += energy;
            propagate(id, boundary + c.latency_cycles * period);
        };

        // Banks that already served an access this cycle.
        std::unordered_map<int, bool> bank_used;

        // First serve work that was starved in earlier cycles.
        while (!wait_compute.empty() && compute_slots > 0) {
            NodeId id = wait_compute.front();
            wait_compute.pop_front();
            --compute_slots;
            issue(id);
        }
        while (!wait_dma.empty() && dma_slots > 0) {
            NodeId id = wait_dma.front();
            wait_dma.pop_front();
            --dma_slots;
            issue(id);
        }
        if (bank_conflicts) {
            // Each bank serves one access per cycle, within the port
            // budget. Banks queue round-robin.
            std::size_t banks_today = banks_waiting.size();
            for (std::size_t i = 0;
                 i < banks_today && memory_slots > 0; ++i) {
                int bank = banks_waiting.front();
                banks_waiting.pop_front();
                auto &queue = wait_banks[bank];
                NodeId id = queue.front();
                queue.pop_front();
                --memory_slots;
                bank_used[bank] = true;
                issue(id);
                if (!queue.empty())
                    banks_waiting.push_back(bank);
                else
                    wait_banks.erase(bank);
            }
        } else {
            while (!wait_memory.empty() && memory_slots > 0) {
                NodeId id = wait_memory.front();
                wait_memory.pop_front();
                --memory_slots;
                issue(id);
            }
        }
        // Then the nodes whose inputs became available this cycle. The
        // list may grow as chained ops finish mid-cycle.
        for (std::size_t i = 0; i < list.size(); ++i) {
            NodeId id = list[i];
            OpType op = graph_.op(id);
            const OpCosts &c = costs[static_cast<int>(op)];

            if (dfg::isVariable(op)) {
                // Pseudo nodes are free and instantaneous.
                propagate(id, ready_ns[id]);
                continue;
            }

            double ready = ready_ns[id];
            if (c.chainable && ready >= boundary &&
                (ready - boundary) + c.delay_ns <= period + 1e-12) {
                // Fuse into the producer's cycle: no issue slot, no
                // pipeline-register write.
                ++res.fused_ops;
                ++res.ops;
                res.dynamic_energy_pj += c.energy_pj;
                propagate(id, ready + c.delay_ns);
                continue;
            }

            if (ready > boundary + 1e-12) {
                // Mid-cycle ready but unchainable: wait for the next
                // boundary.
                buckets[current_cycle + 1].push_back(id);
                continue;
            }

            bool is_mem = dfg::isMemory(op);
            if (!is_mem) {
                if (compute_slots > 0) {
                    --compute_slots;
                    issue(id);
                } else {
                    wait_compute.push_back(id);
                }
                continue;
            }

            // Memory access routing.
            if (dma && is_root_load(id)) {
                if (dma_slots > 0) {
                    --dma_slots;
                    issue(id);
                } else {
                    wait_dma.push_back(id);
                }
                continue;
            }
            if (bank_conflicts) {
                int bank = bank_of(id);
                bool queued = wait_banks.count(bank) > 0;
                if (!queued && !bank_used[bank] && memory_slots > 0) {
                    --memory_slots;
                    bank_used[bank] = true;
                    issue(id);
                } else {
                    if (!queued)
                        banks_waiting.push_back(bank);
                    wait_banks[bank].push_back(id);
                }
                continue;
            }
            if (memory_slots > 0) {
                --memory_slots;
                issue(id);
            } else {
                wait_memory.push_back(id);
            }
        }
        current_list = nullptr;
    }

    // --- Account area, leakage, energy, derived metrics --------------
    // Functional units: one per lane and op class, but never more units
    // than the kernel has operations of that class.
    std::array<std::uint64_t, dfg::kNumOpTypes> op_count{};
    for (NodeId id = 0; id < n; ++id)
        ++op_count[static_cast<int>(graph_.op(id))];

    double fu_leak_uw = 0.0, fu_area_um2 = 0.0;
    for (int i = 0; i < dfg::kNumOpTypes; ++i) {
        OpType op = static_cast<OpType>(i);
        if (op_count[i] == 0 || dfg::isVariable(op))
            continue;
        double instances = static_cast<double>(
            std::min<std::uint64_t>(op_count[i],
                                    static_cast<std::uint64_t>(
                                        dp.partition)));
        const OpParams &p = opParams(op);
        double ws = widthScale(op, dp.simplification);
        fu_leak_uw += instances * p.leak_uw * ws;
        fu_area_um2 += instances * p.area_um2 * ws;
    }

    // Scratchpad sized for the largest working set, provisioned per
    // memory mode: a simple hierarchy has one bank; striped banking
    // pays per-port overhead; a problem-specific (heterogeneous)
    // layout pays the same ports plus richer interconnect.
    double word_bytes =
        static_cast<double>(simplifiedWidth(dp.simplification)) / 8.0;
    double sram_bytes =
        static_cast<double>(analysis_.max_working_set) * word_bytes;
    double bank_count;
    switch (dp.memory) {
      case MemoryMode::Simple:
        bank_count = 1.0;
        break;
      case MemoryMode::Banked:
        bank_count = 0.75 * dp.partition; // plain stripes
        break;
      case MemoryMode::Heterogeneous:
      default:
        bank_count = static_cast<double>(dp.partition);
        break;
    }
    double mem_leak_uw = sram_bytes * kSramLeakUwPerByte +
                         bank_count * kBankLeakUw;
    double mem_area_um2 = sram_bytes * kSramAreaUm2PerByte +
                          bank_count * kBankAreaUm2;

    double fabric_leak_uw = 0.0, fabric_area_um2 = 0.0;
    if (fifo) {
        fabric_leak_uw += kFifoLeakUw;
        fabric_area_um2 += kFifoAreaUm2;
    }
    if (dma) {
        fabric_leak_uw += kDmaLeakUw;
        fabric_area_um2 += kDmaAreaUm2;
    }

    res.leakage_power_uw =
        (fu_leak_uw + mem_leak_uw + fabric_leak_uw) * leak_rel;
    res.area_um2 =
        (fu_area_um2 + mem_area_um2 + fabric_area_um2) / density;

    res.runtime_ns = std::max(makespan, period);
    res.cycles = static_cast<std::uint64_t>(
        std::ceil(res.runtime_ns / period - 1e-9));

    res.lane_utilization =
        static_cast<double>(res.ops - res.fused_ops) /
        (static_cast<double>(res.cycles) * 2.0 * dp.partition);

    // Steady-state initiation interval: the DFG is acyclic, so
    // back-to-back invocations are bounded by resource occupancy
    // alone — issue slots for non-fused compute, ports (or the single
    // simple port, or the busiest bank) for memory.
    std::uint64_t compute_issues =
        res.ops - res.fused_ops; // memory included; split below
    std::uint64_t mem_ops = 0;
    std::uint64_t busiest_bank = 0;
    if (bank_conflicts) {
        std::unordered_map<int, std::uint64_t> per_bank;
        for (NodeId id = 0; id < n; ++id) {
            if (dfg::isMemory(graph_.op(id))) {
                ++mem_ops;
                busiest_bank =
                    std::max(busiest_bank, ++per_bank[bank_of(id)]);
            }
        }
    } else {
        for (NodeId id = 0; id < n; ++id) {
            if (dfg::isMemory(graph_.op(id)))
                ++mem_ops;
        }
    }
    compute_issues -= std::min(compute_issues, mem_ops);
    std::uint64_t ii_compute =
        (compute_issues + dp.partition - 1) / dp.partition;
    std::uint64_t ii_mem =
        (mem_ops + mem_ports - 1) / std::max(mem_ports, 1);
    if (bank_conflicts)
        ii_mem = std::max(ii_mem, busiest_bank);
    res.initiation_interval = std::max<std::uint64_t>(
        {1, ii_compute, ii_mem});
    res.pipelined_throughput_ops =
        static_cast<double>(res.ops) /
        (static_cast<double>(res.initiation_interval) * period * 1e-9);

    // 1 uW * 1 ns = 1e-3 pJ.
    double leak_energy_pj =
        res.leakage_power_uw * res.runtime_ns * 1e-3;
    res.energy_pj = res.dynamic_energy_pj + leak_energy_pj;
    // 1 pJ / 1 ns = 1 mW.
    res.power_mw = res.energy_pj / res.runtime_ns;
    res.throughput_ops =
        static_cast<double>(res.ops) / (res.runtime_ns * 1e-9);
    res.efficiency_opj =
        static_cast<double>(res.ops) / (res.energy_pj * 1e-12);
    return res;
}

} // namespace accelwall::aladdin
