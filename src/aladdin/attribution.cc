#include "aladdin/attribution.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace accelwall::aladdin
{

namespace
{

/** The target metric, oriented so larger is better. */
double
metric(const SimResult &res, Target target)
{
    switch (target) {
      case Target::Performance:
        return 1.0 / res.runtime_ns;
      case Target::EnergyEfficiency:
        return res.efficiency_opj;
    }
    panic("attribute: unknown target");
}

} // namespace

const char *
targetName(Target target)
{
    switch (target) {
      case Target::Performance: return "performance";
      case Target::EnergyEfficiency: return "energy efficiency";
    }
    return "?";
}

Attribution
attribute(const Simulator &sim, const SweepConfig &cfg, Target target)
{
    auto points = runSweep(sim, cfg);
    std::size_t best_idx = (target == Target::Performance)
                               ? bestPerformance(points)
                               : bestEfficiency(points);
    const DesignPoint &best = points[best_idx].dp;

    // Walk baseline -> optimum one knob at a time. Each intermediate
    // point is simulated directly; the walk order front-loads the
    // CMOS-dependent contributions.
    DesignPoint step;
    step.node_nm = 45.0;
    step.partition = 1;
    step.simplification = 1;
    step.chaining = false;
    step.clock_ghz = cfg.clock_ghz;

    double m0 = metric(sim.run(step), target);
    if (m0 <= 0.0)
        panic("attribute: non-positive baseline metric");

    auto advance = [&](auto apply) {
        double before = metric(sim.run(step), target);
        apply(step);
        double after = metric(sim.run(step), target);
        // Scheduling is greedy, so a knob can in rare corner cases be
        // fractionally counter-productive mid-walk; clamp those steps
        // to zero contribution.
        return std::max(0.0, std::log(after / before));
    };

    double log_cmos = advance([&](DesignPoint &p) {
        p.node_nm = best.node_nm;
    });
    double log_het = advance([&](DesignPoint &p) {
        p.chaining = best.chaining;
    });
    double log_part = advance([&](DesignPoint &p) {
        p.partition = best.partition;
    });
    double log_simp = advance([&](DesignPoint &p) {
        p.simplification = best.simplification;
    });

    Attribution out;
    out.target = target;
    out.best = best;
    double m_best = metric(points[best_idx].res, target);
    out.total_gain = m_best / m0;
    out.csr = std::exp(log_het + log_simp);

    double log_total = log_cmos + log_het + log_part + log_simp;
    if (log_total > 0.0) {
        out.frac_cmos = log_cmos / log_total;
        out.frac_heterogeneity = log_het / log_total;
        out.frac_partitioning = log_part / log_total;
        out.frac_simplification = log_simp / log_total;
    }
    return out;
}

} // namespace accelwall::aladdin
