/**
 * @file
 * Functional-unit characterization library.
 *
 * Our pre-RTL accelerator model (the Aladdin substitution, Section VI)
 * costs each DFG operation with a 45nm/32-bit characterization tuple —
 * combinational delay, switching energy, leakage power, and area — in the
 * spirit of Aladdin's FU tables and Galal & Horowitz's FPU data. The
 * simulator scales these by CMOS node (cmos::ScalingTable) and by the
 * simplification degree (datapath width).
 */

#ifndef ACCELWALL_ALADDIN_FU_LIBRARY_HH
#define ACCELWALL_ALADDIN_FU_LIBRARY_HH

#include "dfg/op_type.hh"

namespace accelwall::aladdin
{

/** 45nm, 32-bit characterization of one operation class. */
struct OpParams
{
    /** Combinational delay in ns (chains must fit the clock period). */
    double delay_ns = 0.0;
    /** Switching energy per operation in pJ. */
    double energy_pj = 0.0;
    /** Leakage power per functional-unit instance in uW. */
    double leak_uw = 0.0;
    /** Area per functional-unit instance in um². */
    double area_um2 = 0.0;
    /**
     * True for array-style units (multipliers, dividers, transcendental
     * units) whose energy/area scale quadratically with datapath width;
     * adders, logic and memory scale linearly.
     */
    bool quadratic_width = false;
};

/** Characterization for @p op at 45nm / 32-bit. */
const OpParams &opParams(dfg::OpType op);

/**
 * Datapath width (bits) at a given simplification degree: degree 1 is
 * the full 32-bit path, each degree narrows by 2 bits down to the 8-bit
 * floor (Table III sweeps degrees 1..13).
 */
int simplifiedWidth(int simplification_degree);

/**
 * Energy/area/leakage multiplier for an op at a simplification degree:
 * (w/32) for linear units, (w/32)² for quadratic ones.
 */
double widthScale(dfg::OpType op, int simplification_degree);

} // namespace accelwall::aladdin

#endif // ACCELWALL_ALADDIN_FU_LIBRARY_HH
