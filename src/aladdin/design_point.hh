/**
 * @file
 * Accelerator design-space coordinates (Section VI, Table III).
 */

#ifndef ACCELWALL_ALADDIN_DESIGN_POINT_HH
#define ACCELWALL_ALADDIN_DESIGN_POINT_HH

#include <string>
#include <vector>

namespace accelwall::aladdin
{

/**
 * Memory-hierarchy specialization (Table I rows 1-3, Table II's MEM
 * column).
 */
enum class MemoryMode
{
    /**
     * Simplification: one plain port regardless of lane count — the
     * minimal-space, serial-access end of Table II.
     */
    Simple,
    /**
     * Partitioning: one bank per lane, addresses striped across banks;
     * same-bank accesses in a cycle conflict and serialize.
     */
    Banked,
    /**
     * Heterogeneity: a problem-specific layout that serves every
     * lane's access pattern conflict-free, at extra hierarchy cost.
     */
    Heterogeneous,
};

/**
 * Communication-fabric specialization (Table I rows 4-6).
 */
enum class CommMode
{
    /**
     * Simplification: results forwarded through a shared FIFO — one
     * extra cycle of latency, no combinational chaining across units.
     */
    Fifo,
    /**
     * Partitioning: concurrent per-lane forwarding (the default
     * fabric; no extra latency).
     */
    Concurrent,
    /**
     * Heterogeneity: a software-defined DMA engine streams root loads
     * ahead of compute, doubling effective input bandwidth at a fixed
     * engine cost.
     */
    Dma,
};

/** Short mode names for display. */
const char *memoryModeName(MemoryMode mode);
const char *commModeName(CommMode mode);

/**
 * One accelerator design alternative.
 *
 * The knobs map to the paper's specialization concepts:
 *  - partition: replicated lanes and memory ports (partitioning);
 *  - simplification: datapath narrowing + FU/register pipelining
 *    (simplification);
 *  - chaining: fusing dependent operations into one clock cycle when
 *    their combined combinational delay fits the period (computation
 *    heterogeneity — newer nodes fit more logic per cycle);
 *  - node_nm: the CMOS process (the physical layer).
 */
struct DesignPoint
{
    /** CMOS node in nm (Table III: 45, 32, 22, 14, 10, 7, 5). */
    double node_nm = 45.0;
    /** Partitioning factor (Table III: 1, 2, 4, ..., 524288). */
    int partition = 1;
    /** Simplification degree (Table III: 1..13). */
    int simplification = 1;
    /** Operation chaining (computation heterogeneity). */
    bool chaining = true;
    /** Memory-hierarchy concept (default: the Table III behavior). */
    MemoryMode memory = MemoryMode::Heterogeneous;
    /** Communication-fabric concept. */
    CommMode comm = CommMode::Concurrent;
    /** Accelerator clock; the paper's gain model fixes 1 GHz. */
    double clock_ghz = 1.0;

    /** Compact display string, e.g. "45nm/P4/S2/het". */
    std::string str() const;
};

/** The swept parameter grid (Table III). */
struct SweepConfig
{
    std::vector<double> nodes;
    std::vector<int> partitions;
    std::vector<int> simplifications;
    double clock_ghz = 1.0;
    bool chaining = true;

    /**
     * The paper's Table III grid: partitioning 1..524288 (powers of
     * two), simplification 1..13, nodes {45,32,22,14,10,7,5}.
     */
    static SweepConfig paper();

    /** A smaller grid for unit tests. */
    static SweepConfig quick();
};

} // namespace accelwall::aladdin

#endif // ACCELWALL_ALADDIN_DESIGN_POINT_HH
