/**
 * @file
 * Radix-2 decimation-in-time FFT DFG over `n` complex points: log2(n)
 * stages of n/2 butterflies. Each butterfly performs a complex twiddle
 * multiply (4 FMul, 2 FAdd/FSub) and a complex add/subtract pair.
 */

#include "kernels/kernels.hh"

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

namespace
{

/** A complex value: (real node, imaginary node). */
struct Cx
{
    NodeId re;
    NodeId im;
};

} // namespace

Graph
makeFft(int n)
{
    if (n < 2 || (n & (n - 1)) != 0)
        fatal("makeFft: n must be a power of two >= 2, got ", n);

    Graph g("FFT");
    std::vector<Cx> data(n);
    for (int i = 0; i < n; ++i)
        data[i] = {g.addNode(OpType::Load), g.addNode(OpType::Load)};

    for (int half = 1; half < n; half *= 2) {
        std::vector<Cx> next(n);
        for (int group = 0; group < n; group += 2 * half) {
            for (int k = 0; k < half; ++k) {
                Cx a = data[group + k];
                Cx b = data[group + k + half];

                // Twiddle factors are constants folded into the
                // multiplier inputs: t = w * b (complex multiply).
                NodeId t_re = binary(g, OpType::FSub,
                                     unary(g, OpType::FMul, b.re),
                                     unary(g, OpType::FMul, b.im));
                NodeId t_im = binary(g, OpType::FAdd,
                                     unary(g, OpType::FMul, b.re),
                                     unary(g, OpType::FMul, b.im));

                next[group + k] = {binary(g, OpType::FAdd, a.re, t_re),
                                   binary(g, OpType::FAdd, a.im, t_im)};
                next[group + k + half] = {
                    binary(g, OpType::FSub, a.re, t_re),
                    binary(g, OpType::FSub, a.im, t_im)};
            }
        }
        data = std::move(next);
    }

    std::vector<NodeId> flat;
    flat.reserve(2 * n);
    for (const Cx &c : data) {
        flat.push_back(c.re);
        flat.push_back(c.im);
    }
    storeAll(g, flat);
    return g;
}

} // namespace accelwall::kernels
