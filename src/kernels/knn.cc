/**
 * @file
 * K-nearest-neighbors DFG: squared Euclidean distance from one query to
 * `points` reference points in `dims` dimensions, followed by a global
 * minimum-reduction (the nearest neighbor).
 */

#include "kernels/kernels.hh"

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph
makeKnn(int points, int dims)
{
    if (points < 2 || dims < 1)
        fatal("makeKnn: need >= 2 points and >= 1 dimension");

    Graph g("KNN");
    std::vector<NodeId> query = loadArray(g, dims);

    std::vector<NodeId> dists;
    dists.reserve(points);
    for (int p = 0; p < points; ++p) {
        std::vector<NodeId> ref = loadArray(g, dims);
        std::vector<NodeId> sq;
        sq.reserve(dims);
        for (int d = 0; d < dims; ++d) {
            NodeId diff = binary(g, OpType::FSub, query[d], ref[d]);
            sq.push_back(binary(g, OpType::FMul, diff, diff));
        }
        dists.push_back(reduceTree(g, std::move(sq), OpType::FAdd));
    }

    NodeId nearest = reduceTree(g, std::move(dists), OpType::Min);
    storeAll(g, {nearest});
    return g;
}

} // namespace accelwall::kernels
