/**
 * @file
 * Reduction microbenchmark DFG: a balanced add tree over n inputs —
 * maximal parallelism at the leaves, logarithmic depth.
 */

#include "kernels/kernels.hh"

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::OpType;

Graph
makeRed(int n)
{
    if (n < 2)
        fatal("makeRed: n must be >= 2");

    Graph g("RED");
    auto values = loadArray(g, n);
    auto sum = reduceTree(g, std::move(values), OpType::Add);
    storeAll(g, {sum});
    return g;
}

} // namespace accelwall::kernels
