/**
 * @file
 * The 16 evaluated applications (Section VI, Table IV).
 *
 * Each generator emits a DFG with the dependence structure of the
 * corresponding MachSuite / SHOC / CortexSuite / PARSEC kernel at a
 * reduced (but parameterizable) problem size. The sweep of Section VI
 * depends on the DFG *shape* — available parallelism, working sets,
 * depth, operation mix — which these generators preserve.
 */

#ifndef ACCELWALL_KERNELS_KERNELS_HH
#define ACCELWALL_KERNELS_KERNELS_HH

#include <string>
#include <vector>

#include "dfg/graph.hh"

namespace accelwall::kernels
{

/** One Table IV row. */
struct KernelInfo
{
    std::string abbrev;
    std::string name;
    std::string domain;
};

/** Table IV in presentation order. */
const std::vector<KernelInfo> &kernelTable();

/** Build a kernel by its Table IV abbreviation; fatal() on unknown. */
dfg::Graph makeKernel(const std::string &abbrev);

/** AES encryption rounds over a 16-byte state (Cryptography). */
dfg::Graph makeAes(int rounds = 10);

/** Level-synchronous breadth-first search (Graph Processing). */
dfg::Graph makeBfs(int levels = 6, int branch = 3, int frontier0 = 4);

/** Radix-2 decimation-in-time FFT (Signal Processing). */
dfg::Graph makeFft(int n = 64);

/** Dense matrix-matrix multiply (Linear Algebra). */
dfg::Graph makeGmm(int n = 10);

/** Pairwise-force molecular dynamics step (Molecular Dynamics). */
dfg::Graph makeMdy(int particles = 16, int neighbors = 8);

/** K-nearest-neighbors distance + reduction (Data Mining). */
dfg::Graph makeKnn(int points = 48, int dims = 8);

/** Needleman-Wunsch wavefront alignment (Bioinformatics). */
dfg::Graph makeNwn(int n = 20);

/** Restricted Boltzmann machine layer (Machine Learning). */
dfg::Graph makeRbm(int visible = 24, int hidden = 24);

/** Tree reduction (Microbenchmarking). */
dfg::Graph makeRed(int n = 2048);

/** Sum of absolute differences block matching (Video Processing). */
dfg::Graph makeSad(int block = 8, int candidates = 8);

/** Bitonic sorting network (Algorithms). */
dfg::Graph makeSrt(int n = 64);

/** Sparse matrix-vector multiply, CSR-style (Linear Algebra). */
dfg::Graph makeSmv(int rows = 48, int nnz_per_row = 8);

/** Bellman-Ford single-source shortest path (Graph Processing). */
dfg::Graph makeSsp(int vertices = 32, int edges = 128, int iters = 6);

/** 2-D 3x3 stencil (Image Processing). */
dfg::Graph makeS2d(int rows = 16, int cols = 16);

/** 3-D 7-point stencil, the Figure 12/13 kernel (Image Processing). */
dfg::Graph makeS3d(int nx = 8, int ny = 8, int nz = 8);

/** STREAM-style triad a = b + s*c (Microbenchmarking). */
dfg::Graph makeTrd(int n = 512);

/**
 * Naive dense DFT (extension kernel "DFT"): the O(n^2) algorithm the
 * FFT replaces; paired with makeFft() to quantify algorithm-layer CSR.
 */
dfg::Graph makeDftNaive(int n = 16);

} // namespace accelwall::kernels

#endif // ACCELWALL_KERNELS_KERNELS_HH
