/**
 * @file
 * Shared helpers for the kernel DFG generators.
 */

#ifndef ACCELWALL_KERNELS_BUILDER_HH
#define ACCELWALL_KERNELS_BUILDER_HH

#include <vector>

#include "dfg/graph.hh"

namespace accelwall::kernels
{

/** Append @p n Load roots modelling a streamed input array. */
std::vector<dfg::NodeId> loadArray(dfg::Graph &g, std::size_t n);

/** Append a Store sink for each value in @p values. */
void storeAll(dfg::Graph &g, const std::vector<dfg::NodeId> &values);

/**
 * Reduce @p values to one node with a balanced binary tree of @p op
 * (e.g. FAdd for sums, Min for minima). Returns the root; @p values
 * must be non-empty. A single value is returned unchanged.
 */
dfg::NodeId reduceTree(dfg::Graph &g, std::vector<dfg::NodeId> values,
                       dfg::OpType op);

/** Append a binary op fed by @p a and @p b. */
dfg::NodeId binary(dfg::Graph &g, dfg::OpType op, dfg::NodeId a,
                   dfg::NodeId b);

/** Append a unary op fed by @p a. */
dfg::NodeId unary(dfg::Graph &g, dfg::OpType op, dfg::NodeId a);

} // namespace accelwall::kernels

#endif // ACCELWALL_KERNELS_BUILDER_HH
