/**
 * @file
 * Video-decoder extension kernels (beyond Table IV).
 *
 * Section IV-A studies decoder ASICs as datasheet points; these
 * kernels model their two extreme pipeline stages so the Section VI
 * flow can explore the domain: the embarrassingly parallel inverse
 * DCT, and the strictly serial entropy (bitstream) decode that caps
 * every decoder's specialization headroom.
 */

#ifndef ACCELWALL_KERNELS_VIDEO_EXT_HH
#define ACCELWALL_KERNELS_VIDEO_EXT_HH

#include "dfg/graph.hh"

namespace accelwall::kernels
{

/**
 * 2-D 8x8 inverse DCT over @p blocks independent blocks, as separable
 * fast (butterfly) 1-D transforms over rows then columns.
 */
dfg::Graph makeIdct(int blocks = 8);

/**
 * Entropy (variable-length) decode of @p bits bitstream bits: each
 * symbol's code match, table lookup, and window shift depend on the
 * previous symbol's length — an inherently serial chain, the
 * limited-parallelism extreme of the decoder pipeline.
 */
dfg::Graph makeEnt(int bits = 256);

} // namespace accelwall::kernels

#endif // ACCELWALL_KERNELS_VIDEO_EXT_HH
