#include "kernels/video_ext.hh"

#include <array>

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

namespace
{

/**
 * Fast 8-point 1-D IDCT butterfly (AAN-style structure): three
 * add/subtract levels with a handful of rotation multiplies, rather
 * than the dense 8x8 matrix product.
 */
std::array<NodeId, 8>
idct8(Graph &g, const std::array<NodeId, 8> &in)
{
    // Even part: butterflies over (0,4) and rotated (2,6).
    NodeId e0 = binary(g, OpType::Add, in[0], in[4]);
    NodeId e1 = binary(g, OpType::Sub, in[0], in[4]);
    NodeId r2 = unary(g, OpType::Mul, in[2]);
    NodeId r6 = unary(g, OpType::Mul, in[6]);
    NodeId e2 = binary(g, OpType::Sub, r2, r6);
    NodeId e3 = binary(g, OpType::Add, r2, r6);

    NodeId t0 = binary(g, OpType::Add, e0, e3);
    NodeId t3 = binary(g, OpType::Sub, e0, e3);
    NodeId t1 = binary(g, OpType::Add, e1, e2);
    NodeId t2 = binary(g, OpType::Sub, e1, e2);

    // Odd part: rotations on 1/7 and 3/5, then a butterfly level.
    NodeId r1 = unary(g, OpType::Mul, in[1]);
    NodeId r7 = unary(g, OpType::Mul, in[7]);
    NodeId r3 = unary(g, OpType::Mul, in[3]);
    NodeId r5 = unary(g, OpType::Mul, in[5]);
    NodeId o0 = binary(g, OpType::Add, r1, r7);
    NodeId o1 = binary(g, OpType::Sub, r1, r7);
    NodeId o2 = binary(g, OpType::Add, r3, r5);
    NodeId o3 = binary(g, OpType::Sub, r3, r5);
    NodeId u0 = binary(g, OpType::Add, o0, o2);
    NodeId u1 = binary(g, OpType::Add, o1, o3);
    NodeId u2 = binary(g, OpType::Sub, o0, o2);
    NodeId u3 = binary(g, OpType::Sub, o1, o3);

    return {binary(g, OpType::Add, t0, u0),
            binary(g, OpType::Add, t1, u1),
            binary(g, OpType::Add, t2, u2),
            binary(g, OpType::Add, t3, u3),
            binary(g, OpType::Sub, t3, u3),
            binary(g, OpType::Sub, t2, u2),
            binary(g, OpType::Sub, t1, u1),
            binary(g, OpType::Sub, t0, u0)};
}

} // namespace

Graph
makeIdct(int blocks)
{
    if (blocks < 1)
        fatal("makeIdct: blocks must be >= 1");

    Graph g("IDCT");
    for (int b = 0; b < blocks; ++b) {
        // Load one 8x8 coefficient block.
        std::array<std::array<NodeId, 8>, 8> block;
        for (auto &row : block) {
            for (auto &coef : row)
                coef = g.addNode(OpType::Load);
        }
        // Rows, then columns.
        for (int r = 0; r < 8; ++r)
            block[r] = idct8(g, block[r]);
        for (int c = 0; c < 8; ++c) {
            std::array<NodeId, 8> col;
            for (int r = 0; r < 8; ++r)
                col[r] = block[r][c];
            col = idct8(g, col);
            for (int r = 0; r < 8; ++r)
                block[r][c] = col[r];
        }
        // Store the pixel block.
        for (const auto &row : block) {
            for (NodeId px : row) {
                NodeId st = g.addNode(OpType::Store);
                g.addEdge(px, st);
            }
        }
    }
    return g;
}

Graph
makeEnt(int bits)
{
    if (bits < 1)
        fatal("makeEnt: bits must be >= 1");

    Graph g("ENT");
    // The bit window; every symbol shifts it by the decoded length.
    NodeId window = g.addNode(OpType::Load);

    for (int i = 0; i < bits; ++i) {
        // Refill one bit (independent load), splice into the window.
        NodeId bit = g.addNode(OpType::Load);
        NodeId spliced = binary(g, OpType::Or, window, bit);
        // Match the prefix code and decode symbol + length.
        NodeId match = unary(g, OpType::Cmp, spliced);
        NodeId symbol = binary(g, OpType::Lut, spliced, match);
        NodeId length = unary(g, OpType::Lut, symbol);
        // Emit the symbol; consume `length` bits — the serial
        // dependence that caps parallelism.
        NodeId st = g.addNode(OpType::Store);
        g.addEdge(symbol, st);
        window = binary(g, OpType::Shift, spliced, length);
    }
    // The final window is decoder state the next block resumes from;
    // without this store the last shift is dead hardware (V013).
    storeAll(g, {window});
    return g;
}

} // namespace accelwall::kernels
