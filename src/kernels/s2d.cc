/**
 * @file
 * 2-D 3x3 stencil DFG: each interior output point is a weighted sum of
 * its 9-neighborhood (9 FMul + an FAdd tree).
 */

#include "kernels/kernels.hh"

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph
makeS2d(int rows, int cols)
{
    if (rows < 3 || cols < 3)
        fatal("makeS2d: grid must be at least 3x3");

    Graph g("S2D");
    std::vector<NodeId> in =
        loadArray(g, static_cast<std::size_t>(rows) * cols);

    std::vector<NodeId> out;
    for (int i = 1; i < rows - 1; ++i) {
        for (int j = 1; j < cols - 1; ++j) {
            std::vector<NodeId> terms;
            terms.reserve(9);
            for (int di = -1; di <= 1; ++di) {
                for (int dj = -1; dj <= 1; ++dj) {
                    NodeId px = in[(i + di) * cols + (j + dj)];
                    // Filter coefficients are constants folded into the
                    // multiplier.
                    terms.push_back(unary(g, OpType::FMul, px));
                }
            }
            out.push_back(reduceTree(g, std::move(terms), OpType::FAdd));
        }
    }

    storeAll(g, out);
    return g;
}

} // namespace accelwall::kernels
