/**
 * @file
 * Needleman-Wunsch DFG: the n x n dynamic-programming table whose cell
 * (i,j) depends on (i-1,j-1), (i-1,j) and (i,j-1). The wavefront
 * dependence makes this the paper's canonical limited-parallelism
 * kernel: depth grows with 2n while the working set peaks at the
 * anti-diagonal.
 */

#include "kernels/kernels.hh"

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph
makeNwn(int n)
{
    if (n < 2)
        fatal("makeNwn: n must be >= 2");

    Graph g("NWN");

    // The two sequences are loaded once and reused by every cell.
    std::vector<NodeId> seq_a = loadArray(g, n);
    std::vector<NodeId> seq_b = loadArray(g, n);

    // Boundary rows/columns are gap-penalty loads.
    std::vector<std::vector<NodeId>> cell(
        n, std::vector<NodeId>(n));
    for (int i = 0; i < n; ++i) {
        cell[i][0] = g.addNode(OpType::Load);
        cell[0][i] = g.addNode(OpType::Load);
    }

    for (int i = 1; i < n; ++i) {
        for (int j = 1; j < n; ++j) {
            // Substitution score for (a_i, b_j): a table lookup.
            NodeId score = binary(g, OpType::Lut, seq_a[i], seq_b[j]);

            NodeId diag =
                binary(g, OpType::Add, cell[i - 1][j - 1], score);
            NodeId up = unary(g, OpType::Add, cell[i - 1][j]);
            NodeId left = unary(g, OpType::Add, cell[i][j - 1]);
            cell[i][j] = binary(g, OpType::Max,
                                binary(g, OpType::Max, diag, up), left);
        }
    }

    storeAll(g, {cell[n - 1][n - 1]});
    return g;
}

} // namespace accelwall::kernels
