#include "kernels/btc.hh"

#include <array>
#include <vector>

#include "kernels/builder.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

namespace
{

/** sigma/Sigma mixing: three rotate/shift taps XOR-folded. */
NodeId
mix3(Graph &g, NodeId x)
{
    NodeId t0 = unary(g, OpType::Shift, x);
    NodeId t1 = unary(g, OpType::Shift, x);
    NodeId t2 = unary(g, OpType::Shift, x);
    return binary(g, OpType::Xor, binary(g, OpType::Xor, t0, t1), t2);
}

/**
 * One SHA-256 compression over a 16-word input schedule.
 *
 * @param w The 16 input words (already DFG nodes).
 * @param shared_schedule When true the message-schedule expansion
 *        (w[16..63]) arrives precomputed: ASICBoost shares the second
 *        chunk's expansion across works whose merkle-root tails
 *        collide, so its per-nonce cost amortizes away.
 * @param state In/out: the eight working variables.
 * @param prune_last_round Omit the final round's 'e' adder. Valid only
 *        when the caller consumes nothing but the digest's leading
 *        word: mining datapaths do exactly that, and keeping the adder
 *        leaves a dead node in the DFG (accelwall-lint V013).
 */
void
compress(Graph &g, std::vector<NodeId> w, bool shared_schedule,
         std::array<NodeId, 8> &state, bool prune_last_round = false)
{
    // Message-schedule expansion: w[i] = w[i-16] + s0(w[i-15]) +
    // w[i-7] + s1(w[i-2]).
    w.resize(64);
    for (int i = 16; i < 64; ++i) {
        if (shared_schedule) {
            w[i] = g.addNode(OpType::Input);
            continue;
        }
        NodeId s0 = mix3(g, w[i - 15]);
        NodeId s1 = mix3(g, w[i - 2]);
        w[i] = binary(g, OpType::Add,
                      binary(g, OpType::Add, w[i - 16], s0),
                      binary(g, OpType::Add, w[i - 7], s1));
    }

    // Round function: the strictly serial working-variable recurrence.
    for (int r = 0; r < 64; ++r) {
        NodeId s1 = mix3(g, state[4]);
        // ch(e,f,g) = (e AND f) XOR (NOT e AND g); the complement is
        // free in hardware, so the cost model is two ANDs + one XOR.
        NodeId ch = binary(g, OpType::Xor,
                           binary(g, OpType::And, state[4], state[5]),
                           binary(g, OpType::And, state[4], state[6]));
        // temp1 = h + S1 + ch + K[r] + w[r] (K folded into an add).
        NodeId temp1 = binary(
            g, OpType::Add,
            binary(g, OpType::Add, state[7], s1),
            binary(g, OpType::Add, ch, unary(g, OpType::Add, w[r])));
        NodeId s0 = mix3(g, state[0]);
        NodeId maj = binary(
            g, OpType::Xor,
            binary(g, OpType::Xor,
                   binary(g, OpType::And, state[0], state[1]),
                   binary(g, OpType::And, state[0], state[2])),
            binary(g, OpType::And, state[1], state[2]));
        NodeId temp2 = binary(g, OpType::Add, s0, maj);

        bool last = prune_last_round && r == 63;
        state = {binary(g, OpType::Add, temp1, temp2),
                 state[0],
                 state[1],
                 state[2],
                 last ? temp1 : binary(g, OpType::Add, state[3], temp1),
                 state[4],
                 state[5],
                 state[6]};
    }
}

} // namespace

Graph
makeBtc(bool asicboost)
{
    Graph g(asicboost ? "BTC-asicboost" : "BTC");

    // Midstate after the header's first chunk: always precomputed
    // (both plain miners and ASICBoost share it), so inputs.
    std::array<NodeId, 8> state;
    for (auto &v : state)
        v = g.addNode(OpType::Load);

    // Second chunk: merkle tail / time / bits, the nonce, and fixed
    // padding. ASICBoost mines several works whose merkle tails
    // collide, sharing this chunk's schedule expansion across them.
    std::vector<NodeId> w(16);
    for (int i = 0; i < 16; ++i)
        w[i] = g.addNode(OpType::Load);
    compress(g, w, /*shared_schedule=*/asicboost, state);

    // Second hash: compress the padded 32-byte digest. Every input
    // word depends on the nonce, so nothing is shareable.
    std::vector<NodeId> w2(16);
    for (int i = 0; i < 8; ++i)
        w2[i] = state[i];
    for (int i = 8; i < 16; ++i)
        w2[i] = g.addNode(OpType::Load); // padding/length constants

    std::array<NodeId, 8> state2;
    for (auto &v : state2)
        v = g.addNode(OpType::Load); // the fixed IV
    // Only state2[0] survives into the difficulty check, so the second
    // compression prunes its final-round 'e' adder like real miners do.
    compress(g, w2, /*shared_schedule=*/false, state2,
             /*prune_last_round=*/true);

    // Difficulty check: compare the leading digest words to the
    // target.
    NodeId target = g.addNode(OpType::Load);
    NodeId ok = binary(g, OpType::Cmp, state2[0], target);
    storeAll(g, {ok});
    return g;
}

} // namespace accelwall::kernels
