/**
 * @file
 * 3-D 7-point stencil DFG — the Figure 12/13 case-study kernel. Each
 * interior lattice point of the `Orig` volume produces a `Solution`
 * point from its 7-point neighborhood (center + 6 face neighbors);
 * filtering is applied concurrently across the lattice.
 */

#include "kernels/kernels.hh"

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph
makeS3d(int nx, int ny, int nz)
{
    if (nx < 3 || ny < 3 || nz < 3)
        fatal("makeS3d: volume must be at least 3x3x3");

    Graph g("S3D");
    std::vector<NodeId> in = loadArray(
        g, static_cast<std::size_t>(nx) * ny * nz);
    auto at = [&](int x, int y, int z) {
        return in[(static_cast<std::size_t>(z) * ny + y) * nx + x];
    };

    std::vector<NodeId> out;
    for (int z = 1; z < nz - 1; ++z) {
        for (int y = 1; y < ny - 1; ++y) {
            for (int x = 1; x < nx - 1; ++x) {
                std::vector<NodeId> terms;
                terms.reserve(7);
                terms.push_back(unary(g, OpType::FMul, at(x, y, z)));
                terms.push_back(unary(g, OpType::FMul, at(x - 1, y, z)));
                terms.push_back(unary(g, OpType::FMul, at(x + 1, y, z)));
                terms.push_back(unary(g, OpType::FMul, at(x, y - 1, z)));
                terms.push_back(unary(g, OpType::FMul, at(x, y + 1, z)));
                terms.push_back(unary(g, OpType::FMul, at(x, y, z - 1)));
                terms.push_back(unary(g, OpType::FMul, at(x, y, z + 1)));
                out.push_back(
                    reduceTree(g, std::move(terms), OpType::FAdd));
            }
        }
    }

    storeAll(g, out);
    return g;
}

} // namespace accelwall::kernels
