#include "kernels/builder.hh"

#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

std::vector<NodeId>
loadArray(Graph &g, std::size_t n)
{
    std::vector<NodeId> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(g.addNode(OpType::Load));
    return out;
}

void
storeAll(Graph &g, const std::vector<NodeId> &values)
{
    for (NodeId v : values) {
        NodeId st = g.addNode(OpType::Store);
        g.addEdge(v, st);
    }
}

NodeId
reduceTree(Graph &g, std::vector<NodeId> values, OpType op)
{
    if (values.empty())
        fatal("reduceTree: empty value list");
    while (values.size() > 1) {
        std::vector<NodeId> next;
        next.reserve((values.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < values.size(); i += 2)
            next.push_back(binary(g, op, values[i], values[i + 1]));
        if (values.size() % 2 == 1)
            next.push_back(values.back());
        values = std::move(next);
    }
    return values[0];
}

NodeId
binary(Graph &g, OpType op, NodeId a, NodeId b)
{
    NodeId n = g.addNode(op);
    g.addEdge(a, n);
    g.addEdge(b, n);
    return n;
}

NodeId
unary(Graph &g, OpType op, NodeId a)
{
    NodeId n = g.addNode(op);
    g.addEdge(a, n);
    return n;
}

} // namespace accelwall::kernels
