/**
 * @file
 * Restricted Boltzmann machine layer DFG: hidden activations
 * h_j = sigmoid(sum_i v_i * w_ij + b_j). The sigmoid expands to an
 * exponential, an add, and a divide — the kernel that motivates
 * algorithm-specific (transcendental) functional units.
 */

#include "kernels/kernels.hh"

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph
makeRbm(int visible, int hidden)
{
    if (visible < 1 || hidden < 1)
        fatal("makeRbm: layer sizes must be >= 1");

    Graph g("RBM");
    std::vector<NodeId> v = loadArray(g, visible);

    std::vector<NodeId> h;
    h.reserve(hidden);
    for (int j = 0; j < hidden; ++j) {
        std::vector<NodeId> w = loadArray(g, visible);
        std::vector<NodeId> prods;
        prods.reserve(visible);
        for (int i = 0; i < visible; ++i)
            prods.push_back(binary(g, OpType::FMul, v[i], w[i]));
        NodeId acc = reduceTree(g, std::move(prods), OpType::FAdd);

        NodeId bias = g.addNode(OpType::Load);
        NodeId pre = binary(g, OpType::FAdd, acc, bias);

        // sigmoid(x) = 1 / (1 + exp(-x)).
        NodeId ex = unary(g, OpType::Exp, pre);
        NodeId denom = unary(g, OpType::FAdd, ex);
        h.push_back(unary(g, OpType::FDiv, denom));
    }

    storeAll(g, h);
    return g;
}

} // namespace accelwall::kernels
