/**
 * @file
 * Level-synchronous BFS DFG. Each level expands the frontier: per
 * frontier vertex a neighbor-list load, then per neighbor a visited-flag
 * load, a comparison, and a conditional update. The frontier grows by
 * the branching factor, capped so the graph stays tractable.
 */

#include "kernels/kernels.hh"

#include <algorithm>

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph
makeBfs(int levels, int branch, int frontier0)
{
    if (levels < 1 || branch < 1 || frontier0 < 1)
        fatal("makeBfs: levels, branch, frontier0 must be >= 1");

    Graph g("BFS");
    constexpr int kMaxFrontier = 256;

    // The initial frontier: vertex-id loads.
    std::vector<NodeId> frontier = loadArray(g, frontier0);
    std::vector<NodeId> depth_updates;

    for (int lvl = 0; lvl < levels; ++lvl) {
        std::vector<NodeId> next;
        for (NodeId v : frontier) {
            // Fetch the adjacency-list offset, dependent on the vertex.
            NodeId offs = unary(g, OpType::Load, v);
            for (int b = 0; b < branch; ++b) {
                if (static_cast<int>(next.size()) >= kMaxFrontier)
                    break;
                // Neighbor id load (indirect off the offset), visited
                // check, and conditional depth write.
                NodeId nbr = unary(g, OpType::Load, offs);
                NodeId visited = unary(g, OpType::Load, nbr);
                NodeId is_new = binary(g, OpType::Cmp, visited, nbr);
                NodeId upd = binary(g, OpType::Select, is_new, nbr);
                depth_updates.push_back(upd);
                next.push_back(upd);
            }
        }
        if (next.empty())
            break;
        frontier = std::move(next);
    }

    storeAll(g, depth_updates);
    return g;
}

} // namespace accelwall::kernels
