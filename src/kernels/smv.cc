/**
 * @file
 * Sparse matrix-vector multiply DFG (CSR layout): per row, per nonzero,
 * a value load, a column-index load, an *indirect* x-vector load that
 * depends on the index load, and a multiply; a per-row add tree folds
 * the products. The indirect loads give the kernel its irregular memory
 * signature.
 */

#include "kernels/kernels.hh"

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph
makeSmv(int rows, int nnz_per_row)
{
    if (rows < 1 || nnz_per_row < 1)
        fatal("makeSmv: rows and nnz_per_row must be >= 1");

    Graph g("SMV");
    std::vector<NodeId> y;
    y.reserve(rows);
    for (int r = 0; r < rows; ++r) {
        std::vector<NodeId> prods;
        prods.reserve(nnz_per_row);
        for (int k = 0; k < nnz_per_row; ++k) {
            NodeId val = g.addNode(OpType::Load);
            NodeId col = g.addNode(OpType::Load);
            // x[col]: the address depends on the column-index load.
            NodeId x = unary(g, OpType::Load, col);
            prods.push_back(binary(g, OpType::FMul, val, x));
        }
        y.push_back(reduceTree(g, std::move(prods), OpType::FAdd));
    }

    storeAll(g, y);
    return g;
}

} // namespace accelwall::kernels
