/**
 * @file
 * Bitcoin mining kernel (extension beyond Table IV).
 *
 * Section IV-D/IV-E: mining is double-SHA256 over an 80-byte header —
 * a *confined* computation whose only known algorithmic win was
 * ASICBoost's one-time ~20% saving from sharing nonce-independent
 * work. The DFG here is derived from the real FIPS 180-4 round
 * structure (crypto::Sha256): one compression of the header's second
 * chunk (which carries the nonce) followed by one compression of the
 * padded digest.
 */

#ifndef ACCELWALL_KERNELS_BTC_HH
#define ACCELWALL_KERNELS_BTC_HH

#include "dfg/graph.hh"

namespace accelwall::kernels
{

/**
 * Build the per-nonce mining DFG.
 *
 * @param asicboost When true, work that does not depend on the nonce —
 *        the first rounds of the second-chunk compression and the
 *        nonce-independent message-schedule elements — is treated as
 *        precomputed (Input nodes) and shared across nonces, modeling
 *        the ASICBoost optimization; the compute-node count drops by
 *        roughly the paper's "one-time 20%".
 */
dfg::Graph makeBtc(bool asicboost = false);

} // namespace accelwall::kernels

#endif // ACCELWALL_KERNELS_BTC_HH
