/**
 * @file
 * Sorting-network DFG (the Table IV "Merge Sort" entry): a bitonic
 * network over n elements. Each compare-exchange is a Min/Max node
 * pair; the hardware-natural formulation of merge sort.
 */

#include "kernels/kernels.hh"

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph
makeSrt(int n)
{
    if (n < 2 || (n & (n - 1)) != 0)
        fatal("makeSrt: n must be a power of two >= 2, got ", n);

    Graph g("SRT");
    std::vector<NodeId> data = loadArray(g, n);

    // Batcher's bitonic sorting network.
    for (int k = 2; k <= n; k *= 2) {
        for (int j = k / 2; j >= 1; j /= 2) {
            std::vector<NodeId> next = data;
            for (int i = 0; i < n; ++i) {
                int partner = i ^ j;
                if (partner <= i)
                    continue;
                bool ascending = (i & k) == 0;
                NodeId lo = binary(g, OpType::Min, data[i],
                                   data[partner]);
                NodeId hi = binary(g, OpType::Max, data[i],
                                   data[partner]);
                next[i] = ascending ? lo : hi;
                next[partner] = ascending ? hi : lo;
            }
            data = std::move(next);
        }
    }

    storeAll(g, data);
    return g;
}

} // namespace accelwall::kernels
